#include "rfdump/core/supervisor.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "rfdump/obs/obs.hpp"

namespace rfdump::core {
namespace {

/// One registry counter per protocol under a common family name (same idiom
/// as the dispatch counters in pipeline.cpp): resolved once, mutated with a
/// single relaxed atomic per event.
class PerProtocolCounter {
 public:
  explicit PerProtocolCounter(const char* family) {
    for (std::size_t i = 0; i < kProtocolCount; ++i) {
      counters_[i] = &obs::LabeledCounter(
          family, "protocol", ProtocolName(static_cast<Protocol>(i)));
    }
  }
  obs::Counter& of(Protocol p) {
    return *counters_[static_cast<std::size_t>(p)];
  }

 private:
  std::array<obs::Counter*, kProtocolCount> counters_{};
};

struct SupervisorMetrics {
  PerProtocolCounter invocations{"rfdump_supervisor_invocations_total"};
  PerProtocolCounter trips{"rfdump_supervisor_breaker_trips_total"};
  obs::Counter& ok = obs::LabeledCounter("rfdump_supervisor_outcomes_total",
                                         "outcome", "ok");
  obs::Counter& deadline = obs::LabeledCounter(
      "rfdump_supervisor_outcomes_total", "outcome", "deadline");
  obs::Counter& exception = obs::LabeledCounter(
      "rfdump_supervisor_outcomes_total", "outcome", "exception");
  obs::Counter& skipped = obs::LabeledCounter(
      "rfdump_supervisor_outcomes_total", "outcome", "skipped");
  obs::Counter& closes = obs::Registry::Default().GetCounter(
      "rfdump_supervisor_breaker_closes_total");
  obs::Counter& quarantined = obs::Registry::Default().GetCounter(
      "rfdump_supervisor_quarantined_total");
  obs::Counter& detector_exceptions = obs::Registry::Default().GetCounter(
      "rfdump_supervisor_detector_exceptions_total");
  obs::Gauge& open_breakers = obs::Registry::Default().GetGauge(
      "rfdump_supervisor_open_breakers");
  static SupervisorMetrics& Get() {
    static SupervisorMetrics m;
    return m;
  }
};

}  // namespace

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kDeadline: return "deadline";
    case Outcome::kException: return "exception";
    case Outcome::kSkipped: return "skipped";
  }
  return "?";
}

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

Supervisor::Supervisor() : Supervisor(Config{}) {}

Supervisor::Supervisor(Config config)
    : config_(std::move(config)), breakers_(kProtocolCount) {}

std::shared_ptr<Supervisor::Admission> Supervisor::Admit(
    Protocol p, std::int64_t start, std::int64_t end,
    dsp::const_sample_span interval) {
  auto& metrics = SupervisorMetrics::Get();
  metrics.invocations.of(p).Inc();
  auto admission = std::make_shared<Admission>();
  admission->protocol = p;
  admission->start = start;
  admission->end = end;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_.invocations;
    Breaker& b = breakers_[static_cast<std::size_t>(p)];
    if (b.state == BreakerState::kOpen ||
        (b.state == BreakerState::kHalfOpen && b.probe_in_flight)) {
      ++counts_.skipped;
      metrics.skipped.Inc();
      admission->outcome = Outcome::kSkipped;
      return admission;
    }
    if (b.state == BreakerState::kHalfOpen) {
      b.probe_in_flight = true;
      admission->is_probe = true;
    }
  }
  admission->budget.Arm(config_.demod_limits);
  admission->admitted = true;
  if (config_.fault_hook) {
    // The hook runs inside the boundary (it can spin the budget down or
    // throw); a throw fails the whole interval before any unit starts, so
    // the boundary is closed here and admitted stays false for the caller.
    try {
      config_.fault_hook(
          p, stream_offset_.load(std::memory_order_relaxed) + start,
          admission->budget);
    } catch (const std::exception& e) {
      admission->admitted = false;
      Finish(*admission, Outcome::kException, e.what(), interval);
    } catch (...) {
      admission->admitted = false;
      Finish(*admission, Outcome::kException, "non-std exception", interval);
    }
  }
  return admission;
}

Outcome Supervisor::Finish(Admission& admission, Outcome outcome,
                           std::string error,
                           dsp::const_sample_span interval) {
  auto& metrics = SupervisorMetrics::Get();
  const bool failure = outcome != Outcome::kOk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counts_.budget_checks += admission.budget.checks();
    counts_.budget_charged += admission.budget.charged();
    switch (outcome) {
      case Outcome::kOk: ++counts_.ok; break;
      case Outcome::kDeadline: ++counts_.deadline; break;
      case Outcome::kException: ++counts_.exception; break;
      case Outcome::kSkipped: break;  // skips never reach Finish
    }
    NoteResultLocked(breakers_[static_cast<std::size_t>(admission.protocol)],
                     admission.protocol, failure, admission.is_probe);
  }
  switch (outcome) {
    case Outcome::kOk: metrics.ok.Inc(); break;
    case Outcome::kDeadline: metrics.deadline.Inc(); break;
    case Outcome::kException: metrics.exception.Inc(); break;
    case Outcome::kSkipped: break;
  }
  if (failure) {
    RecordFailure(admission.protocol, outcome, admission.start, admission.end,
                  interval, std::move(error));
  }
  admission.outcome = outcome;
  return outcome;
}

Outcome Supervisor::Supervise(
    Protocol p, std::int64_t start, std::int64_t end,
    dsp::const_sample_span interval,
    const std::function<void(util::WorkBudget&)>& fn) {
  auto admission = Admit(p, start, end, interval);
  if (!admission->admitted) return admission->outcome;
  Outcome outcome = Outcome::kOk;
  std::string error;
  try {
    fn(admission->budget);
    if (admission->budget.expired()) outcome = Outcome::kDeadline;
  } catch (const std::exception& e) {
    outcome = Outcome::kException;
    error = e.what();
  } catch (...) {
    outcome = Outcome::kException;
    error = "non-std exception";
  }
  return Finish(*admission, outcome, std::move(error), interval);
}

void Supervisor::NoteResultLocked(Breaker& b, Protocol p, bool failure,
                                  bool was_probe) {
  if (was_probe) {
    b.probe_in_flight = false;
    if (failure) {
      TripLocked(b, p);  // re-open with doubled cooldown
    } else {
      b.state = BreakerState::kClosed;
      b.trips_since_close = 0;
      b.window.clear();
      b.window_failures = 0;
      ++counts_.breaker_closes;
      SupervisorMetrics::Get().closes.Inc();
      SupervisorMetrics::Get().open_breakers.Set(open_breakers_locked());
    }
    return;
  }
  b.window.push_back(failure);
  if (failure) ++b.window_failures;
  while (static_cast<int>(b.window.size()) > config_.breaker_window) {
    if (b.window.front()) --b.window_failures;
    b.window.pop_front();
  }
  if (b.state == BreakerState::kClosed &&
      b.window_failures >= config_.breaker_trip_failures) {
    TripLocked(b, p);
  }
}

void Supervisor::TripLocked(Breaker& b, Protocol p) {
  b.state = BreakerState::kOpen;
  ++b.trips_since_close;
  const int shift = std::min(b.trips_since_close - 1, 16);
  b.cooldown_blocks_left =
      std::min(config_.breaker_cooldown_blocks << shift,
               config_.breaker_max_cooldown_blocks);
  b.window.clear();
  b.window_failures = 0;
  ++counts_.breaker_trips;
  SupervisorMetrics::Get().trips.of(p).Inc();
  SupervisorMetrics::Get().open_breakers.Set(open_breakers_locked());
}

void Supervisor::RecordFailure(Protocol p, Outcome outcome, std::int64_t start,
                               std::int64_t end,
                               dsp::const_sample_span interval,
                               std::string error) {
  const std::int64_t offset = stream_offset_.load(std::memory_order_relaxed);
  QuarantineRecord rec;
  rec.protocol = p;
  rec.outcome = outcome;
  rec.start_sample = offset + start;
  rec.end_sample = offset + end;
  rec.error = std::move(error);
  const std::size_t n =
      std::min(interval.size(), config_.quarantine_snapshot_samples);
  rec.snapshot.assign(interval.begin(),
                      interval.begin() + static_cast<std::ptrdiff_t>(n));
  SupervisorMetrics::Get().quarantined.Inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.quarantined;
  quarantine_.push_back(std::move(rec));
  while (config_.quarantine_capacity > 0 &&
         quarantine_.size() > config_.quarantine_capacity) {
    quarantine_.pop_front();
  }
}

void Supervisor::NoteDetectorThrow(const char* stage, const char* what) {
  (void)stage;
  (void)what;
  SupervisorMetrics::Get().detector_exceptions.Inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.detector_exceptions;
}

void Supervisor::OnBlockEnd() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    Breaker& b = breakers_[i];
    if (b.state != BreakerState::kOpen) continue;
    if (--b.cooldown_blocks_left <= 0) {
      b.state = BreakerState::kHalfOpen;
      b.probe_in_flight = false;
    }
  }
  SupervisorMetrics::Get().open_breakers.Set(open_breakers_locked());
}

BreakerState Supervisor::breaker_state(Protocol p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return breakers_[static_cast<std::size_t>(p)].state;
}

int Supervisor::open_breakers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_breakers_locked();
}

int Supervisor::open_breakers_locked() const {
  int open = 0;
  for (const Breaker& b : breakers_) {
    if (b.state != BreakerState::kClosed) ++open;
  }
  return open;
}

Supervisor::Counts Supervisor::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::vector<Supervisor::QuarantineRecord> Supervisor::quarantine() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {quarantine_.begin(), quarantine_.end()};
}

}  // namespace rfdump::core
