#include "rfdump/core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <exception>

#include "rfdump/core/executor.hpp"
#include "rfdump/core/result_sink.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/phybt/hopping.hpp"

namespace rfdump::core {
namespace {

/// Accumulates stage costs by name. Timing comes from the shared
/// obs::Stopwatch (the same monotonic clock the shed controller and the
/// benches read), and every ledgered stage doubles as a trace span.
class CostLedger {
 public:
  class Scope {
   public:
    Scope(CostLedger& ledger, const char* name, std::uint64_t samples)
        : ledger_(ledger), name_(name), samples_(samples), span_(name) {}
    ~Scope() { ledger_.Add(name_, watch_.Seconds(), samples_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    CostLedger& ledger_;
    const char* name_;
    std::uint64_t samples_;
    obs::TraceSpan span_;
    obs::Stopwatch watch_;
  };

  void Add(const std::string& name, double secs, std::uint64_t samples) {
    auto& entry = entries_[name];
    entry.first += secs;
    entry.second += samples;
  }

  [[nodiscard]] std::vector<StageCost> Costs() const {
    std::vector<StageCost> out;
    out.reserve(entries_.size());
    for (const auto& [name, v] : entries_) {
      out.push_back({name, v.first, v.second});
    }
    return out;
  }

 private:
  std::map<std::string, std::pair<double, std::uint64_t>> entries_;
};

std::int64_t UsToSamples(double us) {
  return static_cast<std::int64_t>(us * 1e-6 * dsp::kSampleRateHz + 0.5);
}

/// One registry counter per protocol under a common family name, resolved
/// once (construct as a function-local static) so the per-detection cost is
/// a single relaxed atomic increment.
class PerProtocolCounter {
 public:
  explicit PerProtocolCounter(const char* family) {
    static constexpr Protocol kAll[] = {
        Protocol::kUnknown, Protocol::kWifi80211b, Protocol::kBluetooth,
        Protocol::kZigbee, Protocol::kMicrowave};
    for (const Protocol p : kAll) {
      counters_[static_cast<std::size_t>(p)] =
          &obs::Registry::Default().GetCounter(
              std::string(family) + "{protocol=\"" + ProtocolName(p) + "\"}");
    }
  }
  obs::Counter& of(Protocol p) {
    return *counters_[static_cast<std::size_t>(p)];
  }

 private:
  std::array<obs::Counter*, 5> counters_{};
};

// Deduplicates frames/packets found by more than one pass over overlapping
// intervals. Runs on the full per-report vectors, so serial and parallel
// analysis produce identical output as long as they append in the same
// (interval x unit) submission order — which both do.
void DedupAnalysisResults(MonitorReport& report) {
  std::sort(report.bt_packets.begin(), report.bt_packets.end(),
            [](const auto& a, const auto& b) {
              return a.start_sample < b.start_sample;
            });
  report.bt_packets.erase(
      std::unique(report.bt_packets.begin(), report.bt_packets.end(),
                  [](const auto& a, const auto& b) {
                    return a.channel_index == b.channel_index &&
                           std::llabs(a.start_sample - b.start_sample) < 16;
                  }),
      report.bt_packets.end());
  std::sort(report.wifi_frames.begin(), report.wifi_frames.end(),
            [](const auto& a, const auto& b) {
              return a.start_sample < b.start_sample;
            });
  report.wifi_frames.erase(
      std::unique(report.wifi_frames.begin(), report.wifi_frames.end(),
                  [](const auto& a, const auto& b) {
                    return std::llabs(a.start_sample - b.start_sample) < 16;
                  }),
      report.wifi_frames.end());
}

// Runs the demodulator bank over the given per-protocol merged intervals
// (pass a single full-span detection per protocol for the naive paths).
// With a supervisor, each interval's analysis runs inside a stage boundary
// (armed WorkBudget, exception containment, breaker, quarantine); without
// one, the closure runs directly with an unarmed (unlimited) budget, which
// preserves the exact unsupervised batch semantics.
void RunAnalysisSerial(const AnalysisConfig& analysis,
                       double noise_floor_power, Supervisor* sup,
                       const std::vector<Detection>& intervals,
                       dsp::const_sample_span x, CostLedger& ledger,
                       MonitorReport& report) {
  util::WorkBudget unlimited;
  const auto supervised =
      [&](const Detection& d, dsp::const_sample_span span,
          const std::function<void(util::WorkBudget&)>& fn) {
        if (sup) {
          return sup->Supervise(d.protocol, d.start_sample, d.end_sample,
                                span, fn);
        }
        fn(unlimited);
        return Outcome::kOk;
      };
  static obs::Counter& c_zb_attempts = obs::Registry::Default().GetCounter(
      "rfdump_phyzigbee_decode_attempts_total");
  static obs::Counter& c_zb_frames = obs::Registry::Default().GetCounter(
      "rfdump_phyzigbee_frames_total");
  for (const auto& d : intervals) {
    const auto span = x.subspan(
        static_cast<std::size_t>(d.start_sample),
        static_cast<std::size_t>(d.end_sample - d.start_sample));
    switch (d.protocol) {
      case Protocol::kWifi80211b: {
        if (!analysis.wifi_demod) break;
        CostLedger::Scope scope(ledger, "analysis/80211-demod", span.size());
        supervised(d, span, [&](util::WorkBudget& budget) {
          phy80211::Demodulator::Config cfg;
          cfg.budget = &budget;
          phy80211::Demodulator wifi(cfg);
          auto frames = wifi.DecodeAll(span);
          for (auto& f : frames) {
            f.start_sample += d.start_sample;
            f.end_sample += d.start_sample;
            report.wifi_frames.push_back(std::move(f));
          }
        });
        break;
      }
      case Protocol::kBluetooth: {
        // One demodulator pass per visible channel; the whole bank shares
        // the interval's budget, so a runaway channel cannot starve the
        // block (remaining channels see the expired budget and bail).
        supervised(d, span, [&](util::WorkBudget& budget) {
          for (int ch = 0; ch < analysis.bt_demods; ++ch) {
            if (budget.expired()) break;
            phybt::Demodulator::Config cfg;
            cfg.channel_index = ch % phybt::kVisibleChannels;
            cfg.expected_uap = analysis.bt_uap;
            cfg.noise_floor_power = noise_floor_power;
            cfg.budget = &budget;
            phybt::Demodulator bt(cfg);
            CostLedger::Scope scope(ledger, "analysis/bt-demod", span.size());
            auto pkts = bt.DecodeAll(span);
            for (auto& p : pkts) {
              p.start_sample += d.start_sample;
              p.end_sample += d.start_sample;
              report.bt_packets.push_back(std::move(p));
            }
          }
        });
        break;
      }
      case Protocol::kZigbee: {
        if (!analysis.zigbee_demod) break;
        CostLedger::Scope scope(ledger, "analysis/zigbee-demod", span.size());
        supervised(d, span, [&](util::WorkBudget&) {
          c_zb_attempts.Inc();
          if (auto frame = phyzigbee::DecodeFrame(span)) {
            c_zb_frames.Inc();
            frame->start_sample += d.start_sample;
            frame->end_sample += d.start_sample;
            report.zb_frames.push_back(std::move(*frame));
          }
        });
        break;
      }
      default:
        break;  // no analysis stage for this protocol
    }
  }
  DedupAnalysisResults(report);
}

// The parallel analysis path (DESIGN.md §10). Each dispatched interval x
// protocol demodulation — including every per-channel Bluetooth pass — is
// submitted as one independent task writing into its own result slot; after
// the batch joins, slots are merged in submission order, so the
// result-bearing report fields are bit-identical to the serial run.
//
// Supervision uses the split boundary: Admit() on this (driver) thread in
// interval order — deterministic breaker decisions — and one Finish() per
// admitted interval at merge time, also in interval order, combining the
// unit outcomes (first throwing unit in submission order wins the error
// slot). Unlike the serial path, a throwing unit does not abort its sibling
// channel units: they run to completion and their results are kept (the
// "one worker cannot poison siblings" guarantee).
void RunAnalysisParallel(const AnalysisConfig& analysis,
                         double noise_floor_power, Supervisor* sup,
                         Executor* ex, const std::vector<Detection>& intervals,
                         dsp::const_sample_span x, CostLedger& ledger,
                         MonitorReport& report) {
  static obs::Counter& c_zb_attempts = obs::Registry::Default().GetCounter(
      "rfdump_phyzigbee_decode_attempts_total");
  static obs::Counter& c_zb_frames = obs::Registry::Default().GetCounter(
      "rfdump_phyzigbee_frames_total");

  // One result slot per task. Slots are written by exactly one worker each
  // and only read after Batch::Wait(), so they need no locking.
  struct UnitOut {
    const char* stage = nullptr;
    std::uint64_t samples = 0;
    double cpu = 0.0;
    bool ran = false;  // false: skipped on an already-expired budget
    std::vector<phy80211::DecodedFrame> wifi;
    std::vector<phybt::DecodedBtPacket> bt;
    std::vector<phyzigbee::DecodedZbFrame> zb;
    std::exception_ptr error;
    std::string error_text;
  };
  struct IntervalJob {
    dsp::const_sample_span span;
    std::shared_ptr<Supervisor::Admission> admission;  // null without sup
    bool run_units = true;
    std::vector<UnitOut> units;
  };

  // Shared by every task when unsupervised; WorkBudget::Charge is
  // documented safe under concurrent callers.
  util::WorkBudget unlimited;
  std::deque<IntervalJob> jobs;  // deque: stable addresses for task captures
  Executor::Batch batch(ex);

  for (const auto& d : intervals) {
    // Unit plan per protocol, mirroring the serial path exactly: protocols
    // whose demodulation is disabled never open a supervision boundary;
    // Bluetooth always does (even with zero channels configured).
    int unit_count = 0;
    switch (d.protocol) {
      case Protocol::kWifi80211b:
        if (!analysis.wifi_demod) continue;
        unit_count = 1;
        break;
      case Protocol::kBluetooth:
        unit_count = std::max(analysis.bt_demods, 0);
        break;
      case Protocol::kZigbee:
        if (!analysis.zigbee_demod) continue;
        unit_count = 1;
        break;
      default:
        continue;  // no analysis stage for this protocol
    }

    jobs.emplace_back();
    IntervalJob& job = jobs.back();
    job.span = x.subspan(
        static_cast<std::size_t>(d.start_sample),
        static_cast<std::size_t>(d.end_sample - d.start_sample));
    if (sup != nullptr) {
      job.admission =
          sup->Admit(d.protocol, d.start_sample, d.end_sample, job.span);
      job.run_units = job.admission->admitted;
    }
    if (!job.run_units) continue;
    job.units.resize(static_cast<std::size_t>(unit_count));
    util::WorkBudget* budget =
        job.admission ? &job.admission->budget : &unlimited;
    const std::int64_t start = d.start_sample;
    const auto span = job.span;

    switch (d.protocol) {
      case Protocol::kWifi80211b: {
        UnitOut* out = &job.units[0];
        batch.Run([out, budget, span, start] {
          out->ran = true;
          out->stage = "analysis/80211-demod";
          out->samples = span.size();
          obs::Stopwatch w;
          RFDUMP_TRACE_SPAN("analysis/80211-demod");
          try {
            phy80211::Demodulator::Config cfg;
            cfg.budget = budget;
            phy80211::Demodulator wifi(cfg);
            auto frames = wifi.DecodeAll(span);
            for (auto& f : frames) {
              f.start_sample += start;
              f.end_sample += start;
            }
            out->wifi = std::move(frames);
          } catch (const std::exception& e) {
            out->error = std::current_exception();
            out->error_text = e.what();
          } catch (...) {
            out->error = std::current_exception();
            out->error_text = "non-std exception";
          }
          out->cpu = w.Seconds();
        });
        break;
      }
      case Protocol::kBluetooth: {
        for (int ch = 0; ch < unit_count; ++ch) {
          UnitOut* out = &job.units[static_cast<std::size_t>(ch)];
          const std::uint8_t uap = analysis.bt_uap;
          batch.Run([out, budget, span, start, ch, uap, noise_floor_power] {
            if (budget->expired()) return;  // the serial path's early break
            out->ran = true;
            out->stage = "analysis/bt-demod";
            out->samples = span.size();
            obs::Stopwatch w;
            RFDUMP_TRACE_SPAN("analysis/bt-demod");
            try {
              phybt::Demodulator::Config cfg;
              cfg.channel_index = ch % phybt::kVisibleChannels;
              cfg.expected_uap = uap;
              cfg.noise_floor_power = noise_floor_power;
              cfg.budget = budget;
              phybt::Demodulator bt(cfg);
              auto pkts = bt.DecodeAll(span);
              for (auto& p : pkts) {
                p.start_sample += start;
                p.end_sample += start;
              }
              out->bt = std::move(pkts);
            } catch (const std::exception& e) {
              out->error = std::current_exception();
              out->error_text = e.what();
            } catch (...) {
              out->error = std::current_exception();
              out->error_text = "non-std exception";
            }
            out->cpu = w.Seconds();
          });
        }
        break;
      }
      case Protocol::kZigbee: {
        UnitOut* out = &job.units[0];
        batch.Run([out, budget, span, start] {
          (void)budget;
          out->ran = true;
          out->stage = "analysis/zigbee-demod";
          out->samples = span.size();
          obs::Stopwatch w;
          RFDUMP_TRACE_SPAN("analysis/zigbee-demod");
          try {
            c_zb_attempts.Inc();
            if (auto frame = phyzigbee::DecodeFrame(span)) {
              c_zb_frames.Inc();
              frame->start_sample += start;
              frame->end_sample += start;
              out->zb.push_back(std::move(*frame));
            }
          } catch (const std::exception& e) {
            out->error = std::current_exception();
            out->error_text = e.what();
          } catch (...) {
            out->error = std::current_exception();
            out->error_text = "non-std exception";
          }
          out->cpu = w.Seconds();
        });
        break;
      }
      default:
        break;
    }
  }

  batch.Wait();

  // Deterministic ordered merge: jobs in interval order, units in
  // submission order — the exact append order of the serial path.
  std::exception_ptr unsupervised_error;
  for (IntervalJob& job : jobs) {
    std::exception_ptr first_error;
    std::string error_text;
    for (UnitOut& u : job.units) {
      if (u.ran) ledger.Add(u.stage, u.cpu, u.samples);
      if (u.error && !first_error) {
        first_error = u.error;
        error_text = u.error_text;
      }
      for (auto& f : u.wifi) report.wifi_frames.push_back(std::move(f));
      for (auto& p : u.bt) report.bt_packets.push_back(std::move(p));
      for (auto& z : u.zb) report.zb_frames.push_back(std::move(z));
    }
    if (job.admission && job.admission->admitted) {
      Outcome outcome = Outcome::kOk;
      if (first_error) {
        outcome = Outcome::kException;
      } else if (job.admission->budget.expired()) {
        outcome = Outcome::kDeadline;
      }
      sup->Finish(*job.admission, outcome, std::move(error_text), job.span);
    } else if (!job.admission && first_error && !unsupervised_error) {
      unsupervised_error = first_error;
    }
  }
  // Unsupervised semantics: a demodulator throw propagates out of the
  // pipeline (first failing unit in submission order, deterministically).
  if (unsupervised_error) std::rethrow_exception(unsupervised_error);

  DedupAnalysisResults(report);
}

void RunAnalysis(const AnalysisConfig& analysis, double noise_floor_power,
                 Supervisor* sup, Executor* ex,
                 const std::vector<Detection>& intervals,
                 dsp::const_sample_span x, CostLedger& ledger,
                 MonitorReport& report) {
  if (!analysis.demodulate) return;
  if (ex != nullptr && !ex->serial()) {
    RunAnalysisParallel(analysis, noise_floor_power, sup, ex, intervals, x,
                        ledger, report);
  } else {
    RunAnalysisSerial(analysis, noise_floor_power, sup, intervals, x, ledger,
                      report);
  }
}

}  // namespace

double MonitorReport::TotalCpuSeconds() const {
  double total = 0.0;
  for (const auto& c : costs) total += c.cpu_seconds;
  return total;
}

double MonitorReport::CostOf(const std::string& prefix) const {
  double total = 0.0;
  for (const auto& c : costs) {
    if (c.name.rfind(prefix, 0) == 0) total += c.cpu_seconds;
  }
  return total;
}

double MonitorReport::CpuOverRealTime() const {
  if (samples_total == 0) return 0.0;
  const double real_seconds =
      static_cast<double>(samples_total) / dsp::kSampleRateHz;
  return TotalCpuSeconds() / real_seconds;
}

// ------------------------------------------------------------------- RFDump

MonitorReport AnalyzeDetections(DetectOutput det, dsp::const_sample_span x,
                                Executor* executor, ResultSink* sink) {
  RFDUMP_TRACE_SPAN("pipeline/analyze");
  MonitorReport report = std::move(det.report);
  CostLedger ledger;
  for (const auto& c : report.costs) {
    ledger.Add(c.name, c.cpu_seconds, c.samples_in);
  }
  RunAnalysis(det.analysis, det.noise_floor_power, det.supervisor, executor,
              report.dispatched, x, ledger, report);
  report.costs = ledger.Costs();
  if (sink != nullptr) {
    for (const auto& h : report.health) sink->OnHealth(h);
    for (const auto& d : report.detections) sink->OnDetection(d);
    for (const auto& f : report.wifi_frames) sink->OnWifiFrame(f);
    for (const auto& p : report.bt_packets) sink->OnBtPacket(p);
    for (const auto& z : report.zb_frames) sink->OnZbFrame(z);
  }
  return report;
}

RFDumpPipeline::RFDumpPipeline() : RFDumpPipeline(Config{}) {}

RFDumpPipeline::RFDumpPipeline(Config config) : config_(config) {}

MonitorReport RFDumpPipeline::Process(dsp::const_sample_span x) {
  RFDUMP_TRACE_SPAN("pipeline/process");
  return AnalyzeDetections(Detect(x), x, config_.executor, config_.sink);
}

DetectOutput RFDumpPipeline::Detect(dsp::const_sample_span x) {
  RFDUMP_TRACE_SPAN("pipeline/detect");
  static obs::Counter& c_process =
      obs::Registry::Default().GetCounter("rfdump_pipeline_process_total");
  static obs::Counter& c_samples =
      obs::Registry::Default().GetCounter("rfdump_pipeline_samples_total");
  c_process.Inc();
  c_samples.Inc(x.size());

  MonitorReport report;
  report.samples_total = x.size();
  CostLedger ledger;

  // Stage 0: input health scan — a real front-end delivers saturated and
  // occasionally corrupt (non-finite) samples; account for them up front so
  // downstream results can be interpreted.
  if (config_.health_scan) {
    CostLedger::Scope scope(ledger, "detect/health", x.size());
    HealthReport h;
    h.block_samples = x.size();
    const float rail = 0.98f * config_.saturation_amplitude;
    std::uint64_t saturated = 0;
    for (const dsp::cfloat& s : x) {
      const float re = s.real(), im = s.imag();
      if (!std::isfinite(re) || !std::isfinite(im)) {
        ++h.nonfinite_samples;
      } else if (config_.saturation_amplitude > 0.0f &&
                 (std::fabs(re) >= rail || std::fabs(im) >= rail)) {
        ++saturated;
      }
    }
    h.saturation_fraction =
        x.empty() ? 0.0
                  : static_cast<double>(saturated) /
                        static_cast<double>(x.size());
    report.health.push_back(h);
  }

  // Stage 1: protocol-agnostic peak detection over 25 us chunks (with the
  // integrated energy gate).
  PeakDetector::Config pd_cfg;
  pd_cfg.noise_floor_power = config_.noise_floor_power;
  PeakDetector peaks(pd_cfg);

  WifiTimingDetector wifi_timing;
  BluetoothTimingDetector bt_timing;
  MicrowaveTimingDetector mw_timing;
  ZigbeeTimingDetector zb_timing;
  GfskPhaseDetector gfsk_phase;
  DbpskPhaseDetector dbpsk_phase;
  CollisionDetector collision;
  BluetoothFreqDetector::Config freq_cfg;
  freq_cfg.noise_floor_power = config_.noise_floor_power;
  BluetoothFreqDetector bt_freq(freq_cfg);

  std::vector<Detection>& detections = report.detections;
  std::uint64_t peak_cursor = 0;

  // Stage boundary for the cheap detectors: with a supervisor, a throwing
  // detector is counted and contained (that detector contributes nothing for
  // this batch of peaks, everything else proceeds); without one, exceptions
  // propagate as before.
  Supervisor* const sup = config_.supervisor;
  const auto contain = [sup](const char* stage, auto&& fn) {
    if (sup) {
      sup->Contain(stage, fn);
    } else {
      fn();
    }
  };

  const auto handle_peaks = [&](std::span<const Peak> fresh) {
    if (fresh.empty()) return;
    if (config_.timing_detectors) {
      CostLedger::Scope scope(ledger, "detect/timing", 0);
      contain("detect/timing-wifi", [&] {
        auto d1 = wifi_timing.OnPeaks(fresh);
        detections.insert(detections.end(), d1.begin(), d1.end());
      });
      contain("detect/timing-bt", [&] {
        auto d2 = bt_timing.OnPeaks(fresh);
        detections.insert(detections.end(), d2.begin(), d2.end());
      });
    }
    if (config_.microwave_detector) {
      CostLedger::Scope scope(ledger, "detect/timing", 0);
      contain("detect/timing-microwave", [&] {
        auto d = mw_timing.OnPeaks(fresh);
        detections.insert(detections.end(), d.begin(), d.end());
      });
    }
    if (config_.zigbee_detector) {
      CostLedger::Scope scope(ledger, "detect/timing", 0);
      contain("detect/timing-zigbee", [&] {
        auto d = zb_timing.OnPeaks(fresh);
        detections.insert(detections.end(), d.begin(), d.end());
      });
    }
    if (config_.collision_detector) {
      for (const Peak& p : fresh) {
        const auto s = static_cast<std::size_t>(
            std::clamp<std::int64_t>(p.start_sample, 0,
                                     static_cast<std::int64_t>(x.size())));
        const auto e = static_cast<std::size_t>(
            std::clamp<std::int64_t>(p.end_sample, 0,
                                     static_cast<std::int64_t>(x.size())));
        if (e <= s) continue;
        CostLedger::Scope scope(ledger, "detect/collision", e - s);
        contain("detect/collision", [&] {
          auto d = collision.OnPeak(p, x.subspan(s, e - s));
          detections.insert(detections.end(), d.begin(), d.end());
        });
      }
    }
    if (config_.phase_detectors) {
      for (const Peak& p : fresh) {
        const auto s = static_cast<std::size_t>(
            std::clamp<std::int64_t>(p.start_sample, 0,
                                     static_cast<std::int64_t>(x.size())));
        const auto e = static_cast<std::size_t>(
            std::clamp<std::int64_t>(p.end_sample, 0,
                                     static_cast<std::int64_t>(x.size())));
        if (e <= s) continue;
        const auto span = x.subspan(s, e - s);
        CostLedger::Scope scope(ledger, "detect/phase", span.size());
        contain("detect/phase-dbpsk", [&] {
          if (auto d = dbpsk_phase.OnPeak(p, span)) detections.push_back(*d);
        });
        contain("detect/phase-gfsk", [&] {
          if (auto d = gfsk_phase.OnPeak(p, span)) detections.push_back(*d);
        });
      }
    }
  };

  for (std::size_t at = 0; at < x.size(); at += kChunkSamples) {
    const std::size_t n = std::min(kChunkSamples, x.size() - at);
    const auto chunk = x.subspan(at, n);
    {
      CostLedger::Scope scope(ledger, "detect/peak", n);
      peaks.PushChunk(chunk, static_cast<std::int64_t>(at));
    }
    if (config_.freq_detector) {
      CostLedger::Scope scope(ledger, "detect/freq", n);
      auto d = bt_freq.PushChunk(chunk, static_cast<std::int64_t>(at));
      detections.insert(detections.end(), d.begin(), d.end());
    }
    const auto fresh = peaks.CompletedSince(peak_cursor);
    peak_cursor = peaks.CompletedCount();
    handle_peaks(fresh);
  }
  {
    CostLedger::Scope scope(ledger, "detect/peak", 0);
    peaks.Flush();
  }
  handle_peaks(peaks.CompletedSince(peak_cursor));
  if (config_.freq_detector) {
    auto d = bt_freq.Flush();
    detections.insert(detections.end(), d.begin(), d.end());
  }

  // Stage 2: dispatch — merge detections per protocol and analyze only those
  // sample ranges. Under load shedding, low-confidence tags stay in the
  // detection log but are not worth demodulator time. Every decision is
  // counted per protocol (tagged = forwarded to merge, rejected = below the
  // confidence floor) so an operator can see what load shedding discards.
  static obs::Counter& c_detections = obs::Registry::Default().GetCounter(
      "rfdump_detect_detections_total");
  static PerProtocolCounter c_tagged("rfdump_dispatch_tagged_total");
  static PerProtocolCounter c_rejected("rfdump_dispatch_rejected_total");
  static PerProtocolCounter c_forwarded("rfdump_dispatch_forwarded_total");
  c_detections.Inc(detections.size());
  std::uint64_t tagged_n = 0, rejected_n = 0;
  const std::int64_t pad = UsToSamples(config_.dispatch_pad_us);
  std::vector<Detection> padded;
  padded.reserve(detections.size());
  for (const auto& d : detections) {
    if (d.confidence < config_.analysis.min_dispatch_confidence) {
      c_rejected.of(d.protocol).Inc();
      ++rejected_n;
      continue;
    }
    c_tagged.of(d.protocol).Inc();
    ++tagged_n;
    padded.push_back(d);
  }
  for (auto& d : padded) {
    d.start_sample -= pad;
    d.end_sample += pad;
  }
  report.dispatched = MergeDetections(std::move(padded), pad,
                                      static_cast<std::int64_t>(x.size()));
  for (const auto& d : report.dispatched) c_forwarded.of(d.protocol).Inc();
  if (!report.health.empty()) {
    report.health.back().tagged_detections = tagged_n;
    report.health.back().rejected_detections = rejected_n;
    report.health.back().forwarded_intervals = report.dispatched.size();
  }
  DetectOutput out;
  report.costs = ledger.Costs();
  out.report = std::move(report);
  out.analysis = config_.analysis;
  out.noise_floor_power = config_.noise_floor_power;
  out.supervisor = config_.supervisor;
  return out;
}

// -------------------------------------------------------------------- naive

NaivePipeline::NaivePipeline() : NaivePipeline(Config{}) {}

NaivePipeline::NaivePipeline(Config config) : config_(config) {}

MonitorReport NaivePipeline::Process(dsp::const_sample_span x) {
  RFDUMP_TRACE_SPAN("pipeline/naive-process");
  return AnalyzeDetections(Detect(x), x, config_.executor, config_.sink);
}

DetectOutput NaivePipeline::Detect(dsp::const_sample_span x) {
  MonitorReport report;
  report.samples_total = x.size();
  CostLedger ledger;

  std::vector<Detection> intervals;
  if (config_.energy_gate) {
    // Energy filtering via the peak detector's gate; everything above the
    // noise floor goes to ALL demodulators.
    PeakDetector::Config pd_cfg;
    pd_cfg.noise_floor_power = config_.noise_floor_power;
    PeakDetector peaks(pd_cfg);
    for (std::size_t at = 0; at < x.size(); at += kChunkSamples) {
      const std::size_t n = std::min(kChunkSamples, x.size() - at);
      CostLedger::Scope scope(ledger, "detect/energy", n);
      peaks.PushChunk(x.subspan(at, n), static_cast<std::int64_t>(at));
    }
    {
      CostLedger::Scope scope(ledger, "detect/energy", 0);
      peaks.Flush();
    }
    const std::int64_t pad = UsToSamples(config_.dispatch_pad_us);
    std::vector<Detection> raw;
    for (const Peak& p : peaks.history()) {
      raw.push_back({Protocol::kWifi80211b, p.start_sample - pad,
                     p.end_sample + pad, 1.0f, "energy"});
      raw.push_back({Protocol::kBluetooth, p.start_sample - pad,
                     p.end_sample + pad, 1.0f, "energy"});
    }
    intervals = MergeDetections(std::move(raw), pad,
                                static_cast<std::int64_t>(x.size()));
  } else {
    // Pure naive: the full capture goes to every demodulator.
    intervals.push_back({Protocol::kWifi80211b, 0,
                         static_cast<std::int64_t>(x.size()), 1.0f, "naive"});
    intervals.push_back({Protocol::kBluetooth, 0,
                         static_cast<std::int64_t>(x.size()), 1.0f, "naive"});
  }
  report.dispatched = std::move(intervals);
  DetectOutput out;
  report.costs = ledger.Costs();
  out.report = std::move(report);
  out.analysis = config_.analysis;
  out.noise_floor_power = config_.noise_floor_power;
  out.supervisor = config_.supervisor;
  return out;
}

}  // namespace rfdump::core
