#include "rfdump/core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>

#include "rfdump/core/collision.hpp"
#include "rfdump/core/executor.hpp"
#include "rfdump/core/result_sink.hpp"
#include "rfdump/dsp/simd.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/util/scratch.hpp"

namespace rfdump::core {
namespace {

/// Accumulates stage costs by name. Timing comes from the shared
/// obs::Stopwatch (the same monotonic clock the shed controller and the
/// benches read), and every ledgered stage doubles as a trace span.
class CostLedger {
 public:
  class Scope {
   public:
    Scope(CostLedger& ledger, const char* name, std::uint64_t samples)
        : ledger_(ledger), name_(name), samples_(samples), span_(name) {}
    ~Scope() { ledger_.Add(name_, watch_.Seconds(), samples_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    CostLedger& ledger_;
    const char* name_;
    std::uint64_t samples_;
    obs::TraceSpan span_;
    obs::Stopwatch watch_;
  };

  void Add(const std::string& name, double secs, std::uint64_t samples) {
    auto& entry = entries_[name];
    entry.first += secs;
    entry.second += samples;
  }

  [[nodiscard]] std::vector<StageCost> Costs() const {
    std::vector<StageCost> out;
    out.reserve(entries_.size());
    for (const auto& [name, v] : entries_) {
      out.push_back({name, v.first, v.second});
    }
    return out;
  }

 private:
  std::map<std::string, std::pair<double, std::uint64_t>> entries_;
};

std::int64_t UsToSamples(double us) {
  return static_cast<std::int64_t>(us * 1e-6 * dsp::kSampleRateHz + 0.5);
}

/// One registry counter per protocol under a common family name, resolved
/// once (construct as a function-local static) so the per-detection cost is
/// a single relaxed atomic increment.
class PerProtocolCounter {
 public:
  explicit PerProtocolCounter(const char* family) {
    for (std::size_t id = 0; id < kProtocolCount; ++id) {
      const auto p = static_cast<Protocol>(id);
      counters_[id] = &obs::Registry::Default().GetCounter(
          std::string(family) + "{protocol=\"" + ProtocolName(p) + "\"}");
    }
  }
  obs::Counter& of(Protocol p) {
    return *counters_[static_cast<std::size_t>(p)];
  }

 private:
  std::array<obs::Counter*, kProtocolCount> counters_{};
};

// Deduplicates frames/packets found by more than one pass over overlapping
// intervals. Runs on the full per-report vectors, so serial and parallel
// analysis produce identical output as long as they append in the same
// (interval x unit) submission order — which both do.
void DedupAnalysisResults(MonitorReport& report) {
  std::sort(report.bt_packets.begin(), report.bt_packets.end(),
            [](const auto& a, const auto& b) {
              return a.start_sample < b.start_sample;
            });
  report.bt_packets.erase(
      std::unique(report.bt_packets.begin(), report.bt_packets.end(),
                  [](const auto& a, const auto& b) {
                    return a.channel_index == b.channel_index &&
                           std::llabs(a.start_sample - b.start_sample) < 16;
                  }),
      report.bt_packets.end());
  std::sort(report.wifi_frames.begin(), report.wifi_frames.end(),
            [](const auto& a, const auto& b) {
              return a.start_sample < b.start_sample;
            });
  report.wifi_frames.erase(
      std::unique(report.wifi_frames.begin(), report.wifi_frames.end(),
                  [](const auto& a, const auto& b) {
                    return std::llabs(a.start_sample - b.start_sample) < 16;
                  }),
      report.wifi_frames.end());
  // Native generic events (bundles without a typed vector) get the same
  // treatment as the Bluetooth vector: per-protocol, per-channel dedup.
  std::sort(report.events.begin(), report.events.end(),
            [](const ProtocolEvent& a, const ProtocolEvent& b) {
              if (a.protocol != b.protocol) return a.protocol < b.protocol;
              return a.start_sample < b.start_sample;
            });
  report.events.erase(
      std::unique(report.events.begin(), report.events.end(),
                  [](const ProtocolEvent& a, const ProtocolEvent& b) {
                    return a.protocol == b.protocol &&
                           a.channel == b.channel &&
                           std::llabs(a.start_sample - b.start_sample) < 16;
                  }),
      report.events.end());
}

// Rebuilds MonitorReport::events as the canonical generic view: bundles with
// a legacy typed vector contribute through their collect_events shim; native
// events (already in report.events, committed by run_unit) are kept in
// place. Grouped by protocol id, preserving per-protocol decode order.
void BuildEventView(MonitorReport& report) {
  std::vector<ProtocolEvent> native = std::move(report.events);
  std::vector<ProtocolEvent> events;
  for (const auto& bundle : ProtocolRegistry::Instance().bundles()) {
    if (bundle.collect_events) {
      bundle.collect_events(report, events);
    } else {
      for (auto& e : native) {
        if (e.protocol == bundle.protocol) events.push_back(std::move(e));
      }
    }
  }
  report.events = std::move(events);
}

// Runs the demodulator bank over the given per-protocol merged intervals
// (pass a single full-span detection per protocol for the naive paths).
// Which protocols run, how many units each interval fans out into, and what
// a unit does all come from the interval's registry bundle. With a
// supervisor, each interval's analysis runs inside a stage boundary (armed
// WorkBudget, exception containment, breaker, quarantine); without one, the
// closure runs directly with an unarmed (unlimited) budget, which preserves
// the exact unsupervised batch semantics.
void RunAnalysisSerial(const AnalysisConfig& analysis,
                       double noise_floor_power, Supervisor* sup,
                       const std::vector<Detection>& intervals,
                       dsp::const_sample_span x, CostLedger& ledger,
                       MonitorReport& report) {
  util::WorkBudget unlimited;
  const auto supervised =
      [&](const Detection& d, dsp::const_sample_span span,
          const std::function<void(util::WorkBudget&)>& fn) {
        if (sup) {
          return sup->Supervise(d.protocol, d.start_sample, d.end_sample,
                                span, fn);
        }
        fn(unlimited);
        return Outcome::kOk;
      };
  const auto& registry = ProtocolRegistry::Instance();
  for (const auto& d : intervals) {
    const ProtocolBundle* bundle = registry.Find(d.protocol);
    if (bundle == nullptr || !bundle->analysis_plan ||
        (analysis.bundle_mask & BundleBit(d.protocol)) == 0) {
      continue;  // no analysis stage for this protocol
    }
    const AnalysisPlan plan = bundle->analysis_plan(analysis);
    if (plan.units < 0) continue;  // disabled: no supervision boundary
    const auto span = x.subspan(
        static_cast<std::size_t>(d.start_sample),
        static_cast<std::size_t>(d.end_sample - d.start_sample));
    // All units of one interval share the interval's budget, so a runaway
    // unit cannot starve the block (remaining units see the expired budget
    // and bail when the bundle opts into the check).
    supervised(d, span, [&](util::WorkBudget& budget) {
      for (int unit = 0; unit < plan.units; ++unit) {
        if (plan.check_budget && budget.expired()) break;
        CostLedger::Scope scope(ledger, plan.stage, span.size());
        AnalysisUnitContext ctx;
        ctx.span = span;
        ctx.start_sample = d.start_sample;
        ctx.analysis = &analysis;
        ctx.noise_floor_power = noise_floor_power;
        ctx.budget = &budget;
        if (AnalysisCommit commit = bundle->run_unit(ctx, unit)) {
          commit(report);
        }
      }
    });
  }
  DedupAnalysisResults(report);
}

// The parallel analysis path (DESIGN.md §10). Each dispatched interval x
// analysis unit — e.g. every per-channel Bluetooth pass — is submitted as
// one independent task writing into its own result slot; after the batch
// joins, slots are merged in submission order, so the result-bearing report
// fields are bit-identical to the serial run.
//
// Supervision uses the split boundary: Admit() on this (driver) thread in
// interval order — deterministic breaker decisions — and one Finish() per
// admitted interval at merge time, also in interval order, combining the
// unit outcomes (first throwing unit in submission order wins the error
// slot). Unlike the serial path, a throwing unit does not abort its sibling
// channel units: they run to completion and their results are kept (the
// "one worker cannot poison siblings" guarantee).
void RunAnalysisParallel(const AnalysisConfig& analysis,
                         double noise_floor_power, Supervisor* sup,
                         Executor* ex, const std::vector<Detection>& intervals,
                         dsp::const_sample_span x, CostLedger& ledger,
                         MonitorReport& report) {
  // One result slot per task. Slots are written by exactly one worker each
  // and only read after Batch::Wait(), so they need no locking.
  struct UnitOut {
    const char* stage = nullptr;
    std::uint64_t samples = 0;
    double cpu = 0.0;
    bool ran = false;  // false: skipped on an already-expired budget
    AnalysisCommit commit;  // deferred result application, run at merge
    std::exception_ptr error;
    std::string error_text;
  };
  struct IntervalJob {
    dsp::const_sample_span span;
    std::shared_ptr<Supervisor::Admission> admission;  // null without sup
    bool run_units = true;
    std::vector<UnitOut> units;
  };

  // Shared by every task when unsupervised; WorkBudget::Charge is
  // documented safe under concurrent callers.
  util::WorkBudget unlimited;
  std::deque<IntervalJob> jobs;  // deque: stable addresses for task captures
  Executor::Batch batch(ex);
  const auto& registry = ProtocolRegistry::Instance();

  for (const auto& d : intervals) {
    // Unit plan per protocol from the registry, mirroring the serial path
    // exactly: a disabled bundle (negative unit count) never opens a
    // supervision boundary; a zero-unit plan (e.g. Bluetooth with zero
    // channels configured) still does.
    const ProtocolBundle* bundle = registry.Find(d.protocol);
    if (bundle == nullptr || !bundle->analysis_plan ||
        (analysis.bundle_mask & BundleBit(d.protocol)) == 0) {
      continue;  // no analysis stage for this protocol
    }
    const AnalysisPlan plan = bundle->analysis_plan(analysis);
    if (plan.units < 0) continue;

    jobs.emplace_back();
    IntervalJob& job = jobs.back();
    job.span = x.subspan(
        static_cast<std::size_t>(d.start_sample),
        static_cast<std::size_t>(d.end_sample - d.start_sample));
    if (sup != nullptr) {
      job.admission =
          sup->Admit(d.protocol, d.start_sample, d.end_sample, job.span);
      job.run_units = job.admission->admitted;
    }
    if (!job.run_units) continue;
    job.units.resize(static_cast<std::size_t>(plan.units));
    util::WorkBudget* budget =
        job.admission ? &job.admission->budget : &unlimited;
    const std::int64_t start = d.start_sample;
    const auto span = job.span;

    for (int unit = 0; unit < plan.units; ++unit) {
      UnitOut* out = &job.units[static_cast<std::size_t>(unit)];
      batch.Run([out, bundle, plan, budget, span, start, unit,
                 noise_floor_power, &analysis] {
        if (plan.check_budget && budget->expired()) {
          return;  // the serial path's early break
        }
        out->ran = true;
        out->stage = plan.stage;
        out->samples = span.size();
        obs::Stopwatch w;
        obs::TraceSpan trace(plan.stage);
        try {
          AnalysisUnitContext ctx;
          ctx.span = span;
          ctx.start_sample = start;
          ctx.analysis = &analysis;
          ctx.noise_floor_power = noise_floor_power;
          ctx.budget = budget;
          out->commit = bundle->run_unit(ctx, unit);
        } catch (const std::exception& e) {
          out->error = std::current_exception();
          out->error_text = e.what();
        } catch (...) {
          out->error = std::current_exception();
          out->error_text = "non-std exception";
        }
        out->cpu = w.Seconds();
      });
    }
  }

  batch.Wait();

  // Deterministic ordered merge: jobs in interval order, units in
  // submission order — the exact append order of the serial path.
  std::exception_ptr unsupervised_error;
  for (IntervalJob& job : jobs) {
    std::exception_ptr first_error;
    std::string error_text;
    for (UnitOut& u : job.units) {
      if (u.ran) ledger.Add(u.stage, u.cpu, u.samples);
      if (u.error && !first_error) {
        first_error = u.error;
        error_text = u.error_text;
      }
      if (u.commit) u.commit(report);
    }
    if (job.admission && job.admission->admitted) {
      Outcome outcome = Outcome::kOk;
      if (first_error) {
        outcome = Outcome::kException;
      } else if (job.admission->budget.expired()) {
        outcome = Outcome::kDeadline;
      }
      sup->Finish(*job.admission, outcome, std::move(error_text), job.span);
    } else if (!job.admission && first_error && !unsupervised_error) {
      unsupervised_error = first_error;
    }
  }
  // Unsupervised semantics: a demodulator throw propagates out of the
  // pipeline (first failing unit in submission order, deterministically).
  if (unsupervised_error) std::rethrow_exception(unsupervised_error);

  DedupAnalysisResults(report);
}

void RunAnalysis(const AnalysisConfig& analysis, double noise_floor_power,
                 Supervisor* sup, Executor* ex,
                 const std::vector<Detection>& intervals,
                 dsp::const_sample_span x, CostLedger& ledger,
                 MonitorReport& report) {
  if (!analysis.demodulate) return;
  if (ex != nullptr && !ex->serial()) {
    RunAnalysisParallel(analysis, noise_floor_power, sup, ex, intervals, x,
                        ledger, report);
  } else {
    RunAnalysisSerial(analysis, noise_floor_power, sup, intervals, x, ledger,
                      report);
  }
}

/// A bundle's freshly constructed detector hooks for one Detect() call.
struct ActiveDetectors {
  const ProtocolBundle* bundle = nullptr;
  ProtocolDetectors hooks;
};

/// Instantiates detector hooks for every mask-enabled bundle, ordered by
/// detect_rank (the historical detector call order).
std::vector<ActiveDetectors> MakeActiveDetectors(std::uint32_t bundle_mask,
                                                 const DetectorSetup& setup) {
  std::vector<ActiveDetectors> active;
  for (const auto& bundle : ProtocolRegistry::Instance().bundles()) {
    if ((bundle_mask & BundleBit(bundle.protocol)) == 0) continue;
    if (!bundle.make_detectors) continue;
    active.push_back({&bundle, bundle.make_detectors(setup)});
  }
  std::stable_sort(active.begin(), active.end(),
                   [](const ActiveDetectors& a, const ActiveDetectors& b) {
                     return a.bundle->detect_rank < b.bundle->detect_rank;
                   });
  return active;
}

}  // namespace

double MonitorReport::TotalCpuSeconds() const {
  double total = 0.0;
  for (const auto& c : costs) total += c.cpu_seconds;
  return total;
}

double MonitorReport::CostOf(const std::string& prefix) const {
  double total = 0.0;
  for (const auto& c : costs) {
    if (c.name.rfind(prefix, 0) == 0) total += c.cpu_seconds;
  }
  return total;
}

double MonitorReport::CpuOverRealTime() const {
  if (samples_total == 0) return 0.0;
  const double real_seconds =
      static_cast<double>(samples_total) / dsp::kSampleRateHz;
  return TotalCpuSeconds() / real_seconds;
}

// ------------------------------------------------------------------- RFDump

MonitorReport AnalyzeDetections(DetectOutput det, dsp::const_sample_span x,
                                Executor* executor, ResultSink* sink) {
  RFDUMP_TRACE_SPAN("pipeline/analyze");
  MonitorReport report = std::move(det.report);
  CostLedger ledger;
  for (const auto& c : report.costs) {
    ledger.Add(c.name, c.cpu_seconds, c.samples_in);
  }
  RunAnalysis(det.analysis, det.noise_floor_power, det.supervisor, executor,
              report.dispatched, x, ledger, report);
  BuildEventView(report);
  report.costs = ledger.Costs();
  if (sink != nullptr) {
    for (const auto& h : report.health) sink->OnHealth(h);
    for (const auto& d : report.detections) sink->OnDetection(d);
    for (const auto& f : report.wifi_frames) sink->OnWifiFrame(f);
    for (const auto& p : report.bt_packets) sink->OnBtPacket(p);
    for (const auto& z : report.zb_frames) sink->OnZbFrame(z);
    for (const auto& e : report.events) sink->OnEvent(e);
  }
  return report;
}

void RFDumpPipeline::Config::EnableBundle(Protocol p) {
  bundle_mask |= BundleBit(p);
  // The historical protocols predate the bundle mask and are additionally
  // gated by their legacy booleans; keep both switch forms consistent. New
  // bundles are controlled by the mask alone and need no case here.
  switch (p) {
    case Protocol::kZigbee:
      zigbee_detector = true;
      analysis.zigbee_demod = true;
      break;
    case Protocol::kMicrowave:
      microwave_detector = true;
      break;
    default:
      break;
  }
}

RFDumpPipeline::RFDumpPipeline() : RFDumpPipeline(Config{}) {}

RFDumpPipeline::RFDumpPipeline(Config config) : config_(config) {}

MonitorReport RFDumpPipeline::Process(dsp::const_sample_span x) {
  RFDUMP_TRACE_SPAN("pipeline/process");
  return AnalyzeDetections(Detect(x), x, config_.executor, config_.sink);
}

DetectOutput RFDumpPipeline::Detect(dsp::const_sample_span x) {
  RFDUMP_TRACE_SPAN("pipeline/detect");
  static obs::Counter& c_process =
      obs::Registry::Default().GetCounter("rfdump_pipeline_process_total");
  static obs::Counter& c_samples =
      obs::Registry::Default().GetCounter("rfdump_pipeline_samples_total");
  c_process.Inc();
  c_samples.Inc(x.size());

  MonitorReport report;
  report.samples_total = x.size();
  CostLedger ledger;

  // Stage 0: input health scan — a real front-end delivers saturated and
  // occasionally corrupt (non-finite) samples; account for them up front so
  // downstream results can be interpreted.
  if (config_.health_scan) {
    CostLedger::Scope scope(ledger, "detect/health", x.size());
    HealthReport h;
    h.block_samples = x.size();
    // rail = +inf disables the saturation count (|v| >= +inf only holds for
    // +inf, and non-finite samples are classified before the rail test).
    const float rail = config_.saturation_amplitude > 0.0f
                           ? 0.98f * config_.saturation_amplitude
                           : std::numeric_limits<float>::infinity();
    std::uint64_t saturated = 0;
    dsp::simd::Active().health_scan(x.data(), x.size(), rail,
                                    &h.nonfinite_samples, &saturated);
    h.saturation_fraction =
        x.empty() ? 0.0
                  : static_cast<double>(saturated) /
                        static_cast<double>(x.size());
    report.health.push_back(h);
  }

  // Stage 1: protocol-agnostic peak detection over 25 us chunks (with the
  // integrated energy gate), feeding every enabled bundle's detector hooks.
  PeakDetector::Config pd_cfg;
  pd_cfg.noise_floor_power = config_.noise_floor_power;
  PeakDetector peaks(pd_cfg);

  DetectorSetup setup;
  setup.timing_detectors = config_.timing_detectors;
  setup.phase_detectors = config_.phase_detectors;
  setup.freq_detector = config_.freq_detector;
  setup.microwave_detector = config_.microwave_detector;
  setup.zigbee_detector = config_.zigbee_detector;
  setup.noise_floor_power = config_.noise_floor_power;
  std::vector<ActiveDetectors> active =
      MakeActiveDetectors(config_.bundle_mask, setup);
  bool any_on_peak = false;
  for (const auto& a : active) {
    if (a.hooks.on_peak) any_on_peak = true;
  }

  CollisionDetector collision;  // protocol-agnostic, stays pipeline-level

  std::vector<Detection>& detections = report.detections;
  std::uint64_t peak_cursor = 0;

  // Stage boundary for the cheap detectors: with a supervisor, a throwing
  // detector is counted and contained (that detector contributes nothing for
  // this batch of peaks, everything else proceeds); without one, exceptions
  // propagate as before.
  Supervisor* const sup = config_.supervisor;
  const auto contain = [sup](const char* stage, auto&& fn) {
    if (sup) {
      sup->Contain(stage, fn);
    } else {
      fn();
    }
  };

  const auto handle_peaks = [&](std::span<const Peak> fresh) {
    if (fresh.empty()) return;
    for (auto& a : active) {
      if (!a.hooks.on_peaks) continue;
      CostLedger::Scope scope(ledger, "detect/timing", 0);
      contain(a.hooks.peaks_stage, [&] {
        auto d = a.hooks.on_peaks(fresh);
        detections.insert(detections.end(), d.begin(), d.end());
      });
    }
    if (config_.collision_detector) {
      for (const Peak& p : fresh) {
        const auto s = static_cast<std::size_t>(
            std::clamp<std::int64_t>(p.start_sample, 0,
                                     static_cast<std::int64_t>(x.size())));
        const auto e = static_cast<std::size_t>(
            std::clamp<std::int64_t>(p.end_sample, 0,
                                     static_cast<std::int64_t>(x.size())));
        if (e <= s) continue;
        CostLedger::Scope scope(ledger, "detect/collision", e - s);
        contain("detect/collision", [&] {
          auto d = collision.OnPeak(p, x.subspan(s, e - s));
          detections.insert(detections.end(), d.begin(), d.end());
        });
      }
    }
    if (any_on_peak) {
      for (const Peak& p : fresh) {
        const auto s = static_cast<std::size_t>(
            std::clamp<std::int64_t>(p.start_sample, 0,
                                     static_cast<std::int64_t>(x.size())));
        const auto e = static_cast<std::size_t>(
            std::clamp<std::int64_t>(p.end_sample, 0,
                                     static_cast<std::int64_t>(x.size())));
        if (e <= s) continue;
        const auto span = x.subspan(s, e - s);
        CostLedger::Scope scope(ledger, "detect/phase", span.size());
        for (auto& a : active) {
          if (!a.hooks.on_peak) continue;
          contain(a.hooks.peak_stage, [&] {
            if (auto d = a.hooks.on_peak(p, span)) detections.push_back(*d);
          });
        }
      }
    }
  };

  // Deinterleave |x|^2 once for the whole block (SoA power plane); the peak
  // detector's per-sample stage reads the plane instead of touching I/Q.
  struct DetectPlaneTag {};
  auto& plane = util::Scratch<float, DetectPlaneTag>();
  plane.resize(x.size());
  dsp::simd::Active().power_plane(x.data(), x.size(), plane.data());

  for (std::size_t at = 0; at < x.size(); at += kChunkSamples) {
    const std::size_t n = std::min(kChunkSamples, x.size() - at);
    const auto chunk = x.subspan(at, n);
    {
      CostLedger::Scope scope(ledger, "detect/peak", n);
      peaks.PushChunk(chunk,
                      std::span<const float>(plane).subspan(at, n),
                      static_cast<std::int64_t>(at));
    }
    for (auto& a : active) {
      if (!a.hooks.on_chunk) continue;
      CostLedger::Scope scope(ledger, "detect/freq", n);
      auto d = a.hooks.on_chunk(chunk, static_cast<std::int64_t>(at));
      detections.insert(detections.end(), d.begin(), d.end());
    }
    const auto fresh = peaks.CompletedSince(peak_cursor);
    peak_cursor = peaks.CompletedCount();
    handle_peaks(fresh);
  }
  {
    CostLedger::Scope scope(ledger, "detect/peak", 0);
    peaks.Flush();
  }
  handle_peaks(peaks.CompletedSince(peak_cursor));
  for (auto& a : active) {
    if (!a.hooks.chunk_flush) continue;
    auto d = a.hooks.chunk_flush();
    detections.insert(detections.end(), d.begin(), d.end());
  }

  // Stage 2: dispatch — merge detections per protocol and analyze only those
  // sample ranges. Under load shedding, low-confidence tags stay in the
  // detection log but are not worth demodulator time. Every decision is
  // counted per protocol (tagged = forwarded to merge, rejected = below the
  // confidence floor) so an operator can see what load shedding discards.
  static obs::Counter& c_detections = obs::Registry::Default().GetCounter(
      "rfdump_detect_detections_total");
  static PerProtocolCounter c_tagged("rfdump_dispatch_tagged_total");
  static PerProtocolCounter c_rejected("rfdump_dispatch_rejected_total");
  static PerProtocolCounter c_forwarded("rfdump_dispatch_forwarded_total");
  c_detections.Inc(detections.size());
  std::uint64_t tagged_n = 0, rejected_n = 0;
  const std::int64_t pad = UsToSamples(config_.dispatch_pad_us);
  std::vector<Detection> padded;
  padded.reserve(detections.size());
  for (const auto& d : detections) {
    if (d.confidence < config_.analysis.min_dispatch_confidence) {
      c_rejected.of(d.protocol).Inc();
      ++rejected_n;
      continue;
    }
    c_tagged.of(d.protocol).Inc();
    ++tagged_n;
    padded.push_back(d);
  }
  for (auto& d : padded) {
    d.start_sample -= pad;
    d.end_sample += pad;
  }
  report.dispatched = MergeDetections(std::move(padded), pad,
                                      static_cast<std::int64_t>(x.size()));
  for (const auto& d : report.dispatched) c_forwarded.of(d.protocol).Inc();
  if (!report.health.empty()) {
    report.health.back().tagged_detections = tagged_n;
    report.health.back().rejected_detections = rejected_n;
    report.health.back().forwarded_intervals = report.dispatched.size();
  }
  DetectOutput out;
  report.costs = ledger.Costs();
  out.report = std::move(report);
  out.analysis = config_.analysis;
  out.noise_floor_power = config_.noise_floor_power;
  out.supervisor = config_.supervisor;
  return out;
}

// -------------------------------------------------------------------- naive

NaivePipeline::NaivePipeline() : NaivePipeline(Config{}) {}

NaivePipeline::NaivePipeline(Config config) : config_(config) {}

MonitorReport NaivePipeline::Process(dsp::const_sample_span x) {
  RFDUMP_TRACE_SPAN("pipeline/naive-process");
  return AnalyzeDetections(Detect(x), x, config_.executor, config_.sink);
}

DetectOutput NaivePipeline::Detect(dsp::const_sample_span x) {
  MonitorReport report;
  report.samples_total = x.size();
  CostLedger ledger;

  // The naive monitor hosts every mask-enabled naive_member bundle, in
  // protocol-id order (historically: 802.11 then Bluetooth).
  std::vector<Protocol> members;
  for (const auto& bundle : ProtocolRegistry::Instance().bundles()) {
    if (!bundle.naive_member) continue;
    if ((config_.bundle_mask & BundleBit(bundle.protocol)) == 0) continue;
    members.push_back(bundle.protocol);
  }

  std::vector<Detection> intervals;
  if (config_.energy_gate) {
    // Energy filtering via the peak detector's gate; everything above the
    // noise floor goes to ALL demodulators.
    PeakDetector::Config pd_cfg;
    pd_cfg.noise_floor_power = config_.noise_floor_power;
    PeakDetector peaks(pd_cfg);
    struct NaivePlaneTag {};
    auto& plane = util::Scratch<float, NaivePlaneTag>();
    plane.resize(x.size());
    dsp::simd::Active().power_plane(x.data(), x.size(), plane.data());
    for (std::size_t at = 0; at < x.size(); at += kChunkSamples) {
      const std::size_t n = std::min(kChunkSamples, x.size() - at);
      CostLedger::Scope scope(ledger, "detect/energy", n);
      peaks.PushChunk(x.subspan(at, n),
                      std::span<const float>(plane).subspan(at, n),
                      static_cast<std::int64_t>(at));
    }
    {
      CostLedger::Scope scope(ledger, "detect/energy", 0);
      peaks.Flush();
    }
    const std::int64_t pad = UsToSamples(config_.dispatch_pad_us);
    std::vector<Detection> raw;
    for (const Peak& p : peaks.history()) {
      for (const Protocol protocol : members) {
        raw.push_back({protocol, p.start_sample - pad, p.end_sample + pad,
                       1.0f, "energy"});
      }
    }
    intervals = MergeDetections(std::move(raw), pad,
                                static_cast<std::int64_t>(x.size()));
  } else {
    // Pure naive: the full capture goes to every demodulator.
    for (const Protocol protocol : members) {
      intervals.push_back({protocol, 0, static_cast<std::int64_t>(x.size()),
                           1.0f, "naive"});
    }
  }
  report.dispatched = std::move(intervals);
  DetectOutput out;
  report.costs = ledger.Costs();
  out.report = std::move(report);
  out.analysis = config_.analysis;
  out.noise_floor_power = config_.noise_floor_power;
  out.supervisor = config_.supervisor;
  return out;
}

}  // namespace rfdump::core
