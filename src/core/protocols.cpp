#include "rfdump/core/protocols.hpp"

#include <array>

namespace rfdump::core {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kUnknown: return "unknown";
    case Protocol::kWifi80211b: return "802.11b";
    case Protocol::kBluetooth: return "Bluetooth";
    case Protocol::kZigbee: return "ZigBee";
    case Protocol::kMicrowave: return "Microwave";
  }
  return "?";
}

const char* ModulationName(Modulation m) {
  switch (m) {
    case Modulation::kDbpsk: return "DBPSK";
    case Modulation::kDqpsk: return "DQPSK";
    case Modulation::kCck: return "CCK";
    case Modulation::kGfsk: return "GFSK";
    case Modulation::kOqpsk: return "O-QPSK";
    case Modulation::kNoise: return "noise";
  }
  return "?";
}

std::span<const ProtocolFeatures> FeatureTable() {
  static const std::array<ProtocolFeatures, 7> kTable = {{
      {Protocol::kWifi80211b, "802.11b (1 Mbps)", 20.0, 10.0,
       Modulation::kDbpsk, "Barker", 22.0, 1e6},
      {Protocol::kWifi80211b, "802.11b (2 Mbps)", 20.0, 10.0,
       Modulation::kDqpsk, "Barker", 22.0, 1e6},
      {Protocol::kWifi80211b, "802.11b (5.5 Mbps)", 20.0, 10.0,
       Modulation::kCck, "CCK", 22.0, 1.375e6},
      {Protocol::kWifi80211b, "802.11b (11 Mbps)", 20.0, 10.0,
       Modulation::kCck, "CCK", 22.0, 1.375e6},
      {Protocol::kBluetooth, "Bluetooth (1 Mbps)", 625.0, 625.0,
       Modulation::kGfsk, "FHSS", 1.0, 1e6},
      {Protocol::kZigbee, "802.15.4 (ZigBee)", 320.0, 192.0,
       Modulation::kOqpsk, "DSSS-32", 5.0, 62.5e3},
      {Protocol::kMicrowave, "Residential microwave", 16667.0, 0.0,
       Modulation::kNoise, "-", 40.0, 0.0},
  }};
  return kTable;
}

std::vector<ProtocolFeatures> FeaturesFor(Protocol p) {
  std::vector<ProtocolFeatures> out;
  for (const auto& row : FeatureTable()) {
    if (row.protocol == p) out.push_back(row);
  }
  return out;
}

}  // namespace rfdump::core
