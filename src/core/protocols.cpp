#include "rfdump/core/protocols.hpp"

#include <vector>

#include "rfdump/core/protocol_registry.hpp"

namespace rfdump::core {

const char* ProtocolName(Protocol p) {
  if (p == Protocol::kUnknown) return "unknown";
  if (const auto* b = ProtocolRegistry::Instance().Find(p)) return b->name;
  return "?";
}

const char* ModulationName(Modulation m) {
  switch (m) {
    case Modulation::kDbpsk: return "DBPSK";
    case Modulation::kDqpsk: return "DQPSK";
    case Modulation::kCck: return "CCK";
    case Modulation::kGfsk: return "GFSK";
    case Modulation::kOqpsk: return "O-QPSK";
    case Modulation::kNoise: return "noise";
  }
  return "?";
}

std::span<const ProtocolFeatures> FeatureTable() {
  // Concatenation of each bundle's rows in protocol-id order. Built once on
  // first use, after all bundles have registered; doubles as the startup
  // consistency check between registry and kProtocolCount.
  static const std::vector<ProtocolFeatures> kTable = [] {
    auto& registry = ProtocolRegistry::Instance();
    registry.CheckConsistency();
    std::vector<ProtocolFeatures> table;
    for (const auto& bundle : registry.bundles()) {
      table.insert(table.end(), bundle.features.begin(),
                   bundle.features.end());
    }
    return table;
  }();
  return kTable;
}

std::vector<ProtocolFeatures> FeaturesFor(Protocol p) {
  std::vector<ProtocolFeatures> out;
  for (const auto& row : FeatureTable()) {
    if (row.protocol == p) out.push_back(row);
  }
  return out;
}

}  // namespace rfdump::core
