// ZigBee (802.15.4) protocol bundle (DESIGN.md §15): IFS timing detector,
// the correlation frame decoder analysis unit, the canned sensor-report
// scenario op and the O-QPSK fuzz target.
//
// rfdump-bundle-cli: zigbee   (scanned by tests/CMakeLists.txt to derive the
// per-protocol ctest labels — keep in sync with cli_name below)

#include <algorithm>
#include <optional>

#include "rfdump/core/fuzz_io.hpp"
#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/core/timing_detectors.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/phyzigbee/phy.hpp"
#include "rfdump/traffic/traffic.hpp"
#include "rfdump/util/rng.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::core {
namespace {

std::vector<std::uint8_t> ZigbeeSeedInput(std::size_t i,
                                          util::Xoshiro256& rng) {
  switch (i % 3) {
    case 0: {  // modulated frame samples
      std::vector<std::uint8_t> psdu(3 + rng.UniformInt(0, 29));
      for (auto& b : psdu) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      const auto x = phyzigbee::ModulateFrame(psdu);
      std::vector<std::uint8_t> data{0};
      FuzzAppendSamples(data, x, kMaxFuzzSamples);
      return data;
    }
    case 1: {  // truncated/mutated frame samples
      std::vector<std::uint8_t> psdu(4);
      for (auto& b : psdu) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      const auto x = phyzigbee::ModulateFrame(psdu);
      std::vector<std::uint8_t> data{0};
      FuzzAppendSamples(data, x, 400 + rng.UniformInt(0, 2000));
      FuzzMutateInput(data, rng);
      return data;
    }
    default: {  // random sample bytes
      std::vector<std::uint8_t> data{0};
      const std::size_t n = 2 * (64 + rng.UniformInt(0, 1024));
      for (std::size_t k = 0; k < n; ++k) {
        data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
      }
      return data;
    }
  }
}

int ZigbeeFuzzRun(std::span<const std::uint8_t> data,
                  util::WorkBudget* budget) {
  (void)budget;  // the frame decoder is single-pass; no deadline hook
  if (data.empty()) return 0;
  const auto payload = data.subspan(1);  // first byte reserved (mode unused)
  int decodes = 0;
  const auto x = FuzzBytesToSamples(payload);
  if (const auto frame = phyzigbee::DecodeFrame(x)) {
    ++decodes;
    (void)phyzigbee::FrameAirtimeUs(frame->psdu.size());
  }
  // Also exercise the chip expansion on raw bytes (cheap, pure).
  if (!payload.empty()) {
    (void)phyzigbee::BytesToChips(
        payload.first(std::min<std::size_t>(payload.size(), 64)));
  }
  return decodes;
}

ProtocolBundle MakeZigbeeBundle() {
  ProtocolBundle b;
  b.protocol = Protocol::kZigbee;
  b.name = "ZigBee";
  b.cli_name = "zigbee";
  b.features = {
      {Protocol::kZigbee, "802.15.4 (ZigBee)", 320.0, 192.0,
       Modulation::kOqpsk, "DSSS-32", 5.0, 62.5e3},
  };
  b.default_enabled = true;
  b.naive_member = false;
  b.differential_member = false;
  b.oracle_scored = true;
  // After microwave: the historical Detect() ran the microwave timing
  // detector before the ZigBee one.
  b.detect_rank = 3;

  b.make_detectors = [](const DetectorSetup& setup) {
    ProtocolDetectors d;
    if (setup.zigbee_detector) {
      auto timing = std::make_shared<ZigbeeTimingDetector>();
      d.on_peaks = [timing](std::span<const Peak> fresh) {
        return timing->OnPeaks(fresh);
      };
      d.peaks_stage = "detect/timing-zigbee";
    }
    return d;
  };

  b.analysis_plan = [](const AnalysisConfig& a) {
    AnalysisPlan p;
    p.units = a.zigbee_demod ? 1 : -1;
    p.stage = "analysis/zigbee-demod";
    return p;
  };
  b.run_unit = [](const AnalysisUnitContext& ctx, int) -> AnalysisCommit {
    static obs::Counter& c_attempts = obs::Registry::Default().GetCounter(
        "rfdump_phyzigbee_decode_attempts_total");
    static obs::Counter& c_frames = obs::Registry::Default().GetCounter(
        "rfdump_phyzigbee_frames_total");
    c_attempts.Inc();
    std::optional<phyzigbee::DecodedZbFrame> frame =
        phyzigbee::DecodeFrame(ctx.span);
    if (!frame) return {};
    c_frames.Inc();
    frame->start_sample += ctx.start_sample;
    frame->end_sample += ctx.start_sample;
    return [f = std::move(*frame)](MonitorReport& report) mutable {
      report.zb_frames.push_back(std::move(f));
    };
  };
  b.collect_events = [](const MonitorReport& report,
                        std::vector<ProtocolEvent>& out) {
    for (const auto& z : report.zb_frames) {
      ProtocolEvent e;
      e.protocol = Protocol::kZigbee;
      e.start_sample = z.start_sample;
      e.end_sample = z.end_sample;
      e.crc_ok = z.crc_ok;
      e.payload = z.psdu;
      out.push_back(std::move(e));
    }
  };

  b.canned_traffic = [](emu::Ether& ether, std::int64_t start, double off) {
    traffic::ZigbeeConfig cfg;
    cfg.count = 6;
    cfg.snr_db = 20.0 + off;
    cfg.interval_us = 0.0;  // LIFS-spaced so the timing detector fires
    return traffic::GenerateZigbee(ether, cfg, start).end_sample;
  };

  b.fuzz_name = "phyzigbee";
  b.fuzz_corpus_dir = "phyzigbee";
  b.fuzz_run = ZigbeeFuzzRun;
  b.fuzz_seed_input = ZigbeeSeedInput;
  return b;
}

[[maybe_unused]] const bool kRegistered =
    RegisterProtocolBundle(MakeZigbeeBundle());

}  // namespace
}  // namespace rfdump::core
