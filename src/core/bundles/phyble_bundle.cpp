// BLE advertising protocol bundle (DESIGN.md §15) — the registry's proof
// case: registering this one translation unit gives BLE scenario generation,
// oracle precision/recall scoring, differential-sweep membership and a fuzz
// corpus with zero edits to those layers.
//
// Detection reuses the GFSK phase detector (BLE 1M advertising is plain GFSK
// at 1 Msym/s, indistinguishable from Bluetooth BR at the phase-statistics
// level); the analysis stage disambiguates by access-address correlation.
//
// rfdump-bundle-cli: ble   (scanned by tests/CMakeLists.txt to derive the
// per-protocol ctest labels — keep in sync with cli_name below)

#include <algorithm>

#include "rfdump/core/fuzz_io.hpp"
#include "rfdump/core/phase_detectors.hpp"
#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/phyble/adv.hpp"
#include "rfdump/traffic/traffic.hpp"
#include "rfdump/util/rng.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::core {
namespace {

std::vector<std::uint8_t> BleSeedInput(std::size_t i, util::Xoshiro256& rng) {
  const int channel = phyble::kAdvChannels[i % 3];
  switch (i % 4) {
    case 0: {  // valid whitened PDU bits, straight parse mode
      std::vector<std::uint8_t> payload(rng.UniformInt(0, 37));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      const auto bits = phyble::BuildAdvBits(
          channel, phyble::AdvPduType::kAdvNonconnInd, payload);
      // Bit-parse mode sees the post-access-address section; the upper mode
      // nibble selects the dewhitening channel.
      std::vector<std::uint8_t> data{
          static_cast<std::uint8_t>(((i % 3) << 4) | 0)};
      data.insert(data.end(),
                  bits.begin() + static_cast<std::ptrdiff_t>(
                                     phyble::kPreambleBits +
                                     phyble::kAccessBits),
                  bits.end());
      return data;
    }
    case 1: {  // mutated PDU bits
      std::vector<std::uint8_t> payload(1 + rng.UniformInt(0, 20));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      const auto bits = phyble::BuildAdvBits(
          channel, phyble::AdvPduType::kAdvInd, payload);
      std::vector<std::uint8_t> data{
          static_cast<std::uint8_t>(((i % 3) << 4) | 0)};
      data.insert(data.end(),
                  bits.begin() + static_cast<std::ptrdiff_t>(
                                     phyble::kPreambleBits +
                                     phyble::kAccessBits),
                  bits.end());
      FuzzMutateInput(data, rng);
      return data;
    }
    case 2: {  // modulated burst samples, full demodulator mode
      std::vector<std::uint8_t> payload(1 + rng.UniformInt(0, 30));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      const auto burst = phyble::ModulateAdv(
          channel, phyble::AdvPduType::kAdvNonconnInd, payload);
      std::vector<std::uint8_t> data{1};
      FuzzAppendSamples(data, burst.samples, 4000);
      return data;
    }
    default: {  // random sample bytes
      std::vector<std::uint8_t> data{1};
      const std::size_t n = 2 * (64 + rng.UniformInt(0, 1024));
      for (std::size_t k = 0; k < n; ++k) {
        data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
      }
      return data;
    }
  }
}

int BleFuzzRun(std::span<const std::uint8_t> data, util::WorkBudget* budget) {
  if (data.empty()) return 0;
  const std::uint8_t mode = data[0];
  const auto payload = data.subspan(1);
  int decodes = 0;
  if (mode % 2 == 0) {
    const int channel = phyble::kAdvChannels[(mode >> 4) % 3];
    const auto bits = FuzzBytesToBits(payload);
    if (const auto pdu = phyble::ParseAdvBits(bits, channel)) {
      ++decodes;
      (void)phyble::AdvAirBits(pdu->payload.size());
      (void)phyble::AdvPduTypeName(pdu->type);
    }
    // Size-guard call on a deliberately short prefix.
    (void)phyble::ParseAdvBits(
        std::span<const std::uint8_t>(bits).first(
            std::min<std::size_t>(bits.size(), 16)),
        channel);
  } else {
    phyble::AdvDemodulator::Config cfg;
    cfg.budget = budget;
    phyble::AdvDemodulator demod(cfg);
    decodes +=
        static_cast<int>(demod.DecodeAll(FuzzBytesToSamples(payload)).size());
  }
  return decodes;
}

ProtocolBundle MakeBleBundle() {
  ProtocolBundle b;
  b.protocol = Protocol::kBleAdv;
  b.name = "BLE-adv";
  b.cli_name = "ble";
  b.features = {
      // T_IFS (150 us) stands in for SIFS; advertising uses no slotted MAC.
      {Protocol::kBleAdv, "BLE advertising (1 Mbps)", 0.0, 150.0,
       Modulation::kGfsk, "-", 2.0, 1e6},
  };
  // Opt-in: BLE predates nothing — it is the registry-era protocol, enabled
  // per pipeline via EnableBundle(Protocol::kBleAdv) / --protocols ble.
  b.default_enabled = false;
  b.naive_member = true;
  b.differential_member = true;
  b.oracle_scored = true;
  b.detect_rank = 4;

  b.make_detectors = [](const DetectorSetup& setup) {
    ProtocolDetectors d;
    if (setup.phase_detectors) {
      auto phase = std::make_shared<GfskPhaseDetector>();
      d.on_peak = [phase](const Peak& p, dsp::const_sample_span span)
          -> std::optional<Detection> {
        auto tag = phase->OnPeak(p, span);
        if (!tag) return std::nullopt;
        tag->protocol = Protocol::kBleAdv;
        tag->detector = "ble-gfsk";
        return tag;
      };
      d.peak_stage = "detect/phase-ble";
    }
    return d;
  };

  b.analysis_plan = [](const AnalysisConfig&) {
    AnalysisPlan p;
    p.units = 3;  // one per advertising channel
    p.check_budget = true;
    p.stage = "analysis/ble-adv-demod";
    return p;
  };
  b.run_unit = [](const AnalysisUnitContext& ctx, int unit) -> AnalysisCommit {
    phyble::AdvDemodulator::Config cfg;
    cfg.channel = phyble::kAdvChannels[unit % 3];
    cfg.noise_floor_power = ctx.noise_floor_power;
    cfg.budget = ctx.budget;
    phyble::AdvDemodulator demod(cfg);
    auto advs = demod.DecodeAll(ctx.span);
    std::vector<ProtocolEvent> events;
    events.reserve(advs.size());
    for (auto& a : advs) {
      ProtocolEvent e;
      e.protocol = Protocol::kBleAdv;
      e.start_sample = a.start_sample + ctx.start_sample;
      e.end_sample = a.end_sample + ctx.start_sample;
      e.channel = a.channel;
      e.crc_ok = a.pdu.crc_ok;
      e.payload = std::move(a.pdu.payload);
      events.push_back(std::move(e));
    }
    return [events = std::move(events)](MonitorReport& report) mutable {
      for (auto& e : events) report.events.push_back(std::move(e));
    };
  };
  // No collect_events: BLE commits ProtocolEvents natively.

  b.canned_traffic = [](emu::Ether& ether, std::int64_t start, double off) {
    traffic::BleAdvConfig cfg;
    cfg.count = 3;
    cfg.snr_db = 25.0 + off;
    return traffic::GenerateBleAdv(ether, cfg, start).end_sample;
  };

  b.fuzz_name = "phyble-adv";
  b.fuzz_corpus_dir = "phyble_adv";
  b.fuzz_run = BleFuzzRun;
  b.fuzz_seed_input = BleSeedInput;
  return b;
}

[[maybe_unused]] const bool kRegistered =
    RegisterProtocolBundle(MakeBleBundle());

}  // namespace
}  // namespace rfdump::core
