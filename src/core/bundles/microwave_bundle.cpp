// Microwave-oven protocol bundle (DESIGN.md §15): AC-period timing detector
// only. Microwave interference carries no decodable frames, so there is no
// analysis stage, no events, no canned scenario op and no fuzz target — the
// bundle exists so the feature table and the detect stage stay registry-
// driven for non-communication protocols too.
//
// rfdump-bundle-cli: microwave   (scanned by tests/CMakeLists.txt to derive
// the per-protocol ctest labels — keep in sync with cli_name below)

#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/core/timing_detectors.hpp"

namespace rfdump::core {
namespace {

ProtocolBundle MakeMicrowaveBundle() {
  ProtocolBundle b;
  b.protocol = Protocol::kMicrowave;
  b.name = "Microwave";
  b.cli_name = "microwave";
  b.features = {
      {Protocol::kMicrowave, "Residential microwave", 16667.0, 0.0,
       Modulation::kNoise, "-", 40.0, 0.0},
  };
  b.default_enabled = true;
  // Between the Bluetooth and ZigBee timing detectors, the historical order.
  b.detect_rank = 2;

  b.make_detectors = [](const DetectorSetup& setup) {
    ProtocolDetectors d;
    if (setup.microwave_detector) {
      auto timing = std::make_shared<MicrowaveTimingDetector>();
      d.on_peaks = [timing](std::span<const Peak> fresh) {
        return timing->OnPeaks(fresh);
      };
      d.peaks_stage = "detect/timing-microwave";
    }
    return d;
  };
  // No analysis_plan: microwave intervals are detection-only.
  return b;
}

[[maybe_unused]] const bool kRegistered =
    RegisterProtocolBundle(MakeMicrowaveBundle());

}  // namespace
}  // namespace rfdump::core
