// Bluetooth BR protocol bundle (DESIGN.md §15): slot-timing + GFSK phase +
// optional FFT frequency detectors, the per-visible-channel demodulator fan
// out, the canned l2ping scenario op and the packet fuzz target.
//
// rfdump-bundle-cli: bt   (scanned by tests/CMakeLists.txt to derive the
// per-protocol ctest labels — keep in sync with cli_name below)

#include <algorithm>

#include "rfdump/core/freq_detector.hpp"
#include "rfdump/core/fuzz_io.hpp"
#include "rfdump/core/phase_detectors.hpp"
#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/core/timing_detectors.hpp"
#include "rfdump/phybt/demodulator.hpp"
#include "rfdump/phybt/hopping.hpp"
#include "rfdump/phybt/modulator.hpp"
#include "rfdump/phybt/packet.hpp"
#include "rfdump/traffic/traffic.hpp"
#include "rfdump/util/rng.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::core {
namespace {

std::vector<std::uint8_t> BtSeedInput(std::size_t i, util::Xoshiro256& rng) {
  switch (i % 5) {
    case 0: {  // valid packet bits, straight parse mode
      phybt::DeviceAddress addr{0x9E8B33, 0x47};
      phybt::PacketHeader h;
      h.type = (i % 2 == 0) ? phybt::PacketType::kDh1
                            : phybt::PacketType::kDh3;
      std::vector<std::uint8_t> payload(1 + rng.UniformInt(0, 17));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      const auto bits = phybt::BuildPacketBits(
          addr, h, payload, static_cast<std::uint8_t>(rng.UniformInt(0, 63)));
      std::vector<std::uint8_t> data{1};  // mode: ParsePacketBits
      data.insert(data.end(), bits.begin() + 68, bits.end());
      return data;
    }
    case 1: {  // mutated packet bits
      phybt::DeviceAddress addr{0x9E8B33, 0x47};
      phybt::PacketHeader h;
      const auto bits = phybt::BuildPacketBits(addr, h, {}, 0);
      std::vector<std::uint8_t> data{1};
      data.insert(data.end(), bits.begin() + 68, bits.end());
      FuzzMutateInput(data, rng);
      return data;
    }
    case 2: {  // sync word + trailing bits, verify mode
      const std::uint64_t word = phybt::SyncWord(
          static_cast<std::uint32_t>(rng.UniformInt(0, 0xFFFFFF)));
      std::vector<std::uint8_t> data{
          static_cast<std::uint8_t>(rng.UniformInt(0, 255) & ~0x03u)};
      data[0] = static_cast<std::uint8_t>((data[0] / 3) * 3);  // mode 0
      for (int k = 0; k < 8; ++k) {
        data.push_back(static_cast<std::uint8_t>(word >> (8 * k)));
      }
      const std::size_t n = rng.UniformInt(0, 200);
      for (std::size_t k = 0; k < n; ++k) {
        data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 1)));
      }
      return data;
    }
    case 3: {  // modulated burst samples
      phybt::DeviceAddress addr{0x9E8B33, 0x47};
      phybt::PacketHeader h;
      std::vector<std::uint8_t> payload(1 + rng.UniformInt(0, 9));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      // clk values land on different hop channels; skip off-band ones.
      phybt::BtBurst burst;
      for (int tries = 0; tries < 32 && burst.samples.empty(); ++tries) {
        burst = phybt::ModulatePacket(
            addr, h, payload,
            static_cast<std::uint32_t>(rng.UniformInt(0, 4095)));
      }
      std::vector<std::uint8_t> data{2};  // mode: full demodulator
      FuzzAppendSamples(data, burst.samples, 1600);
      return data;
    }
    default: {  // random sample bytes
      std::vector<std::uint8_t> data{2};
      const std::size_t n = 2 * (64 + rng.UniformInt(0, 1024));
      for (std::size_t k = 0; k < n; ++k) {
        data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
      }
      return data;
    }
  }
}

int BtFuzzRun(std::span<const std::uint8_t> data, util::WorkBudget* budget) {
  if (data.empty()) return 0;
  const std::uint8_t mode = data[0];
  const auto payload = data.subspan(1);
  int decodes = 0;
  switch (mode % 3) {
    case 0: {
      if (payload.size() >= 8) {
        std::uint64_t word = 0;
        for (int i = 0; i < 8; ++i) {
          word |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
        }
        const int max_errors = (mode >> 4) % 3;
        if (const auto lap = phybt::VerifySyncWord(word, max_errors)) {
          ++decodes;
          (void)phybt::SyncWord(*lap);
        }
      }
      const std::uint8_t uap = payload.empty() ? 0x47 : payload[0];
      if (phybt::ParsePacketBits(FuzzBytesToBits(payload.size() > 8
                                                     ? payload.subspan(8)
                                                     : payload),
                                 uap)) {
        ++decodes;
      }
      break;
    }
    case 1: {
      if (const auto pkt =
              phybt::ParsePacketBits(FuzzBytesToBits(payload), 0x47)) {
        ++decodes;
        (void)phybt::PacketAirBits(pkt->header.type, pkt->payload.size());
      }
      break;
    }
    default: {
      phybt::Demodulator::Config cfg;
      cfg.budget = budget;
      cfg.max_sync_errors = mode >> 6;  // 0..3
      phybt::Demodulator demod(cfg);
      decodes +=
          static_cast<int>(demod.DecodeAll(FuzzBytesToSamples(payload)).size());
      break;
    }
  }
  return decodes;
}

ProtocolBundle MakeBtBundle() {
  ProtocolBundle b;
  b.protocol = Protocol::kBluetooth;
  b.name = "Bluetooth";
  b.cli_name = "bt";
  b.features = {
      {Protocol::kBluetooth, "Bluetooth (1 Mbps)", 625.0, 625.0,
       Modulation::kGfsk, "FHSS", 1.0, 1e6},
  };
  b.default_enabled = true;
  b.naive_member = true;
  b.differential_member = true;
  b.oracle_scored = true;
  b.detect_rank = 1;

  b.make_detectors = [](const DetectorSetup& setup) {
    ProtocolDetectors d;
    if (setup.timing_detectors) {
      auto timing = std::make_shared<BluetoothTimingDetector>();
      d.on_peaks = [timing](std::span<const Peak> fresh) {
        return timing->OnPeaks(fresh);
      };
      d.peaks_stage = "detect/timing-bt";
    }
    if (setup.phase_detectors) {
      auto phase = std::make_shared<GfskPhaseDetector>();
      d.on_peak = [phase](const Peak& p, dsp::const_sample_span span) {
        return phase->OnPeak(p, span);
      };
      d.peak_stage = "detect/phase-gfsk";
    }
    if (setup.freq_detector) {
      BluetoothFreqDetector::Config fc;
      fc.noise_floor_power = setup.noise_floor_power;
      auto freq = std::make_shared<BluetoothFreqDetector>(fc);
      d.on_chunk = [freq](dsp::const_sample_span chunk, std::int64_t at) {
        return freq->PushChunk(chunk, at);
      };
      d.chunk_flush = [freq] { return freq->Flush(); };
    }
    return d;
  };

  b.analysis_plan = [](const AnalysisConfig& a) {
    AnalysisPlan p;
    // One unit per configured demodulator channel. Bluetooth always opens a
    // supervision boundary, even with zero channels configured, and the
    // multi-channel scan stops early once the interval's budget expires.
    p.units = std::max(a.bt_demods, 0);
    p.check_budget = true;
    p.stage = "analysis/bt-demod";
    return p;
  };
  b.run_unit = [](const AnalysisUnitContext& ctx, int unit) -> AnalysisCommit {
    phybt::Demodulator::Config cfg;
    cfg.channel_index = unit % static_cast<int>(phybt::kVisibleChannels);
    cfg.expected_uap = ctx.analysis->bt_uap;
    cfg.noise_floor_power = ctx.noise_floor_power;
    cfg.budget = ctx.budget;
    phybt::Demodulator bt(cfg);
    auto packets = bt.DecodeAll(ctx.span);
    for (auto& p : packets) {
      p.start_sample += ctx.start_sample;
      p.end_sample += ctx.start_sample;
    }
    return [packets = std::move(packets)](MonitorReport& report) mutable {
      for (auto& p : packets) report.bt_packets.push_back(std::move(p));
    };
  };
  b.collect_events = [](const MonitorReport& report,
                        std::vector<ProtocolEvent>& out) {
    for (const auto& p : report.bt_packets) {
      ProtocolEvent e;
      e.protocol = Protocol::kBluetooth;
      e.start_sample = p.start_sample;
      e.end_sample = p.end_sample;
      e.channel = p.channel_index;
      e.crc_ok = p.packet.crc_ok;
      e.payload = p.packet.payload;
      out.push_back(std::move(e));
    }
  };

  b.canned_traffic = [](emu::Ether& ether, std::int64_t start, double off) {
    traffic::L2PingConfig cfg;
    cfg.count = 16;
    cfg.snr_db = 25.0 + off;
    return traffic::GenerateL2Ping(ether, cfg, start).end_sample;
  };

  b.fuzz_name = "phybt-packet";
  b.fuzz_corpus_dir = "phybt_packet";
  b.fuzz_run = BtFuzzRun;
  b.fuzz_seed_input = BtSeedInput;
  return b;
}

[[maybe_unused]] const bool kRegistered =
    RegisterProtocolBundle(MakeBtBundle());

}  // namespace
}  // namespace rfdump::core
