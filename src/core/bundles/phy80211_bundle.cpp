// 802.11b protocol bundle (DESIGN.md §15): feature rows, SIFS/DIFS timing +
// DBPSK/Barker phase detectors, the DSSS demodulator analysis unit, the
// canned unicast-ping scenario op and the PLCP fuzz target.
//
// rfdump-bundle-cli: wifi   (scanned by tests/CMakeLists.txt to derive the
// per-protocol ctest labels — keep in sync with cli_name below)

#include <algorithm>

#include "rfdump/core/fuzz_io.hpp"
#include "rfdump/core/phase_detectors.hpp"
#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/core/timing_detectors.hpp"
#include "rfdump/phy80211/demodulator.hpp"
#include "rfdump/phy80211/modulator.hpp"
#include "rfdump/phy80211/plcp.hpp"
#include "rfdump/traffic/traffic.hpp"
#include "rfdump/util/rng.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::core {
namespace {

std::vector<std::uint8_t> WifiSeedInput(std::size_t i, util::Xoshiro256& rng) {
  switch (i % 5) {
    case 0: {  // valid header bits (rate/length grid)
      static constexpr phy80211::Rate kRates[] = {
          phy80211::Rate::k1Mbps, phy80211::Rate::k2Mbps,
          phy80211::Rate::k5_5Mbps, phy80211::Rate::k11Mbps};
      phy80211::PlcpHeader h;
      h.rate = kRates[i % 4];
      const std::size_t bytes = 1 + rng.UniformInt(0, 256);
      h.length_us = phy80211::PlcpHeader::DurationUsFor(h.rate, bytes);
      h.service = phy80211::PlcpHeader::ServiceFor(h.rate, bytes);
      const auto bits = phy80211::BuildPlcpBits(h);
      std::vector<std::uint8_t> data{0};  // mode: bit parse
      data.insert(data.end(), bits.end() - 48, bits.end());
      return data;
    }
    case 1: {  // corrupted header bits
      phy80211::PlcpHeader h;
      h.rate = phy80211::Rate::k2Mbps;
      h.length_us = phy80211::PlcpHeader::DurationUsFor(
          h.rate, 1 + rng.UniformInt(0, 64));
      const auto bits = phy80211::BuildPlcpBits(h);
      std::vector<std::uint8_t> data{0};
      data.insert(data.end(), bits.end() - 48, bits.end());
      FuzzMutateInput(data, rng);
      return data;
    }
    case 2: {  // random bit-mode bytes (short, long, empty payload)
      std::vector<std::uint8_t> data{0};
      const std::size_t n = rng.UniformInt(0, 96);
      for (std::size_t k = 0; k < n; ++k) {
        data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
      }
      return data;
    }
    case 3: {  // modulated frame samples (truncated)
      phy80211::Modulator mod;
      std::vector<std::uint8_t> mpdu(8 + rng.UniformInt(0, 24));
      for (auto& b : mpdu) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      const auto x = mod.Modulate(mpdu, phy80211::Rate::k1Mbps);
      std::vector<std::uint8_t> data{1};  // mode: demodulator
      FuzzAppendSamples(data, x, 1200 + rng.UniformInt(0, 1000));
      return data;
    }
    default: {  // random sample bytes
      std::vector<std::uint8_t> data{1};
      const std::size_t n = 2 * (64 + rng.UniformInt(0, 1024));
      for (std::size_t k = 0; k < n; ++k) {
        data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
      }
      return data;
    }
  }
}

int WifiFuzzRun(std::span<const std::uint8_t> data, util::WorkBudget* budget) {
  if (data.empty()) return 0;
  const std::uint8_t mode = data[0];
  const auto payload = data.subspan(1);
  int decodes = 0;
  if (mode % 2 == 0) {
    const auto bits = FuzzBytesToBits(payload);
    const std::span<const std::uint8_t> all(bits);
    // Exact-size parse plus a deliberately wrong-size call (size guard).
    if (const auto h =
            phy80211::ParsePlcpHeader(all.first(std::min<std::size_t>(
                bits.size(), 48)))) {
      ++decodes;
      (void)h->MpduBytes();
      (void)phy80211::PlcpHeader::DurationUsFor(h->rate, h->MpduBytes());
      (void)phy80211::PlcpHeader::ServiceFor(h->rate, h->MpduBytes());
    }
    (void)phy80211::ParsePlcpHeader(all);
  } else {
    phy80211::Demodulator::Config cfg;
    cfg.budget = budget;
    phy80211::Demodulator demod(cfg);
    decodes +=
        static_cast<int>(demod.DecodeAll(FuzzBytesToSamples(payload)).size());
  }
  return decodes;
}

ProtocolBundle MakeWifiBundle() {
  ProtocolBundle b;
  b.protocol = Protocol::kWifi80211b;
  b.name = "802.11b";
  b.cli_name = "wifi";
  b.features = {
      {Protocol::kWifi80211b, "802.11b (1 Mbps)", 20.0, 10.0,
       Modulation::kDbpsk, "Barker", 22.0, 1e6},
      {Protocol::kWifi80211b, "802.11b (2 Mbps)", 20.0, 10.0,
       Modulation::kDqpsk, "Barker", 22.0, 1e6},
      {Protocol::kWifi80211b, "802.11b (5.5 Mbps)", 20.0, 10.0,
       Modulation::kCck, "CCK", 22.0, 1.375e6},
      {Protocol::kWifi80211b, "802.11b (11 Mbps)", 20.0, 10.0,
       Modulation::kCck, "CCK", 22.0, 1.375e6},
  };
  b.default_enabled = true;
  b.naive_member = true;
  b.differential_member = true;
  b.oracle_scored = true;
  b.detect_rank = 0;

  b.make_detectors = [](const DetectorSetup& setup) {
    ProtocolDetectors d;
    if (setup.timing_detectors) {
      auto timing = std::make_shared<WifiTimingDetector>();
      d.on_peaks = [timing](std::span<const Peak> fresh) {
        return timing->OnPeaks(fresh);
      };
      d.peaks_stage = "detect/timing-wifi";
    }
    if (setup.phase_detectors) {
      auto phase = std::make_shared<DbpskPhaseDetector>();
      d.on_peak = [phase](const Peak& p, dsp::const_sample_span span) {
        return phase->OnPeak(p, span);
      };
      d.peak_stage = "detect/phase-dbpsk";
    }
    return d;
  };

  b.analysis_plan = [](const AnalysisConfig& a) {
    AnalysisPlan p;
    p.units = a.wifi_demod ? 1 : -1;
    p.stage = "analysis/80211-demod";
    return p;
  };
  b.run_unit = [](const AnalysisUnitContext& ctx, int) -> AnalysisCommit {
    phy80211::Demodulator::Config cfg;
    cfg.budget = ctx.budget;
    phy80211::Demodulator wifi(cfg);
    auto frames = wifi.DecodeAll(ctx.span);
    for (auto& f : frames) {
      f.start_sample += ctx.start_sample;
      f.end_sample += ctx.start_sample;
    }
    return [frames = std::move(frames)](MonitorReport& report) mutable {
      for (auto& f : frames) report.wifi_frames.push_back(std::move(f));
    };
  };
  b.collect_events = [](const MonitorReport& report,
                        std::vector<ProtocolEvent>& out) {
    for (const auto& f : report.wifi_frames) {
      ProtocolEvent e;
      e.protocol = Protocol::kWifi80211b;
      e.start_sample = f.start_sample;
      e.end_sample = f.end_sample;
      e.crc_ok = f.fcs_ok;
      e.payload = f.mpdu;
      out.push_back(std::move(e));
    }
  };

  b.canned_traffic = [](emu::Ether& ether, std::int64_t start, double off) {
    traffic::WifiPingConfig cfg;
    cfg.count = 4;
    cfg.interval_us = 10'000.0;
    cfg.snr_db = 25.0 + off;
    return traffic::GenerateUnicastPing(ether, cfg, start).end_sample;
  };
  b.canned_at = 8'000;

  b.fuzz_name = "phy80211-plcp";
  b.fuzz_corpus_dir = "phy80211_plcp";
  b.fuzz_run = WifiFuzzRun;
  b.fuzz_seed_input = WifiSeedInput;
  return b;
}

[[maybe_unused]] const bool kRegistered =
    RegisterProtocolBundle(MakeWifiBundle());

}  // namespace
}  // namespace rfdump::core
