#include "rfdump/core/streaming.hpp"

#include <algorithm>

namespace rfdump::core {

StreamingMonitor::StreamingMonitor() : StreamingMonitor(Config{}) {}

StreamingMonitor::StreamingMonitor(Config config) : config_(config) {
  buffer_.reserve(config_.block_samples + config_.overlap_samples);
}

void StreamingMonitor::Push(dsp::const_sample_span segment) {
  buffer_.insert(buffer_.end(), segment.begin(), segment.end());
  while (buffer_.size() >= config_.block_samples) {
    ProcessBlock(/*final_block=*/false);
  }
}

void StreamingMonitor::Flush() {
  if (!buffer_.empty()) ProcessBlock(/*final_block=*/true);
}

double StreamingMonitor::CpuOverRealTime() const {
  if (samples_processed_ == 0) return 0.0;
  double cpu = 0.0;
  for (const auto& c : costs_) cpu += c.cpu_seconds;
  return cpu /
         (static_cast<double>(samples_processed_) / dsp::kSampleRateHz);
}

void StreamingMonitor::ProcessBlock(bool final_block) {
  const std::size_t take =
      final_block ? buffer_.size()
                  : std::min(buffer_.size(), config_.block_samples);
  const auto block = dsp::const_sample_span(buffer_).first(take);

  RFDumpPipeline pipeline(config_.pipeline);
  auto report = pipeline.Process(block);
  samples_processed_ += take;

  // Merge stage costs.
  for (const auto& c : report.costs) {
    auto it = std::find_if(costs_.begin(), costs_.end(),
                           [&](const StageCost& s) { return s.name == c.name; });
    if (it == costs_.end()) {
      costs_.push_back(c);
    } else {
      it->cpu_seconds += c.cpu_seconds;
      it->samples_in += c.samples_in;
    }
  }

  // Ownership boundary: this block reports every result that *starts* in
  // [emitted_until_, boundary); results starting inside the overlap tail are
  // left to the next block, which sees them whole (the overlap exceeds the
  // longest frame, so anything starting before the boundary also ends inside
  // this block).
  const std::int64_t base = buffer_start_;
  const std::size_t keep =
      final_block ? 0 : std::min(config_.overlap_samples, take);
  const std::int64_t boundary =
      base + static_cast<std::int64_t>(take - keep);
  const auto owned = [&](std::int64_t start) {
    return start >= emitted_until_ && start < boundary;
  };
  for (auto& f : report.wifi_frames) {
    f.start_sample += base;
    f.end_sample += base;
    if (owned(f.start_sample) && on_wifi_frame) on_wifi_frame(f);
  }
  for (auto& p : report.bt_packets) {
    p.start_sample += base;
    p.end_sample += base;
    if (owned(p.start_sample) && on_bt_packet) on_bt_packet(p);
  }
  for (auto& d : report.detections) {
    d.start_sample += base;
    d.end_sample += base;
    if (owned(d.start_sample) && on_detection) on_detection(d);
  }

  emitted_until_ = boundary;
  if (final_block) {
    buffer_start_ += static_cast<std::int64_t>(take);
    buffer_.clear();
    return;
  }
  const std::size_t consumed = take - keep;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
  buffer_start_ += static_cast<std::int64_t>(consumed);
}

}  // namespace rfdump::core
