#include "rfdump/core/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rfdump/core/executor.hpp"
#include "rfdump/core/result_sink.hpp"
#include "rfdump/obs/obs.hpp"

namespace rfdump::core {
namespace {

/// Streaming-path metrics (DESIGN.md §8), resolved once.
struct StreamingMetrics {
  obs::Counter& blocks =
      obs::Registry::Default().GetCounter("rfdump_streaming_blocks_total");
  obs::Counter& gaps =
      obs::Registry::Default().GetCounter("rfdump_streaming_gaps_total");
  obs::Counter& gap_samples = obs::Registry::Default().GetCounter(
      "rfdump_streaming_gap_samples_total");
  obs::Counter& duplicate_samples = obs::Registry::Default().GetCounter(
      "rfdump_streaming_duplicate_samples_total");
  obs::Counter& sanitized = obs::Registry::Default().GetCounter(
      "rfdump_streaming_sanitized_samples_total");
  /// Whole-block pipeline failures (an escape the per-interval stage
  /// boundaries did not catch — should stay at zero; the block's results are
  /// lost but the monitor itself keeps running).
  obs::Counter& block_failures = obs::Registry::Default().GetCounter(
      "rfdump_streaming_block_failures_total");
  obs::Counter& shed_up = obs::LabeledCounter(
      "rfdump_streaming_shed_transitions_total", "direction", "up");
  obs::Counter& shed_down = obs::LabeledCounter(
      "rfdump_streaming_shed_transitions_total", "direction", "down");
  obs::Gauge& shed_stage =
      obs::Registry::Default().GetGauge("rfdump_streaming_shed_stage");
  /// Pipelined mode: blocks waiting between detect and analyze, and how
  /// often ingest stalled on a full queue (each stall is an overload signal
  /// fed to the shed controller).
  obs::Gauge& queue_depth =
      obs::Registry::Default().GetGauge("rfdump_streaming_queue_depth");
  obs::Counter& backpressure = obs::Registry::Default().GetCounter(
      "rfdump_streaming_backpressure_total");
  /// CPU-over-real-time per block: buckets straddle 1.0 (the real-time
  /// wall) so the exposition shows at a glance how close to falling behind
  /// the monitor runs.
  obs::Histogram& block_load = obs::Registry::Default().GetHistogram(
      "rfdump_streaming_block_load",
      {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 0.75, 1.0, 1.5, 2.0, 5.0});
  static StreamingMetrics& Get() {
    static StreamingMetrics m;
    return m;
  }
};

}  // namespace

double HealthSummary::MeanLoad() const {
  if (samples == 0) return 0.0;
  return load_seconds /
         (static_cast<double>(samples) / dsp::kSampleRateHz);
}

void StreamingMonitor::Config::Validate() const {
  if (block_samples == 0) {
    throw std::invalid_argument("StreamingMonitor: block_samples must be > 0");
  }
  if (overlap_samples >= block_samples) {
    throw std::invalid_argument(
        "StreamingMonitor: overlap_samples must be < block_samples "
        "(the block schedule would never advance)");
  }
  if (threads < 1) {
    throw std::invalid_argument(
        "StreamingMonitor: threads must be >= 1 (1 = serial)");
  }
  if (max_queue_blocks == 0) {
    throw std::invalid_argument(
        "StreamingMonitor: max_queue_blocks must be >= 1");
  }
  if (cpu_budget < 0.0) {
    throw std::invalid_argument(
        "StreamingMonitor: cpu_budget must be >= 0 (0 disables shedding)");
  }
  if (supervisor.demod_limits.max_cpu_seconds < 0.0) {
    throw std::invalid_argument(
        "StreamingMonitor: supervisor.demod_limits.max_cpu_seconds must be "
        ">= 0 (0 = unlimited)");
  }
}

StreamingMonitor::StreamingMonitor() : StreamingMonitor(Config{}) {}

StreamingMonitor::StreamingMonitor(Config config)
    : config_(config),
      supervisor_(config.supervisor),
      pipeline_(config.pipeline) {
  config_.Validate();
  buffer_.reserve(config_.block_samples + config_.overlap_samples);
  // Rebuild the pipeline with the owned supervisor wired in (the caller's
  // pipeline config cannot point at it — it does not exist yet).
  ApplyShedStage();
  if (config_.threads > 1) {
    executor_ = std::make_unique<Executor>(config_.threads);
    analyzer_ = std::thread([this] { AnalyzerLoop(); });
  }
}

StreamingMonitor::~StreamingMonitor() {
  if (analyzer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    analyzer_.join();  // drains queued blocks first (AnalyzerLoop contract)
  }
}

void StreamingMonitor::Push(dsp::const_sample_span segment) {
  // Documented alias: Push IS PushSegment with the auto-advancing timestamp.
  PushSegment(expected_next_ < 0 ? 0 : expected_next_, segment);
}

void StreamingMonitor::PushSegment(std::int64_t start_sample,
                                   dsp::const_sample_span samples) {
  if (expected_next_ < 0) {
    // First delivery anchors the stream timeline.
    buffer_start_ = start_sample;
    emitted_until_ = start_sample;
    expected_next_ = start_sample;
  }
  if (start_sample > expected_next_) {
    // Discontinuity: the front end lost samples. Finish what we have — the
    // pre-gap samples are complete up to the gap — then restart the block
    // schedule on the far side. Nothing is ever decoded across the gap.
    const std::int64_t missing = start_sample - expected_next_;
    ++pending_gap_count_;
    pending_gap_samples_ += missing;
    StreamingMetrics::Get().gaps.Inc();
    StreamingMetrics::Get().gap_samples.Inc(
        static_cast<std::uint64_t>(missing));
    gaps_.push_back({expected_next_, missing});
    if (!buffer_.empty()) {
      ProcessBlock(/*final_block=*/true, /*gap_cut=*/true);
    }
    buffer_start_ = start_sample;
    emitted_until_ = start_sample;
    expected_next_ = start_sample;
  } else if (start_sample < expected_next_) {
    // Duplicate / re-delivered buffer: drop the part we already consumed.
    // Any remainder continues the stream at expected_next_.
    const auto skip = static_cast<std::size_t>(std::min<std::int64_t>(
        expected_next_ - start_sample,
        static_cast<std::int64_t>(samples.size())));
    pending_overlap_samples_ += static_cast<std::int64_t>(skip);
    StreamingMetrics::Get().duplicate_samples.Inc(skip);
    samples = samples.subspan(skip);
  }
  expected_next_ += static_cast<std::int64_t>(samples.size());
  const std::uint64_t sanitized = AppendSanitized(samples);
  pending_sanitized_ += sanitized;
  StreamingMetrics::Get().sanitized.Inc(sanitized);
  while (buffer_.size() >= config_.block_samples) {
    ProcessBlock(/*final_block=*/false, /*gap_cut=*/false);
  }
}

std::uint64_t StreamingMonitor::AppendSanitized(
    dsp::const_sample_span samples) {
  std::uint64_t sanitized = 0;
  buffer_.reserve(buffer_.size() + samples.size());
  for (const dsp::cfloat& s : samples) {
    if (std::isfinite(s.real()) && std::isfinite(s.imag())) {
      buffer_.push_back(s);
    } else {
      // One corrupt sample must not poison a whole block's averages or leak
      // NaN into demodulator output; zero reads as silence.
      buffer_.push_back(dsp::cfloat{0.0f, 0.0f});
      ++sanitized;
    }
  }
  return sanitized;
}

void StreamingMonitor::Flush() {
  if (!buffer_.empty()) {
    ProcessBlock(/*final_block=*/true, /*gap_cut=*/false);
    if (pipelined()) DrainQueue();
  } else if (pending_gap_count_ > 0 || pending_overlap_samples_ > 0 ||
             pending_sanitized_ > 0) {
    // Nothing buffered, but ingest saw faults since the last block: emit an
    // empty-block report so no fault goes unrecorded.
    if (pipelined()) DrainQueue();
    HealthReport h;
    h.block_start = buffer_start_;
    h.shed_stage = shed_stage_.load(std::memory_order_relaxed);
    EmitHealth(h);
  } else if (pipelined()) {
    DrainQueue();
  }
}

double StreamingMonitor::CpuOverRealTime() const {
  if (samples_processed_ == 0) return 0.0;
  double cpu = 0.0;
  for (const auto& c : costs_) cpu += c.cpu_seconds;
  return cpu /
         (static_cast<double>(samples_processed_) / dsp::kSampleRateHz);
}

void StreamingMonitor::set_cpu_budget(double budget) {
  config_.cpu_budget = budget;
  under_budget_blocks_ = 0;
  if (budget <= 0.0 && shed_stage_.load(std::memory_order_relaxed) != 0) {
    // Disabling shedding is an operator decision; restore the full pipeline
    // immediately rather than waiting for the next block's load sample.
    shed_stage_.store(0, std::memory_order_relaxed);
    StreamingMetrics::Get().shed_stage.Set(0);
    ApplyShedStage();
  }
}

void StreamingMonitor::EmitHealth(HealthReport h) {
  h.gap_count = pending_gap_count_;
  h.gap_samples = pending_gap_samples_;
  h.overlap_samples = pending_overlap_samples_;
  h.sanitized_samples = pending_sanitized_;
  pending_gap_count_ = 0;
  pending_gap_samples_ = 0;
  pending_overlap_samples_ = 0;
  pending_sanitized_ = 0;
  RecordHealth(h);
}

void StreamingMonitor::RecordHealth(const HealthReport& h) {
  // Cumulative summary first (never evicted), then the bounded ring.
  ++summary_.blocks;
  summary_.samples += h.block_samples;
  summary_.gap_count += h.gap_count;
  summary_.gap_samples += h.gap_samples;
  summary_.overlap_samples += h.overlap_samples;
  summary_.sanitized_samples += h.sanitized_samples;
  summary_.tagged_detections += h.tagged_detections;
  summary_.rejected_detections += h.rejected_detections;
  summary_.forwarded_intervals += h.forwarded_intervals;
  summary_.supervised_intervals += h.supervised_intervals;
  summary_.deadline_intervals += h.deadline_intervals;
  summary_.exception_intervals += h.exception_intervals;
  summary_.skipped_intervals += h.skipped_intervals;
  summary_.quarantined_intervals += h.quarantined_intervals;
  summary_.breaker_trips += h.breaker_trips;
  summary_.max_shed_stage = std::max(summary_.max_shed_stage, h.shed_stage);
  summary_.max_block_load = std::max(summary_.max_block_load, h.block_load);
  summary_.load_seconds += h.block_load * (static_cast<double>(h.block_samples) /
                                           dsp::kSampleRateHz);

  StreamingMetrics::Get().blocks.Inc();
  if (h.block_samples > 0) {
    StreamingMetrics::Get().block_load.Observe(h.block_load);
  }

  health_.push_back(h);
  while (config_.health_history_limit > 0 &&
         health_.size() > config_.health_history_limit) {
    health_.pop_front();
  }
  if (config_.sink != nullptr) config_.sink->OnHealth(health_.back());
  if (on_health) on_health(health_.back());
}

void StreamingMonitor::EmitWifi(const phy80211::DecodedFrame& f) {
  if (config_.sink != nullptr) config_.sink->OnWifiFrame(f);
  if (on_wifi_frame) on_wifi_frame(f);
}

void StreamingMonitor::EmitBt(const phybt::DecodedBtPacket& p) {
  if (config_.sink != nullptr) config_.sink->OnBtPacket(p);
  if (on_bt_packet) on_bt_packet(p);
}

void StreamingMonitor::EmitZb(const phyzigbee::DecodedZbFrame& z) {
  // No legacy callback existed for ZigBee — sink-only (the quartet never
  // carried these; they were silently dropped before the sink API).
  if (config_.sink != nullptr) config_.sink->OnZbFrame(z);
}

void StreamingMonitor::EmitEvent(const ProtocolEvent& e) {
  // Generic protocol-tagged channel; sink-only (no legacy callback).
  if (config_.sink != nullptr) config_.sink->OnEvent(e);
}

void StreamingMonitor::EmitDetection(const Detection& d) {
  if (config_.sink != nullptr) config_.sink->OnDetection(d);
  if (on_detection) on_detection(d);
}

void StreamingMonitor::ApplyShedStage() {
  RFDumpPipeline::Config cfg = config_.pipeline;
  cfg.supervisor = &supervisor_;  // breaker state survives reconstruction
  // The monitor controls execution and emission itself: analysis fan-out
  // happens via AnalyzeDetections on the analyzer thread, and all emission
  // goes through the monitor's ownership filter.
  cfg.executor = nullptr;
  cfg.sink = nullptr;
  const int stage = shed_stage_.load(std::memory_order_relaxed);
  if (stage >= 1) {
    cfg.freq_detector = false;
    cfg.microwave_detector = false;
    cfg.zigbee_detector = false;
    cfg.collision_detector = false;
  }
  if (stage >= 2) {
    cfg.analysis.min_dispatch_confidence = std::max(
        cfg.analysis.min_dispatch_confidence, config_.shed_min_confidence);
  }
  if (stage >= 3) {
    cfg.analysis.demodulate = false;
  }
  applied_shed_stage_ = stage;
  pipeline_ = RFDumpPipeline(cfg);
}

void StreamingMonitor::UpdateShedding(double block_load,
                                      bool deadline_pressure,
                                      bool backpressure) {
  if (config_.cpu_budget <= 0.0) {
    if (shed_stage_.load(std::memory_order_relaxed) != 0) {
      shed_stage_.store(0, std::memory_order_relaxed);
      if (!pipelined()) ApplyShedStage();
    }
    return;
  }
  // A stalled ingest queue means analysis cannot keep up regardless of what
  // the per-block load sample says — treat it as over budget.
  if (block_load > config_.cpu_budget || backpressure) {
    under_budget_blocks_ = 0;
    if (shed_stage_.load(std::memory_order_relaxed) < kShedStageMax) {
      const int stage = shed_stage_.fetch_add(1, std::memory_order_relaxed) + 1;
      StreamingMetrics::Get().shed_up.Inc();
      StreamingMetrics::Get().shed_stage.Set(stage);
      if (!pipelined()) ApplyShedStage();
    }
  } else if (deadline_pressure) {
    // Deadline-aborted intervals mean measured load understates offered
    // load (work was cut short, not completed). Don't let an artificially
    // cheap block walk the shed stage back down.
    under_budget_blocks_ = 0;
  } else if (shed_stage_.load(std::memory_order_relaxed) > 0 &&
             block_load <
                 config_.shed_resume_fraction * config_.cpu_budget) {
    if (++under_budget_blocks_ >= config_.shed_resume_blocks) {
      const int stage = shed_stage_.fetch_sub(1, std::memory_order_relaxed) - 1;
      under_budget_blocks_ = 0;
      StreamingMetrics::Get().shed_down.Inc();
      StreamingMetrics::Get().shed_stage.Set(stage);
      if (!pipelined()) ApplyShedStage();
    }
  } else {
    under_budget_blocks_ = 0;
  }
}

void StreamingMonitor::ProcessBlock(bool final_block, bool gap_cut) {
  if (pipelined()) {
    EnqueueBlock(final_block, gap_cut);
    return;
  }
  RFDUMP_TRACE_SPAN("streaming/block");
  const std::size_t take =
      final_block ? buffer_.size()
                  : std::min(buffer_.size(), config_.block_samples);
  const auto block = dsp::const_sample_span(buffer_).first(take);

  // Quarantine records want absolute stream positions; the pipeline works
  // block-relative, so tell the supervisor where this block starts.
  supervisor_.set_stream_offset(buffer_start_);

  // The shed controller and the per-stage ledger read the same monotonic
  // clock (obs::Stopwatch); this one covers the whole pipeline call, so
  // block_load also charges any between-stage overhead to the block.
  obs::Stopwatch block_watch;
  MonitorReport report;
  // Last-resort containment: per-interval stage boundaries catch demodulator
  // and detector throws, so anything arriving here escaped from pipeline
  // plumbing itself. The block's results are lost; the monitor is not.
  try {
    report = pipeline_.Process(block);
  } catch (...) {
    StreamingMetrics::Get().block_failures.Inc();
    report = MonitorReport{};
    report.samples_total = take;
  }
  const double block_cpu = block_watch.Seconds();
  samples_processed_ += take;

  // Supervision outcomes for this block: delta against the last snapshot of
  // the (cumulative) supervisor counters.
  const Supervisor::Counts now = supervisor_.counts();
  const std::uint64_t d_supervised = now.invocations - last_counts_.invocations;
  const std::uint64_t d_deadline = now.deadline - last_counts_.deadline;
  const std::uint64_t d_exception = now.exception - last_counts_.exception;
  const std::uint64_t d_skipped = now.skipped - last_counts_.skipped;
  const std::uint64_t d_quarantined = now.quarantined - last_counts_.quarantined;
  const std::uint64_t d_trips = now.breaker_trips - last_counts_.breaker_trips;
  last_counts_ = now;

  // Merge stage costs.
  for (const auto& c : report.costs) {
    auto it = std::find_if(costs_.begin(), costs_.end(),
                           [&](const StageCost& s) { return s.name == c.name; });
    if (it == costs_.end()) {
      costs_.push_back(c);
    } else {
      it->cpu_seconds += c.cpu_seconds;
      it->samples_in += c.samples_in;
    }
  }

  // Block health: input-quality fields from the pipeline's scan, stream
  // fields (gaps / overlaps / sanitization) from the ingest tallies.
  HealthReport h;
  if (!report.health.empty()) h = report.health.front();
  h.block_start = buffer_start_;
  h.block_samples = take;
  h.shed_stage = shed_stage_.load(std::memory_order_relaxed);
  h.block_load =
      take > 0
          ? block_cpu / (static_cast<double>(take) / dsp::kSampleRateHz)
          : 0.0;
  h.supervised_intervals = d_supervised;
  h.deadline_intervals = d_deadline;
  h.exception_intervals = d_exception;
  h.skipped_intervals = d_skipped;
  h.quarantined_intervals = d_quarantined;
  h.breaker_trips = static_cast<std::uint32_t>(d_trips);
  h.open_breakers = supervisor_.open_breakers();
  const double block_load = h.block_load;
  EmitHealth(h);
  // A block has elapsed for breaker cooldown purposes (open -> half-open
  // transitions happen here, after the block's health was reported).
  supervisor_.OnBlockEnd();

  // Ownership boundary: this block reports every result that *starts* in
  // [emitted_until_, boundary); results starting inside the overlap tail are
  // left to the next block, which sees them whole (the overlap exceeds the
  // longest frame, so anything starting before the boundary also ends inside
  // this block).
  const std::int64_t base = buffer_start_;
  const std::size_t keep =
      final_block ? 0 : std::min(config_.overlap_samples, take);
  const std::int64_t boundary =
      base + static_cast<std::int64_t>(take - keep);
  const auto owned = [&](std::int64_t start) {
    return start >= emitted_until_ && start < boundary;
  };
  // A block cut short by a gap ends where delivered data ends: a frame that
  // reaches the cut was truncated by the overrun unless it checked out in
  // full (FCS/CRC), and a truncated frame is reported as a gap, not a frame.
  const auto clear_of_cut = [&](std::int64_t end, bool verified) {
    return !gap_cut || end < boundary || verified;
  };
  for (auto& f : report.wifi_frames) {
    f.start_sample += base;
    f.end_sample += base;
    if (owned(f.start_sample) &&
        clear_of_cut(f.end_sample, f.payload_decoded && f.fcs_ok)) {
      EmitWifi(f);
    }
  }
  for (auto& p : report.bt_packets) {
    p.start_sample += base;
    p.end_sample += base;
    if (owned(p.start_sample) && clear_of_cut(p.end_sample, p.packet.crc_ok)) {
      EmitBt(p);
    }
  }
  for (auto& z : report.zb_frames) {
    z.start_sample += base;
    z.end_sample += base;
    if (owned(z.start_sample) && clear_of_cut(z.end_sample, z.crc_ok)) {
      EmitZb(z);
    }
  }
  for (auto& e : report.events) {
    e.start_sample += base;
    e.end_sample += base;
    if (owned(e.start_sample) && clear_of_cut(e.end_sample, e.crc_ok)) {
      EmitEvent(e);
    }
  }
  for (auto& d : report.detections) {
    d.start_sample += base;
    d.end_sample += base;
    if (owned(d.start_sample)) EmitDetection(d);
  }

  emitted_until_ = boundary;
  // Adapt the shed stage for the *next* block from this block's load.
  UpdateShedding(block_load, /*deadline_pressure=*/d_deadline > 0,
                 /*backpressure=*/false);
  if (final_block) {
    buffer_start_ += static_cast<std::int64_t>(take);
    buffer_.clear();
    return;
  }
  const std::size_t consumed = take - keep;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
  buffer_start_ += static_cast<std::int64_t>(consumed);
}

// ------------------------------------------------------------ pipelined mode

void StreamingMonitor::EnqueueBlock(bool final_block, bool gap_cut) {
  RFDUMP_TRACE_SPAN("streaming/detect");
  // Apply any shed-stage change the analyzer's controller decided since the
  // previous block: the ingest thread owns pipeline_, so the rebuild happens
  // here, before detection.
  if (shed_stage_.load(std::memory_order_relaxed) != applied_shed_stage_) {
    ApplyShedStage();
    StreamingMetrics::Get().shed_stage.Set(applied_shed_stage_);
  }

  const std::size_t take =
      final_block ? buffer_.size()
                  : std::min(buffer_.size(), config_.block_samples);
  const auto block = dsp::const_sample_span(buffer_).first(take);

  BlockJob job;
  job.base = buffer_start_;
  job.take = take;
  const std::size_t keep =
      final_block ? 0 : std::min(config_.overlap_samples, take);
  job.boundary = buffer_start_ + static_cast<std::int64_t>(take - keep);
  job.emit_from = emitted_until_;
  job.gap_cut = gap_cut;
  job.shed_stage = applied_shed_stage_;
  job.gap_count = pending_gap_count_;
  job.gap_samples = pending_gap_samples_;
  job.overlap_samples = pending_overlap_samples_;
  job.sanitized = pending_sanitized_;
  pending_gap_count_ = 0;
  pending_gap_samples_ = 0;
  pending_overlap_samples_ = 0;
  pending_sanitized_ = 0;

  obs::Stopwatch detect_watch;
  try {
    job.det = pipeline_.Detect(block);
  } catch (...) {
    // Same last-resort containment as the serial path: the block yields an
    // empty report (plus health/tallies), the monitor keeps running.
    StreamingMetrics::Get().block_failures.Inc();
    job.det = DetectOutput{};
    job.det.report.samples_total = take;
  }
  job.detect_seconds = detect_watch.Seconds();
  job.samples.assign(block.begin(), block.end());

  // Ingest state advances NOW — this is the double-buffering: the next
  // segment lands in a clean buffer while the analyzer works on the copy.
  emitted_until_ = job.boundary;
  if (final_block) {
    buffer_start_ += static_cast<std::int64_t>(take);
    buffer_.clear();
  } else {
    const std::size_t consumed = take - keep;
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
    buffer_start_ += static_cast<std::int64_t>(consumed);
  }

  std::size_t depth;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (queue_.size() >= config_.max_queue_blocks) {
      // Backpressure: ingest waits for analysis. The stall itself is the
      // overload signal — the shed controller sees it with the next block.
      backpressure_.store(true, std::memory_order_relaxed);
      StreamingMetrics::Get().backpressure.Inc();
      queue_space_cv_.wait(lock, [&] {
        return queue_.size() < config_.max_queue_blocks;
      });
    }
    queue_.push_back(std::move(job));
    depth = queue_.size();
  }
  StreamingMetrics::Get().queue_depth.Set(static_cast<double>(depth));
  queue_cv_.notify_one();
}

void StreamingMonitor::AnalyzerLoop() {
  for (;;) {
    BlockJob job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      analyzer_busy_ = true;
      StreamingMetrics::Get().queue_depth.Set(
          static_cast<double>(queue_.size()));
    }
    queue_space_cv_.notify_all();
    AnalyzeBlock(job);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      analyzer_busy_ = false;
    }
    queue_space_cv_.notify_all();  // DrainQueue also waits for idle
  }
}

void StreamingMonitor::DrainQueue() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_space_cv_.wait(lock,
                       [&] { return queue_.empty() && !analyzer_busy_; });
}

void StreamingMonitor::AnalyzeBlock(BlockJob& job) {
  RFDUMP_TRACE_SPAN("streaming/block");
  // All Admit/Finish calls for this block happen on this thread before the
  // next block starts, so the offset is stable for its quarantine records.
  supervisor_.set_stream_offset(job.base);

  obs::Stopwatch analyze_watch;
  MonitorReport report;
  try {
    report = AnalyzeDetections(std::move(job.det),
                               dsp::const_sample_span(job.samples),
                               executor_.get(), nullptr);
  } catch (...) {
    StreamingMetrics::Get().block_failures.Inc();
    report = MonitorReport{};
    report.samples_total = job.take;
  }
  // The block's critical-path cost: detect (ingest thread) + analyze (this
  // thread). With a wide executor the analyze term is wall time over the
  // fan-out, which is what "can the monitor keep up" actually measures.
  const double block_cpu = job.detect_seconds + analyze_watch.Seconds();
  samples_processed_ += job.take;

  const Supervisor::Counts now = supervisor_.counts();
  const std::uint64_t d_supervised = now.invocations - last_counts_.invocations;
  const std::uint64_t d_deadline = now.deadline - last_counts_.deadline;
  const std::uint64_t d_exception = now.exception - last_counts_.exception;
  const std::uint64_t d_skipped = now.skipped - last_counts_.skipped;
  const std::uint64_t d_quarantined = now.quarantined - last_counts_.quarantined;
  const std::uint64_t d_trips = now.breaker_trips - last_counts_.breaker_trips;
  last_counts_ = now;

  for (const auto& c : report.costs) {
    auto it = std::find_if(costs_.begin(), costs_.end(),
                           [&](const StageCost& s) { return s.name == c.name; });
    if (it == costs_.end()) {
      costs_.push_back(c);
    } else {
      it->cpu_seconds += c.cpu_seconds;
      it->samples_in += c.samples_in;
    }
  }

  HealthReport h;
  if (!report.health.empty()) h = report.health.front();
  h.block_start = job.base;
  h.block_samples = job.take;
  h.shed_stage = job.shed_stage;
  h.block_load =
      job.take > 0
          ? block_cpu / (static_cast<double>(job.take) / dsp::kSampleRateHz)
          : 0.0;
  h.gap_count = job.gap_count;
  h.gap_samples = job.gap_samples;
  h.overlap_samples = job.overlap_samples;
  h.sanitized_samples = job.sanitized;
  h.supervised_intervals = d_supervised;
  h.deadline_intervals = d_deadline;
  h.exception_intervals = d_exception;
  h.skipped_intervals = d_skipped;
  h.quarantined_intervals = d_quarantined;
  h.breaker_trips = static_cast<std::uint32_t>(d_trips);
  h.open_breakers = supervisor_.open_breakers();
  const double block_load = h.block_load;
  RecordHealth(h);
  supervisor_.OnBlockEnd();

  // Same ownership filter as the serial path, from the window the ingest
  // thread computed when it packaged the block.
  const auto owned = [&](std::int64_t start) {
    return start >= job.emit_from && start < job.boundary;
  };
  const auto clear_of_cut = [&](std::int64_t end, bool verified) {
    return !job.gap_cut || end < job.boundary || verified;
  };
  const std::int64_t base = job.base;
  for (auto& f : report.wifi_frames) {
    f.start_sample += base;
    f.end_sample += base;
    if (owned(f.start_sample) &&
        clear_of_cut(f.end_sample, f.payload_decoded && f.fcs_ok)) {
      EmitWifi(f);
    }
  }
  for (auto& p : report.bt_packets) {
    p.start_sample += base;
    p.end_sample += base;
    if (owned(p.start_sample) && clear_of_cut(p.end_sample, p.packet.crc_ok)) {
      EmitBt(p);
    }
  }
  for (auto& z : report.zb_frames) {
    z.start_sample += base;
    z.end_sample += base;
    if (owned(z.start_sample) && clear_of_cut(z.end_sample, z.crc_ok)) {
      EmitZb(z);
    }
  }
  for (auto& e : report.events) {
    e.start_sample += base;
    e.end_sample += base;
    if (owned(e.start_sample) && clear_of_cut(e.end_sample, e.crc_ok)) {
      EmitEvent(e);
    }
  }
  for (auto& d : report.detections) {
    d.start_sample += base;
    d.end_sample += base;
    if (owned(d.start_sample)) EmitDetection(d);
  }

  UpdateShedding(block_load, /*deadline_pressure=*/d_deadline > 0,
                 backpressure_.exchange(false, std::memory_order_relaxed));
}

}  // namespace rfdump::core
