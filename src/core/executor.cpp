#include "rfdump/core/executor.hpp"

#include <algorithm>
#include <chrono>

#include "rfdump/obs/obs.hpp"

namespace rfdump::core {
namespace {

/// Executor metrics (DESIGN.md §8/§10), resolved once.
struct ExecutorMetrics {
  obs::Gauge& workers =
      obs::Registry::Default().GetGauge("rfdump_executor_workers");
  obs::Counter& tasks =
      obs::Registry::Default().GetCounter("rfdump_executor_tasks_total");
  obs::Counter& steals =
      obs::Registry::Default().GetCounter("rfdump_executor_steals_total");
  obs::Gauge& queue_depth =
      obs::Registry::Default().GetGauge("rfdump_executor_queue_depth");
  /// Submission-to-start latency: how long tasks sit in the deques.
  obs::Histogram& task_wait = obs::Registry::Default().GetHistogram(
      "rfdump_executor_task_wait_seconds",
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0});
  /// Task run time: the granularity knob for the ordered merge.
  obs::Histogram& task_run = obs::Registry::Default().GetHistogram(
      "rfdump_executor_task_run_seconds",
      {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0});
  /// Per-batch worker utilization: busy CPU over (width x batch wall).
  obs::Histogram& utilization = obs::Registry::Default().GetHistogram(
      "rfdump_executor_batch_utilization",
      {0.1, 0.25, 0.5, 0.75, 0.9, 1.0});
  static ExecutorMetrics& Get() {
    static ExecutorMetrics m;
    return m;
  }
};

}  // namespace

struct Executor::Batch::State {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = 0;          // tasks submitted but not finished
  std::uint64_t tasks = 0;          // total submitted
  double busy_seconds = 0.0;        // sum of task run times
  double started_at = 0.0;          // first submission timestamp
  std::exception_ptr first_error;
};

Executor::Executor(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads_ = std::clamp(threads, 1, kMaxThreads);
  const int pool = threads_ - 1;  // the caller is the Nth worker (Wait helps)
  queues_.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  pool_.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    pool_.emplace_back([this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
  ExecutorMetrics::Get().workers.Set(threads_);
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    shutdown_ = true;
  }
  idle_cv_.notify_all();
  for (auto& t : pool_) t.join();
}

void Executor::Enqueue(Task task) {
  std::size_t qi;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    qi = static_cast<std::size_t>(next_queue_++) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[qi]->mu);
    queues_[qi]->tasks.push_back(std::move(task));
  }
  ExecutorMetrics::Get().queue_depth.Add(1.0);
  idle_cv_.notify_one();
}

bool Executor::TryPop(std::size_t preferred, Task& out) {
  const std::size_t n = queues_.size();
  if (n == 0) return false;
  // Own deque first (FIFO keeps submission order when uncontended)...
  if (preferred < n) {
    std::lock_guard<std::mutex> lock(queues_[preferred]->mu);
    if (!queues_[preferred]->tasks.empty()) {
      out = std::move(queues_[preferred]->tasks.front());
      queues_[preferred]->tasks.pop_front();
      ExecutorMetrics::Get().queue_depth.Add(-1.0);
      return true;
    }
  }
  // ...then steal from the back of a sibling's deque.
  for (std::size_t i = 0; i < n; ++i) {
    if (i == preferred) continue;
    std::lock_guard<std::mutex> lock(queues_[i]->mu);
    if (!queues_[i]->tasks.empty()) {
      out = std::move(queues_[i]->tasks.back());
      queues_[i]->tasks.pop_back();
      ExecutorMetrics::Get().queue_depth.Add(-1.0);
      if (preferred < n) ExecutorMetrics::Get().steals.Inc();
      return true;
    }
  }
  return false;
}

void Executor::RunTask(Task& task) {
  auto& metrics = ExecutorMetrics::Get();
  const double started = obs::Stopwatch::NowSeconds();
  metrics.task_wait.Observe(started - task.enqueued_at);
  {
    RFDUMP_TRACE_SPAN("executor/task");
    try {
      task.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(task.batch->mu);
      if (!task.batch->first_error) {
        task.batch->first_error = std::current_exception();
      }
    }
  }
  const double dur = obs::Stopwatch::NowSeconds() - started;
  metrics.task_run.Observe(dur);
  metrics.tasks.Inc();
  {
    std::lock_guard<std::mutex> lock(task.batch->mu);
    task.batch->busy_seconds += dur;
    if (--task.batch->pending == 0) task.batch->cv.notify_all();
  }
}

void Executor::WorkerLoop(std::size_t index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task task;
    if (TryPop(index, task)) {
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (shutdown_) return;
    // next_queue_ doubles as a work epoch: it only moves on Enqueue, under
    // this mutex, so waiting until it changes cannot miss a submission.
    if (next_queue_ == seen_epoch) {
      idle_cv_.wait(lock, [&] { return shutdown_ || next_queue_ != seen_epoch; });
      if (shutdown_) return;
    }
    seen_epoch = next_queue_;
  }
}

// -------------------------------------------------------------------- Batch

Executor::Batch::Batch(Executor* ex) {
  if (ex != nullptr && !ex->serial()) {
    ex_ = ex;
    state_ = std::make_shared<State>();
  }
}

Executor::Batch::~Batch() {
  if (waited_) return;
  try {
    Wait();
  } catch (...) {
    // A batch abandoned without Wait() still joins; the error is dropped.
  }
}

void Executor::Batch::Run(std::function<void()> fn) {
  if (!state_) {
    // Inline mode: immediate execution in submission order, error held for
    // Wait() so both modes surface failures at the same point.
    try {
      fn();
    } catch (...) {
      if (!inline_error_) inline_error_ = std::current_exception();
    }
    return;
  }
  const double now = obs::Stopwatch::NowSeconds();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->pending;
    ++state_->tasks;
    if (state_->started_at == 0.0) state_->started_at = now;
  }
  ex_->Enqueue(Task{std::move(fn), state_, now});
}

void Executor::Batch::Wait() {
  waited_ = true;
  if (!state_) {
    if (inline_error_) {
      std::exception_ptr e = inline_error_;
      inline_error_ = nullptr;
      std::rethrow_exception(e);
    }
    return;
  }
  // Help-while-wait: the caller is the pool's Nth worker. Our own tasks are
  // all submitted by now, so anything TryPop returns is a leaf that cannot
  // block back on us.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->pending == 0) break;
    }
    Task task;
    if (ex_->TryPop(ex_->queues_.size(), task)) {
      ex_->RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(state_->mu);
    // Re-check under the lock, then sleep briefly; completions notify, the
    // timeout re-opens the helping loop for late-queued sibling tasks.
    state_->cv.wait_for(lock, std::chrono::milliseconds(2),
                        [&] { return state_->pending == 0; });
  }
  if (state_->tasks > 0 && state_->started_at > 0.0) {
    const double wall = obs::Stopwatch::NowSeconds() - state_->started_at;
    if (wall > 0.0) {
      const double util = std::clamp(
          state_->busy_seconds / (static_cast<double>(ex_->threads()) * wall),
          0.0, 1.0);
      ExecutorMetrics::Get().utilization.Observe(util);
    }
  }
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    e = state_->first_error;
    state_->first_error = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

}  // namespace rfdump::core
