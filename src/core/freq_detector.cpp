#include "rfdump/core/freq_detector.hpp"

#include <algorithm>

#include "rfdump/dsp/windows.hpp"

namespace rfdump::core {

BluetoothFreqDetector::BluetoothFreqDetector()
    : BluetoothFreqDetector(Config{}) {}

BluetoothFreqDetector::BluetoothFreqDetector(Config config)
    : config_(config),
      plan_(config.fft_size),
      window_(dsp::MakeWindow(dsp::WindowType::kHann, config.fft_size)) {}

std::vector<Detection> BluetoothFreqDetector::PushChunk(
    dsp::const_sample_span chunk, std::int64_t start_sample) {
  std::vector<Detection> out;
  const auto spectrum = plan_.PowerSpectrum(chunk, window_);
  // Fold FFT bins into `bins` channel bins. FFT order: bin k is frequency
  // k * Fs / N for k < N/2, negative frequencies above. Channel bin b covers
  // [-4 MHz + b MHz, -4 MHz + (b+1) MHz).
  std::vector<double> channel_energy(config_.bins, 0.0);
  const std::size_t n = config_.fft_size;
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Signed frequency as a fraction of Fs in [-0.5, 0.5).
    const double f =
        (k < n / 2) ? static_cast<double>(k) / static_cast<double>(n)
                    : static_cast<double>(k) / static_cast<double>(n) - 1.0;
    auto b = static_cast<std::int64_t>(
        (f + 0.5) * static_cast<double>(config_.bins));
    b = std::clamp<std::int64_t>(b, 0,
                                 static_cast<std::int64_t>(config_.bins) - 1);
    channel_energy[static_cast<std::size_t>(b)] += spectrum[k];
    total += spectrum[k];
  }
  const auto top = std::max_element(channel_energy.begin(),
                                    channel_energy.end());
  const int channel = static_cast<int>(top - channel_energy.begin());
  const double mean_power =
      total / static_cast<double>(n) / static_cast<double>(n);
  // (PowerSpectrum is unnormalized |X|^2; dividing by N^2 approximates the
  // windowed mean-square amplitude well enough for gating.)
  const bool active =
      mean_power >
          config_.min_power_over_floor * config_.noise_floor_power /
              static_cast<double>(config_.bins) &&
      *top > config_.dominance * total;

  const std::int64_t chunk_end =
      start_sample + static_cast<std::int64_t>(chunk.size());
  if (active) {
    if (open_.active && open_.channel == channel) {
      open_.last_end = chunk_end;
      ++open_.chunks;
    } else {
      if (open_.active) {
        // Channel changed: close the previous burst.
        out.push_back({Protocol::kBluetooth, open_.start, open_.last_end,
                       std::min(1.0f, 0.4f + 0.1f * open_.chunks),
                       "bt-freq"});
        last_channel_ = open_.channel;
      }
      open_ = {true, start_sample, chunk_end, channel, 1};
    }
  } else if (open_.active) {
    out.push_back({Protocol::kBluetooth, open_.start, open_.last_end,
                   std::min(1.0f, 0.4f + 0.1f * open_.chunks), "bt-freq"});
    last_channel_ = open_.channel;
    open_ = {};
  }
  return out;
}

std::vector<Detection> BluetoothFreqDetector::Flush() {
  std::vector<Detection> out;
  if (open_.active) {
    out.push_back({Protocol::kBluetooth, open_.start, open_.last_end,
                   std::min(1.0f, 0.4f + 0.1f * open_.chunks), "bt-freq"});
    last_channel_ = open_.channel;
    open_ = {};
  }
  return out;
}

}  // namespace rfdump::core
