#include "rfdump/core/scoring.hpp"

#include <algorithm>

namespace rfdump::core {
namespace {

// Overlap of [a1, a2) with a set of disjoint sorted intervals.
std::int64_t OverlapWith(
    std::int64_t a1, std::int64_t a2,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& intervals) {
  std::int64_t overlap = 0;
  // Binary search to the first interval that could intersect.
  auto it = std::lower_bound(
      intervals.begin(), intervals.end(), a1,
      [](const auto& iv, std::int64_t v) { return iv.second <= v; });
  for (; it != intervals.end() && it->first < a2; ++it) {
    overlap += std::max<std::int64_t>(
        0, std::min(a2, it->second) - std::max(a1, it->first));
  }
  return overlap;
}

std::vector<std::pair<std::int64_t, std::int64_t>> MergeIntervals(
    std::vector<std::pair<std::int64_t, std::int64_t>> spans) {
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  for (const auto& s : spans) {
    if (s.second <= s.first) continue;
    if (!out.empty() && s.first <= out.back().second) {
      out.back().second = std::max(out.back().second, s.second);
    } else {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

std::vector<emu::TruthRecord> VisibleTruthWithin(
    const std::vector<emu::TruthRecord>& truth, Protocol protocol,
    std::int64_t total_samples) {
  std::vector<emu::TruthRecord> out;
  for (const auto& r : truth) {
    if (r.visible && r.protocol == protocol &&
        r.end_sample <= total_samples) {
      out.push_back(r);
    }
  }
  return out;
}

AccuracyScore ScoreDetections(const std::vector<emu::TruthRecord>& truth,
                              Protocol protocol,
                              const std::vector<Detection>& detections,
                              std::int64_t total_samples,
                              const std::string& detector_filter,
                              double min_overlap) {
  AccuracyScore score;
  // Collect relevant detection intervals.
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  for (const auto& d : detections) {
    if (d.protocol != protocol) continue;
    if (!detector_filter.empty() && detector_filter != d.detector) continue;
    spans.emplace_back(std::max<std::int64_t>(d.start_sample, 0),
                       std::min<std::int64_t>(d.end_sample, total_samples));
  }
  const auto merged = MergeIntervals(std::move(spans));

  // Miss rate over visible truth packets of this protocol.
  const auto packets = VisibleTruthWithin(truth, protocol, total_samples);
  score.truth_packets = packets.size();
  for (const auto& p : packets) {
    const std::int64_t len = p.end_sample - p.start_sample;
    const std::int64_t got = OverlapWith(p.start_sample, p.end_sample, merged);
    if (static_cast<double>(got) <
        min_overlap * static_cast<double>(len)) {
      ++score.missed;
    }
  }

  // False positives: detected samples covering no visible transmission of
  // any protocol.
  std::vector<std::pair<std::int64_t, std::int64_t>> any_truth;
  for (const auto& r : truth) {
    if (!r.visible) continue;
    any_truth.emplace_back(std::max<std::int64_t>(r.start_sample, 0),
                           std::min(r.end_sample, total_samples));
  }
  const auto truth_merged = MergeIntervals(std::move(any_truth));
  for (const auto& [a, b] : merged) {
    score.forwarded_samples += b - a;
    score.false_positive_samples += (b - a) - OverlapWith(a, b, truth_merged);
  }
  return score;
}

}  // namespace rfdump::core
