#include "rfdump/core/collision.hpp"

#include <algorithm>
#include <cmath>

#include "rfdump/dsp/energy.hpp"

namespace rfdump::core {

CollisionDetector::CollisionDetector() : CollisionDetector(Config{}) {}

CollisionDetector::CollisionDetector(Config config) : config_(config) {}

CollisionInfo CollisionDetector::Analyze(const Peak& peak,
                                         dsp::const_sample_span samples) const {
  CollisionInfo info;
  const std::size_t w = config_.window;
  if (samples.size() < 2 * w + config_.persistence) {
    info.segments.push_back(peak);
    return info;
  }

  // Windowed power profile (one value per window, non-overlapping).
  std::vector<double> profile;
  profile.reserve(samples.size() / w);
  for (std::size_t at = 0; at + w <= samples.size(); at += w) {
    profile.push_back(dsp::MeanPower(samples.subspan(at, w)));
  }

  // Scan for sustained steps: compare the *medians* of the blocks before and
  // after each candidate boundary (persistence/window blocks each side).
  // Medians reject short blips that would drag a mean across the threshold.
  const std::size_t persist_blocks =
      std::max<std::size_t>(config_.persistence / w, 2);
  const auto median_of = [&](std::size_t first, std::size_t count) {
    std::vector<double> v(profile.begin() + static_cast<std::ptrdiff_t>(first),
                          profile.begin() +
                              static_cast<std::ptrdiff_t>(first + count));
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(count / 2),
                     v.end());
    return v[count / 2];
  };
  std::vector<std::size_t> step_blocks;
  std::size_t last_step = 0;
  for (std::size_t b = persist_blocks; b + persist_blocks < profile.size();
       ++b) {
    const double before = median_of(b - persist_blocks, persist_blocks);
    const double after = median_of(b, persist_blocks);
    const double ratio = (after > before) ? after / std::max(before, 1e-30)
                                          : before / std::max(after, 1e-30);
    // The new level must persist through the END of the after-window too —
    // a short blip raises the nearby blocks but not the final one.
    const double tail = profile[b + persist_blocks - 1];
    const double tail_ratio = (after > before)
                                  ? tail / std::max(before, 1e-30)
                                  : before / std::max(tail, 1e-30);
    if (ratio >= config_.step_ratio &&
        tail_ratio >= 0.75 * config_.step_ratio) {
      // Debounce: one boundary per persistence span.
      if (step_blocks.empty() || b - last_step >= persist_blocks) {
        step_blocks.push_back(b);
        last_step = b;
      }
    }
  }

  if (step_blocks.empty()) {
    info.segments.push_back(peak);
    return info;
  }
  info.collided = true;
  // Build segments between boundaries.
  std::vector<std::int64_t> cuts;
  cuts.push_back(peak.start_sample);
  for (std::size_t b : step_blocks) {
    const std::int64_t cut =
        peak.start_sample + static_cast<std::int64_t>(b * w);
    info.boundaries.push_back(cut);
    cuts.push_back(cut);
  }
  cuts.push_back(peak.end_sample);
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    if (cuts[i + 1] - cuts[i] <
        static_cast<std::int64_t>(config_.min_segment)) {
      continue;  // too short to classify on its own
    }
    Peak seg;
    seg.start_sample = cuts[i];
    seg.end_sample = cuts[i + 1];
    const std::size_t off =
        static_cast<std::size_t>(cuts[i] - peak.start_sample);
    const std::size_t len = static_cast<std::size_t>(cuts[i + 1] - cuts[i]);
    if (off + len <= samples.size()) {
      seg.mean_power = static_cast<float>(
          dsp::MeanPower(samples.subspan(off, len)));
      seg.peak_power = seg.mean_power;
    }
    info.segments.push_back(seg);
  }
  if (info.segments.empty()) info.segments.push_back(peak);
  return info;
}

std::vector<Detection> CollisionDetector::OnPeak(
    const Peak& peak, dsp::const_sample_span samples) const {
  std::vector<Detection> out;
  const auto info = Analyze(peak, samples);
  if (info.collided) {
    out.push_back({Protocol::kUnknown, peak.start_sample, peak.end_sample,
                   0.7f, "collision"});
  }
  return out;
}

}  // namespace rfdump::core
