#include "rfdump/core/detections.hpp"

#include <algorithm>

namespace rfdump::core {

std::vector<Detection> MergeDetections(std::vector<Detection> detections,
                                       std::int64_t slack,
                                       std::int64_t limit) {
  std::vector<Detection> merged;
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              if (a.protocol != b.protocol) return a.protocol < b.protocol;
              return a.start_sample < b.start_sample;
            });
  for (auto& d : detections) {
    d.start_sample = std::clamp<std::int64_t>(d.start_sample, 0, limit);
    d.end_sample = std::clamp<std::int64_t>(d.end_sample, 0, limit);
    if (d.end_sample <= d.start_sample) continue;
    if (!merged.empty() && merged.back().protocol == d.protocol &&
        d.start_sample <= merged.back().end_sample + slack) {
      merged.back().end_sample =
          std::max(merged.back().end_sample, d.end_sample);
      merged.back().confidence =
          std::max(merged.back().confidence, d.confidence);
    } else {
      merged.push_back(d);
    }
  }
  return merged;
}

std::int64_t CoverageSamples(const std::vector<Detection>& merged) {
  std::int64_t total = 0;
  for (const auto& d : merged) total += d.end_sample - d.start_sample;
  return total;
}

}  // namespace rfdump::core
