#include "rfdump/core/timing_detectors.hpp"

#include <algorithm>
#include <cmath>

#include "rfdump/obs/metrics.hpp"

namespace rfdump::core {
namespace {

/// Peaks-examined / tags-emitted counter pair for one detector, resolved
/// once per detector (function-local static at the call site).
struct DetectorMetrics {
  explicit DetectorMetrics(const char* detector)
      : examined(obs::LabeledCounter("rfdump_detect_peaks_examined_total",
                                     "detector", detector)),
        tags(obs::LabeledCounter("rfdump_detect_tags_total", "detector",
                                 detector)) {}
  obs::Counter& examined;
  obs::Counter& tags;
};

std::int64_t UsToSamples(double us) {
  return static_cast<std::int64_t>(us * 1e-6 * dsp::kSampleRateHz + 0.5);
}

}  // namespace

// ------------------------------------------------------------------- 802.11

WifiTimingDetector::WifiTimingDetector() : WifiTimingDetector(Config{}) {}

WifiTimingDetector::WifiTimingDetector(Config config) : config_(config) {}

std::vector<Detection> WifiTimingDetector::OnPeaks(
    std::span<const Peak> peaks) {
  static DetectorMetrics metrics("80211-timing");
  metrics.examined.Inc(peaks.size());
  std::vector<Detection> out;
  const std::int64_t tol = UsToSamples(config_.tolerance_us);
  for (const Peak& peak : peaks) {
    if (have_prev_) {
      const std::int64_t gap = peak.start_sample - prev_.end_sample;
      bool match = false;
      float confidence = 0.0f;
      const char* which = "";
      // SIFS: data -> ACK.
      if (std::llabs(gap - UsToSamples(config_.sifs_us)) <= tol) {
        match = true;
        confidence = 0.9f;
        which = "80211-sifs-timing";
      } else {
        // DIFS + k x SlotTime.
        const std::int64_t difs = UsToSamples(config_.difs_us);
        const std::int64_t slot = UsToSamples(config_.slot_us);
        if (gap >= difs - tol) {
          const std::int64_t over = gap - difs;
          const std::int64_t k = (over + slot / 2) / slot;
          if (k >= 0 && k <= config_.max_backoff &&
              std::llabs(over - k * slot) <= tol) {
            match = true;
            confidence = 0.6f;  // coarser signature than SIFS
            which = "80211-difs-timing";
          }
        }
      }
      if (match) {
        // Both peaks of the pair are tagged; duplicates from chained pairs
        // (DATA-ACK-DATA) are collapsed by MergeDetections downstream.
        out.push_back({Protocol::kWifi80211b, prev_.start_sample,
                       prev_.end_sample, confidence, which});
        out.push_back({Protocol::kWifi80211b, peak.start_sample,
                       peak.end_sample, confidence, which});
      }
    }
    prev_ = peak;
    have_prev_ = true;
  }
  metrics.tags.Inc(out.size());
  return out;
}

// ---------------------------------------------------------------- Bluetooth

BluetoothTimingDetector::BluetoothTimingDetector()
    : BluetoothTimingDetector(Config{}) {}

BluetoothTimingDetector::BluetoothTimingDetector(Config config)
    : config_(config) {}

bool BluetoothTimingDetector::SlotAligned(std::int64_t delta) const {
  const std::int64_t slot = UsToSamples(config_.slot_us);
  const std::int64_t tol = UsToSamples(config_.tolerance_us);
  if (delta <= 0) return false;
  const std::int64_t m = (delta + slot / 2) / slot;
  if (m < 1 || m > config_.max_slots) return false;
  return std::llabs(delta - m * slot) <= tol;
}

std::vector<Detection> BluetoothTimingDetector::OnPeaks(
    std::span<const Peak> peaks) {
  static DetectorMetrics metrics("bt-slot-timing");
  metrics.examined.Inc(peaks.size());
  std::vector<Detection> out;
  for (const Peak& peak : peaks) {
    const double len_us = dsp::SamplesToMicros(peak.length());
    const bool plausible_burst =
        len_us >= config_.min_burst_us && len_us <= config_.max_burst_us;
    bool matched = false;
    if (plausible_burst) {
      // 1. Session cache.
      for (auto& entry : cache_) {
        if (SlotAligned(peak.start_sample - entry.anchor_start)) {
          ++cache_hits_;
          static obs::Counter& c_cache_hits = obs::Registry::Default()
              .GetCounter("rfdump_detect_bt_cache_hits_total");
          c_cache_hits.Inc();
          ++entry.hits;
          entry.anchor_start = peak.start_sample;
          matched = true;
          const float confidence =
              std::min(0.95f, 0.5f + 0.1f * static_cast<float>(entry.hits));
          out.push_back({Protocol::kBluetooth, peak.start_sample,
                         peak.end_sample, confidence, "bt-slot-timing"});
          break;
        }
      }
      // 2. Full history search.
      if (!matched) {
        ++history_searches_;
        static obs::Counter& c_history = obs::Registry::Default().GetCounter(
            "rfdump_detect_bt_history_searches_total");
        c_history.Inc();
        for (auto it = recent_starts_.rbegin(); it != recent_starts_.rend();
             ++it) {
          if (SlotAligned(peak.start_sample - *it)) {
            matched = true;
            out.push_back({Protocol::kBluetooth, peak.start_sample,
                           peak.end_sample, 0.5f, "bt-slot-timing"});
            // Install as a new session (evict the entry with fewest hits).
            if (cache_.size() < config_.cache_size) {
              cache_.push_back({peak.start_sample, 1});
            } else if (!cache_.empty()) {
              auto victim = std::min_element(
                  cache_.begin(), cache_.end(),
                  [](const CacheEntry& a, const CacheEntry& b) {
                    return a.hits < b.hits;
                  });
              *victim = {peak.start_sample, 1};
            }
            break;
          }
        }
      }
    }
    recent_starts_.push_back(peak.start_sample);
    while (recent_starts_.size() > config_.history) {
      recent_starts_.pop_front();
    }
  }
  metrics.tags.Inc(out.size());
  return out;
}

// ---------------------------------------------------------------- microwave

MicrowaveTimingDetector::MicrowaveTimingDetector()
    : MicrowaveTimingDetector(Config{}) {}

MicrowaveTimingDetector::MicrowaveTimingDetector(Config config)
    : config_(config) {}

std::vector<Detection> MicrowaveTimingDetector::OnPeaks(
    std::span<const Peak> peaks) {
  static DetectorMetrics metrics("mw-ac-timing");
  metrics.examined.Inc(peaks.size());
  std::vector<Detection> out;
  const std::int64_t period = UsToSamples(config_.period_us);
  const std::int64_t tol = UsToSamples(config_.tolerance_us);
  for (const Peak& peak : peaks) {
    const double len_us = dsp::SamplesToMicros(peak.length());
    if (len_us < config_.min_burst_us) {
      // Short bursts break a run but are not microwave evidence either way.
      continue;
    }
    if (have_prev_) {
      const std::int64_t delta = peak.start_sample - prev_.start_sample;
      // Constant emitted power: successive bursts have similar mean power.
      const float ratio =
          (prev_.mean_power > 0.0f)
              ? std::abs(peak.mean_power - prev_.mean_power) /
                    prev_.mean_power
              : 1.0f;
      if (std::llabs(delta - period) <= tol &&
          ratio <= config_.power_ratio_tolerance) {
        ++run_;
        const float confidence =
            std::min(0.95f, 0.5f + 0.15f * static_cast<float>(run_));
        if (run_ == 1) {
          out.push_back({Protocol::kMicrowave, prev_.start_sample,
                         prev_.end_sample, confidence, "mw-ac-timing"});
        }
        out.push_back({Protocol::kMicrowave, peak.start_sample,
                       peak.end_sample, confidence, "mw-ac-timing"});
      } else {
        run_ = 0;
      }
    }
    prev_ = peak;
    have_prev_ = true;
  }
  metrics.tags.Inc(out.size());
  return out;
}

// ------------------------------------------------------------------- ZigBee

ZigbeeTimingDetector::ZigbeeTimingDetector()
    : ZigbeeTimingDetector(Config{}) {}

ZigbeeTimingDetector::ZigbeeTimingDetector(Config config) : config_(config) {}

std::vector<Detection> ZigbeeTimingDetector::OnPeaks(
    std::span<const Peak> peaks) {
  static DetectorMetrics metrics("zigbee-ifs-timing");
  metrics.examined.Inc(peaks.size());
  std::vector<Detection> out;
  const std::int64_t tol = UsToSamples(config_.tolerance_us);
  for (const Peak& peak : peaks) {
    if (have_prev_) {
      const std::int64_t gap = peak.start_sample - prev_.end_sample;
      bool match = false;
      if (std::llabs(gap - UsToSamples(config_.sifs_us)) <= tol ||
          std::llabs(gap - UsToSamples(config_.lifs_us)) <= tol) {
        match = true;
      } else {
        const std::int64_t slot = UsToSamples(config_.slot_us);
        const std::int64_t k = (gap + slot / 2) / slot;
        if (k >= 1 && k <= config_.max_slots &&
            std::llabs(gap - k * slot) <= tol) {
          match = true;
        }
      }
      if (match) {
        out.push_back({Protocol::kZigbee, prev_.start_sample,
                       prev_.end_sample, 0.5f, "zigbee-ifs-timing"});
        out.push_back({Protocol::kZigbee, peak.start_sample, peak.end_sample,
                       0.5f, "zigbee-ifs-timing"});
      }
    }
    prev_ = peak;
    have_prev_ = true;
  }
  metrics.tags.Inc(out.size());
  return out;
}

}  // namespace rfdump::core
