#include "rfdump/core/phase_detectors.hpp"

#include "rfdump/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "rfdump/dsp/barker.hpp"
#include "rfdump/dsp/phase.hpp"
#include "rfdump/dsp/simd.hpp"
#include "rfdump/phybt/hopping.hpp"

namespace rfdump::core {
namespace {

// Boxcar-smooths x into out (length x.size() - smooth + 1).
dsp::SampleVec Smooth(dsp::const_sample_span x, std::size_t smooth) {
  if (smooth <= 1) return dsp::SampleVec(x.begin(), x.end());
  if (x.size() < smooth) return {};
  dsp::SampleVec out(x.size() - smooth + 1);
  dsp::cfloat acc{0.0f, 0.0f};
  for (std::size_t i = 0; i < smooth; ++i) acc += x[i];
  out[0] = acc;
  for (std::size_t i = smooth; i < x.size(); ++i) {
    acc += x[i] - x[i - smooth];
    out[i - smooth + 1] = acc;
  }
  return out;
}

}  // namespace

PhaseInfo ComputePhaseInfo(dsp::const_sample_span x, std::size_t max_samples,
                           std::size_t smooth) {
  PhaseInfo info;
  const std::size_t n = std::min(x.size(), max_samples);
  if (n < 3 + smooth) return info;
  // Coarse frequency estimate via the complex average of lag-1 products
  // (immune to phase wrapping), so the burst can be translated near DC before
  // smoothing — a boxcar applied directly to a band-edge channel would
  // otherwise attenuate the signal below the noise.
  const dsp::cfloat zsum = dsp::simd::Active().conj_mul_sum(x.data(), n);
  const float coarse = std::arg(zsum);
  dsp::SampleVec derotated(n);
  {
    const dsp::cfloat step(std::cos(-coarse), std::sin(-coarse));
    dsp::cfloat rot{1.0f, 0.0f};
    for (std::size_t i = 0; i < n; ++i) {
      derotated[i] = x[i] * rot;
      rot *= step;
      // Cheap renormalization to stop drift.
      if ((i & 0x3FFu) == 0x3FFu) rot /= std::abs(rot);
    }
  }
  const auto smoothed = Smooth(derotated, smooth);
  if (smoothed.size() < 3) return info;
  const auto d1 = dsp::PhaseDiff(smoothed);
  double sum_d1 = 0.0, sum_abs_d2 = 0.0;
  std::size_t small = 0;
  for (float v : d1) sum_d1 += v;
  for (std::size_t i = 1; i < d1.size(); ++i) {
    const float d2 = dsp::WrapPhase(d1[i] - d1[i - 1]);
    sum_abs_d2 += std::abs(d2);
    if (std::abs(d2) < 0.25f) ++small;
  }
  info.mean_d1 = dsp::WrapPhase(
      coarse +
      static_cast<float>(sum_d1 / static_cast<double>(d1.size())));
  const std::size_t nd2 = d1.size() - 1;
  info.mean_abs_d2 =
      static_cast<float>(sum_abs_d2 / static_cast<double>(nd2));
  info.frac_small_d2 =
      static_cast<float>(static_cast<double>(small) /
                         static_cast<double>(nd2));
  info.samples_used = n;
  return info;
}

// --------------------------------------------------------------------- GFSK

GfskPhaseDetector::GfskPhaseDetector() : GfskPhaseDetector(Config{}) {}

GfskPhaseDetector::GfskPhaseDetector(Config config) : config_(config) {}

std::optional<Detection> GfskPhaseDetector::OnPeak(
    const Peak& peak, dsp::const_sample_span samples) {
  static obs::Counter& c_examined = obs::LabeledCounter(
      "rfdump_detect_peaks_examined_total", "detector", "gfsk-phase");
  static obs::Counter& c_tags =
      obs::LabeledCounter("rfdump_detect_tags_total", "detector", "gfsk-phase");
  c_examined.Inc();
  if (dsp::SamplesToMicros(peak.length()) > config_.max_burst_us) {
    return std::nullopt;
  }
  const PhaseInfo info =
      ComputePhaseInfo(samples, config_.max_samples, config_.smooth);
  if (info.samples_used < 64) return std::nullopt;
  if (info.frac_small_d2 < config_.min_frac_small_d2 ||
      info.mean_abs_d2 > config_.max_mean_abs_d2) {
    return std::nullopt;
  }
  // First derivative -> frequency offset -> visible channel index.
  const double freq =
      static_cast<double>(info.mean_d1) * dsp::kSampleRateHz /
      (2.0 * std::numbers::pi);
  const int channel = static_cast<int>(
      std::lround((freq + 3.5e6) / phybt::kChannelWidthHz));
  if (channel < 0 || channel >= phybt::kVisibleChannels) return std::nullopt;
  last_channel_ = channel;
  const float confidence = std::min(1.0f, info.frac_small_d2);
  c_tags.Inc();
  return Detection{Protocol::kBluetooth, peak.start_sample, peak.end_sample,
                   confidence, "gfsk-phase"};
}

// -------------------------------------------------------------------- DBPSK

std::array<float, 8> BarkerPhaseFlipPattern() {
  // Sample n of a symbol (at 8 Msps) lands in chip floor(n * 11 / 8); the
  // transition weight between samples n and n+1 is +1 if the Barker chips
  // agree, -1 if they flip. The transition into the next symbol (n = 7 -> 8)
  // is data-dependent: weight 0.
  std::array<float, 8> pattern{};
  for (std::size_t n = 0; n < 8; ++n) {
    const std::size_t chip_a = n * 11 / 8;
    const std::size_t chip_b = (n + 1) * 11 / 8;
    if (chip_b >= 11) {
      pattern[n] = 0.0f;  // crosses the symbol boundary
      continue;
    }
    pattern[n] = (dsp::kBarker11[chip_a] == dsp::kBarker11[chip_b]) ? 1.0f
                                                                    : -1.0f;
  }
  return pattern;
}

DbpskPhaseDetector::DbpskPhaseDetector() : DbpskPhaseDetector(Config{}) {}

DbpskPhaseDetector::DbpskPhaseDetector(Config config) : config_(config) {}

float DbpskPhaseDetector::WindowScore(dsp::const_sample_span window) const {
  static const auto pattern = BarkerPhaseFlipPattern();
  if (window.size() < 2) return 0.0f;
  // z[n] = x[n+1] conj(x[n]); with DSSS chipping, arg(z) flips by ~pi at chip
  // boundaries. Correlate against the precomputed pattern at each of the 8
  // possible symbol alignments and take the best.
  std::vector<dsp::cfloat> z(window.size() - 1);
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < window.size(); ++i) {
    z[i] = window[i + 1] * std::conj(window[i]);
    total += std::abs(z[i]);
  }
  if (total <= 0.0) return 0.0f;
  float best = 0.0f;
  for (std::size_t a = 0; a < 8; ++a) {
    dsp::cfloat s{0.0f, 0.0f};
    for (std::size_t i = 0; i < z.size(); ++i) {
      s += pattern[(i + a) % 8] * z[i];
    }
    best = std::max(best, std::abs(s));
  }
  return static_cast<float>(best / total);
}

std::optional<Detection> DbpskPhaseDetector::OnPeak(
    const Peak& peak, dsp::const_sample_span samples) {
  static obs::Counter& c_examined = obs::LabeledCounter(
      "rfdump_detect_peaks_examined_total", "detector", "dbpsk-phase");
  static obs::Counter& c_tags = obs::LabeledCounter(
      "rfdump_detect_tags_total", "detector", "dbpsk-phase");
  c_examined.Inc();
  const std::size_t win = config_.window_symbols * 8;
  if (samples.size() < 3 * 8) {
    last_score_ = 0.0f;
    return std::nullopt;
  }
  // First window decides whether this burst is Barker-chipped at all.
  last_score_ = WindowScore(samples.first(std::min(win, samples.size())));
  if (last_score_ < config_.threshold) return std::nullopt;
  // Prefix scan: extend while successive windows keep matching. A burst that
  // still matches after max_scan_symbols is Barker end-to-end (1/2 Mbps) and
  // is tagged whole without examining the remainder.
  const std::size_t cap =
      std::min(samples.size(), config_.max_scan_symbols * 8);
  const std::size_t stride =
      win * std::max<std::size_t>(config_.scan_stride_windows, 1);
  std::size_t matched_end = std::min(win, samples.size());
  while (matched_end < cap) {
    const std::size_t probe =
        std::min(matched_end + stride - win, samples.size());
    const std::size_t len = std::min(win, samples.size() - probe);
    if (len < 2 * 8) {
      matched_end = samples.size();
      break;
    }
    if (WindowScore(samples.subspan(probe, len)) < config_.threshold) {
      break;
    }
    matched_end = probe + len;
  }
  const std::int64_t end =
      (matched_end >= cap) ? peak.end_sample
                           : peak.start_sample +
                                 static_cast<std::int64_t>(matched_end);
  c_tags.Inc();
  return Detection{Protocol::kWifi80211b, peak.start_sample, end,
                   std::min(1.0f, last_score_), "dbpsk-phase"};
}

int ClassifyPskOrder(dsp::const_sample_span x, std::size_t sps,
                     std::size_t max_symbols) {
  if (sps == 0) return 0;
  const std::size_t n = std::min(x.size(), sps * max_symbols);
  if (n < 4 * sps) return 0;
  // Histogram of per-symbol phase changes over 8 bins.
  std::vector<float> changes;
  changes.reserve(n / sps);
  // Rotate by half a bin so the canonical PSK phase changes (multiples of
  // pi/2) land at bin centers instead of straddling bin edges.
  const float half_bin = dsp::kPi / 8.0f;
  for (std::size_t i = sps; i < n; i += sps) {
    changes.push_back(
        dsp::WrapPhase(std::arg(x[i] * std::conj(x[i - sps])) + half_bin));
  }
  const auto hist = dsp::PhaseHistogram(changes, 8);
  // Count bins holding a meaningful share.
  const std::size_t total = changes.size();
  int filled = 0;
  for (auto c : hist) {
    if (static_cast<double>(c) > 0.08 * static_cast<double>(total)) ++filled;
  }
  if (filled <= 2) return 2;
  if (filled <= 4) return 4;
  return 0;
}

}  // namespace rfdump::core
