#include "rfdump/core/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "rfdump/dsp/db.hpp"
#include "rfdump/dsp/simd.hpp"
#include "rfdump/obs/metrics.hpp"

namespace rfdump::core {
namespace {

// Per-chunk metadata extraction is the hottest periodic path in the system
// (one call per 25 us of ether); its counters are single relaxed increments
// against statically-resolved registry entries.
struct ChunkMetrics {
  obs::Counter& chunks =
      obs::Registry::Default().GetCounter("rfdump_peaks_chunks_total");
  obs::Counter& gated =
      obs::Registry::Default().GetCounter("rfdump_peaks_chunks_gated_total");
  obs::Counter& completed =
      obs::Registry::Default().GetCounter("rfdump_peaks_completed_total");
  static ChunkMetrics& Get() {
    static ChunkMetrics m;
    return m;
  }
};

}  // namespace

PeakDetector::PeakDetector() : PeakDetector(Config{}) {}

PeakDetector::PeakDetector(Config config)
    : config_(config), avg_(config.averaging_window) {}

double PeakDetector::GatePower() const {
  return config_.noise_floor_power * dsp::DbToPower(config_.gate_db);
}

ChunkMeta PeakDetector::PushChunk(dsp::const_sample_span chunk,
                                  std::int64_t start_sample) {
  // Deinterleave the chunk's power once (SIMD power-plane kernel); every
  // per-sample consumer below reads the plane instead of recomputing |x|^2.
  plane_.resize(chunk.size());
  dsp::simd::Active().power_plane(chunk.data(), chunk.size(), plane_.data());
  return PushChunk(chunk, std::span<const float>(plane_), start_sample);
}

ChunkMeta PeakDetector::PushChunk(dsp::const_sample_span chunk,
                                  std::span<const float> power,
                                  std::int64_t start_sample) {
  ChunkMeta meta;
  meta.start_sample = start_sample;
  meta.n_samples = chunk.size();
  const std::uint64_t completed_before = completed_;
  ChunkMetrics::Get().chunks.Inc();

  // Cheap pre-check: average energy of the trailing window of the chunk. If
  // it is below the gate and no peak is currently open, the whole chunk can
  // be skipped without per-sample work. (The chunk being smaller than the
  // smallest packet of any protocol guarantees a packet cannot hide entirely
  // inside a gated-out chunk between two quiet windows — §4.3.)
  const std::size_t w = std::min(config_.averaging_window, chunk.size());
  double tail_power = 0.0;
  for (std::size_t i = chunk.size() - w; i < chunk.size(); ++i) {
    tail_power += power[i];
  }
  tail_power = (w > 0) ? tail_power / static_cast<double>(w) : 0.0;
  meta.window_power = static_cast<float>(tail_power);

  if (!in_peak_ && tail_power < GatePower()) {
    meta.gated_out = true;
    ChunkMetrics::Get().gated.Inc();
    // Keep the moving average primed with a cheap summary so a peak starting
    // at the very beginning of the next chunk is still anchored correctly.
    avg_.Reset();
    meta.peaks_completed = 0;
    return meta;
  }

  ProcessSamples(power, start_sample);
  meta.peaks_completed =
      static_cast<std::uint32_t>(completed_ - completed_before);
  return meta;
}

void PeakDetector::ProcessSamples(std::span<const float> power,
                                  std::int64_t start) {
  const double gate = GatePower();
  // Start-edge refinement threshold: at the 4 dB gate, noise samples exceed
  // half the gate ~28% of the time, which would pull starts spuriously early;
  // the full gate keeps that to ~8% while still catching the true rise.
  const double instant_gate =
      gate * std::max(config_.instant_factor, 1.0);
  for (std::size_t i = 0; i < power.size(); ++i) {
    const std::int64_t n = start + static_cast<std::int64_t>(i);
    const float p = power[i];
    const float avg = avg_.Push(p);
    if (!in_peak_) {
      if (avg_.Count() >= config_.averaging_window / 2 && avg > gate) {
        in_peak_ = true;
        // Refine the start: the averaging window lags the true rising edge;
        // pull the start back to the first sample in the window that exceeds
        // the instantaneous threshold (approximated by the window span).
        std::int64_t refined =
            n - static_cast<std::int64_t>(avg_.Count()) + 1;
        // Walk forward while below the instantaneous threshold.
        const std::int64_t window_start =
            std::max<std::int64_t>(refined, start);
        for (std::int64_t m = window_start; m <= n; ++m) {
          const float ip = power[static_cast<std::size_t>(m - start)];
          if (ip > instant_gate) {
            refined = m;
            break;
          }
        }
        open_peak_ = Peak{};
        open_peak_.start_sample = std::max<std::int64_t>(refined, 0);
        open_peak_.peak_power = avg;
        open_power_sum_ = 0.0;
        below_since_ = -1;
        last_strong_ = n;
      }
    } else {
      open_peak_.peak_power = std::max(open_peak_.peak_power, avg);
      // Track the true falling edge: the averaging window lags the signal by
      // up to its full length, so the peak end is refined to the last sample
      // whose instantaneous power is clearly signal, not noise.
      if (p > std::max(gate, 0.25 * open_peak_.peak_power)) {
        last_strong_ = n;
      }
      if (avg < gate) {
        if (below_since_ < 0) below_since_ = n;
        // End the peak once the average has stayed below the gate for a
        // merge-gap's worth of samples.
        if (n - below_since_ >=
            static_cast<std::int64_t>(config_.merge_gap_samples)) {
          ClosePeak(below_since_);
        }
      } else {
        below_since_ = -1;
      }
    }
    if (in_peak_) open_power_sum_ += p;
    last_sample_ = n;
  }
}

void PeakDetector::ClosePeak(std::int64_t end) {
  in_peak_ = false;
  if (last_strong_ >= 0) end = std::min(end, last_strong_ + 1);
  open_peak_.end_sample = std::max(end, open_peak_.start_sample + 1);
  const auto len = static_cast<double>(open_peak_.length());
  open_peak_.mean_power =
      static_cast<float>(open_power_sum_ / std::max(len, 1.0));
  history_.push_back(open_peak_);
  ++completed_;
  ChunkMetrics::Get().completed.Inc();
  while (history_.size() > config_.history_capacity) history_.pop_front();
  below_since_ = -1;
}

void PeakDetector::Flush() {
  if (in_peak_) {
    ClosePeak(below_since_ > 0 ? below_since_ : last_sample_ + 1);
  }
}

std::vector<Peak> PeakDetector::CompletedSince(std::uint64_t cursor) const {
  std::vector<Peak> out;
  if (cursor >= completed_) return out;
  const std::uint64_t want = completed_ - cursor;
  const std::uint64_t have = std::min<std::uint64_t>(want, history_.size());
  out.reserve(have);
  for (std::size_t i = history_.size() - have; i < history_.size(); ++i) {
    out.push_back(history_[i]);
  }
  return out;
}

}  // namespace rfdump::core
