#include "rfdump/core/fuzz_io.hpp"

#include <algorithm>

namespace rfdump::core {

std::vector<std::uint8_t> FuzzBytesToBits(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> bits(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) bits[i] = data[i] & 1u;
  return bits;
}

dsp::SampleVec FuzzBytesToSamples(std::span<const std::uint8_t> data) {
  const std::size_t n = std::min(data.size() / 2, kMaxFuzzSamples);
  dsp::SampleVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = dsp::cfloat(static_cast<float>(static_cast<std::int8_t>(data[2 * i])),
                       static_cast<float>(
                           static_cast<std::int8_t>(data[2 * i + 1]))) /
           64.0f;
  }
  return x;
}

void FuzzAppendSamples(std::vector<std::uint8_t>& out, dsp::const_sample_span x,
                       std::size_t max_samples) {
  const std::size_t n = std::min(x.size(), max_samples);
  out.reserve(out.size() + 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto q = [](float v) {
      return static_cast<std::uint8_t>(static_cast<std::int8_t>(
          std::clamp(v * 64.0f, -127.0f, 127.0f)));
    };
    out.push_back(q(x[i].real()));
    out.push_back(q(x[i].imag()));
  }
}

void FuzzMutateInput(std::vector<std::uint8_t>& data, util::Xoshiro256& rng) {
  if (data.empty()) data.push_back(0);
  switch (rng.UniformInt(0, 5)) {
    case 0: {  // flip one bit
      const auto i = rng.UniformInt(0, data.size() - 1);
      data[i] ^= static_cast<std::uint8_t>(1u << rng.UniformInt(0, 7));
      break;
    }
    case 1: {  // splat one byte
      data[rng.UniformInt(0, data.size() - 1)] =
          static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      break;
    }
    case 2: {  // truncate
      data.resize(1 + rng.UniformInt(0, data.size() - 1));
      break;
    }
    case 3: {  // duplicate a tail chunk
      const auto from = rng.UniformInt(0, data.size() - 1);
      const std::size_t n =
          std::min<std::size_t>(data.size() - from, rng.UniformInt(1, 64));
      data.insert(data.end(), data.begin() + static_cast<std::ptrdiff_t>(from),
                  data.begin() + static_cast<std::ptrdiff_t>(from + n));
      break;
    }
    case 4: {  // insert random bytes
      const auto at = rng.UniformInt(0, data.size());
      const std::size_t n = rng.UniformInt(1, 16);
      std::vector<std::uint8_t> chunk(n);
      for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
                  chunk.end());
      break;
    }
    default: {  // swap two chunks
      if (data.size() >= 4) {
        const auto half = data.size() / 2;
        const auto a = rng.UniformInt(0, half - 1);
        const auto b = half + rng.UniformInt(0, data.size() - half - 1);
        std::swap(data[a], data[b]);
      }
      break;
    }
  }
}

std::uint64_t FuzzFnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace rfdump::core
