#include "rfdump/core/protocol_registry.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace rfdump::core {

ProtocolRegistry& ProtocolRegistry::Instance() {
  // Function-local static: safely constructed on first use during the
  // static initialization of whichever bundle TU registers first.
  static ProtocolRegistry registry;
  return registry;
}

bool ProtocolRegistry::Register(ProtocolBundle bundle) {
  const auto id = static_cast<std::size_t>(bundle.protocol);
  if (bundle.protocol == Protocol::kUnknown || id >= kProtocolCount) {
    return false;
  }
  if (bundle.name == nullptr || bundle.name[0] == '\0' ||
      bundle.cli_name == nullptr || bundle.cli_name[0] == '\0') {
    return false;
  }
  for (const auto& b : bundles_) {
    if (b.protocol == bundle.protocol ||
        std::strcmp(b.name, bundle.name) == 0 ||
        std::strcmp(b.cli_name, bundle.cli_name) == 0) {
      return false;
    }
  }
  auto pos = std::lower_bound(
      bundles_.begin(), bundles_.end(), bundle.protocol,
      [](const ProtocolBundle& b, Protocol p) { return b.protocol < p; });
  bundles_.insert(pos, std::move(bundle));
  return true;
}

std::span<const ProtocolBundle> ProtocolRegistry::bundles() const {
  return bundles_;
}

const ProtocolBundle* ProtocolRegistry::Find(Protocol p) const {
  for (const auto& b : bundles_) {
    if (b.protocol == p) return &b;
  }
  return nullptr;
}

const ProtocolBundle* ProtocolRegistry::FindCli(
    std::string_view cli_name) const {
  for (const auto& b : bundles_) {
    if (cli_name == b.cli_name) return &b;
  }
  return nullptr;
}

std::uint32_t ProtocolRegistry::DefaultMask() const {
  std::uint32_t mask = 0;
  for (const auto& b : bundles_) {
    if (b.default_enabled) mask |= BundleBit(b.protocol);
  }
  return mask;
}

void ProtocolRegistry::CheckConsistency() const {
  // Register() already enforces unique, in-range ids and unique names; what
  // it cannot see is whether kProtocolCount still matches the final set of
  // registered bundles. Density in [1, kProtocolCount) catches both a bundle
  // added without bumping the constant and a stale constant after a removal.
  if (bundles_.size() != kProtocolCount - 1) {
    throw std::logic_error(
        "ProtocolRegistry: " + std::to_string(bundles_.size()) +
        " bundles registered but kProtocolCount = " +
        std::to_string(kProtocolCount) +
        " (expected one bundle per id in [1, kProtocolCount))");
  }
  for (std::size_t id = 1; id < kProtocolCount; ++id) {
    const auto* b = Find(static_cast<Protocol>(id));
    if (b == nullptr) {
      throw std::logic_error("ProtocolRegistry: no bundle for protocol id " +
                             std::to_string(id));
    }
    for (const auto& row : b->features) {
      if (row.protocol != b->protocol) {
        throw std::logic_error(std::string("ProtocolRegistry: bundle '") +
                               b->name +
                               "' has a feature row tagged with a different "
                               "protocol");
      }
    }
  }
}

std::uint32_t DefaultBundleMask() {
  return ProtocolRegistry::Instance().DefaultMask();
}

bool RegisterProtocolBundle(ProtocolBundle bundle) {
  return ProtocolRegistry::Instance().Register(std::move(bundle));
}

}  // namespace rfdump::core
