#include "rfdump/core/spectrogram.hpp"

#include <algorithm>
#include <cmath>

#include "rfdump/dsp/db.hpp"
#include "rfdump/dsp/windows.hpp"

namespace rfdump::core {

Spectrogram ComputeSpectrogram(dsp::const_sample_span x, std::size_t bins,
                               std::size_t target_rows) {
  Spectrogram gram;
  if (x.empty() || !dsp::IsPowerOfTwo(bins)) return gram;
  gram.bins = bins;
  const std::size_t samples_per_row =
      std::max<std::size_t>(x.size() / std::max<std::size_t>(target_rows, 1),
                            bins);
  gram.rows = x.size() / samples_per_row;
  gram.row_seconds =
      static_cast<double>(samples_per_row) / dsp::kSampleRateHz;
  gram.power_db.assign(gram.rows * bins, -120.0f);

  dsp::FftPlan plan(bins);
  const auto window = dsp::MakeWindow(dsp::WindowType::kHann, bins);
  for (std::size_t row = 0; row < gram.rows; ++row) {
    // Average several FFTs across the row for a stable estimate.
    std::vector<double> acc(bins, 0.0);
    const std::size_t row_start = row * samples_per_row;
    const std::size_t hops = std::max<std::size_t>(
        (samples_per_row - bins) / bins, 1);
    std::size_t count = 0;
    for (std::size_t h = 0; h < hops; ++h) {
      const std::size_t at = row_start + h * bins;
      if (at + bins > x.size()) break;
      const auto ps = plan.PowerSpectrum(x.subspan(at, bins), window);
      for (std::size_t k = 0; k < bins; ++k) acc[k] += ps[k];
      ++count;
    }
    if (count == 0) continue;
    for (std::size_t k = 0; k < bins; ++k) {
      // Reorder to DC-centred: display bin 0 = most negative frequency.
      const std::size_t fft_bin = (k + bins / 2) % bins;
      const double p = acc[fft_bin] / static_cast<double>(count);
      gram.power_db[row * bins + k] =
          static_cast<float>(dsp::PowerToDb(std::max(p, 1e-12)));
    }
  }
  return gram;
}

std::string RenderAscii(const Spectrogram& gram, float floor_db,
                        float ceil_db) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = 9;
  if (gram.rows == 0) return "(empty spectrogram)\n";
  if (std::isnan(floor_db) || std::isnan(ceil_db)) {
    // Auto-scale: floor at the 20th percentile, ceiling at the max.
    std::vector<float> sorted = gram.power_db;
    std::sort(sorted.begin(), sorted.end());
    if (std::isnan(floor_db)) floor_db = sorted[sorted.size() / 5];
    if (std::isnan(ceil_db)) ceil_db = sorted.back();
    if (ceil_db - floor_db < 6.0f) ceil_db = floor_db + 6.0f;
  }
  std::string out;
  out += "freq:  -4 MHz";
  for (std::size_t i = 13; i + 7 < gram.bins; ++i) out += ' ';
  out += "+4 MHz\n";
  char line[16];
  for (std::size_t row = 0; row < gram.rows; ++row) {
    std::snprintf(line, sizeof(line), "%7.1fms ",
                  1e3 * gram.row_seconds * static_cast<double>(row));
    out += line;
    for (std::size_t k = 0; k < gram.bins; ++k) {
      const float v = (gram.at(row, k) - floor_db) / (ceil_db - floor_db);
      const int level = std::clamp(static_cast<int>(v * kLevels), 0, kLevels);
      out += kRamp[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace rfdump::core
