#include "rfdump/dsp/windows.hpp"

#include <cmath>
#include <numbers>

namespace rfdump::dsp {

double BesselI0(double x) {
  // Power series: I0(x) = sum_k ((x/2)^k / k!)^2. Converges quickly for the
  // argument ranges used in window design (|x| < ~30).
  double sum = 1.0;
  double term = 1.0;
  const double half_x = x / 2.0;
  for (int k = 1; k < 64; ++k) {
    term *= half_x / k;
    const double contribution = term * term;
    sum += contribution;
    if (contribution < 1e-18 * sum) break;
  }
  return sum;
}

std::vector<float> MakeWindow(WindowType type, std::size_t n,
                              double kaiser_beta) {
  std::vector<float> w(n, 1.0f);
  if (n <= 1) return w;
  const double pi = std::numbers::pi;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;  // [0, 1]
    double v = 1.0;
    switch (type) {
      case WindowType::kRectangular:
        v = 1.0;
        break;
      case WindowType::kHann:
        v = 0.5 - 0.5 * std::cos(2.0 * pi * x);
        break;
      case WindowType::kHamming:
        v = 0.54 - 0.46 * std::cos(2.0 * pi * x);
        break;
      case WindowType::kBlackman:
        v = 0.42 - 0.5 * std::cos(2.0 * pi * x) +
            0.08 * std::cos(4.0 * pi * x);
        break;
      case WindowType::kBlackmanHarris:
        v = 0.35875 - 0.48829 * std::cos(2.0 * pi * x) +
            0.14128 * std::cos(4.0 * pi * x) -
            0.01168 * std::cos(6.0 * pi * x);
        break;
      case WindowType::kKaiser: {
        const double t = 2.0 * x - 1.0;  // [-1, 1]
        v = BesselI0(kaiser_beta * std::sqrt(1.0 - t * t)) /
            BesselI0(kaiser_beta);
        break;
      }
    }
    w[i] = static_cast<float>(v);
  }
  return w;
}

}  // namespace rfdump::dsp
