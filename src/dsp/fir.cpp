#include "rfdump/dsp/fir.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "rfdump/dsp/simd.hpp"

namespace rfdump::dsp {

FirFilter::FirFilter(std::vector<float> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter needs >= 1 tap");
  history_.assign(taps_.size() - 1, cfloat{0.0f, 0.0f});
}

void FirFilter::Reset() {
  std::fill(history_.begin(), history_.end(), cfloat{0.0f, 0.0f});
}

void FirFilter::Process(const_sample_span input, SampleVec& out) {
  const std::size_t nt = taps_.size();
  const std::size_t hist = nt - 1;
  // Build a contiguous [history | input] buffer for branch-free convolution.
  // work_ is a member so repeated chunked calls reuse its capacity instead of
  // allocating per chunk.
  work_.clear();
  work_.reserve(hist + input.size());
  work_.insert(work_.end(), history_.begin(), history_.end());
  work_.insert(work_.end(), input.begin(), input.end());

  const std::size_t start = out.size();
  out.resize(start + input.size());
  // y[n] = sum_k taps[k] * x[n - k]; x index in work_ is n + hist - k.
  simd::Active().fir_complex(work_.data(), input.size(), taps_.data(), nt,
                             out.data() + start);
  // Save the last `hist` input samples for the next call.
  if (hist > 0) {
    if (input.size() >= hist) {
      std::copy(input.end() - hist, input.end(), history_.begin());
    } else {
      std::move(history_.begin() + input.size(), history_.end(),
                history_.begin());
      std::copy(input.begin(), input.end(), history_.end() - input.size());
    }
  }
}

SampleVec FirFilter::Filtered(const_sample_span input) {
  SampleVec out;
  Process(input, out);
  return out;
}

std::vector<float> DesignLowPass(double cutoff_hz, double sample_rate,
                                 std::size_t num_taps, WindowType window) {
  if (num_taps == 0) throw std::invalid_argument("num_taps must be >= 1");
  const double fc = cutoff_hz / sample_rate;  // normalized cutoff, cycles/sample
  const auto win = MakeWindow(window, num_taps);
  std::vector<float> taps(num_taps);
  const double mid = (static_cast<double>(num_taps) - 1.0) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double x = 2.0 * std::numbers::pi * fc * t;
    const double sinc = (std::abs(t) < 1e-12) ? 2.0 * fc
                                              : std::sin(x) / (std::numbers::pi * t);
    taps[i] = static_cast<float>(sinc) * win[i];
    sum += taps[i];
  }
  // Normalize to unit DC gain.
  for (auto& t : taps) t = static_cast<float>(t / sum);
  return taps;
}

std::vector<float> DesignGaussian(double bt, std::size_t sps,
                                  std::size_t span_symbols) {
  const std::size_t n = sps * span_symbols + 1;
  std::vector<float> taps(n);
  // h(t) = sqrt(2*pi/ln2) * B * exp(-2*pi^2*B^2*t^2 / ln2), t in symbols,
  // B = bt (bandwidth normalized to symbol rate).
  const double ln2 = std::numbers::ln2;
  const double mid = (static_cast<double>(n) - 1.0) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) - mid) / static_cast<double>(sps);
    const double a = std::sqrt(2.0 * std::numbers::pi / ln2) * bt;
    const double v = a * std::exp(-2.0 * std::numbers::pi * std::numbers::pi *
                                  bt * bt * t * t / ln2);
    taps[i] = static_cast<float>(v);
    sum += v;
  }
  for (auto& t : taps) t = static_cast<float>(t / sum);
  return taps;
}

std::vector<float> DesignRootRaisedCosine(double beta, std::size_t sps,
                                          std::size_t span_symbols) {
  const std::size_t n = sps * span_symbols + 1;
  std::vector<float> taps(n);
  const double mid = (static_cast<double>(n) - 1.0) / 2.0;
  const double pi = std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) - mid) / static_cast<double>(sps);
    double v;
    if (std::abs(t) < 1e-9) {
      v = 1.0 + beta * (4.0 / pi - 1.0);
    } else if (beta > 0.0 &&
               std::abs(std::abs(t) - 1.0 / (4.0 * beta)) < 1e-9) {
      v = beta / std::sqrt(2.0) *
          ((1.0 + 2.0 / pi) * std::sin(pi / (4.0 * beta)) +
           (1.0 - 2.0 / pi) * std::cos(pi / (4.0 * beta)));
    } else {
      const double num = std::sin(pi * t * (1.0 - beta)) +
                         4.0 * beta * t * std::cos(pi * t * (1.0 + beta));
      const double den = pi * t * (1.0 - std::pow(4.0 * beta * t, 2.0));
      v = num / den;
    }
    taps[i] = static_cast<float>(v);
  }
  // Normalize to unit energy.
  double energy = 0.0;
  for (float t : taps) energy += static_cast<double>(t) * t;
  const double scale = 1.0 / std::sqrt(energy);
  for (auto& t : taps) t = static_cast<float>(t * scale);
  return taps;
}

}  // namespace rfdump::dsp
