// SSE2 tier of the dsp::simd kernel table. Baseline x86-64: no extra
// compile flags (and therefore no possibility of FMA contraction). Emulates
// the canonical 4-double / 8-float virtual-lane reduction models with
// register pairs; all per-element math instantiates the shared traits
// templates so the FP operation sequence matches the scalar tier exactly.

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include <cstddef>
#include <cstdint>

#include "simd_common.hpp"

namespace rfdump::dsp::simd::detail {
namespace {

struct SseTraits {
  using VF = __m128;
  static constexpr std::size_t kWidth = 4;

  static VF Set1(float v) { return _mm_set1_ps(v); }
  static VF Add(VF a, VF b) { return _mm_add_ps(a, b); }
  static VF Sub(VF a, VF b) { return _mm_sub_ps(a, b); }
  static VF Mul(VF a, VF b) { return _mm_mul_ps(a, b); }
  static VF Div(VF a, VF b) { return _mm_div_ps(a, b); }
  static VF BitAnd(VF a, VF b) { return _mm_and_ps(a, b); }
  static VF BitXor(VF a, VF b) { return _mm_xor_ps(a, b); }
  static VF Abs(VF a) {
    return _mm_and_ps(a, _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF)));
  }
  static VF CmpGT(VF a, VF b) { return _mm_cmpgt_ps(a, b); }
  static VF CmpLT(VF a, VF b) { return _mm_cmplt_ps(a, b); }
  static VF CmpEQ(VF a, VF b) { return _mm_cmpeq_ps(a, b); }
  static VF Blend(VF mask, VF a, VF b) {
    return _mm_or_ps(_mm_and_ps(mask, a), _mm_andnot_ps(mask, b));
  }
};

inline const float* F(const cfloat* p) {
  return reinterpret_cast<const float*>(p);
}
inline float* F(cfloat* p) { return reinterpret_cast<float*>(p); }

/// Loads x[i..i+3] and splits into in-order re/im planes.
inline void Deinterleave4(const cfloat* x, __m128& re, __m128& im) {
  const __m128 v0 = _mm_loadu_ps(F(x));      // re0 im0 re1 im1
  const __m128 v1 = _mm_loadu_ps(F(x) + 4);  // re2 im2 re3 im3
  re = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));  // re0 re1 re2 re3
  im = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1));  // im0 im1 im2 im3
}

/// z = a * conj(b), planar, in the exact scalar ConjProduct order.
inline void ConjProduct4(__m128 ar, __m128 ai, __m128 br, __m128 bi,
                         __m128& re, __m128& im) {
  re = _mm_add_ps(_mm_mul_ps(ar, br), _mm_mul_ps(ai, bi));
  im = _mm_sub_ps(_mm_mul_ps(ai, br), _mm_mul_ps(ar, bi));
}

/// p = re^2 + im^2 with non-finite lanes (p < +inf fails) masked to +0.
inline __m128 FinitePower4(__m128 re, __m128 im) {
  const __m128 p = _mm_add_ps(_mm_mul_ps(re, re), _mm_mul_ps(im, im));
  const __m128 inf = _mm_set1_ps(std::numeric_limits<float>::infinity());
  return _mm_and_ps(_mm_cmplt_ps(p, inf), p);
}

void Sse2CorrelateChips(const cfloat* x, std::size_t n_out, const int* chips,
                        std::size_t n_chips, cfloat* out) {
  const std::size_t body = n_out - n_out % 2;  // 2 complex outputs per __m128
  for (std::size_t i = 0; i < body; i += 2) {
    __m128 acc = _mm_setzero_ps();
    for (std::size_t k = 0; k < n_chips; ++k) {
      const __m128 c = _mm_set1_ps(static_cast<float>(chips[k]));
      acc = _mm_add_ps(acc, _mm_mul_ps(c, _mm_loadu_ps(F(x + i + k))));
    }
    _mm_storeu_ps(F(out + i), acc);
  }
  for (std::size_t i = body; i < n_out; ++i) {
    out[i] = ScalarCorrelateOne(x + i, chips, n_chips);
  }
}

void Sse2FirComplex(const cfloat* work, std::size_t n_out, const float* taps,
                    std::size_t n_taps, cfloat* out) {
  const std::size_t body = n_out - n_out % 2;
  for (std::size_t n = 0; n < body; n += 2) {
    __m128 acc = _mm_setzero_ps();
    for (std::size_t k = 0; k < n_taps; ++k) {
      const __m128 t = _mm_set1_ps(taps[k]);
      const cfloat* v = work + n + (n_taps - 1 - k);
      acc = _mm_add_ps(acc, _mm_mul_ps(t, _mm_loadu_ps(F(v))));
    }
    _mm_storeu_ps(F(out + n), acc);
  }
  for (std::size_t n = body; n < n_out; ++n) {
    out[n] = ScalarFirOne(work + n, taps, n_taps);
  }
}

void Sse2PhaseDiff(const cfloat* x, std::size_t n, float* out) {
  const std::size_t n_out = n == 0 ? 0 : n - 1;
  const std::size_t body = n_out - n_out % 4;
  for (std::size_t i = 0; i < body; i += 4) {
    __m128 pr, pi, cr, ci;
    Deinterleave4(x + i, pr, pi);
    Deinterleave4(x + i + 1, cr, ci);
    __m128 zr, zi;
    ConjProduct4(cr, ci, pr, pi, zr, zi);
    _mm_storeu_ps(out + i, Atan2<SseTraits>(zi, zr));
  }
  for (std::size_t i = body; i < n_out; ++i) {
    out[i] = ScalarPhaseDiffOne(x[i], x[i + 1]);
  }
}

void Sse2InstantPhase(const cfloat* x, std::size_t n, float* out) {
  const std::size_t body = n - n % 4;
  for (std::size_t i = 0; i < body; i += 4) {
    __m128 re, im;
    Deinterleave4(x + i, re, im);
    _mm_storeu_ps(out + i, Atan2<SseTraits>(im, re));
  }
  for (std::size_t i = body; i < n; ++i) out[i] = ScalarInstantPhaseOne(x[i]);
}

double Sse2SumFinitePower(const cfloat* x, std::size_t n) {
  // Canonical 4-lane double model: acc01 = lanes {0,1}, acc23 = lanes {2,3}.
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const std::size_t body = n - n % 4;
  for (std::size_t i = 0; i < body; i += 4) {
    __m128 re, im;
    Deinterleave4(x + i, re, im);
    const __m128 p = FinitePower4(re, im);
    acc01 = _mm_add_pd(acc01, _mm_cvtps_pd(p));
    acc23 = _mm_add_pd(acc23, _mm_cvtps_pd(_mm_movehl_ps(p, p)));
  }
  alignas(16) double a[2], b[2];
  _mm_store_pd(a, acc01);
  _mm_store_pd(b, acc23);
  double sum = (a[0] + b[0]) + (a[1] + b[1]);  // (l0+l2)+(l1+l3)
  for (std::size_t i = body; i < n; ++i) {
    sum += static_cast<double>(ScalarFinitePower(x[i]));
  }
  return sum;
}

void Sse2PowerPlane(const cfloat* x, std::size_t n, float* out) {
  const std::size_t body = n - n % 4;
  for (std::size_t i = 0; i < body; i += 4) {
    __m128 re, im;
    Deinterleave4(x + i, re, im);
    _mm_storeu_ps(out + i, FinitePower4(re, im));
  }
  for (std::size_t i = body; i < n; ++i) out[i] = ScalarFinitePower(x[i]);
}

void Sse2HealthScan(const cfloat* x, std::size_t n, float rail,
                    std::uint64_t* nonfinite, std::uint64_t* saturated) {
  const __m128 inf = _mm_set1_ps(std::numeric_limits<float>::infinity());
  const __m128 rail_v = _mm_set1_ps(rail);
  std::uint64_t nf = 0, sat = 0;
  const std::size_t body = n - n % 4;
  for (std::size_t i = 0; i < body; i += 4) {
    __m128 re, im;
    Deinterleave4(x + i, re, im);
    const __m128 are = SseTraits::Abs(re);
    const __m128 aim = SseTraits::Abs(im);
    // finite: both |re| < inf and |im| < inf (NaN fails the ordered cmplt).
    const __m128 finite =
        _mm_and_ps(_mm_cmplt_ps(are, inf), _mm_cmplt_ps(aim, inf));
    // cmpnlt == ">= or unordered"; the unordered lanes are already counted
    // as non-finite, and the AND with `finite` keeps them out of saturated.
    const __m128 hot =
        _mm_or_ps(_mm_cmpnlt_ps(are, rail_v), _mm_cmpnlt_ps(aim, rail_v));
    const int fin_m = _mm_movemask_ps(finite);
    const int sat_m = _mm_movemask_ps(_mm_and_ps(finite, hot));
    nf += static_cast<unsigned>(__builtin_popcount(~fin_m & 0xF));
    sat += static_cast<unsigned>(__builtin_popcount(sat_m));
  }
  for (std::size_t i = body; i < n; ++i) ScalarHealthOne(x[i], rail, nf, sat);
  *nonfinite += nf;
  *saturated += sat;
}

cfloat Sse2ConjMulSum(const cfloat* x, std::size_t n) {
  if (n < 2) return {0.0f, 0.0f};
  // Canonical 8-lane float model with two register pairs: A = lanes {0..3},
  // B = lanes {4..7} of each 8-product group.
  __m128 re_a = _mm_setzero_ps(), im_a = _mm_setzero_ps();
  __m128 re_b = _mm_setzero_ps(), im_b = _mm_setzero_ps();
  const std::size_t products = n - 1;
  const std::size_t body = products - products % 8;
  for (std::size_t j = 0; j < body; j += 8) {
    __m128 pr, pi, cr, ci, zr, zi;
    Deinterleave4(x + j, pr, pi);
    Deinterleave4(x + j + 1, cr, ci);
    ConjProduct4(cr, ci, pr, pi, zr, zi);
    re_a = _mm_add_ps(re_a, zr);
    im_a = _mm_add_ps(im_a, zi);
    Deinterleave4(x + j + 4, pr, pi);
    Deinterleave4(x + j + 5, cr, ci);
    ConjProduct4(cr, ci, pr, pi, zr, zi);
    re_b = _mm_add_ps(re_b, zr);
    im_b = _mm_add_ps(im_b, zi);
  }
  alignas(16) float ra[4], rb[4], ia[4], ib[4];
  _mm_store_ps(ra, re_a);
  _mm_store_ps(rb, re_b);
  _mm_store_ps(ia, im_a);
  _mm_store_ps(ib, im_b);
  // ((l0+l2)+(l4+l6)) + ((l1+l3)+(l5+l7))
  float sr = ((ra[0] + ra[2]) + (rb[0] + rb[2])) +
             ((ra[1] + ra[3]) + (rb[1] + rb[3]));
  float si = ((ia[0] + ia[2]) + (ib[0] + ib[2])) +
             ((ia[1] + ia[3]) + (ib[1] + ib[3]));
  for (std::size_t j = body; j < products; ++j) {
    float pr, pi;
    ConjProduct(x[j + 1], x[j], pr, pi);
    sr += pr;
    si += pi;
  }
  return {sr, si};
}

}  // namespace

const Kernels kSse2Kernels = {
    Tier::kSse2,       &Sse2CorrelateChips, &Sse2FirComplex,
    &Sse2PhaseDiff,    &Sse2InstantPhase,   &Sse2SumFinitePower,
    &Sse2PowerPlane,   &Sse2HealthScan,     &Sse2ConjMulSum,
};

}  // namespace rfdump::dsp::simd::detail

#endif  // x86
