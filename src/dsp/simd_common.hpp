#pragma once
// Tier-shared implementation of the dsp::simd kernels (DESIGN.md §16).
//
// Every kernel is written ONCE as a template over a vector-traits class; the
// scalar tier instantiates it with 1-lane traits whose operations are plain
// IEEE-754 float ops (including *bitwise* selects mirroring blendv), and the
// SSE2/AVX2 translation units instantiate it with intrinsic-backed traits.
// Because IEEE +,-,*,/ are correctly rounded and therefore identical
// per-lane on every tier, and because the lane model (which element lands in
// which accumulator, and the exact combine tree) is fixed here once, all
// tiers produce bit-identical output. Two rules keep this true:
//
//   1. No tier may be compiled with FMA contraction (the AVX2 TU is built
//      with -mavx2 but NOT -mfma; intrinsics use separate mul + add).
//   2. Reductions use the fixed virtual-lane model below — never a tier's
//      "natural" width — so changing the register width cannot change the
//      FP association.
//
// Per-output kernels (correlate_chips, fir_complex) accumulate in ascending
// k order per output, which is the exact order of the pre-SIMD scalar code:
// those kernels are additionally bit-identical to the historical seed path.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "rfdump/dsp/energy.hpp"
#include "rfdump/dsp/simd.hpp"

namespace rfdump::dsp::simd::detail {

// ------------------------------------------------------------ scalar traits
//
// One lane; masks are all-ones/all-zeros float bit patterns so Blend/And/Xor
// mirror the bitwise SSE/AVX select semantics exactly (including NaN payload
// propagation through a select).

struct ScalarTraits {
  using VF = float;
  static constexpr std::size_t kWidth = 1;

  static VF Set1(float v) { return v; }
  static VF Add(VF a, VF b) { return a + b; }
  static VF Sub(VF a, VF b) { return a - b; }
  static VF Mul(VF a, VF b) { return a * b; }
  static VF Div(VF a, VF b) { return a / b; }

  static VF BitAnd(VF a, VF b) {
    return std::bit_cast<float>(std::bit_cast<std::uint32_t>(a) &
                                std::bit_cast<std::uint32_t>(b));
  }
  static VF BitXor(VF a, VF b) {
    return std::bit_cast<float>(std::bit_cast<std::uint32_t>(a) ^
                                std::bit_cast<std::uint32_t>(b));
  }
  static VF Abs(VF a) { return BitAnd(a, std::bit_cast<float>(0x7FFFFFFFu)); }

  static VF CmpGT(VF a, VF b) {
    return std::bit_cast<float>(a > b ? 0xFFFFFFFFu : 0u);
  }
  static VF CmpLT(VF a, VF b) {
    return std::bit_cast<float>(a < b ? 0xFFFFFFFFu : 0u);
  }
  static VF CmpEQ(VF a, VF b) {
    return std::bit_cast<float>(a == b ? 0xFFFFFFFFu : 0u);
  }
  /// mask ? a : b, bitwise per lane (blendv semantics).
  static VF Blend(VF mask, VF a, VF b) {
    const auto m = std::bit_cast<std::uint32_t>(mask);
    return std::bit_cast<float>((std::bit_cast<std::uint32_t>(a) & m) |
                                (std::bit_cast<std::uint32_t>(b) & ~m));
  }
};

// ------------------------------------------------------- canonical atan2
//
// Branchless cephes-style atan2 on [0, pi]: reduce to t = min/max in [0, 1],
// fold t > tan(pi/8) to (t-1)/(t+1), degree-7 odd polynomial, then undo the
// octant folds with selects. Only +,-,*,/ and bitwise ops — every tier
// executes this exact sequence per lane. Accuracy ~2 ulp vs libm atan2f.
//
// Signed-zero/edge semantics (deterministic on every tier):
//   atan2(+-0, x>0) = +-0        atan2(+-0, x<0)  = +-pi
//   atan2(+-0, +-0) = +-0        (libm: atan2(0,-0) = pi; we return 0)
//   NaN in -> NaN out.

template <class T>
typename T::VF Atan2(typename T::VF y, typename T::VF x) {
  using VF = typename T::VF;
  const VF kZero = T::Set1(0.0f);
  const VF kOne = T::Set1(1.0f);
  const VF kPiV = T::Set1(3.14159265358979323846f);
  const VF kPi2 = T::Set1(1.57079632679489661923f);
  const VF kPi4 = T::Set1(0.78539816339744830962f);
  const VF kTanPi8 = T::Set1(0.4142135623730950488f);

  const VF ax = T::Abs(x);
  const VF ay = T::Abs(y);
  // t = min/max in [0, 1]; remember whether we swapped (angle > pi/4).
  const VF swap_mask = T::CmpGT(ay, ax);
  const VF num = T::Blend(swap_mask, ax, ay);
  const VF den = T::Blend(swap_mask, ay, ax);
  VF t = T::Div(num, den);
  // Both zero -> 0/0 = NaN; define the angle magnitude as 0 instead.
  t = T::Blend(T::CmpEQ(den, kZero), kZero, t);
  // Second reduction: t in (tan(pi/8), 1] -> (t-1)/(t+1) in (-0.414..., 0].
  const VF red_mask = T::CmpGT(t, kTanPi8);
  const VF tr = T::Div(T::Sub(t, kOne), T::Add(t, kOne));
  t = T::Blend(red_mask, tr, t);
  const VF base = T::BitAnd(red_mask, kPi4);  // pi/4 where reduced, else 0
  // Cephes atanf polynomial on |t| <= tan(pi/8).
  const VF z = T::Mul(t, t);
  VF p = T::Set1(8.05374449538e-2f);
  p = T::Sub(T::Mul(p, z), T::Set1(1.38776856032e-1f));
  p = T::Add(T::Mul(p, z), T::Set1(1.99777106478e-1f));
  p = T::Sub(T::Mul(p, z), T::Set1(3.33329491539e-1f));
  VF r = T::Add(T::Add(T::Mul(T::Mul(p, z), t), t), base);
  // Undo the min/max swap: angle = pi/2 - angle.
  r = T::Blend(swap_mask, T::Sub(kPi2, r), r);
  // Left half plane: angle = pi - angle. (Uses x < 0, so x = -0 stays right.)
  r = T::Blend(T::CmpLT(x, kZero), T::Sub(kPiV, r), r);
  // Copy y's sign bit onto the angle (handles y = -0 like libm).
  r = T::BitXor(r, T::BitAnd(y, T::Set1(-0.0f)));
  return r;
}

// ------------------------------------------------ per-element scalar helpers
//
// Shared by the scalar tier (whole range) and by the vector tiers (tails).
// Per-element kernels are trivially bit-identical between a 1-lane and a
// W-lane execution of the same op sequence; these helpers ARE that 1-lane
// execution.

inline float ScalarAtan2(float y, float x) {
  return Atan2<ScalarTraits>(y, x);
}

/// z = a * conj(b), naive product (no __mulsc3 NaN recovery): for finite
/// inputs this matches std::complex operator* bit-for-bit.
inline void ConjProduct(cfloat a, cfloat b, float& re, float& im) {
  const float t0 = a.real() * b.real();
  const float t1 = a.imag() * b.imag();
  const float t2 = a.imag() * b.real();
  const float t3 = a.real() * b.imag();
  re = t0 + t1;
  im = t2 - t3;
}

inline cfloat ScalarCorrelateOne(const cfloat* x, const int* chips,
                                 std::size_t n_chips) {
  cfloat acc{0.0f, 0.0f};
  for (std::size_t k = 0; k < n_chips; ++k) {
    const float c = static_cast<float>(chips[k]);
    acc = cfloat(acc.real() + c * x[k].real(), acc.imag() + c * x[k].imag());
  }
  return acc;
}

inline cfloat ScalarFirOne(const cfloat* x, const float* taps,
                           std::size_t n_taps) {
  // y = sum_k taps[k] * x[n_taps - 1 - k], k ascending (the seed FIR order).
  cfloat acc{0.0f, 0.0f};
  for (std::size_t k = 0; k < n_taps; ++k) {
    const cfloat v = x[n_taps - 1 - k];
    acc = cfloat(acc.real() + taps[k] * v.real(),
                 acc.imag() + taps[k] * v.imag());
  }
  return acc;
}

inline float ScalarPhaseDiffOne(cfloat prev, cfloat cur) {
  float re, im;
  ConjProduct(cur, prev, re, im);
  return ScalarAtan2(im, re);
}

inline float ScalarInstantPhaseOne(cfloat v) {
  return ScalarAtan2(v.imag(), v.real());
}

/// FinitePower with the select expressed exactly as the vector tiers do:
/// p < +inf keeps p (NaN and +inf fail the compare and map to 0), which is
/// value-identical to std::isfinite(p) ? p : 0 for p = re^2 + im^2 >= 0.
inline float ScalarFinitePower(cfloat v) {
  const float t0 = v.real() * v.real();
  const float t1 = v.imag() * v.imag();
  const float p = t0 + t1;
  return p < std::numeric_limits<float>::infinity() ? p : 0.0f;
}

inline void ScalarHealthOne(cfloat v, float rail, std::uint64_t& nonfinite,
                            std::uint64_t& saturated) {
  const float are = ScalarTraits::Abs(v.real());
  const float aim = ScalarTraits::Abs(v.imag());
  const float inf = std::numeric_limits<float>::infinity();
  if (!(are < inf) || !(aim < inf)) {
    ++nonfinite;
  } else if (are >= rail || aim >= rail) {
    ++saturated;
  }
}

// ----------------------------------------------------- whole-range scalar
// Scalar-tier kernel bodies (also the reference the tests sweep against).

inline void ScalarCorrelateChips(const cfloat* x, std::size_t n_out,
                                 const int* chips, std::size_t n_chips,
                                 cfloat* out) {
  for (std::size_t i = 0; i < n_out; ++i) {
    out[i] = ScalarCorrelateOne(x + i, chips, n_chips);
  }
}

inline void ScalarFirComplex(const cfloat* work, std::size_t n_out,
                             const float* taps, std::size_t n_taps,
                             cfloat* out) {
  for (std::size_t n = 0; n < n_out; ++n) {
    out[n] = ScalarFirOne(work + n, taps, n_taps);
  }
}

inline void ScalarPhaseDiff(const cfloat* x, std::size_t n, float* out) {
  for (std::size_t i = 0; i + 1 < n; ++i) {
    out[i] = ScalarPhaseDiffOne(x[i], x[i + 1]);
  }
}

inline void ScalarInstantPhase(const cfloat* x, std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = ScalarInstantPhaseOne(x[i]);
}

inline void ScalarPowerPlane(const cfloat* x, std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = ScalarFinitePower(x[i]);
}

/// Canonical 4-lane double reduction (DESIGN.md §16.2): lane j takes body
/// elements with index % 4 == j; combine (l0+l2)+(l1+l3); sequential tail.
inline double ScalarSumFinitePower(const cfloat* x, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  const std::size_t body = n - n % 4;
  for (std::size_t i = 0; i < body; i += 4) {
    l0 += static_cast<double>(ScalarFinitePower(x[i + 0]));
    l1 += static_cast<double>(ScalarFinitePower(x[i + 1]));
    l2 += static_cast<double>(ScalarFinitePower(x[i + 2]));
    l3 += static_cast<double>(ScalarFinitePower(x[i + 3]));
  }
  double sum = (l0 + l2) + (l1 + l3);
  for (std::size_t i = body; i < n; ++i) {
    sum += static_cast<double>(ScalarFinitePower(x[i]));
  }
  return sum;
}

inline void ScalarHealthScan(const cfloat* x, std::size_t n, float rail,
                             std::uint64_t* nonfinite,
                             std::uint64_t* saturated) {
  std::uint64_t nf = 0, sat = 0;
  for (std::size_t i = 0; i < n; ++i) ScalarHealthOne(x[i], rail, nf, sat);
  *nonfinite += nf;
  *saturated += sat;
}

/// Canonical 8-lane float reduction of x[i]*conj(x[i-1]) (DESIGN.md §16.2):
/// product j (j = i-1) of the body goes to lane j % 8; lanes combine as
/// ((l0+l2)+(l4+l6)) + ((l1+l3)+(l5+l7)); sequential tail after the combine.
inline cfloat ScalarConjMulSum(const cfloat* x, std::size_t n) {
  if (n < 2) return {0.0f, 0.0f};
  float re[8] = {}, im[8] = {};
  const std::size_t products = n - 1;
  const std::size_t body = products - products % 8;
  for (std::size_t j = 0; j < body; j += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      float pr, pi;
      ConjProduct(x[j + l + 1], x[j + l], pr, pi);
      re[l] += pr;
      im[l] += pi;
    }
  }
  float sr = ((re[0] + re[2]) + (re[4] + re[6])) +
             ((re[1] + re[3]) + (re[5] + re[7]));
  float si = ((im[0] + im[2]) + (im[4] + im[6])) +
             ((im[1] + im[3]) + (im[5] + im[7]));
  for (std::size_t j = body; j < products; ++j) {
    float pr, pi;
    ConjProduct(x[j + 1], x[j], pr, pi);
    sr += pr;
    si += pi;
  }
  return {sr, si};
}

// Tier tables with external linkage: scalar is defined below (constexpr in
// this header); SSE2/AVX2 are defined in their arch-specific TUs. These
// declarations give the out-of-line definitions external linkage.
#if defined(__x86_64__) || defined(__i386__)
extern const Kernels kSse2Kernels;
extern const Kernels kAvx2Kernels;
extern const bool kAvx2Built;  // false if simd_avx2.cpp lost its -mavx2 flag
#endif

inline constexpr Kernels kScalarKernels = {
    Tier::kScalar,        &ScalarCorrelateChips, &ScalarFirComplex,
    &ScalarPhaseDiff,     &ScalarInstantPhase,   &ScalarSumFinitePower,
    &ScalarPowerPlane,    &ScalarHealthScan,     &ScalarConjMulSum,
};

}  // namespace rfdump::dsp::simd::detail
