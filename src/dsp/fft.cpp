#include "rfdump/dsp/fft.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rfdump::dsp {

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t size) : size_(size) {
  if (!IsPowerOfTwo(size) || size < 2) {
    throw std::invalid_argument("FftPlan size must be a power of two >= 2");
  }
  // Bit-reversal permutation.
  bit_reverse_.resize(size);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < size) ++bits;
  for (std::size_t i = 0; i < size; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    }
    bit_reverse_[i] = r;
  }
  // Forward twiddles W_N^k = exp(-2*pi*i*k/N) for k in [0, N/2).
  twiddles_.resize(size / 2);
  for (std::size_t k = 0; k < size / 2; ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(size);
    twiddles_[k] = cfloat(static_cast<float>(std::cos(angle)),
                          static_cast<float>(std::sin(angle)));
  }
}

void FftPlan::Transform(sample_span data, bool inverse) const {
  assert(data.size() == size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= size_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = size_ / len;
    for (std::size_t start = 0; start < size_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        cfloat w = twiddles_[k * stride];
        if (inverse) w = std::conj(w);
        const cfloat a = data[start + k];
        const cfloat b = data[start + k + half] * w;
        data[start + k] = a + b;
        data[start + k + half] = a - b;
      }
    }
  }
  if (inverse) {
    const float inv_n = 1.0f / static_cast<float>(size_);
    for (auto& v : data) v *= inv_n;
  }
}

void FftPlan::Forward(sample_span data) const { Transform(data, false); }
void FftPlan::Inverse(sample_span data) const { Transform(data, true); }

SampleVec FftPlan::ForwardCopy(const_sample_span input) const {
  SampleVec buf(size_, cfloat{0.0f, 0.0f});
  const std::size_t n = std::min(input.size(), size_);
  std::copy_n(input.begin(), n, buf.begin());
  Forward(buf);
  return buf;
}

std::vector<float> FftPlan::PowerSpectrum(const_sample_span input,
                                          std::span<const float> window) const {
  SampleVec buf(size_, cfloat{0.0f, 0.0f});
  const std::size_t n = std::min(input.size(), size_);
  for (std::size_t i = 0; i < n; ++i) {
    const float w = (i < window.size()) ? window[i] : 1.0f;
    buf[i] = input[i] * w;
  }
  Forward(buf);
  std::vector<float> power(size_);
  for (std::size_t i = 0; i < size_; ++i) power[i] = std::norm(buf[i]);
  return power;
}

}  // namespace rfdump::dsp
