#include "rfdump/dsp/resampler.hpp"

#include <algorithm>
#include <stdexcept>

namespace rfdump::dsp {

RationalResampler::RationalResampler(std::size_t interp, std::size_t decim,
                                     std::size_t taps_per_phase)
    : interp_(interp), decim_(decim), taps_per_phase_(taps_per_phase) {
  if (interp == 0 || decim == 0 || taps_per_phase == 0) {
    throw std::invalid_argument("RationalResampler parameters must be >= 1");
  }
  // Prototype low-pass at the composite rate (input rate x L): cutoff at the
  // narrower of the input and output Nyquist frequencies.
  const double composite_rate = static_cast<double>(interp);  // normalized
  const double cutoff =
      0.5 / static_cast<double>(std::max(interp, decim)) * composite_rate;
  auto proto = DesignLowPass(cutoff, composite_rate, interp * taps_per_phase,
                             WindowType::kBlackmanHarris);
  // Interpolation inserts L-1 zeros between samples; compensate the gain.
  for (auto& t : proto) t *= static_cast<float>(interp);
  phases_.assign(interp, std::vector<float>(taps_per_phase, 0.0f));
  for (std::size_t i = 0; i < proto.size(); ++i) {
    phases_[i % interp][i / interp] = proto[i];
  }
  window_.assign(taps_per_phase_, cfloat{0.0f, 0.0f});
}

void RationalResampler::Reset() {
  std::fill(window_.begin(), window_.end(), cfloat{0.0f, 0.0f});
  filled_ = 0;
  phase_acc_ = 0;
}

void RationalResampler::Process(const_sample_span input, SampleVec& out) {
  for (const cfloat x : input) {
    // Slide the window: newest sample at the back.
    std::move(window_.begin() + 1, window_.end(), window_.begin());
    window_.back() = x;
    if (filled_ < taps_per_phase_) ++filled_;
    // Each input sample advances the virtual upsampled stream by `interp_`
    // positions; emit an output for every `decim_` positions passed.
    while (phase_acc_ < interp_) {
      const auto& taps = phases_[phase_acc_];
      cfloat acc{0.0f, 0.0f};
      // taps[k] applies to x[n-k] == window_[taps_per_phase_-1-k].
      for (std::size_t k = 0; k < taps_per_phase_; ++k) {
        acc += taps[k] * window_[taps_per_phase_ - 1 - k];
      }
      out.push_back(acc);
      phase_acc_ += decim_;
    }
    phase_acc_ -= interp_;
  }
}

SampleVec RationalResampler::Resampled(const_sample_span input) {
  SampleVec out;
  out.reserve(input.size() * interp_ / decim_ + 8);
  Process(input, out);
  return out;
}

Decimator::Decimator(std::size_t factor, std::size_t num_taps)
    : factor_(factor),
      lowpass_(DesignLowPass(0.5 / static_cast<double>(factor ? factor : 1),
                             1.0, num_taps, WindowType::kBlackmanHarris)) {
  if (factor == 0) throw std::invalid_argument("Decimator factor must be >= 1");
}

void Decimator::Reset() {
  lowpass_.Reset();
  skip_ = 0;
}

void Decimator::Process(const_sample_span input, SampleVec& out) {
  SampleVec filtered;
  filtered.reserve(input.size());
  lowpass_.Process(input, filtered);
  std::size_t i = skip_;
  for (; i < filtered.size(); i += factor_) {
    out.push_back(filtered[i]);
  }
  skip_ = i - filtered.size();
}

SampleVec Decimator::Decimated(const_sample_span input) {
  SampleVec out;
  out.reserve(input.size() / factor_ + 8);
  Process(input, out);
  return out;
}

}  // namespace rfdump::dsp
