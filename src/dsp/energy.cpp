#include "rfdump/dsp/energy.hpp"

#include <stdexcept>

#include "rfdump/dsp/simd.hpp"

namespace rfdump::dsp {

double MeanPower(const_sample_span x) {
  if (x.empty()) return 0.0;
  return TotalEnergy(x) / static_cast<double>(x.size());
}

double TotalEnergy(const_sample_span x) {
  return simd::Active().sum_finite_power(x.data(), x.size());
}

MovingAveragePower::MovingAveragePower(std::size_t window) : window_(window) {
  if (window == 0) {
    throw std::invalid_argument("MovingAveragePower window must be >= 1");
  }
  ring_.assign(window, 0.0f);
}

void MovingAveragePower::Reset() {
  std::fill(ring_.begin(), ring_.end(), 0.0f);
  head_ = 0;
  count_ = 0;
  sum_ = 0.0;
  pushes_since_rebuild_ = 0;
}

float MovingAveragePower::Push(cfloat sample) {
  return Push(FinitePower(sample));
}

float MovingAveragePower::Push(float power) {
  const float p = power;
  sum_ += p - ring_[head_];
  ring_[head_] = p;
  if (++head_ == window_) head_ = 0;
  if (count_ < window_) ++count_;
  // Rebuild the running sum occasionally to cancel accumulated float error.
  if (++pushes_since_rebuild_ >= 1u << 20) {
    sum_ = 0.0;
    for (float v : ring_) sum_ += v;
    pushes_since_rebuild_ = 0;
  }
  return Average();
}

float MovingAveragePower::Average() const {
  if (count_ == 0) return 0.0f;
  return static_cast<float>(sum_ / static_cast<double>(count_));
}

}  // namespace rfdump::dsp
