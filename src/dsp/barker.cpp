#include "rfdump/dsp/barker.hpp"

#include <cmath>

namespace rfdump::dsp {

SampleVec CorrelateChips(const_sample_span x, std::span<const int> chips) {
  const std::size_t n = chips.size();
  if (x.size() < n || n == 0) return {};
  SampleVec out(x.size() - n + 1);
  for (std::size_t i = 0; i + n <= x.size(); ++i) {
    cfloat acc{0.0f, 0.0f};
    for (std::size_t k = 0; k < n; ++k) {
      acc += static_cast<float>(chips[k]) * x[i + k];
    }
    out[i] = acc;
  }
  return out;
}

std::vector<float> NormalizedCorrelateChips(const_sample_span x,
                                            std::span<const int> chips) {
  const std::size_t n = chips.size();
  if (x.size() < n || n == 0) return {};
  std::vector<float> out(x.size() - n + 1);
  // Running window energy for normalization.
  double window_energy = 0.0;
  for (std::size_t k = 0; k < n; ++k) window_energy += std::norm(x[k]);
  for (std::size_t i = 0; i + n <= x.size(); ++i) {
    cfloat acc{0.0f, 0.0f};
    for (std::size_t k = 0; k < n; ++k) {
      acc += static_cast<float>(chips[k]) * x[i + k];
    }
    const double denom =
        std::sqrt(static_cast<double>(n) * std::max(window_energy, 1e-30));
    out[i] = static_cast<float>(std::abs(acc) / denom);
    if (i + n < x.size()) {
      window_energy += std::norm(x[i + n]) - std::norm(x[i]);
      if (window_energy < 0.0) window_energy = 0.0;
    }
  }
  return out;
}

}  // namespace rfdump::dsp
