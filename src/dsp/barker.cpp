#include "rfdump/dsp/barker.hpp"

#include <algorithm>
#include <cmath>

#include "rfdump/dsp/simd.hpp"

namespace rfdump::dsp {

SampleVec CorrelateChips(const_sample_span x, std::span<const int> chips) {
  const std::size_t n = chips.size();
  if (x.size() < n || n == 0) return {};
  SampleVec out(x.size() - n + 1);
  simd::Active().correlate_chips(x.data(), out.size(), chips.data(), n,
                                 out.data());
  return out;
}

void CorrelateChipsNormalized(const_sample_span x, std::span<const int> chips,
                              SampleVec& corr, std::vector<float>& norm) {
  const std::size_t n = chips.size();
  if (x.size() < n || n == 0) {
    corr.clear();
    norm.clear();
    return;
  }
  const std::size_t n_out = x.size() - n + 1;
  corr.resize(n_out);
  norm.resize(n_out);
  simd::Active().correlate_chips(x.data(), n_out, chips.data(), n,
                                 corr.data());
  // Normalization runs over the kernel's outputs with the same running
  // window-energy recurrence on every tier: the correlations are
  // bit-identical across tiers, so the norms are too.
  double window_energy = 0.0;
  for (std::size_t k = 0; k < n; ++k) window_energy += std::norm(x[k]);
  for (std::size_t i = 0; i < n_out; ++i) {
    const double denom =
        std::sqrt(static_cast<double>(n) * std::max(window_energy, 1e-30));
    norm[i] = static_cast<float>(std::abs(corr[i]) / denom);
    if (i + n < x.size()) {
      window_energy += std::norm(x[i + n]) - std::norm(x[i]);
      if (window_energy < 0.0) window_energy = 0.0;
    }
  }
}

std::vector<float> NormalizedCorrelateChips(const_sample_span x,
                                            std::span<const int> chips) {
  SampleVec corr;
  std::vector<float> norm;
  CorrelateChipsNormalized(x, chips, corr, norm);
  return norm;
}

}  // namespace rfdump::dsp
