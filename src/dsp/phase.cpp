#include "rfdump/dsp/phase.hpp"

#include <cmath>

#include "rfdump/dsp/simd.hpp"

namespace rfdump::dsp {

std::vector<float> InstantPhase(const_sample_span x) {
  std::vector<float> out(x.size());
  simd::Active().instant_phase(x.data(), x.size(), out.data());
  return out;
}

std::vector<float> PhaseDiff(const_sample_span x) {
  if (x.size() < 2) return {};
  std::vector<float> out(x.size() - 1);
  simd::Active().phase_diff(x.data(), x.size(), out.data());
  return out;
}

std::vector<float> PhaseSecondDiff(const_sample_span x) {
  const auto d1 = PhaseDiff(x);
  if (d1.size() < 2) return {};
  std::vector<float> out(d1.size() - 1);
  for (std::size_t i = 1; i < d1.size(); ++i) {
    out[i - 1] = WrapPhase(d1[i] - d1[i - 1]);
  }
  return out;
}

float WrapPhase(float angle) {
  while (angle > kPi) angle -= kTwoPi;
  while (angle <= -kPi) angle += kTwoPi;
  return angle;
}

void UnwrapInPlace(std::vector<float>& phase) {
  for (std::size_t i = 1; i < phase.size(); ++i) {
    float d = phase[i] - phase[i - 1];
    while (d > kPi) {
      phase[i] -= kTwoPi;
      d -= kTwoPi;
    }
    while (d < -kPi) {
      phase[i] += kTwoPi;
      d += kTwoPi;
    }
  }
}

std::vector<std::size_t> PhaseHistogram(std::span<const float> phases,
                                        std::size_t bins) {
  std::vector<std::size_t> hist(bins, 0);
  if (bins == 0) return hist;
  for (float p : phases) {
    // Map (-pi, pi] -> [0, bins).
    float norm = (p + kPi) / kTwoPi;  // (0, 1]
    auto idx = static_cast<std::size_t>(norm * static_cast<float>(bins));
    if (idx >= bins) idx = bins - 1;
    ++hist[idx];
  }
  return hist;
}

}  // namespace rfdump::dsp
