// AVX2 tier of the dsp::simd kernel table. This TU is compiled with -mavx2
// ONLY — never -mfma — so FMA contraction is impossible and every multiply
// and add rounds separately, exactly like the scalar tier (DESIGN.md §16).
//
// The in-register deinterleave (_mm256_shuffle_ps acting per 128-bit lane)
// produces element order [0,1,4,5,2,3,6,7]. Per-element kernels undo it with
// a self-inverse _mm256_permutevar8x32_ps before storing; reductions fold
// the permutation into the canonical lane-combine order instead.

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "simd_common.hpp"

namespace rfdump::dsp::simd::detail {
namespace {

struct AvxTraits {
  using VF = __m256;
  static constexpr std::size_t kWidth = 8;

  static VF Set1(float v) { return _mm256_set1_ps(v); }
  static VF Add(VF a, VF b) { return _mm256_add_ps(a, b); }
  static VF Sub(VF a, VF b) { return _mm256_sub_ps(a, b); }
  static VF Mul(VF a, VF b) { return _mm256_mul_ps(a, b); }
  static VF Div(VF a, VF b) { return _mm256_div_ps(a, b); }
  static VF BitAnd(VF a, VF b) { return _mm256_and_ps(a, b); }
  static VF BitXor(VF a, VF b) { return _mm256_xor_ps(a, b); }
  static VF Abs(VF a) {
    return _mm256_and_ps(a, _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF)));
  }
  static VF CmpGT(VF a, VF b) { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }
  static VF CmpLT(VF a, VF b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
  static VF CmpEQ(VF a, VF b) { return _mm256_cmp_ps(a, b, _CMP_EQ_OQ); }
  static VF Blend(VF mask, VF a, VF b) { return _mm256_blendv_ps(b, a, mask); }
};

inline const float* F(const cfloat* p) {
  return reinterpret_cast<const float*>(p);
}
inline float* F(cfloat* p) { return reinterpret_cast<float*>(p); }

/// Element order of the shuffle-based deinterleave, and (being self-inverse)
/// also the permutation that restores element order before a store.
inline __m256i DeintPerm() { return _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7); }

/// Loads x[i..i+7] and splits into re/im planes in [0,1,4,5,2,3,6,7] order.
inline void Deinterleave8(const cfloat* x, __m256& re, __m256& im) {
  const __m256 v0 = _mm256_loadu_ps(F(x));      // elements 0..3 interleaved
  const __m256 v1 = _mm256_loadu_ps(F(x) + 8);  // elements 4..7 interleaved
  re = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
  im = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1));
}

inline void ConjProduct8(__m256 ar, __m256 ai, __m256 br, __m256 bi,
                         __m256& re, __m256& im) {
  re = _mm256_add_ps(_mm256_mul_ps(ar, br), _mm256_mul_ps(ai, bi));
  im = _mm256_sub_ps(_mm256_mul_ps(ai, br), _mm256_mul_ps(ar, bi));
}

inline __m256 FinitePower8(__m256 re, __m256 im) {
  const __m256 p =
      _mm256_add_ps(_mm256_mul_ps(re, re), _mm256_mul_ps(im, im));
  const __m256 inf = _mm256_set1_ps(std::numeric_limits<float>::infinity());
  return _mm256_and_ps(_mm256_cmp_ps(p, inf, _CMP_LT_OQ), p);
}

void Avx2CorrelateChips(const cfloat* x, std::size_t n_out, const int* chips,
                        std::size_t n_chips, cfloat* out) {
  const std::size_t body = n_out - n_out % 4;  // 4 complex outputs per __m256
  for (std::size_t i = 0; i < body; i += 4) {
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t k = 0; k < n_chips; ++k) {
      const __m256 c = _mm256_set1_ps(static_cast<float>(chips[k]));
      acc = _mm256_add_ps(acc, _mm256_mul_ps(c, _mm256_loadu_ps(F(x + i + k))));
    }
    _mm256_storeu_ps(F(out + i), acc);
  }
  for (std::size_t i = body; i < n_out; ++i) {
    out[i] = ScalarCorrelateOne(x + i, chips, n_chips);
  }
}

void Avx2FirComplex(const cfloat* work, std::size_t n_out, const float* taps,
                    std::size_t n_taps, cfloat* out) {
  const std::size_t body = n_out - n_out % 4;
  for (std::size_t n = 0; n < body; n += 4) {
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t k = 0; k < n_taps; ++k) {
      const __m256 t = _mm256_set1_ps(taps[k]);
      const cfloat* v = work + n + (n_taps - 1 - k);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(t, _mm256_loadu_ps(F(v))));
    }
    _mm256_storeu_ps(F(out + n), acc);
  }
  for (std::size_t n = body; n < n_out; ++n) {
    out[n] = ScalarFirOne(work + n, taps, n_taps);
  }
}

void Avx2PhaseDiff(const cfloat* x, std::size_t n, float* out) {
  const __m256i perm = DeintPerm();
  const std::size_t n_out = n == 0 ? 0 : n - 1;
  const std::size_t body = n_out - n_out % 8;
  for (std::size_t i = 0; i < body; i += 8) {
    __m256 pr, pi, cr, ci, zr, zi;
    Deinterleave8(x + i, pr, pi);
    Deinterleave8(x + i + 1, cr, ci);
    ConjProduct8(cr, ci, pr, pi, zr, zi);
    const __m256 r = Atan2<AvxTraits>(zi, zr);
    _mm256_storeu_ps(out + i, _mm256_permutevar8x32_ps(r, perm));
  }
  for (std::size_t i = body; i < n_out; ++i) {
    out[i] = ScalarPhaseDiffOne(x[i], x[i + 1]);
  }
}

void Avx2InstantPhase(const cfloat* x, std::size_t n, float* out) {
  const __m256i perm = DeintPerm();
  const std::size_t body = n - n % 8;
  for (std::size_t i = 0; i < body; i += 8) {
    __m256 re, im;
    Deinterleave8(x + i, re, im);
    const __m256 r = Atan2<AvxTraits>(im, re);
    _mm256_storeu_ps(out + i, _mm256_permutevar8x32_ps(r, perm));
  }
  for (std::size_t i = body; i < n; ++i) out[i] = ScalarInstantPhaseOne(x[i]);
}

double Avx2SumFinitePower(const cfloat* x, std::size_t n) {
  // Canonical 4-lane double model: one __m256d accumulator, lane j takes
  // elements i % 4 == j. The 4-wide power vector is built from a 128-bit
  // deinterleave, so the lanes are in element order here (no permutation).
  __m256d acc = _mm256_setzero_pd();
  const std::size_t body = n - n % 4;
  for (std::size_t i = 0; i < body; i += 4) {
    const __m128 v0 = _mm_loadu_ps(F(x + i));
    const __m128 v1 = _mm_loadu_ps(F(x + i) + 4);
    const __m128 re = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 im = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128 p = _mm_add_ps(_mm_mul_ps(re, re), _mm_mul_ps(im, im));
    const __m128 inf = _mm_set1_ps(std::numeric_limits<float>::infinity());
    const __m128 fp = _mm_and_ps(_mm_cmplt_ps(p, inf), p);
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(fp));
  }
  alignas(32) double a[4];
  _mm256_store_pd(a, acc);
  double sum = (a[0] + a[2]) + (a[1] + a[3]);
  for (std::size_t i = body; i < n; ++i) {
    sum += static_cast<double>(ScalarFinitePower(x[i]));
  }
  return sum;
}

void Avx2PowerPlane(const cfloat* x, std::size_t n, float* out) {
  const __m256i perm = DeintPerm();
  const std::size_t body = n - n % 8;
  for (std::size_t i = 0; i < body; i += 8) {
    __m256 re, im;
    Deinterleave8(x + i, re, im);
    const __m256 p = FinitePower8(re, im);
    _mm256_storeu_ps(out + i, _mm256_permutevar8x32_ps(p, perm));
  }
  for (std::size_t i = body; i < n; ++i) out[i] = ScalarFinitePower(x[i]);
}

void Avx2HealthScan(const cfloat* x, std::size_t n, float rail,
                    std::uint64_t* nonfinite, std::uint64_t* saturated) {
  const __m256 inf = _mm256_set1_ps(std::numeric_limits<float>::infinity());
  const __m256 rail_v = _mm256_set1_ps(rail);
  std::uint64_t nf = 0, sat = 0;
  const std::size_t body = n - n % 8;
  for (std::size_t i = 0; i < body; i += 8) {
    __m256 re, im;
    Deinterleave8(x + i, re, im);  // lane order irrelevant: we only count
    const __m256 are = AvxTraits::Abs(re);
    const __m256 aim = AvxTraits::Abs(im);
    const __m256 finite = _mm256_and_ps(_mm256_cmp_ps(are, inf, _CMP_LT_OQ),
                                        _mm256_cmp_ps(aim, inf, _CMP_LT_OQ));
    const __m256 hot = _mm256_or_ps(_mm256_cmp_ps(are, rail_v, _CMP_GE_OQ),
                                    _mm256_cmp_ps(aim, rail_v, _CMP_GE_OQ));
    const int fin_m = _mm256_movemask_ps(finite);
    const int sat_m = _mm256_movemask_ps(_mm256_and_ps(finite, hot));
    nf += static_cast<unsigned>(__builtin_popcount(~fin_m & 0xFF));
    sat += static_cast<unsigned>(__builtin_popcount(sat_m));
  }
  for (std::size_t i = body; i < n; ++i) ScalarHealthOne(x[i], rail, nf, sat);
  *nonfinite += nf;
  *saturated += sat;
}

cfloat Avx2ConjMulSum(const cfloat* x, std::size_t n) {
  if (n < 2) return {0.0f, 0.0f};
  // Physical accumulator lane l holds canonical lane DeintPerm[l], i.e. the
  // register is [L0,L1,L4,L5,L2,L3,L6,L7]; the store below indexes
  // accordingly to realize the canonical combine.
  __m256 re_acc = _mm256_setzero_ps(), im_acc = _mm256_setzero_ps();
  const std::size_t products = n - 1;
  const std::size_t body = products - products % 8;
  for (std::size_t j = 0; j < body; j += 8) {
    __m256 pr, pi, cr, ci, zr, zi;
    Deinterleave8(x + j, pr, pi);
    Deinterleave8(x + j + 1, cr, ci);
    ConjProduct8(cr, ci, pr, pi, zr, zi);
    re_acc = _mm256_add_ps(re_acc, zr);
    im_acc = _mm256_add_ps(im_acc, zi);
  }
  alignas(32) float r[8], im[8];
  _mm256_store_ps(r, re_acc);
  _mm256_store_ps(im, im_acc);
  // Physical index of canonical lane: L0=0 L1=1 L2=4 L3=5 L4=2 L5=3 L6=6 L7=7.
  // Canonical combine ((l0+l2)+(l4+l6)) + ((l1+l3)+(l5+l7)):
  float sr = ((r[0] + r[4]) + (r[2] + r[6])) + ((r[1] + r[5]) + (r[3] + r[7]));
  float si =
      ((im[0] + im[4]) + (im[2] + im[6])) + ((im[1] + im[5]) + (im[3] + im[7]));
  for (std::size_t j = body; j < products; ++j) {
    float pr, pi;
    ConjProduct(x[j + 1], x[j], pr, pi);
    sr += pr;
    si += pi;
  }
  return {sr, si};
}

}  // namespace

const Kernels kAvx2Kernels = {
    Tier::kAvx2,       &Avx2CorrelateChips, &Avx2FirComplex,
    &Avx2PhaseDiff,    &Avx2InstantPhase,   &Avx2SumFinitePower,
    &Avx2PowerPlane,   &Avx2HealthScan,     &Avx2ConjMulSum,
};

const bool kAvx2Built = true;

}  // namespace rfdump::dsp::simd::detail

#else
// Built without -mavx2 (a toolchain where the per-source flag doesn't
// apply): keep the dispatcher linking but report the tier as unbuilt so
// TierSupported(kAvx2) is false regardless of what CPUID says.
#if defined(__x86_64__) || defined(__i386__)
#include "simd_common.hpp"
namespace rfdump::dsp::simd::detail {
const Kernels kAvx2Kernels = kScalarKernels;
const bool kAvx2Built = false;
}  // namespace rfdump::dsp::simd::detail
#endif
#endif  // x86 && AVX2
