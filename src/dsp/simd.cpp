#include "rfdump/dsp/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "simd_common.hpp"

namespace rfdump::dsp::simd {

#if defined(__x86_64__) || defined(__i386__)
#define RFDUMP_SIMD_X86 1
#else
#define RFDUMP_SIMD_X86 0
#endif

namespace {

const Kernels* TablePtr(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return &detail::kScalarKernels;
#if RFDUMP_SIMD_X86
    case Tier::kSse2:
      return &detail::kSse2Kernels;
    case Tier::kAvx2:
      return &detail::kAvx2Kernels;
#else
    case Tier::kSse2:
    case Tier::kAvx2:
      return nullptr;
#endif
  }
  return nullptr;
}

bool CpuSupports(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
#if RFDUMP_SIMD_X86
    case Tier::kSse2:
      return true;  // Guaranteed by the x86-64 ABI; probed at startup on i386.
    case Tier::kAvx2:
      return detail::kAvx2Built && __builtin_cpu_supports("avx2") != 0;
#else
    case Tier::kSse2:
    case Tier::kAvx2:
      return false;
#endif
  }
  return false;
}

Tier ResolveEnvOrDetect() {
  if (const char* env = std::getenv("RFDUMP_SIMD");
      env != nullptr && env[0] != '\0' && std::strcmp(env, "auto") != 0) {
    Tier tier;
    if (!ParseTier(env, tier)) {
      throw std::runtime_error(std::string("RFDUMP_SIMD: unknown tier '") +
                               env + "' (want scalar|sse2|avx2|auto)");
    }
    if (!TierSupported(tier)) {
      throw std::runtime_error(std::string("RFDUMP_SIMD: tier '") + env +
                               "' not supported on this CPU/build");
    }
    return tier;
  }
  return DetectBestTier();
}

// Resolved once on first Active()/ActiveTier() call; ForceTier() overrides.
std::atomic<const Kernels*> g_active{nullptr};

const Kernels* ResolveActive() {
  const Kernels* table = TablePtr(ResolveEnvOrDetect());
  const Kernels* expected = nullptr;
  // Another thread may have resolved (or forced) concurrently; first wins.
  g_active.compare_exchange_strong(expected, table, std::memory_order_acq_rel);
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseTier(const char* name, Tier& out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    out = Tier::kScalar;
  } else if (std::strcmp(name, "sse2") == 0) {
    out = Tier::kSse2;
  } else if (std::strcmp(name, "avx2") == 0) {
    out = Tier::kAvx2;
  } else {
    return false;
  }
  return true;
}

bool TierSupported(Tier tier) {
  return TablePtr(tier) != nullptr && CpuSupports(tier);
}

Tier DetectBestTier() {
  static const Tier best = [] {
    if (TierSupported(Tier::kAvx2)) return Tier::kAvx2;
    if (TierSupported(Tier::kSse2)) return Tier::kSse2;
    return Tier::kScalar;
  }();
  return best;
}

Tier ActiveTier() { return Active().tier; }

void ForceTier(Tier tier) {
  if (!TierSupported(tier)) {
    throw std::runtime_error(std::string("ForceTier: tier '") +
                             TierName(tier) +
                             "' not supported on this CPU/build");
  }
  g_active.store(TablePtr(tier), std::memory_order_release);
}

void ClearForcedTier() {
  g_active.store(TablePtr(ResolveEnvOrDetect()), std::memory_order_release);
}

const Kernels& Active() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) table = ResolveActive();
  return *table;
}

const Kernels& Table(Tier tier) {
  const Kernels* table = TablePtr(tier);
  if (table == nullptr || !CpuSupports(tier)) {
    throw std::runtime_error(std::string("Table: tier '") + TierName(tier) +
                             "' not supported on this CPU/build");
  }
  return *table;
}

float CanonicalAtan2(float y, float x) { return detail::ScalarAtan2(y, x); }

}  // namespace rfdump::dsp::simd
