#include "rfdump/phybt/demodulator.hpp"

#include "rfdump/dsp/simd.hpp"
#include "rfdump/util/scratch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "rfdump/dsp/energy.hpp"
#include "rfdump/dsp/fir.hpp"
#include "rfdump/dsp/nco.hpp"
#include "rfdump/phybt/gfsk.hpp"
#include "rfdump/phybt/hopping.hpp"
#include "rfdump/obs/obs.hpp"

namespace rfdump::phybt {
namespace {

constexpr std::size_t kSps = kSamplesPerSymbol;
constexpr std::size_t kAccessBits = 68;
// Longest possible post-access-code section: 54 header bits + payload header
// (2B) + 339B payload + CRC (2B).
constexpr std::size_t kMaxBodyBits = 54 + (2 + 339 + 2) * 8;

}  // namespace

Demodulator::Demodulator() : Demodulator(Config{}) {}

Demodulator::Demodulator(Config config) : config_(config) {}

std::vector<DecodedBtPacket> Demodulator::DecodeAll(dsp::const_sample_span x) {
  RFDUMP_TRACE_SPAN("phybt/decode");
  std::vector<DecodedBtPacket> out;
  if (x.size() < kAccessBits * kSps) return out;
  if (config_.channel_index >= 0) {
    ScanChannel(x, config_.channel_index, out);
  } else {
    for (int idx = 0; idx < kVisibleChannels; ++idx) {
      if (config_.budget && config_.budget->expired()) break;
      ScanChannel(x, idx, out);
    }
  }
  return out;
}

void Demodulator::ScanChannel(dsp::const_sample_span x, int idx,
                              std::vector<DecodedBtPacket>& out) {
  static obs::Counter& c_samples = obs::Registry::Default().GetCounter(
      "rfdump_phybt_samples_total");
  static obs::Counter& c_checks = obs::Registry::Default().GetCounter(
      "rfdump_phybt_sync_checks_total");
  static obs::Counter& c_packets = obs::Registry::Default().GetCounter(
      "rfdump_phybt_packets_total");
  static obs::Counter& c_crc_pass = obs::Registry::Default().GetCounter(
      "rfdump_phybt_crc_pass_total");
  static obs::Counter& c_crc_fail = obs::Registry::Default().GetCounter(
      "rfdump_phybt_crc_fail_total");
  stats_.samples_processed += x.size();
  c_samples.Inc(x.size());

  // Cooperative deadline: channelize + filter + discriminate are linear in
  // the window, so charge them up front; the scan loop charges per sync
  // check and per body decode, where adversarial input can burn CPU.
  util::WorkBudget* budget = config_.budget;
  if (budget && !budget->Charge(x.size())) return;

  // Channelize: translate the channel to DC and low-pass to ~1 MHz. All the
  // per-channel buffers come from the thread-local scratch arena — the
  // 79-channel scan reuses one set of allocations instead of 4 per channel.
  struct ChTag {};
  auto& ch = util::Scratch<dsp::cfloat, ChTag>();
  ch.assign(x.begin(), x.end());
  dsp::Nco nco(-VisibleIndexOffsetHz(idx), dsp::kSampleRateHz);
  nco.Mix(ch);
  static const std::vector<float> kChanTaps =
      dsp::DesignLowPass(600e3, dsp::kSampleRateHz, 21);
  dsp::FirFilter lp(kChanTaps);
  struct FilteredTag {};
  auto& filtered = util::Scratch<dsp::cfloat, FilteredTag>();
  filtered.clear();
  lp.Process(ch, filtered);

  // Instantaneous frequency + a cheap in-channel energy track for gating,
  // both via the SIMD kernels (power plane feeds the moving average).
  struct FreqTag {};
  auto& freq = util::Scratch<float, FreqTag>();
  FmDiscriminateInto(filtered, freq);
  struct PowerTag {};
  auto& power = util::Scratch<float, PowerTag>();
  power.resize(filtered.size());
  struct PlaneTag {};
  auto& plane = util::Scratch<float, PlaneTag>();
  plane.resize(filtered.size());
  dsp::simd::Active().power_plane(filtered.data(), filtered.size(),
                                  plane.data());
  {
    dsp::MovingAveragePower ma(16);
    for (std::size_t n = 0; n < filtered.size(); ++n) {
      power[n] = ma.Push(plane[n]);
    }
  }
  // Noise floor in-channel: either derived from the known full-band floor
  // (scaled by the channel filter's noise gain) or estimated as the mean of
  // the lowest decile of the power track, which keeps the estimate anchored
  // to noise even when transmissions occupy most of the scanned window.
  double floor_est = 0.0;
  if (config_.noise_floor_power > 0.0) {
    double tap_energy = 0.0;
    for (float t : kChanTaps) tap_energy += static_cast<double>(t) * t;
    floor_est = config_.noise_floor_power * tap_energy;
  } else {
    std::vector<float> probe;
    probe.reserve(power.size() / 64 + 1);
    for (std::size_t n = 0; n < power.size(); n += 64) {
      probe.push_back(power[n]);
    }
    std::sort(probe.begin(), probe.end());
    const std::size_t decile = std::max<std::size_t>(probe.size() / 10, 1);
    for (std::size_t i = 0; i < decile; ++i) floor_est += probe[i];
    floor_est /= static_cast<double>(decile);
  }
  const float gate = static_cast<float>(std::max(floor_est * 4.0, 1e-12));

  const std::size_t need = kAccessBits * kSps;
  std::size_t pos = 1;  // SliceSymbols needs center >= 1
  while (pos + need < freq.size()) {
    // Gate on channel energy: skip quiet stretches cheaply.
    if (power[pos] < gate) {
      pos += kSps;
      continue;
    }
    // Cheap screen: the 4 preamble symbols must alternate in frequency sign.
    const float p0 = freq[pos];
    const float p1 = freq[pos + kSps];
    const float p2 = freq[pos + 2 * kSps];
    const float p3 = freq[pos + 3 * kSps];
    if (!(std::signbit(p0) != std::signbit(p1) &&
          std::signbit(p1) != std::signbit(p2) &&
          std::signbit(p2) != std::signbit(p3))) {
      ++pos;
      continue;
    }
    ++stats_.sync_checks;
    c_checks.Inc();
    if (budget && !budget->Charge(64 * kSps)) break;
    // Slice the 64 sync bits and verify against the BCH code.
    const util::BitVec sync_bits =
        SliceSymbols(freq, pos + 4 * kSps, 64);
    if (sync_bits.size() < 64) break;
    const std::uint64_t word = util::BitsToUintLsbFirst(sync_bits);
    const auto lap = VerifySyncWord(word, config_.max_sync_errors);
    if (!lap) {
      ++pos;
      continue;
    }

    // Decode header + payload.
    const std::size_t body_start = pos + kAccessBits * kSps;
    const std::size_t avail_bits =
        (freq.size() - body_start) / kSps;
    if (budget &&
        !budget->Charge(std::min(avail_bits, kMaxBodyBits) * kSps)) {
      break;
    }
    const util::BitVec body = SliceSymbols(
        freq, body_start, std::min(avail_bits, kMaxBodyBits));
    auto parsed = ParsePacketBits(body, config_.expected_uap);
    if (!parsed) {
      pos += kSps;  // genuine access code but undecodable header: move on
      continue;
    }
    DecodedBtPacket pkt;
    pkt.lap = *lap;
    pkt.channel_index = idx;
    pkt.packet = std::move(*parsed);
    pkt.start_sample = static_cast<std::int64_t>(pos);
    const std::size_t air_bits = PacketAirBits(
        pkt.packet.header.type,
        pkt.packet.payload.empty() ? 0 : pkt.packet.payload.size());
    pkt.end_sample = static_cast<std::int64_t>(pos + air_bits * kSps);
    (pkt.packet.crc_ok ? c_crc_pass : c_crc_fail).Inc();
    out.push_back(std::move(pkt));
    ++stats_.packets_decoded;
    c_packets.Inc();
    pos += air_bits * kSps;
  }
}

}  // namespace rfdump::phybt
