#include "rfdump/phybt/gfsk.hpp"

#include <cmath>

#include "rfdump/dsp/fir.hpp"
#include "rfdump/dsp/simd.hpp"

namespace rfdump::phybt {

dsp::SampleVec GfskModulate(std::span<const std::uint8_t> bits,
                            std::size_t ramp_symbols) {
  const std::size_t sps = kSamplesPerSymbol;
  // NRZ at sample rate with ramp padding (repeat first/last bit levels).
  std::vector<float> nrz;
  nrz.reserve((bits.size() + 2 * ramp_symbols) * sps);
  const float first = bits.empty() ? 0.0f : (bits.front() ? 1.0f : -1.0f);
  const float last = bits.empty() ? 0.0f : (bits.back() ? 1.0f : -1.0f);
  for (std::size_t i = 0; i < ramp_symbols * sps; ++i) nrz.push_back(first);
  for (std::uint8_t b : bits) {
    const float v = b ? 1.0f : -1.0f;
    for (std::size_t s = 0; s < sps; ++s) nrz.push_back(v);
  }
  for (std::size_t i = 0; i < ramp_symbols * sps; ++i) nrz.push_back(last);

  // Gaussian pulse shaping.
  const auto taps = dsp::DesignGaussian(kGaussianBt, sps, 4);
  std::vector<float> shaped(nrz.size(), 0.0f);
  const std::size_t half = taps.size() / 2;
  for (std::size_t n = 0; n < nrz.size(); ++n) {
    float acc = 0.0f;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      const std::ptrdiff_t idx =
          static_cast<std::ptrdiff_t>(n + half) -
          static_cast<std::ptrdiff_t>(k);
      float v;
      if (idx < 0) {
        v = first;
      } else if (idx >= static_cast<std::ptrdiff_t>(nrz.size())) {
        v = last;
      } else {
        v = nrz[static_cast<std::size_t>(idx)];
      }
      acc += taps[k] * v;
    }
    shaped[n] = acc;
  }

  // Frequency modulation: deviation = h/2 * symbol rate.
  const double dev_hz = kModulationIndex / 2.0 * kSymbolRateHz;
  const double k_phase = 2.0 * std::numbers::pi * dev_hz / dsp::kSampleRateHz;
  dsp::SampleVec out(shaped.size());
  double phase = 0.0;
  for (std::size_t n = 0; n < shaped.size(); ++n) {
    phase += k_phase * static_cast<double>(shaped[n]);
    out[n] = dsp::cfloat(static_cast<float>(std::cos(phase)),
                         static_cast<float>(std::sin(phase)));
  }
  return out;
}

std::vector<float> FmDiscriminate(dsp::const_sample_span x) {
  if (x.size() < 2) return {};
  std::vector<float> out(x.size() - 1);
  dsp::simd::Active().phase_diff(x.data(), x.size(), out.data());
  return out;
}

void FmDiscriminateInto(dsp::const_sample_span x, std::vector<float>& out) {
  if (x.size() < 2) {
    out.clear();
    return;
  }
  out.resize(x.size() - 1);
  dsp::simd::Active().phase_diff(x.data(), x.size(), out.data());
}

util::BitVec SliceSymbols(std::span<const float> freq,
                          std::size_t first_center, std::size_t count) {
  util::BitVec bits;
  bits.reserve(count);
  const std::size_t sps = kSamplesPerSymbol;
  for (std::size_t m = 0; m < count; ++m) {
    const std::size_t center = first_center + m * sps;
    if (center + 2 > freq.size() || center < 1) break;
    // Average the 3 samples around the symbol center for noise robustness.
    const float v = freq[center - 1] + freq[center] + freq[center + 1];
    bits.push_back(v > 0.0f ? 1u : 0u);
  }
  return bits;
}

}  // namespace rfdump::phybt
