#include "rfdump/phybt/hopping.hpp"

namespace rfdump::phybt {

int HopChannel(std::uint32_t lap, std::uint32_t clk) {
  // SplitMix64-style avalanche over (lap, clk); uniform over [0, 79).
  std::uint64_t z = (static_cast<std::uint64_t>(lap) << 32) | clk;
  z = (z + 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z = z ^ (z >> 31);
  return static_cast<int>(z % kNumChannels);
}

std::optional<double> ChannelOffsetHz(int channel) {
  const int idx = channel - kFirstVisibleChannel;
  if (idx < 0 || idx >= kVisibleChannels) return std::nullopt;
  return VisibleIndexOffsetHz(idx);
}

double VisibleIndexOffsetHz(int idx) {
  return (static_cast<double>(idx) - 3.5) * kChannelWidthHz;
}

}  // namespace rfdump::phybt
