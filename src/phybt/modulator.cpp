#include "rfdump/phybt/modulator.hpp"

#include "rfdump/dsp/nco.hpp"
#include "rfdump/phybt/gfsk.hpp"
#include "rfdump/phybt/hopping.hpp"

namespace rfdump::phybt {

BtBurst ModulatePacket(const DeviceAddress& addr, const PacketHeader& header,
                       std::span<const std::uint8_t> payload,
                       std::uint32_t clk) {
  BtBurst burst;
  burst.channel = HopChannel(addr.lap, clk);
  const util::BitVec bits = BuildPacketBits(
      addr, header, payload, static_cast<std::uint8_t>(clk & 0x3F));
  burst.air_bits = bits.size();
  const auto offset = ChannelOffsetHz(burst.channel);
  if (!offset) return burst;  // hop landed outside the captured band
  burst.samples = GfskModulate(bits);
  dsp::Nco nco(*offset, dsp::kSampleRateHz);
  nco.Mix(burst.samples);
  return burst;
}

double PacketAirtimeUs(PacketType type, std::size_t payload_bytes) {
  return static_cast<double>(PacketAirBits(type, payload_bytes));
}

}  // namespace rfdump::phybt
