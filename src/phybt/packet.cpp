#include "rfdump/phybt/packet.hpp"

#include <algorithm>
#include <bit>

#include "rfdump/util/crc.hpp"

namespace rfdump::phybt {
namespace {

// BCH(64,30) generator polynomial, octal 260534236651 (Baseband 6.3.3.1),
// degree 34.
constexpr std::uint64_t kBchGenerator = 0260534236651ull;

// 64-bit pseudo-noise overlay sequence p (spec value 0x83848D96BBCC54FC,
// bit 0 transmitted first).
constexpr std::uint64_t kPnSequence = 0x83848D96BBCC54FCull;

// GF(2) polynomial remainder of info*x^34 mod g(x).
std::uint64_t BchParity(std::uint64_t info30) {
  std::uint64_t reg = info30 << 34;
  for (int bit = 63; bit >= 34; --bit) {
    if (reg & (1ull << bit)) {
      reg ^= kBchGenerator << (bit - 34);
    }
  }
  return reg;  // 34-bit remainder
}

}  // namespace

const char* PacketTypeName(PacketType t) {
  switch (t) {
    case PacketType::kNull: return "NULL";
    case PacketType::kPoll: return "POLL";
    case PacketType::kDh1: return "DH1";
    case PacketType::kDh3: return "DH3";
    case PacketType::kDh5: return "DH5";
  }
  return "?";
}

std::size_t SlotsFor(PacketType t) {
  switch (t) {
    case PacketType::kDh3: return 3;
    case PacketType::kDh5: return 5;
    default: return 1;
  }
}

std::size_t MaxPayloadBytes(PacketType t) {
  switch (t) {
    case PacketType::kDh1: return 27;
    case PacketType::kDh3: return 183;
    case PacketType::kDh5: return 339;
    default: return 0;
  }
}

std::size_t PayloadHeaderBytes(PacketType t) {
  switch (t) {
    case PacketType::kDh1: return 1;
    case PacketType::kDh3:
    case PacketType::kDh5: return 2;
    default: return 0;
  }
}

std::uint64_t SyncWord(std::uint32_t lap) {
  lap &= 0xFFFFFF;
  // 30-bit info: LAP plus 6-bit appendix (Barker extension): 001101 if the
  // LAP MSB is 0, 110010 otherwise (appendix occupies the high bits).
  const std::uint32_t appendix = (lap & 0x800000) ? 0b110010u : 0b001101u;
  const std::uint64_t info =
      (static_cast<std::uint64_t>(appendix) << 24) | lap;
  // XOR the info with the upper 30 bits of the PN sequence before encoding.
  const std::uint64_t pn_info = (kPnSequence >> 34) & 0x3FFFFFFFull;
  const std::uint64_t x = info ^ pn_info;
  const std::uint64_t parity = BchParity(x);
  const std::uint64_t codeword = (x << 34) | parity;
  // Overlay the full PN sequence.
  return codeword ^ kPnSequence;
}

util::BitVec AccessCodeBits(std::uint32_t lap) {
  const std::uint64_t sync = SyncWord(lap);
  util::BitVec bits;
  bits.reserve(68);
  // Preamble 1010 or 0101 depending on the first sync bit (spec 6.3.1).
  const std::uint8_t first_sync = static_cast<std::uint8_t>(sync & 1u);
  for (int i = 0; i < 4; ++i) {
    bits.push_back(static_cast<std::uint8_t>((i % 2) ^ first_sync ^ 1u));
  }
  util::AppendBits(bits, util::UintToBitsLsbFirst(sync, 64));
  return bits;
}

std::optional<std::uint32_t> VerifySyncWord(std::uint64_t word,
                                            int max_errors) {
  const std::uint64_t codeword = word ^ kPnSequence;
  const std::uint64_t x = codeword >> 34;
  const std::uint32_t lap =
      static_cast<std::uint32_t>((x ^ (kPnSequence >> 34)) & 0xFFFFFF);
  if (max_errors <= 0) {
    // Exact parity check.
    const std::uint64_t parity = codeword & 0x3FFFFFFFFull;
    if (BchParity(x) != parity) return std::nullopt;
    return lap;
  }
  // Tolerant check: re-encode the candidate LAP and compare Hamming distance
  // (the code's minimum distance of 14 makes wrong-LAP acceptance unlikely).
  const std::uint64_t expected = SyncWord(lap);
  if (std::popcount(expected ^ word) > max_errors) return std::nullopt;
  return lap;
}

util::BitVec WhiteningSequence(std::uint8_t clk6, std::size_t n) {
  // 7-bit LFSR, polynomial x^7 + x^4 + 1; seed = 1 in bit 6, clk6 in bits 5..0.
  std::uint8_t state =
      static_cast<std::uint8_t>(0x40u | (clk6 & 0x3Fu));
  util::BitVec seq(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t out = static_cast<std::uint8_t>((state >> 6) & 1u);
    seq[i] = out;
    const std::uint8_t fb =
        static_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1u);
    state = static_cast<std::uint8_t>(((state << 1) | fb) & 0x7F);
  }
  return seq;
}

namespace {

util::BitVec HeaderBits18(const PacketHeader& h, std::uint8_t uap) {
  util::BitVec bits;
  bits.reserve(18);
  util::AppendBits(bits, util::UintToBitsLsbFirst(h.lt_addr & 0x7u, 3));
  util::AppendBits(bits, util::UintToBitsLsbFirst(
                             static_cast<std::uint8_t>(h.type) & 0xFu, 4));
  bits.push_back(h.flow ? 1u : 0u);
  bits.push_back(h.arqn ? 1u : 0u);
  bits.push_back(h.seqn ? 1u : 0u);
  const std::uint8_t hec = util::BluetoothHec(bits, uap);
  util::AppendBits(bits, util::UintToBitsLsbFirst(hec, 8));
  return bits;
}

util::BitVec Fec13Encode(std::span<const std::uint8_t> bits) {
  util::BitVec out;
  out.reserve(bits.size() * 3);
  for (std::uint8_t b : bits) {
    out.push_back(b);
    out.push_back(b);
    out.push_back(b);
  }
  return out;
}

util::BitVec Fec13Decode(std::span<const std::uint8_t> bits) {
  util::BitVec out(bits.size() / 3);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int votes = bits[3 * i] + bits[3 * i + 1] + bits[3 * i + 2];
    out[i] = (votes >= 2) ? 1u : 0u;
  }
  return out;
}

util::BitVec PayloadSectionBits(PacketType type,
                                std::span<const std::uint8_t> payload,
                                std::uint8_t uap) {
  util::BitVec bits;
  // Payload header: LLID(2)=10 (start of L2CAP), FLOW(1)=1, LENGTH(9 or 5).
  const std::size_t hdr_bytes = PayloadHeaderBytes(type);
  if (hdr_bytes == 1) {
    std::uint8_t ph = 0b01u;                      // LLID
    ph |= 1u << 2;                                // FLOW
    ph |= static_cast<std::uint8_t>(payload.size() << 3);  // LENGTH (5 bits)
    util::AppendBits(bits, util::UintToBitsLsbFirst(ph, 8));
  } else {
    std::uint16_t ph = 0b01u;
    ph |= 1u << 2;
    ph |= static_cast<std::uint16_t>(payload.size() << 3);  // LENGTH (9 bits)
    util::AppendBits(bits, util::UintToBitsLsbFirst(ph, 16));
  }
  util::AppendBits(bits, util::BytesToBitsLsbFirst(payload));
  // CRC-16 CCITT over payload header + payload, init = UAP in the high byte
  // (spec 7.1.4 uses UAP << 8).
  const std::uint16_t crc = util::Crc16CcittBits(
      bits, static_cast<std::uint16_t>(uap) << 8);
  util::AppendBits(bits, util::UintToBitsLsbFirst(crc, 16));
  return bits;
}

}  // namespace

util::BitVec BuildPacketBits(const DeviceAddress& addr,
                             const PacketHeader& header,
                             std::span<const std::uint8_t> payload,
                             std::uint8_t clk6) {
  util::BitVec air = AccessCodeBits(addr.lap);
  // Header: 18 bits -> FEC 1/3 -> 54 bits, then whitened.
  util::BitVec protected_bits = Fec13Encode(HeaderBits18(header, addr.uap));
  if (MaxPayloadBytes(header.type) > 0 && !payload.empty()) {
    util::AppendBits(protected_bits,
                     PayloadSectionBits(header.type, payload, addr.uap));
  }
  const util::BitVec white = WhiteningSequence(clk6, protected_bits.size());
  for (std::size_t i = 0; i < protected_bits.size(); ++i) {
    protected_bits[i] ^= white[i];
  }
  util::AppendBits(air, protected_bits);
  return air;
}

std::size_t PacketAirBits(PacketType t, std::size_t payload_bytes) {
  std::size_t bits = 68 + 54;
  if (MaxPayloadBytes(t) > 0 && payload_bytes > 0) {
    bits += (PayloadHeaderBytes(t) + payload_bytes + 2) * 8;
  }
  return bits;
}

std::optional<ParsedPacket> ParsePacketBits(
    std::span<const std::uint8_t> bits, std::uint8_t expected_uap) {
  if (bits.size() < 54) return std::nullopt;
  // Brute-force the whitening seed; accept when the HEC validates against the
  // expected UAP (a real passive monitor also iterates candidate UAPs; our
  // experiments know the UAP, which only changes the constant factor).
  for (std::uint8_t clk6 = 0; clk6 < 64; ++clk6) {
    const util::BitVec white = WhiteningSequence(clk6, bits.size());
    util::BitVec unwhitened(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      unwhitened[i] = bits[i] ^ white[i];
    }
    const util::BitVec hdr = Fec13Decode(
        std::span<const std::uint8_t>(unwhitened).first(54));
    const std::uint8_t hec = util::BluetoothHec(
        std::span<const std::uint8_t>(hdr).first(10), expected_uap);
    const std::uint8_t rx_hec = static_cast<std::uint8_t>(
        util::BitsToUintLsbFirst(std::span<const std::uint8_t>(hdr)
                                     .subspan(10, 8)));
    if (hec != rx_hec) continue;
    // Reject seeds whose HEC collides but whose TYPE field is not a packet
    // type we model (the 8-bit HEC alone lets ~1 in 4 wrong seeds through).
    const auto type_val = util::BitsToUintLsbFirst(
        std::span<const std::uint8_t>(hdr).subspan(3, 4));
    switch (static_cast<PacketType>(type_val)) {
      case PacketType::kNull:
      case PacketType::kPoll:
      case PacketType::kDh1:
      case PacketType::kDh3:
      case PacketType::kDh5:
        break;
      default:
        continue;
    }

    ParsedPacket pkt;
    pkt.clk6 = clk6;
    pkt.uap = expected_uap;
    pkt.header.lt_addr = static_cast<std::uint8_t>(
        util::BitsToUintLsbFirst(std::span<const std::uint8_t>(hdr).first(3)));
    pkt.header.type = static_cast<PacketType>(util::BitsToUintLsbFirst(
        std::span<const std::uint8_t>(hdr).subspan(3, 4)));
    pkt.header.flow = hdr[7];
    pkt.header.arqn = hdr[8];
    pkt.header.seqn = hdr[9];

    // Payload section, if the type carries one and bits are available.
    const std::size_t ph_bytes = PayloadHeaderBytes(pkt.header.type);
    if (ph_bytes > 0 && unwhitened.size() >= 54 + ph_bytes * 8) {
      const auto body = std::span<const std::uint8_t>(unwhitened).subspan(54);
      std::size_t length = 0;
      if (ph_bytes == 1) {
        const auto ph = util::BitsToUintLsbFirst(body.first(8));
        length = (ph >> 3) & 0x1F;
      } else {
        const auto ph = util::BitsToUintLsbFirst(body.first(16));
        length = (ph >> 3) & 0x1FF;
      }
      const std::size_t section_bits = (ph_bytes + length + 2) * 8;
      if (length <= MaxPayloadBytes(pkt.header.type) &&
          body.size() >= section_bits) {
        const std::uint16_t crc = util::Crc16CcittBits(
            body.first((ph_bytes + length) * 8),
            static_cast<std::uint16_t>(expected_uap) << 8);
        const std::uint16_t rx_crc = static_cast<std::uint16_t>(
            util::BitsToUintLsbFirst(
                body.subspan((ph_bytes + length) * 8, 16)));
        pkt.crc_ok = (crc == rx_crc);
        const auto payload_bits = body.subspan(ph_bytes * 8, length * 8);
        pkt.payload = util::BitsToBytesLsbFirst(payload_bits);
      }
    }
    return pkt;
  }
  return std::nullopt;
}

}  // namespace rfdump::phybt
