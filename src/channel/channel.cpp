#include "rfdump/channel/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rfdump/dsp/db.hpp"
#include "rfdump/dsp/energy.hpp"

namespace rfdump::channel {

using rfdump::dsp::cfloat;

void AddAwgn(rfdump::dsp::sample_span io, double noise_power,
             rfdump::util::Xoshiro256& rng) {
  if (noise_power <= 0.0) return;
  const double sigma = std::sqrt(noise_power / 2.0);
  for (auto& s : io) {
    s += cfloat(static_cast<float>(rng.Gaussian(0.0, sigma)),
                static_cast<float>(rng.Gaussian(0.0, sigma)));
  }
}

void ScaleToPower(rfdump::dsp::sample_span io, double target_power) {
  const double p = rfdump::dsp::MeanPower(io);
  if (p <= 0.0) return;
  const float scale = static_cast<float>(std::sqrt(target_power / p));
  for (auto& s : io) s *= scale;
}

void ApplyFrequencyOffset(rfdump::dsp::sample_span io, double offset_hz,
                          double sample_rate, std::int64_t start_sample) {
  const double step = 2.0 * std::numbers::pi * offset_hz / sample_rate;
  for (std::size_t i = 0; i < io.size(); ++i) {
    const double phase =
        step * static_cast<double>(start_sample + static_cast<std::int64_t>(i));
    io[i] *= cfloat(static_cast<float>(std::cos(phase)),
                    static_cast<float>(std::sin(phase)));
  }
}

Multipath::Multipath(std::vector<Tap> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("Multipath needs >= 1 tap");
  double power = 0.0;
  for (const Tap& t : taps_) power += std::norm(t.gain);
  if (power <= 0.0) throw std::invalid_argument("Multipath taps are all zero");
  const float scale = static_cast<float>(1.0 / std::sqrt(power));
  for (Tap& t : taps_) t.gain *= scale;
}

rfdump::dsp::SampleVec Multipath::Apply(
    rfdump::dsp::const_sample_span input) const {
  std::size_t max_delay = 0;
  for (const Tap& t : taps_) max_delay = std::max(max_delay, t.delay_samples);
  rfdump::dsp::SampleVec out(input.size() + max_delay, cfloat{0.0f, 0.0f});
  for (const Tap& t : taps_) {
    for (std::size_t i = 0; i < input.size(); ++i) {
      out[i + t.delay_samples] += t.gain * input[i];
    }
  }
  return out;
}

void Quantize(rfdump::dsp::sample_span io, unsigned bits, float full_scale) {
  if (bits == 0 || bits > 24 || full_scale <= 0.0f) {
    throw std::invalid_argument("Quantize: bits in [1,24], full_scale > 0");
  }
  const float levels = static_cast<float>((1u << (bits - 1)) - 1);
  const auto q = [&](float v) {
    v = std::clamp(v, -full_scale, full_scale);
    return std::round(v / full_scale * levels) * full_scale / levels;
  };
  for (auto& s : io) s = cfloat(q(s.real()), q(s.imag()));
}

double NoisePowerForSnr(double signal_power, double snr_db) {
  return signal_power / rfdump::dsp::DbToPower(snr_db);
}

}  // namespace rfdump::channel
