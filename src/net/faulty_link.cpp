#include "rfdump/net/faulty_link.hpp"

#include <algorithm>
#include <cstdio>

namespace rfdump::net {

const char* LinkFaultKindName(LinkFaultKind kind) {
  switch (kind) {
    case LinkFaultKind::kDrop: return "drop";
    case LinkFaultKind::kDuplicate: return "duplicate";
    case LinkFaultKind::kReorder: return "reorder";
    case LinkFaultKind::kCorrupt: return "corrupt";
    case LinkFaultKind::kPartition: return "partition";
  }
  return "?";
}

FaultyLink::FaultyLink(Config config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {}

bool FaultyLink::Partitioned(std::int64_t tick) const {
  for (const auto& w : config_.partitions) {
    if (tick >= w.begin && tick < w.end) return true;
  }
  return false;
}

void FaultyLink::Send(std::vector<std::uint8_t> frame) {
  const std::uint64_t send_index = sends_++;
  if (Partitioned(now_)) {
    faults_.push_back(
        {LinkFaultKind::kPartition, now_, send_index, frame.size()});
    return;
  }
  std::int64_t delay = config_.base_delay_ticks;
  if (config_.jitter_ticks > 0 && !lossless_) {
    delay += static_cast<std::int64_t>(
        rng_.UniformInt(0, static_cast<std::uint64_t>(config_.jitter_ticks)));
  }
  if (!lossless_) {
    if (rng_.UniformDouble() < config_.drop_rate) {
      faults_.push_back(
          {LinkFaultKind::kDrop, now_, send_index, frame.size()});
      return;
    }
    if (rng_.UniformDouble() < config_.corrupt_rate && !frame.empty()) {
      const auto flips = rng_.UniformInt(
          1, static_cast<std::uint64_t>(std::max(config_.corrupt_max_bytes, 1)));
      for (std::uint64_t i = 0; i < flips; ++i) {
        const auto at = rng_.UniformInt(0, frame.size() - 1);
        frame[at] ^= static_cast<std::uint8_t>(rng_.UniformInt(1, 255));
      }
      faults_.push_back(
          {LinkFaultKind::kCorrupt, now_, send_index, frame.size()});
    }
    if (rng_.UniformDouble() < config_.reorder_rate) {
      delay += static_cast<std::int64_t>(rng_.UniformInt(
          1, static_cast<std::uint64_t>(std::max(config_.reorder_max_ticks, 1))));
      faults_.push_back(
          {LinkFaultKind::kReorder, now_, send_index, frame.size()});
    }
    if (rng_.UniformDouble() < config_.duplicate_rate) {
      faults_.push_back(
          {LinkFaultKind::kDuplicate, now_, send_index, frame.size()});
      queue_.push_back({now_ + delay + 1, order_++, send_index, frame});
    }
  }
  queue_.push_back({now_ + delay, order_++, send_index, std::move(frame)});
}

std::vector<std::vector<std::uint8_t>> FaultyLink::Advance(std::int64_t tick) {
  now_ = std::max(now_, tick);
  std::sort(queue_.begin(), queue_.end(),
            [](const InFlight& a, const InFlight& b) {
              return a.due != b.due ? a.due < b.due : a.order < b.order;
            });
  std::vector<std::vector<std::uint8_t>> out;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    InFlight& f = queue_[i];
    if (f.due > now_) {
      // Shift only into a slot a delivery freed: kept == i would be a
      // self-move-assignment, which empties the held frame's bytes.
      if (kept != i) queue_[kept] = std::move(f);
      ++kept;
      continue;
    }
    if (Partitioned(f.due)) {
      // Came due while the link was down: lost, not delayed — a partition
      // is a cable pull, not a buffer.
      faults_.push_back(
          {LinkFaultKind::kPartition, f.due, f.send_index, f.frame.size()});
      continue;
    }
    ++delivered_;
    out.push_back(std::move(f.frame));
  }
  queue_.resize(kept);
  return out;
}

std::string FaultyLink::FaultLogJson() const {
  std::string out = "[\n";
  char buf[160];
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const auto& f = faults_[i];
    std::snprintf(buf, sizeof(buf),
                  "  {\"kind\": \"%s\", \"tick\": %lld, \"send_index\": %llu, "
                  "\"bytes\": %zu}%s\n",
                  LinkFaultKindName(f.kind), static_cast<long long>(f.tick),
                  static_cast<unsigned long long>(f.send_index), f.bytes,
                  i + 1 < faults_.size() ? "," : "");
    out += buf;
  }
  out += "]\n";
  return out;
}

}  // namespace rfdump::net
