#include "rfdump/net/transport.hpp"

namespace rfdump::net {

const char* TransportStateName(Transport::State state) {
  switch (state) {
    case Transport::State::kConnecting: return "connecting";
    case Transport::State::kConnected: return "connected";
    case Transport::State::kClosed: return "closed";
  }
  return "?";
}

bool LinkTransport::Send(std::span<const std::uint8_t> frame) {
  if (closed_) {
    ++stats_.send_rejects;
    return false;
  }
  ++stats_.frames_accepted;
  stats_.bytes_sent += frame.size();
  tx_.Send(std::vector<std::uint8_t>(frame.begin(), frame.end()));
  return true;
}

void LinkTransport::Poll(std::int64_t tick,
                         std::vector<std::uint8_t>& received) {
  if (closed_) return;
  for (const auto& frame : rx_.Advance(tick)) {
    stats_.bytes_received += frame.size();
    received.insert(received.end(), frame.begin(), frame.end());
  }
}

}  // namespace rfdump::net
