#include "rfdump/net/endpoint.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace rfdump::net {

// ----------------------------------------------------- SensorEndpoint

namespace {

void AccumulateStats(Transport::Stats& into, const Transport::Stats& from) {
  into.frames_accepted += from.frames_accepted;
  into.send_rejects += from.send_rejects;
  into.bytes_sent += from.bytes_sent;
  into.bytes_received += from.bytes_received;
  into.partial_writes += from.partial_writes;
  into.partial_reads += from.partial_reads;
  into.eintr_retries += from.eintr_retries;
  into.eagain_yields += from.eagain_yields;
  into.resets += from.resets;
  into.connect_timeouts += from.connect_timeouts;
  into.send_buffer_peak =
      std::max(into.send_buffer_peak, from.send_buffer_peak);
}

}  // namespace

void SensorEndpoint::DropTransportLocked() {
  AccumulateStats(closed_totals_, transport_->stats());
  transport_.reset();
  ++stats_.transport_down;
  session_.OnTransportDown();
}

void SensorEndpoint::Pump(std::int64_t tick, std::int64_t local_time) {
  session_.Tick(tick, local_time);

  // A transport that died since the last pump feeds the session's backoff
  // *before* the dial decision, so this tick never redials a dead link.
  if (transport_ && transport_->state() == Transport::State::kClosed) {
    DropTransportLocked();
  }
  if (!transport_ && session_.state() != SensorSession::State::kBackoff) {
    transport_ = dial_(tick);
    if (transport_) ++stats_.dials;
  }

  if (!transport_) {
    // Backoff (or a failed dial): outbound frames have nowhere to go.
    // Dropping them here is safe — data frames live in the retransmit
    // ring, control frames regenerate on their own cadence.
    stats_.send_rejects += session_.TakeOutbound().size();
    return;
  }

  for (auto& frame : session_.TakeOutbound()) {
    if (transport_->Send(frame)) {
      ++stats_.frames_sent;
    } else {
      ++stats_.send_rejects;
    }
  }

  rx_buf_.clear();
  transport_->Poll(tick, rx_buf_);
  if (!rx_buf_.empty()) session_.HandleBytes(rx_buf_);

  if (transport_->state() == Transport::State::kClosed) {
    DropTransportLocked();
  }
}

Transport::Stats SensorEndpoint::transport_totals() const {
  Transport::Stats totals = closed_totals_;
  if (transport_) AccumulateStats(totals, transport_->stats());
  return totals;
}

// --------------------------------------------------- AggregatorServer

AggregatorServer::AggregatorServer(Config config)
    : config_(config), aggregator_(config_.aggregator) {}

void AggregatorServer::Adopt(std::unique_ptr<Transport> transport) {
  auto conn = std::make_unique<Connection>();
  conn->transport = std::move(transport);
  conn->order = next_order_++;
  conns_.push_back(std::move(conn));
  ++stats_.adopted;
}

void AggregatorServer::Ingest(Connection& conn,
                              std::span<const std::uint8_t> bytes) {
  if (conn.bound) {
    aggregator_.HandleBytes(conn.sensor_id, bytes);
    return;
  }
  // Unbound: hold the raw bytes and sniff for the first CRC-valid frame.
  // Binding replays raw (not just this slice) into the aggregator so its
  // own parser sees the identical stream, preamble garbage included —
  // parse stats stay authoritative in one place.
  conn.raw.insert(conn.raw.end(), bytes.begin(), bytes.end());
  bool found = false;
  std::uint16_t id = 0;
  conn.sniffer.Feed(bytes, [&](Frame&& frame) {
    if (!found) {
      found = true;
      id = frame.header.sensor_id;
    }
  });
  if (found) {
    conn.bound = true;
    conn.sensor_id = id;
    ++stats_.bound;
    aggregator_.HandleBytes(conn.sensor_id, conn.raw);
    conn.raw.clear();
    conn.raw.shrink_to_fit();
  } else if (conn.raw.size() > config_.max_unbound_bytes) {
    conn.transport->Close();
    ++stats_.unbound_dropped;
  }
}

void AggregatorServer::Pump(std::int64_t tick) {
  aggregator_.Tick(tick);

  if (listener_ != nullptr && listener_->listening()) {
    for (int i = 0; i < config_.max_accepts_per_pump; ++i) {
      auto t = listener_->Accept(config_.transport, tick);
      if (!t) break;
      Adopt(std::move(t));
      ++stats_.accepted;
      --stats_.adopted;  // accepted, not injected
    }
  }

  for (auto& conn : conns_) {
    rx_buf_.clear();
    conn->transport->Poll(tick, rx_buf_);
    if (!rx_buf_.empty()) Ingest(*conn, rx_buf_);
  }

  // Second tick at the same value only drains ack_due (the same pump shape
  // Fleet::Tick uses), so frames that just arrived are acked this cycle.
  aggregator_.Tick(tick);

  // Acks go to the newest live connection bound to each sensor: after a
  // reconnect both the dead and the fresh connection may briefly coexist,
  // and only the fresh one can deliver.
  std::map<std::uint16_t, Connection*> route;
  for (auto& conn : conns_) {
    if (!conn->bound ||
        conn->transport->state() == Transport::State::kClosed) {
      continue;
    }
    auto [it, inserted] = route.try_emplace(conn->sensor_id, conn.get());
    if (!inserted && conn->order > it->second->order) {
      it->second = conn.get();
    }
  }
  for (auto& [id, conn] : route) {
    for (auto& frame : aggregator_.TakeOutbound(id)) {
      if (conn->transport->Send(frame)) {
        ++stats_.ack_frames_sent;
      } else {
        ++stats_.ack_send_rejects;
      }
    }
  }
  // Sensors with no deliverable connection (mid-reconnect): drain and drop
  // their queued acks so the queue never grows across a long outage — acks
  // are cumulative and regenerate, holding stale ones helps nobody.
  for (const std::uint16_t id : aggregator_.sensor_ids()) {
    if (route.count(id) != 0) continue;
    stats_.ack_send_rejects += aggregator_.TakeOutbound(id).size();
  }

  const auto dead = std::remove_if(
      conns_.begin(), conns_.end(), [](const auto& conn) {
        return conn->transport->state() == Transport::State::kClosed;
      });
  stats_.closed += static_cast<std::uint64_t>(conns_.end() - dead);
  conns_.erase(dead, conns_.end());
}

}  // namespace rfdump::net
