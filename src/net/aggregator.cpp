#include "rfdump/net/aggregator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "rfdump/obs/obs.hpp"

namespace rfdump::net {

namespace {

struct AggMetrics {
  obs::Counter& frames_received;
  obs::Counter& corrupt_dropped;
  obs::Counter& duplicates_dropped;
  obs::Counter& events_fused;
  obs::Counter& events_merged;
  obs::Counter& gaps_applied;

  static AggMetrics& Get() {
    auto& reg = obs::Registry::Default();
    static AggMetrics m{
        reg.GetCounter("rfdump_net_frames_received_total"),
        reg.GetCounter("rfdump_net_frames_corrupt_dropped_total"),
        reg.GetCounter("rfdump_net_frames_duplicate_dropped_total"),
        reg.GetCounter("rfdump_net_events_fused_total"),
        reg.GetCounter("rfdump_net_events_merged_total"),
        reg.GetCounter("rfdump_net_gap_ranges_applied_total"),
    };
    return m;
  }
};

obs::Gauge& LivenessGauge(std::uint16_t sensor_id) {
  return obs::Registry::Default().GetGauge(
      "rfdump_net_sensor_live{sensor=\"" + std::to_string(sensor_id) + "\"}");
}

std::uint32_t FuseKey(core::Protocol protocol, std::int16_t channel) {
  return (static_cast<std::uint32_t>(protocol) << 16) |
         static_cast<std::uint16_t>(channel);
}

}  // namespace

Aggregator::Aggregator() : Aggregator(Config()) {}

Aggregator::Aggregator(Config config) : config_(config) {}

Aggregator::Sensor& Aggregator::Get(std::uint16_t sensor_id) {
  auto [it, inserted] = sensors_.try_emplace(sensor_id);
  if (inserted) {
    it->second.st.last_heard_tick = now_;
    LivenessGauge(sensor_id).Set(1.0);
  }
  return it->second;
}

bool Aggregator::Known(std::uint16_t sensor_id) const {
  return sensors_.count(sensor_id) != 0;
}

const Aggregator::SensorStatus& Aggregator::status(
    std::uint16_t sensor_id) const {
  const auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    throw std::out_of_range("unknown sensor id");
  }
  return it->second.st;
}

std::vector<std::uint16_t> Aggregator::sensor_ids() const {
  std::vector<std::uint16_t> out;
  out.reserve(sensors_.size());
  for (const auto& [id, s] : sensors_) out.push_back(id);
  return out;
}

std::size_t Aggregator::live_sensors() const {
  std::size_t n = 0;
  for (const auto& [id, s] : sensors_) {
    n += s.st.state == SensorState::kLive ? 1 : 0;
  }
  return n;
}

void Aggregator::MarkLive(std::uint16_t sensor_id, Sensor& s) {
  s.st.last_heard_tick = now_;
  if (s.st.state != SensorState::kLive) {
    s.st.state = SensorState::kLive;
    LivenessGauge(sensor_id).Set(1.0);
  }
}

void Aggregator::ObserveClock(std::uint16_t sensor_id, Sensor& s,
                              std::int64_t local_time) {
  // arrival_global - sensor_local = true_offset + link_delay; min over
  // many heartbeats converges onto true_offset + min_delay.
  const std::int64_t candidate = now_ * config_.samples_per_tick - local_time;
  if (!s.st.offset_known || candidate < s.st.clock_offset) {
    s.st.clock_offset = candidate;
    s.st.offset_known = true;
    ++s.st.offset_updates;
    if (!s.pending_align.empty()) {
      // Events that arrived before the first clock sample can align now.
      auto pending = std::move(s.pending_align);
      s.pending_align.clear();
      for (const auto& batch : pending) {
        obs::LinkedSpan align(Trc(), "agg/clock_align", batch.ctx);
        for (const auto& e : batch.events) {
          FuseEvent(sensor_id, e, s.st.clock_offset, align.context());
        }
      }
    }
  }
}

void Aggregator::ApplyMetrics(Sensor& s, const MetricsMsg& msg) {
  // Snapshots carry absolute values, so last-write-wins by name is immune
  // to drops and duplicates; the snapshot_id gate rejects reordered stale
  // snapshots so a delayed old frame can't roll a metric backwards.
  if (msg.snapshot_id <= s.st.metrics_snapshot_id) {
    ++s.st.metrics_stale_dropped;
    return;
  }
  s.st.metrics_snapshot_id = msg.snapshot_id;
  ++s.st.metrics_snapshots_applied;
  for (const auto& e : msg.entries) s.metrics[e.name] = e;
}

bool Aggregator::DeclaredLost(const Sensor& s, std::uint32_t seq) const {
  for (const auto& r : s.declared_lost) {
    if (seq >= r.first && seq <= r.last) return true;
  }
  return false;
}

void Aggregator::HandleBytes(std::uint16_t sensor_id,
                             std::span<const std::uint8_t> bytes) {
  Sensor& s = Get(sensor_id);
  obs::LinkedSpan parse_span(Trc(), "agg/parse", {});
  s.parser.Feed(bytes, [&](Frame&& frame) {
    if (frame.header.sensor_id != sensor_id) return;  // misrouted
    AggMetrics::Get().frames_received.Inc();
    MarkLive(sensor_id, s);
    s.ack_due = true;

    if (!IsDataFrame(frame.header.type)) {
      switch (frame.header.type) {
        case FrameType::kHello: {
          if (const auto hello = HelloMsg::Decode(frame.payload)) {
            if (hello->epoch > s.st.epoch) {
              if (s.st.epoch != 0) {
                // Reconnect churn drains trust a little.
                s.st.trust = std::max(
                    0.0, s.st.trust - config_.trust_reconnect_penalty);
              }
              s.st.epoch = hello->epoch;
            }
            ObserveClock(sensor_id, s, hello->local_time);
          }
          break;
        }
        case FrameType::kHeartbeat: {
          if (const auto hb = HeartbeatMsg::Decode(frame.payload)) {
            ObserveClock(sensor_id, s, hb->local_time);
          }
          break;
        }
        case FrameType::kMetrics: {
          if (const auto metrics = MetricsMsg::Decode(frame.payload)) {
            ApplyMetrics(s, *metrics);
          }
          break;
        }
        default:
          break;  // acks never arrive on the uplink
      }
      return;
    }

    // Sequenced data path: duplicate discard, reorder buffer, in-order
    // delivery with explicit gap application.
    const std::uint32_t seq = frame.header.seq;
    if (seq == 0 || seq <= s.st.cum_seq) {
      ++s.st.duplicates_dropped;
      AggMetrics::Get().duplicates_dropped.Inc();
      return;
    }
    // Cumulative gap lists are processed on receipt, not in order: the
    // ranges a gap report describes are exactly the holes that would keep
    // it stuck in the reorder buffer forever.
    if (frame.header.type == FrameType::kGapReport) {
      if (const auto gap = GapReportMsg::Decode(frame.payload)) {
        obs::LinkedSpan apply(Trc(), "agg/apply_gap", gap->ctx);
        s.declared_lost = gap->lost;
      }
    }
    if (s.reorder.size() >= config_.reorder_buffer &&
        s.reorder.find(seq) == s.reorder.end()) {
      // Full: drop the newest (largest) buffered seq — the sensor's RTO
      // will offer it again; dropping the oldest would stall the drain.
      auto last = std::prev(s.reorder.end());
      if (last->first > seq) {
        s.reorder.erase(last);
        ++s.st.reorder_overflow;
      } else {
        ++s.st.reorder_overflow;
        return;
      }
    }
    // A seq already waiting in the reorder buffer is just as much a
    // duplicate as one below the cumulative watermark — count it.
    if (seq != s.st.cum_seq + 1) {
      obs::LinkedSpan reorder_span(Trc(), "agg/reorder", {});
    }
    const auto [rit, inserted] = s.reorder.emplace(seq, std::move(frame));
    if (!inserted) {
      ++s.st.duplicates_dropped;
      AggMetrics::Get().duplicates_dropped.Inc();
      return;
    }
    DrainLocked(sensor_id, s);
  });

  // Parser rejections since the last call belong to this sensor's link. A
  // corrupt frame is caught by the trailer CRC when the damage hit the
  // payload and by the header checksum when it hit the header — both are
  // the same event from the aggregator's point of view: a frame the link
  // damaged and the parser refused.
  const std::uint64_t crc_now =
      s.parser.stats().bad_crc + s.parser.stats().bad_header_checksum;
  if (crc_now > s.parser_crc_seen) {
    const std::uint64_t delta = crc_now - s.parser_crc_seen;
    s.st.corrupt_dropped += delta;
    AggMetrics::Get().corrupt_dropped.Inc(delta);
    s.parser_crc_seen = crc_now;
  }
}

void Aggregator::DrainLocked(std::uint16_t sensor_id, Sensor& s) {
  while (true) {
    const std::uint32_t next = s.st.cum_seq + 1;
    const auto it = s.reorder.find(next);
    if (it != s.reorder.end()) {
      DeliverLocked(sensor_id, s, it->second);
      s.reorder.erase(it);
      s.st.cum_seq = next;
      continue;
    }
    if (DeclaredLost(s, next)) {
      // The sensor gave up on this frame: advance past it and record the
      // loss. Never silently — lost_applied is the fleet's gap ledger.
      if (!s.st.lost_applied.empty() &&
          s.st.lost_applied.back().last + 1 == next) {
        s.st.lost_applied.back().last = next;
      } else {
        s.st.lost_applied.push_back({next, next});
        s.st.trust =
            std::max(0.0, s.st.trust - config_.trust_gap_penalty);
      }
      AggMetrics::Get().gaps_applied.Inc();
      s.st.cum_seq = next;
      continue;
    }
    break;
  }
}

void Aggregator::DeliverLocked(std::uint16_t sensor_id, Sensor& s,
                               const Frame& frame) {
  ++s.st.frames_delivered;
  s.st.trust = std::min(1.0, s.st.trust + config_.trust_recovery);
  switch (frame.header.type) {
    case FrameType::kEventBatch: {
      const auto batch = EventBatchMsg::Decode(frame.payload);
      if (!batch) return;
      FuseBatch(sensor_id, s, *batch);
      break;
    }
    case FrameType::kHealth: {
      if (const auto health = HealthMsg::Decode(frame.payload)) {
        obs::LinkedSpan span(Trc(), "agg/health", health->ctx);
        s.st.health.push_back(health->report);
      }
      break;
    }
    case FrameType::kGapReport:
      break;  // already applied on receipt
    default:
      break;
  }
}

void Aggregator::FuseBatch(std::uint16_t sensor_id, Sensor& s,
                           const EventBatchMsg& batch) {
  // The fuse span continues the trace the sensor's publish span started —
  // this is the sensor->aggregator link the merged fleet trace shows.
  obs::LinkedSpan span(Trc(), "agg/fuse", batch.ctx);
  s.st.events_received += batch.events.size();
  if (s.st.trust < config_.trust_floor) {
    s.st.events_held_untrusted += batch.events.size();
    return;
  }
  if (!s.st.offset_known) {
    s.pending_align.push_back(batch);
    return;
  }
  for (const auto& e : batch.events) {
    FuseEvent(sensor_id, e, s.st.clock_offset, span.context());
  }
}

void Aggregator::FuseEvent(std::uint16_t sensor_id, const EventRecord& e,
                           std::int64_t offset,
                           const obs::TraceContext& parent) {
  obs::LinkedSpan span(Trc(), "agg/dedup", parent);
  FusedEvent f;
  f.protocol = e.protocol;
  f.channel = e.channel;
  f.start = e.start_sample + offset;
  f.end = e.end_sample + offset;
  f.payload_bytes = e.payload_bytes;
  f.crc_ok = e.crc_ok;
  f.payload_digest = e.payload_digest;
  if (sensor_id < 32) f.sensor_mask = 1u << sensor_id;
  f.witnesses = 1;
  // The differential oracle's clustering rule, cross-sensor: same protocol
  // and channel, aligned starts within the slack window => one over-the-air
  // transmission. The index narrows candidates to that window; among them,
  // merge into the closest-aligned start.
  auto& starts = fuse_index_[FuseKey(f.protocol, f.channel)];
  const auto lo = starts.lower_bound(f.start - config_.dedup_slack_samples);
  const auto hi = starts.upper_bound(f.start + config_.dedup_slack_samples);
  auto best = hi;
  std::int64_t best_dist = config_.dedup_slack_samples + 1;
  for (auto it = lo; it != hi; ++it) {
    const std::int64_t dist = std::llabs(it->first - f.start);
    if (dist < best_dist) {
      best_dist = dist;
      best = it;
    }
  }
  if (best != hi) {
    FusedEvent& tgt = fused_[best->second];
    tgt.sensor_mask |= f.sensor_mask;
    ++tgt.witnesses;
    tgt.end = std::max(tgt.end, f.end);
    // Prefer the CRC-clean witness's metadata.
    if (!tgt.crc_ok && f.crc_ok) {
      tgt.crc_ok = true;
      tgt.payload_bytes = f.payload_bytes;
      tgt.payload_digest = f.payload_digest;
    }
    ++merges_;
    AggMetrics::Get().events_merged.Inc();
    return;
  }
  starts.emplace(f.start, fused_.size());
  fused_.push_back(f);
  AggMetrics::Get().events_fused.Inc();
  if (config_.max_fused_history != 0 &&
      fused_.size() > config_.max_fused_history) {
    PruneFused();
  }
}

void Aggregator::PruneFused() {
  // Drop the oldest quarter in one go so the erase + index rebuild
  // amortizes to O(1) per fused event instead of firing on every append.
  const std::size_t keep =
      config_.max_fused_history - config_.max_fused_history / 4;
  const std::size_t drop = fused_.size() - keep;
  fused_.erase(fused_.begin(),
               fused_.begin() + static_cast<std::ptrdiff_t>(drop));
  fused_pruned_ += drop;
  fuse_index_.clear();
  for (std::size_t i = 0; i < fused_.size(); ++i) {
    fuse_index_[FuseKey(fused_[i].protocol, fused_[i].channel)].emplace(
        fused_[i].start, i);
  }
}

void Aggregator::Tick(std::int64_t tick) {
  now_ = std::max(now_, tick);
  for (auto& [id, s] : sensors_) {
    if (s.st.state == SensorState::kLive &&
        now_ - s.st.last_heard_tick > config_.liveness_timeout_ticks) {
      s.st.state = SensorState::kDegraded;
      ++s.st.degraded_transitions;
      LivenessGauge(id).Set(0.0);
    }
    if (s.ack_due) {
      s.ack_due = false;
      AckMsg ack{s.st.cum_seq, s.st.epoch};
      FrameHeader h;
      h.type = FrameType::kAck;
      h.sensor_id = id;
      const auto payload = ack.Encode();
      s.outbound.push_back(EncodeFrame(h, payload));
    }
  }
}

std::vector<std::vector<std::uint8_t>> Aggregator::TakeOutbound(
    std::uint16_t sensor_id) {
  const auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) return {};
  return std::exchange(it->second.outbound, {});
}

const ParseStats& Aggregator::parse_stats(std::uint16_t sensor_id) const {
  const auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    throw std::out_of_range("unknown sensor id");
  }
  return it->second.parser.stats();
}

std::vector<MetricEntry> Aggregator::federated(std::uint16_t sensor_id) const {
  const auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) return {};
  std::vector<MetricEntry> out;
  out.reserve(it->second.metrics.size());
  for (const auto& [name, e] : it->second.metrics) out.push_back(e);
  return out;
}

std::string Aggregator::FederatedExposition() const {
  using obs::MetricKind;
  obs::ExpositionBuilder b;
  for (const auto& [id, s] : sensors_) {
    const std::string sid = std::to_string(id);
    // Sensor-shipped metrics, re-labeled per sensor (DESIGN.md §13).
    for (const auto& [name, e] : s.metrics) {
      b.Add(obs::WithLabel(e.name, "sensor", sid),
            e.kind == 0 ? MetricKind::kCounter : MetricKind::kGauge, e.value);
    }
    // Aggregator-native view of the same sensor.
    const auto gauge = [&](const char* name, double v) {
      b.Add(obs::WithLabel(name, "sensor", sid), MetricKind::kGauge, v);
    };
    const auto counter = [&](const char* name, double v) {
      b.Add(obs::WithLabel(name, "sensor", sid), MetricKind::kCounter, v);
    };
    gauge("rfdump_agg_sensor_live",
          s.st.state == SensorState::kLive ? 1.0 : 0.0);
    gauge("rfdump_agg_sensor_trust", s.st.trust);
    gauge("rfdump_agg_sensor_epoch", static_cast<double>(s.st.epoch));
    gauge("rfdump_agg_sensor_cum_seq", static_cast<double>(s.st.cum_seq));
    gauge("rfdump_agg_sensor_reorder_depth",
          static_cast<double>(s.reorder.size()));
    gauge("rfdump_agg_sensor_last_heard_age_ticks",
          static_cast<double>(now_ - s.st.last_heard_tick));
    if (s.st.offset_known) {
      gauge("rfdump_agg_sensor_clock_offset_samples",
            static_cast<double>(s.st.clock_offset));
    }
    counter("rfdump_agg_sensor_clock_offset_updates_total",
            static_cast<double>(s.st.offset_updates));
    counter("rfdump_agg_sensor_frames_delivered_total",
            static_cast<double>(s.st.frames_delivered));
    counter("rfdump_agg_sensor_duplicates_dropped_total",
            static_cast<double>(s.st.duplicates_dropped));
    counter("rfdump_agg_sensor_corrupt_dropped_total",
            static_cast<double>(s.st.corrupt_dropped));
    counter("rfdump_agg_sensor_reorder_overflow_total",
            static_cast<double>(s.st.reorder_overflow));
    counter("rfdump_agg_sensor_events_received_total",
            static_cast<double>(s.st.events_received));
    counter("rfdump_agg_sensor_events_held_untrusted_total",
            static_cast<double>(s.st.events_held_untrusted));
    counter("rfdump_agg_sensor_degraded_transitions_total",
            static_cast<double>(s.st.degraded_transitions));
    counter("rfdump_agg_sensor_gap_ranges_applied_total",
            static_cast<double>(s.st.lost_applied.size()));
    counter("rfdump_agg_sensor_metrics_snapshots_total",
            static_cast<double>(s.st.metrics_snapshots_applied));
    counter("rfdump_agg_sensor_metrics_stale_dropped_total",
            static_cast<double>(s.st.metrics_stale_dropped));
    const ParseStats& p = s.parser.stats();
    counter("rfdump_agg_sensor_frames_parsed_total",
            static_cast<double>(p.frames_ok));
    counter("rfdump_agg_sensor_parse_bad_crc_total",
            static_cast<double>(p.bad_crc + p.bad_header_checksum));
    counter("rfdump_agg_sensor_parse_bad_magic_bytes_total",
            static_cast<double>(p.bad_magic_bytes));
  }
  // Fleet-wide fusion totals.
  b.Add("rfdump_agg_live_sensors", MetricKind::kGauge,
        static_cast<double>(live_sensors()));
  b.Add("rfdump_agg_fused_events", MetricKind::kGauge,
        static_cast<double>(fused_.size()));
  b.Add("rfdump_agg_fused_merges_total", MetricKind::kCounter,
        static_cast<double>(merges_));
  b.Add("rfdump_agg_fused_pruned_total", MetricKind::kCounter,
        static_cast<double>(fused_pruned_));
  return b.Text();
}

}  // namespace rfdump::net
