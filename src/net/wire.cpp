#include "rfdump/net/wire.hpp"

#include <cstring>

#include "rfdump/util/crc.hpp"

namespace rfdump::net {

namespace {

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Low 16 bits of CRC32 over the 16 header bytes with the checksum field
/// (offset 6-7) treated as zero.
std::uint16_t HeaderCheck(const std::uint8_t* h) {
  std::uint8_t tmp[kFrameHeaderBytes];
  std::memcpy(tmp, h, kFrameHeaderBytes);
  tmp[6] = 0;
  tmp[7] = 0;
  return static_cast<std::uint16_t>(util::Crc32({tmp, kFrameHeaderBytes}) &
                                    0xFFFF);
}

bool KnownType(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kHello:
    case FrameType::kHeartbeat:
    case FrameType::kAck:
    case FrameType::kMetrics:
    case FrameType::kEventBatch:
    case FrameType::kHealth:
    case FrameType::kGapReport:
      return true;
  }
  return false;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kAck: return "ack";
    case FrameType::kMetrics: return "metrics";
    case FrameType::kEventBatch: return "event-batch";
    case FrameType::kHealth: return "health";
    case FrameType::kGapReport: return "gap-report";
  }
  return "?";
}

bool IsDataFrame(FrameType type) {
  return static_cast<std::uint8_t>(type) >= 16;
}

std::vector<std::uint8_t> EncodeFrame(const FrameHeader& header,
                                      std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  PutU16(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(header.type));
  PutU16(out, header.sensor_id);
  PutU16(out, 0);  // header checksum, patched below
  PutU32(out, header.seq);
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  const std::uint16_t check = HeaderCheck(out.data());
  out[6] = static_cast<std::uint8_t>(check & 0xFF);
  out[7] = static_cast<std::uint8_t>(check >> 8);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = util::Crc32({out.data(), out.size()});
  PutU32(out, crc);
  return out;
}

void FrameParser::Feed(std::span<const std::uint8_t> bytes,
                       const std::function<void(Frame&&)>& on_frame) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  std::size_t pos = 0;
  while (true) {
    // Hunt for the magic; everything skipped is noise or a damaged frame.
    while (pos + 2 <= buf_.size() && GetU16(buf_.data() + pos) != kWireMagic) {
      ++pos;
      ++stats_.bad_magic_bytes;
    }
    if (buf_.size() - pos < kFrameHeaderBytes) break;
    const std::uint8_t* h = buf_.data() + pos;
    const std::uint8_t version = h[2];
    const std::uint8_t type = h[3];
    const std::uint32_t payload_len = GetU32(h + 12);
    // Header sanity before trusting payload_len. A bad field may itself be
    // corruption inside a valid frame, so resync one byte at a time — the
    // CRC of any frame we eventually accept still has to check out.
    if (version != kWireVersion || !KnownType(type) ||
        payload_len > kMaxPayloadBytes) {
      if (version != kWireVersion) {
        ++stats_.bad_version;
      } else if (!KnownType(type)) {
        ++stats_.bad_type;
      } else {
        ++stats_.bad_length;
      }
      ++pos;
      continue;
    }
    // The header checksum must hold before payload_len is trusted: a
    // corrupted-but-plausible length would otherwise stall the parser
    // waiting for bytes that never come, swallowing every frame behind it.
    if (HeaderCheck(h) != GetU16(h + 6)) {
      ++stats_.bad_header_checksum;
      ++pos;
      continue;
    }
    const std::size_t total =
        kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
    if (buf_.size() - pos < total) break;  // wait for the rest
    const std::uint32_t want = GetU32(h + kFrameHeaderBytes + payload_len);
    const std::uint32_t got =
        util::Crc32({h, kFrameHeaderBytes + payload_len});
    if (want != got) {
      ++stats_.bad_crc;
      ++pos;
      continue;
    }
    Frame frame;
    frame.header.type = static_cast<FrameType>(type);
    frame.header.sensor_id = GetU16(h + 4);
    frame.header.seq = GetU32(h + 8);
    frame.header.payload_len = payload_len;
    frame.payload.assign(h + kFrameHeaderBytes,
                         h + kFrameHeaderBytes + payload_len);
    ++stats_.frames_ok;
    pos += total;
    on_frame(std::move(frame));
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
}

void ByteWriter::U16(std::uint16_t v) { PutU16(out_, v); }
void ByteWriter::U32(std::uint32_t v) { PutU32(out_, v); }

void ByteWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void ByteWriter::F64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Bytes(std::span<const std::uint8_t> b) {
  out_.insert(out_.end(), b.begin(), b.end());
}

bool ByteReader::Need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::U16() {
  if (!Need(2)) return 0;
  const std::uint16_t v = GetU16(data_.data() + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::U32() {
  if (!Need(4)) return 0;
  const std::uint32_t v = GetU32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::U64() {
  if (!Need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double ByteReader::F64() {
  const std::uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::uint8_t> ByteReader::Bytes(std::size_t n) {
  if (!Need(n)) return {};
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace rfdump::net
