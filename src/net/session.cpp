#include "rfdump/net/session.hpp"

#include <algorithm>
#include <utility>

#include "rfdump/obs/obs.hpp"

namespace rfdump::net {

namespace {

struct SessionMetrics {
  obs::Counter& frames_sent;
  obs::Counter& retransmits;
  obs::Counter& reconnects;
  obs::Counter& overflow_drops;

  static SessionMetrics& Get() {
    static SessionMetrics m{
        obs::Registry::Default().GetCounter("rfdump_net_frames_sent_total"),
        obs::Registry::Default().GetCounter(
            "rfdump_net_frames_retransmitted_total"),
        obs::Registry::Default().GetCounter("rfdump_net_reconnects_total"),
        obs::Registry::Default().GetCounter(
            "rfdump_net_ring_overflow_drops_total"),
    };
    return m;
  }
};

}  // namespace

SensorSession::SensorSession(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

std::uint32_t SensorSession::EnqueueDataLocked(
    FrameType type, std::span<const std::uint8_t> payload) {
  // Make room first. Overflow drops the oldest unacked frame and records
  // the loss; a GapReport's ranges are already folded into lost_, so even
  // dropping a gap frame loses no information (the next one is cumulative).
  while (ring_.size() >= config_.retransmit_ring && !ring_.empty()) {
    AddLostLocked(ring_.front().seq);
    ring_.pop_front();
    ++stats_.ring_overflow_drops;
    SessionMetrics::Get().overflow_drops.Inc();
    gap_dirty_ = true;
  }
  FrameHeader h;
  h.type = type;
  h.sensor_id = config_.sensor_id;
  h.seq = next_seq_++;
  PendingFrame pf;
  pf.seq = h.seq;
  pf.type = type;
  pf.wire = EncodeFrame(h, payload);
  pf.first_sent = now_;
  pf.last_sent = now_;
  pf.rto = config_.rto_ticks;
  outbound_.push_back(pf.wire);
  ring_.push_back(std::move(pf));
  ++stats_.frames_sent;
  SessionMetrics::Get().frames_sent.Inc();
  return h.seq;
}

void SensorSession::SendControlLocked(FrameType type,
                                      std::span<const std::uint8_t> payload) {
  FrameHeader h;
  h.type = type;
  h.sensor_id = config_.sensor_id;
  h.seq = 0;
  outbound_.push_back(EncodeFrame(h, payload));
  ++stats_.frames_sent;
  SessionMetrics::Get().frames_sent.Inc();
}

void SensorSession::AddLostLocked(std::uint32_t seq) {
  // Keep lost_ merged and ascending. Overflow of the range list itself
  // merges the two closest ranges (over-reporting loss is safe; silent loss
  // is not).
  auto it = std::lower_bound(
      lost_.begin(), lost_.end(), seq,
      [](const SeqRange& r, std::uint32_t s) { return r.last < s; });
  if (it != lost_.end() && it->first <= seq) return;  // already covered
  if (it != lost_.end() && it->first == seq + 1) {
    it->first = seq;
  } else if (it != lost_.begin() && std::prev(it)->last + 1 == seq) {
    std::prev(it)->last = seq;
  } else {
    it = lost_.insert(it, {seq, seq});
  }
  // Merge neighbours that became adjacent.
  for (std::size_t i = 1; i < lost_.size();) {
    if (lost_[i - 1].last + 1 >= lost_[i].first) {
      lost_[i - 1].last = std::max(lost_[i - 1].last, lost_[i].last);
      lost_.erase(lost_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  while (lost_.size() > config_.max_gap_ranges) {
    // Merge the two ranges with the smallest gap between them.
    std::size_t best = 1;
    std::uint32_t best_gap = ~0u;
    for (std::size_t i = 1; i < lost_.size(); ++i) {
      const std::uint32_t gap = lost_[i].first - lost_[i - 1].last;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    lost_[best - 1].last = lost_[best].last;
    lost_.erase(lost_.begin() + static_cast<std::ptrdiff_t>(best));
  }
}

void SensorSession::PublishGapReportLocked() {
  // Clear the flag before enqueueing: if the enqueue itself overflows the
  // ring, the new loss re-dirties it and the next Tick ships a fresh
  // cumulative report.
  gap_dirty_ = false;
  obs::LinkedSpan span(tracer(), "session/publish_gap_report", {});
  GapReportMsg msg;
  msg.lost = lost_;
  msg.ctx = span.context();
  const auto payload = msg.Encode();
  EnqueueDataLocked(FrameType::kGapReport, payload);
}

void SensorSession::SendMetricsLocked() {
  obs::LinkedSpan span(tracer(), "session/send_metrics", {});
  ++metrics_snapshot_id_;
  const bool full =
      config_.metrics_full_every <= 1 || metrics_snapshot_id_ == 1 ||
      (metrics_snapshot_id_ - 1) %
              static_cast<std::uint32_t>(config_.metrics_full_every) ==
          0;

  // Candidates: the session's own functional stats (always available, even
  // under RFDUMP_OBS=OFF) followed by the optional per-sensor registry.
  std::vector<MetricEntry> candidates;
  const auto counter = [&](const char* name, std::uint64_t v) {
    candidates.push_back({name, 0, static_cast<double>(v)});
  };
  const auto gauge = [&](const char* name, double v) {
    candidates.push_back({name, 1, v});
  };
  counter("rfdump_session_frames_sent_total", stats_.frames_sent);
  counter("rfdump_session_retransmits_total", stats_.retransmits);
  counter("rfdump_session_heartbeats_total", stats_.heartbeats);
  counter("rfdump_session_reconnects_total", stats_.reconnects);
  counter("rfdump_session_ring_overflow_drops_total",
          stats_.ring_overflow_drops);
  counter("rfdump_session_stale_acks_total", stats_.stale_acks);
  gauge("rfdump_session_unacked", static_cast<double>(ring_.size()));
  gauge("rfdump_session_epoch", static_cast<double>(epoch_));
  gauge("rfdump_session_acked_seq", static_cast<double>(acked_));
  if (stats_.rtt_ticks >= 0.0) {
    gauge("rfdump_session_rtt_ticks", stats_.rtt_ticks);
  }
  if (config_.metrics_registry != nullptr) {
    for (const auto& v : config_.metrics_registry->SnapshotValues()) {
      candidates.push_back({v.name, static_cast<std::uint8_t>(v.kind),
                            v.value});
    }
  }

  MetricsMsg msg;
  msg.snapshot_id = metrics_snapshot_id_;
  msg.full = full ? 1 : 0;
  for (auto& e : candidates) {
    if (msg.entries.size() >= config_.max_metrics_entries) {
      // Over the cap: leave the rest unshipped. They stay different from
      // metrics_shipped_, so the next snapshot picks them up first-come.
      msg.full = 0;
      break;
    }
    if (!full) {
      const auto it = metrics_shipped_.find(e.name);
      if (it != metrics_shipped_.end() &&
          it->second == std::make_pair(e.kind, e.value)) {
        continue;  // unchanged since last shipped
      }
    }
    metrics_shipped_[e.name] = {e.kind, e.value};
    msg.entries.push_back(std::move(e));
  }
  if (msg.entries.empty() && !full) return;  // nothing changed, save a frame
  const auto payload = msg.Encode();
  SendControlLocked(FrameType::kMetrics, payload);
  ++stats_.metrics_snapshots;
}

std::uint32_t SensorSession::PublishEvents(const EventBatchMsg& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  // The publish span continues the caller's trace (batch.ctx, e.g. the
  // sink's block span) and becomes the context the wire carries, so
  // aggregator-side spans parent under this hop.
  obs::LinkedSpan span(tracer(), "session/publish_events", batch.ctx);
  EventBatchMsg wire_batch = batch;
  wire_batch.ctx = span.context();
  const auto payload = wire_batch.Encode();
  return EnqueueDataLocked(FrameType::kEventBatch, payload);
}

std::uint32_t SensorSession::PublishHealth(const core::HealthReport& report) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::LinkedSpan span(tracer(), "session/publish_health", {});
  HealthMsg msg;
  msg.report = report;
  msg.ctx = span.context();
  const auto payload = msg.Encode();
  return EnqueueDataLocked(FrameType::kHealth, payload);
}

void SensorSession::HandleBytes(std::span<const std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  parser_.Feed(bytes, [&](Frame&& frame) {
    if (frame.header.type != FrameType::kAck) return;
    const auto ack = AckMsg::Decode(frame.payload);
    if (!ack) return;
    if (ack->epoch != epoch_) {
      ++stats_.stale_acks;
      return;
    }
    last_ack_tick_ = now_;
    if (state_ != State::kConnected) {
      state_ = State::kConnected;
      backoff_attempts_ = 0;
    }
    if (ack->cum_seq > acked_) {
      acked_ = ack->cum_seq;
      while (!ring_.empty() && ring_.front().seq <= acked_) {
        // Karn's rule: only frames acked on their first transmission sample
        // the RTT (a retransmitted frame's ack is ambiguous). EWMA 7/8.
        const PendingFrame& pf = ring_.front();
        if (!pf.retransmitted) {
          const double sample = static_cast<double>(now_ - pf.first_sent);
          stats_.rtt_ticks = stats_.rtt_ticks < 0.0
                                 ? sample
                                 : 0.875 * stats_.rtt_ticks + 0.125 * sample;
        }
        ring_.pop_front();
      }
    }
  });
}

void SensorSession::OnTransportDown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kBackoff) return;
  BeginBackoffLocked(now_);
}

void SensorSession::Tick(std::int64_t tick, std::int64_t local_time) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ = tick;
  local_time_ = local_time;

  if (!hello_sent_) {
    // First tick: open the session.
    ++epoch_;
    HelloMsg hello{epoch_, local_time_};
    const auto payload = hello.Encode();
    SendControlLocked(FrameType::kHello, payload);
    hello_sent_ = true;
    last_ack_tick_ = tick;
  }

  switch (state_) {
    case State::kConnecting:
    case State::kConnected: {
      if (tick - last_ack_tick_ > config_.ack_timeout_ticks) {
        BeginBackoffLocked(tick);
        break;
      }
      if (gap_dirty_) PublishGapReportLocked();
      // Heartbeat cadence (also the offset estimator's clock samples).
      if (last_heartbeat_tick_ < 0 ||
          tick - last_heartbeat_tick_ >= config_.heartbeat_interval_ticks) {
        HeartbeatMsg hb{local_time_, stats_.frames_sent};
        const auto payload = hb.Encode();
        SendControlLocked(FrameType::kHeartbeat, payload);
        last_heartbeat_tick_ = tick;
        ++stats_.heartbeats;
        // Metrics federation rides the heartbeat cadence (DESIGN.md §13).
        if (config_.metrics_every_n_heartbeats > 0 &&
            stats_.heartbeats - heartbeats_at_last_metrics_ >=
                static_cast<std::uint64_t>(
                    config_.metrics_every_n_heartbeats)) {
          heartbeats_at_last_metrics_ = stats_.heartbeats;
          SendMetricsLocked();
        }
      }
      // Retransmit timed-out unacked frames, per-frame exponential backoff.
      for (auto& pf : ring_) {
        if (tick - pf.last_sent >= pf.rto) {
          outbound_.push_back(pf.wire);
          pf.last_sent = tick;
          pf.rto = std::min(pf.rto * 2, config_.rto_max_ticks);
          pf.retransmitted = true;
          ++stats_.retransmits;
          SessionMetrics::Get().retransmits.Inc();
        }
      }
      break;
    }
    case State::kBackoff: {
      if (tick >= reconnect_at_) {
        // New epoch: acks for the dead incarnation must not revive it.
        ++epoch_;
        state_ = State::kConnecting;
        last_ack_tick_ = tick;
        HelloMsg hello{epoch_, local_time_};
        const auto payload = hello.Encode();
        SendControlLocked(FrameType::kHello, payload);
        // Re-offer everything unacked right away; per-frame RTO resumes the
        // retry cadence if the link is still down.
        for (auto& pf : ring_) {
          outbound_.push_back(pf.wire);
          pf.last_sent = tick;
          pf.rto = config_.rto_ticks;
          pf.retransmitted = true;
          ++stats_.retransmits;
          SessionMetrics::Get().retransmits.Inc();
        }
      }
      break;
    }
  }
}

void SensorSession::BeginBackoffLocked(std::int64_t tick) {
  state_ = State::kBackoff;
  ++stats_.reconnects;
  SessionMetrics::Get().reconnects.Inc();
  std::int64_t delay = config_.backoff_base_ticks;
  for (int i = 0; i < backoff_attempts_ && delay < config_.backoff_max_ticks;
       ++i) {
    delay *= 2;
  }
  delay = std::min<std::int64_t>(delay, config_.backoff_max_ticks);
  // Seeded jitter: a fleet of sessions must not reconnect in lockstep.
  delay += static_cast<std::int64_t>(
      rng_.UniformDouble() * config_.backoff_jitter *
      static_cast<double>(delay));
  ++backoff_attempts_;
  reconnect_at_ = tick + std::max<std::int64_t>(delay, 1);
}

std::vector<std::vector<std::uint8_t>> SensorSession::TakeOutbound() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(outbound_, {});
}

SensorSession::State SensorSession::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

SensorSession::Stats SensorSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint32_t SensorSession::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::uint32_t SensorSession::acked_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acked_;
}

std::size_t SensorSession::unacked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::vector<SeqRange> SensorSession::lost_ranges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lost_;
}

const char* SessionStateName(SensorSession::State state) {
  switch (state) {
    case SensorSession::State::kConnecting: return "connecting";
    case SensorSession::State::kConnected: return "connected";
    case SensorSession::State::kBackoff: return "backoff";
  }
  return "?";
}

}  // namespace rfdump::net
