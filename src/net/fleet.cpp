#include "rfdump/net/fleet.hpp"

#include <cinttypes>
#include <cstdio>

namespace rfdump::net {

namespace {

// Minimal JSON emission helpers for FleetStatus::ToJson. Keys are
// hard-coded identifiers and every value is numeric or boolean, so no
// string escaping is needed.
void JKey(std::string& out, const char* key) {
  out += '"';
  out += key;
  out += "\":";
}

void JU64(std::string& out, const char* key, std::uint64_t v) {
  char buf[32];
  JKey(out, key);
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void JI64(std::string& out, const char* key, std::int64_t v) {
  char buf[32];
  JKey(out, key);
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void JF64(std::string& out, const char* key, double v) {
  char buf[48];
  JKey(out, key);
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void JBool(std::string& out, const char* key, bool v) {
  JKey(out, key);
  out += v ? "true" : "false";
}

void JStr(std::string& out, const char* key, const char* v) {
  JKey(out, key);
  out += '"';
  out += v;
  out += '"';
}

void JRanges(std::string& out, const char* key,
             const std::vector<SeqRange>& ranges) {
  JKey(out, key);
  out += '[';
  bool first = true;
  char buf[48];
  for (const auto& r : ranges) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "[%u,%u]", r.first, r.last);
    out += buf;
  }
  out += ']';
}

}  // namespace

void MonitorSensorSink::Buffer(EventRecord record) {
  if (pending_.empty()) {
    // First event of the block anchors the batch position if no health
    // report preceded it (batch-mode pipelines emit health last).
    if (block_start_ == 0) block_start_ = record.start_sample;
  }
  pending_.push_back(record);
}

void MonitorSensorSink::OnEvent(const core::ProtocolEvent& event) {
  Buffer(ToEventRecord(event));
}

void MonitorSensorSink::OnHealth(const core::HealthReport& report) {
  // Health leads each block (sink contract), so everything buffered belongs
  // to the *previous* block: ship it before starting the new one.
  Flush();
  block_start_ = report.block_start;
  session_.PublishHealth(report);
}

void MonitorSensorSink::Flush() {
  if (pending_.empty()) return;
  // Root of the distributed trace for this block: the session's publish
  // span and every aggregator span downstream parent under it.
  obs::LinkedSpan span(session_.tracer(), "sensor/flush_block", {});
  EventBatchMsg batch;
  batch.block_start = block_start_;
  batch.ctx = span.context();
  batch.events = std::move(pending_);
  pending_.clear();
  events_published_ += batch.events.size();
  session_.PublishEvents(batch);
}

Fleet::Fleet(Config config)
    : config_(std::move(config)),
      aggregator_([&] {
        auto agg = config_.aggregator;
        agg.samples_per_tick = config_.samples_per_tick;
        return agg;
      }()) {
  nodes_.reserve(config_.sensors.size());
  for (auto spec : config_.sensors) {
    spec.session.sensor_id = spec.id;
    nodes_.push_back(std::make_unique<Node>(spec));
  }
}

std::int64_t Fleet::LocalTime(std::size_t i) const {
  return now_ * config_.samples_per_tick +
         nodes_[i]->spec.clock_offset_samples;
}

std::uint32_t Fleet::Publish(std::size_t i, std::int64_t block_start,
                             std::vector<EventRecord> events) {
  EventBatchMsg batch;
  batch.block_start = block_start;
  batch.events = std::move(events);
  return nodes_[i]->session.PublishEvents(batch);
}

void Fleet::Tick() {
  ++now_;
  // Advance the aggregator clock before ingest: the offset estimator stamps
  // arrivals with the aggregator's current tick, and a min-filter never
  // recovers from an arrival stamped one tick early.
  aggregator_.Tick(now_);
  // Sensor side: advance sessions, push their output through the sensor-side
  // transports, and hand whatever the central-side transports surface this
  // tick to the aggregator (a byte stream; its FrameParser owns reassembly).
  std::vector<std::uint8_t> rx;
  for (auto& node : nodes_) {
    node->session.Tick(now_, now_ * config_.samples_per_tick +
                                 node->spec.clock_offset_samples);
    for (auto& frame : node->session.TakeOutbound()) {
      node->sensor_side.Send(frame);
    }
    rx.clear();
    node->central_side.Poll(now_, rx);
    if (!rx.empty()) aggregator_.HandleBytes(node->spec.id, rx);
  }
  // Aggregator side again: ack emission for frames that just arrived (the
  // second Tick at the same tick value only drains ack_due), then the
  // return path.
  aggregator_.Tick(now_);
  for (auto& node : nodes_) {
    for (auto& frame : aggregator_.TakeOutbound(node->spec.id)) {
      node->central_side.Send(frame);
    }
    rx.clear();
    node->sensor_side.Poll(now_, rx);
    if (!rx.empty()) node->session.HandleBytes(rx);
  }
}

void Fleet::Run(int ticks) {
  for (int i = 0; i < ticks; ++i) Tick();
}

void Fleet::SetLossless(bool lossless) {
  for (auto& node : nodes_) {
    node->uplink.set_lossless(lossless);
    node->downlink.set_lossless(lossless);
  }
}

FleetStatus Fleet::StatusReport() const {
  FleetStatus fs;
  fs.tick = now_;
  fs.live_sensors = aggregator_.live_sensors();
  fs.fused_events = aggregator_.fused().size();
  fs.merges = aggregator_.merges();
  fs.fused_pruned = aggregator_.fused_pruned();
  fs.sensors.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    FleetStatus::SensorRow row;
    row.id = node->spec.id;
    row.session_state = node->session.state();
    row.epoch = node->session.epoch();
    row.acked_seq = node->session.acked_seq();
    row.unacked = node->session.unacked();
    row.session = node->session.stats();
    row.lost_ranges = node->session.lost_ranges();
    row.known = aggregator_.Known(row.id);
    if (row.known) {
      row.agg = aggregator_.status(row.id);
      row.parse = aggregator_.parse_stats(row.id);
    }
    fs.sensors.push_back(std::move(row));
  }
  return fs;
}

std::string FleetStatus::ToJson() const {
  std::string out = "{";
  JI64(out, "tick", tick);
  out += ',';
  JU64(out, "live_sensors", live_sensors);
  out += ',';
  JU64(out, "fused_events", fused_events);
  out += ',';
  JU64(out, "merges", merges);
  out += ',';
  JU64(out, "fused_pruned", fused_pruned);
  out += ',';
  JKey(out, "sensors");
  out += '[';
  bool first = true;
  for (const SensorRow& r : sensors) {
    if (!first) out += ',';
    first = false;
    out += '{';
    JU64(out, "id", r.id);
    out += ',';
    JKey(out, "session");
    out += '{';
    JStr(out, "state", SessionStateName(r.session_state));
    out += ',';
    JU64(out, "epoch", r.epoch);
    out += ',';
    JU64(out, "acked_seq", r.acked_seq);
    out += ',';
    JU64(out, "unacked", r.unacked);
    out += ',';
    JU64(out, "frames_sent", r.session.frames_sent);
    out += ',';
    JU64(out, "retransmits", r.session.retransmits);
    out += ',';
    JU64(out, "heartbeats", r.session.heartbeats);
    out += ',';
    JU64(out, "reconnects", r.session.reconnects);
    out += ',';
    JU64(out, "ring_overflow_drops", r.session.ring_overflow_drops);
    out += ',';
    JU64(out, "stale_acks", r.session.stale_acks);
    out += ',';
    JU64(out, "metrics_snapshots", r.session.metrics_snapshots);
    out += ',';
    JF64(out, "rtt_ticks", r.session.rtt_ticks);
    out += ',';
    JRanges(out, "lost_ranges", r.lost_ranges);
    out += "},";
    JKey(out, "aggregator");
    out += '{';
    JBool(out, "known", r.known);
    out += ',';
    JBool(out, "live", r.agg.state == Aggregator::SensorState::kLive);
    out += ',';
    JF64(out, "trust", r.agg.trust);
    out += ',';
    JU64(out, "epoch", r.agg.epoch);
    out += ',';
    JU64(out, "cum_seq", r.agg.cum_seq);
    out += ',';
    JI64(out, "last_heard_tick", r.agg.last_heard_tick);
    out += ',';
    JBool(out, "offset_known", r.agg.offset_known);
    out += ',';
    JI64(out, "clock_offset", r.agg.clock_offset);
    out += ',';
    JU64(out, "offset_updates", r.agg.offset_updates);
    out += ',';
    JU64(out, "frames_delivered", r.agg.frames_delivered);
    out += ',';
    JU64(out, "duplicates_dropped", r.agg.duplicates_dropped);
    out += ',';
    JU64(out, "corrupt_dropped", r.agg.corrupt_dropped);
    out += ',';
    JU64(out, "reorder_overflow", r.agg.reorder_overflow);
    out += ',';
    JU64(out, "events_received", r.agg.events_received);
    out += ',';
    JU64(out, "events_held_untrusted", r.agg.events_held_untrusted);
    out += ',';
    JU64(out, "degraded_transitions", r.agg.degraded_transitions);
    out += ',';
    JU64(out, "metrics_snapshots_applied", r.agg.metrics_snapshots_applied);
    out += ',';
    JU64(out, "health_reports", r.agg.health.size());
    out += ',';
    JRanges(out, "lost_applied", r.agg.lost_applied);
    out += "},";
    JKey(out, "parse");
    out += '{';
    JU64(out, "frames_ok", r.parse.frames_ok);
    out += ',';
    JU64(out, "bad_magic_bytes", r.parse.bad_magic_bytes);
    out += ',';
    JU64(out, "bad_version", r.parse.bad_version);
    out += ',';
    JU64(out, "bad_type", r.parse.bad_type);
    out += ',';
    JU64(out, "bad_length", r.parse.bad_length);
    out += ',';
    JU64(out, "bad_header_checksum", r.parse.bad_header_checksum);
    out += ',';
    JU64(out, "bad_crc", r.parse.bad_crc);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string FleetStatus::ToText() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "fleet @ tick %" PRId64 ": %zu live, %zu fused (%" PRIu64
                " merged, %" PRIu64 " pruned)\n",
                tick, live_sensors, fused_events, merges, fused_pruned);
  out += line;
  out +=
      "  id state      epoch  seq(ack/cum) unack  rtt   trust live  gaps "
      "retx corrupt dup   events\n";
  for (const SensorRow& r : sensors) {
    std::snprintf(
        line, sizeof(line),
        "  %-2u %-10s %-6u %u/%u %-5zu %-5.1f %-5.2f %-5s %-4zu %-4" PRIu64
        " %-7" PRIu64 " %-5" PRIu64 " %" PRIu64 "\n",
        r.id, SessionStateName(r.session_state), r.epoch, r.acked_seq,
        r.agg.cum_seq, r.unacked, r.session.rtt_ticks, r.agg.trust,
        !r.known ? "?"
                 : (r.agg.state == Aggregator::SensorState::kLive ? "yes"
                                                                  : "NO"),
        r.agg.lost_applied.size(), r.session.retransmits,
        r.agg.corrupt_dropped, r.agg.duplicates_dropped,
        r.agg.events_received);
    out += line;
    if (r.agg.offset_known) {
      std::snprintf(line, sizeof(line),
                    "     clock offset %+" PRId64 " samples (%" PRIu64
                    " updates), %" PRIu64 " health, %" PRIu64
                    " metric snapshots\n",
                    r.agg.clock_offset, r.agg.offset_updates,
                    static_cast<std::uint64_t>(r.agg.health.size()),
                    r.agg.metrics_snapshots_applied);
      out += line;
    }
  }
  return out;
}

}  // namespace rfdump::net
