#include "rfdump/net/fleet.hpp"

namespace rfdump::net {

void MonitorSensorSink::Buffer(EventRecord record) {
  if (pending_.empty()) {
    // First event of the block anchors the batch position if no health
    // report preceded it (batch-mode pipelines emit health last).
    if (block_start_ == 0) block_start_ = record.start_sample;
  }
  pending_.push_back(record);
}

void MonitorSensorSink::OnWifiFrame(const phy80211::DecodedFrame& frame) {
  Buffer(ToEventRecord(frame));
}

void MonitorSensorSink::OnBtPacket(const phybt::DecodedBtPacket& packet) {
  Buffer(ToEventRecord(packet));
}

void MonitorSensorSink::OnZbFrame(const phyzigbee::DecodedZbFrame& frame) {
  Buffer(ToEventRecord(frame));
}

void MonitorSensorSink::OnHealth(const core::HealthReport& report) {
  // Health leads each block (sink contract), so everything buffered belongs
  // to the *previous* block: ship it before starting the new one.
  Flush();
  block_start_ = report.block_start;
  session_.PublishHealth(report);
}

void MonitorSensorSink::Flush() {
  if (pending_.empty()) return;
  EventBatchMsg batch;
  batch.block_start = block_start_;
  batch.events = std::move(pending_);
  pending_.clear();
  events_published_ += batch.events.size();
  session_.PublishEvents(batch);
}

Fleet::Fleet(Config config)
    : config_(std::move(config)),
      aggregator_([&] {
        auto agg = config_.aggregator;
        agg.samples_per_tick = config_.samples_per_tick;
        return agg;
      }()) {
  nodes_.reserve(config_.sensors.size());
  for (auto spec : config_.sensors) {
    spec.session.sensor_id = spec.id;
    nodes_.push_back(std::make_unique<Node>(spec));
  }
}

std::int64_t Fleet::LocalTime(std::size_t i) const {
  return now_ * config_.samples_per_tick +
         nodes_[i]->spec.clock_offset_samples;
}

std::uint32_t Fleet::Publish(std::size_t i, std::int64_t block_start,
                             std::vector<EventRecord> events) {
  EventBatchMsg batch;
  batch.block_start = block_start;
  batch.events = std::move(events);
  return nodes_[i]->session.PublishEvents(batch);
}

void Fleet::Tick() {
  ++now_;
  // Advance the aggregator clock before ingest: the offset estimator stamps
  // arrivals with the aggregator's current tick, and a min-filter never
  // recovers from an arrival stamped one tick early.
  aggregator_.Tick(now_);
  // Sensor side: advance sessions, push their output into the uplinks, and
  // deliver whatever the links release this tick to the aggregator.
  for (auto& node : nodes_) {
    node->session.Tick(now_, now_ * config_.samples_per_tick +
                                 node->spec.clock_offset_samples);
    for (auto& frame : node->session.TakeOutbound()) {
      node->uplink.Send(std::move(frame));
    }
    for (const auto& bytes : node->uplink.Advance(now_)) {
      aggregator_.HandleBytes(node->spec.id, bytes);
    }
  }
  // Aggregator side again: ack emission for frames that just arrived (the
  // second Tick at the same tick value only drains ack_due), then the
  // return path.
  aggregator_.Tick(now_);
  for (auto& node : nodes_) {
    for (auto& frame : aggregator_.TakeOutbound(node->spec.id)) {
      node->downlink.Send(std::move(frame));
    }
    for (const auto& bytes : node->downlink.Advance(now_)) {
      node->session.HandleBytes(bytes);
    }
  }
}

void Fleet::Run(int ticks) {
  for (int i = 0; i < ticks; ++i) Tick();
}

void Fleet::SetLossless(bool lossless) {
  for (auto& node : nodes_) {
    node->uplink.set_lossless(lossless);
    node->downlink.set_lossless(lossless);
  }
}

}  // namespace rfdump::net
