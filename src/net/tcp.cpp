#include "rfdump/net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace rfdump::net {

// ------------------------------------------------------- TcpTransport

std::unique_ptr<TcpTransport> TcpTransport::Dial(const std::string& host,
                                                 std::uint16_t port,
                                                 Config config, Syscalls& sys,
                                                 std::int64_t tick) {
  const int fd = sys.Socket();
  if (fd < 0) return nullptr;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    sys.Close(fd);
    return nullptr;
  }

  auto t = std::make_unique<TcpTransport>(fd, config, sys, tick,
                                          State::kConnecting);
  const int rc = sys.Connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr));
  if (rc == 0) {
    // Loopback connects may complete synchronously.
    t->state_ = State::kConnected;
  } else if (errno != EINPROGRESS && errno != EINTR) {
    // Immediate refusal (incl. an injected ECONNREFUSED): terminal, but
    // still a constructed transport so the caller's one error path —
    // state() == kClosed — covers it.
    t->Fail(/*reset=*/true);
  }
  return t;
}

TcpTransport::TcpTransport(int fd, Config config, Syscalls& sys,
                           std::int64_t tick, State initial)
    : config_(config), sys_(sys), fd_(fd), state_(initial), dial_tick_(tick) {}

TcpTransport::~TcpTransport() { Close(); }

void TcpTransport::Close() {
  if (fd_ >= 0) {
    sys_.Close(fd_);
    fd_ = -1;
  }
  state_ = State::kClosed;
  send_buf_.clear();
}

void TcpTransport::Fail(bool reset) {
  if (reset) ++stats_.resets;
  Close();
}

bool TcpTransport::Send(std::span<const std::uint8_t> frame) {
  if (state_ == State::kClosed ||
      send_buf_.size() + frame.size() > config_.send_buffer_limit) {
    ++stats_.send_rejects;
    return false;
  }
  // Buffering while kConnecting is deliberate: the hello the session emits
  // on its first tick rides the same buffer and flushes on completion.
  send_buf_.insert(send_buf_.end(), frame.begin(), frame.end());
  if (send_buf_.size() > stats_.send_buffer_peak) {
    stats_.send_buffer_peak = send_buf_.size();
  }
  ++stats_.frames_accepted;
  return true;
}

void TcpTransport::PollConnecting(std::int64_t tick) {
  const int ready = sys_.PollOne(fd_, POLLOUT, 0);
  if (ready > 0) {
    const int err = sys_.SockError(fd_);
    if (err == 0) {
      state_ = State::kConnected;
      return;
    }
    Fail(/*reset=*/true);
    return;
  }
  if (tick - dial_tick_ >= config_.connect_timeout_ticks) {
    ++stats_.connect_timeouts;
    Fail(/*reset=*/false);
  }
}

void TcpTransport::FlushSendBuffer() {
  std::size_t off = 0;
  int eintr_left = config_.max_eintr_retries;
  while (off < send_buf_.size()) {
    const ssize_t n =
        sys_.Write(fd_, send_buf_.data() + off, send_buf_.size() - off);
    if (n > 0) {
      if (static_cast<std::size_t>(n) < send_buf_.size() - off) {
        ++stats_.partial_writes;
      }
      stats_.bytes_sent += static_cast<std::uint64_t>(n);
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR && eintr_left-- > 0) {
      ++stats_.eintr_retries;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                  errno == EINTR)) {
      // Kernel buffer full (or EINTR budget spent): resume next Poll.
      ++stats_.eagain_yields;
      break;
    }
    // ECONNRESET/EPIPE/anything else: the connection is gone. Unsent
    // bytes are lost here; sequenced frames come back from the session's
    // retransmit ring under the new epoch.
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<std::ptrdiff_t>(off));
    Fail(/*reset=*/true);
    return;
  }
  send_buf_.erase(send_buf_.begin(),
                  send_buf_.begin() + static_cast<std::ptrdiff_t>(off));
}

void TcpTransport::ReadAvailable(std::vector<std::uint8_t>& received) {
  std::uint8_t chunk[16 * 1024];
  const std::size_t ask =
      std::min(sizeof(chunk), std::max<std::size_t>(config_.read_chunk, 1));
  std::size_t total = 0;
  int eintr_left = config_.max_eintr_retries;
  while (total < config_.max_read_per_poll) {
    const ssize_t n = sys_.Read(fd_, chunk, ask);
    if (n > 0) {
      if (static_cast<std::size_t>(n) < ask) ++stats_.partial_reads;
      stats_.bytes_received += static_cast<std::uint64_t>(n);
      total += static_cast<std::size_t>(n);
      received.insert(received.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      // Orderly EOF — possibly exactly on a frame boundary, possibly not;
      // the caller's FrameParser decides what was complete.
      Fail(/*reset=*/false);
      return;
    }
    if (errno == EINTR && eintr_left-- > 0) {
      ++stats_.eintr_retries;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      ++stats_.eagain_yields;
      return;
    }
    Fail(/*reset=*/true);
    return;
  }
}

void TcpTransport::Poll(std::int64_t tick,
                        std::vector<std::uint8_t>& received) {
  if (state_ == State::kConnecting) PollConnecting(tick);
  if (state_ != State::kConnected) return;
  FlushSendBuffer();
  if (state_ != State::kConnected) return;
  ReadAvailable(received);
}

// -------------------------------------------------------- TcpListener

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  if (fd_ >= 0) {
    // The listener socket was created outside the shim; close it there too.
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpListener::Listen(const std::string& host, std::uint16_t port,
                         int backlog) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return false;
  }
  // Nonblocking: Accept() must return "none pending" instead of parking
  // the pump thread inside accept(2).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 ||
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  fd_ = fd;
  return true;
}

std::unique_ptr<TcpTransport> TcpListener::Accept(TcpTransport::Config config,
                                                  std::int64_t tick) {
  if (fd_ < 0) return nullptr;
  const int fd = sys_.Accept(fd_);
  if (fd < 0) return nullptr;
  ++accepted_;
  return std::make_unique<TcpTransport>(fd, config, sys_, tick,
                                        Transport::State::kConnected);
}

}  // namespace rfdump::net
