#include "rfdump/net/faulty_syscalls.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>

namespace rfdump::net {

namespace {

int SetNonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// ------------------------------------------------------------ Syscalls

Syscalls& Syscalls::Real() {
  static Syscalls real;
  return real;
}

int Syscalls::Socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (SetNonblocking(fd) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  // Small frames fly on heartbeat cadence; don't let Nagle batch them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int Syscalls::Connect(int fd, const sockaddr* addr, unsigned addr_len) {
  return ::connect(fd, addr, addr_len);
}

int Syscalls::Accept(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return -1;
  if (SetNonblocking(fd) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

ssize_t Syscalls::Read(int fd, void* buf, std::size_t len) {
  return ::read(fd, buf, len);
}

ssize_t Syscalls::Write(int fd, const void* buf, std::size_t len) {
  // MSG_NOSIGNAL: a peer that closed mid-stream must surface as EPIPE, not
  // kill the process with SIGPIPE.
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

int Syscalls::Close(int fd) { return ::close(fd); }

int Syscalls::PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n <= 0) return n;
  // Error conditions (POLLERR/POLLHUP) count as "ready": the follow-up
  // read/SockError call surfaces the actual failure.
  return (pfd.revents & (events | POLLERR | POLLHUP)) != 0 ? 1 : 0;
}

int Syscalls::SockError(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

// ------------------------------------------------------ FaultySyscalls

const char* SyscallFaultKindName(SyscallFaultKind kind) {
  switch (kind) {
    case SyscallFaultKind::kShortRead: return "short_read";
    case SyscallFaultKind::kShortWrite: return "short_write";
    case SyscallFaultKind::kEintr: return "eintr";
    case SyscallFaultKind::kEagain: return "eagain";
    case SyscallFaultKind::kReadReset: return "read_reset";
    case SyscallFaultKind::kWriteReset: return "write_reset";
    case SyscallFaultKind::kConnectRefused: return "connect_refused";
    case SyscallFaultKind::kConnectStalled: return "connect_stalled";
    case SyscallFaultKind::kAcceptFail: return "accept_fail";
    case SyscallFaultKind::kFdLimit: return "fd_limit";
  }
  return "?";
}

FaultySyscalls::FaultySyscalls(Config config, std::uint64_t seed,
                               Syscalls& base)
    : config_(config), rng_(seed), base_(base) {}

void FaultySyscalls::Record(SyscallFaultKind kind, int fd, std::size_t bytes) {
  faults_.push_back({kind, calls_, fd, bytes});
}

void FaultySyscalls::PoisonLocked(int fd) {
  // Close the real fd so the peer observes EOF and tears its side down
  // cleanly; keep the *number* poisoned so the owner's follow-up calls see
  // a dead connection until it calls Close().
  base_.Close(fd);
  poisoned_.insert(fd);
}

int FaultySyscalls::Socket() {
  if (!passthrough_ && config_.max_open_fds > 0 &&
      open_fds_.size() >= config_.max_open_fds) {
    Record(SyscallFaultKind::kFdLimit, -1, 0);
    errno = EMFILE;
    return -1;
  }
  const int fd = base_.Socket();
  if (fd >= 0) {
    open_fds_.insert(fd);
    // The kernel may hand back a number we poisoned and closed earlier;
    // it's a fresh socket now.
    poisoned_.erase(fd);
    stalled_.erase(fd);
  }
  return fd;
}

int FaultySyscalls::Connect(int fd, const sockaddr* addr, unsigned addr_len) {
  ++calls_;
  if (!passthrough_) {
    if (Roll(config_.connect_refuse_rate)) {
      Record(SyscallFaultKind::kConnectRefused, fd, 0);
      errno = ECONNREFUSED;
      return -1;
    }
    if (Roll(config_.connect_stall_rate)) {
      // Report the connect as pending but never issue it: PollOne and
      // SockError keep it "in progress" forever, so the caller's own
      // connect timeout is the only way out.
      Record(SyscallFaultKind::kConnectStalled, fd, 0);
      stalled_.insert(fd);
      errno = EINPROGRESS;
      return -1;
    }
  }
  return base_.Connect(fd, addr, addr_len);
}

int FaultySyscalls::Accept(int listen_fd) {
  ++calls_;
  if (!passthrough_) {
    if (config_.max_open_fds > 0 &&
        open_fds_.size() >= config_.max_open_fds) {
      Record(SyscallFaultKind::kFdLimit, listen_fd, 0);
      errno = EMFILE;
      return -1;
    }
    if (Roll(config_.accept_fail_rate)) {
      Record(SyscallFaultKind::kAcceptFail, listen_fd, 0);
      errno = EMFILE;
      return -1;
    }
  }
  const int fd = base_.Accept(listen_fd);
  if (fd >= 0) {
    open_fds_.insert(fd);
    poisoned_.erase(fd);
    stalled_.erase(fd);
  }
  return fd;
}

ssize_t FaultySyscalls::Read(int fd, void* buf, std::size_t len) {
  ++calls_;
  if (poisoned_.count(fd) != 0) {
    errno = ECONNRESET;
    return -1;
  }
  if (!passthrough_ && len > 0) {
    if (Roll(config_.eintr_rate)) {
      Record(SyscallFaultKind::kEintr, fd, len);
      errno = EINTR;
      return -1;
    }
    if (Roll(config_.eagain_rate)) {
      Record(SyscallFaultKind::kEagain, fd, len);
      errno = EAGAIN;
      return -1;
    }
    if (Roll(config_.read_reset_rate)) {
      Record(SyscallFaultKind::kReadReset, fd, len);
      PoisonLocked(fd);
      errno = ECONNRESET;
      return -1;
    }
    if (len > 1 && Roll(config_.short_read_rate)) {
      const auto cap = static_cast<std::uint64_t>(std::max(
          1, config_.short_read_max));
      len = static_cast<std::size_t>(rng_.UniformInt(
          1, std::min<std::uint64_t>(cap, len)));
      Record(SyscallFaultKind::kShortRead, fd, len);
    }
  }
  return base_.Read(fd, buf, len);
}

ssize_t FaultySyscalls::Write(int fd, const void* buf, std::size_t len) {
  ++calls_;
  if (poisoned_.count(fd) != 0) {
    errno = ECONNRESET;
    return -1;
  }
  if (!passthrough_ && len > 0) {
    if (Roll(config_.eintr_rate)) {
      Record(SyscallFaultKind::kEintr, fd, len);
      errno = EINTR;
      return -1;
    }
    if (Roll(config_.eagain_rate)) {
      Record(SyscallFaultKind::kEagain, fd, len);
      errno = EAGAIN;
      return -1;
    }
    if (Roll(config_.write_reset_rate)) {
      Record(SyscallFaultKind::kWriteReset, fd, len);
      PoisonLocked(fd);
      errno = ECONNRESET;
      return -1;
    }
    if (len > 1 && Roll(config_.short_write_rate)) {
      const auto cap = static_cast<std::uint64_t>(std::max(
          1, config_.short_write_max));
      len = static_cast<std::size_t>(rng_.UniformInt(
          1, std::min<std::uint64_t>(cap, len)));
      Record(SyscallFaultKind::kShortWrite, fd, len);
    }
  }
  return base_.Write(fd, buf, len);
}

int FaultySyscalls::Close(int fd) {
  open_fds_.erase(fd);
  stalled_.erase(fd);
  if (poisoned_.erase(fd) != 0) {
    // The real fd was already closed when the reset was injected.
    return 0;
  }
  return base_.Close(fd);
}

int FaultySyscalls::PollOne(int fd, short events, int timeout_ms) {
  if (poisoned_.count(fd) != 0) return 1;  // "ready": the op will fail
  if (stalled_.count(fd) != 0) return 0;   // never ready
  return base_.PollOne(fd, events, timeout_ms);
}

int FaultySyscalls::SockError(int fd) {
  if (poisoned_.count(fd) != 0) return ECONNRESET;
  if (stalled_.count(fd) != 0) return 0;  // still "in progress"
  return base_.SockError(fd);
}

std::string FaultySyscalls::FaultLogJson() const {
  std::string out;
  char line[160];
  for (const auto& f : faults_) {
    std::snprintf(line, sizeof(line),
                  "{\"kind\":\"%s\",\"call\":%" PRIu64
                  ",\"fd\":%d,\"bytes\":%zu}\n",
                  SyscallFaultKindName(f.kind), f.call_index, f.fd, f.bytes);
    out += line;
  }
  return out;
}

}  // namespace rfdump::net
