#include "rfdump/net/messages.hpp"

namespace rfdump::net {

namespace {

/// Caps the element count a hostile length prefix can demand. Every decoded
/// element is at least a few bytes, so `remaining` bounds any honest count.
bool PlausibleCount(std::uint64_t count, std::size_t remaining,
                    std::size_t min_element_bytes) {
  return count * min_element_bytes <= remaining;
}

void EncodeEvent(ByteWriter& w, const EventRecord& e) {
  w.U8(static_cast<std::uint8_t>(e.protocol));
  w.U16(static_cast<std::uint16_t>(e.channel));
  w.I64(e.start_sample);
  w.I64(e.end_sample);
  w.U32(e.payload_bytes);
  w.U8(e.crc_ok ? 1 : 0);
  w.U64(e.payload_digest);
}

constexpr std::size_t kEventBytes = 1 + 2 + 8 + 8 + 4 + 1 + 8;

void EncodeCtx(ByteWriter& w, const obs::TraceContext& ctx) {
  w.U64(ctx.trace_id);
  w.U64(ctx.span_id);
}

obs::TraceContext DecodeCtx(ByteReader& r) {
  obs::TraceContext ctx;
  ctx.trace_id = r.U64();
  ctx.span_id = r.U64();
  return ctx;
}

bool DecodeEvent(ByteReader& r, EventRecord& e) {
  const std::uint8_t proto = r.U8();
  if (proto >= core::kProtocolCount) return false;
  e.protocol = static_cast<core::Protocol>(proto);
  e.channel = static_cast<std::int16_t>(r.U16());
  e.start_sample = r.I64();
  e.end_sample = r.I64();
  e.payload_bytes = r.U32();
  e.crc_ok = r.U8() != 0;
  e.payload_digest = r.U64();
  return r.ok();
}

}  // namespace

std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

EventRecord ToEventRecord(const core::ProtocolEvent& ev) {
  EventRecord e;
  e.protocol = ev.protocol;
  e.channel = static_cast<std::int16_t>(ev.channel);
  e.start_sample = ev.start_sample;
  e.end_sample = ev.end_sample;
  e.payload_bytes = static_cast<std::uint32_t>(ev.payload.size());
  e.crc_ok = ev.crc_ok;
  e.payload_digest = Fnv1a64({ev.payload.data(), ev.payload.size()});
  return e;
}

EventRecord ToEventRecord(const phy80211::DecodedFrame& f) {
  EventRecord e;
  e.protocol = core::Protocol::kWifi80211b;
  e.start_sample = f.start_sample;
  e.end_sample = f.end_sample;
  e.payload_bytes = static_cast<std::uint32_t>(f.mpdu.size());
  e.crc_ok = f.fcs_ok;
  e.payload_digest = Fnv1a64({f.mpdu.data(), f.mpdu.size()});
  return e;
}

EventRecord ToEventRecord(const phybt::DecodedBtPacket& p) {
  EventRecord e;
  e.protocol = core::Protocol::kBluetooth;
  e.channel = static_cast<std::int16_t>(p.channel_index);
  e.start_sample = p.start_sample;
  e.end_sample = p.end_sample;
  e.payload_bytes = static_cast<std::uint32_t>(p.packet.payload.size());
  e.crc_ok = p.packet.crc_ok;
  e.payload_digest =
      Fnv1a64({p.packet.payload.data(), p.packet.payload.size()});
  return e;
}

EventRecord ToEventRecord(const phyzigbee::DecodedZbFrame& z) {
  EventRecord e;
  e.protocol = core::Protocol::kZigbee;
  e.start_sample = z.start_sample;
  e.end_sample = z.end_sample;
  e.payload_bytes = static_cast<std::uint32_t>(z.psdu.size());
  e.crc_ok = z.crc_ok;
  e.payload_digest = Fnv1a64({z.psdu.data(), z.psdu.size()});
  return e;
}

std::vector<std::uint8_t> HelloMsg::Encode() const {
  ByteWriter w;
  w.U32(epoch);
  w.I64(local_time);
  return w.Take();
}

std::optional<HelloMsg> HelloMsg::Decode(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  HelloMsg m;
  m.epoch = r.U32();
  m.local_time = r.I64();
  if (!r.ok()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> HeartbeatMsg::Encode() const {
  ByteWriter w;
  w.I64(local_time);
  w.U64(frames_sent);
  return w.Take();
}

std::optional<HeartbeatMsg> HeartbeatMsg::Decode(
    std::span<const std::uint8_t> p) {
  ByteReader r(p);
  HeartbeatMsg m;
  m.local_time = r.I64();
  m.frames_sent = r.U64();
  if (!r.ok()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> AckMsg::Encode() const {
  ByteWriter w;
  w.U32(cum_seq);
  w.U32(epoch);
  return w.Take();
}

std::optional<AckMsg> AckMsg::Decode(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  AckMsg m;
  m.cum_seq = r.U32();
  m.epoch = r.U32();
  if (!r.ok()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> EventBatchMsg::Encode() const {
  ByteWriter w;
  w.I64(block_start);
  EncodeCtx(w, ctx);
  w.U32(static_cast<std::uint32_t>(events.size()));
  for (const auto& e : events) EncodeEvent(w, e);
  return w.Take();
}

std::optional<EventBatchMsg> EventBatchMsg::Decode(
    std::span<const std::uint8_t> p) {
  ByteReader r(p);
  EventBatchMsg m;
  m.block_start = r.I64();
  m.ctx = DecodeCtx(r);
  const std::uint32_t count = r.U32();
  if (!r.ok() || !PlausibleCount(count, r.remaining(), kEventBytes)) {
    return std::nullopt;
  }
  m.events.resize(count);
  for (auto& e : m.events) {
    if (!DecodeEvent(r, e)) return std::nullopt;
  }
  return m;
}

std::vector<std::uint8_t> HealthMsg::Encode() const {
  ByteWriter w;
  const core::HealthReport& h = report;
  w.I64(h.block_start);
  w.U64(h.block_samples);
  w.U32(h.gap_count);
  w.I64(h.gap_samples);
  w.I64(h.overlap_samples);
  w.U64(h.sanitized_samples);
  w.U64(h.nonfinite_samples);
  w.F64(h.saturation_fraction);
  w.U8(static_cast<std::uint8_t>(h.shed_stage));
  w.F64(h.block_load);
  w.U64(h.tagged_detections);
  w.U64(h.rejected_detections);
  w.U64(h.forwarded_intervals);
  w.U64(h.supervised_intervals);
  w.U64(h.deadline_intervals);
  w.U64(h.exception_intervals);
  w.U64(h.skipped_intervals);
  w.U64(h.quarantined_intervals);
  w.U32(h.breaker_trips);
  w.U32(static_cast<std::uint32_t>(h.open_breakers));
  EncodeCtx(w, ctx);
  return w.Take();
}

std::optional<HealthMsg> HealthMsg::Decode(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  HealthMsg m;
  core::HealthReport& h = m.report;
  h.block_start = r.I64();
  h.block_samples = r.U64();
  h.gap_count = r.U32();
  h.gap_samples = r.I64();
  h.overlap_samples = r.I64();
  h.sanitized_samples = r.U64();
  h.nonfinite_samples = r.U64();
  h.saturation_fraction = r.F64();
  h.shed_stage = r.U8();
  h.block_load = r.F64();
  h.tagged_detections = r.U64();
  h.rejected_detections = r.U64();
  h.forwarded_intervals = r.U64();
  h.supervised_intervals = r.U64();
  h.deadline_intervals = r.U64();
  h.exception_intervals = r.U64();
  h.skipped_intervals = r.U64();
  h.quarantined_intervals = r.U64();
  h.breaker_trips = r.U32();
  h.open_breakers = static_cast<int>(r.U32());
  m.ctx = DecodeCtx(r);
  if (!r.ok()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> GapReportMsg::Encode() const {
  ByteWriter w;
  EncodeCtx(w, ctx);
  w.U32(static_cast<std::uint32_t>(lost.size()));
  for (const auto& range : lost) {
    w.U32(range.first);
    w.U32(range.last);
  }
  return w.Take();
}

std::optional<GapReportMsg> GapReportMsg::Decode(
    std::span<const std::uint8_t> p) {
  ByteReader r(p);
  GapReportMsg m;
  m.ctx = DecodeCtx(r);
  const std::uint32_t count = r.U32();
  if (!r.ok() || !PlausibleCount(count, r.remaining(), 8)) {
    return std::nullopt;
  }
  m.lost.resize(count);
  for (auto& range : m.lost) {
    range.first = r.U32();
    range.last = r.U32();
    if (!r.ok() || range.first == 0 || range.last < range.first) {
      return std::nullopt;
    }
  }
  return m;
}

std::vector<std::uint8_t> MetricsMsg::Encode() const {
  ByteWriter w;
  w.U32(snapshot_id);
  w.U8(full);
  w.U32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.U16(static_cast<std::uint16_t>(e.name.size()));
    w.Bytes({reinterpret_cast<const std::uint8_t*>(e.name.data()),
             e.name.size()});
    w.U8(e.kind);
    w.F64(e.value);
  }
  return w.Take();
}

std::optional<MetricsMsg> MetricsMsg::Decode(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  MetricsMsg m;
  m.snapshot_id = r.U32();
  m.full = r.U8();
  const std::uint32_t count = r.U32();
  // Smallest honest entry: 2-byte length + 1-char name + kind + f64.
  if (!r.ok() || m.full > 1 || !PlausibleCount(count, r.remaining(), 12)) {
    return std::nullopt;
  }
  m.entries.resize(count);
  for (auto& e : m.entries) {
    const std::uint16_t len = r.U16();
    if (!r.ok() || len == 0 || len > kMaxMetricNameBytes) return std::nullopt;
    const auto bytes = r.Bytes(len);
    e.name.assign(bytes.begin(), bytes.end());
    e.kind = r.U8();
    e.value = r.F64();
    if (!r.ok() || e.kind > 1) return std::nullopt;
  }
  return m;
}

}  // namespace rfdump::net
