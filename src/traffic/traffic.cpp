#include "rfdump/traffic/traffic.hpp"

#include <algorithm>

#include "rfdump/mac80211/frames.hpp"
#include "rfdump/mac80211/timing.hpp"
#include "rfdump/phy80211/modulator.hpp"
#include "rfdump/phyble/adv.hpp"
#include "rfdump/phybt/hopping.hpp"
#include "rfdump/phybt/modulator.hpp"
#include "rfdump/phyzigbee/phy.hpp"
#include "rfdump/rfsources/sources.hpp"
#include "rfdump/util/bits.hpp"
#include "rfdump/util/crc.hpp"

namespace rfdump::traffic {
namespace {

using mac80211::MacAddress;

constexpr MacAddress kStaA = {0x00, 0x16, 0xCB, 0x00, 0x00, 0x01};
constexpr MacAddress kStaB = {0x00, 0x16, 0xCB, 0x00, 0x00, 0x02};
constexpr MacAddress kAp = {0x02, 0x1A, 0x11, 0x00, 0x00, 0x01};

std::int64_t UsToSamples(double us) {
  return static_cast<std::int64_t>(us * 1e-6 * dsp::kSampleRateHz + 0.5);
}

double Jitter(emu::Ether& ether, double base, double jitter) {
  if (jitter <= 0.0) return base;
  return base + (2.0 * ether.rng().UniformDouble() - 1.0) * jitter;
}

// Emits one 802.11 frame; returns its airtime in samples (excluding padding).
// Ground-truth `kind` carries the payload rate as a suffix ("DATA@1Mbps") so
// the Table 4 experiment can build ideal rate filters from truth alone.
std::int64_t EmitWifiFrame(emu::Ether& ether, std::int64_t at,
                           std::span<const std::uint8_t> mpdu,
                           phy80211::Rate rate, double snr_db,
                           std::uint32_t flow_id, std::uint64_t packet_id,
                           const char* kind) {
  phy80211::Modulator mod;
  const auto burst = mod.Modulate(mpdu, rate);
  emu::TruthRecord meta;
  meta.protocol = core::Protocol::kWifi80211b;
  meta.flow_id = flow_id;
  meta.packet_id = packet_id;
  meta.kind = std::string(kind) + "@" + phy80211::RateName(rate);
  ether.AddBurst(burst, at, snr_db, meta);
  return static_cast<std::int64_t>(
      phy80211::Modulator::FrameSampleCount(mpdu.size(), rate));
}

}  // namespace

SessionResult GenerateUnicastPing(emu::Ether& ether, const WifiPingConfig& cfg,
                                  std::int64_t start_sample) {
  SessionResult result;
  const std::int64_t sifs = UsToSamples(mac80211::kSifsUs);
  std::int64_t t = start_sample;
  std::uint16_t mac_seq_a = 0, mac_seq_b = 0;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const auto seq = static_cast<std::uint16_t>(i);
    // Echo request A -> B.
    const auto req_body = mac80211::BuildIcmpEchoBody(false, 0x0A0B, seq,
                                                      cfg.icmp_payload);
    const auto req =
        mac80211::BuildDataFrame(kStaB, kStaA, kAp, mac_seq_a++, req_body,
                                 static_cast<std::uint16_t>(mac80211::kSifsUs));
    std::int64_t air = EmitWifiFrame(ether, t, req, cfg.rate,
                                     Jitter(ether, cfg.snr_db,
                                            cfg.snr_jitter_db),
                                     cfg.flow_id, seq, "DATA");
    ++result.packets;
    t += air + sifs;
    // MAC ACK from B.
    const auto ack = mac80211::BuildAckFrame(kStaA);
    air = EmitWifiFrame(ether, t, ack, cfg.rate,
                        Jitter(ether, cfg.snr_db, cfg.snr_jitter_db),
                        cfg.flow_id, seq, "ACK");
    ++result.packets;
    t += air;
    // Reply turnaround: DIFS + small host delay.
    t += UsToSamples(mac80211::kDifsUs + 120.0 +
                     ether.rng().UniformDouble() * 60.0);
    // Echo reply B -> A.
    const auto rep_body =
        mac80211::BuildIcmpEchoBody(true, 0x0A0B, seq, cfg.icmp_payload);
    const auto rep =
        mac80211::BuildDataFrame(kStaA, kStaB, kAp, mac_seq_b++, rep_body,
                                 static_cast<std::uint16_t>(mac80211::kSifsUs));
    air = EmitWifiFrame(ether, t, rep, cfg.rate,
                        Jitter(ether, cfg.snr_db, cfg.snr_jitter_db),
                        cfg.flow_id, seq, "DATA");
    ++result.packets;
    t += air + sifs;
    const auto ack2 = mac80211::BuildAckFrame(kStaB);
    air = EmitWifiFrame(ether, t, ack2, cfg.rate,
                        Jitter(ether, cfg.snr_db, cfg.snr_jitter_db),
                        cfg.flow_id, seq, "ACK");
    ++result.packets;
    t += air;
    // Next ping at the configured interval from this ping's start (or right
    // after this exchange if the interval is shorter).
    const std::int64_t next =
        start_sample +
        static_cast<std::int64_t>((static_cast<double>(i + 1)) *
                                  cfg.interval_us * 1e-6 *
                                  dsp::kSampleRateHz);
    t = std::max(t + UsToSamples(mac80211::kDifsUs), next);
  }
  result.end_sample = t;
  return result;
}

SessionResult GenerateBroadcastFlood(emu::Ether& ether,
                                     const WifiBroadcastConfig& cfg,
                                     std::int64_t start_sample) {
  SessionResult result;
  std::int64_t t = start_sample;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const auto seq = static_cast<std::uint16_t>(i);
    const auto body = mac80211::BuildIcmpEchoBody(false, 0x0B0C, seq,
                                                  cfg.icmp_payload);
    const auto frame = mac80211::BuildDataFrame(
        mac80211::kBroadcast, kStaA, kAp, seq, body, 0);
    const std::int64_t air =
        EmitWifiFrame(ether, t, frame, cfg.rate,
                      Jitter(ether, cfg.snr_db, cfg.snr_jitter_db),
                      cfg.flow_id, seq, "DATA");
    ++result.packets;
    const auto k = static_cast<double>(ether.rng().UniformInt(
        0, static_cast<std::uint64_t>(cfg.max_backoff_slots)));
    t += air + UsToSamples(mac80211::kDifsUs + k * mac80211::kSlotTimeUs);
  }
  result.end_sample = t;
  return result;
}

SessionResult GenerateBeacons(emu::Ether& ether, const BeaconConfig& cfg,
                              std::int64_t start_sample) {
  SessionResult result;
  std::int64_t t = start_sample;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const auto frame = mac80211::BuildBeaconFrame(
        kAp, kAp, static_cast<std::uint16_t>(i), "emulab",
        static_cast<std::uint64_t>(t / 8));
    EmitWifiFrame(ether, t, frame, phy80211::Rate::k1Mbps, cfg.snr_db,
                  cfg.flow_id, i, "BEACON");
    ++result.packets;
    t += UsToSamples(mac80211::kBeaconIntervalUs);
  }
  result.end_sample = t;
  return result;
}

std::size_t L2PingSizeForSeq(std::uint64_t seq) {
  return 225 + static_cast<std::size_t>(seq % 115);
}

SessionResult GenerateL2Ping(emu::Ether& ether, const L2PingConfig& cfg,
                             std::int64_t start_sample) {
  SessionResult result;
  const std::int64_t slot = UsToSamples(phybt::kSlotUs);
  std::uint32_t clk = cfg.clk_start;
  std::int64_t t = start_sample;
  phybt::PacketHeader hdr;
  hdr.type = phybt::PacketType::kDh5;
  hdr.lt_addr = 1;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const std::size_t size = L2PingSizeForSeq(i);
    std::vector<std::uint8_t> payload(size);
    for (std::size_t b = 0; b < size; ++b) {
      payload[b] = static_cast<std::uint8_t>((i + b) & 0xFF);
    }
    // Master request (even slot) and slave response (after 5 slots, DH5).
    for (int dir = 0; dir < 2; ++dir) {
      hdr.seqn = (i % 2) != 0;
      hdr.arqn = dir == 1;
      const auto burst =
          phybt::ModulatePacket(cfg.address, hdr, payload, clk);
      emu::TruthRecord meta;
      meta.protocol = core::Protocol::kBluetooth;
      meta.flow_id = cfg.flow_id;
      meta.packet_id = i;
      meta.kind = dir == 0 ? "L2PING-REQ" : "L2PING-RSP";
      if (burst.samples.empty()) {
        meta.start_sample = t;
        meta.end_sample =
            t + UsToSamples(phybt::PacketAirtimeUs(hdr.type, size));
        ether.AddInvisible(meta);
      } else {
        ether.AddBurst(burst.samples, t,
                       Jitter(ether, cfg.snr_db, cfg.snr_jitter_db), meta);
      }
      ++result.packets;
      clk += static_cast<std::uint32_t>(phybt::SlotsFor(hdr.type));
      t += slot * static_cast<std::int64_t>(phybt::SlotsFor(hdr.type));
    }
  }
  result.end_sample = t;
  return result;
}

SessionResult GenerateMicrowave(emu::Ether& ether, const MicrowaveConfig& cfg,
                                std::int64_t start_sample,
                                std::int64_t duration_samples) {
  SessionResult result;
  rfsources::MicrowaveOven oven;
  // Generate in on-phase bursts so each burst is one truth record.
  const double period = dsp::kSampleRateHz / oven.config().ac_hz;
  const auto on_len = static_cast<std::int64_t>(period * oven.config().duty);
  std::int64_t t = start_sample -
                   static_cast<std::int64_t>(
                       std::fmod(static_cast<double>(start_sample), period));
  const std::int64_t end = start_sample + duration_samples;
  for (; t < end; t += static_cast<std::int64_t>(period)) {
    const std::int64_t burst_start = std::max(t, start_sample);
    const std::int64_t burst_end = std::min(t + on_len, end);
    if (burst_end <= burst_start) continue;
    const auto burst = oven.Generate(
        burst_start, static_cast<std::size_t>(burst_end - burst_start));
    emu::TruthRecord meta;
    meta.protocol = core::Protocol::kMicrowave;
    meta.flow_id = cfg.flow_id;
    meta.packet_id = result.packets;
    meta.kind = "MW-BURST";
    ether.AddBurst(burst, burst_start, cfg.snr_db, meta);
    ++result.packets;
  }
  result.end_sample = end;
  return result;
}

SessionResult GenerateCampus(emu::Ether& ether, const CampusConfig& cfg,
                             std::int64_t start_sample) {
  SessionResult result;
  const auto duration = static_cast<std::int64_t>(
      cfg.duration_sec * dsp::kSampleRateHz);
  const std::int64_t end = start_sample + duration;

  // Background: AP beacons across the whole window.
  {
    BeaconConfig bcfg;
    bcfg.count = static_cast<std::size_t>(
        cfg.duration_sec * 1e6 / mac80211::kBeaconIntervalUs) + 1;
    bcfg.snr_db = cfg.snr_db;
    bcfg.flow_id = cfg.flow_id + 1;
    const auto r = GenerateBeacons(ether, bcfg, start_sample + 4000);
    result.packets += r.packets;
  }
  // Background: Bluetooth session.
  if (cfg.include_bluetooth) {
    L2PingConfig lcfg;
    lcfg.count = static_cast<std::size_t>(cfg.duration_sec * 1e6 /
                                          (10.0 * phybt::kSlotUs));
    lcfg.snr_db = cfg.snr_db;
    lcfg.snr_jitter_db = cfg.snr_jitter_db;
    lcfg.flow_id = cfg.flow_id + 2;
    const auto r = GenerateL2Ping(ether, lcfg, start_sample + 12000);
    result.packets += r.packets;
  }
  if (cfg.include_microwave) {
    MicrowaveConfig mcfg;
    mcfg.snr_db = cfg.snr_db + 5.0;
    mcfg.flow_id = cfg.flow_id + 3;
    const auto r = GenerateMicrowave(ether, mcfg, start_sample, duration);
    result.packets += r.packets;
  }

  // Foreground: unicast exchanges at mixed rates plus occasional ARP-like
  // broadcasts, with exponential idle gaps.
  const phy80211::Rate rates[4] = {phy80211::Rate::k1Mbps,
                                   phy80211::Rate::k2Mbps,
                                   phy80211::Rate::k5_5Mbps,
                                   phy80211::Rate::k11Mbps};
  double weight_sum = 0.0;
  for (double w : cfg.rate_weights) weight_sum += w;
  std::int64_t t = start_sample + 2000;
  std::uint16_t seq = 0;
  const std::int64_t sifs = UsToSamples(mac80211::kSifsUs);
  while (t < end) {
    const double u = ether.rng().UniformDouble();
    if (u < 0.12) {
      // ARP-ish small broadcast at the base rate.
      const auto body = mac80211::BuildIcmpEchoBody(false, 0x0D0E, seq, 28);
      const auto frame = mac80211::BuildDataFrame(mac80211::kBroadcast, kStaA,
                                                  kAp, seq, body, 0);
      t += EmitWifiFrame(ether, t, frame, phy80211::Rate::k1Mbps,
                         Jitter(ether, cfg.snr_db, cfg.snr_jitter_db),
                         cfg.flow_id, seq, "ARP");
      ++result.packets;
    } else {
      // Unicast DATA + ACK at a weighted-random payload rate.
      double pick = ether.rng().UniformDouble() * weight_sum;
      phy80211::Rate rate = rates[3];
      for (int i = 0; i < 4; ++i) {
        if (pick < cfg.rate_weights[i]) {
          rate = rates[i];
          break;
        }
        pick -= cfg.rate_weights[i];
      }
      const std::size_t payload =
          100 + static_cast<std::size_t>(ether.rng().UniformInt(0, 1300));
      const auto body = mac80211::BuildIcmpEchoBody(false, 0x0D0F, seq,
                                                    payload);
      const auto frame = mac80211::BuildDataFrame(
          kStaB, kStaA, kAp, seq, body,
          static_cast<std::uint16_t>(mac80211::kSifsUs));
      t += EmitWifiFrame(ether, t, frame, rate,
                         Jitter(ether, cfg.snr_db, cfg.snr_jitter_db),
                         cfg.flow_id, seq, "DATA");
      t += sifs;
      const auto ack = mac80211::BuildAckFrame(kStaA);
      t += EmitWifiFrame(ether, t, ack, rate,
                         Jitter(ether, cfg.snr_db, cfg.snr_jitter_db),
                         cfg.flow_id, seq, "ACK");
      result.packets += 2;
    }
    ++seq;
    // DIFS + backoff + exponential idle.
    const double backoff =
        static_cast<double>(ether.rng().UniformInt(0, 15)) *
        mac80211::kSlotTimeUs;
    const double idle =
        -cfg.mean_idle_us * std::log(1.0 - ether.rng().UniformDouble());
    t += UsToSamples(mac80211::kDifsUs + backoff + idle);
  }
  result.end_sample = end;
  return result;
}

SessionResult GenerateZigbee(emu::Ether& ether, const ZigbeeConfig& cfg,
                             std::int64_t start_sample) {
  SessionResult result;
  std::int64_t t = start_sample;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    std::vector<std::uint8_t> psdu(cfg.psdu_bytes);
    for (std::size_t b = 0; b + 2 < psdu.size(); ++b) {
      psdu[b] = static_cast<std::uint8_t>((i * 7 + b) & 0xFF);
    }
    // FCS over the PSDU minus the last two bytes (kept consistent with
    // phyzigbee::DecodeFrame's check).
    const std::uint16_t fcs = util::Crc16CcittBits(
        util::BytesToBitsLsbFirst(
            std::span<const std::uint8_t>(psdu).first(psdu.size() - 2)),
        0x0000);
    psdu[psdu.size() - 2] = static_cast<std::uint8_t>(fcs & 0xFF);
    psdu[psdu.size() - 1] = static_cast<std::uint8_t>(fcs >> 8);
    const auto burst = phyzigbee::ModulateFrame(psdu);
    emu::TruthRecord meta;
    meta.protocol = core::Protocol::kZigbee;
    meta.flow_id = cfg.flow_id;
    meta.packet_id = i;
    meta.kind = "ZB-DATA";
    ether.AddBurst(burst, t, cfg.snr_db, meta);
    ++result.packets;
    t += UsToSamples(
        std::max(cfg.interval_us,
                 phyzigbee::FrameAirtimeUs(cfg.psdu_bytes) +
                     phyzigbee::kLifsUs));
  }
  result.end_sample = t;
  return result;
}

SessionResult GenerateBleAdv(emu::Ether& ether, const BleAdvConfig& cfg,
                             std::int64_t start_sample) {
  // Gap between the three PDUs of one advertising event (the spec allows up
  // to 10 ms; kept short so one event fits comfortably in a capture block).
  constexpr double kInterPduGapUs = 150.0;
  SessionResult result;
  std::int64_t t = start_sample;
  const std::size_t adv_bytes =
      std::min(cfg.adv_bytes, phyble::kMaxAdvPayloadBytes);
  for (std::size_t i = 0; i < cfg.count; ++i) {
    // Same deterministic payload on all three channels of one event.
    std::vector<std::uint8_t> payload(adv_bytes);
    for (std::size_t b = 0; b < payload.size(); ++b) {
      payload[b] = static_cast<std::uint8_t>((i * 11 + b) & 0xFF);
    }
    std::int64_t at = t;
    for (std::size_t leg = 0; leg < std::size(phyble::kAdvChannels); ++leg) {
      const int channel = phyble::kAdvChannels[leg];
      const auto burst =
          phyble::ModulateAdv(channel, phyble::AdvPduType::kAdvNonconnInd,
                              payload);
      emu::TruthRecord meta;
      meta.protocol = core::Protocol::kBleAdv;
      meta.flow_id = cfg.flow_id;
      meta.packet_id = i * std::size(phyble::kAdvChannels) + leg;
      meta.kind = "BLE-ADV";
      ether.AddBurst(burst.samples, at, cfg.snr_db, meta);
      ++result.packets;
      at += UsToSamples(phyble::AdvAirtimeUs(adv_bytes) + kInterPduGapUs);
    }
    t += std::max(
        UsToSamples(cfg.interval_us),
        at - t);
  }
  result.end_sample = t;
  return result;
}

}  // namespace rfdump::traffic
