#include "rfdump/mac80211/frames.hpp"

#include <cstdio>

#include "rfdump/util/crc.hpp"

namespace rfdump::mac80211 {
namespace {

void AppendU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void AppendAddr(std::vector<std::uint8_t>& out, const MacAddress& a) {
  out.insert(out.end(), a.begin(), a.end());
}

void AppendFcs(std::vector<std::uint8_t>& out) {
  const std::uint32_t fcs = util::Crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFF));
  }
}

std::uint16_t ReadU16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>(b[at] | (b[at + 1] << 8));
}

MacAddress ReadAddr(std::span<const std::uint8_t> b, std::size_t at) {
  MacAddress a{};
  for (int i = 0; i < 6; ++i) a[i] = b[at + i];
  return a;
}

// 16-bit ones-complement checksum (IP/ICMP).
std::uint16_t InternetChecksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (data.size() % 2) sum += static_cast<std::uint32_t>(data.back() << 8);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace

std::string ToString(const MacAddress& addr) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", addr[0],
                addr[1], addr[2], addr[3], addr[4], addr[5]);
  return buf;
}

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kData: return "DATA";
    case FrameKind::kAck: return "ACK";
    case FrameKind::kBeacon: return "BEACON";
    case FrameKind::kOther: return "OTHER";
  }
  return "?";
}

std::vector<std::uint8_t> BuildDataFrame(const MacAddress& dest,
                                         const MacAddress& src,
                                         const MacAddress& bssid,
                                         std::uint16_t sequence,
                                         std::span<const std::uint8_t> body,
                                         std::uint16_t duration_us) {
  std::vector<std::uint8_t> out;
  out.reserve(DataFrameBytes(body.size()));
  // Frame control: protocol 0, type 2 (data), subtype 0, FromDS=1.
  out.push_back(0x08);
  out.push_back(0x02);
  AppendU16(out, duration_us);
  AppendAddr(out, dest);
  AppendAddr(out, src);
  AppendAddr(out, bssid);
  AppendU16(out, static_cast<std::uint16_t>(sequence << 4));
  out.insert(out.end(), body.begin(), body.end());
  AppendFcs(out);
  return out;
}

std::vector<std::uint8_t> BuildAckFrame(const MacAddress& dest) {
  std::vector<std::uint8_t> out;
  out.reserve(kAckFrameBytes);
  // Frame control: type 1 (control), subtype 13 (ACK).
  out.push_back(0xD4);
  out.push_back(0x00);
  AppendU16(out, 0);
  AppendAddr(out, dest);
  AppendFcs(out);
  return out;
}

std::vector<std::uint8_t> BuildBeaconFrame(const MacAddress& src,
                                           const MacAddress& bssid,
                                           std::uint16_t sequence,
                                           const std::string& ssid,
                                           std::uint64_t timestamp_us) {
  std::vector<std::uint8_t> out;
  // Frame control: type 0 (mgmt), subtype 8 (beacon).
  out.push_back(0x80);
  out.push_back(0x00);
  AppendU16(out, 0);
  AppendAddr(out, kBroadcast);
  AppendAddr(out, src);
  AppendAddr(out, bssid);
  AppendU16(out, static_cast<std::uint16_t>(sequence << 4));
  // Body: timestamp(8) + beacon interval(2) + capabilities(2) + SSID element.
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((timestamp_us >> (8 * i)) & 0xFF));
  }
  AppendU16(out, 100);     // beacon interval: 100 TU
  AppendU16(out, 0x0401);  // ESS + short preamble capable
  out.push_back(0x00);     // element id: SSID
  out.push_back(static_cast<std::uint8_t>(ssid.size()));
  out.insert(out.end(), ssid.begin(), ssid.end());
  AppendFcs(out);
  return out;
}

std::vector<std::uint8_t> BuildIcmpEchoBody(bool is_reply, std::uint16_t ident,
                                            std::uint16_t icmp_seq,
                                            std::size_t payload_bytes) {
  std::vector<std::uint8_t> body;
  body.reserve(IcmpEchoBodyBytes(payload_bytes));
  // LLC/SNAP header for IPv4.
  const std::uint8_t llc[8] = {0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00, 0x08, 0x00};
  body.insert(body.end(), llc, llc + 8);
  // IPv4 header (20 bytes, no options).
  const std::uint16_t ip_len =
      static_cast<std::uint16_t>(20 + 8 + payload_bytes);
  std::vector<std::uint8_t> ip = {
      0x45, 0x00,
      static_cast<std::uint8_t>(ip_len >> 8),
      static_cast<std::uint8_t>(ip_len & 0xFF),
      0x00, 0x00, 0x40, 0x00,  // id, flags: DF
      0x40, 0x01, 0x00, 0x00,  // TTL 64, protocol ICMP, checksum placeholder
      10, 0, 0, 1,             // src 10.0.0.1
      10, 0, 0, 2,             // dst 10.0.0.2
  };
  const std::uint16_t ip_csum = InternetChecksum(ip);
  ip[10] = static_cast<std::uint8_t>(ip_csum >> 8);
  ip[11] = static_cast<std::uint8_t>(ip_csum & 0xFF);
  body.insert(body.end(), ip.begin(), ip.end());
  // ICMP echo header + payload.
  std::vector<std::uint8_t> icmp = {
      static_cast<std::uint8_t>(is_reply ? 0x00 : 0x08), 0x00, 0x00, 0x00,
      static_cast<std::uint8_t>(ident >> 8),
      static_cast<std::uint8_t>(ident & 0xFF),
      static_cast<std::uint8_t>(icmp_seq >> 8),
      static_cast<std::uint8_t>(icmp_seq & 0xFF),
  };
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    icmp.push_back(static_cast<std::uint8_t>(i & 0xFF));
  }
  const std::uint16_t icmp_csum = InternetChecksum(icmp);
  icmp[2] = static_cast<std::uint8_t>(icmp_csum >> 8);
  icmp[3] = static_cast<std::uint8_t>(icmp_csum & 0xFF);
  body.insert(body.end(), icmp.begin(), icmp.end());
  return body;
}

std::optional<Frame> ParseFrame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kAckFrameBytes) return std::nullopt;
  // FCS check.
  const std::uint32_t fcs = util::Crc32(bytes.first(bytes.size() - 4));
  std::uint32_t rx_fcs = 0;
  for (int i = 0; i < 4; ++i) {
    rx_fcs |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i])
              << (8 * i);
  }
  if (fcs != rx_fcs) return std::nullopt;

  Frame f;
  const std::uint8_t fc0 = bytes[0];
  const unsigned type = (fc0 >> 2) & 0x3;
  const unsigned subtype = (fc0 >> 4) & 0xF;
  f.duration = ReadU16(bytes, 2);
  f.addr1 = ReadAddr(bytes, 4);
  if (type == 1 && subtype == 13) {
    f.kind = FrameKind::kAck;
    return f;
  }
  if (bytes.size() < 24 + 4) return std::nullopt;
  f.addr2 = ReadAddr(bytes, 10);
  f.addr3 = ReadAddr(bytes, 16);
  f.sequence = static_cast<std::uint16_t>(ReadU16(bytes, 22) >> 4);
  f.body.assign(bytes.begin() + 24, bytes.end() - 4);
  if (type == 2 && subtype == 0) {
    f.kind = FrameKind::kData;
  } else if (type == 0 && subtype == 8) {
    f.kind = FrameKind::kBeacon;
  } else {
    f.kind = FrameKind::kOther;
  }
  return f;
}

std::optional<std::uint16_t> ParseIcmpEchoSeq(
    std::span<const std::uint8_t> body) {
  // LLC/SNAP(8) + IP(20) + ICMP(>=8); check the SNAP IPv4 ethertype and the
  // ICMP echo type fields.
  if (body.size() < 36) return std::nullopt;
  if (body[0] != 0xAA || body[1] != 0xAA || body[6] != 0x08 ||
      body[7] != 0x00) {
    return std::nullopt;
  }
  if ((body[8] >> 4) != 4 || body[17] != 0x01) return std::nullopt;  // IPv4/ICMP
  const std::uint8_t icmp_type = body[28];
  if (icmp_type != 0x00 && icmp_type != 0x08) return std::nullopt;
  return static_cast<std::uint16_t>((body[34] << 8) | body[35]);
}

}  // namespace rfdump::mac80211
