#include "rfdump/obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace rfdump::obs {
namespace {

// Small dense per-thread ids (chrome://tracing renders one row per tid).
std::uint32_t ThisThreadId() {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local std::uint32_t tid = next_tid.fetch_add(1);
  return tid;
}

void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

}  // namespace

Tracer& Tracer::Default() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Enable(std::size_t capacity) {
#if RFDUMP_OBS_ENABLED
  enabled_.store(false, std::memory_order_relaxed);
  ring_.assign(capacity > 0 ? capacity : 1, Event{});
  next_.store(0, std::memory_order_relaxed);
  epoch_.Reset();
  enabled_.store(true, std::memory_order_release);
#else
  (void)capacity;
#endif
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Record(const char* name, double ts_us, double dur_us) noexcept {
  if (!enabled() || ring_.empty()) return;
  const std::uint64_t slot =
      next_.fetch_add(1, std::memory_order_relaxed) % ring_.size();
  ring_[slot] = Event{name, ts_us, dur_us, ThisThreadId()};
}

std::vector<Tracer::Event> Tracer::Events() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  const std::size_t count =
      static_cast<std::size_t>(std::min<std::uint64_t>(n, ring_.size()));
  std::vector<Event> out(ring_.begin(),
                         ring_.begin() + static_cast<std::ptrdiff_t>(count));
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;  // parents before their nested children
  });
  return out;
}

std::string Tracer::ExportChromeJson() const {
  const auto events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[128];
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, e.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"rfdump\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  e.ts_us, e.dur_us, e.tid);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace rfdump::obs
