#include "rfdump/obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "rfdump/obs/metrics.hpp"

namespace rfdump::obs {
namespace {

// Small dense per-thread ids (chrome://tracing renders one row per tid).
std::uint32_t ThisThreadId() {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local std::uint32_t tid = next_tid.fetch_add(1);
  return tid;
}

void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

void AppendEventJson(std::string& out, const Tracer::Event& e,
                     std::uint32_t pid) {
  char buf[192];
  out += "{\"name\":\"";
  AppendJsonEscaped(out, e.name);
  std::snprintf(buf, sizeof(buf),
                "\",\"cat\":\"rfdump\",\"ph\":\"X\",\"ts\":%.3f,"
                "\"dur\":%.3f,\"pid\":%u,\"tid\":%u",
                e.ts_us, e.dur_us, pid, e.tid);
  out += buf;
  if (e.trace_id != 0) {
    // Ids as hex strings: u64 exceeds JSON double precision.
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"trace_id\":\"0x%" PRIx64
                  "\",\"span_id\":\"0x%" PRIx64
                  "\",\"parent_span_id\":\"0x%" PRIx64 "\"}",
                  e.trace_id, e.span_id, e.parent_span);
    out += buf;
  }
  out += '}';
}

#if RFDUMP_OBS_ENABLED
Counter& DroppedEventsCounter() {
  static Counter& c =
      Registry::Default().GetCounter("rfdump_tracer_dropped_events_total");
  return c;
}
#endif

}  // namespace

std::uint64_t NewSpanId() noexcept {
  static std::atomic<std::uint64_t> next{0x5266447556D50000ull};
  std::uint64_t x = next.fetch_add(1, std::memory_order_relaxed);
  // splitmix64 finalizer: bijective, so sequential counter values map to
  // well-spread unique ids.
  x += 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x != 0 ? x : 1;
}

Tracer& Tracer::Default() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Enable(std::size_t capacity) {
#if RFDUMP_OBS_ENABLED
  enabled_.store(false, std::memory_order_relaxed);
  ring_.assign(capacity > 0 ? capacity : 1, Event{});
  next_.store(0, std::memory_order_relaxed);
  epoch_.Reset();
  enabled_.store(true, std::memory_order_release);
#else
  (void)capacity;
#endif
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Record(const char* name, double ts_us, double dur_us) noexcept {
  RecordLinked(name, ts_us, dur_us, 0, 0, 0);
}

void Tracer::RecordLinked(const char* name, double ts_us, double dur_us,
                          std::uint64_t trace_id, std::uint64_t span_id,
                          std::uint64_t parent_span) noexcept {
  if (!enabled() || ring_.empty()) return;
  const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
#if RFDUMP_OBS_ENABLED
  // idx >= capacity means this write recycles a slot: one old span is lost.
  if (idx >= ring_.size()) DroppedEventsCounter().Inc();
#endif
  ring_[idx % ring_.size()] =
      Event{name, ts_us, dur_us, ThisThreadId(), trace_id, span_id,
            parent_span};
}

std::vector<Tracer::Event> Tracer::Events() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  const std::size_t count =
      static_cast<std::size_t>(std::min<std::uint64_t>(n, ring_.size()));
  std::vector<Event> out(ring_.begin(),
                         ring_.begin() + static_cast<std::ptrdiff_t>(count));
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;  // parents before their nested children
  });
  return out;
}

std::string Tracer::ExportChromeJson() const {
  const ProcessTrace self{"rfdump", 1, Events()};
  return ExportFleetChromeJson({&self, 1});
}

std::string ExportFleetChromeJson(std::span<const ProcessTrace> processes) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const ProcessTrace& p : processes) {
    // Name the process row so the viewer shows "sensor-0", "aggregator", …
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    std::snprintf(buf, sizeof(buf), "%u", p.pid);
    out += buf;
    out += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(out, p.name.c_str());
    out += "\"}}";
    for (const Tracer::Event& e : p.events) {
      out += ',';
      AppendEventJson(out, e, p.pid);
    }
  }
  out += "]}";
  return out;
}

}  // namespace rfdump::obs
