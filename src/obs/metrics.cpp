#include "rfdump/obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

namespace rfdump::obs {
namespace {

#if RFDUMP_OBS_ENABLED
void AtomicAddDouble(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}
#endif

// "rfdump_x_total{protocol=\"wifi\"}" -> family "rfdump_x_total". The `# TYPE`
// exposition line names the family, not the labeled series.
std::string FamilyOf(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Splits "name{labels}" so extra labels (histogram `le`) can be merged in.
void SplitLabels(const std::string& name, std::string& base,
                 std::string& labels) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) {
    base = name;
    labels.clear();
  } else {
    base = name.substr(0, brace);
    labels = name.substr(brace + 1, name.size() - brace - 2);  // sans braces
  }
}

}  // namespace

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) noexcept {
#if RFDUMP_OBS_ENABLED
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
#else
  (void)v;
#endif
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (static_cast<double>(cum) < rank) continue;
    if (i >= bounds.size()) {
      // Rank fell in the +Inf bucket: the best bounded claim we can make.
      return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : bounds.back();
    }
    const double hi = bounds[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds[i - 1];
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) return hi;
    const double before = static_cast<double>(cum - in_bucket);
    const double frac = (rank - before) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : bounds.back();
}

void Histogram::Reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Registry

Registry& Registry::Default() {
  static Registry registry;
  return registry;
}

#if RFDUMP_OBS_ENABLED

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

#else  // RFDUMP_OBS disabled: hand out shared dummies, register nothing.

Counter& Registry::GetCounter(const std::string&) {
  static Counter dummy;
  return dummy;
}

Gauge& Registry::GetGauge(const std::string&) {
  static Gauge dummy;
  return dummy;
}

Histogram& Registry::GetHistogram(const std::string&, std::vector<double>) {
  static Histogram dummy({});
  return dummy;
}

#endif

std::uint64_t Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<MetricValue> Registry::SnapshotValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricValue> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, MetricKind::kCounter,
                   static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, MetricKind::kGauge, g->value()});
  }
  // Maps are each sorted; interleave back into one name order.
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string Registry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  std::string last_family;
  const auto type_line = [&](const std::string& name, const char* kind) {
    const std::string family = FamilyOf(name);
    if (family != last_family) {
      out += "# TYPE " + family + " " + kind + "\n";
      last_family = family;
    }
  };
  for (const auto& [name, c] : counters_) {
    type_line(name, "counter");
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", c->value());
    out += name + line;
  }
  for (const auto& [name, g] : gauges_) {
    type_line(name, "gauge");
    out += name + " " + FmtDouble(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    type_line(name, "histogram");
    const auto s = h->GetSnapshot();
    std::string base, labels;
    SplitLabels(name, base, labels);
    const std::string sep = labels.empty() ? "" : ",";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      cum += s.counts[i];
      std::snprintf(line, sizeof(line), "%s_bucket{%s%sle=\"%s\"} %" PRIu64
                    "\n", base.c_str(), labels.c_str(), sep.c_str(),
                    FmtDouble(s.bounds[i]).c_str(), cum);
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_bucket{%s%sle=\"+Inf\"} %" PRIu64
                  "\n", base.c_str(), labels.c_str(), sep.c_str(), s.count);
    out += line;
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    out += base + "_sum" + suffix + " " + FmtDouble(s.sum) + "\n";
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", s.count);
    out += base + "_count" + suffix + line;
  }
#if !RFDUMP_OBS_ENABLED
  out += "# rfdump observability compiled out (RFDUMP_OBS=OFF)\n";
#endif
  return out;
}

// ------------------------------------------------------- label handling

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string WithLabel(const std::string& name, const std::string& key,
                      const std::string& value) {
  const std::string pair = key + "=\"" + EscapeLabelValue(value) + "\"";
  const auto brace = name.find('{');
  if (brace == std::string::npos) return name + "{" + pair + "}";
  // Insert before the closing brace, after the existing labels.
  std::string out = name;
  const auto close = out.rfind('}');
  const bool empty_set = close == brace + 1;
  out.insert(close, (empty_set ? "" : ",") + pair);
  return out;
}

std::string ExpositionBuilder::Text() const {
  std::vector<const MetricValue*> sorted;
  sorted.reserve(values_.size());
  for (const auto& v : values_) sorted.push_back(&v);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const MetricValue* a, const MetricValue* b) {
                     return a->name < b->name;
                   });
  std::string out;
  char line[64];
  std::string last_family;
  for (const MetricValue* v : sorted) {
    const std::string family = FamilyOf(v->name);
    if (family != last_family) {
      out += "# TYPE " + family + " " +
             (v->kind == MetricKind::kCounter ? "counter" : "gauge") + "\n";
      last_family = family;
    }
    const bool integral = v->kind == MetricKind::kCounter &&
                          std::floor(v->value) == v->value &&
                          std::abs(v->value) < 9.007199254740992e15;
    if (integral) {
      std::snprintf(line, sizeof(line), " %" PRId64 "\n",
                    static_cast<std::int64_t>(v->value));
    } else {
      std::snprintf(line, sizeof(line), " %g\n", v->value);
    }
    out += v->name + line;
  }
  return out;
}

}  // namespace rfdump::obs
