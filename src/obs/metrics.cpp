#include "rfdump/obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace rfdump::obs {
namespace {

#if RFDUMP_OBS_ENABLED
void AtomicAddDouble(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}
#endif

// "rfdump_x_total{protocol=\"wifi\"}" -> family "rfdump_x_total". The `# TYPE`
// exposition line names the family, not the labeled series.
std::string FamilyOf(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Splits "name{labels}" so extra labels (histogram `le`) can be merged in.
void SplitLabels(const std::string& name, std::string& base,
                 std::string& labels) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) {
    base = name;
    labels.clear();
  } else {
    base = name.substr(0, brace);
    labels = name.substr(brace + 1, name.size() - brace - 2);  // sans braces
  }
}

}  // namespace

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) noexcept {
#if RFDUMP_OBS_ENABLED
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
#else
  (void)v;
#endif
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::Reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Registry

Registry& Registry::Default() {
  static Registry registry;
  return registry;
}

#if RFDUMP_OBS_ENABLED

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

#else  // RFDUMP_OBS disabled: hand out shared dummies, register nothing.

Counter& Registry::GetCounter(const std::string&) {
  static Counter dummy;
  return dummy;
}

Gauge& Registry::GetGauge(const std::string&) {
  static Gauge dummy;
  return dummy;
}

Histogram& Registry::GetHistogram(const std::string&, std::vector<double>) {
  static Histogram dummy({});
  return dummy;
}

#endif

std::uint64_t Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string Registry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  std::string last_family;
  const auto type_line = [&](const std::string& name, const char* kind) {
    const std::string family = FamilyOf(name);
    if (family != last_family) {
      out += "# TYPE " + family + " " + kind + "\n";
      last_family = family;
    }
  };
  for (const auto& [name, c] : counters_) {
    type_line(name, "counter");
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", c->value());
    out += name + line;
  }
  for (const auto& [name, g] : gauges_) {
    type_line(name, "gauge");
    out += name + " " + FmtDouble(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    type_line(name, "histogram");
    const auto s = h->GetSnapshot();
    std::string base, labels;
    SplitLabels(name, base, labels);
    const std::string sep = labels.empty() ? "" : ",";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      cum += s.counts[i];
      std::snprintf(line, sizeof(line), "%s_bucket{%s%sle=\"%s\"} %" PRIu64
                    "\n", base.c_str(), labels.c_str(), sep.c_str(),
                    FmtDouble(s.bounds[i]).c_str(), cum);
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_bucket{%s%sle=\"+Inf\"} %" PRIu64
                  "\n", base.c_str(), labels.c_str(), sep.c_str(), s.count);
    out += line;
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    out += base + "_sum" + suffix + " " + FmtDouble(s.sum) + "\n";
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", s.count);
    out += base + "_count" + suffix + line;
  }
#if !RFDUMP_OBS_ENABLED
  out += "# rfdump observability compiled out (RFDUMP_OBS=OFF)\n";
#endif
  return out;
}

}  // namespace rfdump::obs
