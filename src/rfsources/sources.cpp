#include "rfdump/rfsources/sources.hpp"

#include <cmath>

namespace rfdump::rfsources {

using dsp::cfloat;

MicrowaveOven::MicrowaveOven() : MicrowaveOven(Config{}) {}

MicrowaveOven::MicrowaveOven(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

bool MicrowaveOven::IsOn(std::int64_t sample) const {
  const double period_samples = dsp::kSampleRateHz / config_.ac_hz;
  const double phase = std::fmod(static_cast<double>(sample), period_samples) /
                       period_samples;
  return phase < config_.duty;
}

dsp::SampleVec MicrowaveOven::Generate(std::int64_t start_sample,
                                       std::size_t count) {
  dsp::SampleVec out(count, cfloat{0.0f, 0.0f});
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t n = start_sample + static_cast<std::int64_t>(i);
    if (!IsOn(n)) continue;
    const double t = static_cast<double>(n) / dsp::kSampleRateHz;
    // Slow sinusoidal frequency sweep across the band.
    const double inst_freq = (config_.sweep_hz / 2.0) *
                             std::sin(two_pi * config_.sweep_rate_hz * t);
    // Integrated phase of the sinusoidal FM: -(A/2)/(2*pi*fr) * cos(...)
    const double fm_phase = -(config_.sweep_hz / 2.0) /
                            config_.sweep_rate_hz *
                            std::cos(two_pi * config_.sweep_rate_hz * t);
    (void)inst_freq;
    noise_phase_ += rng_.Gaussian(0.0, config_.phase_noise_rad);
    const double phase = fm_phase + noise_phase_;
    out[i] = config_.amplitude * cfloat(static_cast<float>(std::cos(phase)),
                                        static_cast<float>(std::sin(phase)));
  }
  return out;
}

dsp::SampleVec GenerateCw(double offset_hz, float amplitude,
                          std::int64_t start_sample, std::size_t count) {
  dsp::SampleVec out(count);
  const double step = 2.0 * std::numbers::pi * offset_hz / dsp::kSampleRateHz;
  for (std::size_t i = 0; i < count; ++i) {
    const double phase =
        step * static_cast<double>(start_sample + static_cast<std::int64_t>(i));
    out[i] = amplitude * cfloat(static_cast<float>(std::cos(phase)),
                                static_cast<float>(std::sin(phase)));
  }
  return out;
}

dsp::SampleVec GenerateImpulses(std::size_t count, double burst_rate_hz,
                                std::size_t burst_samples, float amplitude,
                                util::Xoshiro256& rng) {
  dsp::SampleVec out(count, cfloat{0.0f, 0.0f});
  const double p_start =
      burst_rate_hz / dsp::kSampleRateHz;  // per-sample burst start probability
  std::size_t i = 0;
  while (i < count) {
    if (rng.UniformDouble() < p_start) {
      for (std::size_t k = 0; k < burst_samples && i + k < count; ++k) {
        out[i + k] = amplitude *
                     cfloat(static_cast<float>(rng.Gaussian()),
                            static_cast<float>(rng.Gaussian()));
      }
      i += burst_samples;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace rfdump::rfsources
