#include "rfdump/trace/trace.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace rfdump::trace {
namespace {

constexpr char kIqMagic[4] = {'R', 'F', 'D', 'T'};
constexpr char kGtMagic[4] = {'R', 'F', 'D', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void WriteRaw(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void ReadRaw(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("trace: truncated file");
}

void WriteString(std::ofstream& out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  WriteRaw(out, len);
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::ifstream& in) {
  std::uint32_t len = 0;
  ReadRaw(in, len);
  if (len > (1u << 20)) throw std::runtime_error("trace: bogus string length");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw std::runtime_error("trace: truncated string");
  return s;
}

}  // namespace

void WriteIqTrace(const std::string& path, dsp::const_sample_span samples,
                  double sample_rate_hz) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  out.write(kIqMagic, 4);
  WriteRaw(out, kVersion);
  WriteRaw(out, sample_rate_hz);
  const auto count = static_cast<std::uint64_t>(samples.size());
  WriteRaw(out, count);
  out.write(reinterpret_cast<const char*>(samples.data()),
            static_cast<std::streamsize>(samples.size() * sizeof(dsp::cfloat)));
  if (!out) throw std::runtime_error("trace: write failed for " + path);
}

dsp::SampleVec ReadIqTrace(const std::string& path, double* sample_rate_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kIqMagic, 4) != 0) {
    throw std::runtime_error("trace: bad magic in " + path);
  }
  std::uint32_t version = 0;
  ReadRaw(in, version);
  if (version != kVersion) throw std::runtime_error("trace: bad version");
  double rate = 0.0;
  ReadRaw(in, rate);
  if (sample_rate_out) *sample_rate_out = rate;
  std::uint64_t count = 0;
  ReadRaw(in, count);
  dsp::SampleVec samples(count);
  in.read(reinterpret_cast<char*>(samples.data()),
          static_cast<std::streamsize>(count * sizeof(dsp::cfloat)));
  if (!in) throw std::runtime_error("trace: truncated samples in " + path);
  return samples;
}

void WriteGroundTruth(const std::string& path,
                      const std::vector<emu::TruthRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  out.write(kGtMagic, 4);
  WriteRaw(out, kVersion);
  const auto count = static_cast<std::uint64_t>(records.size());
  WriteRaw(out, count);
  for (const auto& r : records) {
    WriteRaw(out, static_cast<std::uint8_t>(r.protocol));
    WriteRaw(out, r.start_sample);
    WriteRaw(out, r.end_sample);
    WriteRaw(out, r.snr_db);
    WriteRaw(out, r.flow_id);
    WriteRaw(out, r.packet_id);
    WriteRaw(out, static_cast<std::uint8_t>(r.visible ? 1 : 0));
    WriteString(out, r.kind);
  }
  if (!out) throw std::runtime_error("trace: write failed for " + path);
}

std::vector<emu::TruthRecord> ReadGroundTruth(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kGtMagic, 4) != 0) {
    throw std::runtime_error("trace: bad magic in " + path);
  }
  std::uint32_t version = 0;
  ReadRaw(in, version);
  if (version != kVersion) throw std::runtime_error("trace: bad version");
  std::uint64_t count = 0;
  ReadRaw(in, count);
  std::vector<emu::TruthRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    emu::TruthRecord r;
    std::uint8_t proto = 0, visible = 0;
    ReadRaw(in, proto);
    ReadRaw(in, r.start_sample);
    ReadRaw(in, r.end_sample);
    ReadRaw(in, r.snr_db);
    ReadRaw(in, r.flow_id);
    ReadRaw(in, r.packet_id);
    ReadRaw(in, visible);
    r.kind = ReadString(in);
    r.protocol = static_cast<core::Protocol>(proto);
    r.visible = visible != 0;
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace rfdump::trace
