#include "rfdump/trace/pcap.hpp"

#include <fstream>
#include <stdexcept>

namespace rfdump::trace {
namespace {

constexpr std::uint32_t kMagic = 0xA1B2C3D4;  // microsecond timestamps

template <typename T>
void Put(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T Get(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("pcap: truncated file");
  return v;
}

}  // namespace

std::size_t WritePcap(const std::string& path,
                      const std::vector<phy80211::DecodedFrame>& frames,
                      double sample_rate_hz) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("pcap: cannot open " + path);
  // Global header.
  Put<std::uint32_t>(out, kMagic);
  Put<std::uint16_t>(out, 2);   // version major
  Put<std::uint16_t>(out, 4);   // version minor
  Put<std::int32_t>(out, 0);    // thiszone
  Put<std::uint32_t>(out, 0);   // sigfigs
  Put<std::uint32_t>(out, 65535);  // snaplen
  Put<std::uint32_t>(out, kLinkType80211);

  std::size_t written = 0;
  for (const auto& f : frames) {
    if (!f.payload_decoded || f.mpdu.empty()) continue;
    const double t =
        static_cast<double>(f.start_sample) / sample_rate_hz;
    const auto sec = static_cast<std::uint32_t>(t);
    const auto usec = static_cast<std::uint32_t>((t - sec) * 1e6);
    Put<std::uint32_t>(out, sec);
    Put<std::uint32_t>(out, usec);
    Put<std::uint32_t>(out, static_cast<std::uint32_t>(f.mpdu.size()));
    Put<std::uint32_t>(out, static_cast<std::uint32_t>(f.mpdu.size()));
    out.write(reinterpret_cast<const char*>(f.mpdu.data()),
              static_cast<std::streamsize>(f.mpdu.size()));
    ++written;
  }
  if (!out) throw std::runtime_error("pcap: write failed for " + path);
  return written;
}

std::vector<PcapRecord> ReadPcap(const std::string& path,
                                 std::uint32_t* linktype_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open " + path);
  if (Get<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("pcap: bad magic in " + path);
  }
  (void)Get<std::uint16_t>(in);  // version major
  (void)Get<std::uint16_t>(in);  // version minor
  (void)Get<std::int32_t>(in);
  (void)Get<std::uint32_t>(in);
  (void)Get<std::uint32_t>(in);
  const auto linktype = Get<std::uint32_t>(in);
  if (linktype_out) *linktype_out = linktype;

  std::vector<PcapRecord> records;
  while (in.peek() != std::ifstream::traits_type::eof()) {
    PcapRecord r;
    const auto sec = Get<std::uint32_t>(in);
    const auto usec = Get<std::uint32_t>(in);
    r.timestamp_us = static_cast<std::uint64_t>(sec) * 1'000'000ull + usec;
    const auto incl = Get<std::uint32_t>(in);
    (void)Get<std::uint32_t>(in);  // orig_len
    if (incl > (1u << 20)) throw std::runtime_error("pcap: bogus record");
    r.bytes.resize(incl);
    in.read(reinterpret_cast<char*>(r.bytes.data()), incl);
    if (!in) throw std::runtime_error("pcap: truncated record");
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace rfdump::trace
