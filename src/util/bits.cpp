#include "rfdump/util/bits.hpp"

#include <cassert>

namespace rfdump::util {

BitVec BytesToBitsLsbFirst(std::span<const std::uint8_t> bytes) {
  BitVec bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 0; i < 8; ++i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1u));
    }
  }
  return bits;
}

std::vector<std::uint8_t> BitsToBytesLsbFirst(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0u);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1u) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bytes;
}

BitVec UintToBitsLsbFirst(std::uint64_t value, std::size_t count) {
  BitVec bits(count);
  for (std::size_t i = 0; i < count; ++i) {
    bits[i] = static_cast<std::uint8_t>((value >> i) & 1u);
  }
  return bits;
}

std::uint64_t BitsToUintLsbFirst(std::span<const std::uint8_t> bits) {
  assert(bits.size() <= 64);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1u) v |= (std::uint64_t{1} << i);
  }
  return v;
}

void AppendBits(BitVec& dst, std::span<const std::uint8_t> src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

std::size_t HammingDistance(std::span<const std::uint8_t> a,
                            std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & 1u) != (b[i] & 1u)) ++d;
  }
  return d;
}

}  // namespace rfdump::util
