#include "rfdump/util/crc.hpp"

#include <array>

namespace rfdump::util {
namespace {

std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  static const auto table = MakeCrc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint16_t Crc16CcittBits(std::span<const std::uint8_t> bits,
                             std::uint16_t init) {
  // Bit-serial LFSR implementation: shift in one data bit at a time (as the
  // PLCP header is CRC'd over its serialized bit order, not bytes).
  std::uint16_t reg = init;
  for (std::uint8_t bit : bits) {
    const std::uint16_t fb = static_cast<std::uint16_t>(
        ((reg >> 15) & 1u) ^ (bit & 1u));
    reg = static_cast<std::uint16_t>(reg << 1);
    if (fb) reg ^= 0x1021;
  }
  return reg;
}

std::uint8_t BluetoothHec(std::span<const std::uint8_t> bits,
                          std::uint8_t uap) {
  // LFSR for g(x) = x^8 + x^7 + x^5 + x^2 + x + 1, init with UAP.
  std::uint8_t reg = uap;
  for (std::uint8_t bit : bits) {
    const std::uint8_t fb = static_cast<std::uint8_t>(((reg >> 7) & 1u) ^
                                                      (bit & 1u));
    reg = static_cast<std::uint8_t>(reg << 1);
    if (fb) reg ^= 0xA7;  // taps: x^7 + x^5 + x^2 + x + 1 -> 1010'0111
  }
  return reg;
}

}  // namespace rfdump::util
