#include "rfdump/util/rng.hpp"

#include <cmath>

namespace rfdump::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::UniformInt(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return (*this)();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + v % range;
}

double Xoshiro256::Gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

}  // namespace rfdump::util
