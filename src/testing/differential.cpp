#include "rfdump/testing/differential.hpp"

#include <algorithm>
#include <cstdio>

#include "rfdump/core/executor.hpp"
#include "rfdump/core/protocol_registry.hpp"

namespace rfdump::testing {
namespace {

constexpr const char* kArchNames[4] = {"naive", "naive+energy", "rfdump@1",
                                       "rfdump@N"};
constexpr unsigned kAllArchs = 0xF;

/// One decoded event, architecture-agnostic.
struct Event {
  core::Protocol protocol = core::Protocol::kUnknown;
  std::int64_t start = 0;
  std::int64_t end = 0;
  int channel = -1;  // Bluetooth channel index, -1 otherwise
  std::size_t payload = 0;
  bool crc_ok = false;
  unsigned archs = 0;  // presence bitmask over the four runs
};

/// True for protocols all four architectures are expected to decode — the
/// registry's differential_member flag, not a hand-list.
bool DifferentialMember(core::Protocol p) {
  const auto* bundle = core::ProtocolRegistry::Instance().Find(p);
  return bundle != nullptr && bundle->differential_member;
}

std::vector<Event> Events(const core::MonitorReport& r, unsigned arch_bit) {
  std::vector<Event> out;
  out.reserve(r.events.size());
  for (const auto& e : r.events) {
    if (!DifferentialMember(e.protocol)) continue;
    out.push_back({e.protocol, e.start_sample, e.end_sample, e.channel,
                   e.payload.size(), e.crc_ok, arch_bit});
  }
  return out;
}

bool SameEvent(const Event& a, const Event& b, std::int64_t slack) {
  return a.protocol == b.protocol && a.channel == b.channel &&
         std::llabs(a.start - b.start) <= slack;
}

std::string EventKey(const Event& e) {
  char buf[128];
  if (e.protocol == core::Protocol::kBluetooth) {
    std::snprintf(buf, sizeof(buf), "bt ch%d @%lld..%lld %zuB crc=%d",
                  e.channel, static_cast<long long>(e.start),
                  static_cast<long long>(e.end), e.payload, e.crc_ok ? 1 : 0);
  } else if (e.protocol == core::Protocol::kWifi80211b) {
    std::snprintf(buf, sizeof(buf), "wifi @%lld..%lld %zuB fcs=%d",
                  static_cast<long long>(e.start),
                  static_cast<long long>(e.end), e.payload, e.crc_ok ? 1 : 0);
  } else {
    std::snprintf(buf, sizeof(buf), "%s ch%d @%lld..%lld %zuB crc=%d",
                  core::ProtocolName(e.protocol), e.channel,
                  static_cast<long long>(e.start),
                  static_cast<long long>(e.end), e.payload, e.crc_ok ? 1 : 0);
  }
  return buf;
}

std::string ArchList(unsigned mask) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    if (mask & (1u << i)) {
      if (!out.empty()) out += ",";
      out += kArchNames[i];
    }
  }
  return out;
}

bool TruthBacked(const Event& e, const std::vector<emu::TruthRecord>& truth) {
  for (const auto& t : truth) {
    if (!t.visible || t.protocol != e.protocol) continue;
    if (e.start < t.end_sample && t.start_sample < e.end) return true;
  }
  return false;
}

}  // namespace

// Result-bearing fingerprint of a report, for the exact rfdump@1 vs
// rfdump@N comparison (same fields tests/parallel_test.cpp checks) and for
// the forced-scalar vs forced-SIMD dispatch-tier differential.
std::vector<std::string> ExactFingerprint(const core::MonitorReport& r) {
  std::vector<std::string> out;
  char buf[160];
  for (const auto& d : r.detections) {
    std::snprintf(buf, sizeof(buf), "det %s %lld %lld %.6f %s",
                  core::ProtocolName(d.protocol),
                  static_cast<long long>(d.start_sample),
                  static_cast<long long>(d.end_sample),
                  static_cast<double>(d.confidence), d.detector);
    out.push_back(buf);
  }
  for (const auto& f : r.wifi_frames) {
    std::snprintf(buf, sizeof(buf), "wifi %lld %lld %d %d %zu",
                  static_cast<long long>(f.start_sample),
                  static_cast<long long>(f.end_sample), f.payload_decoded,
                  f.fcs_ok, f.mpdu.size());
    std::string line = buf;
    for (const auto b : f.mpdu) line += "," + std::to_string(b);
    out.push_back(std::move(line));
  }
  for (const auto& p : r.bt_packets) {
    std::snprintf(buf, sizeof(buf), "bt %06x ch%d %lld %lld %d %zu", p.lap,
                  p.channel_index, static_cast<long long>(p.start_sample),
                  static_cast<long long>(p.end_sample), p.packet.crc_ok,
                  p.packet.payload.size());
    std::string line = buf;
    for (const auto b : p.packet.payload) line += "," + std::to_string(b);
    out.push_back(std::move(line));
  }
  for (const auto& z : r.zb_frames) {
    std::snprintf(buf, sizeof(buf), "zb %lld %lld %d %zu",
                  static_cast<long long>(z.start_sample),
                  static_cast<long long>(z.end_sample), z.crc_ok,
                  z.psdu.size());
    std::string line = buf;
    for (const auto b : z.psdu) line += "," + std::to_string(b);
    out.push_back(std::move(line));
  }
  // Registry-era protocols commit generic events only; the three legacy
  // protocols are already fingerprinted above via their typed shims, so
  // skipping them here keeps legacy fingerprints byte-identical.
  for (const auto& e : r.events) {
    if (e.protocol == core::Protocol::kWifi80211b ||
        e.protocol == core::Protocol::kBluetooth ||
        e.protocol == core::Protocol::kZigbee) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "ev %s ch%d %lld %lld %d %zu",
                  core::ProtocolName(e.protocol), e.channel,
                  static_cast<long long>(e.start_sample),
                  static_cast<long long>(e.end_sample), e.crc_ok,
                  e.payload.size());
    std::string line = buf;
    for (const auto b : e.payload) line += "," + std::to_string(b);
    out.push_back(std::move(line));
  }
  return out;
}

std::string DifferentialResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "seed=%llu %s: naive %zu / naive+energy %zu / rfdump@1 %zu / "
                "rfdump@N %zu decodes; %zu mismatches, %zu tolerated FP "
                "diffs\n",
                static_cast<unsigned long long>(seed), scenario.c_str(),
                decodes[0], decodes[1], decodes[2], decodes[3],
                mismatches.size(), tolerated.size());
  std::string out = buf;
  for (const auto& m : mismatches) {
    std::snprintf(buf, sizeof(buf),
                  "  seed=%llu MISMATCH %s: in {%s} absent {%s}%s\n",
                  static_cast<unsigned long long>(seed), m.key.c_str(),
                  m.present_in.c_str(), m.absent_from.c_str(),
                  m.truth_backed ? " [truth-backed]" : "");
    out += buf;
  }
  return out;
}

DifferentialResult RunDifferential(const RenderedScenario& scenario,
                                   const DifferentialPolicy& policy) {
  DifferentialResult result;
  result.seed = scenario.seed;
  result.scenario = scenario.name;
  const dsp::const_sample_span x(scenario.samples);

  const auto& registry = core::ProtocolRegistry::Instance();

  core::MonitorReport reports[4];
  for (int gate = 0; gate < 2; ++gate) {
    core::NaivePipeline::Config cfg;
    cfg.energy_gate = (gate == 1);
    cfg.analysis = policy.analysis;
    for (const auto& bundle : registry.bundles()) {
      if (bundle.differential_member) cfg.EnableBundle(bundle.protocol);
    }
    reports[gate] = core::NaivePipeline(cfg).Process(x);
  }
  {
    core::RFDumpPipeline::Config cfg;
    cfg.analysis = policy.analysis;
    // ZigBee is not a differential member (the naive architectures cannot
    // detect it), but the rfdump@1 vs rfdump@N exact-fingerprint comparison
    // covers it, as it always has.
    cfg.EnableBundle(core::Protocol::kZigbee);
    for (const auto& bundle : registry.bundles()) {
      if (bundle.differential_member) cfg.EnableBundle(bundle.protocol);
    }
    reports[2] = core::RFDumpPipeline(cfg).Process(x);

    core::Executor wide(std::max(policy.wide_threads, 2));
    cfg.executor = &wide;
    reports[3] = core::RFDumpPipeline(cfg).Process(x);
  }
  for (int i = 0; i < 4; ++i) {
    result.decodes[i] = Events(reports[i], 1u << i).size();
  }

  // 1. Width determinism: rfdump@1 and rfdump@N must agree exactly.
  const auto serial_fp = ExactFingerprint(reports[2]);
  const auto wide_fp = ExactFingerprint(reports[3]);
  if (serial_fp != wide_fp) {
    DifferentialMismatch m;
    m.key = "rfdump@1 vs rfdump@N report fingerprints differ (" +
            std::to_string(serial_fp.size()) + " vs " +
            std::to_string(wide_fp.size()) + " entries)";
    m.present_in = kArchNames[2];
    m.absent_from = kArchNames[3];
    m.truth_backed = true;  // width divergence is always a hard failure
    result.mismatches.push_back(std::move(m));
  }

  // 2. Cross-architecture frame-set diff. Cluster events from all four runs
  // by (protocol, channel, position-within-slack); every cluster must be
  // present in every architecture, modulo tolerated spurious decodes.
  std::vector<Event> events;
  for (int i = 0; i < 4; ++i) {
    auto e = Events(reports[i], 1u << i);
    events.insert(events.end(), e.begin(), e.end());
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.protocol != b.protocol) return a.protocol < b.protocol;
    if (a.channel != b.channel) return a.channel < b.channel;
    return a.start < b.start;
  });
  std::vector<Event> clusters;
  for (const Event& e : events) {
    if (!clusters.empty() &&
        SameEvent(clusters.back(), e, policy.match_slack_samples)) {
      clusters.back().archs |= e.archs;
      clusters.back().end = std::max(clusters.back().end, e.end);
    } else {
      clusters.push_back(e);
    }
  }
  for (const Event& c : clusters) {
    if (c.archs == kAllArchs) continue;
    DifferentialMismatch m;
    m.protocol = c.protocol;
    m.key = EventKey(c);
    m.present_in = ArchList(c.archs);
    m.absent_from = ArchList(kAllArchs & ~c.archs);
    m.truth_backed = TruthBacked(c, scenario.truth);
    if (m.truth_backed || !policy.tolerate_spurious) {
      result.mismatches.push_back(std::move(m));
    } else {
      result.tolerated.push_back(std::move(m));
    }
  }
  return result;
}

std::vector<DifferentialResult> RunDifferentialSweep(
    std::span<const std::uint64_t> seeds, const DifferentialPolicy& policy) {
  std::vector<DifferentialResult> out;
  out.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    out.push_back(RunDifferential(CannedMixedScenario(seed), policy));
  }
  return out;
}

}  // namespace rfdump::testing
