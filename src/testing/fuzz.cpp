#include "rfdump/testing/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "rfdump/dsp/types.hpp"
#include "rfdump/net/messages.hpp"
#include "rfdump/net/wire.hpp"
#include "rfdump/phy80211/demodulator.hpp"
#include "rfdump/phy80211/modulator.hpp"
#include "rfdump/phy80211/plcp.hpp"
#include "rfdump/phybt/demodulator.hpp"
#include "rfdump/phybt/modulator.hpp"
#include "rfdump/phybt/packet.hpp"
#include "rfdump/phyzigbee/phy.hpp"

namespace fs = std::filesystem;

namespace rfdump::testing {
namespace {

using net::FrameType;

/// Payload bytes -> descrambled bit vector (one bit per byte, LSB).
std::vector<std::uint8_t> BytesToBits(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> bits(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) bits[i] = data[i] & 1u;
  return bits;
}

/// Payload bytes -> IQ samples: consecutive byte pairs are signed I/Q at
/// 1/64 full scale, so the corpus reaches both sub-noise and clipping-range
/// amplitudes. Sample count is capped so a single input stays sub-second
/// even through the 8-channel Bluetooth scan.
constexpr std::size_t kMaxFuzzSamples = 1u << 16;

dsp::SampleVec BytesToSamples(std::span<const std::uint8_t> data) {
  const std::size_t n = std::min(data.size() / 2, kMaxFuzzSamples);
  dsp::SampleVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = dsp::cfloat(static_cast<float>(static_cast<std::int8_t>(data[2 * i])),
                       static_cast<float>(
                           static_cast<std::int8_t>(data[2 * i + 1]))) /
           64.0f;
  }
  return x;
}

/// IQ samples -> corpus bytes (inverse of BytesToSamples, saturating).
void AppendSamples(std::vector<std::uint8_t>& out, dsp::const_sample_span x,
                   std::size_t max_samples) {
  const std::size_t n = std::min(x.size(), max_samples);
  out.reserve(out.size() + 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto q = [](float v) {
      return static_cast<std::uint8_t>(static_cast<std::int8_t>(
          std::clamp(v * 64.0f, -127.0f, 127.0f)));
    };
    out.push_back(q(x[i].real()));
    out.push_back(q(x[i].imag()));
  }
}

int RunPlcpInput(std::span<const std::uint8_t> payload, std::uint8_t mode,
                 util::WorkBudget* budget) {
  int decodes = 0;
  if (mode % 2 == 0) {
    const auto bits = BytesToBits(payload);
    const std::span<const std::uint8_t> all(bits);
    // Exact-size parse plus a deliberately wrong-size call (size guard).
    if (const auto h =
            phy80211::ParsePlcpHeader(all.first(std::min<std::size_t>(
                bits.size(), 48)))) {
      ++decodes;
      (void)h->MpduBytes();
      (void)phy80211::PlcpHeader::DurationUsFor(h->rate, h->MpduBytes());
      (void)phy80211::PlcpHeader::ServiceFor(h->rate, h->MpduBytes());
    }
    (void)phy80211::ParsePlcpHeader(all);
  } else {
    phy80211::Demodulator::Config cfg;
    cfg.budget = budget;
    phy80211::Demodulator demod(cfg);
    decodes += static_cast<int>(demod.DecodeAll(BytesToSamples(payload)).size());
  }
  return decodes;
}

int RunBtInput(std::span<const std::uint8_t> payload, std::uint8_t mode,
               util::WorkBudget* budget) {
  int decodes = 0;
  switch (mode % 3) {
    case 0: {
      if (payload.size() >= 8) {
        std::uint64_t word = 0;
        for (int i = 0; i < 8; ++i) {
          word |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
        }
        const int max_errors = (mode >> 4) % 3;
        if (const auto lap = phybt::VerifySyncWord(word, max_errors)) {
          ++decodes;
          (void)phybt::SyncWord(*lap);
        }
      }
      const std::uint8_t uap = payload.empty() ? 0x47 : payload[0];
      if (phybt::ParsePacketBits(BytesToBits(payload.size() > 8
                                                 ? payload.subspan(8)
                                                 : payload),
                                 uap)) {
        ++decodes;
      }
      break;
    }
    case 1: {
      if (const auto pkt = phybt::ParsePacketBits(BytesToBits(payload), 0x47)) {
        ++decodes;
        (void)phybt::PacketAirBits(pkt->header.type, pkt->payload.size());
      }
      break;
    }
    default: {
      phybt::Demodulator::Config cfg;
      cfg.budget = budget;
      cfg.max_sync_errors = mode >> 6;  // 0..3
      phybt::Demodulator demod(cfg);
      decodes +=
          static_cast<int>(demod.DecodeAll(BytesToSamples(payload)).size());
      break;
    }
  }
  return decodes;
}

int RunZigbeeInput(std::span<const std::uint8_t> payload) {
  int decodes = 0;
  const auto x = BytesToSamples(payload);
  if (const auto frame = phyzigbee::DecodeFrame(x)) {
    ++decodes;
    (void)phyzigbee::FrameAirtimeUs(frame->psdu.size());
  }
  // Also exercise the chip expansion on raw bytes (cheap, pure).
  if (!payload.empty()) {
    (void)phyzigbee::BytesToChips(
        payload.first(std::min<std::size_t>(payload.size(), 64)));
  }
  return decodes;
}

/// Decodes a parsed frame's payload with the codec its type names; on
/// success re-encodes and re-decodes so every accepted input proves the
/// codec closed under its own round trip (an asymmetric codec throws out of
/// the fuzz run as a finding).
int DecodeFramePayload(FrameType type, std::span<const std::uint8_t> p) {
  const auto closed = [](bool reencoded_ok) {
    if (!reencoded_ok) {
      throw std::logic_error("message codec not closed under re-encode");
    }
  };
  switch (type) {
    case FrameType::kHello:
      if (const auto m = net::HelloMsg::Decode(p)) {
        closed(net::HelloMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kHeartbeat:
      if (const auto m = net::HeartbeatMsg::Decode(p)) {
        closed(net::HeartbeatMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kAck:
      if (const auto m = net::AckMsg::Decode(p)) {
        closed(net::AckMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kMetrics:
      if (const auto m = net::MetricsMsg::Decode(p)) {
        closed(net::MetricsMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kEventBatch:
      if (const auto m = net::EventBatchMsg::Decode(p)) {
        closed(net::EventBatchMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kHealth:
      if (const auto m = net::HealthMsg::Decode(p)) {
        closed(net::HealthMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kGapReport:
      if (const auto m = net::GapReportMsg::Decode(p)) {
        closed(net::GapReportMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
  }
  return 0;
}

int RunNetFrameInput(std::span<const std::uint8_t> payload,
                     std::uint8_t mode) {
  int decodes = 0;
  switch (mode % 3) {
    case 0:
    case 1: {
      // One-shot parse, then (mode 1 only acts differently in chunk sizes;
      // both modes run the differential) the same bytes again in small
      // chunks. An incremental parser must not care where the stream is
      // cut, so any divergence in stats is a real resync bug.
      net::FrameParser whole;
      whole.Feed(payload, [&](net::Frame&& f) {
        decodes += DecodeFramePayload(f.header.type, f.payload);
      });
      net::FrameParser chunked;
      static constexpr std::size_t kChunks[] = {1, 2, 3, 5, 7, 16};
      std::size_t off = 0, k = mode / 3;
      while (off < payload.size()) {
        const std::size_t n =
            std::min(kChunks[k++ % std::size(kChunks)], payload.size() - off);
        chunked.Feed(payload.subspan(off, n), [](net::Frame&&) {});
        off += n;
      }
      const auto& a = whole.stats();
      const auto& b = chunked.stats();
      if (a.frames_ok != b.frames_ok ||
          a.bad_magic_bytes != b.bad_magic_bytes ||
          a.bad_version != b.bad_version || a.bad_type != b.bad_type ||
          a.bad_length != b.bad_length ||
          a.bad_header_checksum != b.bad_header_checksum ||
          a.bad_crc != b.bad_crc ||
          whole.pending_bytes() != chunked.pending_bytes()) {
        throw std::logic_error("chunked vs one-shot frame parse diverged");
      }
      break;
    }
    default: {
      // Straight at the codecs, no CRC gate in the way: the first byte
      // picks the message type, the rest is its payload.
      if (payload.empty()) break;
      static constexpr FrameType kTypes[] = {
          FrameType::kHello,     FrameType::kHeartbeat, FrameType::kAck,
          FrameType::kMetrics,   FrameType::kEventBatch,
          FrameType::kHealth,    FrameType::kGapReport};
      decodes += DecodeFramePayload(kTypes[payload[0] % std::size(kTypes)],
                                    payload.subspan(1));
      break;
    }
  }
  return decodes;
}

std::uint64_t Fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

void WriteFile(const fs::path& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

}  // namespace

const char* FuzzTargetName(FuzzTarget t) {
  switch (t) {
    case FuzzTarget::kPhy80211Plcp: return "phy80211-plcp";
    case FuzzTarget::kPhyBtPacket: return "phybt-packet";
    case FuzzTarget::kPhyZigbee: return "phyzigbee";
    case FuzzTarget::kNetFrame: return "net-frame";
  }
  return "?";
}

const char* FuzzCorpusDirName(FuzzTarget t) {
  switch (t) {
    case FuzzTarget::kPhy80211Plcp: return "phy80211_plcp";
    case FuzzTarget::kPhyBtPacket: return "phybt_packet";
    case FuzzTarget::kPhyZigbee: return "phyzigbee";
    case FuzzTarget::kNetFrame: return "net_frame";
  }
  return "?";
}

int RunFuzzInput(FuzzTarget target, std::span<const std::uint8_t> data,
                 util::WorkBudget* budget) {
  if (data.empty()) return 0;
  const std::uint8_t mode = data[0];
  const auto payload = data.subspan(1);
  switch (target) {
    case FuzzTarget::kPhy80211Plcp: return RunPlcpInput(payload, mode, budget);
    case FuzzTarget::kPhyBtPacket: return RunBtInput(payload, mode, budget);
    case FuzzTarget::kPhyZigbee: return RunZigbeeInput(payload);
    case FuzzTarget::kNetFrame: return RunNetFrameInput(payload, mode);
  }
  return 0;
}

void MutateInput(std::vector<std::uint8_t>& data, util::Xoshiro256& rng) {
  if (data.empty()) data.push_back(0);
  switch (rng.UniformInt(0, 5)) {
    case 0: {  // flip one bit
      const auto i = rng.UniformInt(0, data.size() - 1);
      data[i] ^= static_cast<std::uint8_t>(1u << rng.UniformInt(0, 7));
      break;
    }
    case 1: {  // splat one byte
      data[rng.UniformInt(0, data.size() - 1)] =
          static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      break;
    }
    case 2: {  // truncate
      data.resize(1 + rng.UniformInt(0, data.size() - 1));
      break;
    }
    case 3: {  // duplicate a tail chunk
      const auto from = rng.UniformInt(0, data.size() - 1);
      const std::size_t n =
          std::min<std::size_t>(data.size() - from, rng.UniformInt(1, 64));
      data.insert(data.end(), data.begin() + static_cast<std::ptrdiff_t>(from),
                  data.begin() + static_cast<std::ptrdiff_t>(from + n));
      break;
    }
    case 4: {  // insert random bytes
      const auto at = rng.UniformInt(0, data.size());
      const std::size_t n = rng.UniformInt(1, 16);
      std::vector<std::uint8_t> chunk(n);
      for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
                  chunk.end());
      break;
    }
    default: {  // swap two chunks
      if (data.size() >= 4) {
        const auto half = data.size() / 2;
        const auto a = rng.UniformInt(0, half - 1);
        const auto b = half + rng.UniformInt(0, data.size() - half - 1);
        std::swap(data[a], data[b]);
      }
      break;
    }
  }
}

std::size_t WriteSeedCorpus(FuzzTarget target, const std::string& dir,
                            std::size_t count, std::uint64_t seed) {
  fs::create_directories(dir);
  std::size_t written = 0;
  const auto emit = [&](std::vector<std::uint8_t> data) {
    char name[64];
    std::snprintf(name, sizeof(name), "seed-%04zu-%016llx.bin", written,
                  static_cast<unsigned long long>(Fnv1a(data)));
    WriteFile(fs::path(dir) / name, data);
    ++written;
  };
  util::Xoshiro256 rng(seed);

  for (std::size_t i = 0; written < count; ++i) {
    switch (target) {
      case FuzzTarget::kPhy80211Plcp: {
        switch (i % 5) {
          case 0: {  // valid header bits (rate/length grid)
            static constexpr phy80211::Rate kRates[] = {
                phy80211::Rate::k1Mbps, phy80211::Rate::k2Mbps,
                phy80211::Rate::k5_5Mbps, phy80211::Rate::k11Mbps};
            phy80211::PlcpHeader h;
            h.rate = kRates[i % 4];
            const std::size_t bytes = 1 + rng.UniformInt(0, 256);
            h.length_us = phy80211::PlcpHeader::DurationUsFor(h.rate, bytes);
            h.service = phy80211::PlcpHeader::ServiceFor(h.rate, bytes);
            const auto bits = phy80211::BuildPlcpBits(h);
            std::vector<std::uint8_t> data{0};  // mode: bit parse
            data.insert(data.end(), bits.end() - 48, bits.end());
            emit(std::move(data));
            break;
          }
          case 1: {  // corrupted header bits
            phy80211::PlcpHeader h;
            h.rate = phy80211::Rate::k2Mbps;
            h.length_us = phy80211::PlcpHeader::DurationUsFor(
                h.rate, 1 + rng.UniformInt(0, 64));
            const auto bits = phy80211::BuildPlcpBits(h);
            std::vector<std::uint8_t> data{0};
            data.insert(data.end(), bits.end() - 48, bits.end());
            MutateInput(data, rng);
            emit(std::move(data));
            break;
          }
          case 2: {  // random bit-mode bytes (short, long, empty payload)
            std::vector<std::uint8_t> data{0};
            const std::size_t n = rng.UniformInt(0, 96);
            for (std::size_t k = 0; k < n; ++k) {
              data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
            }
            emit(std::move(data));
            break;
          }
          case 3: {  // modulated frame samples (truncated)
            phy80211::Modulator mod;
            std::vector<std::uint8_t> mpdu(8 + rng.UniformInt(0, 24));
            for (auto& b : mpdu) {
              b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
            }
            const auto x = mod.Modulate(mpdu, phy80211::Rate::k1Mbps);
            std::vector<std::uint8_t> data{1};  // mode: demodulator
            AppendSamples(data, x, 1200 + rng.UniformInt(0, 1000));
            emit(std::move(data));
            break;
          }
          default: {  // random sample bytes
            std::vector<std::uint8_t> data{1};
            const std::size_t n = 2 * (64 + rng.UniformInt(0, 1024));
            for (std::size_t k = 0; k < n; ++k) {
              data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
            }
            emit(std::move(data));
            break;
          }
        }
        break;
      }
      case FuzzTarget::kPhyBtPacket: {
        switch (i % 5) {
          case 0: {  // valid packet bits, straight parse mode
            phybt::DeviceAddress addr{0x9E8B33, 0x47};
            phybt::PacketHeader h;
            h.type = (i % 2 == 0) ? phybt::PacketType::kDh1
                                  : phybt::PacketType::kDh3;
            std::vector<std::uint8_t> payload(1 + rng.UniformInt(0, 17));
            for (auto& b : payload) {
              b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
            }
            const auto bits = phybt::BuildPacketBits(
                addr, h, payload,
                static_cast<std::uint8_t>(rng.UniformInt(0, 63)));
            std::vector<std::uint8_t> data{1};  // mode: ParsePacketBits
            data.insert(data.end(), bits.begin() + 68, bits.end());
            emit(std::move(data));
            break;
          }
          case 1: {  // mutated packet bits
            phybt::DeviceAddress addr{0x9E8B33, 0x47};
            phybt::PacketHeader h;
            const auto bits = phybt::BuildPacketBits(addr, h, {}, 0);
            std::vector<std::uint8_t> data{1};
            data.insert(data.end(), bits.begin() + 68, bits.end());
            MutateInput(data, rng);
            emit(std::move(data));
            break;
          }
          case 2: {  // sync word + trailing bits, verify mode
            const std::uint64_t word =
                phybt::SyncWord(static_cast<std::uint32_t>(
                    rng.UniformInt(0, 0xFFFFFF)));
            std::vector<std::uint8_t> data{
                static_cast<std::uint8_t>(rng.UniformInt(0, 255) & ~0x03u)};
            data[0] = static_cast<std::uint8_t>((data[0] / 3) * 3);  // mode 0
            for (int k = 0; k < 8; ++k) {
              data.push_back(static_cast<std::uint8_t>(word >> (8 * k)));
            }
            const std::size_t n = rng.UniformInt(0, 200);
            for (std::size_t k = 0; k < n; ++k) {
              data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 1)));
            }
            emit(std::move(data));
            break;
          }
          case 3: {  // modulated burst samples
            phybt::DeviceAddress addr{0x9E8B33, 0x47};
            phybt::PacketHeader h;
            std::vector<std::uint8_t> payload(1 + rng.UniformInt(0, 9));
            for (auto& b : payload) {
              b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
            }
            // clk values land on different hop channels; skip off-band ones.
            phybt::BtBurst burst;
            for (int tries = 0; tries < 32 && burst.samples.empty(); ++tries) {
              burst = phybt::ModulatePacket(
                  addr, h, payload,
                  static_cast<std::uint32_t>(rng.UniformInt(0, 4095)));
            }
            std::vector<std::uint8_t> data{2};  // mode: full demodulator
            AppendSamples(data, burst.samples, 1600);
            emit(std::move(data));
            break;
          }
          default: {  // random sample bytes
            std::vector<std::uint8_t> data{2};
            const std::size_t n = 2 * (64 + rng.UniformInt(0, 1024));
            for (std::size_t k = 0; k < n; ++k) {
              data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
            }
            emit(std::move(data));
            break;
          }
        }
        break;
      }
      case FuzzTarget::kPhyZigbee: {
        switch (i % 3) {
          case 0: {  // modulated frame samples
            std::vector<std::uint8_t> psdu(3 + rng.UniformInt(0, 29));
            for (auto& b : psdu) {
              b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
            }
            const auto x = phyzigbee::ModulateFrame(psdu);
            std::vector<std::uint8_t> data{0};
            AppendSamples(data, x, kMaxFuzzSamples);
            emit(std::move(data));
            break;
          }
          case 1: {  // truncated/mutated frame samples
            std::vector<std::uint8_t> psdu(4);
            for (auto& b : psdu) {
              b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
            }
            const auto x = phyzigbee::ModulateFrame(psdu);
            std::vector<std::uint8_t> data{0};
            AppendSamples(data, x, 400 + rng.UniformInt(0, 2000));
            MutateInput(data, rng);
            emit(std::move(data));
            break;
          }
          default: {  // random sample bytes
            std::vector<std::uint8_t> data{0};
            const std::size_t n = 2 * (64 + rng.UniformInt(0, 1024));
            for (std::size_t k = 0; k < n; ++k) {
              data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
            }
            emit(std::move(data));
            break;
          }
        }
        break;
      }
      case FuzzTarget::kNetFrame: {
        // Builds one random-but-valid message; `pick % 7` matches the
        // selector order RunNetFrameInput's raw-codec mode uses.
        const auto random_message = [&rng](std::size_t pick)
            -> std::pair<FrameType, std::vector<std::uint8_t>> {
          switch (pick % 7) {
            case 0: {
              net::HelloMsg m;
              m.epoch = static_cast<std::uint32_t>(rng.UniformInt(0, 1000));
              m.local_time =
                  static_cast<std::int64_t>(rng.UniformInt(0, 1u << 20));
              return {FrameType::kHello, m.Encode()};
            }
            case 1: {
              net::HeartbeatMsg m;
              m.local_time =
                  static_cast<std::int64_t>(rng.UniformInt(0, 1u << 20));
              m.frames_sent = rng.UniformInt(0, 4096);
              return {FrameType::kHeartbeat, m.Encode()};
            }
            case 2: {
              net::AckMsg m;
              m.cum_seq = static_cast<std::uint32_t>(rng.UniformInt(0, 4096));
              m.epoch = static_cast<std::uint32_t>(rng.UniformInt(0, 16));
              return {FrameType::kAck, m.Encode()};
            }
            case 3: {
              net::MetricsMsg m;
              m.snapshot_id =
                  static_cast<std::uint32_t>(rng.UniformInt(0, 1024));
              m.full = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
              const std::size_t n = rng.UniformInt(0, 12);
              for (std::size_t k = 0; k < n; ++k) {
                net::MetricEntry e;
                e.name = std::string(1 + rng.UniformInt(0, 48),
                                     static_cast<char>('a' + k % 26));
                e.kind = static_cast<std::uint8_t>(k % 2);
                e.value =
                    static_cast<double>(rng.UniformInt(0, 1u << 20));
                m.entries.push_back(std::move(e));
              }
              return {FrameType::kMetrics, m.Encode()};
            }
            case 4: {
              net::EventBatchMsg m;
              m.block_start =
                  static_cast<std::int64_t>(rng.UniformInt(0, 1u << 20));
              const std::size_t n = rng.UniformInt(0, 6);
              for (std::size_t k = 0; k < n; ++k) {
                net::EventRecord e;
                e.protocol = core::Protocol::kWifi80211b;
                e.start_sample = m.block_start +
                                 static_cast<std::int64_t>(k) * 1000;
                e.end_sample = e.start_sample + 500;
                e.payload_bytes =
                    static_cast<std::uint32_t>(rng.UniformInt(0, 2000));
                e.crc_ok = rng.UniformInt(0, 1) == 1;
                e.payload_digest = rng.UniformInt(0, 1u << 30);
                m.events.push_back(e);
              }
              return {FrameType::kEventBatch, m.Encode()};
            }
            case 5: {
              net::HealthMsg m;
              m.report.block_start =
                  static_cast<std::int64_t>(rng.UniformInt(0, 1u << 20));
              m.report.block_samples = rng.UniformInt(0, 1u << 18);
              m.report.gap_count =
                  static_cast<std::uint32_t>(rng.UniformInt(0, 16));
              m.report.tagged_detections = rng.UniformInt(0, 4096);
              return {FrameType::kHealth, m.Encode()};
            }
            default: {
              net::GapReportMsg m;
              const std::size_t n = 1 + rng.UniformInt(0, 7);
              std::uint32_t lo = 1;
              for (std::size_t k = 0; k < n; ++k) {
                const auto span32 =
                    static_cast<std::uint32_t>(rng.UniformInt(0, 30));
                m.lost.push_back({lo, lo + span32});
                lo += span32 + 2 +
                      static_cast<std::uint32_t>(rng.UniformInt(0, 100));
              }
              return {FrameType::kGapReport, m.Encode()};
            }
          }
        };
        switch (i % 5) {
          case 0:
          case 1: {  // framed stream (mode 0/1); odd ones mutated -> resync
            std::vector<std::uint8_t> data{static_cast<std::uint8_t>(i % 2)};
            const std::size_t nframes = 1 + rng.UniformInt(0, 2);
            for (std::size_t f = 0; f < nframes; ++f) {
              auto [type, payload] = random_message(rng.UniformInt(0, 6));
              net::FrameHeader h;
              h.type = type;
              h.sensor_id =
                  static_cast<std::uint16_t>(rng.UniformInt(0, 7));
              h.seq = net::IsDataFrame(type)
                          ? static_cast<std::uint32_t>(
                                1 + rng.UniformInt(0, 1000))
                          : 0;
              const auto frame = net::EncodeFrame(h, payload);
              data.insert(data.end(), frame.begin(), frame.end());
            }
            if (i % 2 == 1) MutateInput(data, rng);
            emit(std::move(data));
            break;
          }
          case 2: {  // metrics-heavy frame, incl. the name-length boundary
            net::MetricsMsg m;
            m.snapshot_id = static_cast<std::uint32_t>(i);
            m.full = 1;
            const std::size_t name_len =
                (i % 3 == 0) ? net::kMaxMetricNameBytes
                             : 1 + rng.UniformInt(0, 64);
            const std::size_t n = 1 + rng.UniformInt(0, 15);
            for (std::size_t k = 0; k < n; ++k) {
              net::MetricEntry e;
              e.name =
                  std::string(name_len, static_cast<char>('a' + k % 26));
              e.kind = static_cast<std::uint8_t>(k % 2);
              e.value = static_cast<double>(rng.UniformInt(0, 1u << 20));
              m.entries.push_back(std::move(e));
            }
            net::FrameHeader h;
            h.type = FrameType::kMetrics;
            const auto frame = net::EncodeFrame(h, m.Encode());
            std::vector<std::uint8_t> data{0};
            data.insert(data.end(), frame.begin(), frame.end());
            emit(std::move(data));
            break;
          }
          case 3: {  // raw codec payload (mode 2), half of them mutated
            const std::size_t pick = rng.UniformInt(0, 6);
            auto [type, payload] = random_message(pick);
            (void)type;
            std::vector<std::uint8_t> data{
                2, static_cast<std::uint8_t>(pick)};
            data.insert(data.end(), payload.begin(), payload.end());
            if (rng.UniformInt(0, 1) == 1) MutateInput(data, rng);
            emit(std::move(data));
            break;
          }
          default: {  // random bytes, random mode
            std::vector<std::uint8_t> data{
                static_cast<std::uint8_t>(rng.UniformInt(0, 255))};
            const std::size_t n = rng.UniformInt(0, 512);
            for (std::size_t k = 0; k < n; ++k) {
              data.push_back(
                  static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
            }
            emit(std::move(data));
            break;
          }
        }
        break;
      }
    }
  }
  return written;
}

std::string CorpusRunner::Result::Summary(FuzzTarget target) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s: %zu inputs, %zu decodes, %zu budget expiries, %zu "
                "findings\n",
                FuzzTargetName(target), inputs_run, decodes, budget_expiries,
                findings.size());
  std::string out = buf;
  for (const auto& f : findings) {
    out += "  " + f.kind + " on " + f.input_name + ": " + f.detail;
    if (!f.repro_path.empty()) out += " (repro: " + f.repro_path + ")";
    out += "\n";
  }
  return out;
}

void CorpusRunner::RunOne(FuzzTarget target,
                          std::span<const std::uint8_t> data,
                          const std::string& input_name, Result& result) {
  util::WorkBudget budget;
  budget.Arm(config_.limits);
  ++result.inputs_run;

  const auto record = [&](const char* kind, std::string detail) {
    Finding f;
    f.target = target;
    f.kind = kind;
    f.input_name = input_name;
    f.detail = std::move(detail);
    if (!config_.repro_dir.empty()) {
      fs::create_directories(config_.repro_dir);
      char name[96];
      std::snprintf(name, sizeof(name), "%s-%s-%016llx.bin",
                    FuzzCorpusDirName(target), kind,
                    static_cast<unsigned long long>(Fnv1a(data)));
      const fs::path path = fs::path(config_.repro_dir) / name;
      WriteFile(path, data);
      f.repro_path = path.string();
    }
    result.findings.push_back(std::move(f));
  };

  const auto t0 = std::chrono::steady_clock::now();
  try {
    result.decodes += static_cast<std::size_t>(
        std::max(0, RunFuzzInput(target, data, &budget)));
  } catch (const std::exception& e) {
    record("crash", e.what());
  } catch (...) {
    record("crash", "non-std exception");
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (budget.expired()) ++result.budget_expiries;
  if (elapsed > config_.hang_wall_seconds) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f s wall (limit %.2f)", elapsed,
                  config_.hang_wall_seconds);
    record("hang", buf);
  }
}

CorpusRunner::Result CorpusRunner::RunDirectory(FuzzTarget target,
                                                const std::string& corpus_dir) {
  Result result;
  std::vector<fs::path> files;
  if (fs::exists(corpus_dir)) {
    for (const auto& entry : fs::directory_iterator(corpus_dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> data(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    RunOne(target, data, path.filename().string(), result);

    // Deterministic mutation rounds: the mutant is identified by the source
    // file, round index, and master seed, so any finding is reproducible.
    util::Xoshiro256 rng(config_.seed ^ Fnv1a(data));
    std::vector<std::uint8_t> mutant = data;
    for (int round = 0; round < config_.mutation_rounds; ++round) {
      MutateInput(mutant, rng);
      RunOne(target, mutant,
             path.filename().string() + "+round" + std::to_string(round),
             result);
    }
  }
  return result;
}

}  // namespace rfdump::testing
