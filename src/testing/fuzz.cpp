#include "rfdump/testing/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "rfdump/core/fuzz_io.hpp"
#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/net/messages.hpp"
#include "rfdump/net/wire.hpp"

namespace fs = std::filesystem;

namespace rfdump::testing {
namespace {

using net::FrameType;

/// Decodes a parsed frame's payload with the codec its type names; on
/// success re-encodes and re-decodes so every accepted input proves the
/// codec closed under its own round trip (an asymmetric codec throws out of
/// the fuzz run as a finding).
int DecodeFramePayload(FrameType type, std::span<const std::uint8_t> p) {
  const auto closed = [](bool reencoded_ok) {
    if (!reencoded_ok) {
      throw std::logic_error("message codec not closed under re-encode");
    }
  };
  switch (type) {
    case FrameType::kHello:
      if (const auto m = net::HelloMsg::Decode(p)) {
        closed(net::HelloMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kHeartbeat:
      if (const auto m = net::HeartbeatMsg::Decode(p)) {
        closed(net::HeartbeatMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kAck:
      if (const auto m = net::AckMsg::Decode(p)) {
        closed(net::AckMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kMetrics:
      if (const auto m = net::MetricsMsg::Decode(p)) {
        closed(net::MetricsMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kEventBatch:
      if (const auto m = net::EventBatchMsg::Decode(p)) {
        closed(net::EventBatchMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kHealth:
      if (const auto m = net::HealthMsg::Decode(p)) {
        closed(net::HealthMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
    case FrameType::kGapReport:
      if (const auto m = net::GapReportMsg::Decode(p)) {
        closed(net::GapReportMsg::Decode(m->Encode()).has_value());
        return 1;
      }
      return 0;
  }
  return 0;
}

int RunNetFrameInput(std::span<const std::uint8_t> payload,
                     std::uint8_t mode) {
  int decodes = 0;
  switch (mode % 3) {
    case 0:
    case 1: {
      // One-shot parse, then (mode 1 only acts differently in chunk sizes;
      // both modes run the differential) the same bytes again in small
      // chunks. An incremental parser must not care where the stream is
      // cut, so any divergence in stats is a real resync bug.
      net::FrameParser whole;
      whole.Feed(payload, [&](net::Frame&& f) {
        decodes += DecodeFramePayload(f.header.type, f.payload);
      });
      net::FrameParser chunked;
      static constexpr std::size_t kChunks[] = {1, 2, 3, 5, 7, 16};
      std::size_t off = 0, k = mode / 3;
      while (off < payload.size()) {
        const std::size_t n =
            std::min(kChunks[k++ % std::size(kChunks)], payload.size() - off);
        chunked.Feed(payload.subspan(off, n), [](net::Frame&&) {});
        off += n;
      }
      const auto& a = whole.stats();
      const auto& b = chunked.stats();
      if (a.frames_ok != b.frames_ok ||
          a.bad_magic_bytes != b.bad_magic_bytes ||
          a.bad_version != b.bad_version || a.bad_type != b.bad_type ||
          a.bad_length != b.bad_length ||
          a.bad_header_checksum != b.bad_header_checksum ||
          a.bad_crc != b.bad_crc ||
          whole.pending_bytes() != chunked.pending_bytes()) {
        throw std::logic_error("chunked vs one-shot frame parse diverged");
      }
      break;
    }
    default: {
      // Straight at the codecs, no CRC gate in the way: the first byte
      // picks the message type, the rest is its payload.
      if (payload.empty()) break;
      static constexpr FrameType kTypes[] = {
          FrameType::kHello,     FrameType::kHeartbeat, FrameType::kAck,
          FrameType::kMetrics,   FrameType::kEventBatch,
          FrameType::kHealth,    FrameType::kGapReport};
      decodes += DecodeFramePayload(kTypes[payload[0] % std::size(kTypes)],
                                    payload.subspan(1));
      break;
    }
  }
  return decodes;
}

std::vector<std::uint8_t> NetFrameSeedInput(std::size_t i,
                                            util::Xoshiro256& rng) {
  // Builds one random-but-valid message; `pick % 7` matches the
  // selector order RunNetFrameInput's raw-codec mode uses.
  const auto random_message = [&rng](std::size_t pick)
      -> std::pair<FrameType, std::vector<std::uint8_t>> {
    switch (pick % 7) {
      case 0: {
        net::HelloMsg m;
        m.epoch = static_cast<std::uint32_t>(rng.UniformInt(0, 1000));
        m.local_time = static_cast<std::int64_t>(rng.UniformInt(0, 1u << 20));
        return {FrameType::kHello, m.Encode()};
      }
      case 1: {
        net::HeartbeatMsg m;
        m.local_time = static_cast<std::int64_t>(rng.UniformInt(0, 1u << 20));
        m.frames_sent = rng.UniformInt(0, 4096);
        return {FrameType::kHeartbeat, m.Encode()};
      }
      case 2: {
        net::AckMsg m;
        m.cum_seq = static_cast<std::uint32_t>(rng.UniformInt(0, 4096));
        m.epoch = static_cast<std::uint32_t>(rng.UniformInt(0, 16));
        return {FrameType::kAck, m.Encode()};
      }
      case 3: {
        net::MetricsMsg m;
        m.snapshot_id = static_cast<std::uint32_t>(rng.UniformInt(0, 1024));
        m.full = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
        const std::size_t n = rng.UniformInt(0, 12);
        for (std::size_t k = 0; k < n; ++k) {
          net::MetricEntry e;
          e.name = std::string(1 + rng.UniformInt(0, 48),
                               static_cast<char>('a' + k % 26));
          e.kind = static_cast<std::uint8_t>(k % 2);
          e.value = static_cast<double>(rng.UniformInt(0, 1u << 20));
          m.entries.push_back(std::move(e));
        }
        return {FrameType::kMetrics, m.Encode()};
      }
      case 4: {
        net::EventBatchMsg m;
        m.block_start = static_cast<std::int64_t>(rng.UniformInt(0, 1u << 20));
        const std::size_t n = rng.UniformInt(0, 6);
        for (std::size_t k = 0; k < n; ++k) {
          net::EventRecord e;
          e.protocol = core::Protocol::kWifi80211b;
          e.start_sample = m.block_start + static_cast<std::int64_t>(k) * 1000;
          e.end_sample = e.start_sample + 500;
          e.payload_bytes =
              static_cast<std::uint32_t>(rng.UniformInt(0, 2000));
          e.crc_ok = rng.UniformInt(0, 1) == 1;
          e.payload_digest = rng.UniformInt(0, 1u << 30);
          m.events.push_back(e);
        }
        return {FrameType::kEventBatch, m.Encode()};
      }
      case 5: {
        net::HealthMsg m;
        m.report.block_start =
            static_cast<std::int64_t>(rng.UniformInt(0, 1u << 20));
        m.report.block_samples = rng.UniformInt(0, 1u << 18);
        m.report.gap_count = static_cast<std::uint32_t>(rng.UniformInt(0, 16));
        m.report.tagged_detections = rng.UniformInt(0, 4096);
        return {FrameType::kHealth, m.Encode()};
      }
      default: {
        net::GapReportMsg m;
        const std::size_t n = 1 + rng.UniformInt(0, 7);
        std::uint32_t lo = 1;
        for (std::size_t k = 0; k < n; ++k) {
          const auto span32 =
              static_cast<std::uint32_t>(rng.UniformInt(0, 30));
          m.lost.push_back({lo, lo + span32});
          lo += span32 + 2 +
                static_cast<std::uint32_t>(rng.UniformInt(0, 100));
        }
        return {FrameType::kGapReport, m.Encode()};
      }
    }
  };
  switch (i % 5) {
    case 0:
    case 1: {  // framed stream (mode 0/1); odd ones mutated -> resync
      std::vector<std::uint8_t> data{static_cast<std::uint8_t>(i % 2)};
      const std::size_t nframes = 1 + rng.UniformInt(0, 2);
      for (std::size_t f = 0; f < nframes; ++f) {
        auto [type, payload] = random_message(rng.UniformInt(0, 6));
        net::FrameHeader h;
        h.type = type;
        h.sensor_id = static_cast<std::uint16_t>(rng.UniformInt(0, 7));
        h.seq = net::IsDataFrame(type)
                    ? static_cast<std::uint32_t>(1 + rng.UniformInt(0, 1000))
                    : 0;
        const auto frame = net::EncodeFrame(h, payload);
        data.insert(data.end(), frame.begin(), frame.end());
      }
      if (i % 2 == 1) core::FuzzMutateInput(data, rng);
      return data;
    }
    case 2: {  // metrics-heavy frame, incl. the name-length boundary
      net::MetricsMsg m;
      m.snapshot_id = static_cast<std::uint32_t>(i);
      m.full = 1;
      const std::size_t name_len = (i % 3 == 0) ? net::kMaxMetricNameBytes
                                                : 1 + rng.UniformInt(0, 64);
      const std::size_t n = 1 + rng.UniformInt(0, 15);
      for (std::size_t k = 0; k < n; ++k) {
        net::MetricEntry e;
        e.name = std::string(name_len, static_cast<char>('a' + k % 26));
        e.kind = static_cast<std::uint8_t>(k % 2);
        e.value = static_cast<double>(rng.UniformInt(0, 1u << 20));
        m.entries.push_back(std::move(e));
      }
      net::FrameHeader h;
      h.type = FrameType::kMetrics;
      const auto frame = net::EncodeFrame(h, m.Encode());
      std::vector<std::uint8_t> data{0};
      data.insert(data.end(), frame.begin(), frame.end());
      return data;
    }
    case 3: {  // raw codec payload (mode 2), half of them mutated
      const std::size_t pick = rng.UniformInt(0, 6);
      auto [type, payload] = random_message(pick);
      (void)type;
      std::vector<std::uint8_t> data{2, static_cast<std::uint8_t>(pick)};
      data.insert(data.end(), payload.begin(), payload.end());
      if (rng.UniformInt(0, 1) == 1) core::FuzzMutateInput(data, rng);
      return data;
    }
    default: {  // random bytes, random mode
      std::vector<std::uint8_t> data{
          static_cast<std::uint8_t>(rng.UniformInt(0, 255))};
      const std::size_t n = rng.UniformInt(0, 512);
      for (std::size_t k = 0; k < n; ++k) {
        data.push_back(static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
      }
      return data;
    }
  }
}

/// The one fuzz target that is not a protocol bundle: the sensor-fleet wire
/// protocol lives in net/, above the protocol layer.
FuzzTargetRef NetFrameTargetRef() {
  FuzzTargetRef ref;
  ref.name = "net-frame";
  ref.corpus_dir = "net_frame";
  ref.run = [](std::span<const std::uint8_t> data, util::WorkBudget* budget) {
    (void)budget;  // byte-stream parsing is linear; no deadline hook
    if (data.empty()) return 0;
    return RunNetFrameInput(data.subspan(1), data[0]);
  };
  ref.seed_input = NetFrameSeedInput;
  return ref;
}

FuzzTargetRef RefFromBundle(const core::ProtocolBundle& bundle) {
  FuzzTargetRef ref;
  ref.name = bundle.fuzz_name;
  ref.corpus_dir = bundle.fuzz_corpus_dir;
  ref.run = bundle.fuzz_run;
  ref.seed_input = bundle.fuzz_seed_input;
  return ref;
}

void WriteFile(const fs::path& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

}  // namespace

const char* FuzzTargetName(FuzzTarget t) {
  switch (t) {
    case FuzzTarget::kPhy80211Plcp: return "phy80211-plcp";
    case FuzzTarget::kPhyBtPacket: return "phybt-packet";
    case FuzzTarget::kPhyZigbee: return "phyzigbee";
    case FuzzTarget::kNetFrame: return "net-frame";
  }
  return "?";
}

const char* FuzzCorpusDirName(FuzzTarget t) {
  switch (t) {
    case FuzzTarget::kPhy80211Plcp: return "phy80211_plcp";
    case FuzzTarget::kPhyBtPacket: return "phybt_packet";
    case FuzzTarget::kPhyZigbee: return "phyzigbee";
    case FuzzTarget::kNetFrame: return "net_frame";
  }
  return "?";
}

std::vector<FuzzTargetRef> EnumerateFuzzTargets() {
  std::vector<FuzzTargetRef> out;
  for (const auto& bundle : core::ProtocolRegistry::Instance().bundles()) {
    if (bundle.fuzz_name == nullptr || !bundle.fuzz_run ||
        !bundle.fuzz_seed_input) {
      continue;
    }
    out.push_back(RefFromBundle(bundle));
  }
  out.push_back(NetFrameTargetRef());
  return out;
}

FuzzTargetRef FuzzTargetRefFor(FuzzTarget t) {
  core::Protocol p = core::Protocol::kUnknown;
  switch (t) {
    case FuzzTarget::kPhy80211Plcp: p = core::Protocol::kWifi80211b; break;
    case FuzzTarget::kPhyBtPacket: p = core::Protocol::kBluetooth; break;
    case FuzzTarget::kPhyZigbee: p = core::Protocol::kZigbee; break;
    case FuzzTarget::kNetFrame: return NetFrameTargetRef();
  }
  const core::ProtocolBundle* bundle =
      core::ProtocolRegistry::Instance().Find(p);
  if (bundle == nullptr || bundle->fuzz_name == nullptr) {
    throw std::logic_error(std::string("no fuzz bundle for target ") +
                           FuzzTargetName(t));
  }
  return RefFromBundle(*bundle);
}

int RunFuzzInput(FuzzTarget target, std::span<const std::uint8_t> data,
                 util::WorkBudget* budget) {
  return FuzzTargetRefFor(target).run(data, budget);
}

void MutateInput(std::vector<std::uint8_t>& data, util::Xoshiro256& rng) {
  core::FuzzMutateInput(data, rng);
}

std::size_t WriteSeedCorpus(const FuzzTargetRef& ref, const std::string& dir,
                            std::size_t count, std::uint64_t seed) {
  fs::create_directories(dir);
  std::size_t written = 0;
  const auto emit = [&](std::vector<std::uint8_t> data) {
    char name[64];
    std::snprintf(name, sizeof(name), "seed-%04zu-%016llx.bin", written,
                  static_cast<unsigned long long>(core::FuzzFnv1a(data)));
    WriteFile(fs::path(dir) / name, data);
    ++written;
  };
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; written < count; ++i) {
    emit(ref.seed_input(i, rng));
  }
  return written;
}

std::size_t WriteSeedCorpus(FuzzTarget target, const std::string& dir,
                            std::size_t count, std::uint64_t seed) {
  return WriteSeedCorpus(FuzzTargetRefFor(target), dir, count, seed);
}

std::string CorpusRunner::Result::Summary(
    const std::string& target_name) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s: %zu inputs, %zu decodes, %zu budget expiries, %zu "
                "findings\n",
                target_name.c_str(), inputs_run, decodes, budget_expiries,
                findings.size());
  std::string out = buf;
  for (const auto& f : findings) {
    out += "  " + f.kind + " on " + f.input_name + ": " + f.detail;
    if (!f.repro_path.empty()) out += " (repro: " + f.repro_path + ")";
    out += "\n";
  }
  return out;
}

std::string CorpusRunner::Result::Summary(FuzzTarget target) const {
  return Summary(std::string(FuzzTargetName(target)));
}

void CorpusRunner::RunOne(const FuzzTargetRef& ref,
                          std::span<const std::uint8_t> data,
                          const std::string& input_name, Result& result) {
  util::WorkBudget budget;
  budget.Arm(config_.limits);
  ++result.inputs_run;

  const auto record = [&](const char* kind, std::string detail) {
    Finding f;
    f.target_name = ref.name;
    f.kind = kind;
    f.input_name = input_name;
    f.detail = std::move(detail);
    if (!config_.repro_dir.empty()) {
      fs::create_directories(config_.repro_dir);
      char name[96];
      std::snprintf(name, sizeof(name), "%s-%s-%016llx.bin",
                    ref.corpus_dir.c_str(), kind,
                    static_cast<unsigned long long>(core::FuzzFnv1a(data)));
      const fs::path path = fs::path(config_.repro_dir) / name;
      WriteFile(path, data);
      f.repro_path = path.string();
    }
    result.findings.push_back(std::move(f));
  };

  const auto t0 = std::chrono::steady_clock::now();
  try {
    result.decodes +=
        static_cast<std::size_t>(std::max(0, ref.run(data, &budget)));
  } catch (const std::exception& e) {
    record("crash", e.what());
  } catch (...) {
    record("crash", "non-std exception");
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (budget.expired()) ++result.budget_expiries;
  if (elapsed > config_.hang_wall_seconds) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f s wall (limit %.2f)", elapsed,
                  config_.hang_wall_seconds);
    record("hang", buf);
  }
}

void CorpusRunner::RunOne(FuzzTarget target,
                          std::span<const std::uint8_t> data,
                          const std::string& input_name, Result& result) {
  const std::size_t before = result.findings.size();
  RunOne(FuzzTargetRefFor(target), data, input_name, result);
  for (std::size_t i = before; i < result.findings.size(); ++i) {
    result.findings[i].target = target;
  }
}

CorpusRunner::Result CorpusRunner::RunDirectory(
    const FuzzTargetRef& ref, const std::string& corpus_dir) {
  Result result;
  std::vector<fs::path> files;
  if (fs::exists(corpus_dir)) {
    for (const auto& entry : fs::directory_iterator(corpus_dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> data(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    RunOne(ref, data, path.filename().string(), result);

    // Deterministic mutation rounds: the mutant is identified by the source
    // file, round index, and master seed, so any finding is reproducible.
    util::Xoshiro256 rng(config_.seed ^ core::FuzzFnv1a(data));
    std::vector<std::uint8_t> mutant = data;
    for (int round = 0; round < config_.mutation_rounds; ++round) {
      core::FuzzMutateInput(mutant, rng);
      RunOne(ref, mutant,
             path.filename().string() + "+round" + std::to_string(round),
             result);
    }
  }
  return result;
}

CorpusRunner::Result CorpusRunner::RunDirectory(FuzzTarget target,
                                                const std::string& corpus_dir) {
  Result result = RunDirectory(FuzzTargetRefFor(target), corpus_dir);
  for (auto& f : result.findings) f.target = target;
  return result;
}

}  // namespace rfdump::testing
