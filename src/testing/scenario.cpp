#include "rfdump/testing/scenario.hpp"

#include <algorithm>
#include <utility>

#include "rfdump/core/protocol_registry.hpp"

namespace rfdump::testing {
namespace {

/// SplitMix64 step — derives independent sub-seeds (front end, future
/// consumers) from the master seed without correlating their streams.
std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t salt) {
  std::uint64_t z = master + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Auto-stagger gap between ops (1 ms at 8 Msps).
constexpr std::int64_t kStaggerSamples = 8'000;

}  // namespace

ScenarioBuilder::ScenarioBuilder(std::uint64_t master_seed, std::string name)
    : seed_(master_seed), name_(std::move(name)) {}

ScenarioBuilder& ScenarioBuilder::NoisePower(double power) {
  ether_config_.noise_power = power;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::AdcBits(unsigned bits, float full_scale) {
  ether_config_.adc_bits = bits;
  ether_config_.adc_full_scale = full_scale;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::SnrOffsetDb(double db) {
  snr_offset_db_ = db;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::TailPadding(std::int64_t samples) {
  tail_padding_ = samples;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Impair(emu::FrontEnd::Config config) {
  impair_ = true;
  impair_config_ = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Add(Op op) {
  ops_.push_back(std::move(op));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::WifiPing(traffic::WifiPingConfig cfg,
                                           std::int64_t at_sample) {
  return Add({[cfg](emu::Ether& e, std::int64_t start, double off) {
                auto c = cfg;
                c.snr_db += off;
                return traffic::GenerateUnicastPing(e, c, start).end_sample;
              },
              at_sample});
}

ScenarioBuilder& ScenarioBuilder::WifiBroadcast(traffic::WifiBroadcastConfig cfg,
                                                std::int64_t at_sample) {
  return Add({[cfg](emu::Ether& e, std::int64_t start, double off) {
                auto c = cfg;
                c.snr_db += off;
                return traffic::GenerateBroadcastFlood(e, c, start).end_sample;
              },
              at_sample});
}

ScenarioBuilder& ScenarioBuilder::Beacons(traffic::BeaconConfig cfg,
                                          std::int64_t at_sample) {
  return Add({[cfg](emu::Ether& e, std::int64_t start, double off) {
                auto c = cfg;
                c.snr_db += off;
                return traffic::GenerateBeacons(e, c, start).end_sample;
              },
              at_sample});
}

ScenarioBuilder& ScenarioBuilder::L2Ping(traffic::L2PingConfig cfg,
                                         std::int64_t at_sample) {
  return Add({[cfg](emu::Ether& e, std::int64_t start, double off) {
                auto c = cfg;
                c.snr_db += off;
                return traffic::GenerateL2Ping(e, c, start).end_sample;
              },
              at_sample});
}

ScenarioBuilder& ScenarioBuilder::Zigbee(traffic::ZigbeeConfig cfg,
                                         std::int64_t at_sample) {
  return Add({[cfg](emu::Ether& e, std::int64_t start, double off) {
                auto c = cfg;
                c.snr_db += off;
                return traffic::GenerateZigbee(e, c, start).end_sample;
              },
              at_sample});
}

ScenarioBuilder& ScenarioBuilder::Microwave(traffic::MicrowaveConfig cfg,
                                            std::int64_t at_sample,
                                            std::int64_t duration_samples) {
  return Add({[cfg, duration_samples](emu::Ether& e, std::int64_t start,
                                      double off) {
                auto c = cfg;
                c.snr_db += off;
                return traffic::GenerateMicrowave(e, c, start, duration_samples)
                    .end_sample;
              },
              at_sample});
}

ScenarioBuilder& ScenarioBuilder::Campus(traffic::CampusConfig cfg,
                                         std::int64_t at_sample) {
  return Add({[cfg](emu::Ether& e, std::int64_t start, double off) {
                auto c = cfg;
                c.snr_db += off;
                return traffic::GenerateCampus(e, c, start).end_sample;
              },
              at_sample});
}

ScenarioBuilder& ScenarioBuilder::Traffic(
    std::function<std::int64_t(emu::Ether&, std::int64_t, double)> run,
    std::int64_t at_sample) {
  return Add({std::move(run), at_sample});
}

RenderedScenario ScenarioBuilder::Render() const {
  emu::Ether ether(ether_config_, seed_);
  std::int64_t latest = 0;
  for (const Op& op : ops_) {
    const std::int64_t start =
        op.at_sample >= 0 ? op.at_sample : latest + kStaggerSamples;
    const std::int64_t end = op.run(ether, start, snr_offset_db_);
    latest = std::max(latest, end);
  }
  RenderedScenario out;
  out.seed = seed_;
  out.name = name_;
  out.samples = ether.Render(latest + tail_padding_);
  out.truth = ether.truth();
  if (impair_) {
    emu::FrontEnd fe(out.samples, impair_config_, DeriveSeed(seed_, 0x1F));
    out.segments = fe.DrainAll();
    out.faults = fe.faults();
  }
  return out;
}

RenderedScenario CannedMixedScenario(std::uint64_t seed) {
  // The sessions are auto-staggered, not overlapped: simultaneous
  // cross-protocol transmissions are collisions, which the paper's detectors
  // explicitly do not resolve (future work, §6) — a collision-heavy canned
  // scenario would make the naive-vs-RFDump differential fail for reasons
  // the architecture never claimed to handle.
  //
  // Each registered bundle with a canned_traffic hook contributes one
  // session, in ascending protocol-id order. That order also preserves the
  // ether RNG draw sequence of the original hand-listed recipe (wifi, bt,
  // zigbee) for the legacy seeds, so per-seed streams stay bit-identical
  // when new bundles only append.
  ScenarioBuilder builder(seed, "canned-mixed");
  for (const auto& bundle : core::ProtocolRegistry::Instance().bundles()) {
    if (!bundle.canned_traffic) continue;
    builder.Traffic(bundle.canned_traffic, bundle.canned_at);
  }
  return builder.TailPadding(8'000).Render();
}

}  // namespace rfdump::testing
