#include "rfdump/testing/replay.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "rfdump/trace/trace.hpp"

namespace fs = std::filesystem;

namespace rfdump::testing {
namespace {

/// Extracts `"key":<number>` from the one-line sidecar JSON.
bool FindNumber(const std::string& json, const std::string& key,
                long long& out) {
  const auto pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return false;
  out = std::atoll(json.c_str() + pos + key.size() + 3);
  return true;
}

/// Extracts `"key":"value"` (value unescaped for the subset JsonEscape
/// emits).
bool FindString(const std::string& json, const std::string& key,
                std::string& out) {
  const auto pos = json.find("\"" + key + "\":\"");
  if (pos == std::string::npos) return false;
  out.clear();
  for (std::size_t i = pos + key.size() + 4; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < json.size()) {
      const char n = json[++i];
      switch (n) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (i + 4 < json.size()) {
            out += static_cast<char>(
                std::strtol(json.substr(i + 1, 4).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: out += n;
      }
    } else {
      out += c;
    }
  }
  return false;
}

core::Protocol ProtocolFromName(const std::string& name) {
  for (std::size_t i = 0; i < core::kProtocolCount; ++i) {
    const auto p = static_cast<core::Protocol>(i);
    if (name == core::ProtocolName(p)) return p;
  }
  return core::Protocol::kUnknown;
}

core::Outcome OutcomeFromName(const std::string& name) {
  static constexpr core::Outcome kAll[] = {
      core::Outcome::kOk, core::Outcome::kDeadline, core::Outcome::kException,
      core::Outcome::kSkipped};
  for (const auto o : kAll) {
    if (name == core::OutcomeName(o)) return o;
  }
  return core::Outcome::kOk;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::size_t WriteQuarantineDir(const std::string& dir,
                               const core::Supervisor& supervisor) {
  fs::create_directories(dir);
  const auto records = supervisor.quarantine();
  int idx = 0;
  for (const auto& rec : records) {
    char stem[96];
    std::snprintf(stem, sizeof(stem), "%s/q%03d_%s_%lld", dir.c_str(), idx++,
                  core::ProtocolName(rec.protocol),
                  static_cast<long long>(rec.start_sample));
    trace::WriteIqTrace(std::string(stem) + ".iq", rec.snapshot);
    std::ofstream meta(std::string(stem) + ".json", std::ios::trunc);
    meta << "{\"stream_start\":" << rec.start_sample
         << ",\"stream_end\":" << rec.end_sample << ",\"protocol\":\""
         << core::ProtocolName(rec.protocol) << "\",\"outcome\":\""
         << core::OutcomeName(rec.outcome) << "\",\"error\":\""
         << JsonEscape(rec.error)
         << "\",\"snapshot_samples\":" << rec.snapshot.size() << "}\n";
  }
  return records.size();
}

ReplayFile LoadReplay(const std::string& iq_path) {
  ReplayFile out;
  out.iq_path = iq_path;
  out.samples = trace::ReadIqTrace(iq_path, &out.sample_rate_hz);

  const fs::path sidecar = fs::path(iq_path).replace_extension(".json");
  std::ifstream in(sidecar);
  if (!in) return out;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  long long num = 0;
  if (FindNumber(json, "stream_start", num)) out.stream_start = num;
  if (FindNumber(json, "stream_end", num)) out.stream_end = num;
  if (FindNumber(json, "snapshot_samples", num)) {
    out.snapshot_samples = static_cast<std::size_t>(num);
  }
  std::string str;
  if (FindString(json, "protocol", str)) out.protocol = ProtocolFromName(str);
  if (FindString(json, "outcome", str)) out.outcome = OutcomeFromName(str);
  FindString(json, "error", out.error);
  out.has_sidecar = true;
  return out;
}

std::vector<ReplayFile> LoadQuarantineDir(const std::string& dir) {
  std::vector<fs::path> files;
  if (fs::exists(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".iq") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<ReplayFile> out;
  out.reserve(files.size());
  for (const auto& path : files) out.push_back(LoadReplay(path.string()));
  return out;
}

}  // namespace rfdump::testing
