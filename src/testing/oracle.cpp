#include "rfdump/testing/oracle.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "rfdump/core/protocol_registry.hpp"

namespace rfdump::testing {
namespace {

struct Interval {
  std::int64_t start = 0;
  std::int64_t end = 0;
  bool crc_ok = false;
};

std::int64_t Overlap(std::int64_t a0, std::int64_t a1, std::int64_t b0,
                     std::int64_t b1) {
  return std::max<std::int64_t>(0, std::min(a1, b1) - std::max(a0, b0));
}

/// Greedy best-overlap matching of decodes against truth records of one
/// protocol. Both sides are small (hundreds), so the quadratic scan is fine.
ProtocolConformance MatchProtocol(core::Protocol protocol,
                                  const std::vector<emu::TruthRecord>& truth,
                                  std::int64_t total_samples,
                                  std::vector<Interval> decodes,
                                  const MatchPolicy& policy) {
  ProtocolConformance out;
  out.protocol = protocol;
  if (policy.require_crc_ok) {
    decodes.erase(std::remove_if(decodes.begin(), decodes.end(),
                                 [](const Interval& d) { return !d.crc_ok; }),
                  decodes.end());
  }
  out.decoded = decodes.size();

  std::vector<const emu::TruthRecord*> records;
  for (const auto& t : truth) {
    if (t.protocol == protocol && t.visible && t.end_sample <= total_samples) {
      records.push_back(&t);
    }
  }
  out.truth_packets = records.size();

  std::vector<bool> truth_matched(records.size(), false);
  for (const Interval& d : decodes) {
    std::int64_t best = 0;
    std::size_t best_idx = records.size();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto* t = records[i];
      const std::int64_t ov =
          Overlap(d.start, d.end, t->start_sample, t->end_sample);
      const std::int64_t need = static_cast<std::int64_t>(
          policy.min_overlap_fraction *
          static_cast<double>(t->end_sample - t->start_sample));
      if (ov > best && ov >= std::max<std::int64_t>(need, 1)) {
        best = ov;
        best_idx = i;
      }
    }
    if (best_idx == records.size()) {
      ++out.spurious;
    } else {
      truth_matched[best_idx] = true;
    }
  }
  out.matched = static_cast<std::size_t>(
      std::count(truth_matched.begin(), truth_matched.end(), true));
  out.missed = out.truth_packets - out.matched;
  return out;
}

}  // namespace

const ProtocolConformance& ConformanceReport::Of(core::Protocol p) const {
  static const ProtocolConformance kEmpty;
  for (const auto& c : protocols) {
    if (c.protocol == p) return c;
  }
  return kEmpty;
}

std::string ConformanceReport::Summary() const {
  std::string out;
  char buf[192];
  for (const auto& c : protocols) {
    std::snprintf(buf, sizeof(buf),
                  "seed=%llu %-12s truth %4zu matched %4zu missed %3zu "
                  "(miss %.4f)  decoded %4zu spurious %3zu  precision %.4f "
                  "recall %.4f\n",
                  static_cast<unsigned long long>(seed),
                  core::ProtocolName(c.protocol), c.truth_packets, c.matched,
                  c.missed, c.MissRate(), c.decoded, c.spurious, c.Precision(),
                  c.Recall());
    out += buf;
  }
  return out;
}

ConformanceReport ScoreReport(const std::vector<emu::TruthRecord>& truth,
                              std::int64_t total_samples,
                              const core::MonitorReport& report,
                              const MatchPolicy& policy) {
  ConformanceReport out;

  // Decode intervals per protocol, from the generic protocol-tagged event
  // view when the pipeline produced one. Hand-built reports (tests) that
  // only fill the legacy typed vectors fall back to those.
  std::array<std::vector<Interval>, core::kProtocolCount> decodes;
  if (!report.events.empty()) {
    for (const auto& e : report.events) {
      const auto idx = static_cast<std::size_t>(e.protocol);
      if (idx < decodes.size()) {
        decodes[idx].push_back({e.start_sample, e.end_sample, e.crc_ok});
      }
    }
  } else {
    auto& wifi = decodes[static_cast<std::size_t>(core::Protocol::kWifi80211b)];
    wifi.reserve(report.wifi_frames.size());
    for (const auto& f : report.wifi_frames) {
      wifi.push_back({f.start_sample, f.end_sample, f.fcs_ok});
    }
    auto& bt = decodes[static_cast<std::size_t>(core::Protocol::kBluetooth)];
    bt.reserve(report.bt_packets.size());
    for (const auto& p : report.bt_packets) {
      bt.push_back({p.start_sample, p.end_sample, p.packet.crc_ok});
    }
    auto& zb = decodes[static_cast<std::size_t>(core::Protocol::kZigbee)];
    zb.reserve(report.zb_frames.size());
    for (const auto& z : report.zb_frames) {
      zb.push_back({z.start_sample, z.end_sample, z.crc_ok});
    }
  }

  // Not hand-listed: every registered bundle that opts into oracle scoring
  // gets a precision/recall row.
  for (const auto& bundle : core::ProtocolRegistry::Instance().bundles()) {
    if (!bundle.oracle_scored) continue;
    auto c = MatchProtocol(
        bundle.protocol, truth, total_samples,
        std::move(decodes[static_cast<std::size_t>(bundle.protocol)]), policy);
    // Keep the report small: only protocols that appear on either side.
    if (c.truth_packets > 0 || c.decoded > 0) out.protocols.push_back(c);
  }
  return out;
}

ConformanceReport ScoreReport(const RenderedScenario& scenario,
                              const core::MonitorReport& report,
                              const MatchPolicy& policy) {
  ConformanceReport out =
      ScoreReport(scenario.truth, scenario.duration(), report, policy);
  out.seed = scenario.seed;
  out.scenario = scenario.name;
  return out;
}

}  // namespace rfdump::testing
