#include "rfdump/phy80211/demodulator.hpp"

#include <algorithm>
#include <cmath>

#include "rfdump/dsp/barker.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/dsp/phase.hpp"
#include "rfdump/dsp/resampler.hpp"
#include "rfdump/phy80211/modulator.hpp"
#include "rfdump/phy80211/scrambler.hpp"
#include "rfdump/util/bits.hpp"
#include "rfdump/util/crc.hpp"

namespace rfdump::phy80211 {
namespace {

using dsp::cfloat;

// Maps a chip index (11 Mchip/s) back to a front-end sample index (8 Msps).
std::int64_t ChipToSample(std::size_t chip) {
  return static_cast<std::int64_t>(chip * 8 / 11);
}

// Inverse DQPSK dibit map: quadrant of the differential phase -> (d0, d1).
std::pair<std::uint8_t, std::uint8_t> SliceDqpsk(float diff_phase) {
  // Quantize to the nearest multiple of pi/2.
  const float half_pi = dsp::kPi / 2.0f;
  int q = static_cast<int>(std::lround(diff_phase / half_pi));
  q = ((q % 4) + 4) % 4;
  switch (q) {
    case 0: return {0, 0};
    case 1: return {0, 1};
    case 2: return {1, 1};
    default: return {1, 0};
  }
}

const util::BitVec& SfdBits() {
  static const util::BitVec bits = util::UintToBitsLsbFirst(kSfd, 16);
  return bits;
}

// ------------------------------------------------------------ CCK decoding

// Inverse of the modulator's DQPSK map for the (d0, d1) dibit carried on the
// differential phi1: 0 -> 00, pi/2 -> 01, pi -> 11, 3pi/2 -> 10.
std::pair<std::uint8_t, std::uint8_t> SliceDqpskDibit(float diff_phase) {
  int q = static_cast<int>(std::lround(diff_phase / (dsp::kPi / 2.0f)));
  q = ((q % 4) + 4) % 4;
  switch (q) {
    case 0: return {0, 0};
    case 1: return {0, 1};
    case 2: return {1, 1};
    default: return {1, 0};
  }
}

// Base CCK codewords (phi1 = 0) for one rate, plus the data bits (beyond the
// phi1 dibit) each encodes. Index order matches the modulator's mappings.
struct CckCodebook {
  std::vector<std::array<cfloat, 8>> codewords;
  std::vector<util::BitVec> bits;     // d2.. for each codeword
  std::vector<std::array<cfloat, 4>> tails;  // post-cursor ISI per codeword
  std::vector<std::array<cfloat, 4>> heads;  // pre-cursor ISI per codeword
  std::vector<float> energies;        // sum |ref|^2 per codeword
};

// Replaces each ideal codeword with its band-limited image: the 8 MHz
// capture of an 11 Mchip/s signal smears chips into their neighbours, and
// matching against the *filtered* waveform instead of the crisp one removes
// the systematic decision errors that smearing causes. The reference is the
// ideal codeword passed through the same TX (8/11) + RX (11/8) resampling
// chain the real signal sees, aligned by peak correlation (the alignment is
// structural, so it is computed once and shared by all codewords).
void BandLimitCodebook(CckCodebook& cb) {
  std::ptrdiff_t shared_offset = -1;
  for (auto& cw : cb.codewords) {
    dsp::SampleVec padded(16, cfloat{0.0f, 0.0f});
    padded.insert(padded.end(), cw.begin(), cw.end());
    padded.insert(padded.end(), 16, cfloat{0.0f, 0.0f});
    dsp::RationalResampler tx(8, 11);
    dsp::SampleVec at8 = tx.Resampled(padded);
    {
      const dsp::SampleVec flush(32, cfloat{0.0f, 0.0f});
      tx.Process(flush, at8);
    }
    dsp::RationalResampler rx(11, 8);
    dsp::SampleVec back = rx.Resampled(at8);
    {
      const dsp::SampleVec flush(32, cfloat{0.0f, 0.0f});
      rx.Process(flush, back);
    }
    if (shared_offset < 0) {
      float best = -1.0f;
      for (std::size_t off = 0; off + 8 <= back.size(); ++off) {
        cfloat acc{0.0f, 0.0f};
        for (std::size_t c = 0; c < 8; ++c) {
          acc += back[off + c] * std::conj(cw[c]);
        }
        if (std::abs(acc) > best) {
          best = std::abs(acc);
          shared_offset = static_cast<std::ptrdiff_t>(off);
        }
      }
    }
    std::array<cfloat, 4> tail{};
    for (std::size_t c = 0; c < 4; ++c) {
      const std::size_t idx = static_cast<std::size_t>(shared_offset) + 8 + c;
      if (idx < back.size()) tail[c] = back[idx];
    }
    cb.tails.push_back(tail);
    std::array<cfloat, 4> head{};
    for (std::size_t c = 0; c < 4; ++c) {
      const std::ptrdiff_t idx = shared_offset - 4 + static_cast<std::ptrdiff_t>(c);
      if (idx >= 0) head[c] = back[static_cast<std::size_t>(idx)];
    }
    cb.heads.push_back(head);
    float energy = 0.0f;
    for (std::size_t c = 0; c < 8; ++c) {
      cw[c] = back[static_cast<std::size_t>(shared_offset) + c];
      energy += std::norm(cw[c]);
    }
    cb.energies.push_back(energy);
  }
}

const CckCodebook& CodebookFor(Rate rate) {
  static const CckCodebook k55 = [] {
    CckCodebook cb;
    for (std::uint8_t d2 = 0; d2 < 2; ++d2) {
      for (std::uint8_t d3 = 0; d3 < 2; ++d3) {
        const float phi2 =
            d2 ? (dsp::kPi / 2.0f + dsp::kPi) : (dsp::kPi / 2.0f);
        const float phi4 = d3 ? dsp::kPi : 0.0f;
        cb.codewords.push_back(CckCodeword(0.0f, phi2, 0.0f, phi4));
        cb.bits.push_back({d2, d3});
      }
    }
    BandLimitCodebook(cb);
    return cb;
  }();
  static const CckCodebook k11 = [] {
    const auto qpsk = [](std::uint8_t a, std::uint8_t b) {
      const unsigned key = (static_cast<unsigned>(a) << 1) | b;
      switch (key) {
        case 0b00: return 0.0f;
        case 0b01: return dsp::kPi / 2.0f;
        case 0b10: return dsp::kPi;
        default:   return 3.0f * dsp::kPi / 2.0f;
      }
    };
    CckCodebook cb;
    for (std::uint8_t d2 = 0; d2 < 2; ++d2)
    for (std::uint8_t d3 = 0; d3 < 2; ++d3)
    for (std::uint8_t d4 = 0; d4 < 2; ++d4)
    for (std::uint8_t d5 = 0; d5 < 2; ++d5)
    for (std::uint8_t d6 = 0; d6 < 2; ++d6)
    for (std::uint8_t d7 = 0; d7 < 2; ++d7) {
      cb.codewords.push_back(CckCodeword(0.0f, qpsk(d2, d3), qpsk(d4, d5),
                                         qpsk(d6, d7)));
      cb.bits.push_back({d2, d3, d4, d5, d6, d7});
    }
    BandLimitCodebook(cb);
    return cb;
  }();
  return rate == Rate::k5_5Mbps ? k55 : k11;
}

// Decodes the raw (still scrambled) CCK payload bits from the chip stream.
// `prev_ref` is the complex despread value of the last header symbol, which
// anchors the differential phi1 across the Barker/CCK boundary. Returns as
// many whole symbols' bits as were decodable.
util::BitVec DecodeCckPayloadRaw(dsp::const_sample_span chips,
                                 std::size_t payload_start_chip,
                                 std::size_t symbols_needed, Rate rate,
                                 cfloat prev_ref,
                                 rfdump::util::WorkBudget* budget) {
  const auto& cb = CodebookFor(rate);
  // Pass 1: decide each symbol while cancelling the *post*-cursor ISI of the
  // previous decision (the band-limited image of a symbol bleeds ~4 chips
  // each way). Pass 2: re-decide with both neighbours' bleed (post-cursor
  // from the pass-2 decision of m-1, pre-cursor from the pass-1 decision of
  // m+1) removed, which resolves the data-dependent marginal cases.
  struct Decision {
    std::size_t idx = 0;
    cfloat score{0.0f, 0.0f};
    cfloat gain{0.0f, 0.0f};
    bool valid = false;
  };
  const auto decide = [&](std::size_t at, const cfloat* subtract_head,
                          const cfloat* subtract_tail) {
    Decision d;
    if (at + 8 > chips.size()) return d;
    std::array<cfloat, 8> window;
    for (std::size_t c = 0; c < 8; ++c) {
      window[c] = chips[at + c];
      if (subtract_tail && c < 4) window[c] -= subtract_tail[c];
      if (subtract_head && c >= 4) window[c] -= subtract_head[c - 4];
    }
    float best_mag = -1.0f;
    for (std::size_t k = 0; k < cb.codewords.size(); ++k) {
      cfloat acc{0.0f, 0.0f};
      for (std::size_t c = 0; c < 8; ++c) {
        acc += window[c] * std::conj(cb.codewords[k][c]);
      }
      if (std::norm(acc) > best_mag) {
        best_mag = std::norm(acc);
        d.idx = k;
        d.score = acc;
      }
    }
    d.gain = d.score / cb.energies[d.idx];
    d.valid = true;
    return d;
  };

  std::vector<Decision> pass1(symbols_needed);
  {
    std::array<cfloat, 4> pending_tail{};
    const cfloat* tail_ptr = nullptr;
    for (std::size_t m = 0; m < symbols_needed; ++m) {
      // The codeword search dominates CCK cost: charge the budget per symbol
      // quantum so an absurd claimed length aborts instead of spinning.
      if (budget && (m & 31u) == 0u && !budget->Charge(32 * 8)) break;
      pass1[m] = decide(payload_start_chip + 8 * m, nullptr, tail_ptr);
      if (!pass1[m].valid) break;
      for (std::size_t c = 0; c < 4; ++c) {
        pending_tail[c] = pass1[m].gain * cb.tails[pass1[m].idx][c];
      }
      tail_ptr = pending_tail.data();
    }
  }

  util::BitVec raw;
  raw.reserve(symbols_needed * (rate == Rate::k5_5Mbps ? 4 : 8));
  float prev_phase = std::arg(prev_ref);
  std::array<cfloat, 4> pending_tail{};
  const cfloat* tail_ptr = nullptr;
  for (std::size_t m = 0; m < symbols_needed; ++m) {
    if (budget && (m & 31u) == 0u && !budget->Charge(32 * 8)) break;
    if (!pass1[m].valid) break;
    std::array<cfloat, 4> head{};
    const cfloat* head_ptr = nullptr;
    if (m + 1 < symbols_needed && pass1[m + 1].valid) {
      for (std::size_t c = 0; c < 4; ++c) {
        head[c] = pass1[m + 1].gain * cb.heads[pass1[m + 1].idx][c];
      }
      head_ptr = head.data();
    }
    const Decision d = decide(payload_start_chip + 8 * m, head_ptr, tail_ptr);
    if (!d.valid) break;
    // Differential phi1 with the even/odd pi offset removed.
    float diff = std::arg(d.score) - prev_phase;
    if (m & 1u) diff -= dsp::kPi;
    const auto [d0, d1] = SliceDqpskDibit(dsp::WrapPhase(diff));
    raw.push_back(d0);
    raw.push_back(d1);
    util::AppendBits(raw, cb.bits[d.idx]);
    prev_phase = std::arg(d.score);
    for (std::size_t c = 0; c < 4; ++c) {
      pending_tail[c] = d.gain * cb.tails[d.idx][c];
    }
    tail_ptr = pending_tail.data();
  }
  return raw;
}

}  // namespace

Demodulator::Demodulator() : Demodulator(Config{}) {}

Demodulator::Demodulator(Config config) : config_(config) {}

std::optional<DecodedFrame> Demodulator::DecodeFirst(dsp::const_sample_span x) {
  auto all = DecodeAll(x);
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::vector<DecodedFrame> Demodulator::DecodeAll(dsp::const_sample_span x) {
  RFDUMP_TRACE_SPAN("phy80211/decode");
  static obs::Counter& c_samples = obs::Registry::Default().GetCounter(
      "rfdump_phy80211_samples_total");
  static obs::Counter& c_attempts = obs::Registry::Default().GetCounter(
      "rfdump_phy80211_sync_attempts_total");
  static obs::Counter& c_frames = obs::Registry::Default().GetCounter(
      "rfdump_phy80211_frames_total");
  static obs::Counter& c_fcs_pass = obs::Registry::Default().GetCounter(
      "rfdump_phy80211_fcs_pass_total");
  static obs::Counter& c_fcs_fail = obs::Registry::Default().GetCounter(
      "rfdump_phy80211_fcs_fail_total");
  std::vector<DecodedFrame> frames;
  stats_.samples_processed += x.size();
  c_samples.Inc(x.size());
  if (x.size() < 64) return frames;

  // Cooperative deadline: the fixed front matter (resample + correlation) is
  // linear in the window, so charge it up front; the scan loop below charges
  // per sync attempt because adversarial input can retry indefinitely there.
  util::WorkBudget* budget = config_.budget;
  if (budget && !budget->Charge(x.size())) return frames;

  // 1. Resample the 8 Msps capture to the 11 Mchip/s chip rate. Flush with
  // zeros so the resampler group delay and the 11-chip correlation window do
  // not truncate the final symbols of a frame that ends at the window edge.
  dsp::RationalResampler resampler(11, 8);
  dsp::SampleVec chips = resampler.Resampled(x);
  {
    const dsp::SampleVec flush(64, cfloat{0.0f, 0.0f});
    resampler.Process(flush, chips);
  }
  if (chips.size() < 2 * 11) return frames;

  // 2. Sliding Barker correlation with per-window normalization (the shared
  // SIMD-dispatched correlator; same recurrence this loop used to inline).
  dsp::SampleVec corr;
  std::vector<float> norm;
  dsp::CorrelateChipsNormalized(chips, dsp::kBarker11, corr, norm);
  const std::size_t ncorr = corr.size();

  // 3. Scan for DSSS activity and attempt frame sync at each candidate.
  std::size_t scan = 0;
  while (scan + config_.min_sync_symbols * 11 < ncorr) {
    if (budget && budget->expired()) break;  // abort with partial results
    if (norm[scan] < config_.correlation_threshold) {
      ++scan;
      continue;
    }
    ++stats_.sync_attempts;
    c_attempts.Inc();
    if (budget && !budget->Charge(11 * config_.min_sync_symbols)) break;

    // 3a. Symbol timing: strongest correlation phase (mod 11) over the next
    // min_sync_symbols symbols.
    const std::size_t probe_symbols = config_.min_sync_symbols;
    double phase_score[11] = {};
    for (std::size_t o = 0; o < 11; ++o) {
      for (std::size_t m = 0; m < probe_symbols; ++m) {
        const std::size_t idx = scan + o + 11 * m;
        if (idx < ncorr) phase_score[o] += norm[idx];
      }
    }
    const std::size_t best_offset = static_cast<std::size_t>(
        std::max_element(phase_score, phase_score + 11) - phase_score);
    // Timing-quality gate: in a real DSSS burst the aligned chip phase
    // dominates the probe scores; in noise the profile is flat. Launching a
    // sync from noise would lock a bogus symbol grid that can survive the
    // header (sidelobe correlations) and then corrupt the payload.
    {
      double mean_score = 0.0;
      for (double s : phase_score) mean_score += s;
      mean_score /= 11.0;
      if (phase_score[best_offset] < 1.6 * mean_score) {
        scan += 11;
        continue;
      }
    }
    const std::size_t base = scan + best_offset;

    // 3b. Collect the symbol-rate correlation samples while the despread
    // quality holds up (with tolerance for brief fades).
    std::vector<cfloat> symbols;
    {
      std::size_t misses = 0;
      for (std::size_t n = 0; base + 11 * n < ncorr; ++n) {
        if (budget && (n & 255u) == 255u && !budget->Charge(11 * 256)) break;
        const std::size_t idx = base + 11 * n;
        if (norm[idx] < config_.correlation_threshold * 0.5f) {
          if (++misses > 8) break;
        } else {
          misses = 0;
        }
        symbols.push_back(corr[idx]);
      }
      // Trim the trailing missed symbols.
      while (misses > 0 && !symbols.empty()) {
        symbols.pop_back();
        --misses;
      }
    }
    if (symbols.size() < config_.min_sync_symbols) {
      scan = base + 11;
      continue;
    }

    // 3c. Differential decode with CFO compensation estimated by BPSK
    // squaring over the first preamble symbols.
    std::vector<cfloat> diff(symbols.size() - 1);
    for (std::size_t n = 1; n < symbols.size(); ++n) {
      diff[n - 1] = symbols[n] * std::conj(symbols[n - 1]);
    }
    cfloat sq_acc{0.0f, 0.0f};
    const std::size_t est_count = std::min<std::size_t>(diff.size(), 64);
    for (std::size_t n = 0; n < est_count; ++n) {
      sq_acc += diff[n] * diff[n];
    }
    const float rot = 0.5f * std::arg(sq_acc);
    const cfloat derot(std::cos(-rot), std::sin(-rot));

    util::BitVec raw_bits(diff.size());
    for (std::size_t n = 0; n < diff.size(); ++n) {
      raw_bits[n] = ((diff[n] * derot).real() < 0.0f) ? 1u : 0u;
    }

    // 3d. Descramble and hunt for SYNC(ones) + SFD. A 16-bit run of ones is
    // required before the SFD: combined with the SFD pattern and the header
    // CRC this keeps the false-header probability negligible even over long
    // noise stretches (a falsely accepted header would blank out up to
    // length_us of real frames from the scan).
    Descrambler descrambler;
    const util::BitVec bits = descrambler.Descramble(raw_bits);
    const auto& sfd = SfdBits();
    static const util::BitVec short_sfd =
        util::UintToBitsLsbFirst(kShortSfd, 16);
    constexpr std::size_t kRunRequired = 16;
    std::size_t sfd_at = bits.size();  // sentinel: not found
    bool short_preamble = false;
    for (std::size_t j = kRunRequired; j + 16 + 48 <= bits.size(); ++j) {
      bool all_ones = true, all_zeros = true;
      for (std::size_t k = j - kRunRequired; k < j; ++k) {
        all_ones &= (bits[k] == 1u);
        all_zeros &= (bits[k] == 0u);
      }
      if (all_ones && std::equal(sfd.begin(), sfd.end(), bits.begin() + j)) {
        sfd_at = j;
        break;
      }
      if (all_zeros &&
          std::equal(short_sfd.begin(), short_sfd.end(), bits.begin() + j)) {
        sfd_at = j;
        short_preamble = true;
        break;
      }
    }
    if (sfd_at == bits.size()) {
      scan = base + 11 * config_.min_sync_symbols;
      continue;
    }

    // 3e. Header (with plausibility bounds: the longest legal 802.11b MPDU
    // is ~2346 bytes, i.e. <= ~19 ms at 1 Mbps). A long preamble carries it
    // as 48 DBPSK bits; a short preamble as 24 DQPSK symbols (18.2.2.3).
    std::optional<PlcpHeader> header;
    std::size_t header_symbols = 48;
    util::BitVec short_hdr_raw;  // scrambled header bits (short preamble)
    if (!short_preamble) {
      header = ParsePlcpHeader(
          std::span<const std::uint8_t>(bits).subspan(sfd_at + 16, 48));
    } else {
      header_symbols = 24;
      short_hdr_raw.clear();
      util::BitVec& hdr_raw = short_hdr_raw;
      hdr_raw.reserve(48);
      for (std::size_t m = 0; m < 24; ++m) {
        const std::size_t idx = sfd_at + 16 + m;  // diff of symbol idx+1
        if (idx >= diff.size()) break;
        const cfloat d = diff[idx] * derot;
        const auto [d0, d1] = SliceDqpsk(std::arg(d));
        hdr_raw.push_back(d0);
        hdr_raw.push_back(d1);
      }
      if (hdr_raw.size() == 48) {
        Descrambler hdr_descrambler;
        for (std::size_t k = 0; k < sfd_at + 16 && k < raw_bits.size(); ++k) {
          (void)hdr_descrambler.DescrambleBit(raw_bits[k]);
        }
        const util::BitVec hdr = hdr_descrambler.Descramble(hdr_raw);
        header = ParsePlcpHeader(hdr);
        // 1 Mbps cannot follow a short preamble; a parse claiming it is a
        // false sync.
        if (header && header->rate == Rate::k1Mbps) header.reset();
      }
    }
    if (!header || header->length_us > 19000 ||
        header->MpduBytes() > 2400) {
      scan = base + 11 * (sfd_at + 16 + 48 + 1);
      continue;
    }

    DecodedFrame frame;
    frame.header = *header;
    // Anchor the frame start to the SFD: SYNC(128 or 56) + SFD(16) symbols
    // precede the header, so the first SYNC symbol is 127 (long) or 55
    // (short) before the bit index where the SFD was found (bit k <-> symbol
    // k+1). Anchoring to the energy-scan position instead would mis-place
    // frames when the scan entered mid-burst (e.g. at a block boundary).
    {
      const std::int64_t start_symbol =
          static_cast<std::int64_t>(sfd_at) - (short_preamble ? 55 : 127);
      const std::int64_t start_chip =
          static_cast<std::int64_t>(base) + 11 * start_symbol;
      frame.start_sample =
          start_chip > 0 ? ChipToSample(static_cast<std::size_t>(start_chip))
                         : 0;
    }
    // Bit k corresponds to symbol k+1; symbol n starts at chip base + 11n.
    const std::size_t payload_first_symbol = sfd_at + 16 + header_symbols + 1;
    const std::size_t payload_start_chip = base + 11 * payload_first_symbol;
    const std::size_t payload_chips =
        static_cast<std::size_t>(header->length_us) * 11;
    const std::size_t end_chip = payload_start_chip + payload_chips;
    frame.end_sample =
        std::min<std::int64_t>(ChipToSample(end_chip),
                               static_cast<std::int64_t>(x.size()));

    // 3f. Payload.
    const std::size_t mpdu_bytes = header->MpduBytes();
    const std::size_t payload_bits_needed = mpdu_bytes * 8;
    util::BitVec payload_raw;
    payload_raw.reserve(payload_bits_needed);
    const std::size_t payload_first_diff = payload_first_symbol - 1;

    if (header->rate == Rate::k1Mbps) {
      for (std::size_t k = 0; k < payload_bits_needed &&
                              payload_first_diff + k < raw_bits.size();
           ++k) {
        payload_raw.push_back(raw_bits[payload_first_diff + k]);
      }
    } else if (header->rate == Rate::k2Mbps) {
      const std::size_t payload_symbols = (payload_bits_needed + 1) / 2;
      for (std::size_t m = 0; m < payload_symbols &&
                              payload_first_diff + m < diff.size();
           ++m) {
        const cfloat d = diff[payload_first_diff + m] * derot;
        const auto [d0, d1] = SliceDqpsk(std::arg(d));
        payload_raw.push_back(d0);
        payload_raw.push_back(d1);
      }
      if (payload_raw.size() > payload_bits_needed) {
        payload_raw.resize(payload_bits_needed);
      }
    } else if (config_.decode_cck) {
      // CCK payload (5.5/11 Mbps): codeword-correlation decoding straight
      // from the chip stream — an extension beyond the paper's prototype.
      const std::size_t bits_per_symbol =
          header->rate == Rate::k5_5Mbps ? 4 : 8;
      const std::size_t symbols_needed =
          payload_bits_needed / bits_per_symbol;
      const std::size_t last_header_symbol = payload_first_symbol - 1;
      if (last_header_symbol < symbols.size()) {
        payload_raw = DecodeCckPayloadRaw(
            chips, payload_start_chip, symbols_needed, header->rate,
            symbols[last_header_symbol], budget);
        if (payload_raw.size() > payload_bits_needed) {
          payload_raw.resize(payload_bits_needed);
        }
      }
    }

    if (payload_raw.size() == payload_bits_needed && mpdu_bytes > 0) {
      // Re-seed a descrambler with the last 7 *scrambled* bits preceding the
      // payload so its self-synchronizing state is correct. For a long
      // preamble those are the BPSK raw bits; for a short preamble the
      // header was DQPSK, so the dibit stream supplies them.
      Descrambler payload_descrambler;
      if (short_preamble) {
        for (std::size_t k = short_hdr_raw.size() - 7;
             k < short_hdr_raw.size(); ++k) {
          (void)payload_descrambler.DescrambleBit(short_hdr_raw[k]);
        }
      } else {
        for (std::size_t k = payload_first_diff - 7; k < payload_first_diff;
             ++k) {
          (void)payload_descrambler.DescrambleBit(raw_bits[k]);
        }
      }
      const util::BitVec payload_bits =
          payload_descrambler.Descramble(payload_raw);
      frame.mpdu = util::BitsToBytesLsbFirst(payload_bits);
      frame.payload_decoded = true;
      if (frame.mpdu.size() >= 4) {
        const std::uint32_t fcs =
            util::Crc32(std::span<const std::uint8_t>(frame.mpdu)
                            .first(frame.mpdu.size() - 4));
        std::uint32_t rx_fcs = 0;
        for (int b = 0; b < 4; ++b) {
          rx_fcs |= static_cast<std::uint32_t>(
                        frame.mpdu[frame.mpdu.size() - 4 + b])
                    << (8 * b);
        }
        frame.fcs_ok = (fcs == rx_fcs);
        (frame.fcs_ok ? c_fcs_pass : c_fcs_fail).Inc();
      }
      ++stats_.frames_decoded;
    }

    c_frames.Inc();
    frames.push_back(std::move(frame));
    // Resume scanning after this frame.
    scan = std::max(end_chip, base + 11 * config_.min_sync_symbols);
  }
  return frames;
}

}  // namespace rfdump::phy80211
