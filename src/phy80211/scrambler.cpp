#include "rfdump/phy80211/scrambler.hpp"

namespace rfdump::phy80211 {

// State register layout: bit k holds the scrambled output from (k+1) bits
// ago, so taps z^-4 and z^-7 are state bits 3 and 6.

std::uint8_t Scrambler::ScrambleBit(std::uint8_t bit) {
  const std::uint8_t feedback =
      static_cast<std::uint8_t>(((state_ >> 3) ^ (state_ >> 6)) & 1u);
  const std::uint8_t out = static_cast<std::uint8_t>((bit ^ feedback) & 1u);
  state_ = static_cast<std::uint8_t>(((state_ << 1) | out) & 0x7F);
  return out;
}

util::BitVec Scrambler::Scramble(std::span<const std::uint8_t> bits) {
  util::BitVec out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) out[i] = ScrambleBit(bits[i]);
  return out;
}

std::uint8_t Descrambler::DescrambleBit(std::uint8_t bit) {
  const std::uint8_t feedback =
      static_cast<std::uint8_t>(((state_ >> 3) ^ (state_ >> 6)) & 1u);
  const std::uint8_t out = static_cast<std::uint8_t>((bit ^ feedback) & 1u);
  // The descrambler shift register tracks the *received* (scrambled) bits.
  state_ = static_cast<std::uint8_t>(((state_ << 1) | (bit & 1u)) & 0x7F);
  return out;
}

util::BitVec Descrambler::Descramble(std::span<const std::uint8_t> bits) {
  util::BitVec out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i] = DescrambleBit(bits[i]);
  }
  return out;
}

}  // namespace rfdump::phy80211
