#include "rfdump/phy80211/plcp.hpp"

#include <cmath>

#include "rfdump/util/crc.hpp"

namespace rfdump::phy80211 {

double RateMbps(Rate r) {
  switch (r) {
    case Rate::k1Mbps: return 1.0;
    case Rate::k2Mbps: return 2.0;
    case Rate::k5_5Mbps: return 5.5;
    case Rate::k11Mbps: return 11.0;
  }
  return 0.0;
}

const char* RateName(Rate r) {
  switch (r) {
    case Rate::k1Mbps: return "1Mbps";
    case Rate::k2Mbps: return "2Mbps";
    case Rate::k5_5Mbps: return "5.5Mbps";
    case Rate::k11Mbps: return "11Mbps";
  }
  return "?";
}

std::size_t PlcpHeader::MpduBytes() const {
  // bytes = floor(duration_us * rate_Mbps / 8); exact for 1/2/5.5 Mbps. At
  // 11 Mbps a microsecond spans 1.375 bytes, so the floor can overshoot by
  // one byte — the SERVICE length-extension bit corrects it (18.2.3.5).
  auto bytes = static_cast<std::size_t>(
      std::floor(static_cast<double>(length_us) * RateMbps(rate) / 8.0 +
                 1e-9));
  if (rate == Rate::k11Mbps && (service & kServiceLengthExt) && bytes > 0) {
    --bytes;
  }
  return bytes;
}

std::uint16_t PlcpHeader::DurationUsFor(Rate rate, std::size_t bytes) {
  return static_cast<std::uint16_t>(
      std::ceil(static_cast<double>(bytes) * 8.0 / RateMbps(rate) - 1e-9));
}

std::uint8_t PlcpHeader::ServiceFor(Rate rate, std::size_t bytes) {
  if (rate != Rate::k11Mbps) return 0;
  const auto len = DurationUsFor(rate, bytes);
  const auto implied = static_cast<std::size_t>(
      std::floor(static_cast<double>(len) * RateMbps(rate) / 8.0 + 1e-9));
  return implied > bytes ? kServiceLengthExt : 0;
}

namespace {

// Header bits: SIGNAL(8) SERVICE(8) LENGTH(16) + complemented CRC-16.
util::BitVec HeaderBits48(const PlcpHeader& header) {
  util::BitVec hdr;
  util::AppendBits(hdr, util::UintToBitsLsbFirst(
                            static_cast<std::uint8_t>(header.rate), 8));
  util::AppendBits(hdr, util::UintToBitsLsbFirst(header.service, 8));
  util::AppendBits(hdr, util::UintToBitsLsbFirst(header.length_us, 16));
  const std::uint16_t crc = static_cast<std::uint16_t>(
      ~util::Crc16CcittBits(hdr, 0xFFFF));
  for (int i = 15; i >= 0; --i) {
    hdr.push_back(static_cast<std::uint8_t>((crc >> i) & 1u));
  }
  return hdr;
}

}  // namespace

util::BitVec BuildShortPlcpBits(const PlcpHeader& header) {
  util::BitVec bits;
  bits.reserve(kShortSyncBits + 16 + 48);
  bits.insert(bits.end(), kShortSyncBits, 0u);  // SYNC: 56 zeros
  util::AppendBits(bits, util::UintToBitsLsbFirst(kShortSfd, 16));
  util::AppendBits(bits, HeaderBits48(header));
  return bits;
}

util::BitVec BuildPlcpBits(const PlcpHeader& header) {
  util::BitVec bits;
  bits.reserve(kLongPreambleHeaderSymbols);
  // SYNC: 128 ones.
  bits.insert(bits.end(), kSyncBits, 1u);
  // SFD, LSB first.
  util::AppendBits(bits, util::UintToBitsLsbFirst(kSfd, 16));
  util::AppendBits(bits, HeaderBits48(header));
  return bits;
}

std::optional<PlcpHeader> ParsePlcpHeader(
    std::span<const std::uint8_t> bits48) {
  if (bits48.size() != 48) return std::nullopt;
  const auto info = bits48.first(32);
  const std::uint16_t crc = static_cast<std::uint16_t>(
      ~util::Crc16CcittBits(info, 0xFFFF));
  std::uint16_t rx_crc = 0;
  for (int i = 0; i < 16; ++i) {
    rx_crc = static_cast<std::uint16_t>((rx_crc << 1) | (bits48[32 + i] & 1u));
  }
  if (rx_crc != crc) return std::nullopt;
  const auto signal = static_cast<std::uint8_t>(
      util::BitsToUintLsbFirst(bits48.subspan(0, 8)));
  switch (signal) {
    case static_cast<std::uint8_t>(Rate::k1Mbps):
    case static_cast<std::uint8_t>(Rate::k2Mbps):
    case static_cast<std::uint8_t>(Rate::k5_5Mbps):
    case static_cast<std::uint8_t>(Rate::k11Mbps):
      break;
    default:
      return std::nullopt;
  }
  PlcpHeader h;
  h.rate = static_cast<Rate>(signal);
  h.service = static_cast<std::uint8_t>(
      util::BitsToUintLsbFirst(bits48.subspan(8, 8)));
  h.length_us = static_cast<std::uint16_t>(
      util::BitsToUintLsbFirst(bits48.subspan(16, 16)));
  return h;
}

}  // namespace rfdump::phy80211
