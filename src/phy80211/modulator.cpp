#include "rfdump/phy80211/modulator.hpp"

#include <array>
#include <cmath>

#include "rfdump/dsp/barker.hpp"
#include "rfdump/dsp/phase.hpp"
#include "rfdump/dsp/resampler.hpp"
#include "rfdump/phy80211/scrambler.hpp"
#include "rfdump/util/bits.hpp"

namespace rfdump::phy80211 {
namespace {

using dsp::cfloat;

cfloat Phasor(float phase) {
  return cfloat(std::cos(phase), std::sin(phase));
}

// DBPSK phase increments (17.4.6.3): bit 0 -> 0, bit 1 -> pi.
float DbpskDelta(std::uint8_t bit) { return bit ? dsp::kPi : 0.0f; }

// DQPSK dibit (d0 first in time) phase increments (17.4.6.4):
// 00 -> 0, 01 -> pi/2, 11 -> pi, 10 -> 3pi/2.
float DqpskDelta(std::uint8_t d0, std::uint8_t d1) {
  const unsigned key = (static_cast<unsigned>(d0) << 1) | d1;
  switch (key) {
    case 0b00: return 0.0f;
    case 0b01: return dsp::kPi / 2.0f;
    case 0b11: return dsp::kPi;
    default:   return 3.0f * dsp::kPi / 2.0f;  // 0b10
  }
}

// Appends 11 Barker chips carrying one symbol at absolute phase `phase`.
void AppendBarkerSymbol(dsp::SampleVec& chips, float phase) {
  const cfloat p = Phasor(phase);
  for (int c : dsp::kBarker11) {
    chips.push_back(p * static_cast<float>(c));
  }
}

}  // namespace

std::array<cfloat, 8> CckCodeword(float phi1, float phi2, float phi3,
                                  float phi4) {
  // c = (e^{j(p1+p2+p3+p4)}, e^{j(p1+p3+p4)}, e^{j(p1+p2+p4)}, -e^{j(p1+p4)},
  //      e^{j(p1+p2+p3)}, e^{j(p1+p3)}, -e^{j(p1+p2)}, e^{j p1})
  return {
      Phasor(phi1 + phi2 + phi3 + phi4),
      Phasor(phi1 + phi3 + phi4),
      Phasor(phi1 + phi2 + phi4),
      -Phasor(phi1 + phi4),
      Phasor(phi1 + phi2 + phi3),
      Phasor(phi1 + phi3),
      -Phasor(phi1 + phi2),
      Phasor(phi1),
  };
}

Modulator::Modulator() : Modulator(Config{}) {}

Modulator::Modulator(Config config) : config_(config) {}

dsp::SampleVec Modulator::ChipStream(std::span<const std::uint8_t> mpdu,
                                     Rate rate) {
  const bool short_pre =
      config_.short_preamble && rate != Rate::k1Mbps;
  PlcpHeader header;
  header.rate = rate;
  header.length_us = PlcpHeader::DurationUsFor(rate, mpdu.size());
  header.service = PlcpHeader::ServiceFor(rate, mpdu.size());

  // Serialize: PLCP bits then MPDU bits; scramble the whole transmission with
  // one continuous scrambler (seed differs for the short preamble, 18.2.4).
  util::BitVec bits =
      short_pre ? BuildShortPlcpBits(header) : BuildPlcpBits(header);
  const std::size_t plcp_bits = bits.size();
  util::AppendBits(bits, util::BytesToBitsLsbFirst(mpdu));
  Scrambler scrambler(short_pre ? Scrambler::kShortPreambleSeed
                                : Scrambler::kLongPreambleSeed);
  const util::BitVec tx = scrambler.Scramble(bits);

  dsp::SampleVec chips;
  chips.reserve(tx.size() * 11);

  float phase = 0.0f;
  std::size_t i = 0;
  if (short_pre) {
    // Short preamble: SYNC + SFD at 1 Mbps DBPSK (72 bits), then the 48
    // header bits at 2 Mbps DQPSK (24 symbols).
    const std::size_t sync_sfd = kShortSyncBits + 16;
    for (; i < sync_sfd; ++i) {
      phase = dsp::WrapPhase(phase + DbpskDelta(tx[i]));
      AppendBarkerSymbol(chips, phase);
    }
    for (; i + 1 < plcp_bits; i += 2) {
      phase = dsp::WrapPhase(phase + DqpskDelta(tx[i], tx[i + 1]));
      AppendBarkerSymbol(chips, phase);
    }
  } else {
    // Long preamble + header: 1 Mbps DBPSK, one bit per Barker symbol.
    for (; i < plcp_bits; ++i) {
      phase = dsp::WrapPhase(phase + DbpskDelta(tx[i]));
      AppendBarkerSymbol(chips, phase);
    }
  }

  switch (rate) {
    case Rate::k1Mbps:
      for (; i < tx.size(); ++i) {
        phase = dsp::WrapPhase(phase + DbpskDelta(tx[i]));
        AppendBarkerSymbol(chips, phase);
      }
      break;
    case Rate::k2Mbps:
      for (; i + 1 < tx.size(); i += 2) {
        phase = dsp::WrapPhase(phase + DqpskDelta(tx[i], tx[i + 1]));
        AppendBarkerSymbol(chips, phase);
      }
      break;
    case Rate::k5_5Mbps: {
      // 4 bits/symbol: (d0,d1) -> phi1 differential (extra pi on odd symbols),
      // (d2,d3) select phi2..phi4 per 17.4.6.6.2.
      std::size_t sym = 0;
      for (; i + 3 < tx.size(); i += 4, ++sym) {
        float delta = DqpskDelta(tx[i], tx[i + 1]);
        if (sym & 1u) delta += dsp::kPi;
        phase = dsp::WrapPhase(phase + delta);
        const std::uint8_t d2 = tx[i + 2], d3 = tx[i + 3];
        const float phi2 = d2 ? (dsp::kPi / 2.0f + dsp::kPi)
                              : (dsp::kPi / 2.0f);
        const float phi3 = 0.0f;
        const float phi4 = d3 ? dsp::kPi : 0.0f;
        for (const cfloat c : CckCodeword(phase, phi2, phi3, phi4)) {
          chips.push_back(c);
        }
      }
      break;
    }
    case Rate::k11Mbps: {
      // 8 bits/symbol: (d0,d1) -> phi1 differential, remaining dibits are
      // QPSK-encoded phi2..phi4 (17.4.6.6.3).
      const auto qpsk = [](std::uint8_t a, std::uint8_t b) {
        const unsigned key = (static_cast<unsigned>(a) << 1) | b;
        switch (key) {
          case 0b00: return 0.0f;
          case 0b01: return dsp::kPi / 2.0f;
          case 0b10: return dsp::kPi;
          default:   return 3.0f * dsp::kPi / 2.0f;
        }
      };
      std::size_t sym = 0;
      for (; i + 7 < tx.size(); i += 8, ++sym) {
        float delta = DqpskDelta(tx[i], tx[i + 1]);
        if (sym & 1u) delta += dsp::kPi;
        phase = dsp::WrapPhase(phase + delta);
        const float phi2 = qpsk(tx[i + 2], tx[i + 3]);
        const float phi3 = qpsk(tx[i + 4], tx[i + 5]);
        const float phi4 = qpsk(tx[i + 6], tx[i + 7]);
        for (const cfloat c : CckCodeword(phase, phi2, phi3, phi4)) {
          chips.push_back(c);
        }
      }
      break;
    }
  }
  if (config_.amplitude != 1.0f) {
    for (auto& c : chips) c *= config_.amplitude;
  }
  return chips;
}

dsp::SampleVec Modulator::Modulate(std::span<const std::uint8_t> mpdu,
                                   Rate rate) {
  const auto chips = ChipStream(mpdu, rate);
  // 11 Mchip/s -> 8 Msps: the resampler's anti-alias filter models the 8 MHz
  // front-end bandwidth (only the central portion of the 22 MHz signal
  // survives, as with the real USRP capture). Flush with zero chips so the
  // filter pipeline emits the frame's final chips instead of swallowing them.
  dsp::RationalResampler resampler(8, 11);
  auto samples = resampler.Resampled(chips);
  {
    const dsp::SampleVec flush(32, cfloat{0.0f, 0.0f});
    resampler.Process(flush, samples);
  }
  samples.insert(samples.end(), config_.pad_samples, cfloat{0.0f, 0.0f});
  return samples;
}

std::size_t Modulator::FrameSampleCount(std::size_t mpdu_bytes, Rate rate,
                                        bool short_preamble) {
  return static_cast<std::size_t>(
      FrameAirtimeUs(mpdu_bytes, rate, short_preamble) * 1e-6 *
          dsp::kSampleRateHz +
      0.5);
}

double Modulator::FrameAirtimeUs(std::size_t mpdu_bytes, Rate rate,
                                 bool short_preamble) {
  const std::size_t plcp = (short_preamble && rate != Rate::k1Mbps)
                               ? kShortPreambleHeaderSymbols
                               : kLongPreambleHeaderSymbols;
  return static_cast<double>(plcp) +
         static_cast<double>(PlcpHeader::DurationUsFor(rate, mpdu_bytes));
}

}  // namespace rfdump::phy80211
