#include "rfdump/phyzigbee/phy.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "rfdump/util/crc.hpp"

namespace rfdump::phyzigbee {
namespace {

using dsp::cfloat;

constexpr std::size_t kSamplesPerSymbol =
    kChipsPerSymbol * kSamplesPerChip;  // 128 at 8 Msps
constexpr std::size_t kHalfSineSamples = 2 * kSamplesPerChip;  // 8

// Half-sine pulse table, sin(pi * t / (2 Tc)) sampled at 8 Msps.
std::array<float, kHalfSineSamples> HalfSine() {
  std::array<float, kHalfSineSamples> p{};
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = std::sin(static_cast<float>(std::numbers::pi) *
                    (static_cast<float>(i) + 0.5f) /
                    static_cast<float>(kHalfSineSamples));
  }
  return p;
}

// Renders the chip stream to O-QPSK samples. `extra_tail` samples cover the
// Q-branch offset runout.
dsp::SampleVec RenderChips(std::span<const std::uint8_t> chips) {
  static const auto pulse = HalfSine();
  const std::size_t total =
      chips.size() * kSamplesPerChip + kSamplesPerChip + kHalfSineSamples;
  std::vector<float> i_branch(total, 0.0f), q_branch(total, 0.0f);
  for (std::size_t k = 0; k < chips.size(); ++k) {
    const float v = chips[k] ? 1.0f : -1.0f;
    // Even chips -> I, odd -> Q; Q is offset by one chip period inherently
    // because odd chips start one chip later.
    auto& branch = (k % 2 == 0) ? i_branch : q_branch;
    const std::size_t start = k * kSamplesPerChip;
    for (std::size_t s = 0; s < kHalfSineSamples; ++s) {
      branch[start + s] += v * pulse[s];
    }
  }
  dsp::SampleVec out(total);
  for (std::size_t n = 0; n < total; ++n) {
    out[n] = cfloat(i_branch[n], q_branch[n]) * 0.7071f;
  }
  return out;
}

std::uint16_t ZbFcs(std::span<const std::uint8_t> bytes) {
  return util::Crc16CcittBits(util::BytesToBitsLsbFirst(bytes), 0x0000);
}

// Reference waveform of one data symbol (first kSamplesPerSymbol samples).
const std::array<dsp::SampleVec, 16>& SymbolRefs() {
  static const auto refs = [] {
    std::array<dsp::SampleVec, 16> r;
    for (std::uint8_t s = 0; s < 16; ++s) {
      util::BitVec chips(kChipsPerSymbol);
      const std::uint32_t pn = ChipTable()[s];
      for (std::size_t k = 0; k < kChipsPerSymbol; ++k) {
        chips[k] = static_cast<std::uint8_t>((pn >> k) & 1u);
      }
      auto wave = RenderChips(chips);
      wave.resize(kSamplesPerSymbol);
      r[s] = std::move(wave);
    }
    return r;
  }();
  return refs;
}

// Normalized correlation of x[at..at+128) against reference `s`.
float SymbolCorrelation(dsp::const_sample_span x, std::size_t at, int s,
                        cfloat* rotation_out = nullptr) {
  const auto& ref = SymbolRefs()[static_cast<std::size_t>(s)];
  cfloat acc{0.0f, 0.0f};
  double ex = 0.0, er = 0.0;
  for (std::size_t n = 0; n < kSamplesPerSymbol; ++n) {
    acc += x[at + n] * std::conj(ref[n]);
    ex += std::norm(x[at + n]);
    er += std::norm(ref[n]);
  }
  if (rotation_out) *rotation_out = acc;
  const double denom = std::sqrt(std::max(ex * er, 1e-30));
  return static_cast<float>(std::abs(acc) / denom);
}

}  // namespace

const std::array<std::uint32_t, 16>& ChipTable() {
  // 802.15.4-2006 Table 24, chip 0 in bit 0.
  static const std::array<std::uint32_t, 16> kTable = {
      0xD9C3522E, 0xED9C3522, 0x2ED9C352, 0x22ED9C35,
      0x522ED9C3, 0x3522ED9C, 0xC3522ED9, 0x9C3522ED,
      0x8C96077B, 0xB8C96077, 0x7B8C9607, 0x77B8C960,
      0x077B8C96, 0x6077B8C9, 0x96077B8C, 0xC96077B8,
  };
  return kTable;
}

util::BitVec BytesToChips(std::span<const std::uint8_t> bytes) {
  util::BitVec chips;
  chips.reserve(bytes.size() * 2 * kChipsPerSymbol);
  for (std::uint8_t b : bytes) {
    for (std::uint8_t nibble : {static_cast<std::uint8_t>(b & 0xF),
                                static_cast<std::uint8_t>(b >> 4)}) {
      const std::uint32_t pn = ChipTable()[nibble];
      for (std::size_t k = 0; k < kChipsPerSymbol; ++k) {
        chips.push_back(static_cast<std::uint8_t>((pn >> k) & 1u));
      }
    }
  }
  return chips;
}

dsp::SampleVec ModulateFrame(std::span<const std::uint8_t> psdu) {
  std::vector<std::uint8_t> frame;
  frame.reserve(6 + psdu.size());
  frame.insert(frame.end(), 4, 0x00);  // preamble
  frame.push_back(0xA7);               // SFD
  frame.push_back(static_cast<std::uint8_t>(psdu.size() & 0x7F));  // PHR
  frame.insert(frame.end(), psdu.begin(), psdu.end());
  return RenderChips(BytesToChips(frame));
}

double FrameAirtimeUs(std::size_t psdu_bytes) {
  // 2 symbols/byte at 16 us/symbol.
  return static_cast<double>(6 + psdu_bytes) * 32.0;
}

std::optional<DecodedZbFrame> DecodeFrame(dsp::const_sample_span x) {
  // Preamble search: 8 consecutive symbol-0 correlations above threshold.
  constexpr float kThreshold = 0.65f;
  if (x.size() < 10 * kSamplesPerSymbol) return std::nullopt;
  const std::size_t limit = x.size() - 10 * kSamplesPerSymbol;
  for (std::size_t at = 0; at <= limit; ++at) {
    if (SymbolCorrelation(x, at, 0) < kThreshold) continue;
    // Require the next 7 preamble symbols too.
    bool preamble = true;
    for (int m = 1; m < 8 && preamble; ++m) {
      preamble = SymbolCorrelation(x, at + m * kSamplesPerSymbol, 0) >=
                 kThreshold;
    }
    if (!preamble) continue;
    // SFD (0xA7): nibbles 7 then A.
    const std::size_t sfd_at = at + 8 * kSamplesPerSymbol;
    if (sfd_at + 2 * kSamplesPerSymbol > x.size()) return std::nullopt;
    if (SymbolCorrelation(x, sfd_at, 0x7) < kThreshold) continue;
    if (SymbolCorrelation(x, sfd_at + kSamplesPerSymbol, 0xA) < kThreshold) {
      continue;
    }
    // Decode PHR + PSDU by per-symbol argmax correlation.
    auto decode_symbol = [&](std::size_t pos) -> int {
      if (pos + kSamplesPerSymbol > x.size()) return -1;
      int best = 0;
      float best_corr = -1.0f;
      for (int s = 0; s < 16; ++s) {
        const float c = SymbolCorrelation(x, pos, s);
        if (c > best_corr) {
          best_corr = c;
          best = s;
        }
      }
      return best;
    };
    std::size_t pos = sfd_at + 2 * kSamplesPerSymbol;
    const int phr_lo = decode_symbol(pos);
    const int phr_hi = decode_symbol(pos + kSamplesPerSymbol);
    if (phr_lo < 0 || phr_hi < 0) return std::nullopt;
    const std::size_t length =
        (static_cast<std::size_t>(phr_hi) << 4 |
         static_cast<std::size_t>(phr_lo)) & 0x7F;
    pos += 2 * kSamplesPerSymbol;
    DecodedZbFrame frame;
    frame.start_sample = static_cast<std::int64_t>(at);
    frame.psdu.reserve(length);
    for (std::size_t b = 0; b < length; ++b) {
      const int lo = decode_symbol(pos);
      const int hi = decode_symbol(pos + kSamplesPerSymbol);
      if (lo < 0 || hi < 0) break;
      frame.psdu.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
      pos += 2 * kSamplesPerSymbol;
    }
    frame.end_sample = static_cast<std::int64_t>(pos);
    if (frame.psdu.size() == length && length >= 2) {
      const std::uint16_t fcs = ZbFcs(
          std::span<const std::uint8_t>(frame.psdu).first(length - 2));
      const std::uint16_t rx = static_cast<std::uint16_t>(
          frame.psdu[length - 2] | (frame.psdu[length - 1] << 8));
      frame.crc_ok = (fcs == rx);
    }
    return frame;
  }
  return std::nullopt;
}

}  // namespace rfdump::phyzigbee
