#include "rfdump/phyble/adv.hpp"

#include <algorithm>
#include <cmath>

#include "rfdump/dsp/energy.hpp"
#include "rfdump/dsp/fir.hpp"
#include "rfdump/dsp/nco.hpp"
#include "rfdump/dsp/simd.hpp"
#include "rfdump/util/scratch.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/phybt/gfsk.hpp"
#include "rfdump/phybt/packet.hpp"

namespace rfdump::phyble {
namespace {

constexpr std::size_t kSps = phybt::kSamplesPerSymbol;
// Preamble + access address, the fixed part every PDU starts with.
constexpr std::size_t kSyncBits = kPreambleBits + kAccessBits;
// Longest possible PDU section: header + max payload + CRC.
constexpr std::size_t kMaxBodyBits =
    (kHeaderBytes + kMaxAdvPayloadBytes + kCrcBytes) * 8;

/// XORs the BLE whitening sequence for `channel` into `bits` in place. The
/// BLE whitening LFSR (x^7 + x^4 + 1, bit 6 preset to 1, bits 5..0 = channel
/// index) is the Bluetooth BR one seeded with the channel, so phybt's
/// implementation is reused directly.
void Whiten(int channel, std::span<std::uint8_t> bits) {
  const util::BitVec w = phybt::WhiteningSequence(
      static_cast<std::uint8_t>(channel & 0x3F), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] ^= w[i];
}

}  // namespace

const char* AdvPduTypeName(AdvPduType t) {
  switch (t) {
    case AdvPduType::kAdvInd: return "ADV_IND";
    case AdvPduType::kAdvNonconnInd: return "ADV_NONCONN_IND";
    case AdvPduType::kAdvScanInd: return "ADV_SCAN_IND";
  }
  return "ADV?";
}

std::optional<double> AdvChannelOffsetHz(int channel) {
  switch (channel) {
    case 37: return -3e6;
    case 38: return 0.0;
    case 39: return 3e6;
  }
  return std::nullopt;
}

std::uint32_t Crc24(std::span<const std::uint8_t> bytes) {
  std::uint32_t crc = kCrcInit;
  for (const std::uint8_t byte : bytes) {
    for (int k = 0; k < 8; ++k) {
      const std::uint32_t in = (byte >> k) & 1u;
      const std::uint32_t fb = ((crc >> 23) & 1u) ^ in;
      crc = (crc << 1) & 0xFFFFFFu;
      if (fb) crc ^= kCrcPoly;
    }
  }
  return crc;
}

util::BitVec BuildAdvBits(int channel, AdvPduType type,
                          std::span<const std::uint8_t> payload) {
  const std::size_t len = std::min(payload.size(), kMaxAdvPayloadBytes);
  util::BitVec bits;
  bits.reserve(AdvAirBits(len));
  // Alternating preamble; its last bit (1) continues the alternation into
  // the access address's first transmitted bit (0).
  for (std::size_t i = 0; i < kPreambleBits; ++i) {
    bits.push_back(static_cast<std::uint8_t>(i & 1u));
  }
  util::AppendBits(bits, util::UintToBitsLsbFirst(kAdvAccessAddress,
                                                  kAccessBits));

  std::vector<std::uint8_t> pdu;
  pdu.reserve(kHeaderBytes + len);
  pdu.push_back(static_cast<std::uint8_t>(static_cast<std::uint8_t>(type) &
                                          0x0Fu));
  pdu.push_back(static_cast<std::uint8_t>(len & 0x3Fu));
  pdu.insert(pdu.end(), payload.begin(),
             payload.begin() + static_cast<std::ptrdiff_t>(len));

  util::BitVec body = util::BytesToBitsLsbFirst(pdu);
  util::AppendBits(body, util::UintToBitsLsbFirst(Crc24(pdu), kCrcBytes * 8));
  Whiten(channel, body);
  util::AppendBits(bits, body);
  return bits;
}

std::size_t AdvAirBits(std::size_t payload_bytes) {
  return kSyncBits + (kHeaderBytes + payload_bytes + kCrcBytes) * 8;
}

double AdvAirtimeUs(std::size_t payload_bytes) {
  return static_cast<double>(AdvAirBits(payload_bytes));
}

std::optional<ParsedAdv> ParseAdvBits(std::span<const std::uint8_t> bits,
                                      int channel) {
  constexpr std::size_t kHeaderBits = kHeaderBytes * 8;
  constexpr std::size_t kCrcBits = kCrcBytes * 8;
  if (bits.size() < kHeaderBits + kCrcBits) return std::nullopt;

  util::BitVec clear(bits.begin(), bits.end());
  Whiten(channel, clear);

  const auto header = util::BitsToBytesLsbFirst(
      std::span<const std::uint8_t>(clear).first(kHeaderBits));
  const std::size_t len = header[1] & 0x3Fu;
  // Plausibility gate: a legacy advertising PDU cannot claim more than 37
  // payload bytes; longer claims are noise that survived the access-address
  // correlation only in theory.
  if (len > kMaxAdvPayloadBytes) return std::nullopt;
  const std::size_t need = kHeaderBits + len * 8 + kCrcBits;
  if (bits.size() < need) return std::nullopt;

  const auto pdu = util::BitsToBytesLsbFirst(
      std::span<const std::uint8_t>(clear).first(kHeaderBits + len * 8));
  const std::uint32_t rx_crc =
      static_cast<std::uint32_t>(util::BitsToUintLsbFirst(
          std::span<const std::uint8_t>(clear).subspan(kHeaderBits + len * 8,
                                                       kCrcBits)));
  ParsedAdv out;
  out.type = static_cast<AdvPduType>(header[0] & 0x0Fu);
  out.payload.assign(pdu.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
                     pdu.end());
  out.crc_ok = rx_crc == Crc24(pdu);
  return out;
}

AdvBurst ModulateAdv(int channel, AdvPduType type,
                     std::span<const std::uint8_t> payload) {
  AdvBurst burst;
  burst.channel = channel;
  const util::BitVec bits = BuildAdvBits(channel, type, payload);
  burst.air_bits = bits.size();
  const auto offset = AdvChannelOffsetHz(channel);
  if (!offset) return burst;
  burst.samples = phybt::GfskModulate(bits);
  dsp::Nco nco(*offset, dsp::kSampleRateHz);
  nco.Mix(burst.samples);
  return burst;
}

AdvDemodulator::AdvDemodulator() : AdvDemodulator(Config{}) {}

AdvDemodulator::AdvDemodulator(Config config) : config_(config) {}

std::vector<DecodedAdv> AdvDemodulator::DecodeAll(dsp::const_sample_span x) {
  RFDUMP_TRACE_SPAN("phyble/decode");
  std::vector<DecodedAdv> out;
  if (x.size() < kSyncBits * kSps) return out;
  if (AdvChannelOffsetHz(config_.channel)) {
    ScanChannel(x, config_.channel, out);
  } else {
    for (const int channel : kAdvChannels) {
      if (config_.budget && config_.budget->expired()) break;
      ScanChannel(x, channel, out);
    }
  }
  return out;
}

void AdvDemodulator::ScanChannel(dsp::const_sample_span x, int channel,
                                 std::vector<DecodedAdv>& out) {
  static obs::Counter& c_samples = obs::Registry::Default().GetCounter(
      "rfdump_phyble_samples_total");
  static obs::Counter& c_checks = obs::Registry::Default().GetCounter(
      "rfdump_phyble_sync_checks_total");
  static obs::Counter& c_pdus = obs::Registry::Default().GetCounter(
      "rfdump_phyble_pdus_total");
  static obs::Counter& c_crc_pass = obs::Registry::Default().GetCounter(
      "rfdump_phyble_crc_pass_total");
  static obs::Counter& c_crc_fail = obs::Registry::Default().GetCounter(
      "rfdump_phyble_crc_fail_total");
  c_samples.Inc(x.size());

  // Same cooperative-deadline shape as phybt: the linear front matter is
  // charged up front, the scan loop per correlation and per body decode.
  util::WorkBudget* budget = config_.budget;
  if (budget && !budget->Charge(x.size())) return;

  // Channelize: translate the advertising channel to DC, low-pass to ~1 MHz.
  // Scratch-arena buffers, as in the phybt channel scan: the 3-channel sweep
  // reuses one set of allocations per thread.
  struct ChTag {};
  auto& ch = util::Scratch<dsp::cfloat, ChTag>();
  ch.assign(x.begin(), x.end());
  dsp::Nco nco(-*AdvChannelOffsetHz(channel), dsp::kSampleRateHz);
  nco.Mix(ch);
  static const std::vector<float> kChanTaps =
      dsp::DesignLowPass(600e3, dsp::kSampleRateHz, 21);
  dsp::FirFilter lp(kChanTaps);
  struct FilteredTag {};
  auto& filtered = util::Scratch<dsp::cfloat, FilteredTag>();
  filtered.clear();
  lp.Process(ch, filtered);

  struct FreqTag {};
  auto& freq = util::Scratch<float, FreqTag>();
  phybt::FmDiscriminateInto(filtered, freq);
  struct PowerTag {};
  auto& power = util::Scratch<float, PowerTag>();
  power.resize(filtered.size());
  struct PlaneTag {};
  auto& plane = util::Scratch<float, PlaneTag>();
  plane.resize(filtered.size());
  dsp::simd::Active().power_plane(filtered.data(), filtered.size(),
                                  plane.data());
  {
    dsp::MovingAveragePower ma(16);
    for (std::size_t n = 0; n < filtered.size(); ++n) {
      power[n] = ma.Push(plane[n]);
    }
  }
  double floor_est = 0.0;
  if (config_.noise_floor_power > 0.0) {
    double tap_energy = 0.0;
    for (float t : kChanTaps) tap_energy += static_cast<double>(t) * t;
    floor_est = config_.noise_floor_power * tap_energy;
  } else {
    std::vector<float> probe;
    probe.reserve(power.size() / 64 + 1);
    for (std::size_t n = 0; n < power.size(); n += 64) {
      probe.push_back(power[n]);
    }
    std::sort(probe.begin(), probe.end());
    const std::size_t decile = std::max<std::size_t>(probe.size() / 10, 1);
    for (std::size_t i = 0; i < decile; ++i) floor_est += probe[i];
    floor_est /= static_cast<double>(decile);
  }
  const float gate = static_cast<float>(std::max(floor_est * 4.0, 1e-12));

  const std::size_t need = kSyncBits * kSps;
  std::size_t pos = 1;  // SliceSymbols needs center >= 1
  while (pos + need < freq.size()) {
    if (power[pos] < gate) {
      pos += kSps;
      continue;
    }
    // Cheap screen: 4 alternating preamble symbols, as in phybt.
    const float p0 = freq[pos];
    const float p1 = freq[pos + kSps];
    const float p2 = freq[pos + 2 * kSps];
    const float p3 = freq[pos + 3 * kSps];
    if (!(std::signbit(p0) != std::signbit(p1) &&
          std::signbit(p1) != std::signbit(p2) &&
          std::signbit(p2) != std::signbit(p3))) {
      ++pos;
      continue;
    }
    c_checks.Inc();
    if (budget && !budget->Charge(kAccessBits * kSps)) break;
    // The advertising access address is fixed and known, so candidates are
    // verified by exact 32-bit correlation — no BCH structure needed.
    const util::BitVec aa_bits =
        phybt::SliceSymbols(freq, pos + kPreambleBits * kSps, kAccessBits);
    if (aa_bits.size() < kAccessBits) break;
    if (util::BitsToUintLsbFirst(aa_bits) != kAdvAccessAddress) {
      ++pos;
      continue;
    }

    const std::size_t body_start = pos + kSyncBits * kSps;
    const std::size_t avail_bits = (freq.size() - body_start) / kSps;
    if (budget &&
        !budget->Charge(std::min(avail_bits, kMaxBodyBits) * kSps)) {
      break;
    }
    const util::BitVec body = phybt::SliceSymbols(
        freq, body_start, std::min(avail_bits, kMaxBodyBits));
    auto parsed = ParseAdvBits(body, channel);
    if (!parsed) {
      pos += kSps;  // genuine access address but implausible header: move on
      continue;
    }
    DecodedAdv adv;
    adv.channel = channel;
    adv.pdu = std::move(*parsed);
    adv.start_sample = static_cast<std::int64_t>(pos);
    const std::size_t air_bits = AdvAirBits(adv.pdu.payload.size());
    adv.end_sample = static_cast<std::int64_t>(pos + air_bits * kSps);
    (adv.pdu.crc_ok ? c_crc_pass : c_crc_fail).Inc();
    out.push_back(std::move(adv));
    c_pdus.Inc();
    pos += air_bits * kSps;
  }
}

}  // namespace rfdump::phyble
