#include "rfdump/emu/ether.hpp"

#include <algorithm>

#include "rfdump/channel/channel.hpp"
#include "rfdump/dsp/db.hpp"
#include "rfdump/dsp/energy.hpp"

namespace rfdump::emu {

Ether::Ether() : Ether(Config{}) {}

Ether::Ether(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

void Ether::AddBurst(dsp::const_sample_span burst, std::int64_t start_sample,
                     double snr_db, TruthRecord meta) {
  meta.start_sample = start_sample;
  meta.end_sample = start_sample + static_cast<std::int64_t>(burst.size());
  meta.snr_db = snr_db;
  meta.visible = true;
  truth_.push_back(meta);
  if (burst.empty() || start_sample < 0) return;

  const double target_power =
      config_.noise_power * dsp::DbToPower(snr_db);
  const double burst_power = dsp::MeanPower(burst);
  const float scale =
      burst_power > 0.0
          ? static_cast<float>(std::sqrt(target_power / burst_power))
          : 0.0f;
  const std::size_t end =
      static_cast<std::size_t>(start_sample) + burst.size();
  if (mix_.size() < end) mix_.resize(end, dsp::cfloat{0.0f, 0.0f});
  for (std::size_t i = 0; i < burst.size(); ++i) {
    mix_[static_cast<std::size_t>(start_sample) + i] += scale * burst[i];
  }
}

void Ether::AddInvisible(TruthRecord meta) {
  meta.visible = false;
  truth_.push_back(meta);
}

dsp::SampleVec Ether::Render(std::int64_t duration_samples) {
  dsp::SampleVec out(static_cast<std::size_t>(duration_samples),
                     dsp::cfloat{0.0f, 0.0f});
  const std::size_t n = std::min(out.size(), mix_.size());
  std::copy_n(mix_.begin(), n, out.begin());
  rfdump::channel::AddAwgn(out, config_.noise_power, rng_);
  if (config_.adc_bits > 0) {
    rfdump::channel::Quantize(out, config_.adc_bits, config_.adc_full_scale);
  }
  return out;
}

std::vector<TruthRecord> Ether::VisibleTruth(core::Protocol protocol) const {
  std::vector<TruthRecord> out;
  for (const auto& r : truth_) {
    if (r.visible && r.protocol == protocol) out.push_back(r);
  }
  return out;
}

std::int64_t Ether::LastActivity() const {
  std::int64_t last = 0;
  for (const auto& r : truth_) {
    if (r.visible) last = std::max(last, r.end_sample);
  }
  return last;
}

double MediumUtilization(const std::vector<TruthRecord>& truth,
                         std::int64_t duration_samples) {
  if (duration_samples <= 0) return 0.0;
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  spans.reserve(truth.size());
  for (const auto& r : truth) {
    if (!r.visible) continue;
    const std::int64_t a = std::max<std::int64_t>(r.start_sample, 0);
    const std::int64_t b = std::min(r.end_sample, duration_samples);
    if (b > a) spans.emplace_back(a, b);
  }
  if (spans.empty()) return 0.0;
  std::sort(spans.begin(), spans.end());
  std::int64_t covered = 0;
  std::int64_t cur_start = spans.front().first;
  std::int64_t cur_end = spans.front().second;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const auto [a, b] = spans[i];
    if (a > cur_end) {
      covered += cur_end - cur_start;
      cur_start = a;
      cur_end = b;
    } else {
      cur_end = std::max(cur_end, b);
    }
  }
  covered += cur_end - cur_start;
  return static_cast<double>(covered) /
         static_cast<double>(duration_samples);
}

}  // namespace rfdump::emu
