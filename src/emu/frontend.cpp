#include "rfdump/emu/frontend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rfdump::emu {
namespace {

/// Exponential inter-arrival draw in samples for a `rate` (events/second)
/// Poisson process at the front-end sample rate. Always advances by >= 1.
std::int64_t NextArrival(util::Xoshiro256& rng, double rate_per_sec) {
  const double u = rng.UniformDouble();
  const double gap_sec = -std::log(1.0 - u) / rate_per_sec;
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(gap_sec * dsp::kSampleRateHz));
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kNonFinite: return "nonfinite";
    case FaultKind::kSaturation: return "saturation";
    case FaultKind::kDcOffset: return "dc-offset";
    case FaultKind::kCfoDrift: return "cfo-drift";
  }
  return "?";
}

FrontEnd::FrontEnd(dsp::const_sample_span stream, Config config,
                   std::uint64_t seed)
    : config_(config), rng_(seed), stream_(stream.begin(), stream.end()) {
  ScheduleEvents();
}

void FrontEnd::ScheduleEvents() {
  const auto n = static_cast<std::int64_t>(stream_.size());
  // Whole-stream impairments first, so the log reads like a capture header.
  if (config_.clip_amplitude > 0.0f) {
    faults_.push_back({FaultKind::kSaturation, 0, n,
                       static_cast<double>(config_.clip_amplitude)});
  }
  if (config_.dc_offset != dsp::cfloat{0.0f, 0.0f}) {
    faults_.push_back({FaultKind::kDcOffset, 0, n,
                       static_cast<double>(std::abs(config_.dc_offset))});
  }
  if (config_.cfo_hz != 0.0 || config_.cfo_drift_hz_per_sec != 0.0) {
    faults_.push_back({FaultKind::kCfoDrift, 0, n, config_.cfo_hz});
  }

  // Point events: each class is an independent Poisson process over stream
  // time; events landing past the end are discarded.
  if (config_.drops_per_second > 0.0) {
    std::int64_t t = NextArrival(rng_, config_.drops_per_second);
    while (t < n) {
      const auto len = static_cast<std::int64_t>(rng_.UniformInt(
          static_cast<std::uint64_t>(config_.drop_min_samples),
          static_cast<std::uint64_t>(config_.drop_max_samples)));
      const std::int64_t end = std::min(t + len, n);
      if (!drops_.empty() && t <= drops_.back().end_sample) {
        drops_.back().end_sample = std::max(drops_.back().end_sample, end);
      } else {
        drops_.push_back({FaultKind::kDrop, t, end,
                          static_cast<double>(end - t)});
      }
      t += len + NextArrival(rng_, config_.drops_per_second);
    }
  }
  if (config_.nonfinite_per_second > 0.0) {
    std::int64_t t = NextArrival(rng_, config_.nonfinite_per_second);
    while (t < n) {
      const auto len = static_cast<std::int64_t>(rng_.UniformInt(
          static_cast<std::uint64_t>(config_.nonfinite_min_samples),
          static_cast<std::uint64_t>(config_.nonfinite_max_samples)));
      bursts_.push_back({FaultKind::kNonFinite, t, std::min(t + len, n),
                         static_cast<double>(len)});
      t += len + NextArrival(rng_, config_.nonfinite_per_second);
    }
  }
  if (config_.duplicates_per_second > 0.0) {
    std::int64_t t = NextArrival(rng_, config_.duplicates_per_second);
    while (t < n) {
      dup_points_.push_back(t);
      t += NextArrival(rng_, config_.duplicates_per_second);
    }
  }
  for (const auto& d : drops_) faults_.push_back(d);
  for (const auto& b : bursts_) faults_.push_back(b);
}

bool FrontEnd::Done() const {
  return !have_pending_dup_ &&
         cursor_ >= static_cast<std::int64_t>(stream_.size());
}

void FrontEnd::Impair(dsp::sample_span io, std::int64_t start_sample) {
  // CFO (+ drift): phase(t) = 2*pi*(f0*t + r*t^2/2) accumulated in double.
  if (config_.cfo_hz != 0.0 || config_.cfo_drift_hz_per_sec != 0.0) {
    for (std::size_t i = 0; i < io.size(); ++i) {
      const double t =
          static_cast<double>(start_sample + static_cast<std::int64_t>(i)) *
          dsp::kSamplePeriodSec;
      const double phase =
          2.0 * std::numbers::pi *
          (config_.cfo_hz * t + 0.5 * config_.cfo_drift_hz_per_sec * t * t);
      const dsp::cfloat rot(static_cast<float>(std::cos(phase)),
                            static_cast<float>(std::sin(phase)));
      io[i] *= rot;
    }
  }
  if (config_.dc_offset != dsp::cfloat{0.0f, 0.0f}) {
    for (auto& s : io) s += config_.dc_offset;
  }
  if (config_.clip_amplitude > 0.0f) {
    const float rail = config_.clip_amplitude;
    for (auto& s : io) {
      s = dsp::cfloat(std::clamp(s.real(), -rail, rail),
                      std::clamp(s.imag(), -rail, rail));
    }
  }
  // Non-finite bursts overwrite whatever the analog chain produced.
  const std::int64_t seg_end =
      start_sample + static_cast<std::int64_t>(io.size());
  for (const auto& b : bursts_) {
    if (b.end_sample <= start_sample) continue;
    if (b.start_sample >= seg_end) break;
    const std::int64_t from = std::max(b.start_sample, start_sample);
    const std::int64_t to = std::min(b.end_sample, seg_end);
    for (std::int64_t k = from; k < to; ++k) {
      // Mostly NaN with the occasional Inf, like real DMA garbage.
      const bool inf = ((k - b.start_sample) % 7) == 3;
      const float v = inf ? std::numeric_limits<float>::infinity()
                          : std::numeric_limits<float>::quiet_NaN();
      io[static_cast<std::size_t>(k - start_sample)] = dsp::cfloat(v, v);
    }
  }
}

Segment FrontEnd::NextSegment() {
  if (have_pending_dup_) {
    have_pending_dup_ = false;
    return std::move(pending_dup_);
  }
  const auto n = static_cast<std::int64_t>(stream_.size());
  // Skip over any drop region the cursor sits in (those samples were lost in
  // the kernel; the host never sees them).
  for (const auto& d : drops_) {
    if (cursor_ >= d.start_sample && cursor_ < d.end_sample) {
      cursor_ = d.end_sample;
    }
  }
  if (cursor_ >= n) return Segment{n + config_.clock_offset_samples, {}};

  std::int64_t len = static_cast<std::int64_t>(rng_.UniformInt(
      config_.segment_min_samples, config_.segment_max_samples));
  len = std::min(len, n - cursor_);
  // A scheduled drop truncates the delivery: the buffer ends where the
  // overrun began.
  for (const auto& d : drops_) {
    if (d.start_sample > cursor_) {
      len = std::min(len, d.start_sample - cursor_);
      break;
    }
  }

  Segment seg;
  // Timestamps are reported in the sensor's own clock; impairment positions
  // and the fault log stay in the true timeline (matching Ether truth).
  const std::int64_t true_start = cursor_;
  seg.start_sample = true_start + config_.clock_offset_samples;
  seg.samples.assign(stream_.begin() + cursor_,
                     stream_.begin() + cursor_ + len);
  Impair(seg.samples, true_start);
  cursor_ += len;

  // Duplicate delivery: if an event point fell inside this buffer, the next
  // call re-delivers the same buffer at the same (stale) timestamp.
  while (next_dup_ < dup_points_.size() &&
         dup_points_[next_dup_] < true_start) {
    ++next_dup_;  // event landed in a dropped region
  }
  if (next_dup_ < dup_points_.size() && dup_points_[next_dup_] < cursor_) {
    ++next_dup_;
    pending_dup_ = seg;  // copy, original timestamp
    have_pending_dup_ = true;
    faults_.push_back({FaultKind::kDuplicate, true_start, cursor_,
                       static_cast<double>(len)});
  }
  return seg;
}

std::vector<Segment> FrontEnd::DrainAll() {
  std::vector<Segment> out;
  while (!Done()) {
    auto seg = NextSegment();
    if (!seg.samples.empty()) out.push_back(std::move(seg));
  }
  return out;
}

std::vector<FaultRecord> FrontEnd::FaultsOf(FaultKind kind) const {
  std::vector<FaultRecord> out;
  for (const auto& f : faults_) {
    if (f.kind == kind) out.push_back(f);
  }
  return out;
}

}  // namespace rfdump::emu
