file(REMOVE_RECURSE
  "CMakeFiles/table4_realworld.dir/table4_realworld.cpp.o"
  "CMakeFiles/table4_realworld.dir/table4_realworld.cpp.o.d"
  "table4_realworld"
  "table4_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
