# Empty compiler generated dependencies file for ablation_energy_threshold.
# This may be replaced when dependencies are built.
