file(REMOVE_RECURSE
  "CMakeFiles/ablation_energy_threshold.dir/ablation_energy_threshold.cpp.o"
  "CMakeFiles/ablation_energy_threshold.dir/ablation_energy_threshold.cpp.o.d"
  "ablation_energy_threshold"
  "ablation_energy_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
