# Empty compiler generated dependencies file for fig7_broadcast_miss_rate.
# This may be replaced when dependencies are built.
