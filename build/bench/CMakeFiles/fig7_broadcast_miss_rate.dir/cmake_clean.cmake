file(REMOVE_RECURSE
  "CMakeFiles/fig7_broadcast_miss_rate.dir/fig7_broadcast_miss_rate.cpp.o"
  "CMakeFiles/fig7_broadcast_miss_rate.dir/fig7_broadcast_miss_rate.cpp.o.d"
  "fig7_broadcast_miss_rate"
  "fig7_broadcast_miss_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_broadcast_miss_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
