file(REMOVE_RECURSE
  "CMakeFiles/table2_protocol_registry.dir/table2_protocol_registry.cpp.o"
  "CMakeFiles/table2_protocol_registry.dir/table2_protocol_registry.cpp.o.d"
  "table2_protocol_registry"
  "table2_protocol_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_protocol_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
