# Empty dependencies file for table2_protocol_registry.
# This may be replaced when dependencies are built.
