file(REMOVE_RECURSE
  "CMakeFiles/ablation_bt_cache.dir/ablation_bt_cache.cpp.o"
  "CMakeFiles/ablation_bt_cache.dir/ablation_bt_cache.cpp.o.d"
  "ablation_bt_cache"
  "ablation_bt_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bt_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
