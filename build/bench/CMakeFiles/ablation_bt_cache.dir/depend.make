# Empty dependencies file for ablation_bt_cache.
# This may be replaced when dependencies are built.
