file(REMOVE_RECURSE
  "CMakeFiles/fig8_bluetooth_miss_rate.dir/fig8_bluetooth_miss_rate.cpp.o"
  "CMakeFiles/fig8_bluetooth_miss_rate.dir/fig8_bluetooth_miss_rate.cpp.o.d"
  "fig8_bluetooth_miss_rate"
  "fig8_bluetooth_miss_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bluetooth_miss_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
