# Empty compiler generated dependencies file for fig8_bluetooth_miss_rate.
# This may be replaced when dependencies are built.
