file(REMOVE_RECURSE
  "CMakeFiles/table3_traffic_mix.dir/table3_traffic_mix.cpp.o"
  "CMakeFiles/table3_traffic_mix.dir/table3_traffic_mix.cpp.o.d"
  "table3_traffic_mix"
  "table3_traffic_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_traffic_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
