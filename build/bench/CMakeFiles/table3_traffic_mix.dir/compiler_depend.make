# Empty compiler generated dependencies file for table3_traffic_mix.
# This may be replaced when dependencies are built.
