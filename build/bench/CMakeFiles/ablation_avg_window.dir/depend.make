# Empty dependencies file for ablation_avg_window.
# This may be replaced when dependencies are built.
