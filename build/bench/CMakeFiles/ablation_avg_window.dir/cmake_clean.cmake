file(REMOVE_RECURSE
  "CMakeFiles/ablation_avg_window.dir/ablation_avg_window.cpp.o"
  "CMakeFiles/ablation_avg_window.dir/ablation_avg_window.cpp.o.d"
  "ablation_avg_window"
  "ablation_avg_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_avg_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
