file(REMOVE_RECURSE
  "CMakeFiles/ablation_phase_sampling.dir/ablation_phase_sampling.cpp.o"
  "CMakeFiles/ablation_phase_sampling.dir/ablation_phase_sampling.cpp.o.d"
  "ablation_phase_sampling"
  "ablation_phase_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phase_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
