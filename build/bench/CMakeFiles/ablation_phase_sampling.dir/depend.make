# Empty dependencies file for ablation_phase_sampling.
# This may be replaced when dependencies are built.
