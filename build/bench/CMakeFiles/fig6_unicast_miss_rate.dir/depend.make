# Empty dependencies file for fig6_unicast_miss_rate.
# This may be replaced when dependencies are built.
