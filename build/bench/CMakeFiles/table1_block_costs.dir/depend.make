# Empty dependencies file for table1_block_costs.
# This may be replaced when dependencies are built.
