# Empty dependencies file for rfdump.
# This may be replaced when dependencies are built.
