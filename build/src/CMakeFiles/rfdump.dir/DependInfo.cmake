
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/channel.cpp" "src/CMakeFiles/rfdump.dir/channel/channel.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/channel/channel.cpp.o.d"
  "/root/repo/src/core/collision.cpp" "src/CMakeFiles/rfdump.dir/core/collision.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/collision.cpp.o.d"
  "/root/repo/src/core/detections.cpp" "src/CMakeFiles/rfdump.dir/core/detections.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/detections.cpp.o.d"
  "/root/repo/src/core/freq_detector.cpp" "src/CMakeFiles/rfdump.dir/core/freq_detector.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/freq_detector.cpp.o.d"
  "/root/repo/src/core/peaks.cpp" "src/CMakeFiles/rfdump.dir/core/peaks.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/peaks.cpp.o.d"
  "/root/repo/src/core/phase_detectors.cpp" "src/CMakeFiles/rfdump.dir/core/phase_detectors.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/phase_detectors.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/rfdump.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/protocols.cpp" "src/CMakeFiles/rfdump.dir/core/protocols.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/protocols.cpp.o.d"
  "/root/repo/src/core/scoring.cpp" "src/CMakeFiles/rfdump.dir/core/scoring.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/scoring.cpp.o.d"
  "/root/repo/src/core/spectrogram.cpp" "src/CMakeFiles/rfdump.dir/core/spectrogram.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/spectrogram.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/CMakeFiles/rfdump.dir/core/streaming.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/streaming.cpp.o.d"
  "/root/repo/src/core/timing_detectors.cpp" "src/CMakeFiles/rfdump.dir/core/timing_detectors.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/core/timing_detectors.cpp.o.d"
  "/root/repo/src/dsp/barker.cpp" "src/CMakeFiles/rfdump.dir/dsp/barker.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/dsp/barker.cpp.o.d"
  "/root/repo/src/dsp/energy.cpp" "src/CMakeFiles/rfdump.dir/dsp/energy.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/dsp/energy.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/rfdump.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/CMakeFiles/rfdump.dir/dsp/fir.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/dsp/fir.cpp.o.d"
  "/root/repo/src/dsp/phase.cpp" "src/CMakeFiles/rfdump.dir/dsp/phase.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/dsp/phase.cpp.o.d"
  "/root/repo/src/dsp/resampler.cpp" "src/CMakeFiles/rfdump.dir/dsp/resampler.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/dsp/resampler.cpp.o.d"
  "/root/repo/src/dsp/windows.cpp" "src/CMakeFiles/rfdump.dir/dsp/windows.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/dsp/windows.cpp.o.d"
  "/root/repo/src/emu/ether.cpp" "src/CMakeFiles/rfdump.dir/emu/ether.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/emu/ether.cpp.o.d"
  "/root/repo/src/mac80211/frames.cpp" "src/CMakeFiles/rfdump.dir/mac80211/frames.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/mac80211/frames.cpp.o.d"
  "/root/repo/src/phy80211/demodulator.cpp" "src/CMakeFiles/rfdump.dir/phy80211/demodulator.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phy80211/demodulator.cpp.o.d"
  "/root/repo/src/phy80211/modulator.cpp" "src/CMakeFiles/rfdump.dir/phy80211/modulator.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phy80211/modulator.cpp.o.d"
  "/root/repo/src/phy80211/plcp.cpp" "src/CMakeFiles/rfdump.dir/phy80211/plcp.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phy80211/plcp.cpp.o.d"
  "/root/repo/src/phy80211/scrambler.cpp" "src/CMakeFiles/rfdump.dir/phy80211/scrambler.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phy80211/scrambler.cpp.o.d"
  "/root/repo/src/phybt/demodulator.cpp" "src/CMakeFiles/rfdump.dir/phybt/demodulator.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phybt/demodulator.cpp.o.d"
  "/root/repo/src/phybt/gfsk.cpp" "src/CMakeFiles/rfdump.dir/phybt/gfsk.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phybt/gfsk.cpp.o.d"
  "/root/repo/src/phybt/hopping.cpp" "src/CMakeFiles/rfdump.dir/phybt/hopping.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phybt/hopping.cpp.o.d"
  "/root/repo/src/phybt/modulator.cpp" "src/CMakeFiles/rfdump.dir/phybt/modulator.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phybt/modulator.cpp.o.d"
  "/root/repo/src/phybt/packet.cpp" "src/CMakeFiles/rfdump.dir/phybt/packet.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phybt/packet.cpp.o.d"
  "/root/repo/src/phyzigbee/phy.cpp" "src/CMakeFiles/rfdump.dir/phyzigbee/phy.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/phyzigbee/phy.cpp.o.d"
  "/root/repo/src/rfsources/sources.cpp" "src/CMakeFiles/rfdump.dir/rfsources/sources.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/rfsources/sources.cpp.o.d"
  "/root/repo/src/trace/pcap.cpp" "src/CMakeFiles/rfdump.dir/trace/pcap.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/trace/pcap.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/rfdump.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/trace/trace.cpp.o.d"
  "/root/repo/src/traffic/traffic.cpp" "src/CMakeFiles/rfdump.dir/traffic/traffic.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/traffic/traffic.cpp.o.d"
  "/root/repo/src/util/bits.cpp" "src/CMakeFiles/rfdump.dir/util/bits.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/util/bits.cpp.o.d"
  "/root/repo/src/util/crc.cpp" "src/CMakeFiles/rfdump.dir/util/crc.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/util/crc.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/rfdump.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/rfdump.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
