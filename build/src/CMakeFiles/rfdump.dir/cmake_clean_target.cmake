file(REMOVE_RECURSE
  "librfdump.a"
)
