
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/channel_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/channel_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/channel_test.cpp.o.d"
  "/root/repo/tests/core_collision_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/core_collision_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/core_collision_test.cpp.o.d"
  "/root/repo/tests/core_detectors_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/core_detectors_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/core_detectors_test.cpp.o.d"
  "/root/repo/tests/core_peaks_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/core_peaks_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/core_peaks_test.cpp.o.d"
  "/root/repo/tests/core_scoring_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/core_scoring_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/core_scoring_test.cpp.o.d"
  "/root/repo/tests/core_spectrogram_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/core_spectrogram_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/core_spectrogram_test.cpp.o.d"
  "/root/repo/tests/core_streaming_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/core_streaming_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/core_streaming_test.cpp.o.d"
  "/root/repo/tests/dsp_fft_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/dsp_fft_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/dsp_fft_test.cpp.o.d"
  "/root/repo/tests/dsp_fir_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/dsp_fir_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/dsp_fir_test.cpp.o.d"
  "/root/repo/tests/dsp_misc_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/dsp_misc_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/dsp_misc_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/mac80211_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/mac80211_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/mac80211_test.cpp.o.d"
  "/root/repo/tests/phy80211_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/phy80211_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/phy80211_test.cpp.o.d"
  "/root/repo/tests/phybt_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/phybt_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/phybt_test.cpp.o.d"
  "/root/repo/tests/phyzigbee_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/phyzigbee_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/phyzigbee_test.cpp.o.d"
  "/root/repo/tests/property_sweeps_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/property_sweeps_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/property_sweeps_test.cpp.o.d"
  "/root/repo/tests/rfsources_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/rfsources_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/rfsources_test.cpp.o.d"
  "/root/repo/tests/short_preamble_pcap_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/short_preamble_pcap_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/short_preamble_pcap_test.cpp.o.d"
  "/root/repo/tests/traffic_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/traffic_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/traffic_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/rfdump_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/rfdump_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfdump.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
