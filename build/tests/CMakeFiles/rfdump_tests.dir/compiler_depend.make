# Empty compiler generated dependencies file for rfdump_tests.
# This may be replaced when dependencies are built.
