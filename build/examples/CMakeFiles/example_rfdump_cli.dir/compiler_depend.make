# Empty compiler generated dependencies file for example_rfdump_cli.
# This may be replaced when dependencies are built.
