file(REMOVE_RECURSE
  "CMakeFiles/example_rfdump_cli.dir/rfdump_cli.cpp.o"
  "CMakeFiles/example_rfdump_cli.dir/rfdump_cli.cpp.o.d"
  "example_rfdump_cli"
  "example_rfdump_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rfdump_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
