file(REMOVE_RECURSE
  "CMakeFiles/example_wifi_diagnosis.dir/wifi_diagnosis.cpp.o"
  "CMakeFiles/example_wifi_diagnosis.dir/wifi_diagnosis.cpp.o.d"
  "example_wifi_diagnosis"
  "example_wifi_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wifi_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
