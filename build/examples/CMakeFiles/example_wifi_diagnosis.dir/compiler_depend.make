# Empty compiler generated dependencies file for example_wifi_diagnosis.
# This may be replaced when dependencies are built.
