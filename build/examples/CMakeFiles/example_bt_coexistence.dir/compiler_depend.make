# Empty compiler generated dependencies file for example_bt_coexistence.
# This may be replaced when dependencies are built.
