file(REMOVE_RECURSE
  "CMakeFiles/example_bt_coexistence.dir/bt_coexistence.cpp.o"
  "CMakeFiles/example_bt_coexistence.dir/bt_coexistence.cpp.o.d"
  "example_bt_coexistence"
  "example_bt_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bt_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
