# Empty dependencies file for example_scaling_protocols.
# This may be replaced when dependencies are built.
