file(REMOVE_RECURSE
  "CMakeFiles/example_scaling_protocols.dir/scaling_protocols.cpp.o"
  "CMakeFiles/example_scaling_protocols.dir/scaling_protocols.cpp.o.d"
  "example_scaling_protocols"
  "example_scaling_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scaling_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
