// BLE advertising PHY (include/rfdump/phyble/adv.hpp): CRC-24, whitened
// build/parse round trips, modulate->demodulate over the three advertising
// channels, channel filtering, budget expiry, and the scenario-DSL truth
// records the registry bundle contributes.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "rfdump/phyble/adv.hpp"
#include "rfdump/testing/scenario.hpp"
#include "rfdump/util/work_budget.hpp"

namespace {

using rfdump::phyble::AdvDemodulator;
using rfdump::phyble::AdvPduType;
using rfdump::phyble::BuildAdvBits;
using rfdump::phyble::ParseAdvBits;

std::vector<std::uint8_t> TestPayload(std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::uint8_t>(0xA5u ^ (7 * i));
  }
  return payload;
}

// Embeds a burst in idle air, as a dispatched capture interval would carry
// it. The demodulator's self-estimated noise floor (bottom power decile)
// needs genuine idle samples; a span that is 100% burst gates itself out.
rfdump::dsp::SampleVec Embed(const rfdump::dsp::SampleVec& burst,
                             std::size_t pad) {
  rfdump::dsp::SampleVec x(pad);
  x.insert(x.end(), burst.begin(), burst.end());
  x.resize(x.size() + pad);
  return x;
}

// Strips preamble + access address: ParseAdvBits consumes the PDU section.
std::vector<std::uint8_t> PduBits(const rfdump::util::BitVec& air_bits) {
  const auto skip = static_cast<std::ptrdiff_t>(rfdump::phyble::kPreambleBits +
                                                rfdump::phyble::kAccessBits);
  return {air_bits.begin() + skip, air_bits.end()};
}

TEST(PhyBle, Crc24IsOrderSensitiveAndDeterministic) {
  const std::vector<std::uint8_t> a{0x12, 0x34, 0x56};
  const std::vector<std::uint8_t> b{0x34, 0x12, 0x56};
  EXPECT_EQ(rfdump::phyble::Crc24(a), rfdump::phyble::Crc24(a));
  EXPECT_NE(rfdump::phyble::Crc24(a), rfdump::phyble::Crc24(b));
  // 24-bit remainder.
  EXPECT_LT(rfdump::phyble::Crc24(a), 1u << 24);
}

TEST(PhyBle, BuildParseRoundTripAllChannelsAndLengths) {
  for (const int channel : rfdump::phyble::kAdvChannels) {
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{1}, std::size_t{20},
          rfdump::phyble::kMaxAdvPayloadBytes}) {
      const auto payload = TestPayload(len);
      const auto bits =
          BuildAdvBits(channel, AdvPduType::kAdvNonconnInd, payload);
      EXPECT_EQ(bits.size(), rfdump::phyble::AdvAirBits(len));

      const auto pdu = ParseAdvBits(PduBits(bits), channel);
      ASSERT_TRUE(pdu.has_value()) << "ch " << channel << " len " << len;
      EXPECT_EQ(pdu->type, AdvPduType::kAdvNonconnInd);
      EXPECT_TRUE(pdu->crc_ok);
      EXPECT_EQ(pdu->payload, payload);
    }
  }
}

TEST(PhyBle, ParseFlagsCorruptionAndWrongChannel) {
  const auto payload = TestPayload(12);
  const auto bits = BuildAdvBits(37, AdvPduType::kAdvInd, payload);

  // A payload bit flip must flip the CRC verdict, not the parse.
  auto corrupt = PduBits(bits);
  corrupt[8 * rfdump::phyble::kHeaderBytes + 3] ^= 1;
  const auto pdu = ParseAdvBits(corrupt, 37);
  ASSERT_TRUE(pdu.has_value());
  EXPECT_FALSE(pdu->crc_ok);

  // Dewhitening with the wrong channel seed scrambles header + CRC; whatever
  // parses must not pass the CRC.
  const auto wrong = ParseAdvBits(PduBits(bits), 38);
  if (wrong.has_value()) {
    EXPECT_FALSE(wrong->crc_ok);
  }
}

TEST(PhyBle, ModulateDemodulateRoundTripPerChannel) {
  for (const int channel : rfdump::phyble::kAdvChannels) {
    const auto payload = TestPayload(24);
    const auto burst =
        rfdump::phyble::ModulateAdv(channel, AdvPduType::kAdvNonconnInd,
                                    payload);
    ASSERT_GT(burst.samples.size(), 0u);
    EXPECT_EQ(burst.channel, channel);

    AdvDemodulator demod;
    const auto decoded = demod.DecodeAll(Embed(burst.samples, 2000));
    ASSERT_EQ(decoded.size(), 1u) << "ch " << channel;
    EXPECT_EQ(decoded[0].channel, channel);
    EXPECT_TRUE(decoded[0].pdu.crc_ok);
    EXPECT_EQ(decoded[0].pdu.payload, payload);
    EXPECT_EQ(decoded[0].pdu.type, AdvPduType::kAdvNonconnInd);
    EXPECT_GE(decoded[0].start_sample, 0);
    EXPECT_GT(decoded[0].end_sample, decoded[0].start_sample);
  }
}

TEST(PhyBle, SingleChannelScanIgnoresOtherChannels) {
  const auto payload = TestPayload(16);
  const auto burst =
      rfdump::phyble::ModulateAdv(38, AdvPduType::kAdvInd, payload);
  const auto x = Embed(burst.samples, 2000);

  AdvDemodulator::Config cfg;
  cfg.channel = 38;
  AdvDemodulator same(cfg);
  EXPECT_EQ(same.DecodeAll(x).size(), 1u);

  cfg.channel = 37;
  AdvDemodulator other(cfg);
  EXPECT_EQ(other.DecodeAll(x).size(), 0u);
}

TEST(PhyBle, ExpiredBudgetStopsTheScan) {
  const auto payload = TestPayload(16);
  const auto burst =
      rfdump::phyble::ModulateAdv(37, AdvPduType::kAdvInd, payload);

  rfdump::util::WorkBudget budget;
  budget.Arm({.max_samples = 1, .max_cpu_seconds = 0.0});
  ASSERT_FALSE(budget.Charge(64));

  AdvDemodulator::Config cfg;
  cfg.budget = &budget;
  AdvDemodulator demod(cfg);
  EXPECT_EQ(demod.DecodeAll(burst.samples).size(), 0u);
}

TEST(PhyBle, AirtimeMatchesBitCountAtOneMbps) {
  const auto bits = rfdump::phyble::AdvAirBits(24);
  EXPECT_EQ(bits, rfdump::phyble::kPreambleBits + rfdump::phyble::kAccessBits +
                      8 * (rfdump::phyble::kHeaderBytes + 24 +
                           rfdump::phyble::kCrcBytes));
  EXPECT_DOUBLE_EQ(rfdump::phyble::AdvAirtimeUs(24),
                   static_cast<double>(bits));
}

TEST(PhyBle, CannedScenarioCarriesBleTruth) {
  // The registry bundle's canned_traffic hook puts each advertising event on
  // all three channels; the scenario DSL needed no BLE-specific edit.
  const auto scenario = rfdump::testing::CannedMixedScenario(7);
  std::size_t ble_truth = 0;
  for (const auto& t : scenario.truth) {
    if (t.protocol == rfdump::core::Protocol::kBleAdv) {
      EXPECT_EQ(t.kind, "BLE-ADV");
      ++ble_truth;
    }
  }
  EXPECT_GT(ble_truth, 0u);
  EXPECT_EQ(ble_truth % 3, 0u);  // one per advertising channel
}

}  // namespace
