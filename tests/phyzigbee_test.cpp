// ZigBee (802.15.4) PHY tests: chip table properties, O-QPSK modulation
// structure, frame loopback, and detector-relevant timing constants.

#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/dsp/db.hpp"
#include "rfdump/dsp/energy.hpp"
#include "rfdump/phyzigbee/phy.hpp"
#include "rfdump/util/crc.hpp"
#include "rfdump/util/rng.hpp"

namespace zb = rfdump::phyzigbee;
namespace dsp = rfdump::dsp;
using rfdump::util::Xoshiro256;

namespace {

std::vector<std::uint8_t> MakePsdu(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> psdu(n);
  for (std::size_t i = 0; i + 2 < n; ++i) {
    psdu[i] = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  }
  const std::uint16_t fcs = rfdump::util::Crc16CcittBits(
      rfdump::util::BytesToBitsLsbFirst(
          std::span<const std::uint8_t>(psdu).first(n - 2)),
      0x0000);
  psdu[n - 2] = static_cast<std::uint8_t>(fcs & 0xFF);
  psdu[n - 1] = static_cast<std::uint8_t>(fcs >> 8);
  return psdu;
}

TEST(ZigbeeChips, SixteenSequencesQuasiOrthogonal) {
  const auto& table = zb::ChipTable();
  // Every pair of distinct sequences differs in many chip positions.
  for (std::size_t a = 0; a < 16; ++a) {
    for (std::size_t b = a + 1; b < 16; ++b) {
      const int dist = std::popcount(table[a] ^ table[b]);
      EXPECT_GE(dist, 10) << a << " vs " << b;
    }
  }
}

TEST(ZigbeeChips, CyclicShiftStructure) {
  // Sequences 1..7 are 4-chip right-rotations of sequence 0 (the standard
  // inserts the shift at the front of the chip stream, LSB-first).
  const auto& table = zb::ChipTable();
  const auto rotr32 = [](std::uint32_t v, int k) {
    return (v >> k) | (v << (32 - k));
  };
  for (int s = 1; s < 8; ++s) {
    EXPECT_EQ(table[static_cast<std::size_t>(s)], rotr32(table[0], 4 * s))
        << "symbol " << s;
  }
}

TEST(ZigbeeChips, BytesToChipsExpansion) {
  const std::vector<std::uint8_t> bytes = {0xA7};
  const auto chips = zb::BytesToChips(bytes);
  ASSERT_EQ(chips.size(), 64u);  // 2 symbols x 32 chips
  // Low nibble (7) first.
  for (int k = 0; k < 32; ++k) {
    EXPECT_EQ(chips[static_cast<std::size_t>(k)],
              (zb::ChipTable()[7] >> k) & 1u);
  }
}

TEST(ZigbeeMod, FrameAirtimeAndLength) {
  const auto psdu = MakePsdu(20, 1);
  const auto wave = zb::ModulateFrame(psdu);
  // (6 + 20) bytes * 2 symbols * 128 samples, plus a small O-QPSK tail.
  const std::size_t expected = 26 * 2 * 128;
  EXPECT_GE(wave.size(), expected);
  EXPECT_LE(wave.size(), expected + 64);
  EXPECT_DOUBLE_EQ(zb::FrameAirtimeUs(20), 26.0 * 32.0);
}

TEST(ZigbeeMod, PowerIsBounded) {
  const auto wave = zb::ModulateFrame(MakePsdu(30, 2));
  // O-QPSK half-sine: |I|,|Q| <= 0.7071, total power near constant mid-frame.
  for (const auto& s : wave) {
    EXPECT_LE(std::abs(s.real()), 0.72f);
    EXPECT_LE(std::abs(s.imag()), 0.72f);
  }
  const double mid_power = dsp::MeanPower(
      dsp::const_sample_span(wave).subspan(512, wave.size() - 1024));
  EXPECT_NEAR(mid_power, 0.5, 0.1);
}

TEST(ZigbeeLoopback, CleanDecode) {
  const auto psdu = MakePsdu(24, 3);
  const auto wave = zb::ModulateFrame(psdu);
  const auto frame = zb::DecodeFrame(wave);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->psdu, psdu);
  EXPECT_TRUE(frame->crc_ok);
}

TEST(ZigbeeLoopback, NoisyDecode) {
  const auto psdu = MakePsdu(40, 4);
  auto wave = zb::ModulateFrame(psdu);
  Xoshiro256 rng(5);
  rfdump::channel::ScaleToPower(wave, rfdump::dsp::DbToPower(12.0));
  rfdump::channel::AddAwgn(wave, 1.0, rng);
  const auto frame = zb::DecodeFrame(wave);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->psdu, psdu);
  EXPECT_TRUE(frame->crc_ok);
}

TEST(ZigbeeLoopback, OffsetStartFound) {
  const auto psdu = MakePsdu(16, 6);
  const auto wave = zb::ModulateFrame(psdu);
  dsp::SampleVec stream(3000, dsp::cfloat{0.0f, 0.0f});
  stream.insert(stream.end(), wave.begin(), wave.end());
  stream.insert(stream.end(), 1000, dsp::cfloat{0.0f, 0.0f});
  Xoshiro256 rng(7);
  rfdump::channel::AddAwgn(stream, 1e-4, rng);
  const auto frame = zb::DecodeFrame(stream);
  ASSERT_TRUE(frame.has_value());
  EXPECT_NEAR(static_cast<double>(frame->start_sample), 3000.0, 64.0);
  EXPECT_EQ(frame->psdu, psdu);
}

TEST(ZigbeeLoopback, NoiseOnlyNothing) {
  dsp::SampleVec noise(30000);
  Xoshiro256 rng(8);
  rfdump::channel::AddAwgn(noise, 1.0, rng);
  EXPECT_FALSE(zb::DecodeFrame(noise).has_value());
}

TEST(ZigbeeLoopback, CorruptedCrcFlagged) {
  auto psdu = MakePsdu(20, 9);
  psdu[5] ^= 0x10;  // corrupt after FCS computed
  const auto wave = zb::ModulateFrame(psdu);
  const auto frame = zb::DecodeFrame(wave);
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(frame->crc_ok);
}

TEST(ZigbeeTiming, ConstantsMatchTable2) {
  EXPECT_DOUBLE_EQ(zb::kSlotUs, 320.0);
  EXPECT_DOUBLE_EQ(zb::kSifsUs, 192.0);
  EXPECT_DOUBLE_EQ(zb::kChipRateHz, 2e6);
  EXPECT_DOUBLE_EQ(zb::kSymbolRateHz, 62.5e3);
}

}  // namespace
