// Observability subsystem tests: metric semantics, registry exposition,
// thread-safety of the hot-path mutations, trace export/nesting, and the
// RFDUMP_OBS=OFF no-op contract. The whole file compiles in both modes;
// value assertions flip on RFDUMP_OBS_ENABLED where behaviour differs.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "rfdump/obs/obs.hpp"

namespace obs = rfdump::obs;

namespace {

TEST(ObsCounter, IncAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(c.value(), 42u);
#else
  EXPECT_EQ(c.value(), 0u);  // mutations compile to no-ops
#endif
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddReset) {
  obs::Gauge g;
  g.Set(2.5);
  g.Add(-1.0);
#if RFDUMP_OBS_ENABLED
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
#else
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
#endif
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, BucketsAreUpperEdges) {
  obs::Histogram h({1.0, 2.0});
  h.Observe(0.5);   // le "1"
  h.Observe(1.0);   // le "1" (upper edge inclusive)
  h.Observe(1.5);   // le "2"
  h.Observe(30.0);  // +Inf
  const auto s = h.GetSnapshot();
  ASSERT_EQ(s.bounds.size(), 2u);
  ASSERT_EQ(s.counts.size(), 3u);
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 33.0);
#else
  EXPECT_EQ(s.count, 0u);
#endif
}

TEST(ObsRegistry, SameNameSameMetric) {
  obs::Counter& a = obs::Registry::Default().GetCounter("obs_test_same_total");
  obs::Counter& b = obs::Registry::Default().GetCounter("obs_test_same_total");
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.value();
  b.Inc(3);
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(obs::Registry::Default().CounterValue("obs_test_same_total"),
            before + 3);
#else
  // Disabled registry registers nothing; lookups report 0.
  EXPECT_EQ(obs::Registry::Default().CounterValue("obs_test_same_total"), 0u);
#endif
}

TEST(ObsRegistry, ConcurrentIncrementsAreExact) {
  obs::Counter& c =
      obs::Registry::Default().GetCounter("obs_test_concurrent_total");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& w : workers) w.join();
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(c.value(), before + kThreads * kPerThread);
#else
  EXPECT_EQ(c.value(), 0u);
#endif
}

TEST(ObsRegistry, ExpositionTextIsWellFormed) {
  auto& reg = obs::Registry::Default();
  reg.GetCounter("obs_test_expo_total{kind=\"a\"}").Inc(2);
  reg.GetCounter("obs_test_expo_total{kind=\"b\"}").Inc(5);
  reg.GetGauge("obs_test_expo_gauge").Set(1.5);
  obs::Histogram& h = reg.GetHistogram("obs_test_expo_hist", {1.0, 2.0});
  h.Reset();
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);
  const std::string text = reg.ExpositionText();
#if RFDUMP_OBS_ENABLED
  // One TYPE line per family, not per labeled series.
  EXPECT_EQ(text.find("# TYPE obs_test_expo_total counter"),
            text.rfind("# TYPE obs_test_expo_total counter"));
  EXPECT_NE(text.find("obs_test_expo_total{kind=\"a\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_total{kind=\"b\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_expo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_gauge 1.5\n"), std::string::npos);
  // Histogram buckets are cumulative with an +Inf catch-all.
  EXPECT_NE(text.find("obs_test_expo_hist_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_hist_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_hist_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_hist_count 3\n"), std::string::npos);
#else
  EXPECT_NE(text.find("compiled out"), std::string::npos);
  EXPECT_EQ(text.find("obs_test_expo_total"), std::string::npos);
#endif
}

TEST(ObsTrace, SpansRecordAndNest) {
  auto& tracer = obs::Tracer::Default();
  tracer.Enable(64);
  {
    RFDUMP_TRACE_SPAN("outer");
    {
      RFDUMP_TRACE_SPAN("inner");
    }
  }
#if RFDUMP_OBS_ENABLED
  ASSERT_TRUE(tracer.enabled());
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Events() sorts by timestamp, parents before children: the outer span
  // started first and wholly contains the inner one (how chrome://tracing
  // reconstructs the nesting).
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  EXPECT_EQ(events[0].tid, events[1].tid);
#else
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.Events().size(), 0u);
#endif
  tracer.Disable();
}

TEST(ObsTrace, RingKeepsMostRecentOnWrap) {
  auto& tracer = obs::Tracer::Default();
  tracer.Enable(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    RFDUMP_TRACE_SPAN("wrap");
  }
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.Events().size(), 8u);
#else
  EXPECT_EQ(tracer.recorded(), 0u);
#endif
  tracer.Disable();
}

TEST(ObsTrace, ChromeJsonExport) {
  auto& tracer = obs::Tracer::Default();
  tracer.Enable(16);
  {
    RFDUMP_TRACE_SPAN("json-span");
  }
  const std::string json = tracer.ExportChromeJson();
  tracer.Disable();
  // Structural checks a Trace Event Format consumer relies on.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
#if RFDUMP_OBS_ENABLED
  EXPECT_NE(json.find("\"name\":\"json-span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
#else
  EXPECT_EQ(json.find("json-span"), std::string::npos);
#endif
}

TEST(ObsStopwatch, MonotonicAndResettable) {
  obs::Stopwatch w;
  const double a = w.Seconds();
  const double b = w.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);  // Stopwatch is always live, even with RFDUMP_OBS=OFF
  w.Reset();
  EXPECT_LE(w.Seconds(), b + 1.0);
  EXPECT_GE(w.Microseconds(), 0.0);
}

}  // namespace
