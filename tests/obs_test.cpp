// Observability subsystem tests: metric semantics, registry exposition,
// thread-safety of the hot-path mutations, trace export/nesting, and the
// RFDUMP_OBS=OFF no-op contract. The whole file compiles in both modes;
// value assertions flip on RFDUMP_OBS_ENABLED where behaviour differs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "rfdump/obs/obs.hpp"

namespace obs = rfdump::obs;

namespace {

TEST(ObsCounter, IncAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(c.value(), 42u);
#else
  EXPECT_EQ(c.value(), 0u);  // mutations compile to no-ops
#endif
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddReset) {
  obs::Gauge g;
  g.Set(2.5);
  g.Add(-1.0);
#if RFDUMP_OBS_ENABLED
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
#else
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
#endif
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, BucketsAreUpperEdges) {
  obs::Histogram h({1.0, 2.0});
  h.Observe(0.5);   // le "1"
  h.Observe(1.0);   // le "1" (upper edge inclusive)
  h.Observe(1.5);   // le "2"
  h.Observe(30.0);  // +Inf
  const auto s = h.GetSnapshot();
  ASSERT_EQ(s.bounds.size(), 2u);
  ASSERT_EQ(s.counts.size(), 3u);
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 33.0);
#else
  EXPECT_EQ(s.count, 0u);
#endif
}

TEST(ObsRegistry, SameNameSameMetric) {
  obs::Counter& a = obs::Registry::Default().GetCounter("obs_test_same_total");
  obs::Counter& b = obs::Registry::Default().GetCounter("obs_test_same_total");
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.value();
  b.Inc(3);
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(obs::Registry::Default().CounterValue("obs_test_same_total"),
            before + 3);
#else
  // Disabled registry registers nothing; lookups report 0.
  EXPECT_EQ(obs::Registry::Default().CounterValue("obs_test_same_total"), 0u);
#endif
}

TEST(ObsRegistry, ConcurrentIncrementsAreExact) {
  obs::Counter& c =
      obs::Registry::Default().GetCounter("obs_test_concurrent_total");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& w : workers) w.join();
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(c.value(), before + kThreads * kPerThread);
#else
  EXPECT_EQ(c.value(), 0u);
#endif
}

TEST(ObsRegistry, ExpositionTextIsWellFormed) {
  auto& reg = obs::Registry::Default();
  reg.GetCounter("obs_test_expo_total{kind=\"a\"}").Inc(2);
  reg.GetCounter("obs_test_expo_total{kind=\"b\"}").Inc(5);
  reg.GetGauge("obs_test_expo_gauge").Set(1.5);
  obs::Histogram& h = reg.GetHistogram("obs_test_expo_hist", {1.0, 2.0});
  h.Reset();
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);
  const std::string text = reg.ExpositionText();
#if RFDUMP_OBS_ENABLED
  // One TYPE line per family, not per labeled series.
  EXPECT_EQ(text.find("# TYPE obs_test_expo_total counter"),
            text.rfind("# TYPE obs_test_expo_total counter"));
  EXPECT_NE(text.find("obs_test_expo_total{kind=\"a\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_total{kind=\"b\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_expo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_gauge 1.5\n"), std::string::npos);
  // Histogram buckets are cumulative with an +Inf catch-all.
  EXPECT_NE(text.find("obs_test_expo_hist_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_hist_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_hist_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_hist_count 3\n"), std::string::npos);
#else
  EXPECT_NE(text.find("compiled out"), std::string::npos);
  EXPECT_EQ(text.find("obs_test_expo_total"), std::string::npos);
#endif
}

TEST(ObsTrace, SpansRecordAndNest) {
  auto& tracer = obs::Tracer::Default();
  tracer.Enable(64);
  {
    RFDUMP_TRACE_SPAN("outer");
    {
      RFDUMP_TRACE_SPAN("inner");
    }
  }
#if RFDUMP_OBS_ENABLED
  ASSERT_TRUE(tracer.enabled());
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Events() sorts by timestamp, parents before children: the outer span
  // started first and wholly contains the inner one (how chrome://tracing
  // reconstructs the nesting).
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  EXPECT_EQ(events[0].tid, events[1].tid);
#else
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.Events().size(), 0u);
#endif
  tracer.Disable();
}

TEST(ObsTrace, RingKeepsMostRecentOnWrap) {
  auto& tracer = obs::Tracer::Default();
  tracer.Enable(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    RFDUMP_TRACE_SPAN("wrap");
  }
#if RFDUMP_OBS_ENABLED
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.Events().size(), 8u);
#else
  EXPECT_EQ(tracer.recorded(), 0u);
#endif
  tracer.Disable();
}

TEST(ObsTrace, ChromeJsonExport) {
  auto& tracer = obs::Tracer::Default();
  tracer.Enable(16);
  {
    RFDUMP_TRACE_SPAN("json-span");
  }
  const std::string json = tracer.ExportChromeJson();
  tracer.Disable();
  // Structural checks a Trace Event Format consumer relies on.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
#if RFDUMP_OBS_ENABLED
  EXPECT_NE(json.find("\"name\":\"json-span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
#else
  EXPECT_EQ(json.find("json-span"), std::string::npos);
#endif
}

TEST(ObsStopwatch, MonotonicAndResettable) {
  obs::Stopwatch w;
  const double a = w.Seconds();
  const double b = w.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);  // Stopwatch is always live, even with RFDUMP_OBS=OFF
  w.Reset();
  EXPECT_LE(w.Seconds(), b + 1.0);
  EXPECT_GE(w.Microseconds(), 0.0);
}

// ------------------------------------------------ histogram quantiles

TEST(ObsHistogram, QuantileInterpolatesWithinBuckets) {
  obs::Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Observe(5.0);   // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.Observe(15.0);  // bucket (10, 20]
  const auto snap = h.GetSnapshot();
#if RFDUMP_OBS_ENABLED
  ASSERT_EQ(snap.count, 20u);
  ASSERT_EQ(snap.counts.size(), 3u);  // two finite buckets + the +Inf one
  EXPECT_EQ(snap.counts[0], 10u);
  EXPECT_EQ(snap.counts[1], 10u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 10 * 5.0 + 10 * 15.0);
  // Rank 5 of 20 lands halfway through the first bucket [0, 10].
  EXPECT_DOUBLE_EQ(snap.Quantile(0.25), 5.0);
  // Rank 15 lands halfway through the second bucket [10, 20].
  EXPECT_DOUBLE_EQ(snap.Quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 20.0);
  // Out-of-range q is clamped, not rejected.
  EXPECT_DOUBLE_EQ(snap.Quantile(7.0), 20.0);
#else
  EXPECT_EQ(snap.count, 0u);  // Observe compiles to a no-op
  EXPECT_TRUE(std::isnan(snap.Quantile(0.5)));
#endif
}

TEST(ObsHistogram, QuantileEdgeCases) {
  obs::Histogram empty({1.0, 2.0});
  EXPECT_TRUE(std::isnan(empty.GetSnapshot().Quantile(0.5)));

#if RFDUMP_OBS_ENABLED
  // Every observation beyond the last edge: the rank falls in the +Inf
  // bucket and the best bounded claim is the highest finite edge.
  obs::Histogram overflow({1.0});
  for (int i = 0; i < 3; ++i) overflow.Observe(50.0);
  EXPECT_DOUBLE_EQ(overflow.GetSnapshot().Quantile(0.5), 1.0);
#endif
}

// ------------------------------------------- tracer ring + dropped spans

TEST(ObsTrace, WraparoundExportsOldestSurvivorFirst) {
  obs::Tracer tracer;
  tracer.Enable(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    tracer.Record("wrap-span", /*ts_us=*/static_cast<double>(i),
                  /*dur_us=*/0.5);
  }
  const auto events = tracer.Events();
  tracer.Disable();
#if RFDUMP_OBS_ENABLED
  // Spans 0 and 1 were overwritten; the surviving window exports in
  // timestamp order, oldest first.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 2.0);
  EXPECT_DOUBLE_EQ(events[1].ts_us, 3.0);
  EXPECT_DOUBLE_EQ(events[2].ts_us, 4.0);
  EXPECT_DOUBLE_EQ(events[3].ts_us, 5.0);
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
#else
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(tracer.dropped(), 0u);
#endif
}

#if RFDUMP_OBS_ENABLED
TEST(ObsTrace, RingOverwritesFeedDroppedEventsCounter) {
  const std::string kCounter = "rfdump_tracer_dropped_events_total";
  const std::uint64_t before = obs::Registry::Default().CounterValue(kCounter);
  obs::Tracer tracer;
  tracer.Enable(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    tracer.Record("drop-span", static_cast<double>(i), 1.0);
  }
  tracer.Disable();
  EXPECT_EQ(obs::Registry::Default().CounterValue(kCounter) - before, 3u);
}
#endif

// --------------------------------------------------- linked spans

TEST(ObsTrace, LinkedSpanPassesParentThroughWhenDisabled) {
  obs::Tracer tracer;  // never enabled
  const obs::TraceContext parent{/*trace_id=*/7, /*span_id=*/9};
  obs::LinkedSpan span(tracer, "disabled-span", parent);
  // An uninstrumented hop must be transparent, not trace-breaking: the
  // upstream context flows through unchanged (both compile modes).
  EXPECT_EQ(span.context(), parent);
}

#if RFDUMP_OBS_ENABLED
TEST(ObsTrace, LinkedSpanContinuesParentTraceWhenEnabled) {
  obs::Tracer tracer;
  tracer.Enable(16);
  const obs::TraceContext parent{/*trace_id=*/0x1234, /*span_id=*/0x99};
  obs::TraceContext child;
  {
    obs::LinkedSpan span(tracer, "child-span", parent);
    child = span.context();
  }
  EXPECT_EQ(child.trace_id, 0x1234u);  // same trace as the parent
  EXPECT_NE(child.span_id, 0u);        // but its own span id
  EXPECT_NE(child.span_id, parent.span_id);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 0x1234u);
  EXPECT_EQ(events[0].span_id, child.span_id);
  EXPECT_EQ(events[0].parent_span, 0x99u);
}

TEST(ObsTrace, LinkedSpanRootsFreshTraceWithoutParent) {
  obs::Tracer tracer;
  tracer.Enable(16);
  obs::TraceContext root;
  {
    obs::LinkedSpan span(tracer, "root-span", obs::TraceContext{});
    root = span.context();
  }
  EXPECT_NE(root.trace_id, 0u);
  EXPECT_NE(root.span_id, 0u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].parent_span, 0u);
}

TEST(ObsTrace, NewSpanIdsAreUniqueAndNonZero) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(obs::NewSpanId());
  std::sort(ids.begin(), ids.end());
  EXPECT_NE(ids.front(), 0u);
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}
#endif

// ------------------------------------------------ fleet trace merge

TEST(ObsTrace, FleetExportMergesProcessRows) {
  // ExportFleetChromeJson is plain code over plain data, so this runs
  // identically under RFDUMP_OBS=OFF.
  obs::Tracer::Event sensor_span;
  sensor_span.name = "sensor/flush_block";
  sensor_span.ts_us = 1.0;
  sensor_span.dur_us = 2.0;
  sensor_span.trace_id = 0xabc;
  sensor_span.span_id = 0x1;
  obs::Tracer::Event agg_span;
  agg_span.name = "agg/fuse";
  agg_span.ts_us = 4.0;
  agg_span.dur_us = 1.0;
  agg_span.trace_id = 0xabc;
  agg_span.span_id = 0x2;
  agg_span.parent_span = 0x1;
  const obs::ProcessTrace procs[] = {
      {"sensor-0", 1, {sensor_span}},
      {"aggregator", 2, {agg_span}},
  };
  const std::string json = obs::ExportFleetChromeJson(procs);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // One process_name metadata event per node...
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"sensor-0\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregator\""), std::string::npos);
  // ...and the cross-process span link args a viewer follows.
  EXPECT_NE(json.find("\"trace_id\":\"0xabc\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":\"0x1\""), std::string::npos);
}

// --------------------------------------- exposition hardening + builder

TEST(ObsMetrics, EscapeLabelValueHandlesSpecials) {
  EXPECT_EQ(obs::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::EscapeLabelValue("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(obs::EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(ObsMetrics, WithLabelMergesIntoExistingLabelSet) {
  EXPECT_EQ(obs::WithLabel("m_total", "sensor", "3"),
            "m_total{sensor=\"3\"}");
  EXPECT_EQ(obs::WithLabel("m_total{proto=\"bt\"}", "sensor", "3"),
            "m_total{proto=\"bt\",sensor=\"3\"}");
  EXPECT_EQ(obs::WithLabel("m_total{}", "sensor", "3"),
            "m_total{sensor=\"3\"}");
  // Label values are escaped on the way in.
  EXPECT_EQ(obs::WithLabel("m_total", "k", "a\"b"),
            "m_total{k=\"a\\\"b\"}");
}

TEST(ObsMetrics, LabeledCounterEscapesValue) {
  obs::Counter& c =
      obs::LabeledCounter("rfdump_test_escape_total", "who", "a\"b\\c");
  c.Inc();
#if RFDUMP_OBS_ENABLED
  const std::string text = obs::Registry::Default().ExpositionText();
  EXPECT_NE(
      text.find("rfdump_test_escape_total{who=\"a\\\"b\\\\c\"}"),
      std::string::npos);
#endif
}

TEST(ObsMetrics, ExpositionBuilderSortsFamiliesAndTypesThem) {
  // Plain code: identical in both compile modes.
  obs::ExpositionBuilder b;
  b.Add("b_gauge{x=\"y\"}", obs::MetricKind::kGauge, 1.5);
  b.Add("a_total", obs::MetricKind::kCounter, 3.0);
  b.Add("a_total{q=\"z\"}", obs::MetricKind::kCounter, 2.0);
  EXPECT_EQ(b.Text(),
            "# TYPE a_total counter\n"
            "a_total 3\n"
            "a_total{q=\"z\"} 2\n"
            "# TYPE b_gauge gauge\n"
            "b_gauge{x=\"y\"} 1.5\n");
}

TEST(ObsMetrics, SnapshotValuesListsCountersAndGauges) {
  obs::Registry::Default().GetCounter("rfdump_test_snap_a_total").Inc(4);
  obs::Registry::Default().GetGauge("rfdump_test_snap_b").Set(2.5);
  const auto values = obs::Registry::Default().SnapshotValues();
#if RFDUMP_OBS_ENABLED
  bool saw_counter = false, saw_gauge = false;
  for (const auto& v : values) {
    if (v.name == "rfdump_test_snap_a_total") {
      saw_counter = true;
      EXPECT_EQ(v.kind, obs::MetricKind::kCounter);
      EXPECT_GE(v.value, 4.0);
    }
    if (v.name == "rfdump_test_snap_b") {
      saw_gauge = true;
      EXPECT_EQ(v.kind, obs::MetricKind::kGauge);
      EXPECT_DOUBLE_EQ(v.value, 2.5);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end(),
                             [](const obs::MetricValue& a,
                                const obs::MetricValue& b) {
                               return a.name < b.name;
                             }));
#else
  EXPECT_TRUE(values.empty());  // the disabled registry registers nothing
#endif
}

}  // namespace
