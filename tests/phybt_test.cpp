// Bluetooth PHY/baseband tests: sync word code properties, whitening, FEC,
// packet bit round trips, GFSK loopback and the full band demodulator.

#include <bit>
#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/dsp/energy.hpp"
#include "rfdump/dsp/phase.hpp"
#include "rfdump/dsp/nco.hpp"
#include "rfdump/phybt/demodulator.hpp"
#include "rfdump/phybt/gfsk.hpp"
#include "rfdump/phybt/hopping.hpp"
#include "rfdump/phybt/modulator.hpp"
#include "rfdump/phybt/packet.hpp"
#include "rfdump/util/rng.hpp"

namespace bt = rfdump::phybt;
namespace dsp = rfdump::dsp;
namespace util = rfdump::util;

namespace {

// ---------------------------------------------------------------- sync word

TEST(SyncWord, RoundTripsThroughVerify) {
  for (std::uint32_t lap : {0x000000u, 0x123456u, 0x9E8B33u, 0xFFFFFFu}) {
    const std::uint64_t w = bt::SyncWord(lap);
    const auto got = bt::VerifySyncWord(w);
    ASSERT_TRUE(got.has_value()) << std::hex << lap;
    EXPECT_EQ(*got, lap & 0xFFFFFF);
  }
}

TEST(SyncWord, DistinctLapsFarApart) {
  // The BCH(64,30) code has minimum distance 14.
  const std::uint64_t a = bt::SyncWord(0x123456);
  const std::uint64_t b = bt::SyncWord(0x123457);
  EXPECT_GE(std::popcount(a ^ b), 14);
}

TEST(SyncWord, SingleBitErrorRejectedExactMode) {
  const std::uint64_t w = bt::SyncWord(0xABCDEF);
  for (int bit = 0; bit < 64; bit += 7) {
    EXPECT_FALSE(bt::VerifySyncWord(w ^ (1ull << bit), 0).has_value());
  }
}

TEST(SyncWord, ErrorsToleratedWithSlack) {
  const std::uint64_t w = bt::SyncWord(0xABCDEF);
  // Two errors in the parity section must still verify with slack 2.
  const std::uint64_t corrupted = w ^ 0b101ull;
  const auto got = bt::VerifySyncWord(corrupted, 2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0xABCDEFu);
}

TEST(SyncWord, RandomWordsRejected) {
  util::Xoshiro256 rng(3);
  int false_accepts = 0;
  for (int i = 0; i < 2000; ++i) {
    if (bt::VerifySyncWord(rng(), 0).has_value()) ++false_accepts;
  }
  // 34 parity bits: false accept probability ~6e-11 per word.
  EXPECT_EQ(false_accepts, 0);
}

// ---------------------------------------------------------------- whitening

TEST(Whitening, PeriodAndBalance) {
  // x^7+x^4+1 is primitive: period 127, 64 ones per period.
  const auto seq = bt::WhiteningSequence(0x15, 254);
  int ones = 0;
  for (std::size_t i = 0; i < 127; ++i) {
    EXPECT_EQ(seq[i], seq[i + 127]) << i;
    ones += seq[i];
  }
  EXPECT_EQ(ones, 64);
}

TEST(Whitening, SeedsDiffer) {
  const auto a = bt::WhiteningSequence(0, 64);
  const auto b = bt::WhiteningSequence(1, 64);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------------ packets

TEST(BtPacket, AirBitCounts) {
  EXPECT_EQ(bt::PacketAirBits(bt::PacketType::kPoll, 0), 68u + 54u);
  EXPECT_EQ(bt::PacketAirBits(bt::PacketType::kDh1, 27),
            68u + 54u + (1u + 27u + 2u) * 8u);
  EXPECT_EQ(bt::PacketAirBits(bt::PacketType::kDh5, 339),
            68u + 54u + (2u + 339u + 2u) * 8u);
}

TEST(BtPacket, SlotsAndCapacity) {
  EXPECT_EQ(bt::SlotsFor(bt::PacketType::kDh1), 1u);
  EXPECT_EQ(bt::SlotsFor(bt::PacketType::kDh3), 3u);
  EXPECT_EQ(bt::SlotsFor(bt::PacketType::kDh5), 5u);
  EXPECT_EQ(bt::MaxPayloadBytes(bt::PacketType::kDh5), 339u);
  EXPECT_EQ(bt::MaxPayloadBytes(bt::PacketType::kPoll), 0u);
}

TEST(BtPacket, BitsRoundTrip) {
  bt::DeviceAddress addr{0x2A96EF, 0x47};
  bt::PacketHeader hdr;
  hdr.lt_addr = 3;
  hdr.type = bt::PacketType::kDh5;
  hdr.seqn = true;
  util::Xoshiro256 rng(5);
  std::vector<std::uint8_t> payload(300);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));

  const auto bits = bt::BuildPacketBits(addr, hdr, payload, 0x2B);
  ASSERT_EQ(bits.size(), bt::PacketAirBits(bt::PacketType::kDh5, 300));
  // Strip the access code, parse the rest.
  const auto parsed = bt::ParsePacketBits(
      std::span<const std::uint8_t>(bits).subspan(68), addr.uap);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.lt_addr, 3);
  EXPECT_EQ(parsed->header.type, bt::PacketType::kDh5);
  EXPECT_TRUE(parsed->header.seqn);
  EXPECT_EQ(parsed->clk6, 0x2B);
  EXPECT_TRUE(parsed->crc_ok);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(BtPacket, WrongUapFailsParse) {
  bt::DeviceAddress addr{0x2A96EF, 0x47};
  bt::PacketHeader hdr;
  std::vector<std::uint8_t> payload(20, 0xAB);
  const auto bits = bt::BuildPacketBits(addr, hdr, payload, 0x11);
  const auto parsed = bt::ParsePacketBits(
      std::span<const std::uint8_t>(bits).subspan(68), 0x48);
  // With the wrong UAP either nothing parses or the CRC fails.
  if (parsed.has_value()) {
    EXPECT_FALSE(parsed->crc_ok);
  }
}

TEST(BtPacket, HeaderOnlyPacket) {
  bt::DeviceAddress addr{0x11AA55, 0x30};
  bt::PacketHeader hdr;
  hdr.type = bt::PacketType::kPoll;
  const auto bits = bt::BuildPacketBits(addr, hdr, {}, 0);
  EXPECT_EQ(bits.size(), 68u + 54u);
  const auto parsed = bt::ParsePacketBits(
      std::span<const std::uint8_t>(bits).subspan(68), addr.uap);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.type, bt::PacketType::kPoll);
  EXPECT_TRUE(parsed->payload.empty());
}

// ------------------------------------------------------------------ hopping

TEST(Hopping, UniformishOver79) {
  std::array<int, 79> counts{};
  for (std::uint32_t clk = 0; clk < 79 * 100; ++clk) {
    const int ch = bt::HopChannel(0x2A96EF, clk);
    ASSERT_GE(ch, 0);
    ASSERT_LT(ch, 79);
    ++counts[static_cast<std::size_t>(ch)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 50);
    EXPECT_LT(c, 200);
  }
}

TEST(Hopping, VisibleWindowMapping) {
  EXPECT_FALSE(bt::ChannelOffsetHz(0).has_value());
  EXPECT_FALSE(bt::ChannelOffsetHz(37).has_value());
  EXPECT_FALSE(bt::ChannelOffsetHz(46).has_value());
  ASSERT_TRUE(bt::ChannelOffsetHz(38).has_value());
  EXPECT_DOUBLE_EQ(*bt::ChannelOffsetHz(38), -3.5e6);
  EXPECT_DOUBLE_EQ(*bt::ChannelOffsetHz(45), 3.5e6);
  EXPECT_DOUBLE_EQ(bt::VisibleIndexOffsetHz(4), 0.5e6);
}

TEST(Hopping, VisibleFractionNearEightOver79) {
  int visible = 0;
  const int total = 7900;
  for (int clk = 0; clk < total; ++clk) {
    if (bt::ChannelOffsetHz(bt::HopChannel(0x9E8B33, clk))) ++visible;
  }
  const double frac = static_cast<double>(visible) / total;
  EXPECT_NEAR(frac, 8.0 / 79.0, 0.02);
}

// --------------------------------------------------------------------- GFSK

TEST(Gfsk, ConstantEnvelope) {
  util::BitVec bits(100);
  util::Xoshiro256 rng(6);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto burst = bt::GfskModulate(bits);
  for (const auto& s : burst) {
    EXPECT_NEAR(std::abs(s), 1.0f, 1e-5f);
  }
}

TEST(Gfsk, ContinuousPhase) {
  // Second phase difference must be small everywhere (the paper's GFSK
  // detector relies on exactly this).
  util::BitVec bits(64, 1u);
  bits[10] = 0;
  bits[30] = 0;
  const auto burst = bt::GfskModulate(bits);
  const auto d2 = dsp::PhaseSecondDiff(burst);
  for (float v : d2) {
    EXPECT_LT(std::abs(v), 0.12f);  // well below any PSK symbol jump
  }
}

TEST(Gfsk, DiscriminatorRecoversBits) {
  util::BitVec bits(200);
  util::Xoshiro256 rng(7);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto burst = bt::GfskModulate(bits, 2);
  const auto freq = bt::FmDiscriminate(burst);
  // First symbol center: 2 ramp symbols then half a symbol.
  const std::size_t first_center = 2 * bt::kSamplesPerSymbol + 4;
  const auto sliced = bt::SliceSymbols(freq, first_center, bits.size());
  ASSERT_EQ(sliced.size(), bits.size());
  EXPECT_EQ(util::HammingDistance(sliced, bits), 0u);
}

// ----------------------------------------------------------- band demod

bt::BtBurst MakeVisibleBurst(const bt::DeviceAddress& addr,
                             std::vector<std::uint8_t> payload,
                             std::uint32_t clk_start) {
  bt::PacketHeader hdr;
  hdr.type = bt::PacketType::kDh5;
  // Find a clk whose hop lands in the visible window.
  for (std::uint32_t clk = clk_start;; ++clk) {
    auto burst = bt::ModulatePacket(addr, hdr, payload, clk);
    if (!burst.samples.empty()) return burst;
  }
}

TEST(BtDemod, DecodesVisibleBurst) {
  bt::DeviceAddress addr{0x2A96EF, 0x47};
  std::vector<std::uint8_t> payload(225);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  auto burst = MakeVisibleBurst(addr, payload, 100);
  // Embed in a quiet band with margins.
  dsp::SampleVec band(2000, dsp::cfloat{0.0f, 0.0f});
  band.insert(band.end(), burst.samples.begin(), burst.samples.end());
  band.insert(band.end(), 2000, dsp::cfloat{0.0f, 0.0f});
  util::Xoshiro256 rng(8);
  rfdump::channel::AddAwgn(band, 1e-4, rng);  // ~40 dB SNR

  bt::Demodulator demod;
  const auto pkts = demod.DecodeAll(band);
  ASSERT_EQ(pkts.size(), 1u);
  EXPECT_EQ(pkts[0].lap, addr.lap);
  EXPECT_EQ(pkts[0].packet.header.type, bt::PacketType::kDh5);
  EXPECT_TRUE(pkts[0].packet.crc_ok);
  EXPECT_EQ(pkts[0].packet.payload, payload);
  EXPECT_NEAR(static_cast<double>(pkts[0].start_sample), 2000.0, 64.0);
}

TEST(BtDemod, SingleChannelModeOnlySeesItsChannel) {
  bt::DeviceAddress addr{0x2A96EF, 0x47};
  std::vector<std::uint8_t> payload(50, 0x5A);
  auto burst = MakeVisibleBurst(addr, payload, 500);
  const int vis_idx = burst.channel - bt::kFirstVisibleChannel;
  dsp::SampleVec band(1000, dsp::cfloat{0.0f, 0.0f});
  band.insert(band.end(), burst.samples.begin(), burst.samples.end());
  band.insert(band.end(), 1000, dsp::cfloat{0.0f, 0.0f});
  util::Xoshiro256 rng(9);
  rfdump::channel::AddAwgn(band, 1e-4, rng);

  bt::Demodulator::Config cfg;
  cfg.channel_index = vis_idx;
  bt::Demodulator right(cfg);
  EXPECT_EQ(right.DecodeAll(band).size(), 1u);

  cfg.channel_index = (vis_idx + 4) % 8;
  bt::Demodulator wrong(cfg);
  EXPECT_TRUE(wrong.DecodeAll(band).empty());
}

TEST(BtDemod, NoiseOnlyFindsNothing) {
  dsp::SampleVec band(50000);
  util::Xoshiro256 rng(10);
  rfdump::channel::AddAwgn(band, 1.0, rng);
  bt::Demodulator demod;
  EXPECT_TRUE(demod.DecodeAll(band).empty());
}

TEST(BtDemod, OutOfBandHopNotCaptured) {
  bt::DeviceAddress addr{0x2A96EF, 0x47};
  bt::PacketHeader hdr;
  hdr.type = bt::PacketType::kDh1;
  std::vector<std::uint8_t> payload(20, 1);
  // Find a clk that hops OUTSIDE the visible window.
  for (std::uint32_t clk = 0;; ++clk) {
    const int ch = bt::HopChannel(addr.lap, clk);
    if (!bt::ChannelOffsetHz(ch)) {
      const auto burst = bt::ModulatePacket(addr, hdr, payload, clk);
      EXPECT_TRUE(burst.samples.empty());
      EXPECT_EQ(burst.channel, ch);
      break;
    }
  }
}

}  // namespace
