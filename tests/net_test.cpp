// rfdump::net unit tests (DESIGN.md §12): the wire-format conformance gate
// (encode -> parse round-trip under splits, corruption, garbage and version
// skew), message codec round-trips with hostile-input guards, FaultyLink
// determinism + ground-truth fault logging, SensorSession reliability
// (retransmit, ack, ring overflow -> explicit gaps, backoff reconnect), and
// Aggregator reassembly / clock alignment / dedup / liveness / trust.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "rfdump/net/aggregator.hpp"
#include "rfdump/net/faulty_link.hpp"
#include "rfdump/net/fleet.hpp"
#include "rfdump/net/messages.hpp"
#include "rfdump/net/session.hpp"
#include "rfdump/net/wire.hpp"

namespace net = rfdump::net;
namespace core = rfdump::core;

namespace {

std::vector<std::uint8_t> Payload(std::size_t n, std::uint8_t base = 7) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(base + i * 13);
  }
  return p;
}

net::Frame RequireOne(net::FrameParser& parser,
                      std::span<const std::uint8_t> bytes) {
  std::vector<net::Frame> out;
  parser.Feed(bytes, [&](net::Frame&& f) { out.push_back(std::move(f)); });
  EXPECT_EQ(out.size(), 1u);
  if (out.empty()) return {};
  return std::move(out.front());
}

net::EventRecord MakeEvent(std::int64_t start, core::Protocol proto =
                                                   core::Protocol::kWifi80211b) {
  net::EventRecord e;
  e.protocol = proto;
  e.channel = proto == core::Protocol::kBluetooth ? 3 : -1;
  e.start_sample = start;
  e.end_sample = start + 1000;
  e.payload_bytes = 64;
  e.crc_ok = true;
  e.payload_digest = 0xDEADBEEFCAFEull + static_cast<std::uint64_t>(start);
  return e;
}

// ------------------------------------------------------------------- wire

TEST(Wire, EncodeParseRoundTrip) {
  net::FrameHeader h;
  h.type = net::FrameType::kEventBatch;
  h.sensor_id = 7;
  h.seq = 42;
  const auto payload = Payload(300);
  const auto wire = net::EncodeFrame(h, payload);
  ASSERT_EQ(wire.size(),
            net::kFrameHeaderBytes + payload.size() + net::kFrameTrailerBytes);

  net::FrameParser parser;
  const auto f = RequireOne(parser, wire);
  EXPECT_EQ(f.header.type, net::FrameType::kEventBatch);
  EXPECT_EQ(f.header.sensor_id, 7);
  EXPECT_EQ(f.header.seq, 42u);
  EXPECT_EQ(f.payload, payload);
  EXPECT_EQ(parser.stats().frames_ok, 1u);
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(Wire, ByteAtATimeFeedReassembles) {
  net::FrameHeader h;
  h.type = net::FrameType::kHeartbeat;
  h.sensor_id = 1;
  const auto payload = Payload(50);
  const auto wire = net::EncodeFrame(h, payload);

  net::FrameParser parser;
  std::vector<net::Frame> out;
  for (const std::uint8_t b : wire) {
    parser.Feed({&b, 1}, [&](net::Frame&& f) { out.push_back(std::move(f)); });
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, payload);
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(Wire, BackToBackFramesInOneFeed) {
  std::vector<std::uint8_t> stream;
  for (std::uint32_t seq = 1; seq <= 5; ++seq) {
    net::FrameHeader h;
    h.type = net::FrameType::kHealth;
    h.sensor_id = 2;
    h.seq = seq;
    const auto wire = net::EncodeFrame(h, Payload(seq * 10));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  net::FrameParser parser;
  std::vector<net::Frame> out;
  parser.Feed(stream, [&](net::Frame&& f) { out.push_back(std::move(f)); });
  ASSERT_EQ(out.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].header.seq, i + 1);
    EXPECT_EQ(out[i].payload.size(), (i + 1) * 10);
  }
}

TEST(Wire, CorruptFrameDroppedAndParserResyncs) {
  net::FrameHeader h;
  h.type = net::FrameType::kEventBatch;
  h.sensor_id = 3;
  h.seq = 1;
  auto bad = net::EncodeFrame(h, Payload(80));
  bad[net::kFrameHeaderBytes + 10] ^= 0xFF;  // flip one payload byte
  h.seq = 2;
  const auto good = net::EncodeFrame(h, Payload(80));

  std::vector<std::uint8_t> stream = bad;
  stream.insert(stream.end(), good.begin(), good.end());

  net::FrameParser parser;
  std::vector<net::Frame> out;
  parser.Feed(stream, [&](net::Frame&& f) { out.push_back(std::move(f)); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header.seq, 2u);  // the corrupt frame never surfaced
  EXPECT_GE(parser.stats().bad_crc, 1u);
}

TEST(Wire, GarbagePrefixSkippedByMagicHunt) {
  const auto garbage = Payload(37, 0xA5);
  net::FrameHeader h;
  h.type = net::FrameType::kAck;
  h.sensor_id = 0;
  const auto good = net::EncodeFrame(h, Payload(8));

  std::vector<std::uint8_t> stream = garbage;
  stream.insert(stream.end(), good.begin(), good.end());
  net::FrameParser parser;
  const auto f = RequireOne(parser, stream);
  EXPECT_EQ(f.header.type, net::FrameType::kAck);
  EXPECT_GT(parser.stats().bad_magic_bytes, 0u);
}

TEST(Wire, FutureVersionRejectedCleanly) {
  net::FrameHeader h;
  h.type = net::FrameType::kHello;
  auto wire = net::EncodeFrame(h, Payload(12));
  wire[2] = net::kWireVersion + 1;  // version byte
  net::FrameParser parser;
  std::vector<net::Frame> out;
  parser.Feed(wire, [&](net::Frame&& f) { out.push_back(std::move(f)); });
  EXPECT_TRUE(out.empty());
  EXPECT_GE(parser.stats().bad_version, 1u);
}

TEST(Wire, HostileLengthFieldDoesNotStallParser) {
  net::FrameHeader h;
  h.type = net::FrameType::kEventBatch;
  h.seq = 1;
  auto wire = net::EncodeFrame(h, Payload(16));
  // Overwrite payload_len (offset 12, LE u32) with an absurd value. The
  // parser must reject it instead of buffering forever.
  const std::uint32_t huge = net::kMaxPayloadBytes + 1;
  std::memcpy(wire.data() + 12, &huge, sizeof(huge));
  net::FrameParser parser;
  std::vector<net::Frame> out;
  parser.Feed(wire, [&](net::Frame&& f) { out.push_back(std::move(f)); });
  EXPECT_TRUE(out.empty());
  EXPECT_GE(parser.stats().bad_length, 1u);
  // Follow-up valid frame still parses (stream recovered).
  h.seq = 2;
  const auto good = net::EncodeFrame(h, Payload(16));
  parser.Feed(good, [&](net::Frame&& f) { out.push_back(std::move(f)); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header.seq, 2u);
}

TEST(Wire, PlausibleCorruptLengthCaughtByHeaderChecksum) {
  net::FrameHeader h;
  h.type = net::FrameType::kEventBatch;
  h.seq = 1;
  auto wire = net::EncodeFrame(h, Payload(16));
  // Overwrite payload_len with a value *under* the cap. Without a header
  // checksum the parser would wait forever for 5000 bytes that never come,
  // stalling every frame behind this one.
  const std::uint32_t plausible = 5000;
  std::memcpy(wire.data() + 12, &plausible, sizeof(plausible));
  net::FrameParser parser;
  std::vector<net::Frame> out;
  parser.Feed(wire, [&](net::Frame&& f) { out.push_back(std::move(f)); });
  EXPECT_TRUE(out.empty());
  EXPECT_GE(parser.stats().bad_header_checksum, 1u);
  // Follow-up valid frame still parses (stream recovered, no stall).
  h.seq = 2;
  const auto good = net::EncodeFrame(h, Payload(16));
  parser.Feed(good, [&](net::Frame&& f) { out.push_back(std::move(f)); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header.seq, 2u);
}

// --------------------------------------------------------------- messages

TEST(Messages, HelloHeartbeatAckRoundTrip) {
  const net::HelloMsg hello{9, -123456789};
  const auto h2 = net::HelloMsg::Decode(hello.Encode());
  ASSERT_TRUE(h2);
  EXPECT_EQ(h2->epoch, 9u);
  EXPECT_EQ(h2->local_time, -123456789);

  // frames_sent above 2^32 must survive the wire (u64 field, not u32).
  const net::HeartbeatMsg hb{987654321, 0x1'0000'0011ull};
  const auto hb2 = net::HeartbeatMsg::Decode(hb.Encode());
  ASSERT_TRUE(hb2);
  EXPECT_EQ(hb2->local_time, 987654321);
  EXPECT_EQ(hb2->frames_sent, 0x1'0000'0011ull);

  const net::AckMsg ack{1234, 5};
  const auto ack2 = net::AckMsg::Decode(ack.Encode());
  ASSERT_TRUE(ack2);
  EXPECT_EQ(ack2->cum_seq, 1234u);
  EXPECT_EQ(ack2->epoch, 5u);
}

TEST(Messages, EventBatchRoundTrip) {
  net::EventBatchMsg batch;
  batch.block_start = 400'000;
  batch.events.push_back(MakeEvent(400'100));
  batch.events.push_back(MakeEvent(401'000, core::Protocol::kBluetooth));
  batch.events.push_back(MakeEvent(402'000, core::Protocol::kZigbee));
  const auto d = net::EventBatchMsg::Decode(batch.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->block_start, 400'000);
  ASSERT_EQ(d->events.size(), 3u);
  EXPECT_EQ(d->events[0], batch.events[0]);
  EXPECT_EQ(d->events[1], batch.events[1]);
  EXPECT_EQ(d->events[2], batch.events[2]);
}

TEST(Messages, HealthRoundTripAllFields) {
  core::HealthReport h;
  h.block_start = 2'000'000;
  h.block_samples = 400'000;
  h.gap_count = 3;
  h.gap_samples = 12'345;
  h.overlap_samples = 678;
  h.sanitized_samples = 90;
  h.nonfinite_samples = 1;
  h.saturation_fraction = 0.125;
  h.shed_stage = 2;
  h.block_load = 1.75;
  h.tagged_detections = 11;
  h.rejected_detections = 22;
  h.forwarded_intervals = 33;
  h.supervised_intervals = 44;
  h.deadline_intervals = 5;
  h.exception_intervals = 6;
  h.skipped_intervals = 7;
  h.quarantined_intervals = 8;
  h.breaker_trips = 9;
  h.open_breakers = 2;
  net::HealthMsg msg;
  msg.report = h;
  const auto d = net::HealthMsg::Decode(msg.Encode());
  ASSERT_TRUE(d);
  const auto& r = d->report;
  EXPECT_EQ(r.block_start, h.block_start);
  EXPECT_EQ(r.block_samples, h.block_samples);
  EXPECT_EQ(r.gap_count, h.gap_count);
  EXPECT_EQ(r.gap_samples, h.gap_samples);
  EXPECT_EQ(r.overlap_samples, h.overlap_samples);
  EXPECT_EQ(r.sanitized_samples, h.sanitized_samples);
  EXPECT_EQ(r.nonfinite_samples, h.nonfinite_samples);
  EXPECT_DOUBLE_EQ(r.saturation_fraction, h.saturation_fraction);
  EXPECT_EQ(r.shed_stage, h.shed_stage);
  EXPECT_DOUBLE_EQ(r.block_load, h.block_load);
  EXPECT_EQ(r.tagged_detections, h.tagged_detections);
  EXPECT_EQ(r.rejected_detections, h.rejected_detections);
  EXPECT_EQ(r.forwarded_intervals, h.forwarded_intervals);
  EXPECT_EQ(r.supervised_intervals, h.supervised_intervals);
  EXPECT_EQ(r.deadline_intervals, h.deadline_intervals);
  EXPECT_EQ(r.exception_intervals, h.exception_intervals);
  EXPECT_EQ(r.skipped_intervals, h.skipped_intervals);
  EXPECT_EQ(r.quarantined_intervals, h.quarantined_intervals);
  EXPECT_EQ(r.breaker_trips, h.breaker_trips);
  EXPECT_EQ(r.open_breakers, h.open_breakers);
}

TEST(Messages, GapReportRoundTripAndValidation) {
  net::GapReportMsg gap;
  gap.lost = {{1, 4}, {9, 9}, {20, 31}};
  const auto d = net::GapReportMsg::Decode(gap.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->lost, gap.lost);

  // Inverted range rejected.
  net::ByteWriter w;
  w.U32(1);
  w.U32(10);
  w.U32(3);
  const auto bytes = w.data();
  EXPECT_FALSE(net::GapReportMsg::Decode(bytes));
}

TEST(Messages, TruncatedAndHostileInputsRejected) {
  net::EventBatchMsg batch;
  batch.block_start = 1;
  batch.events.push_back(MakeEvent(10));
  auto bytes = batch.Encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(net::EventBatchMsg::Decode(prefix)) << "cut=" << cut;
  }
  // A count field demanding far more events than the payload could hold.
  net::ByteWriter w;
  w.I64(0);
  w.U32(1'000'000);
  const auto hostile = w.data();
  EXPECT_FALSE(net::EventBatchMsg::Decode(hostile));
}

// ------------------------------------------------------------- faulty link

TEST(FaultyLink, LosslessDeliversInOrder) {
  net::FaultyLink link({}, 1);
  for (int i = 0; i < 5; ++i) link.Send(Payload(10, std::uint8_t(i)));
  const auto out = link.Advance(1);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i][0], std::uint8_t(i));
  EXPECT_TRUE(link.faults().empty());
  EXPECT_EQ(link.frames_delivered(), 5u);
}

TEST(FaultyLink, DeterministicFromSeed) {
  net::FaultyLink::Config cfg;
  cfg.drop_rate = 0.3;
  cfg.duplicate_rate = 0.2;
  cfg.corrupt_rate = 0.2;
  cfg.reorder_rate = 0.3;
  cfg.jitter_ticks = 3;
  net::FaultyLink a(cfg, 99), b(cfg, 99);
  for (int t = 1; t <= 50; ++t) {
    a.Send(Payload(40, std::uint8_t(t)));
    b.Send(Payload(40, std::uint8_t(t)));
    EXPECT_EQ(a.Advance(t), b.Advance(t));
  }
  ASSERT_EQ(a.faults().size(), b.faults().size());
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    EXPECT_EQ(a.faults()[i].kind, b.faults()[i].kind);
    EXPECT_EQ(a.faults()[i].send_index, b.faults()[i].send_index);
  }
}

TEST(FaultyLink, DropsAreLoggedExactly) {
  net::FaultyLink::Config cfg;
  cfg.drop_rate = 0.5;
  net::FaultyLink link(cfg, 7);
  const int sends = 200;
  for (int i = 0; i < sends; ++i) link.Send(Payload(20));
  const auto out = link.Advance(10);
  std::size_t drops = 0;
  for (const auto& f : link.faults()) {
    if (f.kind == net::LinkFaultKind::kDrop) ++drops;
  }
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(out.size() + drops, static_cast<std::size_t>(sends));
}

TEST(FaultyLink, PartitionDiscardsAndLogs) {
  net::FaultyLink::Config cfg;
  cfg.partitions = {{5, 10}};
  net::FaultyLink link(cfg, 1);
  link.Send(Payload(10));  // tick 0: passes
  auto out = link.Advance(4);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(link.Partitioned(6));
  out = link.Advance(6);  // move the link clock inside the window
  EXPECT_TRUE(out.empty());
  link.Send(Payload(10));  // during the window: discarded
  out = link.Advance(20);
  EXPECT_TRUE(out.empty());
  std::size_t partition_faults = 0;
  for (const auto& f : link.faults()) {
    if (f.kind == net::LinkFaultKind::kPartition) ++partition_faults;
  }
  EXPECT_EQ(partition_faults, 1u);
  // After the window the link works again.
  link.Send(Payload(10));
  out = link.Advance(21);
  EXPECT_EQ(out.size(), 1u);
}

TEST(FaultyLink, CorruptionFlipsBytesButDelivers) {
  net::FaultyLink::Config cfg;
  cfg.corrupt_rate = 1.0;
  net::FaultyLink link(cfg, 3);
  const auto original = Payload(64);
  link.Send(original);
  const auto out = link.Advance(1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0], original);
  ASSERT_EQ(link.faults().size(), 1u);
  EXPECT_EQ(link.faults()[0].kind, net::LinkFaultKind::kCorrupt);
}

TEST(FaultyLink, DelayedFramesSurviveHoldbackIntact) {
  // Regression: compacting the in-flight queue used to self-move-assign
  // every held-back entry, destroying its bytes — a delayed frame was then
  // "delivered" empty and counted in frames_delivered().
  net::FaultyLink::Config cfg;
  cfg.base_delay_ticks = 3;
  net::FaultyLink link(cfg, 1);
  const auto a = Payload(24, 0xA1);
  const auto b = Payload(24, 0xB2);
  link.Send(a);
  link.Send(b);
  EXPECT_TRUE(link.Advance(1).empty());  // each early Advance re-compacts
  EXPECT_TRUE(link.Advance(2).empty());
  const auto out = link.Advance(3);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], a);
  EXPECT_EQ(out[1], b);
  EXPECT_EQ(link.frames_delivered(), 2u);
}

TEST(FaultyLink, ReorderedFramesDeliverIntact) {
  net::FaultyLink::Config cfg;
  cfg.reorder_rate = 1.0;
  cfg.reorder_max_ticks = 4;
  net::FaultyLink link(cfg, 5);
  const auto a = Payload(32, 0x11);
  const auto b = Payload(32, 0x22);
  link.Send(a);
  link.Send(b);
  std::vector<std::vector<std::uint8_t>> got;
  for (std::int64_t t = 1; t <= 10; ++t) {
    for (auto& f : link.Advance(t)) got.push_back(std::move(f));
  }
  ASSERT_EQ(got.size(), 2u);
  // Both frames arrive byte-identical regardless of the hold-back order.
  EXPECT_TRUE((got[0] == a && got[1] == b) || (got[0] == b && got[1] == a));
}

TEST(FaultyLink, FaultLogJsonHasOneLinePerRecord) {
  net::FaultyLink::Config cfg;
  cfg.drop_rate = 1.0;
  net::FaultyLink link(cfg, 2);
  link.Send(Payload(10));
  link.Send(Payload(10));
  (void)link.Advance(1);
  const auto json = link.FaultLogJson();
  std::size_t records = 0;
  for (std::size_t at = json.find("\"kind\""); at != std::string::npos;
       at = json.find("\"kind\"", at + 1)) {
    ++records;
  }
  EXPECT_EQ(records, 2u);
  EXPECT_NE(json.find("\"drop\""), std::string::npos);
}

// ---------------------------------------------------------------- session

TEST(Session, HelloFirstThenSequencedData) {
  net::SensorSession session({}, 1);
  session.Tick(1, 8000);
  const auto hello_out = session.TakeOutbound();
  ASSERT_GE(hello_out.size(), 1u);
  net::FrameParser parser;
  const auto f = RequireOne(parser, hello_out[0]);
  EXPECT_EQ(f.header.type, net::FrameType::kHello);
  EXPECT_EQ(f.header.seq, 0u);

  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(100));
  EXPECT_EQ(session.PublishEvents(batch), 1u);
  EXPECT_EQ(session.PublishHealth({}), 2u);
  EXPECT_EQ(session.unacked(), 2u);
}

TEST(Session, AckPopsRingAndStaleEpochIgnored) {
  net::SensorSession session({}, 1);
  session.Tick(1, 0);
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(1));
  session.PublishEvents(batch);
  session.PublishEvents(batch);
  ASSERT_EQ(session.unacked(), 2u);

  net::FrameHeader h;
  h.type = net::FrameType::kAck;
  // Stale epoch: ignored.
  net::AckMsg stale{2, session.epoch() + 1};
  session.HandleBytes(net::EncodeFrame(h, stale.Encode()));
  EXPECT_EQ(session.unacked(), 2u);
  EXPECT_EQ(session.stats().stale_acks, 1u);
  // Correct epoch: ring drains up to the cumulative point.
  net::AckMsg good{1, session.epoch()};
  session.HandleBytes(net::EncodeFrame(h, good.Encode()));
  EXPECT_EQ(session.unacked(), 1u);
  EXPECT_EQ(session.acked_seq(), 1u);
  EXPECT_EQ(session.state(), net::SensorSession::State::kConnected);
}

TEST(Session, RetransmitsWithPerFrameBackoffUntilAcked) {
  net::SensorSession::Config cfg;
  cfg.rto_ticks = 2;
  cfg.ack_timeout_ticks = 1000;  // keep the session out of backoff here
  net::SensorSession session(cfg, 1);
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(1));
  session.PublishEvents(batch);
  std::size_t copies = 0;
  for (int t = 1; t <= 10; ++t) {
    session.Tick(t, t * 8000);
    for (const auto& wire : session.TakeOutbound()) {
      net::FrameParser p;
      p.Feed(wire, [&](net::Frame&& f) {
        if (f.header.type == net::FrameType::kEventBatch) ++copies;
      });
    }
  }
  // Original + retransmits at RTO 2, 4, 8 (doubling) within 10 ticks.
  EXPECT_GE(copies, 3u);
  EXPECT_GT(session.stats().retransmits, 0u);
}

TEST(Session, RingOverflowProducesCumulativeGapReport) {
  net::SensorSession::Config cfg;
  cfg.retransmit_ring = 4;
  cfg.ack_timeout_ticks = 1000;
  net::SensorSession session(cfg, 1);
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(1));
  for (int i = 0; i < 10; ++i) session.PublishEvents(batch);
  EXPECT_GT(session.stats().ring_overflow_drops, 0u);
  const auto lost = session.lost_ranges();
  ASSERT_FALSE(lost.empty());
  EXPECT_EQ(lost.front().first, 1u);

  // The next tick ships a GapReport carrying the full merged list.
  session.Tick(1, 0);
  bool saw_gap = false;
  for (const auto& wire : session.TakeOutbound()) {
    net::FrameParser p;
    p.Feed(wire, [&](net::Frame&& f) {
      if (f.header.type != net::FrameType::kGapReport) return;
      const auto gap = net::GapReportMsg::Decode(f.payload);
      ASSERT_TRUE(gap);
      EXPECT_EQ(gap->lost, lost);
      saw_gap = true;
    });
  }
  EXPECT_TRUE(saw_gap);
}

TEST(Session, NoAckTimeoutEntersBackoffThenReconnectsWithNewEpoch) {
  net::SensorSession::Config cfg;
  cfg.ack_timeout_ticks = 3;
  cfg.backoff_base_ticks = 2;
  net::SensorSession session(cfg, 5);
  session.Tick(1, 0);
  const auto first_epoch = session.epoch();
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(1));
  session.PublishEvents(batch);
  (void)session.TakeOutbound();

  int t = 1;
  while (session.state() != net::SensorSession::State::kBackoff && t < 50) {
    session.Tick(++t, 0);
    (void)session.TakeOutbound();
  }
  ASSERT_EQ(session.state(), net::SensorSession::State::kBackoff);
  EXPECT_EQ(session.stats().reconnects, 1u);

  bool saw_rehello = false;
  while (t < 200 && !saw_rehello) {
    session.Tick(++t, 0);
    for (const auto& wire : session.TakeOutbound()) {
      net::FrameParser p;
      p.Feed(wire, [&](net::Frame&& f) {
        if (f.header.type != net::FrameType::kHello) return;
        const auto hello = net::HelloMsg::Decode(f.payload);
        ASSERT_TRUE(hello);
        EXPECT_GT(hello->epoch, first_epoch);
        saw_rehello = true;
      });
    }
  }
  EXPECT_TRUE(saw_rehello);
  EXPECT_GT(session.epoch(), first_epoch);
  // The unacked frame was re-offered with the reconnect.
  EXPECT_EQ(session.unacked(), 1u);
}

// -------------------------------------------------------------- aggregator

std::vector<std::uint8_t> DataFrame(std::uint16_t sensor, std::uint32_t seq,
                                    const net::EventBatchMsg& batch) {
  net::FrameHeader h;
  h.type = net::FrameType::kEventBatch;
  h.sensor_id = sensor;
  h.seq = seq;
  return net::EncodeFrame(h, batch.Encode());
}

std::vector<std::uint8_t> HelloFrame(std::uint16_t sensor, std::uint32_t epoch,
                                     std::int64_t local_time) {
  net::FrameHeader h;
  h.type = net::FrameType::kHello;
  h.sensor_id = sensor;
  const net::HelloMsg hello{epoch, local_time};
  return net::EncodeFrame(h, hello.Encode());
}

TEST(Aggregator, InOrderDeliveryAndDuplicateDiscard) {
  net::Aggregator agg;
  agg.Tick(1);
  agg.HandleBytes(0, HelloFrame(0, 1, 8000));  // offset estimate: 8000-8000=0
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(100));
  agg.HandleBytes(0, DataFrame(0, 1, batch));
  agg.HandleBytes(0, DataFrame(0, 1, batch));  // duplicate
  EXPECT_EQ(agg.fused().size(), 1u);
  EXPECT_EQ(agg.status(0).frames_delivered, 1u);
  EXPECT_EQ(agg.status(0).duplicates_dropped, 1u);
  EXPECT_EQ(agg.status(0).cum_seq, 1u);
}

TEST(Aggregator, DuplicateOfBufferedFrameCounted) {
  net::Aggregator agg;
  agg.Tick(1);
  agg.HandleBytes(0, HelloFrame(0, 1, 8000));
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(100));
  // Seq 2 parks in the reorder buffer (hole at 1); its re-delivery is a
  // duplicate even though it is above the cumulative watermark.
  agg.HandleBytes(0, DataFrame(0, 2, batch));
  agg.HandleBytes(0, DataFrame(0, 2, batch));
  EXPECT_EQ(agg.status(0).duplicates_dropped, 1u);
  agg.HandleBytes(0, DataFrame(0, 1, batch));
  EXPECT_EQ(agg.status(0).cum_seq, 2u);
  EXPECT_EQ(agg.status(0).frames_delivered, 2u);
}

TEST(Aggregator, FusedHistoryBoundedByConfig) {
  net::Aggregator::Config cfg;
  cfg.max_fused_history = 16;
  net::Aggregator agg(cfg);
  agg.Tick(1);
  agg.HandleBytes(0, HelloFrame(0, 1, 8000));
  for (std::uint32_t seq = 1; seq <= 40; ++seq) {
    net::EventBatchMsg batch;
    // Far apart: every event is a distinct fused entry.
    batch.events.push_back(MakeEvent(seq * 10'000));
    agg.HandleBytes(0, DataFrame(0, seq, batch));
  }
  EXPECT_LE(agg.fused().size(), 16u);
  EXPECT_EQ(agg.fused().size() + agg.fused_pruned(), 40u);
  // The surviving tail is the most recent events, and dedup still works
  // against it: a second witness of the newest event merges, not appends.
  EXPECT_EQ(agg.fused().back().start, 400'000);
  net::EventBatchMsg again;
  again.events.push_back(MakeEvent(400'000 + 10));
  agg.HandleBytes(0, DataFrame(0, 41, again));
  EXPECT_EQ(agg.fused().back().start, 400'000);
  EXPECT_GE(agg.merges(), 1u);
}

TEST(Aggregator, ReorderBufferReassembles) {
  net::Aggregator agg;
  agg.Tick(1);
  agg.HandleBytes(0, HelloFrame(0, 1, 8000));
  net::EventBatchMsg b1, b2, b3;
  b1.events.push_back(MakeEvent(1'000));
  b2.events.push_back(MakeEvent(50'000));
  b3.events.push_back(MakeEvent(100'000));
  agg.HandleBytes(0, DataFrame(0, 3, b3));
  agg.HandleBytes(0, DataFrame(0, 2, b2));
  EXPECT_TRUE(agg.fused().empty());  // hole at seq 1
  agg.HandleBytes(0, DataFrame(0, 1, b1));
  ASSERT_EQ(agg.fused().size(), 3u);
  EXPECT_EQ(agg.fused()[0].start, 1'000);
  EXPECT_EQ(agg.fused()[2].start, 100'000);
  EXPECT_EQ(agg.status(0).cum_seq, 3u);
}

TEST(Aggregator, GapReportAdvancesPastDeclaredLoss) {
  net::Aggregator agg;
  agg.Tick(1);
  agg.HandleBytes(0, HelloFrame(0, 1, 8000));
  net::EventBatchMsg b3;
  b3.events.push_back(MakeEvent(9'000));
  agg.HandleBytes(0, DataFrame(0, 3, b3));
  EXPECT_TRUE(agg.fused().empty());  // stuck behind seqs 1-2

  net::GapReportMsg gap;
  gap.lost = {{1, 2}};
  net::FrameHeader h;
  h.type = net::FrameType::kGapReport;
  h.sensor_id = 0;
  h.seq = 4;
  agg.HandleBytes(0, net::EncodeFrame(h, gap.Encode()));
  ASSERT_EQ(agg.fused().size(), 1u);
  EXPECT_EQ(agg.status(0).cum_seq, 4u);
  ASSERT_EQ(agg.status(0).lost_applied.size(), 1u);
  EXPECT_EQ(agg.status(0).lost_applied[0], (net::SeqRange{1, 2}));
  EXPECT_LT(agg.status(0).trust, 1.0);  // a gap drains trust
}

TEST(Aggregator, CorruptFramesCountedNeverDecoded) {
  net::Aggregator agg;
  agg.Tick(1);
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(100));
  auto wire = DataFrame(0, 1, batch);
  wire[net::kFrameHeaderBytes + 3] ^= 0x40;
  agg.HandleBytes(0, wire);
  EXPECT_TRUE(agg.fused().empty());
  EXPECT_EQ(agg.status(0).corrupt_dropped, 1u);
  EXPECT_EQ(agg.status(0).frames_delivered, 0u);
}

TEST(Aggregator, AlignsSkewedClocksAndDedupsAcrossSensors) {
  net::Aggregator::Config cfg;
  cfg.samples_per_tick = 8000;
  cfg.dedup_slack_samples = 64;
  net::Aggregator agg(cfg);
  agg.Tick(1);
  // Sensor 0 runs +500 samples fast, sensor 1 runs -300 slow; hellos sent at
  // tick 1 carry each sensor's local clock.
  agg.HandleBytes(0, HelloFrame(0, 1, 8000 + 500));
  agg.HandleBytes(1, HelloFrame(1, 1, 8000 - 300));

  const std::int64_t true_start = 123'000;
  net::EventBatchMsg from0, from1;
  from0.events.push_back(MakeEvent(true_start + 500));  // local timelines
  from1.events.push_back(MakeEvent(true_start - 300));
  agg.HandleBytes(0, DataFrame(0, 1, from0));
  agg.HandleBytes(1, DataFrame(1, 1, from1));

  ASSERT_EQ(agg.fused().size(), 1u);  // one transmission, two witnesses
  const auto& f = agg.fused()[0];
  EXPECT_EQ(f.start, true_start);
  EXPECT_EQ(f.witnesses, 2);
  EXPECT_EQ(f.sensor_mask, 0b11u);
  EXPECT_EQ(agg.merges(), 1u);
}

TEST(Aggregator, EventsBeforeFirstClockSampleAlignLater) {
  net::Aggregator agg;
  agg.Tick(1);
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(10'000 + 700));
  agg.HandleBytes(0, DataFrame(0, 1, batch));
  EXPECT_TRUE(agg.fused().empty());  // no offset estimate yet: held
  agg.HandleBytes(0, HelloFrame(0, 1, 8000 + 700));
  ASSERT_EQ(agg.fused().size(), 1u);
  EXPECT_EQ(agg.fused()[0].start, 10'000);
  EXPECT_EQ(agg.fused()[0].sensor_mask, 0b1u);
}

TEST(Aggregator, DistinctEventsStayDistinct) {
  net::Aggregator agg;
  agg.Tick(1);
  agg.HandleBytes(0, HelloFrame(0, 1, 8000));
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(1'000));
  batch.events.push_back(MakeEvent(1'000 + 200));  // outside 64-sample slack
  batch.events.push_back(MakeEvent(1'000, core::Protocol::kZigbee));
  agg.HandleBytes(0, DataFrame(0, 1, batch));
  EXPECT_EQ(agg.fused().size(), 3u);
  EXPECT_EQ(agg.merges(), 0u);
}

TEST(Aggregator, QuietSensorDegradesWithoutStallingOthers) {
  net::Aggregator::Config cfg;
  cfg.liveness_timeout_ticks = 5;
  net::Aggregator agg(cfg);
  agg.Tick(1);
  agg.HandleBytes(0, HelloFrame(0, 1, 8000));
  agg.HandleBytes(1, HelloFrame(1, 1, 8000));
  EXPECT_EQ(agg.live_sensors(), 2u);

  // Sensor 1 goes silent; sensor 0 keeps publishing.
  for (int t = 2; t <= 12; ++t) {
    net::EventBatchMsg batch;
    batch.events.push_back(MakeEvent(t * 8000));
    agg.HandleBytes(0, DataFrame(0, static_cast<std::uint32_t>(t - 1), batch));
    agg.Tick(t);
  }
  EXPECT_EQ(agg.live_sensors(), 1u);
  EXPECT_EQ(agg.status(1).state, net::Aggregator::SensorState::kDegraded);
  EXPECT_EQ(agg.status(1).degraded_transitions, 1u);
  EXPECT_EQ(agg.fused().size(), 11u);  // sensor 0 never stalled

  // A frame from sensor 1 revives it.
  agg.HandleBytes(1, HelloFrame(1, 2, 13 * 8000));
  EXPECT_EQ(agg.status(1).state, net::Aggregator::SensorState::kLive);
  EXPECT_EQ(agg.live_sensors(), 2u);
}

TEST(Aggregator, UntrustedSensorEventsHeldOut) {
  net::Aggregator::Config cfg;
  cfg.trust_floor = 0.9;
  cfg.trust_gap_penalty = 0.5;  // one gap drops below the floor
  net::Aggregator agg(cfg);
  agg.Tick(1);
  agg.HandleBytes(0, HelloFrame(0, 1, 8000));

  net::GapReportMsg gap;
  gap.lost = {{1, 1}};
  net::FrameHeader h;
  h.type = net::FrameType::kGapReport;
  h.sensor_id = 0;
  h.seq = 2;
  agg.HandleBytes(0, net::EncodeFrame(h, gap.Encode()));
  ASSERT_LT(agg.status(0).trust, 0.9);

  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(50'000));
  agg.HandleBytes(0, DataFrame(0, 3, batch));
  EXPECT_TRUE(agg.fused().empty());
  EXPECT_EQ(agg.status(0).events_held_untrusted, 1u);
}

TEST(Aggregator, MisroutedFrameDropped) {
  net::Aggregator agg;
  agg.Tick(1);
  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(100));
  agg.HandleBytes(3, DataFrame(7, 1, batch));  // header says 7, link says 3
  EXPECT_TRUE(agg.fused().empty());
  EXPECT_EQ(agg.status(3).frames_delivered, 0u);
}

// ------------------------------------------------------------------ fleet

TEST(Fleet, CleanLinksDeliverEndToEnd) {
  net::Fleet::Config cfg;
  cfg.sensors.resize(2);
  cfg.sensors[0].id = 0;
  cfg.sensors[0].clock_offset_samples = 900;
  cfg.sensors[1].id = 1;
  cfg.sensors[1].clock_offset_samples = -400;
  net::Fleet fleet(cfg);

  fleet.Run(2);  // hellos + acks flow; sessions connect
  EXPECT_EQ(fleet.session(0).state(), net::SensorSession::State::kConnected);
  EXPECT_EQ(fleet.session(1).state(), net::SensorSession::State::kConnected);

  // Both sensors hear the same transmission, each in its own clock.
  const std::int64_t true_start = 5'000;
  fleet.Publish(0, true_start + 900, {MakeEvent(true_start + 900)});
  fleet.Publish(1, true_start - 400, {MakeEvent(true_start - 400)});
  fleet.Run(4);

  ASSERT_EQ(fleet.aggregator().fused().size(), 1u);
  EXPECT_EQ(fleet.aggregator().fused()[0].start, true_start);
  EXPECT_EQ(fleet.aggregator().fused()[0].witnesses, 2);
  EXPECT_EQ(fleet.aggregator().fused()[0].sensor_mask, 0b11u);
  // Acks flowed back: nothing is waiting on a retransmit.
  EXPECT_EQ(fleet.session(0).unacked(), 0u);
  EXPECT_EQ(fleet.session(1).unacked(), 0u);
}

TEST(Fleet, MonitorSensorSinkBatchesPerBlock) {
  net::Fleet::Config cfg;
  cfg.sensors.resize(1);
  net::Fleet fleet(cfg);
  auto& sink = fleet.sink(0);

  // Block 1: health first (sink contract), then events.
  core::HealthReport h1;
  h1.block_start = 0;
  sink.OnHealth(h1);
  core::ProtocolEvent wifi;
  wifi.protocol = core::Protocol::kWifi80211b;
  wifi.start_sample = 1'000;
  wifi.end_sample = 2'000;
  wifi.crc_ok = true;
  sink.OnEvent(wifi);
  // Block 2's health flushes block 1's events as one batch.
  core::HealthReport h2;
  h2.block_start = 400'000;
  sink.OnHealth(h2);
  sink.Flush();
  EXPECT_EQ(sink.events_published(), 1u);

  fleet.Run(4);
  EXPECT_EQ(fleet.aggregator().fused().size(), 1u);
  EXPECT_EQ(fleet.aggregator().status(0).health.size(), 2u);
}

// ----------------------------------------- trace context on the wire (§13)

TEST(Messages, TraceContextRoundTripsOnAllDataMessages) {
  const rfdump::obs::TraceContext ctx{0x1122334455667788ull,
                                      0x99AABBCCDDEEFF00ull};

  net::EventBatchMsg batch;
  batch.block_start = 42;
  batch.ctx = ctx;
  batch.events.push_back(MakeEvent(100));
  const auto batch2 = net::EventBatchMsg::Decode(batch.Encode());
  ASSERT_TRUE(batch2);
  EXPECT_EQ(batch2->ctx, ctx);
  EXPECT_EQ(batch2->events, batch.events);

  net::HealthMsg health;
  health.report.block_start = 7;
  health.ctx = ctx;
  const auto health2 = net::HealthMsg::Decode(health.Encode());
  ASSERT_TRUE(health2);
  EXPECT_EQ(health2->ctx, ctx);

  net::GapReportMsg gap;
  gap.lost = {{3, 9}};
  gap.ctx = ctx;
  const auto gap2 = net::GapReportMsg::Decode(gap.Encode());
  ASSERT_TRUE(gap2);
  EXPECT_EQ(gap2->ctx, ctx);
  EXPECT_EQ(gap2->lost, gap.lost);
}

// ------------------------------------------------- metrics federation (§13)

TEST(Wire, MetricsFrameIsUnsequencedControlPlane) {
  EXPECT_FALSE(net::IsDataFrame(net::FrameType::kMetrics));
  EXPECT_STREQ(net::FrameTypeName(net::FrameType::kMetrics), "metrics");
  net::FrameHeader h;
  h.type = net::FrameType::kMetrics;
  h.sensor_id = 5;
  net::FrameParser parser;
  const auto f = RequireOne(parser, net::EncodeFrame(h, Payload(12)));
  EXPECT_EQ(f.header.type, net::FrameType::kMetrics);
}

TEST(Messages, MetricsMsgRoundTrip) {
  net::MetricsMsg m;
  m.snapshot_id = 17;
  m.full = 1;
  m.entries.push_back({"rfdump_session_frames_sent_total", 0, 12345.0});
  m.entries.push_back({"rfdump_session_unacked", 1, 3.0});
  m.entries.push_back({"weird\"name\\with\nspecials_total", 0, 0.5});
  const auto m2 = net::MetricsMsg::Decode(m.Encode());
  ASSERT_TRUE(m2);
  EXPECT_EQ(m2->snapshot_id, 17u);
  EXPECT_EQ(m2->full, 1);
  EXPECT_EQ(m2->entries, m.entries);
}

TEST(Messages, MetricsMsgHostileInputsRejected) {
  net::MetricsMsg m;
  m.snapshot_id = 1;
  m.entries.push_back({"ab", 0, 1.0});
  const auto wire = m.Encode();
  // Layout: u32 id, u8 full, u32 count, then u16 len + name + u8 kind + f64.
  ASSERT_TRUE(net::MetricsMsg::Decode(wire));

  // Every truncation fails cleanly rather than reading past the buffer.
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(net::MetricsMsg::Decode({wire.data(), n})) << n;
  }
  // full must be 0 or 1.
  auto bad = wire;
  bad[4] = 2;
  EXPECT_FALSE(net::MetricsMsg::Decode(bad));
  // Hostile entry count: implausible against the remaining payload.
  bad = wire;
  bad[5] = bad[6] = bad[7] = bad[8] = 0xFF;
  EXPECT_FALSE(net::MetricsMsg::Decode(bad));
  // Zero-length names are meaningless and rejected.
  bad = wire;
  bad[9] = bad[10] = 0;
  EXPECT_FALSE(net::MetricsMsg::Decode(bad));
  // Unknown metric kind (offset: 9 + 2 len bytes + 2 name bytes).
  bad = wire;
  bad[13] = 7;
  EXPECT_FALSE(net::MetricsMsg::Decode(bad));
}

TEST(Session, MetricsSnapshotsFollowHeartbeatCadence) {
  net::SensorSession::Config cfg;
  cfg.heartbeat_interval_ticks = 1;
  cfg.metrics_every_n_heartbeats = 2;
  cfg.ack_timeout_ticks = 1000;
  net::SensorSession session(cfg, 1);
  std::vector<net::MetricsMsg> shipped;
  for (int t = 1; t <= 9; ++t) {
    session.Tick(t, t * 8000);
    for (const auto& wire : session.TakeOutbound()) {
      net::FrameParser p;
      p.Feed(wire, [&](net::Frame&& f) {
        if (f.header.type != net::FrameType::kMetrics) return;
        const auto m = net::MetricsMsg::Decode(f.payload);
        ASSERT_TRUE(m);
        shipped.push_back(*m);
      });
    }
  }
  // A heartbeat per tick, a snapshot every 2nd heartbeat: 9 -> 4 snapshots.
  EXPECT_EQ(session.stats().heartbeats, 9u);
  ASSERT_EQ(shipped.size(), 4u);
  EXPECT_EQ(session.stats().metrics_snapshots, 4u);
  // Snapshot ids are monotonic from 1; the first snapshot is a full one.
  for (std::size_t i = 0; i < shipped.size(); ++i) {
    EXPECT_EQ(shipped[i].snapshot_id, i + 1);
  }
  EXPECT_EQ(shipped[0].full, 1);
  // Entries carry ABSOLUTE values (never increments): the heartbeat counter
  // reads 2 at the first snapshot (shipped after the 2nd heartbeat).
  bool found = false;
  for (const auto& e : shipped[0].entries) {
    if (e.name == "rfdump_session_heartbeats_total") {
      found = true;
      EXPECT_EQ(e.kind, 0);
      EXPECT_DOUBLE_EQ(e.value, 2.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Session, MetricsDeltaSkipsUnchangedEntriesAndFullSnapshotHeals) {
  net::SensorSession::Config cfg;
  cfg.heartbeat_interval_ticks = 1;
  cfg.metrics_every_n_heartbeats = 1;
  cfg.metrics_full_every = 3;  // snapshots 1, 4, 7... carry everything
  cfg.ack_timeout_ticks = 1000;
  net::SensorSession session(cfg, 1);
  std::vector<net::MetricsMsg> shipped;
  for (int t = 1; t <= 4; ++t) {
    session.Tick(t, t * 8000);
    for (const auto& wire : session.TakeOutbound()) {
      net::FrameParser p;
      p.Feed(wire, [&](net::Frame&& f) {
        if (f.header.type != net::FrameType::kMetrics) return;
        const auto m = net::MetricsMsg::Decode(f.payload);
        ASSERT_TRUE(m);
        shipped.push_back(*m);
      });
    }
  }
  ASSERT_GE(shipped.size(), 3u);
  const auto has = [](const net::MetricsMsg& m, std::string_view name) {
    for (const auto& e : m.entries) {
      if (e.name == name) return true;
    }
    return false;
  };
  // The full snapshot ships everything, gauges included.
  EXPECT_EQ(shipped[0].full, 1);
  EXPECT_TRUE(has(shipped[0], "rfdump_session_epoch"));
  EXPECT_TRUE(has(shipped[0], "rfdump_session_heartbeats_total"));
  // Deltas ship only what changed since the last SHIPPED values: the
  // heartbeat counter moved, the epoch gauge did not.
  EXPECT_EQ(shipped[1].full, 0);
  EXPECT_TRUE(has(shipped[1], "rfdump_session_heartbeats_total"));
  EXPECT_FALSE(has(shipped[1], "rfdump_session_epoch"));
  // metrics_full_every = 3: snapshot 4 is full again (self-healing).
  ASSERT_GE(shipped.size(), 4u);
  EXPECT_EQ(shipped[3].full, 1);
  EXPECT_TRUE(has(shipped[3], "rfdump_session_epoch"));
}

TEST(Session, MetricsFederateExtraRegistry) {
  rfdump::obs::Registry registry;  // a per-sensor registry, not the default
  registry.GetCounter("myapp_widgets_total").Inc(5);
  net::SensorSession::Config cfg;
  cfg.heartbeat_interval_ticks = 1;
  cfg.metrics_every_n_heartbeats = 1;
  cfg.metrics_registry = &registry;
  cfg.ack_timeout_ticks = 1000;
  net::SensorSession session(cfg, 1);
  session.Tick(1, 8000);
  bool saw_custom = false, saw_builtin = false;
  for (const auto& wire : session.TakeOutbound()) {
    net::FrameParser p;
    p.Feed(wire, [&](net::Frame&& f) {
      if (f.header.type != net::FrameType::kMetrics) return;
      const auto m = net::MetricsMsg::Decode(f.payload);
      ASSERT_TRUE(m);
      for (const auto& e : m->entries) {
        if (e.name == "myapp_widgets_total") {
          saw_custom = true;
          EXPECT_DOUBLE_EQ(e.value, 5.0);
        }
        if (e.name == "rfdump_session_heartbeats_total") saw_builtin = true;
      }
    });
  }
  // Built-in session stats federate in both compile modes (plain struct
  // fields); registry contents only exist with RFDUMP_OBS=ON.
  EXPECT_TRUE(saw_builtin);
#if RFDUMP_OBS_ENABLED
  EXPECT_TRUE(saw_custom);
#else
  EXPECT_FALSE(saw_custom);
#endif
}

TEST(Session, KarnRttSamplesOnlyFirstTransmissions) {
  net::SensorSession::Config cfg;
  cfg.rto_ticks = 100;
  cfg.heartbeat_interval_ticks = 1000;
  cfg.ack_timeout_ticks = 100000;
  net::SensorSession session(cfg, 1);
  session.Tick(1, 0);
  EXPECT_LT(session.stats().rtt_ticks, 0.0);  // no sample yet

  net::EventBatchMsg batch;
  batch.events.push_back(MakeEvent(1));
  session.PublishEvents(batch);  // seq 1, first sent at tick 1
  session.Tick(4, 0);
  net::FrameHeader h;
  h.type = net::FrameType::kAck;
  session.HandleBytes(net::EncodeFrame(h, net::AckMsg{1, 1}.Encode()));
  EXPECT_DOUBLE_EQ(session.stats().rtt_ticks, 3.0);  // first sample verbatim

  // A retransmitted frame never samples (Karn's algorithm): its ack can't
  // tell which transmission it answers.
  session.PublishEvents(batch);  // seq 2, first sent at tick 4
  session.Tick(104, 0);          // rto 100 expires -> retransmit
  EXPECT_GT(session.stats().retransmits, 0u);
  session.Tick(110, 0);
  session.HandleBytes(net::EncodeFrame(h, net::AckMsg{2, 1}.Encode()));
  EXPECT_DOUBLE_EQ(session.stats().rtt_ticks, 3.0);  // unchanged

  // The next clean sample folds in as an EWMA (7/8 old + 1/8 new).
  session.PublishEvents(batch);  // seq 3, first sent at tick 110
  session.Tick(115, 0);
  session.HandleBytes(net::EncodeFrame(h, net::AckMsg{3, 1}.Encode()));
  EXPECT_DOUBLE_EQ(session.stats().rtt_ticks, 0.875 * 3.0 + 0.125 * 5.0);
}

TEST(Aggregator, FederatedMetricsLastWriteWinsAndStaleDropped) {
  net::Aggregator agg;
  net::FrameHeader h;
  h.type = net::FrameType::kMetrics;
  h.sensor_id = 3;
  const auto snap = [&](std::uint32_t id, double v) {
    net::MetricsMsg m;
    m.snapshot_id = id;
    m.full = 1;
    m.entries.push_back({"demo_events_total", 0, v});
    return net::EncodeFrame(h, m.Encode());
  };
  const auto value = [&]() -> double {
    for (const auto& e : agg.federated(3)) {
      if (e.name == "demo_events_total") return e.value;
    }
    return -1.0;
  };

  agg.HandleBytes(3, snap(1, 5.0));
  EXPECT_DOUBLE_EQ(value(), 5.0);
  // Reordered delivery: id 3 lands, then the stale id 2 and a duplicated
  // id 3 — values are absolute, so neither can double-count.
  agg.HandleBytes(3, snap(3, 9.0));
  EXPECT_DOUBLE_EQ(value(), 9.0);
  agg.HandleBytes(3, snap(2, 7.0));
  EXPECT_DOUBLE_EQ(value(), 9.0);
  agg.HandleBytes(3, snap(3, 9.0));
  EXPECT_DOUBLE_EQ(value(), 9.0);

  const auto& st = agg.status(3);
  EXPECT_EQ(st.metrics_snapshot_id, 3u);
  EXPECT_EQ(st.metrics_snapshots_applied, 2u);
  EXPECT_EQ(st.metrics_stale_dropped, 2u);
}

TEST(Aggregator, FederatedExpositionLabelsEverySensor) {
  net::Aggregator agg;
  for (std::uint16_t id : {1, 2}) {
    net::FrameHeader h;
    h.type = net::FrameType::kMetrics;
    h.sensor_id = id;
    net::MetricsMsg m;
    m.snapshot_id = 1;
    m.full = 1;
    m.entries.push_back({"demo_events_total", 0, 10.0 * id});
    m.entries.push_back({"demo_depth", 1, 0.5});
    agg.HandleBytes(id, net::EncodeFrame(h, m.Encode()));
  }
  const std::string expo = agg.FederatedExposition();
  // Shipped sensor metrics are re-labeled per sensor...
  EXPECT_NE(expo.find("demo_events_total{sensor=\"1\"} 10"),
            std::string::npos);
  EXPECT_NE(expo.find("demo_events_total{sensor=\"2\"} 20"),
            std::string::npos);
  EXPECT_NE(expo.find("# TYPE demo_events_total counter"), std::string::npos);
  EXPECT_NE(expo.find("demo_depth{sensor=\"1\"} 0.5"), std::string::npos);
  // ...next to aggregator-native per-sensor and fleet-wide series.
  EXPECT_NE(expo.find("rfdump_agg_sensor_trust{sensor=\"1\"}"),
            std::string::npos);
  EXPECT_NE(expo.find("rfdump_agg_sensor_frames_delivered_total{sensor="),
            std::string::npos);
  EXPECT_NE(expo.find("rfdump_agg_live_sensors"), std::string::npos);
}

TEST(Aggregator, LyingMetricsPayloadRejectedWithoutDesyncOrCorruption) {
  // A kMetrics frame can be CRC-valid yet lie inside its payload (hostile
  // or version-skewed sensor): an entry count that doesn't match the bytes
  // present, entries cut short, an absurd count. The codec must reject it,
  // the per-sensor parser must stay in sync for the frames behind it, and
  // the federated registry must keep its last good snapshot untouched.
  net::Aggregator agg;
  net::FrameHeader mh;
  mh.type = net::FrameType::kMetrics;
  mh.sensor_id = 3;

  net::MetricsMsg good;
  good.snapshot_id = 1;
  good.full = 1;
  good.entries.push_back({"demo_events_total", 0, 5.0});
  good.entries.push_back({"demo_depth", 1, 0.25});
  agg.HandleBytes(3, HelloFrame(3, 1, 8000));
  agg.HandleBytes(3, net::EncodeFrame(mh, good.Encode()));
  ASSERT_EQ(agg.status(3).metrics_snapshots_applied, 1u);

  const auto value = [&](const std::string& name) -> double {
    for (const auto& e : agg.federated(3)) {
      if (e.name == name) return e.value;
    }
    return -1.0;
  };
  ASSERT_DOUBLE_EQ(value("demo_events_total"), 5.0);

  // Three lying payloads, all framed with a *valid* CRC. Each claims a
  // higher snapshot_id than the good one, so if any were wrongly applied
  // the registry (or the stale-drop ledger) would show it.
  std::vector<std::vector<std::uint8_t>> lies;
  {
    // Count says 2, bytes carry 1.5 entries: truncated mid-entry.
    net::MetricsMsg m;
    m.snapshot_id = 9;
    m.full = 1;
    m.entries.push_back({"demo_events_total", 0, 777.0});
    m.entries.push_back({"demo_depth", 1, 777.0});
    auto payload = m.Encode();
    payload.resize(payload.size() - 5);
    lies.push_back(net::EncodeFrame(mh, payload));
  }
  {
    // Count field inflated beyond the bytes that follow.
    net::MetricsMsg m;
    m.snapshot_id = 10;
    m.full = 1;
    m.entries.push_back({"demo_events_total", 0, 888.0});
    auto payload = m.Encode();
    payload[8] = 0xFF;  // count MSB; count lives after snapshot_id + full
    lies.push_back(net::EncodeFrame(mh, payload));
  }
  {
    // Entry name length runs past the payload end.
    net::MetricsMsg m;
    m.snapshot_id = 11;
    m.full = 1;
    m.entries.push_back({"x", 0, 999.0});
    auto payload = m.Encode();
    payload[9] = 0xFF;  // first entry's u16 name length, low byte
    payload[10] = 0x00;
    lies.push_back(net::EncodeFrame(mh, payload));
  }

  // Each lying frame rides in the same byte stream as a valid data frame
  // behind it: rejection must be payload-local, never a parser desync.
  net::EventBatchMsg batch;
  batch.block_start = 8000;
  batch.events = {MakeEvent(8000)};
  std::uint32_t seq = 0;
  for (const auto& lie : lies) {
    std::vector<std::uint8_t> stream = lie;
    const auto data = DataFrame(3, ++seq, batch);
    stream.insert(stream.end(), data.begin(), data.end());
    agg.HandleBytes(3, stream);
  }

  const auto& st = agg.status(3);
  EXPECT_EQ(st.frames_delivered, 3u);  // every trailing data frame landed
  EXPECT_EQ(st.metrics_snapshots_applied, 1u);   // only the good snapshot
  EXPECT_EQ(st.metrics_snapshot_id, 1u);         // ids 9/10/11 never stuck
  EXPECT_EQ(st.metrics_stale_dropped, 0u);
  EXPECT_DOUBLE_EQ(value("demo_events_total"), 5.0);
  EXPECT_DOUBLE_EQ(value("demo_depth"), 0.25);

  const auto& ps = agg.parse_stats(3);
  EXPECT_EQ(ps.bad_crc, 0u);          // the lies were CRC-valid frames
  EXPECT_EQ(ps.bad_magic_bytes, 0u);  // and never cost the parser a resync
  EXPECT_EQ(ps.frames_ok, 2u + static_cast<std::uint64_t>(lies.size()) * 2);

  // A later honest snapshot still applies normally.
  net::MetricsMsg heal;
  heal.snapshot_id = 2;
  heal.full = 1;
  heal.entries.push_back({"demo_events_total", 0, 6.0});
  agg.HandleBytes(3, net::EncodeFrame(mh, heal.Encode()));
  EXPECT_EQ(agg.status(3).metrics_snapshots_applied, 2u);
  EXPECT_DOUBLE_EQ(value("demo_events_total"), 6.0);
}

// ------------------------------------------- fleet status surface (§13)

// Minimal JSON reader: just enough grammar for FleetStatus::ToJson() output
// (objects, arrays, numbers, strings without exotic escapes, booleans).
struct Json {
  enum class Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  [[nodiscard]] const Json& at(const std::string& key) const {
    static const Json missing;
    const auto it = obj.find(key);
    return it == obj.end() ? missing : it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : s_(std::move(text)) {}

  bool Parse(Json* out) {
    pos_ = 0;
    return Value(out) && (Skip(), pos_ == s_.size());
  }

 private:
  void Skip() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  bool Value(Json* out) {
    Skip();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return Object(out);
    if (c == '[') return Array(out);
    if (c == '"') {
      out->kind = Json::Kind::kStr;
      return String(&out->str);
    }
    if (Literal("true")) {
      out->kind = Json::Kind::kBool;
      out->b = true;
      return true;
    }
    if (Literal("false")) {
      out->kind = Json::Kind::kBool;
      out->b = false;
      return true;
    }
    if (Literal("null")) return true;
    char* end = nullptr;
    out->num = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    out->kind = Json::Kind::kNum;
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    return true;
  }

  bool String(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: out->push_back(s_[pos_]); break;
        }
      } else {
        out->push_back(s_[pos_]);
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Object(Json* out) {
    out->kind = Json::Kind::kObj;
    ++pos_;  // '{'
    Skip();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (pos_ < s_.size()) {
      Skip();
      std::string key;
      if (!String(&key)) return false;
      Skip();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      Json v;
      if (!Value(&v)) return false;
      out->obj.emplace(std::move(key), std::move(v));
      Skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
    return false;
  }

  bool Array(Json* out) {
    out->kind = Json::Kind::kArr;
    ++pos_;  // '['
    Skip();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (pos_ < s_.size()) {
      Json v;
      if (!Value(&v)) return false;
      out->arr.push_back(std::move(v));
      Skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
    return false;
  }

  std::string s_;
  std::size_t pos_ = 0;
};

TEST(Fleet, StatusReportJsonRoundTripsSchema) {
  net::Fleet::Config cfg;
  cfg.sensors.resize(2);
  cfg.sensors[0].id = 0;
  cfg.sensors[0].session.metrics_every_n_heartbeats = 1;
  cfg.sensors[1].id = 1;
  net::Fleet fleet(cfg);
  fleet.Run(4);
  fleet.Publish(0, 100, {MakeEvent(100)});
  fleet.Run(4);

  const net::FleetStatus status = fleet.StatusReport();
  const std::string json = status.ToJson();
  // Deterministic rendering: the same snapshot serializes identically.
  EXPECT_EQ(json, status.ToJson());

  Json root;
  ASSERT_TRUE(JsonReader(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, Json::Kind::kObj);
  EXPECT_DOUBLE_EQ(root.at("tick").num, static_cast<double>(status.tick));
  EXPECT_DOUBLE_EQ(root.at("live_sensors").num,
                   static_cast<double>(status.live_sensors));
  EXPECT_DOUBLE_EQ(root.at("fused_events").num,
                   static_cast<double>(status.fused_events));
  EXPECT_EQ(root.at("merges").kind, Json::Kind::kNum);
  EXPECT_EQ(root.at("fused_pruned").kind, Json::Kind::kNum);
  ASSERT_EQ(root.at("sensors").arr.size(), 2u);

  const Json& s0 = root.at("sensors").arr[0];
  EXPECT_DOUBLE_EQ(s0.at("id").num, 0.0);
  const Json& sess = s0.at("session");
  ASSERT_EQ(sess.kind, Json::Kind::kObj);
  EXPECT_EQ(sess.at("state").str, "connected");
  for (const char* key :
       {"epoch", "acked_seq", "unacked", "frames_sent", "retransmits",
        "heartbeats", "reconnects", "ring_overflow_drops", "stale_acks",
        "metrics_snapshots", "rtt_ticks"}) {
    EXPECT_EQ(sess.at(key).kind, Json::Kind::kNum) << key;
  }
  EXPECT_EQ(sess.at("lost_ranges").kind, Json::Kind::kArr);
  EXPECT_DOUBLE_EQ(sess.at("frames_sent").num,
                   static_cast<double>(status.sensors[0].session.frames_sent));
  EXPECT_DOUBLE_EQ(
      sess.at("metrics_snapshots").num,
      static_cast<double>(status.sensors[0].session.metrics_snapshots));

  const Json& agg = s0.at("aggregator");
  ASSERT_EQ(agg.kind, Json::Kind::kObj);
  EXPECT_EQ(agg.at("known").kind, Json::Kind::kBool);
  EXPECT_TRUE(agg.at("known").b);
  EXPECT_TRUE(agg.at("live").b);
  EXPECT_EQ(agg.at("offset_known").kind, Json::Kind::kBool);
  for (const char* key :
       {"trust", "epoch", "cum_seq", "last_heard_tick", "clock_offset",
        "offset_updates", "frames_delivered", "duplicates_dropped",
        "corrupt_dropped", "reorder_overflow", "events_received",
        "events_held_untrusted", "degraded_transitions",
        "metrics_snapshots_applied", "health_reports"}) {
    EXPECT_EQ(agg.at(key).kind, Json::Kind::kNum) << key;
  }
  EXPECT_EQ(agg.at("lost_applied").kind, Json::Kind::kArr);
  EXPECT_DOUBLE_EQ(
      agg.at("events_received").num,
      static_cast<double>(status.sensors[0].agg.events_received));

  const Json& parse = s0.at("parse");
  ASSERT_EQ(parse.kind, Json::Kind::kObj);
  for (const char* key :
       {"frames_ok", "bad_magic_bytes", "bad_version", "bad_type",
        "bad_length", "bad_header_checksum", "bad_crc"}) {
    EXPECT_EQ(parse.at(key).kind, Json::Kind::kNum) << key;
  }
  EXPECT_DOUBLE_EQ(parse.at("frames_ok").num,
                   static_cast<double>(status.sensors[0].parse.frames_ok));
}

TEST(Fleet, StatusReportTextIsOneScreen) {
  net::Fleet::Config cfg;
  cfg.sensors.resize(1);
  net::Fleet fleet(cfg);
  fleet.Run(4);
  const std::string text = fleet.StatusReport().ToText();
  EXPECT_NE(text.find("fleet @ tick"), std::string::npos);
  EXPECT_NE(text.find("connected"), std::string::npos);
  EXPECT_NE(text.find("trust"), std::string::npos);
  EXPECT_LT(std::count(text.begin(), text.end(), '\n'), 8);
}

#if RFDUMP_OBS_ENABLED
TEST(Fleet, LinkedSpanChainCrossesSensorToAggregator) {
  namespace obs = rfdump::obs;
  obs::Tracer sensor_tracer, agg_tracer;
  sensor_tracer.Enable(1 << 12);
  agg_tracer.Enable(1 << 12);
  net::Fleet::Config cfg;
  cfg.sensors.resize(1);
  cfg.sensors[0].session.tracer = &sensor_tracer;
  cfg.aggregator.tracer = &agg_tracer;
  net::Fleet fleet(cfg);
  fleet.Run(2);
  fleet.Publish(0, 500, {MakeEvent(500)});
  fleet.Run(4);
  ASSERT_EQ(fleet.aggregator().fused().size(), 1u);

  // The publish span's context rode the EventBatchMsg across the wire, so
  // some aggregator span must continue its trace with the publish span as
  // parent — the cross-process link the merged fleet trace renders.
  bool linked = false;
  for (const auto& s : sensor_tracer.Events()) {
    if (std::string_view(s.name) != "session/publish_events") continue;
    ASSERT_NE(s.trace_id, 0u);
    for (const auto& a : agg_tracer.Events()) {
      if (a.trace_id == s.trace_id && a.parent_span == s.span_id &&
          std::string_view(a.name).substr(0, 4) == "agg/") {
        linked = true;
      }
    }
  }
  EXPECT_TRUE(linked);
}
#endif

}  // namespace
