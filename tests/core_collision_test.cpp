// Collision detector tests (paper future work, implemented here as an
// extension): overlapping transmissions produce power-profile steps; clean
// single bursts do not.

#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/core/collision.hpp"
#include "rfdump/core/pipeline.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/traffic/traffic.hpp"
#include "rfdump/util/rng.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
using rfdump::util::Xoshiro256;

namespace {

core::Peak MakePeak(std::int64_t start, std::int64_t len) {
  core::Peak p;
  p.start_sample = start;
  p.end_sample = start + len;
  return p;
}

// Constant-envelope burst with optional second transmitter overlapping
// [overlap_start, overlap_end).
dsp::SampleVec BurstWithOverlap(std::size_t len, std::size_t overlap_start,
                                std::size_t overlap_end, float amp2,
                                std::uint64_t seed) {
  dsp::SampleVec x(len, dsp::cfloat{1.0f, 0.0f});
  for (std::size_t i = overlap_start; i < overlap_end && i < len; ++i) {
    x[i] += dsp::cfloat{0.0f, amp2};
  }
  Xoshiro256 rng(seed);
  rfdump::channel::AddAwgn(x, 0.01, rng);
  return x;
}

TEST(Collision, CleanBurstNotFlagged) {
  core::CollisionDetector det;
  const auto x = BurstWithOverlap(8000, 0, 0, 0.0f, 1);
  const auto info = det.Analyze(MakePeak(0, 8000), x);
  EXPECT_FALSE(info.collided);
  ASSERT_EQ(info.segments.size(), 1u);
  EXPECT_EQ(info.segments[0].start_sample, 0);
  EXPECT_EQ(info.segments[0].end_sample, 8000);
}

TEST(Collision, MidBurstOverlapFlagged) {
  core::CollisionDetector det;
  // Second transmitter (same power) joins at 3000, leaves at 6000: two steps.
  const auto x = BurstWithOverlap(9000, 3000, 6000, 1.0f, 2);
  const auto info = det.Analyze(MakePeak(0, 9000), x);
  ASSERT_TRUE(info.collided);
  ASSERT_GE(info.boundaries.size(), 2u);
  EXPECT_NEAR(static_cast<double>(info.boundaries[0]), 3000.0, 256.0);
  EXPECT_NEAR(static_cast<double>(info.boundaries[1]), 6000.0, 256.0);
  EXPECT_GE(info.segments.size(), 3u);
}

TEST(Collision, WeakOverlapBelowThresholdIgnored) {
  core::CollisionDetector det;
  // +0.3 amplitude on power 1.0 -> step ratio ~1.09 < 2.0.
  const auto x = BurstWithOverlap(9000, 3000, 6000, 0.3f, 3);
  const auto info = det.Analyze(MakePeak(0, 9000), x);
  EXPECT_FALSE(info.collided);
}

TEST(Collision, ShortBlipRejectedByPersistence) {
  core::CollisionDetector det;
  // 60-sample spike: shorter than the 128-sample persistence requirement.
  const auto x = BurstWithOverlap(9000, 3000, 3060, 2.0f, 4);
  const auto info = det.Analyze(MakePeak(0, 9000), x);
  EXPECT_FALSE(info.collided);
}

TEST(Collision, TinyPeakPassesThrough) {
  core::CollisionDetector det;
  const auto x = BurstWithOverlap(100, 0, 0, 0.0f, 5);
  const auto info = det.Analyze(MakePeak(0, 100), x);
  EXPECT_FALSE(info.collided);
  EXPECT_EQ(info.segments.size(), 1u);
}

TEST(Collision, AbsolutePositionsAnchored) {
  core::CollisionDetector det;
  const auto x = BurstWithOverlap(9000, 4000, 9000, 1.0f, 6);
  const auto info = det.Analyze(MakePeak(50000, 9000), x);
  ASSERT_TRUE(info.collided);
  EXPECT_NEAR(static_cast<double>(info.boundaries[0]), 54000.0, 256.0);
}

TEST(Collision, PipelineFlagsRealCollision) {
  // Overlap a Wi-Fi frame and a Bluetooth burst in the emulator and check
  // the pipeline reports a collision detection.
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wcfg;
  wcfg.count = 1;
  wcfg.snr_db = 20.0;
  rfdump::traffic::L2PingConfig bcfg;
  bcfg.count = 30;
  bcfg.snr_db = 28.0;  // 8 dB above the Wi-Fi signal: a clear power step
  rfdump::traffic::GenerateUnicastPing(ether, wcfg, 8000);
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bcfg, 9000);
  const auto x = ether.Render(bs.end_sample + 8000);

  core::RFDumpPipeline::Config cfg;
  cfg.collision_detector = true;
  cfg.analysis.demodulate = false;
  core::RFDumpPipeline pipeline(cfg);
  const auto report = pipeline.Process(x);
  std::size_t collisions = 0;
  for (const auto& d : report.detections) {
    if (std::string(d.detector) == "collision") ++collisions;
  }
  EXPECT_GE(collisions, 1u);
}

TEST(Collision, PipelineQuietOnCleanTraffic) {
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wcfg;
  wcfg.count = 4;
  wcfg.snr_db = 20.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wcfg, 8000);
  const auto x = ether.Render(ws.end_sample + 8000);

  core::RFDumpPipeline::Config cfg;
  cfg.collision_detector = true;
  cfg.analysis.demodulate = false;
  core::RFDumpPipeline pipeline(cfg);
  const auto report = pipeline.Process(x);
  std::size_t collisions = 0;
  for (const auto& d : report.detections) {
    if (std::string(d.detector) == "collision") ++collisions;
  }
  EXPECT_EQ(collisions, 0u);
}

}  // namespace
