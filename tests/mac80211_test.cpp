// 802.11 MAC framing tests.

#include <gtest/gtest.h>

#include "rfdump/mac80211/frames.hpp"
#include "rfdump/core/protocols.hpp"
#include "rfdump/mac80211/timing.hpp"

namespace mac = rfdump::mac80211;

namespace {

const mac::MacAddress kA = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55};
const mac::MacAddress kB = {0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB};
const mac::MacAddress kAp = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};

TEST(MacFrames, DataFrameRoundTrip) {
  const auto body = mac::BuildIcmpEchoBody(false, 0x1234, 42, 64);
  const auto bytes = mac::BuildDataFrame(kB, kA, kAp, 7, body, 314);
  EXPECT_EQ(bytes.size(), mac::DataFrameBytes(body.size()));
  const auto frame = mac::ParseFrame(bytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, mac::FrameKind::kData);
  EXPECT_EQ(frame->addr1, kB);
  EXPECT_EQ(frame->addr2, kA);
  EXPECT_EQ(frame->addr3, kAp);
  EXPECT_EQ(frame->sequence, 7);
  EXPECT_EQ(frame->duration, 314);
  EXPECT_EQ(frame->body, body);
}

TEST(MacFrames, AckFrame) {
  const auto bytes = mac::BuildAckFrame(kA);
  EXPECT_EQ(bytes.size(), mac::kAckFrameBytes);
  const auto frame = mac::ParseFrame(bytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, mac::FrameKind::kAck);
  EXPECT_EQ(frame->addr1, kA);
}

TEST(MacFrames, BeaconFrame) {
  const auto bytes = mac::BuildBeaconFrame(kAp, kAp, 100, "emulab", 123456);
  const auto frame = mac::ParseFrame(bytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, mac::FrameKind::kBeacon);
  EXPECT_EQ(frame->addr1, mac::kBroadcast);
  EXPECT_EQ(frame->sequence, 100);
  // SSID is recoverable from the body.
  const std::string ssid(frame->body.begin() + 14, frame->body.begin() + 20);
  EXPECT_EQ(ssid, "emulab");
}

TEST(MacFrames, FcsCorruptionRejected) {
  const auto body = mac::BuildIcmpEchoBody(true, 1, 2, 16);
  auto bytes = mac::BuildDataFrame(kB, kA, kAp, 3, body);
  bytes[30] ^= 0x01;
  EXPECT_FALSE(mac::ParseFrame(bytes).has_value());
}

TEST(MacFrames, TooShortRejected) {
  std::vector<std::uint8_t> tiny(5, 0);
  EXPECT_FALSE(mac::ParseFrame(tiny).has_value());
}

TEST(MacFrames, IcmpSeqRecoverable) {
  for (std::uint16_t seq : {0, 1, 255, 30000}) {
    const auto body = mac::BuildIcmpEchoBody(false, 99, seq, 472);
    EXPECT_EQ(body.size(), mac::IcmpEchoBodyBytes(472));
    const auto got = mac::ParseIcmpEchoSeq(body);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, seq);
  }
}

TEST(MacFrames, IcmpParserRejectsNonIcmp) {
  std::vector<std::uint8_t> junk(50, 0xEE);
  EXPECT_FALSE(mac::ParseIcmpEchoSeq(junk).has_value());
  EXPECT_FALSE(mac::ParseIcmpEchoSeq({}).has_value());
}

TEST(MacFrames, EchoRequestVsReplyDiffer) {
  const auto req = mac::BuildIcmpEchoBody(false, 1, 5, 32);
  const auto rep = mac::BuildIcmpEchoBody(true, 1, 5, 32);
  EXPECT_NE(req, rep);
  EXPECT_EQ(req.size(), rep.size());
}

TEST(MacFrames, AddressFormatting) {
  EXPECT_EQ(mac::ToString(kA), "00:11:22:33:44:55");
  EXPECT_EQ(mac::ToString(mac::kBroadcast), "ff:ff:ff:ff:ff:ff");
}

TEST(MacTiming, DerivedConstants) {
  EXPECT_DOUBLE_EQ(mac::kDifsUs, 50.0);
  EXPECT_DOUBLE_EQ(mac::kSifsUs, 10.0);
  EXPECT_DOUBLE_EQ(mac::kSlotTimeUs, 20.0);
}

TEST(ProtocolRegistry, TableCoversAllProtocols) {
  using rfdump::core::Protocol;
  const auto table = rfdump::core::FeatureTable();
  EXPECT_GE(table.size(), 7u);
  EXPECT_EQ(rfdump::core::FeaturesFor(Protocol::kWifi80211b).size(), 4u);
  EXPECT_EQ(rfdump::core::FeaturesFor(Protocol::kBluetooth).size(), 1u);
  // Names render.
  for (const auto& row : table) {
    EXPECT_NE(std::string(rfdump::core::ProtocolName(row.protocol)), "?");
    EXPECT_NE(std::string(rfdump::core::ModulationName(row.modulation)), "?");
  }
}

}  // namespace
