// Chaos suite for the multi-sensor fleet (DESIGN.md §12): seeded fault
// profiles drive a 3-sensor fleet through drop / duplicate / reorder /
// corrupt / partition injection, and for every profile the fused view must
// equal the union of what each sensor published minus the losses the
// aggregator's gap ledger records — with zero corrupt frames accepted and
// zero cross-sensor duplicate decodes. A fully partitioned sensor must
// degrade without stalling the healthy sensors and recover through the
// session's backoff reconnect. A final test runs two *real* monitors
// (emu::FrontEnd with distinct impairments and clock skew over one shared
// emu::Ether) through MonitorSensorSink into the fleet.
//
// On failure, each link's ground-truth fault log is written as JSON to
// $RFDUMP_FAULT_LOG_DIR (or the working directory) so a red CI run carries
// its own repro data (.github/workflows/ci.yml uploads them as artifacts).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "rfdump/core/streaming.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/emu/frontend.hpp"
#include "rfdump/net/fleet.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace emu = rfdump::emu;
namespace net = rfdump::net;

namespace {

constexpr std::int64_t kSamplesPerTick = 8000;
constexpr std::int64_t kEventSpacing = 10'000;  // >> dedup slack (64)

struct Profile {
  const char* name;
  std::uint64_t seed;
  net::FaultyLink::Config link;  // applied to uplinks and downlinks
  std::vector<net::FaultyLink::Config::Window> partitions0;  // sensor 0 only
};

std::vector<Profile> Profiles() {
  std::vector<Profile> out;
  auto add = [&](const char* name, std::uint64_t seed, double drop, double dup,
                 double reorder, double corrupt) {
    Profile p;
    p.name = name;
    p.seed = seed;
    p.link.drop_rate = drop;
    p.link.duplicate_rate = dup;
    p.link.reorder_rate = reorder;
    p.link.corrupt_rate = corrupt;
    p.link.reorder_max_ticks = 6;
    out.push_back(p);
  };
  add("light-drop", 101, 0.10, 0.0, 0.0, 0.0);
  add("heavy-drop", 102, 0.30, 0.0, 0.0, 0.0);
  add("duplicates", 103, 0.0, 0.30, 0.0, 0.0);
  add("reorder", 104, 0.0, 0.0, 0.40, 0.0);
  add("corrupt", 105, 0.0, 0.0, 0.0, 0.20);
  add("drop+corrupt", 106, 0.15, 0.0, 0.0, 0.15);
  add("drop+dup+reorder", 107, 0.20, 0.20, 0.20, 0.0);
  add("everything", 108, 0.15, 0.15, 0.15, 0.15);
  add("brutal-drop", 109, 0.50, 0.0, 0.0, 0.0);
  add("corrupt+reorder", 110, 0.0, 0.0, 0.30, 0.40);
  add("kitchen-sink", 111, 0.25, 0.25, 0.25, 0.25);
  // Partition profiles: sensor 0's links go fully dark mid-run.
  add("partition", 112, 0.0, 0.0, 0.0, 0.0);
  out.back().partitions0 = {{10, 30}};
  add("partition+drop", 113, 0.15, 0.0, 0.0, 0.10);
  out.back().partitions0 = {{12, 26}};
  return out;
}

/// One synthetic over-the-air transmission every sensor hears.
net::EventRecord TrueEvent(std::size_t index, std::int64_t clock_offset) {
  net::EventRecord e;
  e.protocol = core::Protocol::kWifi80211b;
  e.channel = -1;
  const std::int64_t true_start =
      100'000 + static_cast<std::int64_t>(index) * kEventSpacing;
  e.start_sample = true_start + clock_offset;  // sensor-local timeline
  e.end_sample = e.start_sample + 2'000;
  e.payload_bytes = 100;
  e.crc_ok = true;
  e.payload_digest = 0xE000000 + index;  // unique identity per transmission
  return e;
}

bool InRanges(const std::vector<net::SeqRange>& ranges, std::uint32_t seq) {
  for (const auto& r : ranges) {
    if (seq >= r.first && seq <= r.last) return true;
  }
  return false;
}

void DumpFaultLogs(const Profile& profile, net::Fleet& fleet) {
  const char* dir = std::getenv("RFDUMP_FAULT_LOG_DIR");
  const std::string base = dir ? std::string(dir) + "/" : std::string();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (const char* which : {"uplink", "downlink"}) {
      auto& link = which[0] == 'u' ? fleet.uplink(i) : fleet.downlink(i);
      const std::string path = base + "fault_log_" + profile.name +
                               "_sensor" + std::to_string(i) + "_" + which +
                               ".json";
      std::ofstream out(path);
      out << link.FaultLogJson();
    }
  }
}

/// A red run also carries its observability state: the merged fleet trace
/// (chrome://tracing) and the federated Prometheus exposition land next to
/// the fault logs so CI artifacts hold the full picture.
void DumpObsArtifacts(
    const Profile& profile, net::Fleet& fleet,
    const std::vector<std::unique_ptr<rfdump::obs::Tracer>>& tracers,
    rfdump::obs::Tracer& agg_tracer) {
  const char* dir = std::getenv("RFDUMP_FAULT_LOG_DIR");
  const std::string base = dir ? std::string(dir) + "/" : std::string();
  std::vector<rfdump::obs::ProcessTrace> procs;
  for (std::size_t i = 0; i < tracers.size(); ++i) {
    procs.push_back({"sensor-" + std::to_string(i),
                     static_cast<std::uint32_t>(i + 1),
                     tracers[i]->Events()});
  }
  procs.push_back({"aggregator", static_cast<std::uint32_t>(tracers.size() + 1),
                   agg_tracer.Events()});
  std::ofstream(base + "fleet_trace_" + profile.name + ".json")
      << rfdump::obs::ExportFleetChromeJson(procs);
  std::ofstream(base + "fleet_metrics_" + profile.name + ".prom")
      << fleet.aggregator().FederatedExposition();
}

/// Runs one profile and checks the exact-recovery invariant.
void RunProfile(const Profile& profile) {
  SCOPED_TRACE(profile.name);
  constexpr std::size_t kSensors = 3;
  const std::int64_t offsets[kSensors] = {900, -1'300, 4'000};

  // Observability rides along with every profile: per-sensor tracers and
  // registries plus metrics federation, so the sweep doubles as proof that
  // traces and counters survive the same chaos the data plane does.
  std::vector<std::unique_ptr<rfdump::obs::Tracer>> tracers;
  std::vector<std::unique_ptr<rfdump::obs::Registry>> registries;
  for (std::size_t i = 0; i < kSensors; ++i) {
    tracers.push_back(std::make_unique<rfdump::obs::Tracer>());
    tracers.back()->Enable(1 << 14);
    registries.push_back(std::make_unique<rfdump::obs::Registry>());
  }
  rfdump::obs::Tracer agg_tracer;
  agg_tracer.Enable(1 << 15);

  net::Fleet::Config cfg;
  cfg.samples_per_tick = kSamplesPerTick;
  // Equality profiles must not hold events back on trust: trust is exercised
  // in net_test.cpp, here every delivered event must reach the fused view.
  cfg.aggregator.trust_floor = 0.0;
  cfg.aggregator.tracer = &agg_tracer;
  cfg.sensors.resize(kSensors);
  for (std::size_t i = 0; i < kSensors; ++i) {
    auto& s = cfg.sensors[i];
    s.id = static_cast<std::uint16_t>(i);
    s.clock_offset_samples = offsets[i];
    s.seed = profile.seed * 10 + i;
    s.uplink = profile.link;
    s.downlink = profile.link;
    s.session.retransmit_ring = 32;  // small enough to overflow when brutal
    s.session.tracer = tracers[i].get();
    s.session.metrics_registry = registries[i].get();
    s.session.metrics_every_n_heartbeats = 1;
    if (i == 0) {
      s.uplink.partitions = profile.partitions0;
      s.downlink.partitions = profile.partitions0;
    }
  }
  net::Fleet fleet(cfg);

  // Warm-up: hellos/heartbeats flow so every clock-offset estimate converges
  // before the first event batch (base delay is 0, so the estimate is exact).
  // The warm-up runs lossless — calibration-before-chaos: once the offset is
  // exact it can never regress (the min-filter only accepts candidates that
  // are never below the true offset), but an event fused under a *wrong*
  // early estimate is never re-aligned, which would show up as a duplicate.
  fleet.SetLossless(true);
  fleet.Run(8);
  fleet.SetLossless(false);

  // Publish phase: every tick, every sensor reports the same transmissions
  // in its own clock. Remember which event went out under which seq.
  std::map<std::uint16_t, std::map<std::uint32_t, std::vector<std::uint64_t>>>
      published;  // sensor -> seq -> digests
  std::uint64_t events_published[kSensors] = {};
  std::size_t next_event = 0;
  for (int t = 0; t < 40; ++t) {
    std::vector<net::EventRecord> heard[kSensors];
    for (int k = 0; k < 2; ++k) {
      for (std::size_t i = 0; i < kSensors; ++i) {
        heard[i].push_back(TrueEvent(next_event, offsets[i]));
      }
      ++next_event;
    }
    for (std::size_t i = 0; i < kSensors; ++i) {
      std::vector<std::uint64_t> digests;
      for (const auto& e : heard[i]) digests.push_back(e.payload_digest);
      const auto seq =
          fleet.Publish(i, heard[i].front().start_sample, heard[i]);
      published[fleet.sensor_id(i)][seq] = digests;
      // Ground truth for the federation check: the test owns this counter,
      // so its expected final value is exact, not derived from the wire.
      registries[i]->GetCounter("chaos_events_published_total")
          .Inc(static_cast<std::uint64_t>(heard[i].size()));
      events_published[i] += heard[i].size();
    }
    fleet.Tick();
  }

  // Drain phase: no new faults; retransmission converges deterministically.
  fleet.SetLossless(true);
  fleet.Run(200);

  auto& agg = fleet.aggregator();
  std::uint64_t corrupt_injected = 0;
  for (std::size_t i = 0; i < kSensors; ++i) {
    for (const auto& f : fleet.uplink(i).faults()) {
      if (f.kind == net::LinkFaultKind::kCorrupt) ++corrupt_injected;
    }
    // After the drain every session has nothing left in flight.
    EXPECT_EQ(fleet.session(i).unacked(), 0u) << "sensor " << i;
    // The aggregator never invents loss: every applied gap was declared by
    // the sensor. (The reverse need not hold — a frame can be declared lost
    // after its original copy was already delivered, e.g. when lost acks
    // overflow the ring; the aggregator rightly counts it delivered.)
    const auto& st = agg.status(fleet.sensor_id(i));
    const auto declared = fleet.session(i).lost_ranges();
    std::uint64_t lost_frames = 0;
    for (const auto& r : st.lost_applied) {
      lost_frames += r.last - r.first + 1;
      for (std::uint32_t seq = r.first; seq <= r.last; ++seq) {
        EXPECT_TRUE(InRanges(declared, seq))
            << "sensor " << i << " applied undeclared loss, seq " << seq;
      }
    }
    // Loss is explicit, never silent: delivery + the gap ledger account for
    // every sequence number up to the watermark.
    EXPECT_EQ(st.frames_delivered + lost_frames, st.cum_seq)
        << "sensor " << i;
  }

  // Expected fused view: the union over sensors of every published digest
  // whose carrying frame was not recorded lost.
  std::set<std::uint64_t> expected;
  for (std::size_t i = 0; i < kSensors; ++i) {
    const auto id = fleet.sensor_id(i);
    const auto& lost = agg.status(id).lost_applied;
    for (const auto& [seq, digests] : published[id]) {
      if (InRanges(lost, seq)) continue;
      expected.insert(digests.begin(), digests.end());
    }
  }

  std::set<std::uint64_t> fused;
  for (const auto& f : agg.fused()) {
    // Zero cross-sensor duplicate decodes: each transmission appears once.
    EXPECT_TRUE(fused.insert(f.payload_digest).second)
        << "duplicate fused event, digest " << f.payload_digest;
    // Zero corrupt frames accepted: everything in the fused view is an
    // event some sensor actually published.
    EXPECT_GE(f.payload_digest, 0xE000000u);
    EXPECT_LT(f.payload_digest, 0xE000000u + next_event);
  }
  EXPECT_EQ(fused, expected);

  if (profile.link.corrupt_rate > 0.0) {
    EXPECT_GT(corrupt_injected, 0u);  // the profile actually exercised CRC
  }

  // Metrics federation survives the same chaos: snapshots are unsequenced
  // and droppable, but absolute values + the periodic full snapshot heal
  // through the lossless drain, so the aggregator's last-write-wins view
  // must land on the exact per-sensor truth — never double-counted by the
  // duplicates and retransmits the profile injected.
  for (std::size_t i = 0; i < kSensors; ++i) {
    const auto id = fleet.sensor_id(i);
    EXPECT_GT(agg.status(id).metrics_snapshots_applied, 0u) << "sensor " << i;
    bool saw_builtin = false;
    double chaos_counter = -1.0;
    for (const auto& e : agg.federated(id)) {
      if (e.name == "rfdump_session_heartbeats_total") saw_builtin = true;
      if (e.name == "chaos_events_published_total") chaos_counter = e.value;
    }
    EXPECT_TRUE(saw_builtin) << "sensor " << i;
#if RFDUMP_OBS_ENABLED
    EXPECT_DOUBLE_EQ(chaos_counter,
                     static_cast<double>(events_published[i]))
        << "sensor " << i;
#else
    EXPECT_EQ(chaos_counter, -1.0) << "sensor " << i;  // registry is a no-op
    (void)events_published;
#endif
  }

#if RFDUMP_OBS_ENABLED
  // Trace context survives the wire: at least one publish span recorded on
  // a sensor must continue into the aggregator — same trace_id, and the
  // aggregator span parented under the sensor's span_id.
  std::vector<rfdump::obs::Tracer::Event> agg_events = agg_tracer.Events();
  bool chain_found = false;
  for (std::size_t i = 0; i < kSensors && !chain_found; ++i) {
    for (const auto& pub : tracers[i]->Events()) {
      if (std::string_view(pub.name) != "session/publish_events" ||
          pub.trace_id == 0) {
        continue;
      }
      for (const auto& ev : agg_events) {
        if (ev.trace_id == pub.trace_id && ev.parent_span == pub.span_id) {
          chain_found = true;
          break;
        }
      }
      if (chain_found) break;
    }
  }
  EXPECT_TRUE(chain_found)
      << "no sensor->aggregator span chain survived profile "
      << profile.name;
#endif

  if (::testing::Test::HasFailure()) {
    DumpFaultLogs(profile, fleet);
    DumpObsArtifacts(profile, fleet, tracers, agg_tracer);
  }
}

TEST(NetChaos, SweepRecoversExactlyAcrossFaultProfiles) {
  const auto profiles = Profiles();
  ASSERT_GE(profiles.size(), 10u);
  for (const auto& p : profiles) RunProfile(p);
}

TEST(NetChaos, PartitionedSensorDegradesAndReconnects) {
  net::Fleet::Config cfg;
  cfg.samples_per_tick = kSamplesPerTick;
  cfg.aggregator.trust_floor = 0.0;
  cfg.aggregator.liveness_timeout_ticks = 6;
  cfg.sensors.resize(2);
  cfg.sensors[0].id = 0;
  cfg.sensors[0].seed = 11;
  cfg.sensors[0].session.ack_timeout_ticks = 4;
  cfg.sensors[0].session.backoff_base_ticks = 2;
  cfg.sensors[0].session.backoff_max_ticks = 8;
  cfg.sensors[0].uplink.partitions = {{10, 40}};
  cfg.sensors[0].downlink.partitions = {{10, 40}};
  cfg.sensors[1].id = 1;
  cfg.sensors[1].seed = 12;
  net::Fleet fleet(cfg);

  fleet.Run(5);
  ASSERT_EQ(fleet.aggregator().live_sensors(), 2u);

  // Through the partition both sensors keep publishing.
  std::size_t idx = 0;
  for (int t = 0; t < 45; ++t) {
    fleet.Publish(0, 0, {TrueEvent(idx++, 0)});
    fleet.Publish(1, 0, {TrueEvent(idx++, 0)});
    fleet.Tick();
  }

  // Mid-partition snapshot semantics checked after the fact via counters:
  // the partitioned sensor was marked degraded and entered backoff at least
  // once, while the healthy sensor kept the fused view growing.
  EXPECT_GE(fleet.aggregator().status(0).degraded_transitions, 1u);
  EXPECT_GE(fleet.session(0).stats().reconnects, 1u);
  EXPECT_GT(fleet.aggregator().fused().size(), 20u);

  // After the window, backoff reconnect must restore the sensor: new epoch,
  // live again, and its backlog (ring + gap reports) reaches the aggregator.
  fleet.SetLossless(true);
  fleet.Run(120);
  EXPECT_EQ(fleet.aggregator().status(0).state,
            net::Aggregator::SensorState::kLive);
  EXPECT_EQ(fleet.aggregator().live_sensors(), 2u);
  EXPECT_GT(fleet.session(0).epoch(), 1u);
  EXPECT_EQ(fleet.session(0).unacked(), 0u);
  // Every event either arrived or is covered by the explicit gap ledger.
  const auto& st = fleet.aggregator().status(0);
  std::uint64_t lost_frames = 0;
  for (const auto& r : st.lost_applied) lost_frames += r.last - r.first + 1;
  EXPECT_EQ(st.frames_delivered + lost_frames, st.cum_seq);
}

// ------------------------------------------------- real monitors, one ether

TEST(NetChaos, TwoRealMonitorsFuseOneEther) {
  // One shared ether with a short wifi ping exchange; two front ends with
  // different impairments and clock skew deliver it to two monitors whose
  // sinks feed fleet sessions.
  emu::Ether ether(emu::Ether::Config{}, 77);
  rfdump::traffic::WifiPingConfig ping;
  ping.count = 6;
  ping.interval_us = 20'000.0;
  ping.snr_db = 25.0;
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, ping, 8000);
  const auto samples = ether.Render(session.end_sample + 8000);
  const auto wifi_truth = ether.VisibleTruth(core::Protocol::kWifi80211b);
  ASSERT_FALSE(wifi_truth.empty());

  const std::int64_t offsets[2] = {2'000, -1'500};
  net::Fleet::Config fcfg;
  fcfg.samples_per_tick = kSamplesPerTick;
  fcfg.aggregator.trust_floor = 0.0;
  fcfg.sensors.resize(2);
  for (int i = 0; i < 2; ++i) {
    fcfg.sensors[i].id = static_cast<std::uint16_t>(i);
    fcfg.sensors[i].clock_offset_samples = offsets[i];
    fcfg.sensors[i].seed = 40 + static_cast<std::uint64_t>(i);
  }
  net::Fleet fleet(fcfg);
  fleet.Run(4);  // connect + clock samples before any events

  for (int i = 0; i < 2; ++i) {
    emu::FrontEnd::Config fecfg;
    fecfg.clock_offset_samples = offsets[i];
    if (i == 1) fecfg.dc_offset = dsp::cfloat(0.02f, -0.01f);
    emu::FrontEnd fe(samples, fecfg, 70 + static_cast<std::uint64_t>(i));

    core::StreamingMonitor::Config mcfg;
    mcfg.block_samples = 400'000;
    mcfg.overlap_samples = 160'000;
    mcfg.sink = &fleet.sink(static_cast<std::size_t>(i));
    core::StreamingMonitor monitor(mcfg);
    while (!fe.Done()) {
      const auto seg = fe.NextSegment();
      if (!seg.samples.empty()) {
        monitor.PushSegment(seg.start_sample, seg.samples);
      }
      fleet.Tick();  // pump the fleet while the monitor runs
    }
    monitor.Flush();
    fleet.sink(static_cast<std::size_t>(i)).Flush();
    fleet.Run(4);
  }
  fleet.SetLossless(true);
  fleet.Run(40);

  const auto& fused = fleet.aggregator().fused();
  ASSERT_FALSE(fused.empty());
  // Every fused wifi event lies on a truth transmission (global timeline:
  // the aggregator undid each front end's clock skew).
  std::size_t two_witness = 0;
  for (const auto& f : fused) {
    if (f.protocol != core::Protocol::kWifi80211b) continue;
    bool on_truth = false;
    for (const auto& t : wifi_truth) {
      if (f.start < t.end_sample + 64 && t.start_sample < f.end + 64) {
        on_truth = true;
        break;
      }
    }
    EXPECT_TRUE(on_truth) << "fused event at " << f.start
                          << " matches no truth record";
    if (f.witnesses >= 2) ++two_witness;
  }
  // Clean links + identical streams: the sensors corroborate each other, so
  // cross-sensor dedup must have merged at least one decode.
  EXPECT_GT(two_witness, 0u);
  EXPECT_GT(fleet.aggregator().merges(), 0u);
  // Per-block health made it across for both sensors.
  EXPECT_FALSE(fleet.aggregator().status(0).health.empty());
  EXPECT_FALSE(fleet.aggregator().status(1).health.empty());
}

}  // namespace
