// Protocol bundle registry invariants (DESIGN.md §15): registration
// validation, deterministic enumeration, derived name/feature tables,
// bundle-mask gating in both pipelines, and the legacy MonitorReport shims
// staying bit-identical to the generic event view.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/core/protocols.hpp"
#include "rfdump/testing/scenario.hpp"

namespace {

using rfdump::core::BundleBit;
using rfdump::core::DefaultBundleMask;
using rfdump::core::Protocol;
using rfdump::core::ProtocolBundle;
using rfdump::core::ProtocolEvent;
using rfdump::core::ProtocolRegistry;

TEST(ProtocolRegistry, EnumerationIsDenseSortedAndConsistent) {
  const auto& registry = ProtocolRegistry::Instance();
  const auto bundles = registry.bundles();
  ASSERT_EQ(bundles.size(), rfdump::core::kProtocolCount - 1);
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(bundles[i].protocol), i + 1);
    EXPECT_STRNE(bundles[i].name, "");
    EXPECT_STRNE(bundles[i].cli_name, "");
  }
  EXPECT_NO_THROW(registry.CheckConsistency());
}

TEST(ProtocolRegistry, RejectsInvalidAndDuplicateRegistrations) {
  auto& registry = ProtocolRegistry::Instance();
  const std::size_t before = registry.bundles().size();

  ProtocolBundle unknown;
  unknown.protocol = Protocol::kUnknown;
  unknown.name = "nope";
  unknown.cli_name = "nope";
  EXPECT_FALSE(registry.Register(unknown));

  ProtocolBundle out_of_range;
  out_of_range.protocol = static_cast<Protocol>(rfdump::core::kProtocolCount);
  out_of_range.name = "beyond";
  out_of_range.cli_name = "beyond";
  EXPECT_FALSE(registry.Register(out_of_range));

  // Same protocol id as the registered Wi-Fi bundle, fresh names.
  ProtocolBundle duplicate_id;
  duplicate_id.protocol = Protocol::kWifi80211b;
  duplicate_id.name = "wifi-again";
  duplicate_id.cli_name = "wifi2";
  EXPECT_FALSE(registry.Register(duplicate_id));

  // A rejected registration must leave the registry untouched.
  EXPECT_EQ(registry.bundles().size(), before);
  EXPECT_NO_THROW(registry.CheckConsistency());
}

TEST(ProtocolRegistry, LookupByProtocolAndCliName) {
  const auto& registry = ProtocolRegistry::Instance();
  for (const auto& bundle : registry.bundles()) {
    const auto* by_id = registry.Find(bundle.protocol);
    ASSERT_NE(by_id, nullptr);
    EXPECT_EQ(by_id, &bundle);
    const auto* by_cli = registry.FindCli(bundle.cli_name);
    ASSERT_NE(by_cli, nullptr);
    EXPECT_EQ(by_cli, &bundle);
  }
  EXPECT_EQ(registry.Find(Protocol::kUnknown), nullptr);
  EXPECT_EQ(registry.FindCli("nosuchphy"), nullptr);
  EXPECT_EQ(registry.FindCli(""), nullptr);

  EXPECT_EQ(registry.FindCli("wifi")->protocol, Protocol::kWifi80211b);
  EXPECT_EQ(registry.FindCli("bt")->protocol, Protocol::kBluetooth);
  EXPECT_EQ(registry.FindCli("zigbee")->protocol, Protocol::kZigbee);
  EXPECT_EQ(registry.FindCli("microwave")->protocol, Protocol::kMicrowave);
  EXPECT_EQ(registry.FindCli("ble")->protocol, Protocol::kBleAdv);
}

TEST(ProtocolRegistry, NameAndFeatureTablesDeriveFromBundles) {
  const auto& registry = ProtocolRegistry::Instance();
  EXPECT_STREQ(rfdump::core::ProtocolName(Protocol::kUnknown), "unknown");
  for (const auto& bundle : registry.bundles()) {
    EXPECT_STREQ(rfdump::core::ProtocolName(bundle.protocol), bundle.name);
  }

  // FeatureTable() is the bundles' feature rows concatenated in registry
  // (ascending protocol-id) order.
  const auto table = rfdump::core::FeatureTable();
  std::size_t row = 0;
  for (const auto& bundle : registry.bundles()) {
    for (const auto& feature : bundle.features) {
      ASSERT_LT(row, table.size());
      EXPECT_EQ(table[row].protocol, bundle.protocol);
      EXPECT_EQ(table[row].variant, feature.variant);
      ++row;
    }
  }
  EXPECT_EQ(row, table.size());
}

TEST(ProtocolRegistry, DefaultMaskMatchesBundleFlags) {
  const std::uint32_t mask = DefaultBundleMask();
  for (const auto& bundle : ProtocolRegistry::Instance().bundles()) {
    EXPECT_EQ((mask & BundleBit(bundle.protocol)) != 0, bundle.default_enabled)
        << "protocol " << bundle.name;
  }
  // BLE advertising is the opt-in proof case; the historical four are on.
  EXPECT_EQ(mask & BundleBit(Protocol::kBleAdv), 0u);
  EXPECT_NE(mask & BundleBit(Protocol::kWifi80211b), 0u);
  EXPECT_NE(mask & BundleBit(Protocol::kBluetooth), 0u);
  EXPECT_NE(mask & BundleBit(Protocol::kZigbee), 0u);
  EXPECT_NE(mask & BundleBit(Protocol::kMicrowave), 0u);
}

// Shared scenario for the pipeline-gating tests (rendered once; the unit
// suite should not re-render the ether per test).
const rfdump::testing::RenderedScenario& MixScenario() {
  static const auto scenario = rfdump::testing::CannedMixedScenario(42);
  return scenario;
}

TEST(ProtocolRegistry, DisabledBundleProducesNoTasksOrResults) {
  const auto& scenario = MixScenario();

  rfdump::core::RFDumpPipeline::Config cfg;
  cfg.EnableBundle(Protocol::kZigbee);
  // Default mask: BLE stays disabled even though the scenario carries BLE
  // advertising traffic.
  rfdump::core::RFDumpPipeline pipeline(cfg);
  const auto report = pipeline.Process(scenario.samples);

  for (const auto& d : report.detections) {
    EXPECT_NE(d.protocol, Protocol::kBleAdv);
  }
  for (const auto& d : report.dispatched) {
    EXPECT_NE(d.protocol, Protocol::kBleAdv);
  }
  for (const auto& e : report.events) {
    EXPECT_NE(e.protocol, Protocol::kBleAdv);
  }
  for (const auto& cost : report.costs) {
    EXPECT_EQ(cost.name.find("ble"), std::string::npos)
        << "disabled bundle charged stage " << cost.name;
  }

  // Opting the bundle in (one EnableBundle call, zero pipeline edits)
  // produces BLE decodes from the same capture.
  cfg.EnableBundle(Protocol::kBleAdv);
  rfdump::core::RFDumpPipeline enabled(cfg);
  const auto enabled_report = enabled.Process(scenario.samples);
  const auto ble_events = std::count_if(
      enabled_report.events.begin(), enabled_report.events.end(),
      [](const ProtocolEvent& e) { return e.protocol == Protocol::kBleAdv; });
  EXPECT_GT(ble_events, 0);
}

TEST(ProtocolRegistry, NaiveMaskGatesMembers) {
  const auto& scenario = MixScenario();

  rfdump::core::NaivePipeline::Config cfg;
  cfg.bundle_mask = BundleBit(Protocol::kWifi80211b);
  rfdump::core::NaivePipeline pipeline(cfg);
  const auto report = pipeline.Process(scenario.samples);

  EXPECT_GT(report.wifi_frames.size(), 0u);
  EXPECT_EQ(report.bt_packets.size(), 0u);
  EXPECT_EQ(report.zb_frames.size(), 0u);
  for (const auto& e : report.events) {
    EXPECT_EQ(e.protocol, Protocol::kWifi80211b);
  }
}

TEST(ProtocolRegistry, LegacyShimsMatchGenericEventView) {
  const auto& scenario = MixScenario();

  rfdump::core::RFDumpPipeline::Config cfg;
  cfg.EnableBundle(Protocol::kZigbee);
  cfg.EnableBundle(Protocol::kBleAdv);
  rfdump::core::RFDumpPipeline pipeline(cfg);
  const auto report = pipeline.Process(scenario.samples);
  ASSERT_GT(report.events.size(), 0u);

  // Rebuild the expected view straight from the bundles' collect_events
  // hooks; bundles without a hook (BLE) commit events natively, so their
  // entries are taken from the report verbatim.
  std::vector<ProtocolEvent> expected;
  for (const auto& bundle : ProtocolRegistry::Instance().bundles()) {
    if (bundle.collect_events) {
      bundle.collect_events(report, expected);
    } else {
      for (const auto& e : report.events) {
        if (e.protocol == bundle.protocol) expected.push_back(e);
      }
    }
  }

  ASSERT_EQ(report.events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& got = report.events[i];
    const auto& want = expected[i];
    EXPECT_EQ(got.protocol, want.protocol) << "event " << i;
    EXPECT_EQ(got.start_sample, want.start_sample) << "event " << i;
    EXPECT_EQ(got.end_sample, want.end_sample) << "event " << i;
    EXPECT_EQ(got.channel, want.channel) << "event " << i;
    EXPECT_EQ(got.crc_ok, want.crc_ok) << "event " << i;
    EXPECT_EQ(got.payload, want.payload) << "event " << i;
  }

  // The view is grouped by ascending protocol id (registry order).
  EXPECT_TRUE(std::is_sorted(
      report.events.begin(), report.events.end(),
      [](const ProtocolEvent& a, const ProtocolEvent& b) {
        return static_cast<unsigned>(a.protocol) <
               static_cast<unsigned>(b.protocol);
      }));
}

}  // namespace
