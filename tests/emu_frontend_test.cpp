// emu::FrontEnd tests: the impairment layer must deliver exactly the samples
// it claims to (timestamps consistent with the fault log), reproduce
// bit-for-bit from its seed, and inject each configured fault class.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "rfdump/emu/frontend.hpp"

namespace dsp = rfdump::dsp;
using rfdump::emu::FaultKind;
using rfdump::emu::FrontEnd;

namespace {

dsp::SampleVec Ramp(std::size_t n) {
  dsp::SampleVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = dsp::cfloat(static_cast<float>(i % 1000) * 0.01f, 1.0f);
  }
  return x;
}

TEST(FrontEnd, IdealConfigDeliversStreamVerbatim) {
  const auto x = Ramp(200'000);
  FrontEnd fe(x, FrontEnd::Config{}, 3);
  std::int64_t expected = 0;
  while (!fe.Done()) {
    const auto seg = fe.NextSegment();
    ASSERT_EQ(seg.start_sample, expected);
    for (std::size_t i = 0; i < seg.samples.size(); ++i) {
      ASSERT_EQ(seg.samples[i],
                x[static_cast<std::size_t>(seg.start_sample) + i]);
    }
    expected += static_cast<std::int64_t>(seg.samples.size());
  }
  EXPECT_EQ(expected, static_cast<std::int64_t>(x.size()));
  EXPECT_TRUE(fe.faults().empty());
}

TEST(FrontEnd, DeterministicFromSeed) {
  const auto x = Ramp(500'000);
  FrontEnd::Config cfg;
  cfg.drops_per_second = 30.0;
  cfg.nonfinite_per_second = 50.0;
  cfg.duplicates_per_second = 20.0;
  FrontEnd a(x, cfg, 42), b(x, cfg, 42), c(x, cfg, 43);
  ASSERT_EQ(a.faults().size(), b.faults().size());
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    EXPECT_EQ(a.faults()[i].start_sample, b.faults()[i].start_sample);
    EXPECT_EQ(a.faults()[i].end_sample, b.faults()[i].end_sample);
    EXPECT_EQ(a.faults()[i].kind, b.faults()[i].kind);
  }
  // A different seed draws a different schedule (overwhelmingly likely).
  bool differs = a.faults().size() != c.faults().size();
  for (std::size_t i = 0; !differs && i < a.faults().size(); ++i) {
    differs = a.faults()[i].start_sample != c.faults()[i].start_sample;
  }
  EXPECT_TRUE(differs);
}

TEST(FrontEnd, DropsMatchTimestampJumps) {
  const auto x = Ramp(800'000);
  FrontEnd::Config cfg;
  cfg.drops_per_second = 40.0;  // ~4 drops over 0.1 s
  FrontEnd fe(x, cfg, 9);
  const auto drops = fe.FaultsOf(FaultKind::kDrop);
  ASSERT_FALSE(drops.empty());

  // Walk deliveries and record every forward jump.
  std::map<std::int64_t, std::int64_t> jumps;  // at -> missing
  std::int64_t expected = 0;
  std::int64_t delivered = 0;
  while (!fe.Done()) {
    const auto seg = fe.NextSegment();
    if (seg.samples.empty()) break;
    if (seg.start_sample > expected) {
      jumps[expected] = seg.start_sample - expected;
    }
    expected = seg.start_sample + static_cast<std::int64_t>(seg.samples.size());
    delivered += static_cast<std::int64_t>(seg.samples.size());
  }
  ASSERT_EQ(jumps.size(), drops.size());
  std::int64_t dropped_total = 0;
  for (const auto& d : drops) {
    ASSERT_TRUE(jumps.count(d.start_sample)) << d.start_sample;
    EXPECT_EQ(jumps[d.start_sample], d.length());
    dropped_total += d.length();
  }
  EXPECT_EQ(delivered + dropped_total, static_cast<std::int64_t>(x.size()));
}

TEST(FrontEnd, ClippingBoundsAmplitude) {
  auto x = Ramp(100'000);
  for (auto& s : x) s *= 10.0f;  // well past the rail
  FrontEnd::Config cfg;
  cfg.clip_amplitude = 3.0f;
  FrontEnd fe(x, cfg, 1);
  bool clipped_any = false;
  for (const auto& seg : fe.DrainAll()) {
    for (const auto& s : seg.samples) {
      ASSERT_LE(std::fabs(s.real()), 3.0f);
      ASSERT_LE(std::fabs(s.imag()), 3.0f);
      if (std::fabs(s.imag()) == 3.0f) clipped_any = true;
    }
  }
  EXPECT_TRUE(clipped_any);
  ASSERT_EQ(fe.FaultsOf(FaultKind::kSaturation).size(), 1u);
}

TEST(FrontEnd, NonFiniteBurstsLandWhereLogged) {
  const auto x = Ramp(400'000);
  FrontEnd::Config cfg;
  cfg.nonfinite_per_second = 100.0;
  FrontEnd fe(x, cfg, 5);
  const auto bursts = fe.FaultsOf(FaultKind::kNonFinite);
  ASSERT_FALSE(bursts.empty());
  // Reassemble the delivered stream (contiguous: no drops configured).
  dsp::SampleVec out;
  for (const auto& seg : fe.DrainAll()) {
    out.insert(out.end(), seg.samples.begin(), seg.samples.end());
  }
  ASSERT_EQ(out.size(), x.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool finite =
        std::isfinite(out[i].real()) && std::isfinite(out[i].imag());
    bool in_burst = false;
    for (const auto& b : bursts) {
      if (static_cast<std::int64_t>(i) >= b.start_sample &&
          static_cast<std::int64_t>(i) < b.end_sample) {
        in_burst = true;
      }
    }
    ASSERT_EQ(!finite, in_burst) << i;
  }
}

TEST(FrontEnd, DuplicateRedeliversSameTimestamps) {
  const auto x = Ramp(300'000);
  FrontEnd::Config cfg;
  cfg.duplicates_per_second = 80.0;
  FrontEnd fe(x, cfg, 11);
  int backwards = 0;
  std::int64_t expected = 0;
  while (!fe.Done()) {
    const auto seg = fe.NextSegment();
    if (seg.samples.empty()) break;
    if (seg.start_sample < expected) {
      ++backwards;
      // A duplicate replays an already-delivered range exactly.
      EXPECT_EQ(seg.start_sample + static_cast<std::int64_t>(seg.samples.size()),
                expected);
    }
    expected = std::max(
        expected,
        seg.start_sample + static_cast<std::int64_t>(seg.samples.size()));
  }
  EXPECT_EQ(backwards,
            static_cast<int>(fe.FaultsOf(FaultKind::kDuplicate).size()));
  EXPECT_GT(backwards, 0);
}

TEST(FrontEnd, CfoRotatesSamples) {
  dsp::SampleVec x(50'000, dsp::cfloat{1.0f, 0.0f});
  FrontEnd::Config cfg;
  cfg.cfo_hz = 10'000.0;
  FrontEnd fe(x, cfg, 1);
  dsp::SampleVec out;
  for (const auto& seg : fe.DrainAll()) {
    out.insert(out.end(), seg.samples.begin(), seg.samples.end());
  }
  // Magnitude preserved, phase advances ~2*pi*f/fs per sample.
  const double step = 2.0 * std::numbers::pi * cfg.cfo_hz / dsp::kSampleRateHz;
  for (std::size_t i = 1; i < out.size(); i += 999) {
    EXPECT_NEAR(std::abs(out[i]), 1.0, 1e-4);
    double d = std::arg(out[i]) - std::arg(out[i - 1]);
    while (d < -std::numbers::pi) d += 2.0 * std::numbers::pi;
    while (d > std::numbers::pi) d -= 2.0 * std::numbers::pi;
    EXPECT_NEAR(d, step, 1e-3) << i;
  }
  ASSERT_EQ(fe.FaultsOf(FaultKind::kCfoDrift).size(), 1u);
}

}  // namespace
