// Supervision-layer tests (DESIGN.md §9): cooperative deadlines, crash
// containment, per-protocol circuit breakers and poison-block quarantine.
//
// The acceptance scenario: a streaming monitor fed a demodulator that throws
// on chosen intervals (and one that blows its deadline) must finish with
// zero crashes, keep decoding the other protocol at the unimpaired rate,
// surface every failure in HealthReports / HealthSummary / the
// rfdump_supervisor_* metrics, and trip + recover the breaker through a
// half-open probe. The concurrency tests make the Supervisor/WorkBudget
// contract TSan-provable (the ci tsan job runs this file).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "rfdump/core/streaming.hpp"
#include "rfdump/core/supervisor.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/phy80211/demodulator.hpp"
#include "rfdump/phybt/demodulator.hpp"
#include "rfdump/traffic/traffic.hpp"
#include "rfdump/util/work_budget.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace emu = rfdump::emu;
namespace util = rfdump::util;

namespace {

/// A band with both protocols active, so impairing one protocol's analysis
/// lets the tests check the other still decodes at full rate.
dsp::SampleVec MixedEther(std::size_t wifi_pings, std::size_t bt_pings,
                          std::uint64_t seed) {
  emu::Ether ether(emu::Ether::Config{}, seed);
  rfdump::traffic::WifiPingConfig wifi;
  wifi.count = wifi_pings;
  wifi.interval_us = 25000.0;
  rfdump::traffic::L2PingConfig bt;
  bt.count = bt_pings;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wifi, 16'000);
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bt, 24'000);
  return ether.Render(std::max(ws.end_sample, bs.end_sample) + 16'000);
}

core::StreamingMonitor::Config SmallBlocks() {
  core::StreamingMonitor::Config cfg;
  cfg.block_samples = 400'000;
  cfg.overlap_samples = 160'000;
  return cfg;
}

void DriveWhole(core::StreamingMonitor& monitor,
                dsp::const_sample_span samples) {
  // Mixed segment sizes cross block boundaries at awkward offsets.
  std::size_t pos = 0;
  while (pos < samples.size()) {
    const std::size_t n = std::min<std::size_t>(130'000, samples.size() - pos);
    monitor.Push(samples.subspan(pos, n));
    pos += n;
  }
  monitor.Flush();
}

// ------------------------------------------------------------ WorkBudget

TEST(WorkBudget, DefaultIsUnlimited) {
  util::WorkBudget b;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.Charge(1'000'000));
  EXPECT_FALSE(b.expired());
  EXPECT_EQ(b.charged(), 1000u * 1'000'000u);
  EXPECT_EQ(b.checks(), 1000u);
}

TEST(WorkBudget, SampleCapExpiresAndSticks) {
  util::WorkBudget b;
  b.Arm({.max_samples = 1000, .max_cpu_seconds = 0.0});
  EXPECT_TRUE(b.Charge(600));
  EXPECT_FALSE(b.expired());
  EXPECT_FALSE(b.Charge(600));  // 1200 > 1000
  EXPECT_TRUE(b.expired());
  EXPECT_FALSE(b.Charge(1));  // sticky until re-Arm
  b.Arm({.max_samples = 1000, .max_cpu_seconds = 0.0});
  EXPECT_FALSE(b.expired());
  EXPECT_TRUE(b.Charge(600));
}

TEST(WorkBudget, CpuDeadlineExpires) {
  util::WorkBudget b;
  b.Arm({.max_samples = 0, .max_cpu_seconds = 1e-9});
  // The deadline is already in the past by the first check; the budget must
  // expire promptly rather than loop forever.
  std::uint64_t charges = 0;
  while (b.Charge(1) && charges < 1'000'000) ++charges;
  EXPECT_TRUE(b.expired());
  EXPECT_LT(charges, 1'000'000u);
}

TEST(WorkBudget, ConcurrentChargeIsRaceFree) {
  util::WorkBudget b;
  b.Arm({.max_samples = 400'000, .max_cpu_seconds = 0.0});
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&b] {
      // Every worker stops at the shared sticky expiry.
      while (b.Charge(64)) {
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(b.expired());
  // All charges before expiry were accounted (cap, plus up to one quantum
  // per racing worker).
  EXPECT_GE(b.charged(), 400'000u);
}

// ---------------------------------------------- demodulators honor budgets

TEST(Supervision, WifiDemodulatorHonorsBudget) {
  const auto x = MixedEther(/*wifi_pings=*/4, /*bt_pings=*/0, /*seed=*/11);
  const auto span = dsp::const_sample_span(x);

  rfdump::phy80211::Demodulator baseline;
  const auto all_frames = baseline.DecodeAll(span);
  ASSERT_FALSE(all_frames.empty());

  // An armed but generous budget must not change results.
  util::WorkBudget roomy;
  roomy.Arm({.max_samples = 1'000'000'000, .max_cpu_seconds = 0.0});
  rfdump::phy80211::Demodulator::Config cfg;
  cfg.budget = &roomy;
  rfdump::phy80211::Demodulator budgeted(cfg);
  EXPECT_EQ(budgeted.DecodeAll(span).size(), all_frames.size());
  EXPECT_FALSE(roomy.expired());

  // A tiny budget aborts the scan early — cleanly, keeping whatever was
  // decoded before expiry.
  util::WorkBudget tiny;
  tiny.Arm({.max_samples = 1'000, .max_cpu_seconds = 0.0});
  rfdump::phy80211::Demodulator::Config tcfg;
  tcfg.budget = &tiny;
  rfdump::phy80211::Demodulator cut(tcfg);
  const auto partial = cut.DecodeAll(span);
  EXPECT_TRUE(tiny.expired());
  EXPECT_LT(partial.size(), all_frames.size());
}

TEST(Supervision, BtDemodulatorHonorsBudget) {
  const auto x = MixedEther(/*wifi_pings=*/0, /*bt_pings=*/24, /*seed=*/12);
  const auto span = dsp::const_sample_span(x);

  rfdump::phybt::Demodulator baseline;
  const auto all_pkts = baseline.DecodeAll(span);
  ASSERT_FALSE(all_pkts.empty());

  util::WorkBudget roomy;
  roomy.Arm({.max_samples = 4'000'000'000ull, .max_cpu_seconds = 0.0});
  rfdump::phybt::Demodulator::Config cfg;
  cfg.budget = &roomy;
  rfdump::phybt::Demodulator budgeted(cfg);
  EXPECT_EQ(budgeted.DecodeAll(span).size(), all_pkts.size());
  EXPECT_FALSE(roomy.expired());

  util::WorkBudget tiny;
  tiny.Arm({.max_samples = 1'000, .max_cpu_seconds = 0.0});
  rfdump::phybt::Demodulator::Config tcfg;
  tcfg.budget = &tiny;
  rfdump::phybt::Demodulator cut(tcfg);
  const auto partial = cut.DecodeAll(span);
  EXPECT_TRUE(tiny.expired());
  EXPECT_LT(partial.size(), all_pkts.size());
}

// ------------------------------------------------------------- breaker FSM

TEST(Supervision, BreakerTripsBacksOffAndRecovers) {
  core::Supervisor::Config cfg;
  cfg.breaker_window = 4;
  cfg.breaker_trip_failures = 2;
  cfg.breaker_cooldown_blocks = 1;
  cfg.breaker_max_cooldown_blocks = 8;
  core::Supervisor sup(cfg);
  const dsp::SampleVec dummy(64);
  const auto fail = [&] {
    return sup.Supervise(core::Protocol::kWifi80211b, 0, 64, dummy,
                         [](util::WorkBudget&) {
                           throw std::runtime_error("boom");
                         });
  };
  const auto succeed = [&] {
    return sup.Supervise(core::Protocol::kWifi80211b, 0, 64, dummy,
                         [](util::WorkBudget&) {});
  };

  // Two failures in the window trip the breaker open.
  EXPECT_EQ(fail(), core::Outcome::kException);
  EXPECT_EQ(sup.breaker_state(core::Protocol::kWifi80211b),
            core::BreakerState::kClosed);
  EXPECT_EQ(fail(), core::Outcome::kException);
  EXPECT_EQ(sup.breaker_state(core::Protocol::kWifi80211b),
            core::BreakerState::kOpen);
  // Open: intervals are skipped without running the closure. Other
  // protocols' breakers are independent and stay closed.
  EXPECT_EQ(succeed(), core::Outcome::kSkipped);
  EXPECT_EQ(sup.breaker_state(core::Protocol::kBluetooth),
            core::BreakerState::kClosed);
  EXPECT_EQ(sup.open_breakers(), 1);

  // Cooldown (1 block) elapses -> half-open; a failing probe re-opens with a
  // doubled cooldown (exponential backoff).
  sup.OnBlockEnd();
  EXPECT_EQ(sup.breaker_state(core::Protocol::kWifi80211b),
            core::BreakerState::kHalfOpen);
  EXPECT_EQ(fail(), core::Outcome::kException);  // the probe itself
  EXPECT_EQ(sup.breaker_state(core::Protocol::kWifi80211b),
            core::BreakerState::kOpen);
  sup.OnBlockEnd();  // 1 of 2 cooldown blocks
  EXPECT_EQ(sup.breaker_state(core::Protocol::kWifi80211b),
            core::BreakerState::kOpen);
  sup.OnBlockEnd();  // 2 of 2
  EXPECT_EQ(sup.breaker_state(core::Protocol::kWifi80211b),
            core::BreakerState::kHalfOpen);

  // While the half-open probe is in flight, other intervals are skipped.
  bool probe_ran = false;
  std::thread probe([&] {
    sup.Supervise(core::Protocol::kWifi80211b, 0, 64, dummy,
                  [&](util::WorkBudget&) {
                    probe_ran = true;
                    // A second interval arriving mid-probe is not admitted.
                    EXPECT_EQ(succeed(), core::Outcome::kSkipped);
                  });
  });
  probe.join();
  EXPECT_TRUE(probe_ran);
  // The successful probe closed the breaker and reset the backoff.
  EXPECT_EQ(sup.breaker_state(core::Protocol::kWifi80211b),
            core::BreakerState::kClosed);
  EXPECT_EQ(sup.open_breakers(), 0);

  const auto counts = sup.counts();
  EXPECT_EQ(counts.breaker_trips, 2u);
  EXPECT_EQ(counts.breaker_closes, 1u);
  EXPECT_EQ(counts.exception, 3u);
  EXPECT_EQ(counts.skipped, 2u);
}

TEST(Supervision, QuarantineRingIsBoundedAndKeepsNewest) {
  core::Supervisor::Config cfg;
  cfg.quarantine_capacity = 4;
  cfg.quarantine_snapshot_samples = 8;
  // A huge window so the breaker never opens and every failure is attempted.
  cfg.breaker_window = 1'000;
  cfg.breaker_trip_failures = 1'000;
  core::Supervisor sup(cfg);
  sup.set_stream_offset(10'000);
  dsp::SampleVec interval(32, dsp::cfloat{1.0f, -1.0f});
  for (int i = 0; i < 10; ++i) {
    sup.Supervise(core::Protocol::kBluetooth, i * 100, i * 100 + 32, interval,
                  [](util::WorkBudget&) {
                    throw std::runtime_error("poison");
                  });
  }
  const auto q = sup.quarantine();
  ASSERT_EQ(q.size(), 4u);  // oldest evicted
  EXPECT_EQ(sup.counts().quarantined, 10u);
  for (std::size_t i = 0; i < q.size(); ++i) {
    const auto& rec = q[i];
    EXPECT_EQ(rec.protocol, core::Protocol::kBluetooth);
    EXPECT_EQ(rec.outcome, core::Outcome::kException);
    EXPECT_EQ(rec.error, "poison");
    EXPECT_EQ(rec.snapshot.size(), 8u);  // capped below the interval size
    // Newest four failures, absolute stream positions.
    const auto expect_start = 10'000 + static_cast<std::int64_t>(6 + i) * 100;
    EXPECT_EQ(rec.start_sample, expect_start);
    EXPECT_EQ(rec.end_sample, expect_start + 32);
  }
}

TEST(Supervision, ContainCountsDetectorThrows) {
  core::Supervisor sup;
  int ran = 0;
  EXPECT_TRUE(sup.Contain("detect/test", [&] { ++ran; }));
  EXPECT_FALSE(sup.Contain("detect/test", [&] {
    ++ran;
    throw std::runtime_error("detector bug");
  }));
  EXPECT_FALSE(sup.Contain("detect/test", [] { throw 42; }));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sup.counts().detector_exceptions, 2u);
}

TEST(Supervision, ConcurrentSuperviseIsRaceFree) {
  core::Supervisor::Config cfg;
  cfg.demod_limits.max_samples = 10'000;
  cfg.breaker_window = 8;
  cfg.breaker_trip_failures = 4;
  cfg.breaker_cooldown_blocks = 1;
  cfg.quarantine_capacity = 8;
  core::Supervisor sup(cfg);
  const dsp::SampleVec interval(128);
  // Four workers supervise a mix of ok / throwing / deadline-blowing
  // closures on two protocols while the main thread advances block time and
  // reads every accessor — the exact shape of the future analysis pool.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&sup, &interval, t] {
      const auto proto = (t % 2 == 0) ? core::Protocol::kWifi80211b
                                      : core::Protocol::kBluetooth;
      for (int i = 0; i < 200; ++i) {
        sup.Supervise(proto, i, i + 128, interval,
                      [&](util::WorkBudget& b) {
                        if (i % 3 == 0) throw std::runtime_error("x");
                        if (i % 3 == 1) {
                          while (b.Charge(512)) {
                          }
                        }
                      });
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    sup.OnBlockEnd();
    (void)sup.counts();
    (void)sup.quarantine();
    (void)sup.open_breakers();
    (void)sup.breaker_state(core::Protocol::kWifi80211b);
  }
  for (auto& w : workers) w.join();
  const auto counts = sup.counts();
  EXPECT_EQ(counts.invocations, 800u);
  EXPECT_EQ(counts.ok + counts.deadline + counts.exception + counts.skipped,
            counts.invocations);
}

// -------------------------------------------------- end-to-end (streaming)

TEST(SupervisedStreaming, ThrowingDemodulatorIsContainedAndBreakerRecovers) {
  const auto samples = MixedEther(/*wifi_pings=*/16, /*bt_pings=*/48,
                                  /*seed=*/71);
  const auto span = dsp::const_sample_span(samples);
  const auto cutoff = static_cast<std::int64_t>(samples.size() / 2);

  // Control run: same band, no faults.
  std::size_t control_wifi = 0, control_bt = 0;
  {
    core::StreamingMonitor control(SmallBlocks());
    control.on_wifi_frame =
        [&](const rfdump::phy80211::DecodedFrame&) { ++control_wifi; };
    control.on_bt_packet =
        [&](const rfdump::phybt::DecodedBtPacket&) { ++control_bt; };
    DriveWhole(control, span);
    ASSERT_GT(control_wifi, 0u);
    ASSERT_GT(control_bt, 0u);
  }

  namespace obs = rfdump::obs;
  auto& reg = obs::Registry::Default();
  const auto exc0 =
      reg.CounterValue("rfdump_supervisor_outcomes_total{outcome=\"exception\"}");
  const auto skip0 =
      reg.CounterValue("rfdump_supervisor_outcomes_total{outcome=\"skipped\"}");
  const auto trips0 = reg.CounterValue(
      "rfdump_supervisor_breaker_trips_total{protocol=\"802.11b\"}");
  const auto closes0 =
      reg.CounterValue("rfdump_supervisor_breaker_closes_total");
  const auto quar0 =
      reg.CounterValue("rfdump_supervisor_quarantined_total");

  // Impaired run: the 802.11 demodulator "crashes" on every interval in the
  // first half of the stream, then behaves.
  auto mcfg = SmallBlocks();
  mcfg.supervisor.breaker_window = 4;
  mcfg.supervisor.breaker_trip_failures = 2;
  mcfg.supervisor.breaker_cooldown_blocks = 1;
  mcfg.supervisor.fault_hook = [cutoff](core::Protocol p, std::int64_t start,
                                        util::WorkBudget&) {
    if (p == core::Protocol::kWifi80211b && start < cutoff) {
      throw std::runtime_error("injected demodulator crash");
    }
  };
  core::StreamingMonitor monitor(mcfg);
  std::size_t faulty_bt = 0;
  std::vector<rfdump::phy80211::DecodedFrame> wifi_frames;
  monitor.on_bt_packet =
      [&](const rfdump::phybt::DecodedBtPacket&) { ++faulty_bt; };
  monitor.on_wifi_frame = [&](const rfdump::phy80211::DecodedFrame& f) {
    wifi_frames.push_back(f);
  };
  DriveWhole(monitor, span);  // completing at all is the headline assertion

  // The other protocol decoded at exactly the unimpaired rate.
  EXPECT_EQ(faulty_bt, control_bt);

  // Failures were contained and counted, the breaker tripped, and after the
  // faulty region ended a half-open probe closed it again.
  const auto counts = monitor.supervisor().counts();
  EXPECT_GT(counts.exception, 0u);
  EXPECT_GT(counts.skipped, 0u);  // open-breaker intervals were not attempted
  EXPECT_GE(counts.breaker_trips, 1u);
  EXPECT_GE(counts.breaker_closes, 1u);
  EXPECT_EQ(monitor.supervisor().breaker_state(core::Protocol::kWifi80211b),
            core::BreakerState::kClosed);
  EXPECT_EQ(monitor.supervisor().open_breakers(), 0);

  // 802.11 decoding resumed after recovery: every decoded frame is post-
  // cutoff, and there are some.
  EXPECT_GT(wifi_frames.size(), 0u);
  EXPECT_LT(wifi_frames.size(), control_wifi);
  for (const auto& f : wifi_frames) EXPECT_GE(f.start_sample, cutoff);

  // Quarantine holds the poison intervals: right protocol, right outcome,
  // absolute positions inside the faulty region, non-empty snapshots.
  const auto q = monitor.supervisor().quarantine();
  ASSERT_FALSE(q.empty());
  for (const auto& rec : q) {
    EXPECT_EQ(rec.protocol, core::Protocol::kWifi80211b);
    EXPECT_EQ(rec.outcome, core::Outcome::kException);
    EXPECT_EQ(rec.error, "injected demodulator crash");
    EXPECT_FALSE(rec.snapshot.empty());
    EXPECT_LT(rec.start_sample, cutoff);
    EXPECT_GT(rec.end_sample, rec.start_sample);
  }

  // HealthReports and the cumulative summary agree with the supervisor.
  std::uint64_t h_sup = 0, h_exc = 0, h_skip = 0, h_quar = 0, h_trips = 0;
  for (const auto& h : monitor.health()) {
    h_sup += h.supervised_intervals;
    h_exc += h.exception_intervals;
    h_skip += h.skipped_intervals;
    h_quar += h.quarantined_intervals;
    h_trips += h.breaker_trips;
  }
  EXPECT_EQ(h_sup, counts.invocations);
  EXPECT_EQ(h_exc, counts.exception);
  EXPECT_EQ(h_skip, counts.skipped);
  EXPECT_EQ(h_quar, counts.quarantined);
  EXPECT_EQ(h_trips, counts.breaker_trips);
  const auto& sum = monitor.summary();
  EXPECT_EQ(sum.supervised_intervals, counts.invocations);
  EXPECT_EQ(sum.exception_intervals, counts.exception);
  EXPECT_EQ(sum.skipped_intervals, counts.skipped);
  EXPECT_EQ(sum.quarantined_intervals, counts.quarantined);
  EXPECT_EQ(sum.breaker_trips, counts.breaker_trips);
  EXPECT_EQ(sum.deadline_intervals, 0u);

#if RFDUMP_OBS_ENABLED
  // The rfdump_supervisor_* metrics tick in the same code paths.
  EXPECT_EQ(
      reg.CounterValue(
          "rfdump_supervisor_outcomes_total{outcome=\"exception\"}") - exc0,
      counts.exception);
  EXPECT_EQ(
      reg.CounterValue(
          "rfdump_supervisor_outcomes_total{outcome=\"skipped\"}") - skip0,
      counts.skipped);
  EXPECT_EQ(
      reg.CounterValue(
          "rfdump_supervisor_breaker_trips_total{protocol=\"802.11b\"}") -
          trips0,
      counts.breaker_trips);
  EXPECT_EQ(reg.CounterValue("rfdump_supervisor_breaker_closes_total") -
                closes0,
            counts.breaker_closes);
  EXPECT_EQ(reg.CounterValue("rfdump_supervisor_quarantined_total") - quar0,
            counts.quarantined);
#else
  (void)exc0; (void)skip0; (void)trips0; (void)closes0; (void)quar0;
#endif
}

TEST(SupervisedStreaming, DeadlineBlowingIntervalAbortsCleanly) {
  const auto samples = MixedEther(/*wifi_pings=*/8, /*bt_pings=*/32,
                                  /*seed=*/72);
  const auto span = dsp::const_sample_span(samples);

  std::size_t control_bt = 0;
  {
    core::StreamingMonitor control(SmallBlocks());
    control.on_bt_packet =
        [&](const rfdump::phybt::DecodedBtPacket&) { ++control_bt; };
    DriveWhole(control, span);
    ASSERT_GT(control_bt, 0u);
  }

  // Every 802.11 interval spins until the (deterministic, sample-count)
  // budget expires — a runaway decode loop, without wall-clock flakiness.
  auto mcfg = SmallBlocks();
  mcfg.supervisor.demod_limits.max_samples = 10'000'000;
  mcfg.supervisor.fault_hook = [](core::Protocol p, std::int64_t,
                                  util::WorkBudget& b) {
    if (p == core::Protocol::kWifi80211b) {
      while (b.Charge(65'536)) {
      }
    }
  };
  core::StreamingMonitor monitor(mcfg);
  std::size_t faulty_bt = 0;
  monitor.on_bt_packet =
      [&](const rfdump::phybt::DecodedBtPacket&) { ++faulty_bt; };
  DriveWhole(monitor, span);

  EXPECT_EQ(faulty_bt, control_bt);
  const auto counts = monitor.supervisor().counts();
  EXPECT_GT(counts.deadline, 0u);
  EXPECT_EQ(counts.exception, 0u);
  EXPECT_EQ(monitor.summary().deadline_intervals, counts.deadline);
  // Deadline failures quarantine too (outcome recorded, no error string).
  const auto q = monitor.supervisor().quarantine();
  ASSERT_FALSE(q.empty());
  for (const auto& rec : q) {
    EXPECT_EQ(rec.outcome, core::Outcome::kDeadline);
    EXPECT_TRUE(rec.error.empty());
  }
  // Budget accounting reached the supervisor (the overhead bench depends on
  // these to price deadline checks).
  EXPECT_GT(counts.budget_checks, 0u);
  EXPECT_GT(counts.budget_charged, 0u);
}

TEST(SupervisedStreaming, CleanPathAllOkAndQuarantineEmpty) {
  // Supervision on the clean path must be semantics-free: with no faults and
  // unlimited default limits, every supervised interval ends kOk, nothing is
  // quarantined, and both protocols decode.
  const auto samples = MixedEther(/*wifi_pings=*/6, /*bt_pings=*/16,
                                  /*seed=*/73);
  core::StreamingMonitor monitor(SmallBlocks());
  std::size_t wifi = 0, bt = 0;
  monitor.on_wifi_frame =
      [&](const rfdump::phy80211::DecodedFrame&) { ++wifi; };
  monitor.on_bt_packet =
      [&](const rfdump::phybt::DecodedBtPacket&) { ++bt; };
  DriveWhole(monitor, dsp::const_sample_span(samples));
  EXPECT_GT(wifi, 0u);
  EXPECT_GT(bt, 0u);
  const auto counts = monitor.supervisor().counts();
  EXPECT_GT(counts.invocations, 0u);
  EXPECT_EQ(counts.ok, counts.invocations);
  EXPECT_EQ(counts.deadline + counts.exception + counts.skipped, 0u);
  EXPECT_TRUE(monitor.supervisor().quarantine().empty());
}

}  // namespace
