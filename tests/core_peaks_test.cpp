// Peak detector tests: gating, boundary precision, merging, history.

#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/dsp/db.hpp"
#include "rfdump/util/rng.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
using rfdump::util::Xoshiro256;

namespace {

// Builds a noise stream with constant-envelope bursts at given positions.
dsp::SampleVec MakeStream(std::size_t total,
                          const std::vector<std::pair<std::size_t,
                                                      std::size_t>>& bursts,
                          double burst_power, double noise_power,
                          std::uint64_t seed) {
  dsp::SampleVec x(total, dsp::cfloat{0.0f, 0.0f});
  const float amp = static_cast<float>(std::sqrt(burst_power));
  for (const auto& [start, len] : bursts) {
    for (std::size_t i = start; i < start + len && i < total; ++i) {
      x[i] = dsp::cfloat(amp, 0.0f);
    }
  }
  Xoshiro256 rng(seed);
  rfdump::channel::AddAwgn(x, noise_power, rng);
  return x;
}

void Feed(core::PeakDetector& det, dsp::const_sample_span x) {
  for (std::size_t at = 0; at < x.size(); at += core::kChunkSamples) {
    const std::size_t n = std::min(core::kChunkSamples, x.size() - at);
    det.PushChunk(x.subspan(at, n), static_cast<std::int64_t>(at));
  }
  det.Flush();
}

TEST(PeakDetector, FindsSingleBurst) {
  // 20 dB burst of 4000 samples at offset 10000.
  const auto x = MakeStream(30000, {{10000, 4000}}, 100.0, 1.0, 1);
  core::PeakDetector det;
  Feed(det, x);
  ASSERT_EQ(det.history().size(), 1u);
  const auto& p = det.history().front();
  EXPECT_NEAR(static_cast<double>(p.start_sample), 10000.0, 40.0);
  EXPECT_NEAR(static_cast<double>(p.end_sample), 14000.0, 60.0);
  EXPECT_NEAR(p.mean_power, 101.0f, 15.0f);  // burst + noise
}

TEST(PeakDetector, QuietStreamHasNoPeaks) {
  const auto x = MakeStream(50000, {}, 0.0, 1.0, 2);
  core::PeakDetector det;
  Feed(det, x);
  EXPECT_TRUE(det.history().empty());
}

TEST(PeakDetector, GatesOutQuietChunks) {
  const auto x = MakeStream(40000, {{20000, 2000}}, 50.0, 1.0, 3);
  core::PeakDetector det;
  std::size_t gated = 0, total = 0;
  for (std::size_t at = 0; at < x.size(); at += core::kChunkSamples) {
    const auto meta = det.PushChunk(
        dsp::const_sample_span(x).subspan(at, core::kChunkSamples),
        static_cast<std::int64_t>(at));
    ++total;
    if (meta.gated_out) ++gated;
  }
  det.Flush();
  // Most chunks are quiet: the cheap path must dominate.
  EXPECT_GT(gated, total * 8 / 10);
  EXPECT_EQ(det.history().size(), 1u);
}

TEST(PeakDetector, SeparatesTwoBurstsWithSifsGap) {
  // Two bursts separated by a 10 us (80-sample) SIFS-like gap must remain
  // two distinct peaks (that gap IS the 802.11 timing signature).
  const auto x = MakeStream(30000, {{8000, 4000}, {12080, 1000}}, 100.0, 1.0,
                            4);
  core::PeakDetector det;
  Feed(det, x);
  ASSERT_EQ(det.history().size(), 2u);
  const std::int64_t gap =
      det.history()[1].start_sample - det.history()[0].end_sample;
  EXPECT_NEAR(static_cast<double>(gap), 80.0, 25.0);
}

TEST(PeakDetector, MergesPeaksAcrossTinyDips) {
  // A 4-sample dropout inside a burst must not split the peak.
  dsp::SampleVec x(20000, dsp::cfloat{0.0f, 0.0f});
  for (std::size_t i = 5000; i < 9000; ++i) x[i] = {10.0f, 0.0f};
  for (std::size_t i = 7000; i < 7004; ++i) x[i] = {0.0f, 0.0f};
  Xoshiro256 rng(5);
  rfdump::channel::AddAwgn(x, 1.0, rng);
  core::PeakDetector det;
  Feed(det, x);
  EXPECT_EQ(det.history().size(), 1u);
}

TEST(PeakDetector, PeakSpanningManyChunks) {
  const auto x = MakeStream(100000, {{10000, 50000}}, 100.0, 1.0, 6);
  core::PeakDetector det;
  Feed(det, x);
  ASSERT_EQ(det.history().size(), 1u);
  EXPECT_NEAR(static_cast<double>(det.history()[0].length()), 50000.0, 100.0);
}

TEST(PeakDetector, CompletedSinceCursor) {
  const auto x = MakeStream(60000, {{10000, 1000}, {30000, 1000},
                                    {50000, 1000}},
                            100.0, 1.0, 7);
  core::PeakDetector det;
  std::uint64_t cursor = 0;
  std::size_t seen = 0;
  for (std::size_t at = 0; at < x.size(); at += core::kChunkSamples) {
    det.PushChunk(dsp::const_sample_span(x).subspan(at, core::kChunkSamples),
                  static_cast<std::int64_t>(at));
    seen += det.CompletedSince(cursor).size();
    cursor = det.CompletedCount();
  }
  det.Flush();
  seen += det.CompletedSince(cursor).size();
  EXPECT_EQ(seen, 3u);
}

TEST(PeakDetector, LowSnrBurstMissed) {
  // A -5 dB burst measures ~1.2 dB above the floor (signal + noise), well
  // below the 4 dB gate: missed. This is the SNR knee mechanism behind the
  // paper's Figures 6-8.
  const auto x = MakeStream(30000, {{10000, 3000}},
                            rfdump::dsp::DbToPower(-5.0), 1.0, 8);
  core::PeakDetector det;
  Feed(det, x);
  EXPECT_TRUE(det.history().empty());
}

TEST(PeakDetector, HistoryCapacityBounded) {
  core::PeakDetector::Config cfg;
  cfg.history_capacity = 4;
  core::PeakDetector det(cfg);
  dsp::SampleVec x(60000, dsp::cfloat{0.0f, 0.0f});
  for (int b = 0; b < 10; ++b) {
    for (std::size_t i = 0; i < 500; ++i) {
      x[static_cast<std::size_t>(b) * 5000 + 1000 + i] = {10.0f, 0.0f};
    }
  }
  Xoshiro256 rng(9);
  rfdump::channel::AddAwgn(x, 1.0, rng);
  Feed(det, x);
  EXPECT_EQ(det.CompletedCount(), 10u);
  EXPECT_EQ(det.history().size(), 4u);
}

TEST(PeakDetector, GatePowerMatchesConfig) {
  core::PeakDetector det;
  EXPECT_NEAR(det.GatePower(), rfdump::dsp::DbToPower(4.0), 1e-9);
  core::PeakDetector::Config cfg;
  cfg.noise_floor_power = 0.5;
  cfg.gate_db = 6.0;
  core::PeakDetector det2(cfg);
  EXPECT_NEAR(det2.GatePower(), 0.5 * rfdump::dsp::DbToPower(6.0), 1e-9);
}

}  // namespace
