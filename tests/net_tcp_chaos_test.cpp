// Syscall-chaos suite for the real TCP transport (DESIGN.md §14): the
// exact-recovery invariant the in-memory sweep proves (net_chaos_test.cpp)
// is re-proven end-to-end over loopback sockets, with faults injected one
// layer *lower* — at the syscall boundary, via FaultySyscalls. 13 seeded
// profiles cover short reads, short writes (frames cut mid-header), EINTR
// and EAGAIN storms, mid-frame connection resets on both directions,
// stalled and refused connects, fd exhaustion and a kitchen sink. For every
// profile, after a passthrough drain:
//
//   fused view == union of published events minus the losses the gap
//   ledger records, with zero corrupt frames accepted and zero duplicates
//
// — the same equality, now carried by a transport whose failure modes are
// the ones a deployment actually hits. A slow-reader test proves the
// backpressure path: a wedged aggregator degrades the sender to bounded
// memory (send-buffer cap held, ring overflow declared as gaps), never to
// OOM or deadlock.
//
// On failure the FaultySyscalls ground-truth logs are written as JSON to
// $RFDUMP_FAULT_LOG_DIR (or cwd), same artifact contract as the link sweep.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "rfdump/net/endpoint.hpp"
#include "rfdump/net/faulty_syscalls.hpp"
#include "rfdump/net/tcp.hpp"
#include "rfdump/obs/obs.hpp"

namespace core = rfdump::core;
namespace net = rfdump::net;

namespace {

constexpr std::int64_t kSamplesPerTick = 8000;
constexpr std::int64_t kEventSpacing = 10'000;  // >> dedup slack (64)
constexpr std::size_t kSensors = 3;

struct SyscallProfile {
  const char* name;
  std::uint64_t seed;
  net::FaultySyscalls::Config client;  // sensor-side syscalls
  net::FaultySyscalls::Config server;  // aggregator-side syscalls
  // Fault kinds whose presence in the logs the test asserts, so a profile
  // that silently stopped injecting cannot keep passing vacuously.
  std::vector<net::SyscallFaultKind> expect_client;
  std::vector<net::SyscallFaultKind> expect_server;
};

std::vector<SyscallProfile> Profiles() {
  using K = net::SyscallFaultKind;
  std::vector<SyscallProfile> out;
  auto add = [&](const char* name, std::uint64_t seed) -> SyscallProfile& {
    SyscallProfile p;
    p.name = name;
    p.seed = seed;
    out.push_back(p);
    return out.back();
  };

  add("clean", 201);
  {
    auto& p = add("short-reads", 202);
    p.server.short_read_rate = 0.5;
    p.server.short_read_max = 3;
    p.client.short_read_rate = 0.3;
    p.expect_server = {K::kShortRead};
  }
  {
    auto& p = add("short-writes", 203);
    p.client.short_write_rate = 0.5;
    p.client.short_write_max = 5;  // a 16-byte header spans >= 4 writes
    p.server.short_write_rate = 0.3;
    p.expect_client = {K::kShortWrite};
  }
  {
    auto& p = add("eintr-storm", 204);
    p.client.eintr_rate = 0.4;
    p.server.eintr_rate = 0.4;
    p.expect_client = {K::kEintr};
    p.expect_server = {K::kEintr};
  }
  {
    auto& p = add("eagain-storm", 205);
    p.client.eagain_rate = 0.4;
    p.server.eagain_rate = 0.4;
    p.expect_client = {K::kEagain};
    p.expect_server = {K::kEagain};
  }
  {
    auto& p = add("read-resets", 206);
    p.server.read_reset_rate = 0.03;  // aggregator loses inbound mid-frame
    p.expect_server = {K::kReadReset};
  }
  {
    auto& p = add("write-resets", 207);
    p.client.write_reset_rate = 0.01;  // sensor uplink dies mid-frame
    p.expect_client = {K::kWriteReset};
  }
  {
    auto& p = add("short-both", 208);
    p.client.short_write_rate = 0.4;
    p.client.short_read_rate = 0.4;
    p.server.short_write_rate = 0.4;
    p.server.short_read_rate = 0.4;
    p.expect_client = {K::kShortWrite, K::kShortRead};
    p.expect_server = {K::kShortWrite, K::kShortRead};
  }
  {
    auto& p = add("resets+short", 209);
    p.client.write_reset_rate = 0.005;
    p.client.short_write_rate = 0.3;
    p.server.read_reset_rate = 0.005;
    p.server.short_read_rate = 0.3;
    p.expect_client = {K::kShortWrite};
    p.expect_server = {K::kShortRead};
  }
  {
    // Reset churn forces redials mid-chaos (the warm-up connects run
    // faultless for clock calibration); half of those redials stall and
    // must be reaped by the transport's connect timeout into the
    // session's backoff.
    auto& p = add("connect-stall", 210);
    p.client.connect_stall_rate = 0.5;
    p.client.write_reset_rate = 0.02;
    p.expect_client = {K::kConnectStalled, K::kWriteReset};
  }
  {
    auto& p = add("connect-refuse", 211);
    p.client.connect_refuse_rate = 0.5;
    p.client.write_reset_rate = 0.02;
    p.expect_client = {K::kConnectRefused};
  }
  {
    // Both flavours of fd exhaustion at once: the sensors contend for too
    // few client sockets, and the aggregator's accept intermittently hits
    // a transient EMFILE; reset churn keeps fds cycling through the cap.
    auto& p = add("fd-exhaustion", 212);
    p.client.max_open_fds = 2;  // 3 sensors contend for 2 client sockets
    p.client.write_reset_rate = 0.005;  // churn frees fds mid-run
    p.server.accept_fail_rate = 0.4;
    p.expect_client = {K::kFdLimit};
    p.expect_server = {K::kAcceptFail};
  }
  {
    auto& p = add("kitchen-sink", 214);
    p.client.short_write_rate = 0.2;
    p.client.short_read_rate = 0.2;
    p.client.eintr_rate = 0.1;
    p.client.eagain_rate = 0.1;
    p.client.write_reset_rate = 0.003;
    p.client.connect_stall_rate = 0.2;
    p.server.short_read_rate = 0.2;
    p.server.eintr_rate = 0.1;
    p.server.read_reset_rate = 0.003;
    p.server.accept_fail_rate = 0.2;
    p.expect_client = {K::kShortWrite};
    p.expect_server = {K::kShortRead};
  }
  return out;
}

net::EventRecord TrueEvent(std::size_t index, std::int64_t clock_offset) {
  net::EventRecord e;
  e.protocol = core::Protocol::kWifi80211b;
  e.channel = -1;
  const std::int64_t true_start =
      100'000 + static_cast<std::int64_t>(index) * kEventSpacing;
  e.start_sample = true_start + clock_offset;
  e.end_sample = e.start_sample + 2'000;
  e.payload_bytes = 100;
  e.crc_ok = true;
  e.payload_digest = 0xE000000 + index;
  return e;
}

bool InRanges(const std::vector<net::SeqRange>& ranges, std::uint32_t seq) {
  for (const auto& r : ranges) {
    if (seq >= r.first && seq <= r.last) return true;
  }
  return false;
}

bool LogContains(const net::FaultySyscalls& sys, net::SyscallFaultKind kind) {
  for (const auto& f : sys.faults()) {
    if (f.kind == kind) return true;
  }
  return false;
}

void DumpSyscallLogs(const SyscallProfile& profile,
                     const net::FaultySyscalls& client,
                     const net::FaultySyscalls& server) {
  const char* dir = std::getenv("RFDUMP_FAULT_LOG_DIR");
  const std::string base = dir ? std::string(dir) + "/" : std::string();
  std::ofstream(base + "syscall_fault_log_" + profile.name + "_client.json")
      << client.FaultLogJson();
  std::ofstream(base + "syscall_fault_log_" + profile.name + "_server.json")
      << server.FaultLogJson();
}

/// The full sensor fleet over loopback: one listener + AggregatorServer,
/// three sessions behind SensorEndpoints, all syscalls through the
/// profile's FaultySyscalls pair, pumped in a single-threaded tick loop.
struct TcpFleet {
  explicit TcpFleet(const SyscallProfile& profile)
      : client_sys(profile.client, profile.seed * 2 + 1),
        server_sys(profile.server, profile.seed * 2 + 2),
        listener(server_sys) {
    // The listener binds through real syscalls; only accept is faultable.
    if (!listener.Listen("127.0.0.1", 0)) {
      ADD_FAILURE() << "loopback listen failed";
      return;
    }
    net::AggregatorServer::Config scfg;
    scfg.aggregator.samples_per_tick = kSamplesPerTick;
    scfg.aggregator.trust_floor = 0.0;  // equality profile: hold nothing back
    server = std::make_unique<net::AggregatorServer>(scfg);
    server->set_listener(&listener);

    for (std::size_t i = 0; i < kSensors; ++i) {
      registries.push_back(std::make_unique<rfdump::obs::Registry>());
      net::SensorSession::Config cfg;
      cfg.sensor_id = static_cast<std::uint16_t>(i);
      cfg.retransmit_ring = 32;
      cfg.metrics_registry = registries.back().get();
      cfg.metrics_every_n_heartbeats = 1;
      sessions.push_back(std::make_unique<net::SensorSession>(
          cfg, profile.seed * 10 + i));
      const std::uint16_t port = listener.port();
      endpoints.push_back(std::make_unique<net::SensorEndpoint>(
          *sessions.back(), [this, port](std::int64_t tick) {
            net::TcpTransport::Config tcfg;
            tcfg.connect_timeout_ticks = 8;
            return net::TcpTransport::Dial("127.0.0.1", port, tcfg,
                                           client_sys, tick);
          }));
    }
  }

  void Tick() {
    ++now;
    for (std::size_t i = 0; i < kSensors; ++i) {
      endpoints[i]->Pump(now, now * kSamplesPerTick + offsets[i]);
    }
    server->Pump(now);
  }

  void Run(int ticks) {
    for (int i = 0; i < ticks; ++i) Tick();
  }

  void SetPassthrough(bool pass) {
    client_sys.set_passthrough(pass);
    server_sys.set_passthrough(pass);
  }

  /// Lossless drain until every session is connected with an empty ring
  /// (or the tick budget runs out — the suite then fails loudly).
  bool Drain(int max_ticks) {
    SetPassthrough(true);
    for (int t = 0; t < max_ticks; ++t) {
      Tick();
      bool settled = true;
      for (auto& s : sessions) {
        if (s->unacked() != 0 ||
            s->state() != net::SensorSession::State::kConnected) {
          settled = false;
          break;
        }
      }
      if (settled) return true;
    }
    return false;
  }

  const std::int64_t offsets[kSensors] = {900, -1'300, 4'000};
  net::FaultySyscalls client_sys;
  net::FaultySyscalls server_sys;
  net::TcpListener listener;
  std::unique_ptr<net::AggregatorServer> server;
  std::vector<std::unique_ptr<rfdump::obs::Registry>> registries;
  std::vector<std::unique_ptr<net::SensorSession>> sessions;
  std::vector<std::unique_ptr<net::SensorEndpoint>> endpoints;
  std::int64_t now = 0;
};

void RunSyscallProfile(const SyscallProfile& profile) {
  SCOPED_TRACE(profile.name);
  TcpFleet fleet(profile);
  if (!fleet.listener.listening()) return;

  // Warm-up faultless so the clock-offset estimates converge exactly before
  // chaos starts (calibration-before-chaos, same as the link sweep).
  fleet.SetPassthrough(true);
  fleet.Run(8);
  fleet.SetPassthrough(false);

  // Publish phase under fault injection.
  std::map<std::uint16_t, std::map<std::uint32_t, std::vector<std::uint64_t>>>
      published;  // sensor -> seq -> digests
  std::uint64_t events_published[kSensors] = {};
  std::size_t next_event = 0;
  for (int t = 0; t < 40; ++t) {
    for (std::size_t k = 0; k < 2; ++k) {
      for (std::size_t i = 0; i < kSensors; ++i) {
        net::EventBatchMsg batch;
        const auto ev = TrueEvent(next_event, fleet.offsets[i]);
        batch.block_start = ev.start_sample;
        batch.events = {ev};
        const auto seq = fleet.sessions[i]->PublishEvents(batch);
        published[static_cast<std::uint16_t>(i)][seq] = {ev.payload_digest};
        fleet.registries[i]->GetCounter("chaos_events_published_total").Inc();
        ++events_published[i];
      }
      ++next_event;
    }
    fleet.Tick();
  }

  // Drain: no new injections; reconnects and retransmits converge.
  const bool settled = fleet.Drain(3000);
  EXPECT_TRUE(settled) << "fleet did not converge within the drain budget";

  auto& agg = fleet.server->aggregator();
  for (std::size_t i = 0; i < kSensors; ++i) {
    const auto id = static_cast<std::uint16_t>(i);
    ASSERT_TRUE(agg.Known(id)) << "sensor " << i << " never reached the "
                               << "aggregator over TCP";
    EXPECT_EQ(fleet.sessions[i]->unacked(), 0u) << "sensor " << i;
    // Every applied gap was declared by the sensor; delivery + gap ledger
    // account for every sequence number (loss explicit, never silent).
    const auto& st = agg.status(id);
    const auto declared = fleet.sessions[i]->lost_ranges();
    std::uint64_t lost_frames = 0;
    for (const auto& r : st.lost_applied) {
      lost_frames += r.last - r.first + 1;
      for (std::uint32_t seq = r.first; seq <= r.last; ++seq) {
        EXPECT_TRUE(InRanges(declared, seq))
            << "sensor " << i << " applied undeclared loss, seq " << seq;
      }
    }
    EXPECT_EQ(st.frames_delivered + lost_frames, st.cum_seq)
        << "sensor " << i;
  }

  // Exact recovery: fused == union of published minus declared loss.
  std::set<std::uint64_t> expected;
  for (std::size_t i = 0; i < kSensors; ++i) {
    const auto id = static_cast<std::uint16_t>(i);
    const auto& lost = agg.status(id).lost_applied;
    for (const auto& [seq, digests] : published[id]) {
      if (InRanges(lost, seq)) continue;
      expected.insert(digests.begin(), digests.end());
    }
  }
  std::set<std::uint64_t> fused;
  for (const auto& f : agg.fused()) {
    EXPECT_TRUE(fused.insert(f.payload_digest).second)
        << "duplicate fused event, digest " << f.payload_digest;
    // Zero corrupt frames accepted: nothing fused that was never published.
    EXPECT_GE(f.payload_digest, 0xE000000u);
    EXPECT_LT(f.payload_digest, 0xE000000u + next_event);
  }
  EXPECT_EQ(fused, expected);

  // Metrics federation over real TCP: the last-write-wins registry must
  // land on the exact per-sensor truth after the drain.
#if RFDUMP_OBS_ENABLED
  for (std::size_t i = 0; i < kSensors; ++i) {
    const auto id = static_cast<std::uint16_t>(i);
    double chaos_counter = -1.0;
    for (const auto& e : agg.federated(id)) {
      if (e.name == "chaos_events_published_total") chaos_counter = e.value;
    }
    EXPECT_DOUBLE_EQ(chaos_counter,
                     static_cast<double>(events_published[i]))
        << "sensor " << i;
  }
#else
  (void)events_published;
#endif

  // The profile must have actually exercised its fault kinds — a sweep
  // that stops injecting cannot keep passing vacuously.
  for (const auto kind : profile.expect_client) {
    EXPECT_TRUE(LogContains(fleet.client_sys, kind))
        << "client log missing " << net::SyscallFaultKindName(kind);
  }
  for (const auto kind : profile.expect_server) {
    EXPECT_TRUE(LogContains(fleet.server_sys, kind))
        << "server log missing " << net::SyscallFaultKindName(kind);
  }

  if (::testing::Test::HasFailure()) {
    DumpSyscallLogs(profile, fleet.client_sys, fleet.server_sys);
  }
}

TEST(NetTcpChaos, SweepRecoversExactlyAcrossSyscallProfiles) {
  const auto profiles = Profiles();
  ASSERT_EQ(profiles.size(), 13u);
  for (const auto& p : profiles) RunSyscallProfile(p);
}

// ------------------------------------------------------------ slow reader

TEST(NetTcpChaos, SlowReaderDegradesSenderToBoundedMemory) {
  // A wedged aggregator (its Pump simply never runs) must not OOM or
  // deadlock the sensor: the kernel socket buffer fills, then the
  // transport's bounded send buffer fills to its cap and Send() starts
  // refusing, and the retransmit ring overflows into *declared* gaps.
  SyscallProfile clean;
  clean.name = "slow-reader";
  clean.seed = 501;
  TcpFleet fleet(clean);
  ASSERT_TRUE(fleet.listener.listening());
  fleet.SetPassthrough(true);

  constexpr std::size_t kSendCap = 32 * 1024;
  // Rebuild endpoint 0 with a small send cap so the test converges fast.
  fleet.endpoints[0] = std::make_unique<net::SensorEndpoint>(
      *fleet.sessions[0], [&fleet](std::int64_t tick) {
        net::TcpTransport::Config tcfg;
        tcfg.send_buffer_limit = kSendCap;
        return net::TcpTransport::Dial("127.0.0.1", fleet.listener.port(),
                                       tcfg, fleet.client_sys, tick);
      });

  fleet.Run(8);  // connect + first acks while the server still reads
  ASSERT_EQ(fleet.sessions[0]->state(),
            net::SensorSession::State::kConnected);

  // Server wedges: pump only the sensor endpoints from here on.
  std::map<std::uint32_t, std::uint64_t> published;  // seq -> digest
  std::size_t next_event = 0;
  std::size_t peak_buffered = 0;
  for (int t = 0; t < 600; ++t) {
    net::EventBatchMsg batch;
    batch.events.clear();
    for (int k = 0; k < 200; ++k) {
      batch.events.push_back(TrueEvent(next_event++, fleet.offsets[0]));
    }
    batch.block_start = batch.events.front().start_sample;
    const auto seq = fleet.sessions[0]->PublishEvents(batch);
    published[seq] = batch.events.front().payload_digest;
    ++fleet.now;
    fleet.endpoints[0]->Pump(fleet.now,
                             fleet.now * kSamplesPerTick + fleet.offsets[0]);
    // The memory bound, checked every tick: the transport never buffers
    // past its cap, and the session never holds more than the ring.
    if (auto* t0 = fleet.endpoints[0]->transport()) {
      auto* tcp = static_cast<net::TcpTransport*>(t0);
      peak_buffered = std::max(peak_buffered, tcp->send_buffered());
      ASSERT_LE(tcp->send_buffered(), kSendCap);
    }
    ASSERT_LE(fleet.sessions[0]->unacked(), 32u);
  }

  const auto totals = fleet.endpoints[0]->transport_totals();
  const auto stats = fleet.sessions[0]->stats();
  // The cap was genuinely reached and held: backpressure refused frames,
  // and the ring overflowed into declared loss instead of growing.
  EXPECT_GT(totals.send_rejects + fleet.endpoints[0]->stats().send_rejects,
            0u);
  EXPECT_LE(totals.send_buffer_peak, kSendCap);
  EXPECT_GT(peak_buffered, 0u);
  EXPECT_GT(stats.ring_overflow_drops, 0u);
  EXPECT_FALSE(fleet.sessions[0]->lost_ranges().empty());

  // The reader wakes up: drain must restore the exact-recovery equality.
  ASSERT_TRUE(fleet.Drain(3000));
  auto& agg = fleet.server->aggregator();
  ASSERT_TRUE(agg.Known(0));
  const auto& st = agg.status(0);
  const auto declared = fleet.sessions[0]->lost_ranges();
  std::uint64_t lost_frames = 0;
  for (const auto& r : st.lost_applied) {
    lost_frames += r.last - r.first + 1;
    for (std::uint32_t seq = r.first; seq <= r.last; ++seq) {
      EXPECT_TRUE(InRanges(declared, seq)) << "undeclared loss, seq " << seq;
    }
  }
  EXPECT_EQ(st.frames_delivered + lost_frames, st.cum_seq);
  EXPECT_EQ(fleet.sessions[0]->unacked(), 0u);

  std::set<std::uint64_t> expected;
  for (const auto& [seq, digest] : published) {
    if (InRanges(st.lost_applied, seq)) continue;
    expected.insert(digest);
  }
  std::set<std::uint64_t> fused_first;  // first event digest of each batch
  for (const auto& f : agg.fused()) {
    if (expected.count(f.payload_digest) != 0) {
      fused_first.insert(f.payload_digest);
    }
  }
  EXPECT_EQ(fused_first, expected);
}

}  // namespace
