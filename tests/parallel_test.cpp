// Parallel analysis executor tests (DESIGN.md §10): whatever the executor
// width, a monitoring run must produce *identical* results — parallelism may
// only move wall time. The sweep covers the batch pipeline and the streaming
// monitor (clean and impaired input), the supervisor's no-poisoning
// guarantee under a crashing demodulator, the unified ResultSink, and
// Config::Validate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "rfdump/core/executor.hpp"
#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/result_sink.hpp"
#include "rfdump/core/streaming.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/emu/frontend.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace emu = rfdump::emu;

namespace {

constexpr int kWidths[] = {1, 2, 8};

/// Busy 2.4 GHz band: Wi-Fi pings, a Bluetooth ACL session and a ZigBee
/// burst interleaved — enough dispatched intervals that the parallel path
/// actually fans out across protocols and Bluetooth channels.
dsp::SampleVec MixedEther(std::uint64_t seed) {
  emu::Ether ether(emu::Ether::Config{}, seed);
  rfdump::traffic::WifiPingConfig wifi;
  wifi.count = 6;
  wifi.interval_us = 25000.0;
  wifi.snr_db = 25.0;
  rfdump::traffic::L2PingConfig bt;
  bt.count = 24;
  rfdump::traffic::ZigbeeConfig zb;
  zb.count = 10;
  zb.snr_db = 20.0;
  zb.interval_us = 0.0;  // LIFS-spaced, so the ZigBee timing detector fires
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wifi, 8000);
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bt, 16000);
  const auto zs = rfdump::traffic::GenerateZigbee(ether, zb, 24000);
  const auto end = std::max(ws.end_sample, std::max(bs.end_sample,
                                                    zs.end_sample));
  return ether.Render(end + 8000);
}

// ------------------------------------------------------------- fingerprints
// Every result-bearing field, serialized. cpu_seconds / block_load style
// timing fields are the only report contents allowed to differ across
// widths, so they are the only ones left out.

std::string Fp(const rfdump::phy80211::DecodedFrame& f) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "wifi %lld %lld %d %d %d %zu ",
                static_cast<long long>(f.start_sample),
                static_cast<long long>(f.end_sample),
                static_cast<int>(f.header.rate), f.payload_decoded ? 1 : 0,
                f.fcs_ok ? 1 : 0, f.mpdu.size());
  std::string out = buf;
  for (const auto b : f.mpdu) out += std::to_string(b) + ",";
  return out;
}

std::string Fp(const rfdump::phybt::DecodedBtPacket& p) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "bt %06x ch%d %lld %lld %d %zu ", p.lap,
                p.channel_index, static_cast<long long>(p.start_sample),
                static_cast<long long>(p.end_sample), p.packet.crc_ok ? 1 : 0,
                p.packet.payload.size());
  std::string out = buf;
  for (const auto b : p.packet.payload) out += std::to_string(b) + ",";
  return out;
}

std::string Fp(const rfdump::phyzigbee::DecodedZbFrame& z) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "zb %lld %lld %d %zu ",
                static_cast<long long>(z.start_sample),
                static_cast<long long>(z.end_sample), z.crc_ok ? 1 : 0,
                z.psdu.size());
  std::string out = buf;
  for (const auto b : z.psdu) out += std::to_string(b) + ",";
  return out;
}

std::string Fp(const core::Detection& d) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "det %s %lld %lld %.6f %s",
                core::ProtocolName(d.protocol),
                static_cast<long long>(d.start_sample),
                static_cast<long long>(d.end_sample),
                static_cast<double>(d.confidence), d.detector);
  return buf;
}

template <typename T>
std::vector<std::string> Fps(const std::vector<T>& xs) {
  std::vector<std::string> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(Fp(x));
  return out;
}

/// Result-bearing content of a MonitorReport (everything except timing).
std::vector<std::string> Fingerprint(const core::MonitorReport& r) {
  std::vector<std::string> out;
  out.push_back("samples " + std::to_string(r.samples_total));
  out.push_back("counts " + std::to_string(r.detections.size()) + " " +
                std::to_string(r.dispatched.size()) + " " +
                std::to_string(r.wifi_frames.size()) + " " +
                std::to_string(r.bt_packets.size()) + " " +
                std::to_string(r.zb_frames.size()));
  for (const auto& d : r.detections) out.push_back(Fp(d));
  for (const auto& d : r.dispatched) out.push_back(Fp(d));
  for (const auto& f : r.wifi_frames) out.push_back(Fp(f));
  for (const auto& p : r.bt_packets) out.push_back(Fp(p));
  for (const auto& z : r.zb_frames) out.push_back(Fp(z));
  return out;
}

std::vector<std::string> Fingerprint(const core::CollectingSink& s) {
  std::vector<std::string> out;
  for (const auto& d : s.detections) out.push_back(Fp(d));
  for (const auto& f : s.wifi_frames) out.push_back(Fp(f));
  for (const auto& p : s.bt_packets) out.push_back(Fp(p));
  for (const auto& z : s.zb_frames) out.push_back(Fp(z));
  return out;
}

// ------------------------------------------------------------ batch pipeline

TEST(Parallel, PipelineReportIdenticalAcrossWidths) {
  const auto x = MixedEther(/*seed=*/11);

  std::vector<std::string> baseline;
  std::vector<std::string> sink_baseline;
  for (const int width : kWidths) {
    core::Executor executor(width);
    EXPECT_EQ(executor.serial(), width == 1);
    core::CollectingSink sink;
    core::RFDumpPipeline::Config cfg;
    cfg.zigbee_detector = true;
    cfg.analysis.zigbee_demod = true;
    cfg.executor = &executor;
    cfg.sink = &sink;
    const auto report = core::RFDumpPipeline(cfg).Process(x);
    const auto fp = Fingerprint(report);
    const auto sink_fp = Fingerprint(sink);
    if (width == 1) {
      // The serial run must actually exercise every protocol, or identical
      // empty reports would pass vacuously.
      EXPECT_FALSE(report.wifi_frames.empty());
      EXPECT_FALSE(report.bt_packets.empty());
      EXPECT_FALSE(report.zb_frames.empty());
      EXPECT_EQ(sink.health.size(), report.health.size());
      baseline = fp;
      sink_baseline = sink_fp;
    } else {
      EXPECT_EQ(fp, baseline) << "report diverged at --threads " << width;
      EXPECT_EQ(sink_fp, sink_baseline)
          << "sink emission diverged at --threads " << width;
    }
  }
}

TEST(Parallel, NaivePipelineIdenticalAcrossWidths) {
  const auto x = MixedEther(/*seed=*/23);
  std::vector<std::string> baseline;
  for (const int width : kWidths) {
    core::Executor executor(width);
    core::NaivePipeline::Config cfg;
    cfg.energy_gate = true;
    cfg.executor = &executor;
    const auto report = core::NaivePipeline(cfg).Process(x);
    const auto fp = Fingerprint(report);
    if (width == 1) {
      EXPECT_FALSE(report.wifi_frames.empty());
      EXPECT_FALSE(report.bt_packets.empty());
      baseline = fp;
    } else {
      EXPECT_EQ(fp, baseline) << "naive report diverged at width " << width;
    }
  }
}

// --------------------------------------------------------- streaming monitor

struct StreamRun {
  std::vector<std::string> results;  // sink contents, in emission order
  std::size_t gaps = 0;
  std::uint64_t blocks = 0;
  std::uint64_t samples = 0;
};

StreamRun RunStreaming(const dsp::SampleVec& x, int threads, bool impair) {
  core::StreamingMonitor::Config mcfg;
  mcfg.block_samples = 400'000;
  mcfg.overlap_samples = 160'000;
  mcfg.threads = threads;
  core::CollectingSink sink;
  mcfg.sink = &sink;
  core::StreamingMonitor monitor(mcfg);
  if (impair) {
    emu::FrontEnd::Config fcfg;
    fcfg.drops_per_second = 25.0;
    fcfg.drop_min_samples = 4'000;
    fcfg.drop_max_samples = 20'000;
    fcfg.nonfinite_per_second = 15.0;
    fcfg.duplicates_per_second = 3.0;
    fcfg.clip_amplitude = 24.0f;
    emu::FrontEnd fe(x, fcfg, /*seed=*/17);
    while (!fe.Done()) {
      const auto seg = fe.NextSegment();
      if (!seg.samples.empty()) monitor.PushSegment(seg.start_sample,
                                                    seg.samples);
    }
  } else {
    // Uneven segment sizes so block boundaries land mid-delivery.
    const auto all = dsp::const_sample_span(x);
    std::size_t pos = 0;
    std::size_t n = 70'001;
    while (pos < all.size()) {
      const std::size_t take = std::min(n, all.size() - pos);
      monitor.Push(all.subspan(pos, take));
      pos += take;
      n = (n % 150'000) + 35'000;
    }
  }
  monitor.Flush();
  StreamRun run;
  run.results = Fingerprint(sink);
  run.gaps = monitor.gaps().size();
  run.blocks = monitor.summary().blocks;
  run.samples = monitor.summary().samples;
  return run;
}

TEST(Parallel, StreamingIdenticalAcrossWidthsCleanTrace) {
  const auto x = MixedEther(/*seed=*/31);
  const auto base = RunStreaming(x, 1, /*impair=*/false);
  ASSERT_FALSE(base.results.empty());
  EXPECT_GT(base.blocks, 2u);
  for (const int width : {2, 8}) {
    const auto run = RunStreaming(x, width, /*impair=*/false);
    EXPECT_EQ(run.results, base.results) << "diverged at threads=" << width;
    EXPECT_EQ(run.blocks, base.blocks);
    EXPECT_EQ(run.samples, base.samples);
  }
}

TEST(Parallel, StreamingIdenticalAcrossWidthsImpairedTrace) {
  // The full fault-tolerant path — gaps, duplicate buffers, NaN bursts,
  // clipping — pipelined across ingest and analysis threads must emit the
  // same frames as the serial monitor.
  const auto x = MixedEther(/*seed=*/47);
  const auto base = RunStreaming(x, 1, /*impair=*/true);
  ASSERT_FALSE(base.results.empty());
  EXPECT_GT(base.gaps, 0u);
  for (const int width : {2, 8}) {
    const auto run = RunStreaming(x, width, /*impair=*/true);
    EXPECT_EQ(run.results, base.results) << "diverged at threads=" << width;
    EXPECT_EQ(run.gaps, base.gaps);
    EXPECT_EQ(run.blocks, base.blocks);
    EXPECT_EQ(run.samples, base.samples);
  }
}

// -------------------------------------------------- supervised parallel run

TEST(Parallel, ThrowingUnitDoesNotPoisonSiblings) {
  // A demodulator crashing on one worker must not take down the sibling
  // tasks of the same batch: Wi-Fi (and the other Bluetooth channel units)
  // still produce their results, and the supervisor records the crash as a
  // contained exception — identically at every width.
  const auto x = MixedEther(/*seed=*/53);

  std::vector<std::string> baseline;
  std::uint64_t baseline_exceptions = 0;
  for (const int width : kWidths) {
    core::Supervisor::Config scfg;
    scfg.breaker_window = 1'000'000;  // keep the breaker out of this test
    scfg.breaker_trip_failures = 1'000'000;
    scfg.fault_hook = [](core::Protocol p, std::int64_t,
                         rfdump::util::WorkBudget&) {
      if (p == core::Protocol::kBluetooth) {
        throw std::runtime_error("injected demodulator crash");
      }
    };
    core::Supervisor supervisor(scfg);
    core::Executor executor(width);
    core::RFDumpPipeline::Config cfg;
    cfg.supervisor = &supervisor;
    cfg.executor = &executor;
    const auto report = core::RFDumpPipeline(cfg).Process(x);

    const auto counts = supervisor.counts();
    EXPECT_GT(counts.exception, 0u) << "fault hook never fired";
    EXPECT_TRUE(report.bt_packets.empty());  // the crashed units' output
    EXPECT_FALSE(report.wifi_frames.empty())
        << "sibling Wi-Fi analysis was poisoned at width " << width;
    const auto fp = Fingerprint(report);
    if (width == 1) {
      baseline = fp;
      baseline_exceptions = counts.exception;
    } else {
      EXPECT_EQ(fp, baseline) << "supervised report diverged at " << width;
      EXPECT_EQ(counts.exception, baseline_exceptions);
    }
  }
}

TEST(Parallel, UnsupervisedThrowPropagatesFromWait) {
  // Without a supervisor there is no containment: the first failing unit's
  // exception surfaces from Process() — from the merge point, not from a
  // worker thread.
  core::Executor executor(4);
  core::Executor::Batch batch(&executor);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    batch.Run([&ran, i] {
      if (i == 5) throw std::runtime_error("boom");
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(batch.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 15);  // siblings all ran to completion
}

TEST(Parallel, ExecutorSerialRunsInline) {
  core::Executor executor(1);
  EXPECT_TRUE(executor.serial());
  EXPECT_EQ(executor.threads(), 1);
  core::Executor::Batch batch(&executor);
  int order = 0;
  int first = -1, second = -1;
  batch.Run([&] { first = order++; });
  batch.Run([&] { second = order++; });
  batch.Wait();
  EXPECT_EQ(first, 0);  // inline mode: submission order, immediate
  EXPECT_EQ(second, 1);
}

TEST(Parallel, ExecutorRunsEveryTaskOnce) {
  core::Executor executor(8);
  std::vector<std::atomic<int>> hits(500);
  core::Executor::Batch batch(&executor);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    batch.Run([&hits, i] { hits[i].fetch_add(1); });
  }
  batch.Wait();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

// ------------------------------------------------------- config validation

TEST(Parallel, StreamingConfigValidateRejectsBadConfigs) {
  const auto bad = [](auto mutate) {
    core::StreamingMonitor::Config cfg;
    mutate(cfg);
    EXPECT_THROW(core::StreamingMonitor m(cfg), std::invalid_argument);
  };
  bad([](auto& c) { c.overlap_samples = c.block_samples; });
  bad([](auto& c) { c.overlap_samples = c.block_samples + 1; });
  bad([](auto& c) { c.block_samples = 0; });
  bad([](auto& c) { c.threads = 0; });
  bad([](auto& c) { c.threads = -3; });
  bad([](auto& c) { c.max_queue_blocks = 0; });
  bad([](auto& c) { c.cpu_budget = -0.5; });
  bad([](auto& c) { c.supervisor.demod_limits.max_cpu_seconds = -1.0; });
  // The defaults and a widened config are valid.
  core::StreamingMonitor::Config ok;
  EXPECT_NO_THROW(ok.Validate());
  ok.threads = 4;
  ok.max_queue_blocks = 3;
  EXPECT_NO_THROW(ok.Validate());
}

// ------------------------------------------------------------- result sink

TEST(Parallel, PushIsPushSegmentWithAutoTimestamp) {
  const auto x = MixedEther(/*seed=*/7);
  const auto all = dsp::const_sample_span(x);
  const std::size_t half = x.size() / 2;

  core::StreamingMonitor::Config mcfg;
  mcfg.block_samples = 400'000;
  mcfg.overlap_samples = 160'000;

  core::CollectingSink a;
  {
    auto cfg = mcfg;
    cfg.sink = &a;
    core::StreamingMonitor m(cfg);
    m.Push(all.first(half));
    m.Push(all.subspan(half));
    m.Flush();
  }
  core::CollectingSink b;
  {
    auto cfg = mcfg;
    cfg.sink = &b;
    core::StreamingMonitor m(cfg);
    m.PushSegment(0, all.first(half));
    m.PushSegment(static_cast<std::int64_t>(half), all.subspan(half));
    m.Flush();
  }
  ASSERT_FALSE(Fingerprint(a).empty());
  EXPECT_EQ(Fingerprint(a), Fingerprint(b));
}

TEST(Parallel, SinkAndLegacyCallbacksSeeTheSameResults) {
  // Back-compat contract: the deprecated callback quartet keeps firing, in
  // the same order, alongside a configured sink (ZigBee excepted — the
  // quartet never had a ZigBee slot).
  const auto x = MixedEther(/*seed=*/19);
  core::StreamingMonitor::Config mcfg;
  mcfg.block_samples = 400'000;
  mcfg.overlap_samples = 160'000;
  core::CollectingSink sink;
  mcfg.sink = &sink;
  core::StreamingMonitor monitor(mcfg);
  core::CollectingSink legacy;
  monitor.on_wifi_frame = [&](const rfdump::phy80211::DecodedFrame& f) {
    legacy.OnWifiFrame(f);
  };
  monitor.on_bt_packet = [&](const rfdump::phybt::DecodedBtPacket& p) {
    legacy.OnBtPacket(p);
  };
  monitor.on_detection = [&](const core::Detection& d) {
    legacy.OnDetection(d);
  };
  monitor.on_health = [&](const core::HealthReport& h) { legacy.OnHealth(h); };
  monitor.Push(x);
  monitor.Flush();

  ASSERT_FALSE(sink.wifi_frames.empty());
  EXPECT_EQ(Fps(sink.wifi_frames), Fps(legacy.wifi_frames));
  EXPECT_EQ(Fps(sink.bt_packets), Fps(legacy.bt_packets));
  EXPECT_EQ(Fps(sink.detections), Fps(legacy.detections));
  EXPECT_EQ(sink.health.size(), legacy.health.size());
}

// A sink that trips if the monitor ever delivers two results concurrently.
// The ResultSink threading contract promises emitters serialise all calls —
// that guarantee is what lets CollectingSink (and any user sink) stay
// lock-free, so it gets verified directly at every executor width instead
// of trusted. Violations are counted atomically rather than EXPECTed in the
// hot path: if the contract *were* broken, gtest's failure machinery would
// itself be racing.
class ReentryGuardSink final : public core::ResultSink {
 public:
  core::CollectingSink inner;
  std::atomic<int> overlaps{0};

  void OnWifiFrame(const rfdump::phy80211::DecodedFrame& f) override {
    const Guard g(this);
    inner.OnWifiFrame(f);
  }
  void OnBtPacket(const rfdump::phybt::DecodedBtPacket& p) override {
    const Guard g(this);
    inner.OnBtPacket(p);
  }
  void OnZbFrame(const rfdump::phyzigbee::DecodedZbFrame& f) override {
    const Guard g(this);
    inner.OnZbFrame(f);
  }
  void OnDetection(const core::Detection& d) override {
    const Guard g(this);
    inner.OnDetection(d);
  }
  void OnHealth(const core::HealthReport& h) override {
    const Guard g(this);
    inner.OnHealth(h);
  }

 private:
  struct Guard {
    explicit Guard(ReentryGuardSink* s) : s_(s) {
      if (s_->busy_.exchange(true, std::memory_order_acquire)) {
        s_->overlaps.fetch_add(1, std::memory_order_relaxed);
      }
      // Widen the race window so a violation cannot slip through unseen
      // (atomic loads, so the loop survives optimisation).
      for (int spin = 0; spin < 200; ++spin) {
        (void)s_->busy_.load(std::memory_order_relaxed);
      }
    }
    ~Guard() { s_->busy_.store(false, std::memory_order_release); }
    ReentryGuardSink* s_;
  };

  std::atomic<bool> busy_{false};
};

TEST(Parallel, CollectingSinkAndLegacyShimsUnderConcurrentDelivery) {
  // A pipelined monitor (worker threads + queued blocks) must deliver to one
  // unsynchronised CollectingSink and to the legacy callback shims exactly
  // what the serial run produces: same results, same order, never two calls
  // at once.
  const auto x = MixedEther(/*seed=*/23);
  std::vector<std::string> baseline;
  for (const int width : kWidths) {
    core::StreamingMonitor::Config mcfg;
    mcfg.block_samples = 400'000;
    mcfg.overlap_samples = 160'000;
    mcfg.threads = width;
    mcfg.max_queue_blocks = 3;  // analysis overlaps ingest across blocks
    ReentryGuardSink sink;
    mcfg.sink = &sink;
    core::StreamingMonitor monitor(mcfg);
    core::CollectingSink legacy;
    monitor.on_wifi_frame = [&](const rfdump::phy80211::DecodedFrame& f) {
      legacy.OnWifiFrame(f);
    };
    monitor.on_bt_packet = [&](const rfdump::phybt::DecodedBtPacket& p) {
      legacy.OnBtPacket(p);
    };
    monitor.on_detection = [&](const core::Detection& d) {
      legacy.OnDetection(d);
    };
    monitor.on_health = [&](const core::HealthReport& h) {
      legacy.OnHealth(h);
    };
    monitor.Push(x);
    monitor.Flush();

    EXPECT_EQ(sink.overlaps.load(), 0)
        << "concurrent sink delivery at --threads " << width;
    const auto fp = Fingerprint(sink.inner);
    ASSERT_FALSE(fp.empty());
    if (width == kWidths[0]) {
      baseline = fp;
    } else {
      EXPECT_EQ(fp, baseline) << "sink results diverged at width " << width;
    }
    // The deprecated quartet mirrors the sink at every width (no ZigBee
    // slot — the quartet never had one).
    EXPECT_EQ(Fps(sink.inner.wifi_frames), Fps(legacy.wifi_frames));
    EXPECT_EQ(Fps(sink.inner.bt_packets), Fps(legacy.bt_packets));
    EXPECT_EQ(Fps(sink.inner.detections), Fps(legacy.detections));
    EXPECT_EQ(sink.inner.health.size(), legacy.health.size());
  }
}

TEST(Parallel, FunctionSinkRoutesEachSlot) {
  core::FunctionSink sink;
  int wifi = 0, bt = 0, zb = 0, det = 0, health = 0;
  sink.on_wifi_frame = [&](const rfdump::phy80211::DecodedFrame&) { ++wifi; };
  sink.on_bt_packet = [&](const rfdump::phybt::DecodedBtPacket&) { ++bt; };
  sink.on_zb_frame = [&](const rfdump::phyzigbee::DecodedZbFrame&) { ++zb; };
  sink.on_detection = [&](const core::Detection&) { ++det; };
  sink.on_health = [&](const core::HealthReport&) { ++health; };
  core::ResultSink& as_sink = sink;
  as_sink.OnWifiFrame({});
  as_sink.OnBtPacket({});
  as_sink.OnZbFrame({});
  as_sink.OnDetection({});
  as_sink.OnHealth({});
  EXPECT_EQ(wifi, 1);
  EXPECT_EQ(bt, 1);
  EXPECT_EQ(zb, 1);
  EXPECT_EQ(det, 1);
  EXPECT_EQ(health, 1);
}

}  // namespace
