// FIR filter and design tests: passband/stopband response, streaming
// equivalence, design properties of the low-pass / Gaussian / RRC kernels.

#include <cmath>
#include <gtest/gtest.h>

#include "rfdump/dsp/fir.hpp"
#include "rfdump/dsp/types.hpp"

namespace dsp = rfdump::dsp;

namespace {

// Measures steady-state amplitude gain of `filter` at frequency `freq`
// (normalized, cycles/sample).
double ToneGain(const std::vector<float>& taps, double freq) {
  // Evaluate H(e^{j2pi f}) directly from the taps.
  std::complex<double> h{0.0, 0.0};
  for (std::size_t k = 0; k < taps.size(); ++k) {
    const double ph = -2.0 * std::numbers::pi * freq * static_cast<double>(k);
    h += static_cast<double>(taps[k]) *
         std::complex<double>(std::cos(ph), std::sin(ph));
  }
  return std::abs(h);
}

TEST(FirDesign, LowPassUnityDcGain) {
  const auto taps = dsp::DesignLowPass(1e6, 8e6, 63);
  EXPECT_NEAR(ToneGain(taps, 0.0), 1.0, 1e-6);
}

TEST(FirDesign, LowPassPassbandAndStopband) {
  const auto taps = dsp::DesignLowPass(1e6, 8e6, 101);
  EXPECT_NEAR(ToneGain(taps, 0.05), 1.0, 0.02);   // 400 kHz: passband
  EXPECT_NEAR(ToneGain(taps, 0.125), 0.5, 0.05);  // cutoff: -6 dB
  EXPECT_LT(ToneGain(taps, 0.25), 0.01);          // 2 MHz: stopband
  EXPECT_LT(ToneGain(taps, 0.45), 0.01);          // deep stopband
}

TEST(FirDesign, RejectsZeroTaps) {
  EXPECT_THROW(dsp::DesignLowPass(1e6, 8e6, 0), std::invalid_argument);
  EXPECT_THROW(dsp::FirFilter({}), std::invalid_argument);
}

TEST(FirDesign, GaussianIsSymmetricUnitDc) {
  const auto taps = dsp::DesignGaussian(0.5, 8, 4);
  ASSERT_EQ(taps.size(), 8u * 4u + 1u);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    sum += taps[i];
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-6f) << i;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  // The peak is at the center.
  const std::size_t mid = taps.size() / 2;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_LE(taps[i], taps[mid] + 1e-7f);
  }
}

TEST(FirDesign, GaussianNarrowerForSmallerBt) {
  // Smaller BT = more smearing = wider impulse response = smaller peak.
  const auto bt05 = dsp::DesignGaussian(0.5, 8, 4);
  const auto bt03 = dsp::DesignGaussian(0.3, 8, 4);
  EXPECT_GT(bt05[bt05.size() / 2], bt03[bt03.size() / 2]);
}

TEST(FirDesign, RootRaisedCosineUnitEnergy) {
  const auto taps = dsp::DesignRootRaisedCosine(0.35, 4, 8);
  double energy = 0.0;
  for (float t : taps) energy += static_cast<double>(t) * t;
  EXPECT_NEAR(energy, 1.0, 1e-5);
  // Symmetric.
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-5f);
  }
}

TEST(FirFilter, IdentityFilterPassesThrough) {
  dsp::FirFilter f({1.0f});
  dsp::SampleVec x = {{1.0f, 2.0f}, {3.0f, -1.0f}, {0.5f, 0.0f}};
  const auto y = f.Filtered(x);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y[i], x[i]);
  }
}

TEST(FirFilter, DelayFilterShifts) {
  dsp::FirFilter f({0.0f, 0.0f, 1.0f});  // two-sample delay
  dsp::SampleVec x = {{1.0f, 0.0f}, {2.0f, 0.0f}, {3.0f, 0.0f}, {4.0f, 0.0f}};
  const auto y = f.Filtered(x);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_NEAR(std::abs(y[0]), 0.0f, 1e-7f);
  EXPECT_NEAR(std::abs(y[1]), 0.0f, 1e-7f);
  EXPECT_NEAR(y[2].real(), 1.0f, 1e-6f);
  EXPECT_NEAR(y[3].real(), 2.0f, 1e-6f);
}

TEST(FirFilter, StreamingMatchesOneShot) {
  const auto taps = dsp::DesignLowPass(1e6, 8e6, 31);
  dsp::SampleVec x(1000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = dsp::cfloat(std::sin(0.1f * static_cast<float>(i)),
                       std::cos(0.13f * static_cast<float>(i)));
  }
  dsp::FirFilter one_shot(taps);
  const auto expect = one_shot.Filtered(x);

  dsp::FirFilter streaming(taps);
  dsp::SampleVec got;
  // Feed in deliberately ragged chunk sizes, including tiny ones smaller than
  // the filter order.
  const std::size_t chunks[] = {1, 2, 7, 100, 3, 500, 387};
  std::size_t pos = 0;
  for (std::size_t c : chunks) {
    const std::size_t n = std::min(c, x.size() - pos);
    streaming.Process(dsp::const_sample_span(x).subspan(pos, n), got);
    pos += n;
  }
  ASSERT_EQ(pos, x.size());
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(std::abs(got[i] - expect[i]), 0.0f, 1e-5f) << "i=" << i;
  }
}

TEST(FirFilter, ResetClearsHistory) {
  dsp::FirFilter f({0.5f, 0.5f});
  dsp::SampleVec x = {{2.0f, 0.0f}};
  auto y1 = f.Filtered(x);
  f.Reset();
  auto y2 = f.Filtered(x);
  ASSERT_EQ(y1.size(), 1u);
  ASSERT_EQ(y2.size(), 1u);
  EXPECT_EQ(y1[0], y2[0]);  // identical because history was cleared
  EXPECT_NEAR(y2[0].real(), 1.0f, 1e-6f);
}

TEST(FirFilter, GroupDelayReported) {
  dsp::FirFilter f(dsp::DesignLowPass(1e6, 8e6, 31));
  EXPECT_DOUBLE_EQ(f.GroupDelay(), 15.0);
}

}  // namespace
