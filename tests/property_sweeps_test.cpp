// Parameterized property sweeps across the PHY layers: loopback must hold
// for every (rate x size) combination, Bluetooth for every packet type and
// channel, and the detectors' invariants across SNR.

#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/dsp/simd.hpp"
#include "rfdump/dsp/db.hpp"
#include "rfdump/dsp/energy.hpp"
#include "rfdump/phy80211/demodulator.hpp"
#include "rfdump/phy80211/modulator.hpp"
#include "rfdump/phybt/demodulator.hpp"
#include "rfdump/phybt/hopping.hpp"
#include "rfdump/phybt/modulator.hpp"
#include "rfdump/util/crc.hpp"
#include "rfdump/util/rng.hpp"

namespace phy = rfdump::phy80211;
namespace bt = rfdump::phybt;
namespace dsp = rfdump::dsp;
using rfdump::util::Xoshiro256;

namespace {

std::vector<std::uint8_t> MpduWithFcs(std::size_t body, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> mpdu(body);
  for (auto& b : mpdu) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  const std::uint32_t fcs = rfdump::util::Crc32(mpdu);
  for (int i = 0; i < 4; ++i) {
    mpdu.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFF));
  }
  return mpdu;
}

// ------------------------------------------------- 802.11 rate x size sweep

class WifiLoopbackSweep
    : public ::testing::TestWithParam<std::tuple<phy::Rate, std::size_t>> {};

TEST_P(WifiLoopbackSweep, RoundTrips) {
  const auto [rate, body] = GetParam();
  const auto mpdu = MpduWithFcs(body, body * 31 + 7);
  phy::Modulator mod;
  const auto samples = mod.Modulate(mpdu, rate);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u) << phy::RateName(rate) << " " << body << "B";
  EXPECT_EQ(frames[0].header.rate, rate);
  EXPECT_TRUE(frames[0].payload_decoded);
  EXPECT_TRUE(frames[0].fcs_ok) << phy::RateName(rate) << " " << body << "B";
  EXPECT_EQ(frames[0].mpdu, mpdu);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSizes, WifiLoopbackSweep,
    ::testing::Combine(::testing::Values(phy::Rate::k1Mbps, phy::Rate::k2Mbps,
                                         phy::Rate::k5_5Mbps,
                                         phy::Rate::k11Mbps),
                       ::testing::Values(std::size_t{28}, std::size_t{60},
                                         std::size_t{96})));

// ------------------------------------------------ Bluetooth type x channel

class BtLoopbackSweep
    : public ::testing::TestWithParam<std::tuple<bt::PacketType, int>> {};

TEST_P(BtLoopbackSweep, RoundTrips) {
  const auto [type, vis_idx] = GetParam();
  bt::DeviceAddress addr{0x2A96EF, 0x47};
  bt::PacketHeader hdr;
  hdr.type = type;
  const std::size_t size = std::min<std::size_t>(
      bt::MaxPayloadBytes(type), 64);
  std::vector<std::uint8_t> payload(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 3 + 1);
  }
  // Find a clk hopping onto the requested visible channel.
  std::uint32_t clk = 0;
  while (bt::HopChannel(addr.lap, clk) !=
         bt::kFirstVisibleChannel + vis_idx) {
    ++clk;
  }
  const auto burst = bt::ModulatePacket(addr, hdr, payload, clk);
  ASSERT_FALSE(burst.samples.empty());

  dsp::SampleVec band(2000, dsp::cfloat{0.0f, 0.0f});
  band.insert(band.end(), burst.samples.begin(), burst.samples.end());
  band.insert(band.end(), 2000, dsp::cfloat{0.0f, 0.0f});
  Xoshiro256 rng(77);
  rfdump::channel::AddAwgn(band, 1e-4, rng);

  bt::Demodulator demod;
  const auto pkts = demod.DecodeAll(band);
  ASSERT_EQ(pkts.size(), 1u)
      << bt::PacketTypeName(type) << " ch " << vis_idx;
  EXPECT_EQ(pkts[0].channel_index, vis_idx);
  EXPECT_EQ(pkts[0].packet.header.type, type);
  if (size > 0) {
    EXPECT_TRUE(pkts[0].packet.crc_ok);
    EXPECT_EQ(pkts[0].packet.payload, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndChannels, BtLoopbackSweep,
    ::testing::Combine(::testing::Values(bt::PacketType::kPoll,
                                         bt::PacketType::kDh1,
                                         bt::PacketType::kDh3,
                                         bt::PacketType::kDh5),
                       ::testing::Values(0, 3, 7)));

// ---------------------------------------- SIMD dispatch-tier PHY differential

// Per-PHY companion to the full-pipeline fingerprint differential in
// tests/conformance_test.cpp: for seeded noisy loopbacks, every supported
// dispatch tier must decode byte-identical frames to the forced-scalar
// reference. Catches tier drift at the layer where it would first surface.
class DispatchTierSeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void TearDown() override { dsp::simd::ClearForcedTier(); }

  static std::vector<dsp::simd::Tier> VectorTiers() {
    std::vector<dsp::simd::Tier> tiers;
    for (int t = 1; t < dsp::simd::kTierCount; ++t) {
      const auto tier = static_cast<dsp::simd::Tier>(t);
      if (dsp::simd::TierSupported(tier)) tiers.push_back(tier);
    }
    return tiers;
  }
};

TEST_P(DispatchTierSeedSweep, WifiDecodesBitIdenticalAcrossTiers) {
  const std::uint64_t seed = GetParam();
  const auto mpdu = MpduWithFcs(40 + seed % 100, seed);
  phy::Modulator mod;
  auto samples = mod.Modulate(mpdu, phy::Rate::k1Mbps);
  Xoshiro256 rng(seed * 2 + 1);
  rfdump::channel::AddAwgn(samples, 3e-3, rng);

  dsp::simd::ForceTier(dsp::simd::Tier::kScalar);
  phy::Demodulator ref_demod;
  const auto ref = ref_demod.DecodeAll(samples);
  for (const auto tier : VectorTiers()) {
    dsp::simd::ForceTier(tier);
    phy::Demodulator demod;
    const auto got = demod.DecodeAll(samples);
    ASSERT_EQ(got.size(), ref.size()) << dsp::simd::TierName(tier);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].start_sample, ref[i].start_sample);
      EXPECT_EQ(got[i].end_sample, ref[i].end_sample);
      EXPECT_EQ(got[i].fcs_ok, ref[i].fcs_ok);
      EXPECT_EQ(got[i].mpdu, ref[i].mpdu) << dsp::simd::TierName(tier);
    }
  }
}

TEST_P(DispatchTierSeedSweep, BtDecodesBitIdenticalAcrossTiers) {
  const std::uint64_t seed = GetParam();
  bt::DeviceAddress addr{0x2A96EF, 0x47};
  bt::PacketHeader hdr;
  hdr.type = bt::PacketType::kDh1;
  std::vector<std::uint8_t> payload(17);
  Xoshiro256 prng(seed);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(prng.UniformInt(0, 255));
  }
  const auto burst = bt::ModulatePacket(addr, hdr, payload, 0);
  dsp::SampleVec band(1500, dsp::cfloat{0.0f, 0.0f});
  band.insert(band.end(), burst.samples.begin(), burst.samples.end());
  band.insert(band.end(), 1500, dsp::cfloat{0.0f, 0.0f});
  Xoshiro256 rng(seed * 2 + 1);
  rfdump::channel::AddAwgn(band, 1e-3, rng);

  dsp::simd::ForceTier(dsp::simd::Tier::kScalar);
  bt::Demodulator ref_demod;
  const auto ref = ref_demod.DecodeAll(band);
  for (const auto tier : VectorTiers()) {
    dsp::simd::ForceTier(tier);
    bt::Demodulator demod;
    const auto got = demod.DecodeAll(band);
    ASSERT_EQ(got.size(), ref.size()) << dsp::simd::TierName(tier);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].channel_index, ref[i].channel_index);
      EXPECT_EQ(got[i].start_sample, ref[i].start_sample);
      EXPECT_EQ(got[i].packet.crc_ok, ref[i].packet.crc_ok);
      EXPECT_EQ(got[i].packet.payload, ref[i].packet.payload)
          << dsp::simd::TierName(tier);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, DispatchTierSeedSweep,
                         ::testing::Values(201, 202, 203, 204, 205, 206, 207,
                                           208, 209, 210));

// -------------------------------------------------- peak detector invariants

class PeakDetectorSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(PeakDetectorSnrSweep, BurstCountMonotonicWithSnr) {
  // At any SNR, a detected peak must lie within the true burst (plus edge
  // tolerance), i.e. no hallucinated peaks far from signal.
  const double snr = GetParam();
  dsp::SampleVec x(60000, dsp::cfloat{0.0f, 0.0f});
  const float amp = static_cast<float>(
      std::sqrt(rfdump::dsp::DbToPower(snr)));
  for (std::size_t i = 20000; i < 28000; ++i) x[i] = {amp, 0.0f};
  Xoshiro256 rng(static_cast<std::uint64_t>(snr * 100) + 5);
  rfdump::channel::AddAwgn(x, 1.0, rng);

  rfdump::core::PeakDetector det;
  for (std::size_t at = 0; at < x.size(); at += rfdump::core::kChunkSamples) {
    det.PushChunk(
        dsp::const_sample_span(x).subspan(
            at, std::min(rfdump::core::kChunkSamples, x.size() - at)),
        static_cast<std::int64_t>(at));
  }
  det.Flush();
  for (const auto& p : det.history()) {
    EXPECT_GE(p.start_sample, 20000 - 200) << "snr " << snr;
    EXPECT_LE(p.end_sample, 28000 + 200) << "snr " << snr;
  }
  if (snr >= 6.0) {
    ASSERT_EQ(det.history().size(), 1u) << "snr " << snr;
    EXPECT_NEAR(static_cast<double>(det.history()[0].length()), 8000.0,
                150.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Snrs, PeakDetectorSnrSweep,
                         ::testing::Values(-10.0, 0.0, 3.0, 6.0, 10.0, 20.0,
                                           30.0));

// ------------------------------------------------------ CFO tolerance sweep

class CfoSweep : public ::testing::TestWithParam<double> {};

TEST_P(CfoSweep, WifiDecodesUnderCfo) {
  const double cfo = GetParam();
  const auto mpdu = MpduWithFcs(96, 99);
  phy::Modulator mod;
  auto samples = mod.Modulate(mpdu, phy::Rate::k1Mbps);
  rfdump::channel::ApplyFrequencyOffset(samples, cfo, dsp::kSampleRateHz, 0);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u) << "cfo " << cfo;
  EXPECT_TRUE(frames[0].fcs_ok) << "cfo " << cfo;
}

// Crystal tolerance at 2.4 GHz is ~+/-25 ppm => +/-60 kHz worst case between
// two radios; the demodulator must cover that range.
INSTANTIATE_TEST_SUITE_P(Offsets, CfoSweep,
                         ::testing::Values(-60e3, -30e3, -10e3, 0.0, 10e3,
                                           30e3, 60e3));

// ---------------------------------------------- quantized front-end sweep

class AdcBitsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdcBitsSweep, WifiSurvivesQuantization) {
  const unsigned bits = GetParam();
  const auto mpdu = MpduWithFcs(60, 123);
  phy::Modulator mod;
  auto samples = mod.Modulate(mpdu, phy::Rate::k1Mbps);
  Xoshiro256 rng(9);
  rfdump::channel::ScaleToPower(samples, rfdump::dsp::DbToPower(20.0));
  rfdump::channel::AddAwgn(samples, 1.0, rng);
  rfdump::channel::Quantize(samples, bits, 64.0f);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u) << bits << " bits";
  EXPECT_TRUE(frames[0].fcs_ok) << bits << " bits";
}

// The USRP 1 has 12-bit converters; decoding must hold down to ~6 bits with
// this signal level and full scale.
INSTANTIATE_TEST_SUITE_P(Bits, AdcBitsSweep,
                         ::testing::Values(6u, 8u, 12u, 14u));

}  // namespace
