// StreamingMonitor tests: segment-fed monitoring must find exactly what the
// one-shot batch pipeline finds, with no duplicates or losses at block
// boundaries, regardless of segment sizes.

#include <gtest/gtest.h>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/streaming.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;

namespace {

struct Scenario {
  dsp::SampleVec samples;
  std::size_t wifi_frames_expected;
};

Scenario MakeScenario(std::size_t pings, std::uint64_t seed) {
  rfdump::emu::Ether ether(rfdump::emu::Ether::Config{}, seed);
  rfdump::traffic::WifiPingConfig cfg;
  cfg.count = pings;
  cfg.interval_us = 25000.0;
  cfg.snr_db = 25.0;
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, cfg, 8000);
  Scenario s;
  s.samples = ether.Render(session.end_sample + 8000);
  s.wifi_frames_expected = pings * 4;
  return s;
}

core::StreamingMonitor::Config SmallBlocks() {
  core::StreamingMonitor::Config cfg;
  cfg.block_samples = 400'000;   // 50 ms blocks: many boundaries per scenario
  cfg.overlap_samples = 160'000;
  return cfg;
}

TEST(Streaming, MatchesBatchResults) {
  const auto scenario = MakeScenario(10, 1);

  core::RFDumpPipeline batch;
  const auto batch_report = batch.Process(scenario.samples);

  core::StreamingMonitor monitor(SmallBlocks());
  std::vector<std::int64_t> streamed_starts;
  monitor.on_wifi_frame = [&](const rfdump::phy80211::DecodedFrame& f) {
    streamed_starts.push_back(f.start_sample);
  };
  monitor.Push(scenario.samples);
  monitor.Flush();

  ASSERT_EQ(streamed_starts.size(), batch_report.wifi_frames.size());
  for (std::size_t i = 0; i < streamed_starts.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(streamed_starts[i]),
                static_cast<double>(batch_report.wifi_frames[i].start_sample),
                32.0)
        << i;
  }
}

TEST(Streaming, RaggedSegmentsNoDuplicatesNoLosses) {
  const auto scenario = MakeScenario(8, 2);
  core::StreamingMonitor monitor(SmallBlocks());
  std::vector<std::int64_t> starts;
  monitor.on_wifi_frame = [&](const rfdump::phy80211::DecodedFrame& f) {
    starts.push_back(f.start_sample);
  };
  // Push in deliberately awkward segment sizes.
  std::size_t pos = 0;
  const std::size_t sizes[] = {1, 999, 100'000, 7, 350'000, 123'456};
  std::size_t i = 0;
  while (pos < scenario.samples.size()) {
    const std::size_t n =
        std::min(sizes[i++ % std::size(sizes)], scenario.samples.size() - pos);
    monitor.Push(
        dsp::const_sample_span(scenario.samples).subspan(pos, n));
    pos += n;
  }
  monitor.Flush();

  EXPECT_EQ(starts.size(), scenario.wifi_frames_expected);
  // Strictly increasing starts => no duplicates.
  for (std::size_t k = 1; k < starts.size(); ++k) {
    EXPECT_GT(starts[k], starts[k - 1]) << k;
  }
}

TEST(Streaming, FrameOnBlockBoundaryReportedOnce) {
  // Engineer a frame that straddles the first block boundary.
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig cfg;
  cfg.count = 1;
  cfg.snr_db = 25.0;
  core::StreamingMonitor::Config mcfg = SmallBlocks();
  // Frame is ~35k samples; start it 10k before the boundary.
  const auto start =
      static_cast<std::int64_t>(mcfg.block_samples) - 10'000;
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, cfg, start);
  const auto x = ether.Render(session.end_sample + 8000);

  core::StreamingMonitor monitor(mcfg);
  int frames = 0;
  monitor.on_wifi_frame =
      [&](const rfdump::phy80211::DecodedFrame&) { ++frames; };
  monitor.Push(x);
  monitor.Flush();
  EXPECT_EQ(frames, 4);  // DATA + ACK + DATA + ACK, each exactly once
}

TEST(Streaming, CostsAccumulate) {
  const auto scenario = MakeScenario(4, 3);
  core::StreamingMonitor monitor(SmallBlocks());
  monitor.Push(scenario.samples);
  monitor.Flush();
  // Overlap regions are processed twice, so total processed samples exceed
  // the trace length by (blocks - 1) x overlap.
  EXPECT_GE(monitor.samples_processed(), scenario.samples.size());
  EXPECT_GT(monitor.CpuOverRealTime(), 0.0);
  bool has_peak_stage = false;
  for (const auto& c : monitor.costs()) {
    if (c.name == "detect/peak") has_peak_stage = true;
  }
  EXPECT_TRUE(has_peak_stage);
}

TEST(Streaming, FlushOnEmptyIsNoop) {
  core::StreamingMonitor monitor;
  int calls = 0;
  monitor.on_wifi_frame =
      [&](const rfdump::phy80211::DecodedFrame&) { ++calls; };
  monitor.Flush();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(monitor.samples_processed(), 0u);
}

TEST(Streaming, FlushTwiceEmitsNothingTwice) {
  const auto scenario = MakeScenario(3, 7);
  core::StreamingMonitor monitor(SmallBlocks());
  int frames = 0;
  monitor.on_wifi_frame =
      [&](const rfdump::phy80211::DecodedFrame&) { ++frames; };
  monitor.Push(scenario.samples);
  monitor.Flush();
  const int after_first = frames;
  const auto processed = monitor.samples_processed();
  EXPECT_EQ(after_first, static_cast<int>(scenario.wifi_frames_expected));
  monitor.Flush();  // must be a no-op, not a re-emit
  EXPECT_EQ(frames, after_first);
  EXPECT_EQ(monitor.samples_processed(), processed);
  // The stream can continue after a flush: positions stay absolute.
  monitor.Push(scenario.samples);  // contiguous continuation (arbitrary data)
  monitor.Flush();
  EXPECT_GT(monitor.samples_processed(), processed);
}

TEST(Streaming, SegmentLargerThanBlockPlusOverlap) {
  // One Push bigger than block + overlap must be chopped into the same block
  // schedule, with no duplicate or lost frames.
  const auto scenario = MakeScenario(6, 9);
  auto cfg = SmallBlocks();
  ASSERT_GT(scenario.samples.size(),
            cfg.block_samples + cfg.overlap_samples);
  core::StreamingMonitor monitor(cfg);
  std::vector<std::int64_t> starts;
  monitor.on_wifi_frame = [&](const rfdump::phy80211::DecodedFrame& f) {
    starts.push_back(f.start_sample);
  };
  monitor.Push(scenario.samples);  // single oversized segment
  monitor.Flush();
  EXPECT_EQ(starts.size(), scenario.wifi_frames_expected);
  for (std::size_t k = 1; k < starts.size(); ++k) {
    EXPECT_GT(starts[k], starts[k - 1]) << k;
  }
}

}  // namespace
