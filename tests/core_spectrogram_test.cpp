// Spectrogram utility + ZigBee-in-pipeline tests.

#include <algorithm>

#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/spectrogram.hpp"
#include "rfdump/dsp/nco.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/traffic/traffic.hpp"
#include "rfdump/util/rng.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
using rfdump::util::Xoshiro256;

namespace {

TEST(Spectrogram, ToneLandsInCorrectBin) {
  // A tone at +2 MHz must light up the bin at 3/4 of the DC-centred axis.
  dsp::SampleVec x(64 * 64);
  dsp::Nco nco(2e6, dsp::kSampleRateHz);
  for (auto& s : x) s = nco.Next();
  Xoshiro256 rng(1);
  rfdump::channel::AddAwgn(x, 0.01, rng);
  const auto gram = core::ComputeSpectrogram(x, 64, 8);
  ASSERT_GT(gram.rows, 0u);
  for (std::size_t row = 0; row < gram.rows; ++row) {
    std::size_t peak = 0;
    for (std::size_t k = 1; k < gram.bins; ++k) {
      if (gram.at(row, k) > gram.at(row, peak)) peak = k;
    }
    // +2 MHz of 8 MHz span -> bin 32 + 16 = 48.
    EXPECT_NEAR(static_cast<double>(peak), 48.0, 1.0) << "row " << row;
  }
}

TEST(Spectrogram, QuietVsBusyRows) {
  // Half silence, half wideband noise burst: later rows are hotter.
  dsp::SampleVec x(32768, dsp::cfloat{0.0f, 0.0f});
  Xoshiro256 rng(2);
  auto burst = dsp::sample_span(x).subspan(16384);
  rfdump::channel::AddAwgn(burst, 10.0, rng);
  const auto gram = core::ComputeSpectrogram(x, 32, 8);
  ASSERT_GE(gram.rows, 4u);
  double early = 0.0, late = 0.0;
  for (std::size_t k = 0; k < gram.bins; ++k) {
    early += gram.at(0, k);
    late += gram.at(gram.rows - 1, k);
  }
  EXPECT_GT(late, early + 10.0 * static_cast<double>(gram.bins));
}

TEST(Spectrogram, AsciiRenderShape) {
  dsp::SampleVec x(8192);
  Xoshiro256 rng(3);
  rfdump::channel::AddAwgn(x, 1.0, rng);
  const auto gram = core::ComputeSpectrogram(x, 32, 4);
  const auto art = core::RenderAscii(gram);
  // Header + one line per row, each row gram.bins chars + time prefix.
  const auto lines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), gram.rows + 1);
  EXPECT_NE(art.find("-4 MHz"), std::string::npos);
}

TEST(Spectrogram, DegenerateInputs) {
  EXPECT_EQ(core::ComputeSpectrogram({}, 64, 8).rows, 0u);
  EXPECT_EQ(core::ComputeSpectrogram({}, 63, 8).rows, 0u);  // non-pow2
  const auto art = core::RenderAscii(core::Spectrogram{});
  EXPECT_NE(art.find("empty"), std::string::npos);
}

TEST(ZigbeePipeline, DetectAndDecodeEndToEnd) {
  rfdump::emu::Ether ether;
  rfdump::traffic::ZigbeeConfig cfg;
  cfg.count = 12;
  cfg.snr_db = 20.0;
  cfg.interval_us = 0.0;  // LIFS-spaced, so the timing detector fires
  const auto session = rfdump::traffic::GenerateZigbee(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  core::RFDumpPipeline::Config pcfg;
  pcfg.zigbee_detector = true;
  pcfg.analysis.zigbee_demod = true;
  pcfg.analysis.wifi_demod = false;
  pcfg.analysis.bt_demods = 0;
  core::RFDumpPipeline pipeline(pcfg);
  const auto report = pipeline.Process(x);

  // Timing detector tags LIFS-spaced frames; decoder validates them.
  std::size_t zb_tags = 0;
  for (const auto& d : report.detections) {
    if (d.protocol == core::Protocol::kZigbee) ++zb_tags;
  }
  EXPECT_GE(zb_tags, 10u);
  EXPECT_GE(report.zb_frames.size(), 8u);
  std::size_t crc_ok = 0;
  for (const auto& f : report.zb_frames) {
    if (f.crc_ok) ++crc_ok;
  }
  EXPECT_GE(crc_ok, 8u);
}

}  // namespace
