// Tests for the short-preamble PLCP extension and the pcap export.

#include <cstdio>
#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/dsp/db.hpp"
#include "rfdump/dsp/energy.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/phy80211/demodulator.hpp"
#include "rfdump/phy80211/modulator.hpp"
#include "rfdump/trace/pcap.hpp"
#include "rfdump/traffic/traffic.hpp"
#include "rfdump/util/crc.hpp"
#include "rfdump/util/rng.hpp"

namespace phy = rfdump::phy80211;
namespace dsp = rfdump::dsp;
using rfdump::util::Xoshiro256;

namespace {

std::vector<std::uint8_t> MpduWithFcs(std::size_t body, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> mpdu(body);
  for (auto& b : mpdu) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  const std::uint32_t fcs = rfdump::util::Crc32(mpdu);
  for (int i = 0; i < 4; ++i) {
    mpdu.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFF));
  }
  return mpdu;
}

// ----------------------------------------------------------- short preamble

TEST(ShortPreamble, BitsStructure) {
  phy::PlcpHeader h;
  h.rate = phy::Rate::k2Mbps;
  h.length_us = 400;
  const auto bits = phy::BuildShortPlcpBits(h);
  ASSERT_EQ(bits.size(), 56u + 16u + 48u);
  for (std::size_t i = 0; i < 56; ++i) EXPECT_EQ(bits[i], 0u) << i;
  // SFD is the time-reversed long SFD.
  const auto sfd =
      rfdump::util::BitsToUintLsbFirst(
          std::span<const std::uint8_t>(bits).subspan(56, 16));
  EXPECT_EQ(sfd, phy::kShortSfd);
}

TEST(ShortPreamble, HalvesPreambleAirtime) {
  EXPECT_DOUBLE_EQ(
      phy::Modulator::FrameAirtimeUs(100, phy::Rate::k2Mbps, true),
      96.0 + 400.0);
  EXPECT_DOUBLE_EQ(
      phy::Modulator::FrameAirtimeUs(100, phy::Rate::k2Mbps, false),
      192.0 + 400.0);
  // 1 Mbps cannot use the short preamble: falls back to long.
  EXPECT_DOUBLE_EQ(
      phy::Modulator::FrameAirtimeUs(100, phy::Rate::k1Mbps, true),
      192.0 + 800.0);
}

class ShortPreambleLoopback : public ::testing::TestWithParam<phy::Rate> {};

TEST_P(ShortPreambleLoopback, RoundTrips) {
  const auto rate = GetParam();
  const auto mpdu = MpduWithFcs(80, 17);
  phy::Modulator::Config mcfg;
  mcfg.short_preamble = true;
  phy::Modulator mod(mcfg);
  const auto samples = mod.Modulate(mpdu, rate);
  // Short-preamble frames really are shorter on air.
  EXPECT_LT(samples.size(),
            phy::Modulator::FrameSampleCount(mpdu.size(), rate, false));
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u) << phy::RateName(rate);
  EXPECT_EQ(frames[0].header.rate, rate);
  EXPECT_TRUE(frames[0].payload_decoded);
  EXPECT_TRUE(frames[0].fcs_ok) << phy::RateName(rate);
  EXPECT_EQ(frames[0].mpdu, mpdu);
}

INSTANTIATE_TEST_SUITE_P(Rates, ShortPreambleLoopback,
                         ::testing::Values(phy::Rate::k2Mbps,
                                           phy::Rate::k5_5Mbps,
                                           phy::Rate::k11Mbps));

TEST(ShortPreamble, NoisyDecode) {
  const auto mpdu = MpduWithFcs(120, 18);
  phy::Modulator::Config mcfg;
  mcfg.short_preamble = true;
  phy::Modulator mod(mcfg);
  auto samples = mod.Modulate(mpdu, phy::Rate::k2Mbps);
  Xoshiro256 rng(19);
  rfdump::channel::ScaleToPower(samples, rfdump::dsp::DbToPower(20.0));
  rfdump::channel::AddAwgn(samples, 1.0, rng);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].fcs_ok);
}

TEST(ShortPreamble, MixedPreamblesInOneStream) {
  const auto m1 = MpduWithFcs(60, 20);
  const auto m2 = MpduWithFcs(60, 21);
  phy::Modulator long_mod;
  phy::Modulator::Config scfg;
  scfg.short_preamble = true;
  phy::Modulator short_mod(scfg);
  auto s = long_mod.Modulate(m1, phy::Rate::k1Mbps);
  s.insert(s.end(), dsp::MicrosToSamples(50), dsp::cfloat{0.0f, 0.0f});
  const auto s2 = short_mod.Modulate(m2, phy::Rate::k2Mbps);
  s.insert(s.end(), s2.begin(), s2.end());
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(s);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].mpdu, m1);
  EXPECT_EQ(frames[1].mpdu, m2);
  EXPECT_EQ(frames[1].header.rate, phy::Rate::k2Mbps);
}

// -------------------------------------------------------------------- pcap

TEST(Pcap, RoundTripsDecodedFrames) {
  // Monitor a small ether and export to pcap.
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig cfg;
  cfg.count = 3;
  cfg.snr_db = 25.0;
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);
  rfdump::core::RFDumpPipeline pipeline;
  const auto report = pipeline.Process(x);
  ASSERT_GE(report.wifi_frames.size(), 10u);

  const std::string path = "/tmp/rfdump_test.pcap";
  const auto written = rfdump::trace::WritePcap(path, report.wifi_frames);
  EXPECT_EQ(written, report.wifi_frames.size());

  std::uint32_t linktype = 0;
  const auto records = rfdump::trace::ReadPcap(path, &linktype);
  EXPECT_EQ(linktype, rfdump::trace::kLinkType80211);
  ASSERT_EQ(records.size(), written);
  // Bytes round-trip and timestamps are monotonic and sample-accurate.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].bytes, report.wifi_frames[i].mpdu) << i;
    const auto expect_us = static_cast<std::uint64_t>(
        static_cast<double>(report.wifi_frames[i].start_sample) /
        dsp::kSampleRateHz * 1e6);
    EXPECT_NEAR(static_cast<double>(records[i].timestamp_us),
                static_cast<double>(expect_us), 2.0)
        << i;
  }
  std::remove(path.c_str());
}

TEST(Pcap, SkipsHeaderOnlyFrames) {
  std::vector<phy::DecodedFrame> frames(2);
  frames[0].payload_decoded = false;  // CCK header-only: no bytes
  frames[1].payload_decoded = true;
  frames[1].mpdu = {1, 2, 3, 4, 5};
  frames[1].start_sample = 8000;
  const std::string path = "/tmp/rfdump_test2.pcap";
  EXPECT_EQ(rfdump::trace::WritePcap(path, frames), 1u);
  const auto records = rfdump::trace::ReadPcap(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].bytes.size(), 5u);
  std::remove(path.c_str());
}

TEST(Pcap, RejectsGarbage) {
  const std::string path = "/tmp/rfdump_bad.pcap";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)rfdump::trace::ReadPcap(path), std::runtime_error);
  EXPECT_THROW((void)rfdump::trace::ReadPcap("/nonexistent.pcap"),
               std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
