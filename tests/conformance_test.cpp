// Conformance harness tests (DESIGN.md §11): scenario-builder seed
// determinism, truth-oracle scoring, the naive-vs-RFDump differential sweep
// (the acceptance gate: zero frame-set mismatches across >= 10 seeds), and
// the quarantine round trip (dump a poisoned interval, reload it with
// testing::ReplayFile, reproduce the recorded outcome).

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "rfdump/core/executor.hpp"
#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/dsp/simd.hpp"
#include "rfdump/core/streaming.hpp"
#include "rfdump/testing/differential.hpp"
#include "rfdump/testing/oracle.hpp"
#include "rfdump/testing/replay.hpp"
#include "rfdump/testing/scenario.hpp"
#include "rfdump/trace/trace.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace emu = rfdump::emu;
namespace rft = rfdump::testing;
namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------- scenarios

TEST(Scenario, SameSeedRendersBitIdentical) {
  const auto a = rft::CannedMixedScenario(42);
  const auto b = rft::CannedMixedScenario(42);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  ASSERT_GT(a.samples.size(), 0u);
  EXPECT_EQ(0, std::memcmp(a.samples.data(), b.samples.data(),
                           a.samples.size() * sizeof(dsp::cfloat)));
  ASSERT_EQ(a.truth.size(), b.truth.size());
  for (std::size_t i = 0; i < a.truth.size(); ++i) {
    EXPECT_EQ(a.truth[i].protocol, b.truth[i].protocol);
    EXPECT_EQ(a.truth[i].start_sample, b.truth[i].start_sample);
    EXPECT_EQ(a.truth[i].end_sample, b.truth[i].end_sample);
    EXPECT_EQ(a.truth[i].snr_db, b.truth[i].snr_db);
  }
}

TEST(Scenario, DifferentSeedsRenderDifferentStreams) {
  const auto a = rft::CannedMixedScenario(1);
  const auto b = rft::CannedMixedScenario(2);
  ASSERT_EQ(a.samples.size(), b.samples.size());  // same recipe, same layout
  EXPECT_NE(0, std::memcmp(a.samples.data(), b.samples.data(),
                           a.samples.size() * sizeof(dsp::cfloat)));
}

TEST(Scenario, CannedMixHasAllThreeProtocols) {
  const auto s = rft::CannedMixedScenario(7);
  std::size_t wifi = 0, bt = 0, zb = 0;
  for (const auto& t : s.truth) {
    if (!t.visible) continue;
    if (t.protocol == core::Protocol::kWifi80211b) ++wifi;
    if (t.protocol == core::Protocol::kBluetooth) ++bt;
    if (t.protocol == core::Protocol::kZigbee) ++zb;
  }
  EXPECT_GT(wifi, 0u);
  EXPECT_GT(bt, 0u);
  EXPECT_GT(zb, 0u);
  EXPECT_FALSE(s.impaired());
}

TEST(Scenario, ImpairedBuilderProducesSegmentsAndFaultLog) {
  emu::FrontEnd::Config fe;
  fe.drops_per_second = 50.0;
  fe.nonfinite_per_second = 50.0;
  const auto s = rft::ScenarioBuilder(9, "impaired")
                     .WifiPing({}, 8'000)
                     .Impair(fe)
                     .Render();
  EXPECT_TRUE(s.impaired());
  EXPECT_FALSE(s.segments.empty());
  // Impairment is deterministic from the master seed too.
  const auto s2 = rft::ScenarioBuilder(9, "impaired")
                      .WifiPing({}, 8'000)
                      .Impair(fe)
                      .Render();
  ASSERT_EQ(s.faults.size(), s2.faults.size());
  ASSERT_EQ(s.segments.size(), s2.segments.size());
}

TEST(Scenario, SnrOffsetLowersDecodeRate) {
  // The SNR-sweep knob must actually move the needle: a -30 dB offset
  // drops every burst into the noise.
  rfdump::traffic::WifiPingConfig wifi;
  wifi.count = 4;
  const auto clean =
      rft::ScenarioBuilder(11, "snr").WifiPing(wifi, 8'000).Render();
  const auto buried = rft::ScenarioBuilder(11, "snr")
                          .SnrOffsetDb(-30.0)
                          .WifiPing(wifi, 8'000)
                          .Render();
  core::RFDumpPipeline pipeline;
  const auto clean_frames = pipeline.Process(clean.samples).wifi_frames.size();
  const auto buried_frames =
      pipeline.Process(buried.samples).wifi_frames.size();
  EXPECT_GT(clean_frames, 0u);
  EXPECT_LT(buried_frames, clean_frames);
}

// ------------------------------------------------------------------- oracle

TEST(Oracle, ScoresRfdumpPipelineOnMixedScenario) {
  const auto s = rft::CannedMixedScenario(3);
  core::RFDumpPipeline::Config cfg;
  cfg.zigbee_detector = true;
  cfg.analysis.zigbee_demod = true;
  const auto report = core::RFDumpPipeline(cfg).Process(s.samples);
  const auto score = rft::ScoreReport(s, report);

  const auto& wifi = score.Of(core::Protocol::kWifi80211b);
  EXPECT_GT(wifi.truth_packets, 0u);
  EXPECT_GE(wifi.Recall(), 0.75) << score.Summary();
  const auto& bt = score.Of(core::Protocol::kBluetooth);
  EXPECT_GT(bt.truth_packets, 0u);
  EXPECT_GE(bt.Recall(), 0.75) << score.Summary();
  const auto& zb = score.Of(core::Protocol::kZigbee);
  EXPECT_GT(zb.truth_packets, 0u);
  EXPECT_GE(zb.Recall(), 0.75) << score.Summary();

  // Every failure line carries the reproducing seed.
  EXPECT_NE(score.Summary().find("seed=3"), std::string::npos);
  EXPECT_EQ(score.seed, 3u);
}

TEST(Oracle, EmptyReportScoresAsAllMisses) {
  const auto s = rft::CannedMixedScenario(4);
  const auto score = rft::ScoreReport(s, core::MonitorReport{});
  for (const auto& c : score.protocols) {
    EXPECT_EQ(c.matched, 0u);
    EXPECT_EQ(c.missed, c.truth_packets);
    EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
    EXPECT_DOUBLE_EQ(c.MissRate(), 1.0);
    EXPECT_DOUBLE_EQ(c.Precision(), 1.0);  // no decodes, no false claims
  }
}

TEST(Oracle, SpuriousDecodeLowersPrecision) {
  const auto s = rft::CannedMixedScenario(5);
  core::MonitorReport report;
  rfdump::phy80211::DecodedFrame fake;
  // Place the "decode" in the tail padding where no truth record lives.
  fake.start_sample = s.duration() - 4'000;
  fake.end_sample = s.duration() - 2'000;
  report.wifi_frames.push_back(fake);
  const auto score = rft::ScoreReport(s, report);
  const auto& wifi = score.Of(core::Protocol::kWifi80211b);
  EXPECT_EQ(wifi.spurious, 1u);
  EXPECT_DOUBLE_EQ(wifi.Precision(), 0.0);
}

TEST(Oracle, CrcPolicyFiltersBadDecodes) {
  rft::MatchPolicy strict;
  strict.require_crc_ok = true;
  const auto s = rft::CannedMixedScenario(6);
  core::MonitorReport report;
  rfdump::phy80211::DecodedFrame bad;
  bad.start_sample = 0;
  bad.end_sample = 1'000;
  bad.fcs_ok = false;
  report.wifi_frames.push_back(bad);
  const auto score = rft::ScoreReport(s, report, strict);
  EXPECT_EQ(score.Of(core::Protocol::kWifi80211b).decoded, 0u);
}

// ------------------------------------------------------- differential oracle

TEST(Differential, TenSeedSweepHasNoFrameSetMismatches) {
  // The PR acceptance gate: across >= 10 seeds of the canned mixed scenario,
  // the naive baseline (both gate modes) and RFDump (widths 1 and N) must
  // decode the same frame sets, modulo the paper's allowed detector false
  // positives; rfdump@1 vs rfdump@N must match exactly.
  static constexpr std::uint64_t kSeeds[] = {101, 102, 103, 104, 105,
                                             106, 107, 108, 109, 110};
  const auto results = rft::RunDifferentialSweep(kSeeds, {});
  ASSERT_EQ(results.size(), std::size(kSeeds));
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.Summary();
    // The architectures actually decoded traffic — an all-empty sweep would
    // pass vacuously.
    EXPECT_GT(r.decodes[0], 0u) << r.Summary();
    EXPECT_GT(r.decodes[2], 0u) << r.Summary();
    // rfdump@1 and rfdump@N decode counts agree (full fingerprint equality
    // is asserted inside RunDifferential).
    EXPECT_EQ(r.decodes[2], r.decodes[3]) << r.Summary();
  }
}

TEST(Differential, ForcedScalarVsForcedSimdFingerprintsBitIdentical) {
  // The SIMD dispatch acceptance gate (DESIGN.md §16): with every registered
  // bundle enabled, a forced-scalar run and a forced-best-tier run of the
  // full pipeline must produce byte-identical result fingerprints on every
  // seed. Skips (trivially passes) on hosts whose best tier is scalar.
  namespace simd = rfdump::dsp::simd;
  const simd::Tier best = simd::DetectBestTier();
  static constexpr std::uint64_t kSeeds[] = {301, 302, 303, 304, 305,
                                             306, 307, 308, 309, 310};
  auto run_with_tier = [](const rft::RenderedScenario& s, simd::Tier tier) {
    simd::ForceTier(tier);
    core::RFDumpPipeline::Config cfg;
    for (const auto& bundle : core::ProtocolRegistry::Instance().bundles()) {
      cfg.EnableBundle(bundle.protocol);
    }
    core::RFDumpPipeline pipeline(cfg);
    auto report = pipeline.Process(s.samples);
    simd::ClearForcedTier();
    return rft::ExactFingerprint(report);
  };
  std::size_t nonempty = 0;
  for (const std::uint64_t seed : kSeeds) {
    const auto scenario = rft::CannedMixedScenario(seed);
    const auto scalar_fp = run_with_tier(scenario, simd::Tier::kScalar);
    for (int t = 1; t < simd::kTierCount; ++t) {
      const auto tier = static_cast<simd::Tier>(t);
      if (!simd::TierSupported(tier)) continue;
      const auto vec_fp = run_with_tier(scenario, tier);
      ASSERT_EQ(scalar_fp.size(), vec_fp.size())
          << "seed=" << seed << " tier=" << simd::TierName(tier);
      for (std::size_t i = 0; i < scalar_fp.size(); ++i) {
        ASSERT_EQ(scalar_fp[i], vec_fp[i])
            << "seed=" << seed << " tier=" << simd::TierName(tier)
            << " line " << i;
      }
    }
    nonempty += !scalar_fp.empty();
  }
  // The sweep decoded something — an all-empty sweep would pass vacuously.
  EXPECT_GT(nonempty, 0u);
  // And the differential actually compared a vector tier on this host (the
  // CI runners are all x86-64, where SSE2 is architecturally guaranteed).
  EXPECT_TRUE(best == simd::Tier::kScalar || simd::TierSupported(best));
}

TEST(Differential, SummaryCarriesReproducingSeed) {
  const auto r = rft::RunDifferential(rft::CannedMixedScenario(55), {});
  EXPECT_NE(r.Summary().find("seed=55"), std::string::npos);
}

TEST(Differential, TruthBackedMissIsAHardMismatch) {
  // Sanity-check the classifier: disable the RFDump runs' wifi demodulator
  // via the shared analysis config? No — the config is shared by all four
  // runs, so instead assert the mechanism on a crafted result: a scenario
  // whose wifi bursts decode everywhere must produce zero truth-backed
  // one-sided clusters, and flipping tolerate_spurious must only ever move
  // entries between `mismatches` and `tolerated`.
  rft::DifferentialPolicy strict;
  strict.tolerate_spurious = false;
  const auto lenient = rft::RunDifferential(rft::CannedMixedScenario(77), {});
  const auto harsh = rft::RunDifferential(rft::CannedMixedScenario(77), strict);
  EXPECT_EQ(lenient.mismatches.size() + lenient.tolerated.size(),
            harsh.mismatches.size() + harsh.tolerated.size());
  EXPECT_TRUE(harsh.tolerated.empty());
}

// ------------------------------------------------------- quarantine roundtrip

TEST(QuarantineRoundTrip, DumpReloadAndReproduceOutcome) {
  const auto s = rft::CannedMixedScenario(88);

  // Poison every 802.11 analysis interval, stream the scenario through the
  // supervised monitor, and dump the quarantine ring like the CLI's
  // `--quarantine DIR` does.
  core::StreamingMonitor::Config mcfg;
  mcfg.block_samples = 400'000;
  mcfg.supervisor.fault_hook = [](core::Protocol p, std::int64_t,
                                  rfdump::util::WorkBudget&) {
    if (p == core::Protocol::kWifi80211b) {
      throw std::runtime_error("injected demodulator crash");
    }
  };
  core::StreamingMonitor monitor(mcfg);
  monitor.Push(s.samples);
  monitor.Flush();
  ASSERT_GT(monitor.supervisor().counts().exception, 0u);

  const fs::path dir =
      fs::path(::testing::TempDir()) / "rfdump_quarantine_roundtrip";
  fs::remove_all(dir);
  const std::size_t written =
      rft::WriteQuarantineDir(dir.string(), monitor.supervisor());
  ASSERT_GT(written, 0u);

  // Reload: every record comes back with its sidecar metadata intact.
  const auto replays = rft::LoadQuarantineDir(dir.string());
  ASSERT_EQ(replays.size(), written);
  for (const auto& r : replays) {
    EXPECT_TRUE(r.has_sidecar) << r.iq_path;
    EXPECT_EQ(r.protocol, core::Protocol::kWifi80211b);
    EXPECT_EQ(r.outcome, core::Outcome::kException);
    EXPECT_EQ(r.error, "injected demodulator crash");
    EXPECT_EQ(r.samples.size(), r.snapshot_samples);
    EXPECT_GT(r.samples.size(), 0u);
    EXPECT_DOUBLE_EQ(r.sample_rate_hz, dsp::kSampleRateHz);
    EXPECT_LT(r.stream_start, r.stream_end);
  }

  // Replay the first snapshot through a freshly supervised pipeline with the
  // same poisoned demodulator: the recorded outcome must reproduce (the
  // snapshot still contains the 802.11 burst that triggered dispatch).
  core::Supervisor::Config scfg;
  scfg.fault_hook = mcfg.supervisor.fault_hook;
  core::Supervisor supervisor(scfg);
  core::RFDumpPipeline::Config pcfg;
  pcfg.supervisor = &supervisor;
  const auto report = core::RFDumpPipeline(pcfg).Process(replays[0].samples);
  EXPECT_GT(supervisor.counts().exception, 0u)
      << "replayed snapshot no longer reproduces the quarantined failure";
  EXPECT_TRUE(report.wifi_frames.empty());

  fs::remove_all(dir);
}

TEST(QuarantineRoundTrip, LoadReplayWithoutSidecar) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rfdump_replay_bare";
  fs::create_directories(dir);
  const auto s = rft::CannedMixedScenario(12);
  const std::string iq = (dir / "bare.iq").string();
  rfdump::trace::WriteIqTrace(iq, dsp::const_sample_span(s.samples).first(1024));
  const auto r = rft::LoadReplay(iq);
  EXPECT_FALSE(r.has_sidecar);
  EXPECT_EQ(r.samples.size(), 1024u);
  fs::remove_all(dir);
}

TEST(QuarantineRoundTrip, JsonEscapeRoundTripsControlCharacters) {
  EXPECT_EQ(rft::JsonEscape("plain"), "plain");
  EXPECT_EQ(rft::JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(rft::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
