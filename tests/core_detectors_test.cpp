// Protocol-specific detector tests: timing detectors on synthetic peak
// streams, phase detectors on real modulated bursts, frequency detector.

#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/core/freq_detector.hpp"
#include "rfdump/core/phase_detectors.hpp"
#include "rfdump/core/timing_detectors.hpp"
#include "rfdump/dsp/db.hpp"
#include "rfdump/dsp/energy.hpp"
#include "rfdump/dsp/nco.hpp"
#include "rfdump/phy80211/modulator.hpp"
#include "rfdump/phybt/gfsk.hpp"
#include "rfdump/phybt/hopping.hpp"
#include "rfdump/util/crc.hpp"
#include "rfdump/util/rng.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace phy = rfdump::phy80211;
namespace bt = rfdump::phybt;
using rfdump::util::Xoshiro256;

namespace {

std::int64_t Us(double us) { return dsp::MicrosToSamples(us); }

core::Peak MakePeak(std::int64_t start, std::int64_t len,
                    float power = 10.0f) {
  core::Peak p;
  p.start_sample = start;
  p.end_sample = start + len;
  p.mean_power = power;
  p.peak_power = power;
  return p;
}

// ------------------------------------------------------------- wifi timing

TEST(WifiTiming, SifsPairTagged) {
  core::WifiTimingDetector det;
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(4192)),                        // DATA
      MakePeak(Us(4192 + 10), Us(304)),             // ACK after SIFS
  };
  const auto d = det.OnPeaks(peaks);
  ASSERT_EQ(d.size(), 2u);  // both the data frame and the ACK are tagged
  EXPECT_EQ(d[0].protocol, core::Protocol::kWifi80211b);
  EXPECT_STREQ(d[0].detector, "80211-sifs-timing");
  EXPECT_EQ(d[0].start_sample, 0);
  EXPECT_EQ(d[1].start_sample, Us(4202));
}

TEST(WifiTiming, DifsBackoffTagged) {
  core::WifiTimingDetector det;
  // Gap = DIFS + 5 slots = 50 + 100 = 150 us.
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(1000)),
      MakePeak(Us(1000 + 150), Us(1000)),
  };
  const auto d = det.OnPeaks(peaks);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_STREQ(d[0].detector, "80211-difs-timing");
}

TEST(WifiTiming, WrongGapNotTagged) {
  core::WifiTimingDetector det;
  // 37 us: neither SIFS nor DIFS+k*20.
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(1000)),
      MakePeak(Us(1000 + 37), Us(1000)),
  };
  EXPECT_TRUE(det.OnPeaks(peaks).empty());
}

TEST(WifiTiming, BackoffBeyondCwRejected) {
  core::WifiTimingDetector det;
  // DIFS + 100 slots is beyond the CW=64 bound.
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(1000)),
      MakePeak(Us(1000 + 50 + 100 * 20), Us(1000)),
  };
  EXPECT_TRUE(det.OnPeaks(peaks).empty());
}

TEST(WifiTiming, ChainOfSifsPairsTagsEveryPair) {
  core::WifiTimingDetector det;
  // DATA -SIFS- ACK -SIFS- DATA: two matching pairs; the shared middle peak
  // is tagged twice and later collapsed by MergeDetections.
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(500)),
      MakePeak(Us(510), Us(300)),
      MakePeak(Us(820), Us(500)),
  };
  const auto d = det.OnPeaks(peaks);
  EXPECT_EQ(d.size(), 4u);
  const auto merged = core::MergeDetections(d, 0, Us(2000));
  EXPECT_EQ(merged.size(), 3u);
}

// -------------------------------------------------------- bluetooth timing

TEST(BtTiming, SlotAlignedPeaksTagged) {
  core::BluetoothTimingDetector det;
  std::vector<core::Peak> peaks;
  // 6 packets in consecutive 625 us slots (~366 us bursts).
  for (int i = 0; i < 6; ++i) {
    peaks.push_back(MakePeak(Us(625.0 * i), Us(366)));
  }
  const auto d = det.OnPeaks(peaks);
  // First packet has no predecessor: the paper reports exactly this
  // first-packet miss (Fig. 8 floor). 5 of 6 tagged.
  EXPECT_EQ(d.size(), 5u);
  for (const auto& det_r : d) {
    EXPECT_EQ(det_r.protocol, core::Protocol::kBluetooth);
  }
}

TEST(BtTiming, CacheHitsGrowConfidence) {
  core::BluetoothTimingDetector det;
  std::vector<core::Peak> peaks;
  for (int i = 0; i < 10; ++i) {
    peaks.push_back(MakePeak(Us(625.0 * 5 * i), Us(2870)));  // DH5 every 5 slots
  }
  const auto d = det.OnPeaks(peaks);
  ASSERT_EQ(d.size(), 9u);
  EXPECT_GT(d.back().confidence, d.front().confidence);
  EXPECT_GT(det.cache_hits(), 0u);
}

TEST(BtTiming, LongPeakNeverBluetooth) {
  core::BluetoothTimingDetector det;
  // 4 ms bursts: longer than DH5, cannot be Bluetooth even if slot-aligned.
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(4000)),
      MakePeak(Us(5 * 625), Us(4000)),
  };
  EXPECT_TRUE(det.OnPeaks(peaks).empty());
}

TEST(BtTiming, MisalignedPeaksNotTagged) {
  core::BluetoothTimingDetector det;
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(366)),
      MakePeak(Us(700), Us(366)),   // 700 us: not a slot multiple
      MakePeak(Us(1500), Us(366)),  // 800 us after: not aligned either
  };
  EXPECT_TRUE(det.OnPeaks(peaks).empty());
}

// -------------------------------------------------------- microwave timing

TEST(MicrowaveTiming, PeriodicLongBurstsTagged) {
  core::MicrowaveTimingDetector det;
  std::vector<core::Peak> peaks;
  for (int i = 0; i < 4; ++i) {
    peaks.push_back(MakePeak(Us(16667.0 * i), Us(8333), 5.0f));
  }
  const auto d = det.OnPeaks(peaks);
  EXPECT_EQ(d.size(), 4u);  // first tagged retroactively with the second
  for (const auto& r : d) {
    EXPECT_EQ(r.protocol, core::Protocol::kMicrowave);
  }
}

TEST(MicrowaveTiming, VaryingPowerRejected) {
  core::MicrowaveTimingDetector det;
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(8333), 5.0f),
      MakePeak(Us(16667), Us(8333), 50.0f),  // 10x power jump: not an oven
  };
  EXPECT_TRUE(det.OnPeaks(peaks).empty());
}

TEST(MicrowaveTiming, ShortBurstsIgnored) {
  core::MicrowaveTimingDetector det;
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(500), 5.0f),
      MakePeak(Us(16667), Us(500), 5.0f),
  };
  EXPECT_TRUE(det.OnPeaks(peaks).empty());
}

// ----------------------------------------------------------- zigbee timing

TEST(ZigbeeTiming, LifsGapTagged) {
  core::ZigbeeTimingDetector det;
  std::vector<core::Peak> peaks = {
      MakePeak(0, Us(1472)),
      MakePeak(Us(1472 + 640), Us(1472)),
  };
  const auto d = det.OnPeaks(peaks);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].protocol, core::Protocol::kZigbee);
}

// ------------------------------------------------------------------- phase

dsp::SampleVec WifiBurst(double snr_db, std::uint64_t seed,
                         phy::Rate rate = phy::Rate::k1Mbps) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> mpdu(200);
  for (auto& b : mpdu) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  phy::Modulator mod;
  auto burst = mod.Modulate(mpdu, rate);
  rfdump::channel::ScaleToPower(burst, dsp::DbToPower(snr_db));
  rfdump::channel::AddAwgn(burst, 1.0, rng);
  return burst;
}

dsp::SampleVec BtBurstAtChannel(int vis_idx, double snr_db,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  rfdump::util::BitVec bits(800);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  auto burst = bt::GfskModulate(bits);
  dsp::Nco nco(bt::VisibleIndexOffsetHz(vis_idx), dsp::kSampleRateHz);
  nco.Mix(burst);
  rfdump::channel::ScaleToPower(burst, dsp::DbToPower(snr_db));
  rfdump::channel::AddAwgn(burst, 1.0, rng);
  return burst;
}

TEST(DbpskPhase, DetectsWifiRejectsBluetooth) {
  core::DbpskPhaseDetector det;
  const auto wifi = WifiBurst(25.0, 42);
  const auto p1 = MakePeak(0, static_cast<std::int64_t>(wifi.size()));
  ASSERT_TRUE(det.OnPeak(p1, wifi).has_value());
  const float wifi_score = det.last_score();

  const auto btb = BtBurstAtChannel(3, 25.0, 43);
  const auto p2 = MakePeak(0, static_cast<std::int64_t>(btb.size()));
  EXPECT_FALSE(det.OnPeak(p2, btb).has_value());
  EXPECT_GT(wifi_score, det.last_score());
}

TEST(DbpskPhase, DetectsAcrossHighSnrs) {
  core::DbpskPhaseDetector det;
  for (double snr : {12.0, 15.0, 20.0, 30.0}) {
    const auto burst = WifiBurst(snr, 100 + static_cast<int>(snr));
    const auto p = MakePeak(0, static_cast<std::int64_t>(burst.size()));
    EXPECT_TRUE(det.OnPeak(p, burst).has_value()) << snr << " dB";
  }
}

TEST(DbpskPhase, RejectsNoise) {
  core::DbpskPhaseDetector det;
  Xoshiro256 rng(77);
  dsp::SampleVec noise(4000);
  rfdump::channel::AddAwgn(noise, 10.0, rng);
  const auto p = MakePeak(0, 4000);
  EXPECT_FALSE(det.OnPeak(p, noise).has_value());
}

TEST(DbpskPhase, PatternHasExpectedStructure) {
  const auto pattern = core::BarkerPhaseFlipPattern();
  // Exactly one slot is data-dependent (0); the rest are +/-1.
  int zeros = 0, flips = 0;
  for (float v : pattern) {
    if (v == 0.0f) ++zeros;
    if (v == -1.0f) ++flips;
  }
  EXPECT_EQ(zeros, 1);
  // Barker-11 has 6 sign changes among the chips the 8 Msps grid visits.
  EXPECT_GE(flips, 4);
}

TEST(GfskPhase, DetectsBluetoothRejectsWifi) {
  core::GfskPhaseDetector det;
  const auto btb = BtBurstAtChannel(5, 25.0, 50);
  const auto p1 = MakePeak(0, static_cast<std::int64_t>(btb.size()));
  const auto d = det.OnPeak(p1, btb);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->protocol, core::Protocol::kBluetooth);
  EXPECT_EQ(det.last_channel(), 5);

  const auto wifi = WifiBurst(25.0, 51);
  const auto p2 = MakePeak(0, static_cast<std::int64_t>(wifi.size()));
  EXPECT_FALSE(det.OnPeak(p2, wifi).has_value());
}

TEST(GfskPhase, ChannelIdentifiedFromFrequencyOffset) {
  core::GfskPhaseDetector det;
  for (int ch : {0, 2, 4, 7}) {
    const auto burst = BtBurstAtChannel(ch, 30.0, 60 + ch);
    const auto p = MakePeak(0, static_cast<std::int64_t>(burst.size()));
    ASSERT_TRUE(det.OnPeak(p, burst).has_value()) << "ch " << ch;
    EXPECT_EQ(det.last_channel(), ch);
  }
}

TEST(GfskPhase, RejectsNoise) {
  core::GfskPhaseDetector det;
  Xoshiro256 rng(70);
  dsp::SampleVec noise(4000);
  rfdump::channel::AddAwgn(noise, 10.0, rng);
  const auto p = MakePeak(0, 4000);
  EXPECT_FALSE(det.OnPeak(p, noise).has_value());
}

TEST(PskOrderClassifier, SeparatesBpskFromQpsk) {
  // Build differential PSK symbol streams at 8 samples/symbol.
  Xoshiro256 rng(80);
  const std::size_t sps = 8;
  auto make_psk = [&](int order) {
    dsp::SampleVec x;
    float phase = 0.0f;
    for (int s = 0; s < 200; ++s) {
      const float step = 2.0f * dsp::kPi / static_cast<float>(order);
      phase += step * static_cast<float>(rng.UniformInt(
                   0, static_cast<std::uint64_t>(order - 1)));
      for (std::size_t i = 0; i < sps; ++i) {
        x.push_back({std::cos(phase), std::sin(phase)});
      }
    }
    return x;
  };
  EXPECT_EQ(core::ClassifyPskOrder(make_psk(2), sps), 2);
  EXPECT_EQ(core::ClassifyPskOrder(make_psk(4), sps), 4);
}

// --------------------------------------------------------------- frequency

TEST(BtFreq, SingleChannelBurstDetected) {
  core::BluetoothFreqDetector det;
  const auto burst = BtBurstAtChannel(2, 25.0, 90);
  // Surround with noise.
  Xoshiro256 rng(91);
  dsp::SampleVec x(4000);
  rfdump::channel::AddAwgn(x, 1.0, rng);
  x.insert(x.end(), burst.begin(), burst.end());
  dsp::SampleVec tail(4000);
  rfdump::channel::AddAwgn(tail, 1.0, rng);
  x.insert(x.end(), tail.begin(), tail.end());

  std::vector<core::Detection> all;
  for (std::size_t at = 0; at + core::kChunkSamples <= x.size();
       at += core::kChunkSamples) {
    auto d = det.PushChunk(
        dsp::const_sample_span(x).subspan(at, core::kChunkSamples),
        static_cast<std::int64_t>(at));
    all.insert(all.end(), d.begin(), d.end());
  }
  auto d = det.Flush();
  all.insert(all.end(), d.begin(), d.end());
  ASSERT_GE(all.size(), 1u);
  EXPECT_EQ(all[0].protocol, core::Protocol::kBluetooth);
  EXPECT_EQ(det.last_channel(), 2);
  EXPECT_NEAR(static_cast<double>(all[0].start_sample), 4000.0, 400.0);
}

TEST(BtFreq, WidebandWifiNotSingleChannel) {
  core::BluetoothFreqDetector det;
  const auto wifi = WifiBurst(25.0, 92);
  std::vector<core::Detection> all;
  for (std::size_t at = 0; at + core::kChunkSamples <= wifi.size();
       at += core::kChunkSamples) {
    auto d = det.PushChunk(
        dsp::const_sample_span(wifi).subspan(at, core::kChunkSamples),
        static_cast<std::int64_t>(at));
    all.insert(all.end(), d.begin(), d.end());
  }
  auto d = det.Flush();
  all.insert(all.end(), d.begin(), d.end());
  EXPECT_TRUE(all.empty());
}

// ------------------------------------------------------------- detections

TEST(Detections, MergeOverlapsSameProtocol) {
  std::vector<core::Detection> dets = {
      {core::Protocol::kWifi80211b, 100, 200, 0.5f, "a"},
      {core::Protocol::kWifi80211b, 150, 300, 0.9f, "b"},
      {core::Protocol::kWifi80211b, 400, 500, 0.4f, "c"},
      {core::Protocol::kBluetooth, 150, 250, 0.7f, "d"},
  };
  const auto merged = core::MergeDetections(std::move(dets), 0, 1000);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(core::CoverageSamples(merged), (300 - 100) + (500 - 400) + 100);
}

TEST(Detections, MergeClampsAndDropsEmpty) {
  std::vector<core::Detection> dets = {
      {core::Protocol::kWifi80211b, -50, 100, 0.5f, "a"},
      {core::Protocol::kWifi80211b, 900, 2000, 0.5f, "b"},
      {core::Protocol::kWifi80211b, 2000, 2100, 0.5f, "c"},  // fully clamped
  };
  const auto merged = core::MergeDetections(std::move(dets), 0, 1000);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].start_sample, 0);
  EXPECT_EQ(merged[1].end_sample, 1000);
}

TEST(Detections, SlackJoinsNearbyIntervals) {
  std::vector<core::Detection> dets = {
      {core::Protocol::kBluetooth, 0, 100, 0.5f, "a"},
      {core::Protocol::kBluetooth, 110, 200, 0.5f, "b"},
  };
  const auto merged = core::MergeDetections(std::move(dets), 20, 1000);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].end_sample, 200);
}

}  // namespace
