// End-to-end integration: emulated ether -> RFDump / naive pipelines ->
// scoring against ground truth. These tests are small versions of the
// paper's microbenchmarks (Figures 6-8, Table 3) plus trace I/O round trips.

#include <fstream>

#include <gtest/gtest.h>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/scoring.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/mac80211/frames.hpp"
#include "rfdump/trace/trace.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace emu = rfdump::emu;
namespace traffic = rfdump::traffic;

namespace {

// --------------------------------------------------------- 802.11 unicast

TEST(Integration, UnicastPingDetectedBySifsTiming) {
  emu::Ether ether;
  traffic::WifiPingConfig cfg;
  cfg.count = 10;  // 40 frames
  cfg.snr_db = 25.0;
  const auto session = traffic::GenerateUnicastPing(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  core::RFDumpPipeline::Config pcfg;
  pcfg.analysis.demodulate = false;
  core::RFDumpPipeline pipeline(pcfg);
  const auto report = pipeline.Process(x);

  const auto timing = core::ScoreDetections(
      ether.truth(), core::Protocol::kWifi80211b, report.detections,
      static_cast<std::int64_t>(x.size()), "80211-sifs-timing");
  EXPECT_EQ(timing.truth_packets, 40u);
  // SIFS timing must find essentially everything at 25 dB.
  EXPECT_LE(timing.missed, 1u);

  const auto phase = core::ScoreDetections(
      ether.truth(), core::Protocol::kWifi80211b, report.detections,
      static_cast<std::int64_t>(x.size()), "dbpsk-phase");
  EXPECT_LE(phase.missed, 2u);  // ACKs are short; allow slight slack
}

TEST(Integration, UnicastPingLowSnrMissed) {
  emu::Ether ether;
  traffic::WifiPingConfig cfg;
  cfg.count = 5;
  cfg.snr_db = 1.0;  // below the detection knee
  const auto session = traffic::GenerateUnicastPing(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  core::RFDumpPipeline::Config pcfg;
  pcfg.analysis.demodulate = false;
  core::RFDumpPipeline pipeline(pcfg);
  const auto report = pipeline.Process(x);
  const auto s = core::ScoreDetections(
      ether.truth(), core::Protocol::kWifi80211b, report.detections,
      static_cast<std::int64_t>(x.size()));
  EXPECT_GT(s.MissRate(), 0.5);
}

TEST(Integration, UnicastPingDemodulatedEndToEnd) {
  emu::Ether ether;
  traffic::WifiPingConfig cfg;
  cfg.count = 5;
  cfg.snr_db = 25.0;
  const auto session = traffic::GenerateUnicastPing(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  core::RFDumpPipeline pipeline;  // with demodulation
  const auto report = pipeline.Process(x);
  // 10 data frames + 10 ACKs; demodulator should decode nearly all of them.
  EXPECT_GE(report.wifi_frames.size(), 16u);
  std::size_t data_frames = 0, fcs_ok = 0, icmp_seen = 0;
  for (const auto& f : report.wifi_frames) {
    if (!f.payload_decoded) continue;
    if (f.fcs_ok) ++fcs_ok;
    const auto mac = rfdump::mac80211::ParseFrame(f.mpdu);
    if (mac && mac->kind == rfdump::mac80211::FrameKind::kData) {
      ++data_frames;
      if (rfdump::mac80211::ParseIcmpEchoSeq(mac->body)) ++icmp_seen;
    }
  }
  EXPECT_GE(fcs_ok, 16u);
  EXPECT_GE(data_frames, 8u);
  EXPECT_EQ(icmp_seen, data_frames);  // every data frame carries our ICMP body
}

// --------------------------------------------------------- 802.11 broadcast

TEST(Integration, BroadcastFloodDetectedByDifsTiming) {
  emu::Ether ether;
  traffic::WifiBroadcastConfig cfg;
  cfg.count = 30;
  cfg.snr_db = 25.0;
  const auto session = traffic::GenerateBroadcastFlood(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  core::RFDumpPipeline::Config pcfg;
  pcfg.analysis.demodulate = false;
  core::RFDumpPipeline pipeline(pcfg);
  const auto report = pipeline.Process(x);
  const auto s = core::ScoreDetections(
      ether.truth(), core::Protocol::kWifi80211b, report.detections,
      static_cast<std::int64_t>(x.size()), "80211-difs-timing");
  EXPECT_EQ(s.truth_packets, 30u);
  // First packet has no predecessor gap; everything else must be caught.
  EXPECT_LE(s.missed, 2u);
}

// ----------------------------------------------------------------- l2ping

TEST(Integration, L2PingDetectedByTimingAndPhase) {
  emu::Ether ether;
  traffic::L2PingConfig cfg;
  cfg.count = 120;  // 240 packets, ~24 visible
  cfg.snr_db = 25.0;
  const auto session = traffic::GenerateL2Ping(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  core::RFDumpPipeline::Config pcfg;
  pcfg.analysis.demodulate = false;
  core::RFDumpPipeline pipeline(pcfg);
  const auto report = pipeline.Process(x);

  const auto visible = core::VisibleTruthWithin(
      ether.truth(), core::Protocol::kBluetooth,
      static_cast<std::int64_t>(x.size()));
  ASSERT_GT(visible.size(), 10u);  // ~8/79 of 240
  ASSERT_LT(visible.size(), 60u);

  const auto phase = core::ScoreDetections(
      ether.truth(), core::Protocol::kBluetooth, report.detections,
      static_cast<std::int64_t>(x.size()), "gfsk-phase");
  EXPECT_EQ(phase.truth_packets, visible.size());
  EXPECT_LE(phase.MissRate(), 0.05);
}

TEST(Integration, L2PingDemodulatedWithSizesMatchingSeq) {
  emu::Ether ether;
  traffic::L2PingConfig cfg;
  cfg.count = 60;
  cfg.snr_db = 30.0;
  const auto session = traffic::GenerateL2Ping(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  core::RFDumpPipeline pipeline;
  const auto report = pipeline.Process(x);
  const auto visible = core::VisibleTruthWithin(
      ether.truth(), core::Protocol::kBluetooth,
      static_cast<std::int64_t>(x.size()));
  ASSERT_GT(visible.size(), 4u);
  // Most visible packets decode, and the payload size encodes the sequence
  // number (the paper's ground-truthing trick).
  EXPECT_GE(report.bt_packets.size(), visible.size() * 6 / 10);
  for (const auto& p : report.bt_packets) {
    if (!p.packet.crc_ok) continue;
    const std::size_t size = p.packet.payload.size();
    EXPECT_GE(size, 225u);
    EXPECT_LT(size, 340u);
  }
}

// ------------------------------------------------------------- traffic mix

// Counts visible truth packets of `protocol` that overlap a visible packet
// of a different protocol (collisions — the paper discounts these, §5.1.5).
std::size_t CountCollisions(const std::vector<emu::TruthRecord>& truth,
                            core::Protocol protocol,
                            std::int64_t total_samples) {
  std::size_t collisions = 0;
  for (const auto& a : truth) {
    if (!a.visible || a.protocol != protocol || a.end_sample > total_samples) {
      continue;
    }
    for (const auto& b : truth) {
      if (!b.visible || b.protocol == protocol) continue;
      if (a.start_sample < b.end_sample && b.start_sample < a.end_sample) {
        ++collisions;
        break;
      }
    }
  }
  return collisions;
}

TEST(Integration, TrafficMixSeparatesProtocols) {
  emu::Ether ether;
  traffic::WifiPingConfig wcfg;
  wcfg.count = 8;
  wcfg.snr_db = 25.0;
  wcfg.interval_us = 60000.0;  // keep utilization moderate
  traffic::L2PingConfig bcfg;
  bcfg.count = 70;
  bcfg.snr_db = 25.0;
  const auto ws = traffic::GenerateUnicastPing(ether, wcfg, 8000);
  const auto bs = traffic::GenerateL2Ping(ether, bcfg, 16000);
  const auto end = std::max(ws.end_sample, bs.end_sample) + 8000;
  const auto x = ether.Render(end);
  const auto total = static_cast<std::int64_t>(x.size());

  core::RFDumpPipeline::Config pcfg;
  pcfg.analysis.demodulate = false;
  core::RFDumpPipeline pipeline(pcfg);
  const auto report = pipeline.Process(x);

  const auto wifi = core::ScoreDetections(
      ether.truth(), core::Protocol::kWifi80211b, report.detections, total);
  const auto bt = core::ScoreDetections(
      ether.truth(), core::Protocol::kBluetooth, report.detections, total);
  // Collisions appear as misses (no collision handling in the detectors,
  // like the paper); discounting them, misses should be near zero.
  const auto wifi_collisions =
      CountCollisions(ether.truth(), core::Protocol::kWifi80211b, total);
  const auto bt_collisions =
      CountCollisions(ether.truth(), core::Protocol::kBluetooth, total);
  EXPECT_LE(wifi.missed, wifi_collisions + 2);
  EXPECT_LE(bt.missed, bt_collisions + 2);
  // False-positive sample rates stay small.
  EXPECT_LE(wifi.FalsePositiveRate(total), 0.05);
  EXPECT_LE(bt.FalsePositiveRate(total), 0.05);
}

// ------------------------------------------------------------ architecture

TEST(Integration, RFDumpCheaperThanNaive) {
  emu::Ether ether;
  traffic::WifiPingConfig cfg;
  cfg.count = 4;
  cfg.snr_db = 25.0;
  cfg.interval_us = 30000.0;  // low utilization
  const auto session = traffic::GenerateUnicastPing(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  core::NaivePipeline naive;
  const auto naive_report = naive.Process(x);
  core::RFDumpPipeline rfdump;
  const auto rf_report = rfdump.Process(x);

  // Both find the data frames...
  EXPECT_GE(rf_report.wifi_frames.size(), 6u);
  EXPECT_GE(naive_report.wifi_frames.size(), 6u);
  // ...but RFDump forwards far fewer samples and burns far less CPU.
  EXPECT_LT(core::CoverageSamples(rf_report.dispatched),
            core::CoverageSamples(naive_report.dispatched) / 2);
  EXPECT_LT(rf_report.TotalCpuSeconds(),
            naive_report.TotalCpuSeconds() / 2.0);
}

TEST(Integration, EnergyGatedBetweenNaiveAndRFDump) {
  emu::Ether ether;
  traffic::WifiPingConfig cfg;
  cfg.count = 4;
  cfg.snr_db = 25.0;
  cfg.interval_us = 30000.0;
  const auto session = traffic::GenerateUnicastPing(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  core::NaivePipeline::Config ecfg;
  ecfg.energy_gate = true;
  core::NaivePipeline energy(ecfg);
  const auto energy_report = energy.Process(x);
  core::NaivePipeline naive;
  const auto naive_report = naive.Process(x);

  EXPECT_LT(energy_report.TotalCpuSeconds(),
            naive_report.TotalCpuSeconds());
  EXPECT_GE(energy_report.wifi_frames.size(), 6u);
}

// ----------------------------------------------------------------- trace IO

TEST(Integration, TraceRoundTrip) {
  emu::Ether ether;
  traffic::WifiPingConfig cfg;
  cfg.count = 2;
  const auto session = traffic::GenerateUnicastPing(ether, cfg, 1000);
  const auto x = ether.Render(session.end_sample + 1000);

  const std::string iq_path = "/tmp/rfdump_test_trace.iq";
  const std::string gt_path = "/tmp/rfdump_test_trace.gt";
  rfdump::trace::WriteIqTrace(iq_path, x);
  rfdump::trace::WriteGroundTruth(gt_path, ether.truth());

  double rate = 0.0;
  const auto samples = rfdump::trace::ReadIqTrace(iq_path, &rate);
  EXPECT_DOUBLE_EQ(rate, dsp::kSampleRateHz);
  ASSERT_EQ(samples.size(), x.size());
  EXPECT_EQ(samples[1234], x[1234]);

  const auto truth = rfdump::trace::ReadGroundTruth(gt_path);
  ASSERT_EQ(truth.size(), ether.truth().size());
  EXPECT_EQ(truth[0].kind, ether.truth()[0].kind);
  EXPECT_EQ(truth[0].start_sample, ether.truth()[0].start_sample);
  EXPECT_EQ(truth[0].protocol, ether.truth()[0].protocol);
}

TEST(Integration, TraceRejectsGarbage) {
  const std::string path = "/tmp/rfdump_bad_trace.iq";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a trace";
  }
  EXPECT_THROW((void)rfdump::trace::ReadIqTrace(path), std::runtime_error);
  EXPECT_THROW((void)rfdump::trace::ReadGroundTruth(path),
               std::runtime_error);
  EXPECT_THROW((void)rfdump::trace::ReadIqTrace("/nonexistent/x.iq"),
               std::runtime_error);
}

// ------------------------------------------------------------------ ether

TEST(Integration, MediumUtilizationComputed) {
  std::vector<emu::TruthRecord> truth(2);
  truth[0].start_sample = 0;
  truth[0].end_sample = 250;
  truth[1].start_sample = 200;
  truth[1].end_sample = 500;  // overlap counted once
  EXPECT_NEAR(emu::MediumUtilization(truth, 1000), 0.5, 1e-9);
  truth[1].visible = false;
  EXPECT_NEAR(emu::MediumUtilization(truth, 1000), 0.25, 1e-9);
  EXPECT_EQ(emu::MediumUtilization({}, 1000), 0.0);
}

TEST(Integration, EtherSnrIsRespected) {
  emu::Ether ether;
  dsp::SampleVec burst(5000, dsp::cfloat{1.0f, 0.0f});
  emu::TruthRecord meta;
  meta.protocol = core::Protocol::kWifi80211b;
  ether.AddBurst(burst, 2000, 20.0, meta);
  const auto x = ether.Render(10000);
  // Mean power inside the burst: noise (1.0) + signal (100).
  double in_power = 0.0;
  for (std::size_t i = 2500; i < 6500; ++i) in_power += std::norm(x[i]);
  in_power /= 4000.0;
  EXPECT_NEAR(in_power, 101.0, 8.0);
  // Outside: just noise.
  double out_power = 0.0;
  for (std::size_t i = 8000; i < 10000; ++i) out_power += std::norm(x[i]);
  out_power /= 2000.0;
  EXPECT_NEAR(out_power, 1.0, 0.2);
}

}  // namespace
