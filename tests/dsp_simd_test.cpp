// Conformance harness for the runtime-dispatched SIMD kernels: every tier
// the host supports must be bit-identical to the scalar reference on every
// kernel, across randomized lengths, misaligned spans, short tails, and
// non-finite specials (DESIGN.md §16). A tier that drifts by even one ulp —
// e.g. from FMA contraction sneaking into a build — fails here before the
// full-pipeline differential ever runs.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "rfdump/dsp/barker.hpp"
#include "rfdump/dsp/fir.hpp"
#include "rfdump/dsp/simd.hpp"
#include "rfdump/dsp/types.hpp"

namespace rfdump::dsp::simd {
namespace {

std::vector<Tier> SupportedTiers() {
  std::vector<Tier> tiers;
  for (int t = 0; t < kTierCount; ++t) {
    if (TierSupported(static_cast<Tier>(t))) {
      tiers.push_back(static_cast<Tier>(t));
    }
  }
  return tiers;
}

// Lengths that cover empty input, sub-register tails for both 4- and 8-wide
// tiers, exact register multiples, and off-by-one on either side.
constexpr std::size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,   8,  9,
                                    15, 16, 17, 31, 32, 33, 100, 257};

// Offsets into an oversized buffer so kernels see spans whose base address
// is not 32-byte (or even 8-byte) aligned.
constexpr std::size_t kOffsets[] = {0, 1, 2, 3};

/// Random samples with occasional non-finite and rail-level specials, so the
/// finite-power masking and health classification paths are exercised.
std::vector<cfloat> RandomSamples(std::mt19937& rng, std::size_t n,
                                  bool specials) {
  std::uniform_real_distribution<float> amp(-2.0f, 2.0f);
  std::uniform_int_distribution<int> pick(0, 19);
  std::vector<cfloat> x(n);
  for (auto& v : x) {
    v = cfloat(amp(rng), amp(rng));
    if (specials) {
      switch (pick(rng)) {
        case 0:
          v = cfloat(std::numeric_limits<float>::quiet_NaN(), amp(rng));
          break;
        case 1:
          v = cfloat(amp(rng), std::numeric_limits<float>::infinity());
          break;
        case 2:
          v = cfloat(64.0f, -64.0f);  // at the ADC rail
          break;
        case 3:
          v = cfloat(0.0f, -0.0f);
          break;
        default:
          break;
      }
    }
  }
  return x;
}

::testing::AssertionResult BitEqual(std::span<const float> a,
                                    std::span<const float> b,
                                    const char* what) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << what << ": size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return ::testing::AssertionFailure()
             << what << "[" << i << "]: " << a[i] << " (0x" << std::hex
             << std::bit_cast<std::uint32_t>(a[i]) << ") vs " << b[i] << " (0x"
             << std::bit_cast<std::uint32_t>(b[i]) << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult BitEqual(std::span<const cfloat> a,
                                    std::span<const cfloat> b,
                                    const char* what) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << what << ": size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return ::testing::AssertionFailure()
             << what << "[" << i << "]: (" << a[i].real() << "," << a[i].imag()
             << ") vs (" << b[i].real() << "," << b[i].imag() << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

class DspSimdTierSweep : public ::testing::TestWithParam<int> {
 protected:
  Tier tier() const { return static_cast<Tier>(GetParam()); }
  void SetUp() override {
    if (!TierSupported(tier())) {
      GTEST_SKIP() << "tier " << TierName(tier())
                   << " not supported on this host";
    }
  }
};

TEST_P(DspSimdTierSweep, CorrelateChipsBitExact) {
  const Kernels& ref = Table(Tier::kScalar);
  const Kernels& vec = Table(tier());
  std::mt19937 rng(101);
  for (bool specials : {false, true}) {
    for (std::size_t off : kOffsets) {
      for (std::size_t len : kLengths) {
        const auto buf = RandomSamples(rng, off + len + 16, specials);
        const cfloat* x = buf.data() + off;
        for (std::span<const int> chips :
             {std::span<const int>(kBarker11), std::span<const int>(kBarker13)}) {
          if (len < chips.size()) continue;
          const std::size_t n_out = len - chips.size() + 1;
          std::vector<cfloat> a(n_out), b(n_out);
          ref.correlate_chips(x, n_out, chips.data(), chips.size(), a.data());
          vec.correlate_chips(x, n_out, chips.data(), chips.size(), b.data());
          ASSERT_TRUE(BitEqual(a, b, "correlate_chips"))
              << "tier=" << TierName(tier()) << " len=" << len
              << " off=" << off;
        }
      }
    }
  }
}

TEST_P(DspSimdTierSweep, FirComplexBitExact) {
  const Kernels& ref = Table(Tier::kScalar);
  const Kernels& vec = Table(tier());
  const auto taps = DesignLowPass(600e3, kSampleRateHz, 21);
  std::mt19937 rng(202);
  for (std::size_t off : kOffsets) {
    for (std::size_t len : kLengths) {
      const auto buf =
          RandomSamples(rng, off + len + taps.size() + 8, false);
      const cfloat* work = buf.data() + off;
      std::vector<cfloat> a(len), b(len);
      ref.fir_complex(work, len, taps.data(), taps.size(), a.data());
      vec.fir_complex(work, len, taps.data(), taps.size(), b.data());
      ASSERT_TRUE(BitEqual(a, b, "fir_complex"))
          << "tier=" << TierName(tier()) << " len=" << len << " off=" << off;
    }
  }
}

TEST_P(DspSimdTierSweep, PhaseDiffBitExact) {
  const Kernels& ref = Table(Tier::kScalar);
  const Kernels& vec = Table(tier());
  std::mt19937 rng(303);
  for (bool specials : {false, true}) {
    for (std::size_t off : kOffsets) {
      for (std::size_t len : kLengths) {
        if (len < 1) continue;
        const auto buf = RandomSamples(rng, off + len + 8, specials);
        const cfloat* x = buf.data() + off;
        std::vector<float> a(len - 1), b(len - 1);
        ref.phase_diff(x, len, a.data());
        vec.phase_diff(x, len, b.data());
        ASSERT_TRUE(BitEqual(a, b, "phase_diff"))
            << "tier=" << TierName(tier()) << " len=" << len << " off=" << off;
      }
    }
  }
}

TEST_P(DspSimdTierSweep, InstantPhaseBitExact) {
  const Kernels& ref = Table(Tier::kScalar);
  const Kernels& vec = Table(tier());
  std::mt19937 rng(404);
  for (bool specials : {false, true}) {
    for (std::size_t off : kOffsets) {
      for (std::size_t len : kLengths) {
        const auto buf = RandomSamples(rng, off + len + 8, specials);
        const cfloat* x = buf.data() + off;
        std::vector<float> a(len), b(len);
        ref.instant_phase(x, len, a.data());
        vec.instant_phase(x, len, b.data());
        ASSERT_TRUE(BitEqual(a, b, "instant_phase"))
            << "tier=" << TierName(tier()) << " len=" << len << " off=" << off;
      }
    }
  }
}

TEST_P(DspSimdTierSweep, SumFinitePowerBitExact) {
  const Kernels& ref = Table(Tier::kScalar);
  const Kernels& vec = Table(tier());
  std::mt19937 rng(505);
  for (bool specials : {false, true}) {
    for (std::size_t off : kOffsets) {
      for (std::size_t len : kLengths) {
        const auto buf = RandomSamples(rng, off + len + 8, specials);
        const cfloat* x = buf.data() + off;
        const double a = ref.sum_finite_power(x, len);
        const double b = vec.sum_finite_power(x, len);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(a),
                  std::bit_cast<std::uint64_t>(b))
            << "tier=" << TierName(tier()) << " len=" << len << " off=" << off
            << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST_P(DspSimdTierSweep, PowerPlaneBitExact) {
  const Kernels& ref = Table(Tier::kScalar);
  const Kernels& vec = Table(tier());
  std::mt19937 rng(606);
  for (bool specials : {false, true}) {
    for (std::size_t off : kOffsets) {
      for (std::size_t len : kLengths) {
        const auto buf = RandomSamples(rng, off + len + 8, specials);
        const cfloat* x = buf.data() + off;
        std::vector<float> a(len), b(len);
        ref.power_plane(x, len, a.data());
        vec.power_plane(x, len, b.data());
        ASSERT_TRUE(BitEqual(a, b, "power_plane"))
            << "tier=" << TierName(tier()) << " len=" << len << " off=" << off;
      }
    }
  }
}

TEST_P(DspSimdTierSweep, HealthScanCountsExact) {
  const Kernels& ref = Table(Tier::kScalar);
  const Kernels& vec = Table(tier());
  std::mt19937 rng(707);
  const float rails[] = {0.98f * 64.0f, 1.0f,
                         std::numeric_limits<float>::infinity()};
  for (float rail : rails) {
    for (std::size_t off : kOffsets) {
      for (std::size_t len : kLengths) {
        const auto buf = RandomSamples(rng, off + len + 8, true);
        const cfloat* x = buf.data() + off;
        std::uint64_t nf_a = 0, sat_a = 0, nf_b = 0, sat_b = 0;
        ref.health_scan(x, len, rail, &nf_a, &sat_a);
        vec.health_scan(x, len, rail, &nf_b, &sat_b);
        ASSERT_EQ(nf_a, nf_b) << "tier=" << TierName(tier()) << " len=" << len;
        ASSERT_EQ(sat_a, sat_b)
            << "tier=" << TierName(tier()) << " len=" << len << " rail=" << rail;
      }
    }
  }
}

TEST_P(DspSimdTierSweep, ConjMulSumBitExact) {
  const Kernels& ref = Table(Tier::kScalar);
  const Kernels& vec = Table(tier());
  std::mt19937 rng(808);
  for (std::size_t off : kOffsets) {
    for (std::size_t len : kLengths) {
      const auto buf = RandomSamples(rng, off + len + 8, false);
      const cfloat* x = buf.data() + off;
      const cfloat a = ref.conj_mul_sum(x, len);
      const cfloat b = vec.conj_mul_sum(x, len);
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a),
                std::bit_cast<std::uint64_t>(b))
          << "tier=" << TierName(tier()) << " len=" << len << " off=" << off;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, DspSimdTierSweep,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return TierName(static_cast<Tier>(info.param));
                         });

// --- dispatch override ------------------------------------------------------

TEST(DspSimdDispatch, ForceTierSelectsEachSupportedTier) {
  const Tier before = ActiveTier();
  for (Tier t : SupportedTiers()) {
    ForceTier(t);
    EXPECT_EQ(ActiveTier(), t) << TierName(t);
    EXPECT_EQ(Active().tier, t) << TierName(t);
    EXPECT_EQ(&Active(), &Table(t)) << TierName(t);
  }
  ClearForcedTier();
  EXPECT_EQ(ActiveTier(), before);
}

TEST(DspSimdDispatch, UnsupportedTierThrows) {
  for (int t = 0; t < kTierCount; ++t) {
    const Tier tier = static_cast<Tier>(t);
    if (TierSupported(tier)) continue;
    EXPECT_THROW(ForceTier(tier), std::runtime_error) << TierName(tier);
    EXPECT_THROW((void)Table(tier), std::runtime_error) << TierName(tier);
  }
  // Scalar is supported everywhere by contract.
  EXPECT_TRUE(TierSupported(Tier::kScalar));
  EXPECT_NO_THROW((void)Table(Tier::kScalar));
}

TEST(DspSimdDispatch, TierNamesRoundTrip) {
  for (int t = 0; t < kTierCount; ++t) {
    const Tier tier = static_cast<Tier>(t);
    Tier parsed;
    ASSERT_TRUE(ParseTier(TierName(tier), parsed));
    EXPECT_EQ(parsed, tier);
  }
  Tier out;
  EXPECT_FALSE(ParseTier("neon", out));
  EXPECT_FALSE(ParseTier("", out));
  EXPECT_FALSE(ParseTier(nullptr, out));
}

// --- canonical atan2 --------------------------------------------------------

TEST(DspSimdAtan2, CloseToLibmEverywhere) {
  std::mt19937 rng(909);
  std::uniform_real_distribution<float> d(-4.0f, 4.0f);
  float worst = 0.0f;
  for (int i = 0; i < 200000; ++i) {
    const float y = d(rng), x = d(rng);
    const float got = CanonicalAtan2(y, x);
    const float want = std::atan2(y, x);
    worst = std::max(worst, std::abs(got - want));
  }
  // ~2 ulp of pi; the contract is determinism, not libm equality, but the
  // approximation must stay tight enough that decode decisions agree.
  EXPECT_LT(worst, 1e-5f);
}

TEST(DspSimdAtan2, EdgeCases) {
  EXPECT_EQ(CanonicalAtan2(0.0f, 1.0f), 0.0f);
  EXPECT_TRUE(std::signbit(CanonicalAtan2(-0.0f, 1.0f)));
  EXPECT_NEAR(CanonicalAtan2(0.0f, -1.0f), 3.14159265f, 1e-6f);
  EXPECT_NEAR(CanonicalAtan2(-0.0f, -1.0f), -3.14159265f, 1e-6f);
  EXPECT_NEAR(CanonicalAtan2(1.0f, 0.0f), 1.57079633f, 1e-6f);
  EXPECT_NEAR(CanonicalAtan2(-1.0f, 0.0f), -1.57079633f, 1e-6f);
  // Both zero: magnitude defined as 0 with y's sign (documented deviation
  // from libm for x = -0).
  EXPECT_EQ(CanonicalAtan2(0.0f, 0.0f), 0.0f);
  EXPECT_TRUE(std::isnan(CanonicalAtan2(std::nanf(""), 1.0f)));
}

}  // namespace
}  // namespace rfdump::dsp::simd
