// Tests for bit packing and CRC/HEC primitives.

#include <gtest/gtest.h>

#include "rfdump/util/bits.hpp"
#include "rfdump/util/crc.hpp"

using namespace rfdump::util;

namespace {

TEST(Bits, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0xA5, 0x3C, 0x01};
  const auto bits = BytesToBitsLsbFirst(bytes);
  ASSERT_EQ(bits.size(), bytes.size() * 8);
  EXPECT_EQ(BitsToBytesLsbFirst(bits), bytes);
}

TEST(Bits, LsbFirstOrder) {
  const std::vector<std::uint8_t> bytes = {0x01};  // bit 0 set
  const auto bits = BytesToBitsLsbFirst(bytes);
  EXPECT_EQ(bits[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
}

TEST(Bits, UintRoundTrip) {
  const std::uint64_t v = 0xDEADBEEFCAFEull;
  const auto bits = UintToBitsLsbFirst(v, 48);
  ASSERT_EQ(bits.size(), 48u);
  EXPECT_EQ(BitsToUintLsbFirst(bits), v);
}

TEST(Bits, PartialByte) {
  BitVec bits = {1, 0, 1};  // 0b101 = 5
  const auto bytes = BitsToBytesLsbFirst(bits);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 5);
}

TEST(Bits, HammingDistance) {
  BitVec a = {0, 1, 1, 0};
  BitVec b = {1, 1, 0, 0};
  EXPECT_EQ(HammingDistance(a, b), 2u);
  EXPECT_EQ(HammingDistance(a, a), 0u);
}

TEST(Bits, AppendBits) {
  BitVec dst = {1, 0};
  BitVec src = {1, 1};
  AppendBits(dst, src);
  EXPECT_EQ(dst, (BitVec{1, 0, 1, 1}));
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (classic check value).
  const std::string s = "123456789";
  std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyAndSensitivity) {
  EXPECT_EQ(Crc32({}), 0x00000000u);
  std::vector<std::uint8_t> a = {1, 2, 3};
  std::vector<std::uint8_t> b = {1, 2, 4};
  EXPECT_NE(Crc32(a), Crc32(b));
}

TEST(Crc16, DetectsSingleBitErrors) {
  BitVec bits(48, 0);
  bits[5] = 1;
  bits[17] = 1;
  const auto c1 = Crc16CcittBits(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto flipped = bits;
    flipped[i] ^= 1;
    EXPECT_NE(Crc16CcittBits(flipped), c1) << "bit " << i;
  }
}

TEST(Crc16, InitMatters) {
  BitVec bits = {1, 0, 1, 1, 0, 0, 1, 0};
  EXPECT_NE(Crc16CcittBits(bits, 0xFFFF), Crc16CcittBits(bits, 0x0000));
}

TEST(BtHec, SeededByUap) {
  BitVec header_bits = {1, 0, 0, 1, 1, 0, 1, 0, 1, 0};
  EXPECT_NE(BluetoothHec(header_bits, 0x47), BluetoothHec(header_bits, 0x00));
}

TEST(BtHec, DetectsSingleBitErrors) {
  BitVec bits = {1, 0, 0, 1, 1, 0, 1, 0, 1, 0};
  const auto h = BluetoothHec(bits, 0x47);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto flipped = bits;
    flipped[i] ^= 1;
    EXPECT_NE(BluetoothHec(flipped, 0x47), h) << "bit " << i;
  }
}

}  // namespace
