// Tests for phase utilities, resampler, decimator, NCO, Barker correlator,
// energy estimators, windows, dB helpers and the RNG.

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

#include "rfdump/dsp/barker.hpp"
#include "rfdump/dsp/db.hpp"
#include "rfdump/dsp/energy.hpp"
#include "rfdump/dsp/nco.hpp"
#include "rfdump/dsp/phase.hpp"
#include "rfdump/dsp/resampler.hpp"
#include "rfdump/dsp/windows.hpp"
#include "rfdump/util/rng.hpp"

namespace dsp = rfdump::dsp;
using rfdump::util::Xoshiro256;

namespace {

dsp::SampleVec ComplexTone(std::size_t n, double freq, double rate) {
  dsp::SampleVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * std::numbers::pi * freq *
                      static_cast<double>(i) / rate;
    v[i] = dsp::cfloat(static_cast<float>(std::cos(ph)),
                       static_cast<float>(std::sin(ph)));
  }
  return v;
}

// ---------------------------------------------------------------- dB helpers

TEST(Db, RoundTrips) {
  EXPECT_NEAR(dsp::PowerToDb(dsp::DbToPower(13.0)), 13.0, 1e-9);
  EXPECT_NEAR(dsp::AmplitudeToDb(dsp::DbToAmplitude(-7.5)), -7.5, 1e-9);
  EXPECT_NEAR(dsp::DbToPower(3.0103), 2.0, 1e-3);
  EXPECT_NEAR(dsp::DbToAmplitude(6.0206), 2.0, 1e-3);
}

// ---------------------------------------------------------------------- RNG

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  Xoshiro256 a2(42), c2(43);
  EXPECT_NE(a2(), c2());
}

TEST(Rng, UniformDoubleInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Xoshiro256 rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.UniformInt(3, 10);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 10u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 10);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(3);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.03);
}

// -------------------------------------------------------------------- phase

TEST(Phase, ToneHasConstantPhaseDiff) {
  const double freq = 1e6, rate = 8e6;
  const auto x = ComplexTone(100, freq, rate);
  const auto d = dsp::PhaseDiff(x);
  ASSERT_EQ(d.size(), 99u);
  const float expected = static_cast<float>(2.0 * std::numbers::pi * freq / rate);
  for (float v : d) EXPECT_NEAR(v, expected, 1e-4f);
}

TEST(Phase, ToneSecondDiffIsZero) {
  const auto x = ComplexTone(100, -2.5e6, 8e6);
  const auto d2 = dsp::PhaseSecondDiff(x);
  ASSERT_EQ(d2.size(), 98u);
  for (float v : d2) EXPECT_NEAR(v, 0.0f, 1e-3f);
}

TEST(Phase, WrapPhaseRange) {
  // Results must land in (-pi, pi] and be circularly equivalent to the input
  // (+/-pi are the same angle up to float rounding at the boundary).
  const float cases[] = {3.0f * dsp::kPi, -3.0f * dsp::kPi, 0.5f,
                         7.0f * dsp::kPi + 0.1f, -10.0f, 100.0f};
  for (float angle : cases) {
    const float w = dsp::WrapPhase(angle);
    EXPECT_GT(w, -dsp::kPi - 1e-5f) << angle;
    EXPECT_LE(w, dsp::kPi + 1e-5f) << angle;
    EXPECT_NEAR(std::cos(w), std::cos(angle), 1e-4f) << angle;
    EXPECT_NEAR(std::sin(w), std::sin(angle), 1e-4f) << angle;
  }
  EXPECT_NEAR(dsp::WrapPhase(0.5f), 0.5f, 1e-7f);
}

TEST(Phase, UnwrapRemovesJumps) {
  std::vector<float> ph;
  // A steadily increasing phase, wrapped.
  for (int i = 0; i < 100; ++i) {
    ph.push_back(dsp::WrapPhase(0.5f * static_cast<float>(i)));
  }
  dsp::UnwrapInPlace(ph);
  for (int i = 1; i < 100; ++i) {
    EXPECT_NEAR(ph[i] - ph[i - 1], 0.5f, 1e-4f);
  }
}

TEST(Phase, HistogramBpskFillsTwoOppositeBins) {
  std::vector<float> phases;
  for (int i = 0; i < 50; ++i) {
    phases.push_back(0.0f);
    phases.push_back(dsp::kPi);  // BPSK: 0 and pi
  }
  const auto hist = dsp::PhaseHistogram(phases, 4);
  ASSERT_EQ(hist.size(), 4u);
  int filled = 0;
  for (auto c : hist) {
    if (c > 0) ++filled;
  }
  EXPECT_EQ(filled, 2);
}

TEST(Phase, EmptyInputs) {
  EXPECT_TRUE(dsp::PhaseDiff({}).empty());
  EXPECT_TRUE(dsp::PhaseSecondDiff({}).empty());
  dsp::SampleVec one = {{1.0f, 0.0f}};
  EXPECT_TRUE(dsp::PhaseDiff(one).empty());
}

// ---------------------------------------------------------------------- NCO

TEST(Nco, ProducesRequestedFrequency) {
  dsp::Nco nco(1e6, 8e6);
  dsp::SampleVec x(64);
  for (auto& v : x) v = nco.Next();
  const auto d = dsp::PhaseDiff(x);
  const float expected = static_cast<float>(2.0 * std::numbers::pi / 8.0);
  for (float v : d) EXPECT_NEAR(v, expected, 1e-4f);
}

TEST(Nco, MixShiftsFrequency) {
  auto x = ComplexTone(256, 1e6, 8e6);
  dsp::Nco nco(-1e6, 8e6);
  nco.Mix(x);
  // Mixed to DC: constant phase.
  const auto d = dsp::PhaseDiff(x);
  for (float v : d) EXPECT_NEAR(v, 0.0f, 1e-3f);
}

TEST(Nco, AdvanceMatchesNext) {
  dsp::Nco a(1.3e6, 8e6), b(1.3e6, 8e6);
  for (int i = 0; i < 10; ++i) (void)a.Next();
  b.Advance(10);
  EXPECT_NEAR(a.phase(), b.phase(), 1e-9);
}

// ---------------------------------------------------------------- resampler

TEST(Resampler, UpsampleToneKeepsFrequency) {
  // 11/8 resample of a 500 kHz tone at 8 Msps -> same tone at 11 Msps.
  dsp::RationalResampler rs(11, 8);
  const auto x = ComplexTone(4000, 0.5e6, 8e6);
  const auto y = rs.Resampled(x);
  EXPECT_NEAR(static_cast<double>(y.size()),
              static_cast<double>(x.size()) * 11.0 / 8.0,
              16.0);
  // Skip the filter transient, then check the per-sample phase step.
  const auto d = dsp::PhaseDiff(y);
  const float expected = static_cast<float>(2.0 * std::numbers::pi * 0.5e6 / 11e6);
  for (std::size_t i = 200; i < d.size() - 200; ++i) {
    EXPECT_NEAR(d[i], expected, 5e-3f) << "i=" << i;
  }
}

TEST(Resampler, StreamingMatchesOneShot) {
  dsp::RationalResampler one(11, 8), stream(11, 8);
  const auto x = ComplexTone(2000, 1.1e6, 8e6);
  const auto expect = one.Resampled(x);
  dsp::SampleVec got;
  std::size_t pos = 0;
  const std::size_t chunks[] = {13, 1, 200, 7, 1000, 779};
  for (std::size_t c : chunks) {
    const std::size_t n = std::min(c, x.size() - pos);
    stream.Process(dsp::const_sample_span(x).subspan(pos, n), got);
    pos += n;
  }
  ASSERT_EQ(pos, x.size());
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(std::abs(got[i] - expect[i]), 0.0f, 1e-5f) << i;
  }
}

TEST(Resampler, AmplitudePreserved) {
  dsp::RationalResampler rs(11, 8);
  const auto x = ComplexTone(4000, 0.2e6, 8e6);
  const auto y = rs.Resampled(x);
  // Steady-state amplitude ~1.
  double mean = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 500; i + 500 < y.size(); ++i) {
    mean += std::abs(y[i]);
    ++count;
  }
  mean /= static_cast<double>(count);
  EXPECT_NEAR(mean, 1.0, 0.02);
}

TEST(Resampler, RejectsZeroParams) {
  EXPECT_THROW(dsp::RationalResampler(0, 8), std::invalid_argument);
  EXPECT_THROW(dsp::RationalResampler(11, 0), std::invalid_argument);
}

TEST(Decimator, KeepsEveryNth) {
  dsp::Decimator dec(11);
  const auto x = ComplexTone(11000, 0.1e6, 88e6);
  const auto y = dec.Decimated(x);
  EXPECT_EQ(y.size(), 1000u);
  // Tone at 0.1 MHz is far below the 4 MHz post-decimation Nyquist:
  // frequency must be preserved at the new rate.
  const auto d = dsp::PhaseDiff(y);
  const float expected = static_cast<float>(2.0 * std::numbers::pi * 0.1e6 / 8e6);
  for (std::size_t i = 50; i < d.size(); ++i) {
    EXPECT_NEAR(d[i], expected, 1e-3f);
  }
}

TEST(Decimator, SuppressesAliases) {
  // A 10 MHz tone at 88 Msps would alias to 2 MHz at 8 Msps; the anti-alias
  // filter must suppress it (10 MHz > 4 MHz cutoff).
  dsp::Decimator dec(11);
  const auto x = ComplexTone(22000, 10e6, 88e6);
  const auto y = dec.Decimated(x);
  double peak = 0.0;
  for (std::size_t i = 100; i < y.size(); ++i) {
    peak = std::max(peak, static_cast<double>(std::abs(y[i])));
  }
  EXPECT_LT(peak, 0.02);
}

TEST(Decimator, StreamingMatchesOneShot) {
  dsp::Decimator one(4), stream(4);
  const auto x = ComplexTone(997, 0.3e6, 8e6);
  const auto expect = one.Decimated(x);
  dsp::SampleVec got;
  std::size_t pos = 0;
  const std::size_t chunks[] = {3, 10, 1, 400, 583};
  for (std::size_t c : chunks) {
    const std::size_t n = std::min(c, x.size() - pos);
    stream.Process(dsp::const_sample_span(x).subspan(pos, n), got);
    pos += n;
  }
  ASSERT_EQ(pos, x.size());
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(std::abs(got[i] - expect[i]), 0.0f, 1e-5f) << i;
  }
}

// ------------------------------------------------------------------- barker

TEST(Barker, AutocorrelationPeak) {
  // The defining property: autocorrelation peak N, off-peak sidelobes <= 1.
  dsp::SampleVec chips(dsp::kBarker11.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    chips[i] = {static_cast<float>(dsp::kBarker11[i]), 0.0f};
  }
  // Build 3 repetitions and slide the correlator.
  dsp::SampleVec x;
  for (int r = 0; r < 3; ++r) x.insert(x.end(), chips.begin(), chips.end());
  const auto corr = dsp::CorrelateChips(x, dsp::kBarker11);
  // Aligned offsets 0, 11, 22 give 11; everything else <= 1... but note
  // cyclic overlap across repetition boundaries gives sidelobes <= 5 for
  // partial windows; only check strict peaks.
  EXPECT_NEAR(corr[0].real(), 11.0f, 1e-4f);
  EXPECT_NEAR(corr[11].real(), 11.0f, 1e-4f);
  EXPECT_NEAR(corr[22].real(), 11.0f, 1e-4f);
  for (std::size_t i = 0; i < corr.size(); ++i) {
    if (i % 11 != 0) {
      EXPECT_LT(std::abs(corr[i]), 6.0f) << "i=" << i;
    }
  }
}

TEST(Barker, NormalizedPeakIsOne) {
  dsp::SampleVec x(dsp::kBarker13.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = {0.7f * static_cast<float>(dsp::kBarker13[i]), 0.0f};
  }
  const auto norm = dsp::NormalizedCorrelateChips(x, dsp::kBarker13);
  ASSERT_EQ(norm.size(), 1u);
  EXPECT_NEAR(norm[0], 1.0f, 1e-4f);
}

TEST(Barker, ShortInputGivesEmpty) {
  dsp::SampleVec x(5, {1.0f, 0.0f});
  EXPECT_TRUE(dsp::CorrelateChips(x, dsp::kBarker11).empty());
  EXPECT_TRUE(dsp::NormalizedCorrelateChips(x, dsp::kBarker11).empty());
}

// ------------------------------------------------------------------- energy

TEST(Energy, MeanAndTotal) {
  dsp::SampleVec x = {{3.0f, 4.0f}, {0.0f, 0.0f}};  // |x0|^2 = 25
  EXPECT_NEAR(dsp::TotalEnergy(x), 25.0, 1e-6);
  EXPECT_NEAR(dsp::MeanPower(x), 12.5, 1e-6);
  EXPECT_EQ(dsp::MeanPower({}), 0.0);
}

TEST(Energy, MovingAverageConverges) {
  dsp::MovingAveragePower ma(20);
  for (int i = 0; i < 100; ++i) ma.Push({2.0f, 0.0f});  // power 4
  EXPECT_NEAR(ma.Average(), 4.0f, 1e-5f);
  EXPECT_EQ(ma.Count(), 20u);
}

TEST(Energy, MovingAveragePartialWindow) {
  dsp::MovingAveragePower ma(10);
  EXPECT_EQ(ma.Average(), 0.0f);
  ma.Push({1.0f, 0.0f});
  EXPECT_NEAR(ma.Average(), 1.0f, 1e-6f);
  ma.Push({0.0f, 0.0f});
  EXPECT_NEAR(ma.Average(), 0.5f, 1e-6f);
}

TEST(Energy, MovingAverageTracksStep) {
  dsp::MovingAveragePower ma(4);
  for (int i = 0; i < 8; ++i) ma.Push({0.0f, 0.0f});
  for (int i = 0; i < 4; ++i) ma.Push({1.0f, 0.0f});
  EXPECT_NEAR(ma.Average(), 1.0f, 1e-6f);  // window fully in the step
  ma.Reset();
  EXPECT_EQ(ma.Average(), 0.0f);
}

TEST(Energy, RejectsZeroWindow) {
  EXPECT_THROW(dsp::MovingAveragePower(0), std::invalid_argument);
}

TEST(Energy, NonFiniteSamplesDoNotPoisonAverages) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // FinitePower maps corrupt samples (and overflowing squares) to 0.
  EXPECT_EQ(dsp::FinitePower({nan, 0.0f}), 0.0f);
  EXPECT_EQ(dsp::FinitePower({0.0f, inf}), 0.0f);
  EXPECT_EQ(dsp::FinitePower({1e30f, 0.0f}), 0.0f);  // square overflows
  EXPECT_NEAR(dsp::FinitePower({3.0f, 4.0f}), 25.0f, 1e-5f);

  dsp::SampleVec x = {{3.0f, 4.0f}, {nan, 0.0f}, {0.0f, inf}, {0.0f, 0.0f}};
  EXPECT_NEAR(dsp::TotalEnergy(x), 25.0, 1e-6);
  EXPECT_NEAR(dsp::MeanPower(x), 6.25, 1e-6);

  // One NaN in a running average must not make every later average NaN
  // (NaN propagates forever through a naive running sum).
  dsp::MovingAveragePower ma(4);
  ma.Push({1.0f, 0.0f});
  ma.Push({nan, nan});
  ma.Push({inf, 0.0f});
  for (int i = 0; i < 8; ++i) ma.Push({1.0f, 0.0f});
  EXPECT_TRUE(std::isfinite(ma.Average()));
  EXPECT_NEAR(ma.Average(), 1.0f, 1e-6f);
}

// ------------------------------------------------------------------ windows

TEST(Windows, HannEndpointsAndPeak) {
  const auto w = dsp::MakeWindow(dsp::WindowType::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0f, 1e-6f);
  EXPECT_NEAR(w.back(), 0.0f, 1e-6f);
  EXPECT_NEAR(w[32], 1.0f, 1e-6f);
}

TEST(Windows, AllTypesBoundedAndSymmetric) {
  using WT = dsp::WindowType;
  for (WT t : {WT::kRectangular, WT::kHann, WT::kHamming, WT::kBlackman,
               WT::kBlackmanHarris, WT::kKaiser}) {
    const auto w = dsp::MakeWindow(t, 51);
    ASSERT_EQ(w.size(), 51u);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_GE(w[i], -1e-6f);
      EXPECT_LE(w[i], 1.0f + 1e-6f);
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-5f);
    }
  }
}

TEST(Windows, BesselI0KnownValues) {
  EXPECT_NEAR(dsp::BesselI0(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dsp::BesselI0(1.0), 1.2660658777520084, 1e-9);
  EXPECT_NEAR(dsp::BesselI0(5.0), 27.239871823604442, 1e-6);
}

TEST(Windows, DegenerateSizes) {
  EXPECT_EQ(dsp::MakeWindow(dsp::WindowType::kHann, 0).size(), 0u);
  const auto w1 = dsp::MakeWindow(dsp::WindowType::kHann, 1);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_EQ(w1[0], 1.0f);
}

}  // namespace
