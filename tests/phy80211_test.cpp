// 802.11b PHY tests: scrambler properties, PLCP framing, modulator structure,
// and full modulate->demodulate loopback under clean and impaired channels.

#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/dsp/energy.hpp"
#include "rfdump/phy80211/demodulator.hpp"
#include "rfdump/phy80211/modulator.hpp"
#include "rfdump/phy80211/plcp.hpp"
#include "rfdump/phy80211/scrambler.hpp"
#include "rfdump/util/crc.hpp"
#include "rfdump/util/rng.hpp"

namespace phy = rfdump::phy80211;
namespace dsp = rfdump::dsp;
namespace util = rfdump::util;

namespace {

std::vector<std::uint8_t> MakeMpdu(std::size_t payload_bytes,
                                   std::uint64_t seed) {
  // Arbitrary frame body + valid FCS at the end, as a MAC layer would emit.
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> mpdu(payload_bytes);
  for (auto& b : mpdu) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  const std::uint32_t fcs = util::Crc32(mpdu);
  for (int i = 0; i < 4; ++i) {
    mpdu.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFF));
  }
  return mpdu;
}

// ---------------------------------------------------------------- scrambler

TEST(Scrambler, RoundTripWithMatchingState) {
  util::Xoshiro256 rng(1);
  util::BitVec bits(500);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  phy::Scrambler scrambler(phy::Scrambler::kLongPreambleSeed);
  const auto scrambled = scrambler.Scramble(bits);
  phy::Descrambler descrambler(phy::Scrambler::kLongPreambleSeed);
  const auto recovered = descrambler.Descramble(scrambled);
  EXPECT_EQ(recovered, bits);
}

TEST(Scrambler, DescramblerSelfSynchronizes) {
  util::BitVec bits(200, 1u);  // SYNC-like all-ones
  phy::Scrambler scrambler(phy::Scrambler::kLongPreambleSeed);
  const auto scrambled = scrambler.Scramble(bits);
  // Descrambler with a WRONG (zero) seed: must be correct after 7 bits.
  phy::Descrambler descrambler(0);
  const auto recovered = descrambler.Descramble(scrambled);
  for (std::size_t i = 7; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i], 1u) << "i=" << i;
  }
}

TEST(Scrambler, OutputLooksRandom) {
  // All-ones input must not produce long runs (the whole point of scrambling
  // the SYNC field).
  util::BitVec bits(1000, 1u);
  phy::Scrambler scrambler(phy::Scrambler::kLongPreambleSeed);
  const auto scrambled = scrambler.Scramble(bits);
  std::size_t ones = 0, max_run = 0, run = 0;
  std::uint8_t prev = 2;
  for (auto b : scrambled) {
    ones += b;
    run = (b == prev) ? run + 1 : 1;
    prev = b;
    max_run = std::max(max_run, run);
  }
  EXPECT_GT(ones, 400u);
  EXPECT_LT(ones, 600u);
  EXPECT_LT(max_run, 15u);
}

// --------------------------------------------------------------------- PLCP

TEST(Plcp, HeaderRoundTrip) {
  phy::PlcpHeader h;
  h.rate = phy::Rate::k2Mbps;
  h.service = 0x04;
  h.length_us = 2352;
  const auto bits = phy::BuildPlcpBits(h);
  ASSERT_EQ(bits.size(), 128u + 16u + 48u);
  const auto parsed = phy::ParsePlcpHeader(
      std::span<const std::uint8_t>(bits).subspan(144, 48));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rate, phy::Rate::k2Mbps);
  EXPECT_EQ(parsed->service, 0x04);
  EXPECT_EQ(parsed->length_us, 2352);
}

TEST(Plcp, HeaderCrcRejectsCorruption) {
  phy::PlcpHeader h;
  h.rate = phy::Rate::k1Mbps;
  h.length_us = 800;
  auto bits = phy::BuildPlcpBits(h);
  auto hdr = std::span<const std::uint8_t>(bits).subspan(144, 48);
  for (std::size_t i = 0; i < 48; ++i) {
    util::BitVec corrupted(hdr.begin(), hdr.end());
    corrupted[i] ^= 1;
    EXPECT_FALSE(phy::ParsePlcpHeader(corrupted).has_value()) << "bit " << i;
  }
}

TEST(Plcp, RejectsInvalidSignalRate) {
  phy::PlcpHeader h;
  h.rate = phy::Rate::k1Mbps;
  h.length_us = 100;
  auto bits = phy::BuildPlcpBits(h);
  EXPECT_FALSE(phy::ParsePlcpHeader(
                   std::span<const std::uint8_t>(bits).subspan(144, 47))
                   .has_value());
}

TEST(Plcp, DurationRoundTrip) {
  using R = phy::Rate;
  for (R r : {R::k1Mbps, R::k2Mbps, R::k5_5Mbps, R::k11Mbps}) {
    for (std::size_t bytes : {64u, 588u, 1500u}) {
      phy::PlcpHeader h;
      h.rate = r;
      h.length_us = phy::PlcpHeader::DurationUsFor(r, bytes);
      EXPECT_EQ(h.MpduBytes(), bytes)
          << phy::RateName(r) << " " << bytes << "B";
    }
  }
}

TEST(Plcp, SyncIsScrambledOnes) {
  // First 128 transmitted PLCP bits are ones (pre-scrambling).
  phy::PlcpHeader h;
  h.rate = phy::Rate::k1Mbps;
  h.length_us = 80;
  const auto bits = phy::BuildPlcpBits(h);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_EQ(bits[i], 1u);
}

// ---------------------------------------------------------------- modulator

TEST(Modulator, ChipStreamLength1Mbps) {
  phy::Modulator mod;
  const auto mpdu = MakeMpdu(96, 7);  // 100 bytes total
  const auto chips = mod.ChipStream(mpdu, phy::Rate::k1Mbps);
  // (192 PLCP bits + 800 payload bits) symbols x 11 chips.
  EXPECT_EQ(chips.size(), (192u + 800u) * 11u);
}

TEST(Modulator, ChipStreamLength2Mbps) {
  phy::Modulator mod;
  const auto mpdu = MakeMpdu(96, 8);
  const auto chips = mod.ChipStream(mpdu, phy::Rate::k2Mbps);
  // 192 PLCP symbols + 800/2 payload symbols, 11 chips each.
  EXPECT_EQ(chips.size(), (192u + 400u) * 11u);
}

TEST(Modulator, CckChipCount11Mbps) {
  phy::Modulator mod;
  const auto mpdu = MakeMpdu(96, 9);
  const auto chips = mod.ChipStream(mpdu, phy::Rate::k11Mbps);
  // 192 PLCP symbols x 11 + 100 CCK symbols x 8 chips.
  EXPECT_EQ(chips.size(), 192u * 11u + 100u * 8u);
}

TEST(Modulator, ConstantEnvelopeChips) {
  phy::Modulator mod;
  const auto chips = mod.ChipStream(MakeMpdu(20, 10), phy::Rate::k1Mbps);
  for (const auto& c : chips) {
    EXPECT_NEAR(std::abs(c), 1.0f, 1e-5f);
  }
}

TEST(Modulator, SampleCountMatchesAirtime) {
  const auto mpdu = MakeMpdu(496, 11);  // 500 B
  phy::Modulator mod;
  const auto samples = mod.Modulate(mpdu, phy::Rate::k1Mbps);
  const auto expected = phy::Modulator::FrameSampleCount(500, phy::Rate::k1Mbps);
  // The waveform exceeds the nominal airtime by the resampler flush tail
  // (~23 samples) plus 8 padding samples.
  EXPECT_NEAR(static_cast<double>(samples.size()),
              static_cast<double>(expected) + 31.0, 16.0);
  // 500 B at 1 Mbps: 192 + 4000 us airtime.
  EXPECT_DOUBLE_EQ(phy::Modulator::FrameAirtimeUs(500, phy::Rate::k1Mbps),
                   4192.0);
}

TEST(Modulator, CckCodewordStructure) {
  // With all phases zero the codeword is (1,1,1,-1,1,1,-1,1).
  const auto cw = phy::CckCodeword(0.0f, 0.0f, 0.0f, 0.0f);
  const float expect_re[8] = {1, 1, 1, -1, 1, 1, -1, 1};
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(cw[i].real(), expect_re[i], 1e-6f) << i;
    EXPECT_NEAR(cw[i].imag(), 0.0f, 1e-6f) << i;
  }
}

// --------------------------------------------------------------- loopback

TEST(Loopback, Clean1Mbps) {
  const auto mpdu = MakeMpdu(96, 20);
  phy::Modulator mod;
  const auto samples = mod.Modulate(mpdu, phy::Rate::k1Mbps);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.rate, phy::Rate::k1Mbps);
  EXPECT_TRUE(frames[0].payload_decoded);
  EXPECT_TRUE(frames[0].fcs_ok);
  EXPECT_EQ(frames[0].mpdu, mpdu);
}

TEST(Loopback, Clean2Mbps) {
  const auto mpdu = MakeMpdu(196, 21);
  phy::Modulator mod;
  const auto samples = mod.Modulate(mpdu, phy::Rate::k2Mbps);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.rate, phy::Rate::k2Mbps);
  EXPECT_TRUE(frames[0].fcs_ok);
  EXPECT_EQ(frames[0].mpdu, mpdu);
}

TEST(Loopback, CckHeaderOnlyWithoutCckDecoding) {
  // With CCK decoding disabled, the demodulator behaves like the paper's
  // BBN decoder: CCK headers (sent at 1 Mbps) parse, payloads do not.
  const auto mpdu = MakeMpdu(96, 22);
  phy::Modulator mod;
  const auto samples = mod.Modulate(mpdu, phy::Rate::k11Mbps);
  phy::Demodulator::Config cfg;
  cfg.decode_cck = false;
  phy::Demodulator demod(cfg);
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.rate, phy::Rate::k11Mbps);
  EXPECT_FALSE(frames[0].payload_decoded);
}

TEST(Loopback, Cck11MbpsDecodesClean) {
  // Extension beyond the paper: CCK payload decoding via band-limited
  // codeword correlation with decision-feedback ISI cancellation.
  const auto mpdu = MakeMpdu(96, 22);
  phy::Modulator mod;
  const auto samples = mod.Modulate(mpdu, phy::Rate::k11Mbps);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.rate, phy::Rate::k11Mbps);
  EXPECT_TRUE(frames[0].payload_decoded);
  EXPECT_TRUE(frames[0].fcs_ok);
  EXPECT_EQ(frames[0].mpdu, mpdu);
}

TEST(Loopback, Cck5_5MbpsDecodesNoisy) {
  const auto mpdu = MakeMpdu(150, 23);
  phy::Modulator mod;
  auto samples = mod.Modulate(mpdu, phy::Rate::k5_5Mbps);
  util::Xoshiro256 rng(123);
  const double sig_power = dsp::MeanPower(samples);
  rfdump::channel::AddAwgn(
      samples, rfdump::channel::NoisePowerForSnr(sig_power, 25.0), rng);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.rate, phy::Rate::k5_5Mbps);
  EXPECT_TRUE(frames[0].fcs_ok);
  EXPECT_EQ(frames[0].mpdu, mpdu);
}

TEST(Loopback, NoisyHighSnrDecodes) {
  const auto mpdu = MakeMpdu(496, 23);
  phy::Modulator mod;
  auto samples = mod.Modulate(mpdu, phy::Rate::k1Mbps);
  util::Xoshiro256 rng(99);
  const double sig_power = dsp::MeanPower(samples);
  rfdump::channel::AddAwgn(samples,
                           rfdump::channel::NoisePowerForSnr(sig_power, 20.0),
                           rng);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].fcs_ok);
  EXPECT_EQ(frames[0].mpdu, mpdu);
}

TEST(Loopback, CfoTolerated) {
  const auto mpdu = MakeMpdu(96, 24);
  phy::Modulator mod;
  auto samples = mod.Modulate(mpdu, phy::Rate::k1Mbps);
  // 30 kHz CFO (typical crystal error at 2.4 GHz is ~10-50 kHz).
  rfdump::channel::ApplyFrequencyOffset(samples, 30e3, dsp::kSampleRateHz, 0);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].fcs_ok) << "CFO broke the decode";
}

TEST(Loopback, PureNoiseYieldsNothing) {
  util::Xoshiro256 rng(55);
  dsp::SampleVec noise(40000);
  rfdump::channel::AddAwgn(noise, 1.0, rng);
  phy::Demodulator demod;
  EXPECT_TRUE(demod.DecodeAll(noise).empty());
}

TEST(Loopback, TwoFramesBackToBack) {
  const auto mpdu1 = MakeMpdu(60, 25);
  const auto mpdu2 = MakeMpdu(120, 26);
  phy::Modulator mod;
  auto s1 = mod.Modulate(mpdu1, phy::Rate::k1Mbps);
  const auto s2 = mod.Modulate(mpdu2, phy::Rate::k1Mbps);
  // 20 us of silence between frames.
  s1.insert(s1.end(), dsp::MicrosToSamples(20), dsp::cfloat{0.0f, 0.0f});
  s1.insert(s1.end(), s2.begin(), s2.end());
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(s1);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].mpdu, mpdu1);
  EXPECT_EQ(frames[1].mpdu, mpdu2);
  EXPECT_LT(frames[0].end_sample, frames[1].start_sample);
}

TEST(Loopback, FrameBoundariesRoughlyCorrect) {
  const auto mpdu = MakeMpdu(496, 27);
  phy::Modulator mod;
  auto samples = mod.Modulate(mpdu, phy::Rate::k1Mbps);
  // Prepend silence so the start offset is nontrivial.
  dsp::SampleVec stream(dsp::MicrosToSamples(100), dsp::cfloat{0.0f, 0.0f});
  const auto frame_start = static_cast<std::int64_t>(stream.size());
  stream.insert(stream.end(), samples.begin(), samples.end());
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(stream);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NEAR(static_cast<double>(frames[0].start_sample),
              static_cast<double>(frame_start), 200.0);
  const double expect_end =
      static_cast<double>(frame_start) +
      phy::Modulator::FrameAirtimeUs(500, phy::Rate::k1Mbps) * 8.0;
  EXPECT_NEAR(static_cast<double>(frames[0].end_sample), expect_end, 300.0);
}

TEST(Loopback, CorruptedFcsReported) {
  auto mpdu = MakeMpdu(96, 28);
  mpdu[10] ^= 0xFF;  // break content after FCS computed
  phy::Modulator mod;
  const auto samples = mod.Modulate(mpdu, phy::Rate::k1Mbps);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].payload_decoded);
  EXPECT_FALSE(frames[0].fcs_ok);
}

class LoopbackSnrSweep
    : public ::testing::TestWithParam<std::tuple<double, phy::Rate>> {};

TEST_P(LoopbackSnrSweep, DecodesAboveThreshold) {
  const auto [snr_db, rate] = GetParam();
  const auto mpdu = MakeMpdu(196, 30 + static_cast<int>(snr_db));
  phy::Modulator mod;
  auto samples = mod.Modulate(mpdu, rate);
  util::Xoshiro256 rng(777);
  const double sig_power = dsp::MeanPower(samples);
  rfdump::channel::AddAwgn(
      samples, rfdump::channel::NoisePowerForSnr(sig_power, snr_db), rng);
  phy::Demodulator demod;
  const auto frames = demod.DecodeAll(samples);
  ASSERT_GE(frames.size(), 1u) << "no frame at " << snr_db << " dB";
  EXPECT_TRUE(frames[0].fcs_ok) << "bad decode at " << snr_db << " dB";
}

INSTANTIATE_TEST_SUITE_P(
    HighSnr, LoopbackSnrSweep,
    ::testing::Combine(::testing::Values(15.0, 20.0, 30.0),
                       ::testing::Values(phy::Rate::k1Mbps,
                                         phy::Rate::k2Mbps)));

}  // namespace
