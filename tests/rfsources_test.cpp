// RF interference source tests: microwave oven duty cycle/envelope, CW tone,
// impulse noise.

#include <bit>
#include <gtest/gtest.h>

#include "rfdump/dsp/energy.hpp"
#include "rfdump/dsp/fft.hpp"
#include "rfdump/dsp/phase.hpp"
#include "rfdump/rfsources/sources.hpp"

namespace dsp = rfdump::dsp;
namespace rfs = rfdump::rfsources;

namespace {

TEST(Microwave, DutyCycleMatchesAcPeriod) {
  rfs::MicrowaveOven oven;
  // One full 60 Hz cycle = 133333 samples at 8 Msps.
  const auto period =
      static_cast<std::int64_t>(dsp::kSampleRateHz / 60.0);
  std::int64_t on = 0;
  for (std::int64_t n = 0; n < period; ++n) {
    if (oven.IsOn(n)) ++on;
  }
  EXPECT_NEAR(static_cast<double>(on) / static_cast<double>(period), 0.5,
              0.01);
  // Periodicity.
  EXPECT_EQ(oven.IsOn(100), oven.IsOn(100 + period));
}

TEST(Microwave, ConstantEnvelopeWhileOn) {
  rfs::MicrowaveOven oven;
  const auto burst = oven.Generate(0, 20000);  // starts in the on-phase
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (oven.IsOn(static_cast<std::int64_t>(i))) {
      EXPECT_NEAR(std::abs(burst[i]), 1.0f, 1e-4f) << i;
    } else {
      EXPECT_EQ(std::abs(burst[i]), 0.0f) << i;
    }
  }
}

TEST(Microwave, OffPhaseIsSilent) {
  rfs::MicrowaveOven oven;
  const auto period = dsp::kSampleRateHz / 60.0;
  const auto off_start = static_cast<std::int64_t>(period * 0.6);
  const auto burst = oven.Generate(off_start, 1000);
  EXPECT_EQ(dsp::TotalEnergy(burst), 0.0);
}

TEST(Microwave, FrequencySweepsThroughBand) {
  rfs::MicrowaveOven oven;
  const auto burst = oven.Generate(0, 60000);
  // Instantaneous frequency must move over the burst (it is a chirp, not a
  // fixed tone): compare mean d1 phase over early vs late windows.
  const auto early = dsp::PhaseDiff(
      dsp::const_sample_span(burst).subspan(1000, 3000));
  const auto late = dsp::PhaseDiff(
      dsp::const_sample_span(burst).subspan(50000, 3000));
  double e = 0.0, l = 0.0;
  for (float v : early) e += v;
  for (float v : late) l += v;
  e /= static_cast<double>(early.size());
  l /= static_cast<double>(late.size());
  EXPECT_GT(std::abs(e - l), 0.01);
}

TEST(Microwave, DeterministicForSeed) {
  rfs::MicrowaveOven a(rfs::MicrowaveOven::Config{}, 42);
  rfs::MicrowaveOven b(rfs::MicrowaveOven::Config{}, 42);
  const auto ba = a.Generate(0, 500);
  const auto bb = b.Generate(0, 500);
  for (std::size_t i = 0; i < 500; ++i) EXPECT_EQ(ba[i], bb[i]);
}

TEST(Cw, ToneAtRequestedOffset) {
  const auto tone = rfs::GenerateCw(2e6, 0.5f, 0, 4096);
  dsp::FftPlan plan(4096);
  const auto spectrum = plan.PowerSpectrum(tone);
  // Peak bin at 2 MHz / 8 MHz * 4096 = 1024.
  const auto peak =
      std::max_element(spectrum.begin(), spectrum.end()) - spectrum.begin();
  EXPECT_EQ(peak, 1024);
  EXPECT_NEAR(dsp::MeanPower(tone), 0.25, 1e-4);
}

TEST(Cw, PhaseContinuityAcrossCalls) {
  const auto whole = rfs::GenerateCw(1e6, 1.0f, 0, 200);
  const auto a = rfs::GenerateCw(1e6, 1.0f, 0, 100);
  const auto b = rfs::GenerateCw(1e6, 1.0f, 100, 100);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(std::abs(whole[i] - a[i]), 0.0f, 1e-5f);
    EXPECT_NEAR(std::abs(whole[100 + i] - b[i]), 0.0f, 1e-5f);
  }
}

TEST(Impulses, RateAndAmplitude) {
  rfdump::util::Xoshiro256 rng(9);
  const std::size_t n = 800000;  // 0.1 s
  const auto x = rfs::GenerateImpulses(n, 500.0, 40, 3.0f, rng);
  ASSERT_EQ(x.size(), n);
  // Count bursts (transitions from silence to energy).
  std::size_t bursts = 0;
  bool in_burst = false;
  for (const auto& s : x) {
    const bool active = std::norm(s) > 0.0f;
    if (active && !in_burst) ++bursts;
    in_burst = active;
  }
  // 500 bursts/s over 0.1 s -> ~50, Poisson spread.
  EXPECT_GT(bursts, 25u);
  EXPECT_LT(bursts, 90u);
}

TEST(Impulses, ZeroRateIsSilent) {
  rfdump::util::Xoshiro256 rng(10);
  const auto x = rfs::GenerateImpulses(10000, 0.0, 40, 3.0f, rng);
  EXPECT_EQ(dsp::TotalEnergy(x), 0.0);
}

}  // namespace
