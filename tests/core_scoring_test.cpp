// Unit tests for the accuracy scoring used by every experiment, plus ether
// ground-truth bookkeeping edge cases.

#include <gtest/gtest.h>

#include "rfdump/core/scoring.hpp"

namespace core = rfdump::core;
namespace emu = rfdump::emu;

namespace {

emu::TruthRecord Truth(core::Protocol p, std::int64_t a, std::int64_t b,
                       bool visible = true) {
  emu::TruthRecord r;
  r.protocol = p;
  r.start_sample = a;
  r.end_sample = b;
  r.visible = visible;
  return r;
}

core::Detection Det(core::Protocol p, std::int64_t a, std::int64_t b,
                    const char* name = "d") {
  return {p, a, b, 1.0f, name};
}

TEST(Scoring, FullCoverageNoMisses) {
  std::vector<emu::TruthRecord> truth = {
      Truth(core::Protocol::kWifi80211b, 100, 200),
      Truth(core::Protocol::kWifi80211b, 300, 400),
  };
  std::vector<core::Detection> dets = {
      Det(core::Protocol::kWifi80211b, 90, 210),
      Det(core::Protocol::kWifi80211b, 295, 405),
  };
  const auto s = core::ScoreDetections(truth, core::Protocol::kWifi80211b,
                                       dets, 1000);
  EXPECT_EQ(s.truth_packets, 2u);
  EXPECT_EQ(s.missed, 0u);
  // 20 + 10 padding samples outside any truth interval.
  EXPECT_EQ(s.false_positive_samples, 30);
  EXPECT_DOUBLE_EQ(s.FalsePositiveRate(1000), 0.03);
}

TEST(Scoring, PartialCoverageCountsAsMissBelowThreshold) {
  std::vector<emu::TruthRecord> truth = {
      Truth(core::Protocol::kWifi80211b, 0, 1000),
  };
  // Only 30% covered: below the default 50% threshold.
  std::vector<core::Detection> dets = {
      Det(core::Protocol::kWifi80211b, 0, 300),
  };
  auto s = core::ScoreDetections(truth, core::Protocol::kWifi80211b, dets,
                                 2000);
  EXPECT_EQ(s.missed, 1u);
  // With a lower threshold the same coverage counts as found.
  s = core::ScoreDetections(truth, core::Protocol::kWifi80211b, dets, 2000,
                            {}, 0.25);
  EXPECT_EQ(s.missed, 0u);
}

TEST(Scoring, WrongProtocolDetectionsIgnored) {
  std::vector<emu::TruthRecord> truth = {
      Truth(core::Protocol::kBluetooth, 100, 200),
  };
  std::vector<core::Detection> dets = {
      Det(core::Protocol::kWifi80211b, 90, 210),  // covers it, wrong protocol
  };
  const auto s = core::ScoreDetections(truth, core::Protocol::kBluetooth,
                                       dets, 1000);
  EXPECT_EQ(s.missed, 1u);
}

TEST(Scoring, DetectorNameFilter) {
  std::vector<emu::TruthRecord> truth = {
      Truth(core::Protocol::kWifi80211b, 100, 200),
  };
  std::vector<core::Detection> dets = {
      Det(core::Protocol::kWifi80211b, 90, 210, "phase"),
  };
  auto s = core::ScoreDetections(truth, core::Protocol::kWifi80211b, dets,
                                 1000, "timing");
  EXPECT_EQ(s.missed, 1u);  // only "timing" detections count
  s = core::ScoreDetections(truth, core::Protocol::kWifi80211b, dets, 1000,
                            "phase");
  EXPECT_EQ(s.missed, 0u);
}

TEST(Scoring, InvisibleTruthExcluded) {
  std::vector<emu::TruthRecord> truth = {
      Truth(core::Protocol::kBluetooth, 100, 200, /*visible=*/false),
      Truth(core::Protocol::kBluetooth, 300, 400, /*visible=*/true),
  };
  const auto s = core::ScoreDetections(truth, core::Protocol::kBluetooth, {},
                                       1000);
  EXPECT_EQ(s.truth_packets, 1u);  // invisible hop not expected to be found
  EXPECT_EQ(s.missed, 1u);
}

TEST(Scoring, FalsePositiveExcusedByOtherProtocolTruth) {
  // A Wi-Fi-tagged interval that lands on a real Bluetooth packet is a
  // misclassification, but not a "non-signal" false positive in the paper's
  // sample-rate sense.
  std::vector<emu::TruthRecord> truth = {
      Truth(core::Protocol::kBluetooth, 100, 200),
  };
  std::vector<core::Detection> dets = {
      Det(core::Protocol::kWifi80211b, 100, 200),
  };
  const auto s = core::ScoreDetections(truth, core::Protocol::kWifi80211b,
                                       dets, 1000);
  EXPECT_EQ(s.false_positive_samples, 0);
  EXPECT_EQ(s.forwarded_samples, 100);
}

TEST(Scoring, EmptyInputs) {
  const auto s = core::ScoreDetections({}, core::Protocol::kWifi80211b, {},
                                       1000);
  EXPECT_EQ(s.truth_packets, 0u);
  EXPECT_DOUBLE_EQ(s.MissRate(), 0.0);
  EXPECT_DOUBLE_EQ(s.FalsePositiveRate(0), 0.0);
}

TEST(Scoring, OverlappingDetectionsCountedOnce) {
  std::vector<emu::TruthRecord> truth;
  std::vector<core::Detection> dets = {
      Det(core::Protocol::kWifi80211b, 100, 300),
      Det(core::Protocol::kWifi80211b, 200, 400),  // overlaps the first
  };
  const auto s = core::ScoreDetections(truth, core::Protocol::kWifi80211b,
                                       dets, 1000);
  EXPECT_EQ(s.forwarded_samples, 300);  // union, not sum
  EXPECT_EQ(s.false_positive_samples, 300);
}

TEST(Scoring, VisibleTruthWithinBounds) {
  std::vector<emu::TruthRecord> truth = {
      Truth(core::Protocol::kZigbee, 0, 100),
      Truth(core::Protocol::kZigbee, 900, 1100),  // ends past the trace
      Truth(core::Protocol::kZigbee, 200, 300, /*visible=*/false),
  };
  const auto v =
      core::VisibleTruthWithin(truth, core::Protocol::kZigbee, 1000);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].start_sample, 0);
}

TEST(EtherTruth, InvisibleAndLastActivity) {
  emu::Ether ether;
  emu::TruthRecord meta;
  meta.protocol = core::Protocol::kBluetooth;
  meta.start_sample = 500;
  meta.end_sample = 700;
  ether.AddInvisible(meta);
  EXPECT_EQ(ether.LastActivity(), 0);  // invisible doesn't count
  rfdump::dsp::SampleVec burst(100, {1.0f, 0.0f});
  ether.AddBurst(burst, 1000, 10.0, meta);
  EXPECT_EQ(ether.LastActivity(), 1100);
  EXPECT_EQ(ether.VisibleTruth(core::Protocol::kBluetooth).size(), 1u);
  EXPECT_EQ(ether.truth().size(), 2u);
}

}  // namespace
