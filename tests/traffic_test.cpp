// Traffic generator tests: the emulated workloads must have the exact
// structural properties the detectors key on (SIFS/DIFS spacing, TDD slots,
// size-encoded sequence numbers, beacon intervals, rate mixes).

#include <gtest/gtest.h>

#include "rfdump/emu/ether.hpp"
#include "rfdump/mac80211/timing.hpp"
#include "rfdump/phybt/hopping.hpp"
#include "rfdump/phyzigbee/phy.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace dsp = rfdump::dsp;
namespace emu = rfdump::emu;
namespace traffic = rfdump::traffic;
using rfdump::core::Protocol;

namespace {

TEST(TrafficUnicast, FourFramesPerPing) {
  emu::Ether ether;
  traffic::WifiPingConfig cfg;
  cfg.count = 7;
  const auto r = traffic::GenerateUnicastPing(ether, cfg, 1000);
  EXPECT_EQ(r.packets, 28u);
  EXPECT_EQ(ether.truth().size(), 28u);
  // Alternating DATA/ACK kinds.
  for (std::size_t i = 0; i < ether.truth().size(); ++i) {
    const auto& k = ether.truth()[i].kind;
    if (i % 2 == 0) {
      EXPECT_EQ(k.rfind("DATA", 0), 0u) << i;
    } else {
      EXPECT_EQ(k.rfind("ACK", 0), 0u) << i;
    }
  }
}

TEST(TrafficUnicast, SifsSpacingExact) {
  emu::Ether ether;
  traffic::WifiPingConfig cfg;
  cfg.count = 3;
  traffic::GenerateUnicastPing(ether, cfg, 1000);
  const auto& t = ether.truth();
  // DATA(i) end to ACK(i) start: SIFS = 80 samples. The burst's truth
  // interval includes ~23 samples of resampler flush tail plus 8 padding
  // samples, so the recorded gap is ~80 - 31 = 49.
  for (std::size_t i = 0; i + 1 < t.size(); i += 2) {
    const auto gap = t[i + 1].start_sample - t[i].end_sample;
    EXPECT_NEAR(static_cast<double>(gap), 49.0, 4.0) << i;
  }
}

TEST(TrafficUnicast, IntervalRespected) {
  emu::Ether ether;
  traffic::WifiPingConfig cfg;
  cfg.count = 4;
  cfg.interval_us = 50000.0;
  traffic::GenerateUnicastPing(ether, cfg, 0);
  const auto& t = ether.truth();
  // Request i+1 starts ~interval after request i.
  const auto req0 = t[0].start_sample;
  const auto req1 = t[4].start_sample;
  EXPECT_NEAR(static_cast<double>(req1 - req0), 50000e-6 * 8e6, 100.0);
}

TEST(TrafficBroadcast, DifsPlusSlotsSpacing) {
  emu::Ether ether;
  traffic::WifiBroadcastConfig cfg;
  cfg.count = 40;
  traffic::GenerateBroadcastFlood(ether, cfg, 1000);
  const auto& t = ether.truth();
  ASSERT_EQ(t.size(), 40u);
  const std::int64_t slot = dsp::MicrosToSamples(20.0);
  const std::int64_t difs = dsp::MicrosToSamples(50.0);
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    // Gap (net of the flush tail + pad inside the truth interval).
    const auto gap = t[i + 1].start_sample - t[i].end_sample + 31;
    const auto over = gap - difs;
    EXPECT_GE(over, -2);
    const auto k = (over + slot / 2) / slot;
    EXPECT_LE(k, 31);
    EXPECT_NEAR(static_cast<double>(over - k * slot), 0.0, 2.0) << i;
  }
}

TEST(TrafficL2Ping, SlotAlignmentAndVisibility) {
  emu::Ether ether;
  traffic::L2PingConfig cfg;
  cfg.count = 200;
  traffic::GenerateL2Ping(ether, cfg, 0);
  const auto& t = ether.truth();
  ASSERT_EQ(t.size(), 400u);
  const std::int64_t slot = dsp::MicrosToSamples(rfdump::phybt::kSlotUs);
  std::size_t visible = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].start_sample % slot, 0) << i;  // started at a slot edge
    if (t[i].visible) ++visible;
  }
  // ~8/79 of packets visible.
  const double frac = static_cast<double>(visible) / 400.0;
  EXPECT_NEAR(frac, 8.0 / 79.0, 0.06);
}

TEST(TrafficL2Ping, SizesEncodeSequence) {
  EXPECT_EQ(traffic::L2PingSizeForSeq(0), 225u);
  EXPECT_EQ(traffic::L2PingSizeForSeq(114), 339u);
  EXPECT_EQ(traffic::L2PingSizeForSeq(115), 225u);
  emu::Ether ether;
  traffic::L2PingConfig cfg;
  cfg.count = 10;
  traffic::GenerateL2Ping(ether, cfg, 0);
  // Request and response of ping i have the size encoding seq i; truth
  // packet_id matches.
  for (const auto& t : ether.truth()) {
    EXPECT_LT(t.packet_id, 10u);
  }
}

TEST(TrafficBeacons, StandardInterval) {
  emu::Ether ether;
  traffic::BeaconConfig cfg;
  cfg.count = 5;
  traffic::GenerateBeacons(ether, cfg, 0);
  const auto& t = ether.truth();
  ASSERT_EQ(t.size(), 5u);
  const auto interval =
      dsp::MicrosToSamples(rfdump::mac80211::kBeaconIntervalUs);
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    EXPECT_EQ(t[i + 1].start_sample - t[i].start_sample, interval);
  }
}

TEST(TrafficMicrowave, BurstsAtAcPeriod) {
  emu::Ether ether;
  traffic::MicrowaveConfig cfg;
  const auto duration = static_cast<std::int64_t>(0.1 * dsp::kSampleRateHz);
  const auto r = traffic::GenerateMicrowave(ether, cfg, 0, duration);
  // 60 Hz over 0.1 s -> ~6 bursts.
  EXPECT_GE(r.packets, 5u);
  EXPECT_LE(r.packets, 7u);
  const auto& t = ether.truth();
  const auto period = static_cast<std::int64_t>(dsp::kSampleRateHz / 60.0);
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(t[i + 1].start_sample -
                                    t[i].start_sample),
                static_cast<double>(period), 2.0);
  }
}

TEST(TrafficCampus, RateMixAndKinds) {
  emu::Ether ether;
  traffic::CampusConfig cfg;
  cfg.duration_sec = 0.3;
  cfg.include_bluetooth = false;
  const auto r = traffic::GenerateCampus(ether, cfg, 0);
  EXPECT_GT(r.packets, 20u);
  std::size_t rate_1m = 0, cck = 0, arps = 0, beacons = 0;
  for (const auto& t : ether.truth()) {
    if (t.protocol != Protocol::kWifi80211b) continue;
    if (t.kind.find("@1Mbps") != std::string::npos) ++rate_1m;
    if (t.kind.find("@5.5Mbps") != std::string::npos ||
        t.kind.find("@11Mbps") != std::string::npos) {
      ++cck;
    }
    if (t.kind.rfind("ARP", 0) == 0) ++arps;
    if (t.kind.rfind("BEACON", 0) == 0) ++beacons;
  }
  // The mix skews to CCK rates; some 1 Mbps (ARPs/beacons at least).
  EXPECT_GT(cck, rate_1m);
  EXPECT_GT(arps, 0u);
  EXPECT_GE(beacons, 3u);
}

TEST(TrafficCampus, DeterministicForSeed) {
  emu::Ether a(emu::Ether::Config{}, 7);
  emu::Ether b(emu::Ether::Config{}, 7);
  traffic::CampusConfig cfg;
  cfg.duration_sec = 0.1;
  traffic::GenerateCampus(a, cfg, 0);
  traffic::GenerateCampus(b, cfg, 0);
  ASSERT_EQ(a.truth().size(), b.truth().size());
  for (std::size_t i = 0; i < a.truth().size(); ++i) {
    EXPECT_EQ(a.truth()[i].start_sample, b.truth()[i].start_sample);
    EXPECT_EQ(a.truth()[i].kind, b.truth()[i].kind);
  }
}

TEST(TrafficZigbee, LifsRespected) {
  emu::Ether ether;
  traffic::ZigbeeConfig cfg;
  cfg.count = 5;
  cfg.interval_us = 0.0;  // pack as tightly as LIFS allows
  traffic::GenerateZigbee(ether, cfg, 0);
  const auto& t = ether.truth();
  ASSERT_EQ(t.size(), 5u);
  const auto min_gap =
      dsp::MicrosToSamples(rfdump::phyzigbee::kLifsUs) - 64;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    EXPECT_GE(t[i + 1].start_sample - t[i].end_sample, min_gap);
  }
}

}  // namespace
