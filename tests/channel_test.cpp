// Channel model tests: AWGN statistics, SNR scaling, CFO, multipath,
// quantization.

#include <cmath>
#include <gtest/gtest.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/dsp/energy.hpp"
#include "rfdump/dsp/phase.hpp"

namespace dsp = rfdump::dsp;
namespace ch = rfdump::channel;
using rfdump::util::Xoshiro256;

namespace {

TEST(Channel, AwgnPowerMatchesRequest) {
  Xoshiro256 rng(11);
  dsp::SampleVec x(100000, {0.0f, 0.0f});
  ch::AddAwgn(x, 0.25, rng);
  EXPECT_NEAR(dsp::MeanPower(x), 0.25, 0.01);
}

TEST(Channel, AwgnZeroPowerIsNoop) {
  Xoshiro256 rng(12);
  dsp::SampleVec x(100, {1.0f, 1.0f});
  ch::AddAwgn(x, 0.0, rng);
  for (const auto& s : x) {
    EXPECT_EQ(s, dsp::cfloat(1.0f, 1.0f));
  }
}

TEST(Channel, ScaleToPower) {
  dsp::SampleVec x(1000, {2.0f, 0.0f});  // power 4
  ch::ScaleToPower(x, 1.0);
  EXPECT_NEAR(dsp::MeanPower(x), 1.0, 1e-5);
}

TEST(Channel, ScaleSilenceIsNoop) {
  dsp::SampleVec x(10, {0.0f, 0.0f});
  ch::ScaleToPower(x, 1.0);
  for (const auto& s : x) EXPECT_EQ(std::abs(s), 0.0f);
}

TEST(Channel, SnrIsAchieved) {
  Xoshiro256 rng(13);
  dsp::SampleVec x(50000, {1.0f, 0.0f});  // signal power 1
  const double noise_power = ch::NoisePowerForSnr(1.0, 10.0);
  EXPECT_NEAR(noise_power, 0.1, 1e-9);
  ch::AddAwgn(x, noise_power, rng);
  // Total power should be signal + noise.
  EXPECT_NEAR(dsp::MeanPower(x), 1.1, 0.01);
}

TEST(Channel, FrequencyOffsetRotates) {
  dsp::SampleVec x(1000, {1.0f, 0.0f});
  ch::ApplyFrequencyOffset(x, 1e6, 8e6, 0);
  const auto d = dsp::PhaseDiff(x);
  const float expected = static_cast<float>(2.0 * std::numbers::pi / 8.0);
  for (float v : d) EXPECT_NEAR(v, expected, 1e-4f);
}

TEST(Channel, FrequencyOffsetChunkContinuity) {
  dsp::SampleVec whole(200, {1.0f, 0.0f});
  ch::ApplyFrequencyOffset(whole, 0.7e6, 8e6, 0);
  dsp::SampleVec a(100, {1.0f, 0.0f}), b(100, {1.0f, 0.0f});
  ch::ApplyFrequencyOffset(a, 0.7e6, 8e6, 0);
  ch::ApplyFrequencyOffset(b, 0.7e6, 8e6, 100);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(std::abs(whole[i] - a[i]), 0.0f, 1e-5f);
    EXPECT_NEAR(std::abs(whole[100 + i] - b[i]), 0.0f, 1e-5f);
  }
}

TEST(Channel, MultipathPreservesPower) {
  ch::Multipath mp(std::vector<ch::Multipath::Tap>{
      {0, {1.0f, 0.0f}}, {3, {0.5f, 0.2f}}, {7, {0.0f, 0.3f}}});
  Xoshiro256 rng(14);
  dsp::SampleVec x(20000);
  for (auto& s : x) {
    s = dsp::cfloat(static_cast<float>(rng.Gaussian()),
                    static_cast<float>(rng.Gaussian()));
  }
  const double pin = dsp::MeanPower(x);
  const auto y = mp.Apply(x);
  EXPECT_EQ(y.size(), x.size() + 7);
  // Tap power normalized to 1 and input is white: output power ~= input.
  EXPECT_NEAR(dsp::MeanPower(y) / pin, 1.0, 0.05);
}

TEST(Channel, MultipathSingleTapIdentity) {
  ch::Multipath mp(std::vector<ch::Multipath::Tap>{{0, {1.0f, 0.0f}}});
  dsp::SampleVec x = {{1.0f, 2.0f}, {3.0f, 4.0f}};
  const auto y = mp.Apply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_NEAR(std::abs(y[0] - x[0]), 0.0f, 1e-6f);
  EXPECT_NEAR(std::abs(y[1] - x[1]), 0.0f, 1e-6f);
}

TEST(Channel, MultipathRejectsBadTaps) {
  EXPECT_THROW(ch::Multipath(std::vector<ch::Multipath::Tap>{}), std::invalid_argument);
  EXPECT_THROW(ch::Multipath(std::vector<ch::Multipath::Tap>{{0, {0.0f, 0.0f}}}),
               std::invalid_argument);
}

TEST(Channel, QuantizeClampsAndRounds) {
  dsp::SampleVec x = {{2.0f, -2.0f}, {0.1f, 0.0f}};
  ch::Quantize(x, 12, 1.0f);
  EXPECT_NEAR(x[0].real(), 1.0f, 1e-6f);   // clamped
  EXPECT_NEAR(x[0].imag(), -1.0f, 1e-6f);  // clamped
  EXPECT_NEAR(x[1].real(), 0.1f, 1.0f / 2047.0f);
}

TEST(Channel, QuantizeCoarseLevels) {
  dsp::SampleVec x = {{0.3f, 0.0f}};
  ch::Quantize(x, 2, 1.0f);  // levels: -1, 0, 1 per rail
  EXPECT_NEAR(x[0].real(), 0.0f, 1e-6f);
  EXPECT_THROW(ch::Quantize(x, 0, 1.0f), std::invalid_argument);
  EXPECT_THROW(ch::Quantize(x, 12, -1.0f), std::invalid_argument);
}

}  // namespace
