// FFT correctness: impulse, sinusoid bin placement, round trip, Parseval,
// linearity, and a parameterized sweep over sizes.

#include <cmath>
#include <gtest/gtest.h>

#include "rfdump/dsp/fft.hpp"
#include "rfdump/util/rng.hpp"

namespace dsp = rfdump::dsp;

namespace {

dsp::SampleVec Tone(std::size_t n, double cycles, float amplitude = 1.0f) {
  dsp::SampleVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * std::numbers::pi * cycles *
                      static_cast<double>(i) / static_cast<double>(n);
    v[i] = dsp::cfloat(static_cast<float>(amplitude * std::cos(ph)),
                       static_cast<float>(amplitude * std::sin(ph)));
  }
  return v;
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(dsp::FftPlan(0), std::invalid_argument);
  EXPECT_THROW(dsp::FftPlan(1), std::invalid_argument);
  EXPECT_THROW(dsp::FftPlan(3), std::invalid_argument);
  EXPECT_THROW(dsp::FftPlan(100), std::invalid_argument);
  EXPECT_NO_THROW(dsp::FftPlan(64));
}

TEST(Fft, ImpulseIsFlat) {
  dsp::FftPlan plan(64);
  dsp::SampleVec x(64, {0.0f, 0.0f});
  x[0] = {1.0f, 0.0f};
  plan.Forward(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5f);
  }
}

TEST(Fft, DcGoesToBinZero) {
  dsp::FftPlan plan(128);
  dsp::SampleVec x(128, {2.0f, 0.0f});
  plan.Forward(x);
  EXPECT_NEAR(x[0].real(), 256.0f, 1e-3f);
  for (std::size_t k = 1; k < 128; ++k) {
    EXPECT_NEAR(std::abs(x[k]), 0.0f, 1e-3f) << "bin " << k;
  }
}

TEST(Fft, ComplexToneLandsInCorrectBin) {
  constexpr std::size_t kN = 256;
  dsp::FftPlan plan(kN);
  auto x = Tone(kN, 17.0);
  plan.Forward(x);
  for (std::size_t k = 0; k < kN; ++k) {
    if (k == 17) {
      EXPECT_NEAR(std::abs(x[k]), static_cast<float>(kN), 0.01f * kN);
    } else {
      EXPECT_LT(std::abs(x[k]), 0.01f * kN) << "bin " << k;
    }
  }
}

TEST(Fft, NegativeFrequencyLandsInUpperHalf) {
  constexpr std::size_t kN = 128;
  dsp::FftPlan plan(kN);
  auto x = Tone(kN, -5.0);
  plan.Forward(x);
  // -5 cycles maps to bin N-5.
  EXPECT_GT(std::abs(x[kN - 5]), 0.9f * kN);
  EXPECT_LT(std::abs(x[5]), 0.01f * kN);
}

TEST(Fft, PowerSpectrumMatchesForward) {
  constexpr std::size_t kN = 64;
  dsp::FftPlan plan(kN);
  auto x = Tone(kN, 3.0, 0.5f);
  const auto copy = plan.ForwardCopy(x);
  const auto ps = plan.PowerSpectrum(x);
  ASSERT_EQ(ps.size(), kN);
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(ps[k], std::norm(copy[k]), 1e-2f) << "bin " << k;
  }
}

TEST(Fft, ShortInputIsZeroPadded) {
  dsp::FftPlan plan(64);
  dsp::SampleVec x(10, {1.0f, 0.0f});
  const auto spec = plan.ForwardCopy(x);
  // DC bin = sum of inputs = 10.
  EXPECT_NEAR(spec[0].real(), 10.0f, 1e-4f);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  dsp::FftPlan plan(n);
  rfdump::util::Xoshiro256 rng(n * 1234567u);
  dsp::SampleVec x(n);
  for (auto& v : x) {
    v = dsp::cfloat(static_cast<float>(rng.Gaussian()),
                    static_cast<float>(rng.Gaussian()));
  }
  auto y = x;
  plan.Forward(y);
  plan.Inverse(y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-3f) << "i=" << i;
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-3f) << "i=" << i;
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  dsp::FftPlan plan(n);
  rfdump::util::Xoshiro256 rng(n * 777u);
  dsp::SampleVec x(n);
  for (auto& v : x) {
    v = dsp::cfloat(static_cast<float>(rng.Gaussian()),
                    static_cast<float>(rng.Gaussian()));
  }
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  const auto spec = plan.ForwardCopy(x);
  double freq_energy = 0.0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  freq_energy /= static_cast<double>(n);
  EXPECT_NEAR(freq_energy / time_energy, 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024, 4096));

TEST(Fft, LinearityOfTransform) {
  constexpr std::size_t kN = 128;
  dsp::FftPlan plan(kN);
  auto a = Tone(kN, 4.0);
  auto b = Tone(kN, 9.0, 0.3f);
  dsp::SampleVec sum(kN);
  for (std::size_t i = 0; i < kN; ++i) sum[i] = a[i] + b[i];
  const auto fa = plan.ForwardCopy(a);
  const auto fb = plan.ForwardCopy(b);
  const auto fsum = plan.ForwardCopy(sum);
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(std::abs(fsum[k] - fa[k] - fb[k]), 0.0f, 2e-2f) << "k=" << k;
  }
}

TEST(Fft, NextPowerOfTwo) {
  EXPECT_EQ(dsp::NextPowerOfTwo(0), 1u);
  EXPECT_EQ(dsp::NextPowerOfTwo(1), 1u);
  EXPECT_EQ(dsp::NextPowerOfTwo(2), 2u);
  EXPECT_EQ(dsp::NextPowerOfTwo(200), 256u);
  EXPECT_EQ(dsp::NextPowerOfTwo(256), 256u);
  EXPECT_EQ(dsp::NextPowerOfTwo(257), 512u);
}

}  // namespace
