// Fault-tolerance tests for the streaming path: an impaired front end (USB
// overrun drops, ADC saturation, NaN bursts, duplicate buffers) must yield a
// monitor that reports every gap, decodes what it honestly can, never emits
// a frame spanning missing samples, and sheds load gracefully under
// overload.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "rfdump/core/streaming.hpp"
#include "rfdump/emu/frontend.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace emu = rfdump::emu;

namespace {

struct Scenario {
  dsp::SampleVec samples;
  std::vector<emu::TruthRecord> wifi_truth;
};

Scenario MakeScenario(std::size_t pings, std::uint64_t seed) {
  emu::Ether ether(emu::Ether::Config{}, seed);
  rfdump::traffic::WifiPingConfig cfg;
  cfg.count = pings;
  cfg.interval_us = 25000.0;
  cfg.snr_db = 25.0;
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, cfg, 8000);
  Scenario s;
  s.samples = ether.Render(session.end_sample + 8000);
  s.wifi_truth = ether.VisibleTruth(core::Protocol::kWifi80211b);
  return s;
}

core::StreamingMonitor::Config SmallBlocks() {
  core::StreamingMonitor::Config cfg;
  cfg.block_samples = 400'000;
  cfg.overlap_samples = 160'000;
  return cfg;
}

/// Feeds every front-end delivery into the monitor and flushes.
void Drive(emu::FrontEnd& fe, core::StreamingMonitor& monitor) {
  while (!fe.Done()) {
    const auto seg = fe.NextSegment();
    if (!seg.samples.empty()) {
      monitor.PushSegment(seg.start_sample, seg.samples);
    }
  }
  monitor.Flush();
}

bool Intersects(std::int64_t a0, std::int64_t a1, std::int64_t b0,
                std::int64_t b1) {
  return a0 < b1 && b0 < a1;
}

/// Sums a per-protocol labeled counter family over every protocol.
std::uint64_t SumProtocolFamily(const std::string& family) {
  static constexpr core::Protocol kAll[] = {
      core::Protocol::kUnknown, core::Protocol::kWifi80211b,
      core::Protocol::kBluetooth, core::Protocol::kZigbee,
      core::Protocol::kMicrowave};
  std::uint64_t sum = 0;
  for (const auto p : kAll) {
    sum += rfdump::obs::Registry::Default().CounterValue(
        family + "{protocol=\"" + core::ProtocolName(p) + "\"}");
  }
  return sum;
}

TEST(StreamingFault, GapsReportedFramesHonest) {
  const auto scenario = MakeScenario(/*pings=*/12, /*seed=*/21);
  const auto n = static_cast<std::int64_t>(scenario.samples.size());

  emu::FrontEnd::Config fcfg;
  fcfg.drops_per_second = 12.0;        // a few overruns across the capture
  fcfg.drop_min_samples = 4'000;
  fcfg.drop_max_samples = 30'000;
  fcfg.nonfinite_per_second = 20.0;    // frequent short corruption bursts
  fcfg.clip_amplitude = 20.0f;         // light ADC saturation of the signal
  fcfg.duplicates_per_second = 4.0;
  emu::FrontEnd fe(scenario.samples, fcfg, /*seed=*/17);

  auto mcfg = SmallBlocks();
  mcfg.pipeline.saturation_amplitude = fcfg.clip_amplitude;
  core::StreamingMonitor monitor(mcfg);
  std::vector<rfdump::phy80211::DecodedFrame> frames;
  monitor.on_wifi_frame =
      [&](const rfdump::phy80211::DecodedFrame& f) { frames.push_back(f); };
  Drive(fe, monitor);

  // 1. Every injected overrun the host could possibly observe (i.e. followed
  //    by at least one more delivery) is reported, position- and size-exact.
  const auto drops = fe.FaultsOf(emu::FaultKind::kDrop);
  std::vector<emu::FaultRecord> observable;
  for (const auto& d : drops) {
    if (d.end_sample < n) observable.push_back(d);
  }
  ASSERT_FALSE(observable.empty());
  ASSERT_EQ(monitor.gaps().size(), observable.size());
  for (std::size_t i = 0; i < observable.size(); ++i) {
    EXPECT_EQ(monitor.gaps()[i].at, observable[i].start_sample);
    EXPECT_EQ(monitor.gaps()[i].missing, observable[i].length());
  }

  // 2. The HealthReport stream accounts for every gap and for the sanitized
  //    (non-finite) input.
  std::uint32_t gap_count = 0;
  std::int64_t gap_samples = 0;
  std::uint64_t sanitized = 0;
  std::int64_t overlap = 0;
  bool saw_saturation = false;
  for (const auto& h : monitor.health()) {
    gap_count += h.gap_count;
    gap_samples += h.gap_samples;
    sanitized += h.sanitized_samples;
    overlap += h.overlap_samples;
    if (h.saturation_fraction > 0.0) saw_saturation = true;
    EXPECT_EQ(h.nonfinite_samples, 0u);  // sanitization runs before pipeline
  }
  std::int64_t injected_gap_samples = 0;
  for (const auto& d : observable) injected_gap_samples += d.length();
  EXPECT_EQ(gap_count, observable.size());
  EXPECT_EQ(gap_samples, injected_gap_samples);
  EXPECT_GT(sanitized, 0u);
  EXPECT_GT(overlap, 0);  // duplicate deliveries were discarded, not decoded
  EXPECT_TRUE(saw_saturation);

  // 3. No decoded frame spans missing samples.
  for (const auto& f : frames) {
    for (const auto& g : monitor.gaps()) {
      EXPECT_FALSE(f.start_sample < g.at && f.end_sample > g.at)
          << "frame [" << f.start_sample << "," << f.end_sample
          << ") spans the gap at " << g.at;
    }
  }

  // 4. >= 90% of the frames in ping exchanges untouched by point faults
  //    decode. (Frames pair through SIFS/DIFS timing, so corruption anywhere
  //    inside an exchange can cost the whole exchange; exchanges are
  //    independent of each other.)
  std::vector<emu::FaultRecord> point_faults = drops;
  for (const auto& b : fe.FaultsOf(emu::FaultKind::kNonFinite)) {
    point_faults.push_back(b);
  }
  std::map<std::uint64_t, std::vector<const emu::TruthRecord*>> exchanges;
  for (const auto& t : scenario.wifi_truth) {
    exchanges[t.packet_id].push_back(&t);
  }
  std::size_t untouched_frames = 0, untouched_decoded = 0;
  const std::int64_t margin = 2'000;  // 250 us guard around each exchange
  for (const auto& [seq, recs] : exchanges) {
    std::int64_t lo = recs.front()->start_sample, hi = recs.front()->end_sample;
    for (const auto* r : recs) {
      lo = std::min(lo, r->start_sample);
      hi = std::max(hi, r->end_sample);
    }
    bool touched = false;
    for (const auto& fr : point_faults) {
      if (Intersects(lo - margin, hi + margin, fr.start_sample,
                     fr.end_sample)) {
        touched = true;
      }
    }
    if (touched) continue;
    for (const auto* r : recs) {
      ++untouched_frames;
      for (const auto& f : frames) {
        if (std::llabs(f.start_sample - r->start_sample) <= 32) {
          ++untouched_decoded;
          break;
        }
      }
    }
  }
  ASSERT_GT(untouched_frames, 0u);
  EXPECT_GE(static_cast<double>(untouched_decoded),
            0.9 * static_cast<double>(untouched_frames))
      << untouched_decoded << " of " << untouched_frames;
}

TEST(StreamingFault, FrameStraddlingGapIsAGapNotAFrame) {
  const auto scenario = MakeScenario(/*pings=*/1, /*seed=*/5);
  // Cut the stream in the middle of the first DATA frame.
  const auto& data = scenario.wifi_truth.front();
  const std::int64_t cut =
      data.start_sample + (data.end_sample - data.start_sample) / 2;
  const std::int64_t resume = cut + 5'000;  // 5k samples lost

  core::StreamingMonitor monitor(SmallBlocks());
  std::vector<rfdump::phy80211::DecodedFrame> frames;
  monitor.on_wifi_frame =
      [&](const rfdump::phy80211::DecodedFrame& f) { frames.push_back(f); };
  const auto all = dsp::const_sample_span(scenario.samples);
  monitor.PushSegment(0, all.first(static_cast<std::size_t>(cut)));
  monitor.PushSegment(resume, all.subspan(static_cast<std::size_t>(resume)));
  monitor.Flush();

  // The gap is reported...
  ASSERT_EQ(monitor.gaps().size(), 1u);
  EXPECT_EQ(monitor.gaps()[0].at, cut);
  EXPECT_EQ(monitor.gaps()[0].missing, resume - cut);
  // ...and the severed frame is not decoded (nothing overlaps the gap).
  for (const auto& f : frames) {
    EXPECT_FALSE(Intersects(f.start_sample, f.end_sample, cut, resume))
        << "decoded a frame across the gap";
    EXPECT_FALSE(std::llabs(f.start_sample - data.start_sample) <= 32)
        << "decoded the severed frame";
  }
}

TEST(StreamingFault, SheddingEngagesAndRecoversWithHysteresis) {
  const auto scenario = MakeScenario(/*pings=*/10, /*seed=*/33);

  core::StreamingMonitor::Config mcfg;
  mcfg.block_samples = 100'000;  // many small blocks => many decisions
  mcfg.overlap_samples = 40'000;
  mcfg.cpu_budget = 1e-9;        // impossible budget: every block overruns
  mcfg.shed_resume_blocks = 2;
  core::StreamingMonitor monitor(mcfg);
  std::vector<core::Detection> detections;
  monitor.on_detection =
      [&](const core::Detection& d) { detections.push_back(d); };

  const auto all = dsp::const_sample_span(scenario.samples);
  const std::size_t half = scenario.samples.size() / 2;
  std::size_t pos = 0;
  // First half under an impossible budget: the controller must ratchet to
  // detection-only.
  while (pos < half) {
    const std::size_t nseg = std::min<std::size_t>(50'000, half - pos);
    monitor.Push(all.subspan(pos, nseg));
    pos += nseg;
  }
  EXPECT_EQ(monitor.shed_stage(), core::kShedStageMax);
  const std::size_t blocks_at_engage = monitor.health().size();

  // Second half under a generous budget: stages must be restored, one at a
  // time, each only after shed_resume_blocks consecutive calm blocks.
  monitor.set_cpu_budget(1e9);
  while (pos < scenario.samples.size()) {
    const std::size_t nseg =
        std::min<std::size_t>(50'000, scenario.samples.size() - pos);
    monitor.Push(all.subspan(pos, nseg));
    pos += nseg;
  }
  monitor.Flush();
  EXPECT_EQ(monitor.shed_stage(), 0);

  const auto& health = monitor.health();
  // Engagement ratchets one stage per overloaded block: 0,1,2,3,3,...
  ASSERT_GE(blocks_at_engage, 4u);
  EXPECT_EQ(health[0].shed_stage, 0);
  EXPECT_EQ(health[1].shed_stage, 1);
  EXPECT_EQ(health[2].shed_stage, 2);
  EXPECT_EQ(health[3].shed_stage, 3);
  // Recovery honors hysteresis: each downward transition is preceded by at
  // least shed_resume_blocks blocks at the higher stage.
  int last_stage = core::kShedStageMax;
  int run = 0;
  for (std::size_t i = blocks_at_engage; i < health.size(); ++i) {
    const int stage = health[i].shed_stage;
    if (stage < last_stage) {
      EXPECT_EQ(stage, last_stage - 1) << "skipped a stage at block " << i;
      EXPECT_GE(run, mcfg.shed_resume_blocks)
          << "recovered without hysteresis at block " << i;
      run = 1;
      last_stage = stage;
    } else {
      ++run;
    }
  }
  // Detection-only blocks still produce detections (the paper's cheap mode):
  // the band was active the whole time, so stage-3 blocks saw traffic.
  bool stage3_block_with_activity = false;
  for (const auto& h : health) {
    if (h.shed_stage != core::kShedStageMax) continue;
    for (const auto& d : detections) {
      if (d.start_sample >= h.block_start &&
          d.start_sample <
              h.block_start + static_cast<std::int64_t>(h.block_samples)) {
        stage3_block_with_activity = true;
      }
    }
  }
  EXPECT_TRUE(stage3_block_with_activity);
}

TEST(StreamingFault, DisablingBudgetRestoresFullPipelineImmediately) {
  // Regression: set_cpu_budget(0) used to leave shed_stage_ stuck at its
  // last value until the next processed block happened to run the shedding
  // controller — so an operator turning shedding *off* kept a degraded
  // pipeline. Disabling the budget must restore stage 0 on the spot.
  const auto scenario = MakeScenario(/*pings=*/6, /*seed=*/61);
  core::StreamingMonitor::Config mcfg;
  mcfg.block_samples = 100'000;
  mcfg.overlap_samples = 40'000;
  mcfg.cpu_budget = 1e-9;  // impossible: ratchets straight to detect-only
  core::StreamingMonitor monitor(mcfg);

  const auto all = dsp::const_sample_span(scenario.samples);
  const std::size_t half = scenario.samples.size() / 2;
  monitor.Push(all.first(half));
  ASSERT_EQ(monitor.shed_stage(), core::kShedStageMax);
  const std::size_t blocks_before = monitor.health().size();

  monitor.set_cpu_budget(0.0);
  // Restored immediately — not after the next block's load sample.
  EXPECT_EQ(monitor.shed_stage(), 0);

  monitor.Push(all.subspan(half));
  monitor.Flush();
  // Every block processed after the operator disabled shedding ran the full
  // pipeline.
  ASSERT_GT(monitor.health().size(), blocks_before);
  for (std::size_t i = blocks_before; i < monitor.health().size(); ++i) {
    EXPECT_EQ(monitor.health()[i].shed_stage, 0);
  }
  EXPECT_EQ(monitor.shed_stage(), 0);
}

TEST(StreamingFault, DispatchCountersAgreeWithHealthAndFaultLog) {
  // The observability counters, the per-block HealthReports, the cumulative
  // HealthSummary and the front end's ground-truth fault log are four views
  // of the same impaired run; they must agree exactly.
  const auto scenario = MakeScenario(/*pings=*/10, /*seed=*/77);
  const auto n = static_cast<std::int64_t>(scenario.samples.size());

  emu::FrontEnd::Config fcfg;
  fcfg.drops_per_second = 10.0;
  fcfg.drop_min_samples = 4'000;
  fcfg.drop_max_samples = 20'000;
  fcfg.nonfinite_per_second = 15.0;
  fcfg.duplicates_per_second = 3.0;
  emu::FrontEnd fe(scenario.samples, fcfg, /*seed=*/23);

  namespace obs = rfdump::obs;
  auto& reg = obs::Registry::Default();
  const std::uint64_t gaps0 = reg.CounterValue("rfdump_streaming_gaps_total");
  const std::uint64_t gap_samples0 =
      reg.CounterValue("rfdump_streaming_gap_samples_total");
  const std::uint64_t sanitized0 =
      reg.CounterValue("rfdump_streaming_sanitized_samples_total");
  const std::uint64_t detections0 =
      reg.CounterValue("rfdump_detect_detections_total");
  const std::uint64_t tagged0 =
      SumProtocolFamily("rfdump_dispatch_tagged_total");
  const std::uint64_t rejected0 =
      SumProtocolFamily("rfdump_dispatch_rejected_total");
  const std::uint64_t forwarded0 =
      SumProtocolFamily("rfdump_dispatch_forwarded_total");

  core::StreamingMonitor monitor(SmallBlocks());
  Drive(fe, monitor);

  // HealthReport stream vs cumulative summary (nothing evicted here: the run
  // is far shorter than the default history limit).
  const core::HealthSummary& sum = monitor.summary();
  EXPECT_EQ(sum.blocks, monitor.health().size());
  std::uint64_t h_tagged = 0, h_rejected = 0, h_forwarded = 0, h_sanitized = 0;
  std::uint32_t h_gaps = 0;
  std::int64_t h_gap_samples = 0;
  for (const auto& h : monitor.health()) {
    h_tagged += h.tagged_detections;
    h_rejected += h.rejected_detections;
    h_forwarded += h.forwarded_intervals;
    h_sanitized += h.sanitized_samples;
    h_gaps += h.gap_count;
    h_gap_samples += h.gap_samples;
  }
  EXPECT_EQ(sum.tagged_detections, h_tagged);
  EXPECT_EQ(sum.rejected_detections, h_rejected);
  EXPECT_EQ(sum.forwarded_intervals, h_forwarded);
  EXPECT_EQ(sum.sanitized_samples, h_sanitized);
  EXPECT_EQ(sum.gap_count, h_gaps);
  EXPECT_EQ(sum.gap_samples, h_gap_samples);
  EXPECT_GT(sum.tagged_detections, 0u);
  EXPECT_GT(sum.forwarded_intervals, 0u);

  // Summary vs the front end's ground-truth fault log.
  std::vector<emu::FaultRecord> observable;
  for (const auto& d : fe.FaultsOf(emu::FaultKind::kDrop)) {
    if (d.end_sample < n) observable.push_back(d);
  }
  std::int64_t injected_gap_samples = 0;
  for (const auto& d : observable) injected_gap_samples += d.length();
  EXPECT_EQ(sum.gap_count, observable.size());
  EXPECT_EQ(sum.gap_samples, injected_gap_samples);

#if RFDUMP_OBS_ENABLED
  // Registry deltas vs the summary: the counters tick in the same code paths
  // that fill the reports, so any disagreement means double- or un-counted
  // events.
  EXPECT_EQ(reg.CounterValue("rfdump_streaming_gaps_total") - gaps0,
            sum.gap_count);
  EXPECT_EQ(reg.CounterValue("rfdump_streaming_gap_samples_total") -
                gap_samples0,
            static_cast<std::uint64_t>(sum.gap_samples));
  EXPECT_EQ(reg.CounterValue("rfdump_streaming_sanitized_samples_total") -
                sanitized0,
            sum.sanitized_samples);
  const std::uint64_t d_tagged =
      SumProtocolFamily("rfdump_dispatch_tagged_total") - tagged0;
  const std::uint64_t d_rejected =
      SumProtocolFamily("rfdump_dispatch_rejected_total") - rejected0;
  const std::uint64_t d_forwarded =
      SumProtocolFamily("rfdump_dispatch_forwarded_total") - forwarded0;
  EXPECT_EQ(d_tagged, sum.tagged_detections);
  EXPECT_EQ(d_rejected, sum.rejected_detections);
  EXPECT_EQ(d_forwarded, sum.forwarded_intervals);
  // Every detection is either tagged or rejected at dispatch.
  EXPECT_EQ(d_tagged + d_rejected,
            reg.CounterValue("rfdump_detect_detections_total") - detections0);
#else
  (void)gaps0; (void)gap_samples0; (void)sanitized0; (void)detections0;
  (void)tagged0; (void)rejected0; (void)forwarded0;
#endif
}

TEST(StreamingFault, HealthHistoryRingEvictsButSummaryPersists) {
  // Regression for the unbounded health() growth: a long-running monitor
  // keeps only the configured window of per-block reports, while summary()
  // still accounts for every block ever processed.
  const auto scenario = MakeScenario(/*pings=*/6, /*seed=*/9);
  core::StreamingMonitor::Config mcfg;
  mcfg.block_samples = 100'000;
  mcfg.overlap_samples = 40'000;
  mcfg.health_history_limit = 4;
  core::StreamingMonitor monitor(mcfg);
  monitor.Push(scenario.samples);
  monitor.Flush();

  EXPECT_EQ(monitor.health().size(), 4u);
  EXPECT_GT(monitor.summary().blocks, 4u);
  EXPECT_GT(monitor.summary().samples, 0u);
  EXPECT_GT(monitor.summary().max_block_load, 0.0);
  EXPECT_GT(monitor.summary().MeanLoad(), 0.0);
  // The retained window is the most recent blocks: its first entry starts
  // later than the stream did.
  EXPECT_GT(monitor.health().front().block_start, 0);
}

TEST(StreamingFault, BudgetKeepsLoadNearBudgetOnBusyBand) {
  // Qualitative load check: with shedding enabled at a realistic budget, the
  // per-block load after the controller settles must not sit above budget
  // while the full pipeline would have (stage > 0 implies the controller is
  // actually trading fidelity for CPU).
  const auto scenario = MakeScenario(/*pings=*/8, /*seed=*/44);
  core::StreamingMonitor::Config mcfg;
  mcfg.block_samples = 200'000;
  mcfg.overlap_samples = 80'000;
  mcfg.cpu_budget = 0.05;  // deliberately tight for this hardware
  core::StreamingMonitor monitor(mcfg);
  monitor.Push(scenario.samples);
  monitor.Flush();
  ASSERT_FALSE(monitor.health().empty());
  // The controller reacted: either the pipeline fit the budget outright or
  // shedding engaged at some point.
  bool engaged = false;
  for (const auto& h : monitor.health()) {
    if (h.shed_stage > 0) engaged = true;
  }
  bool fit = true;
  for (const auto& h : monitor.health()) {
    if (h.block_load > mcfg.cpu_budget) fit = false;
  }
  EXPECT_TRUE(engaged || fit);
}

}  // namespace
