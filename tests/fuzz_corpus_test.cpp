// Deterministic fuzz-corpus regression suite (DESIGN.md §11): every
// checked-in corpus input (tests/corpus/<target>/) runs through
// testing::RunFuzzInput under a WorkBudget and a wall-clock hang check, plus
// one seeded mutation round per input. Any crash or hang fails the suite and
// writes a repro file. The ci sanitize job runs this under ASan+UBSan.

#include <gtest/gtest.h>

#include <filesystem>

#include "rfdump/testing/fuzz.hpp"

namespace rft = rfdump::testing;
namespace fs = std::filesystem;

namespace {

#ifndef RFDUMP_SOURCE_DIR
#error "tests/CMakeLists.txt must define RFDUMP_SOURCE_DIR"
#endif

std::string CorpusDir(rft::FuzzTarget target) {
  return std::string(RFDUMP_SOURCE_DIR) + "/tests/corpus/" +
         rft::FuzzCorpusDirName(target);
}

void RunTarget(rft::FuzzTarget target) {
  rft::CorpusRunner::Config cfg;
  cfg.repro_dir =
      (fs::path(::testing::TempDir()) / "rfdump_fuzz_repro").string();
  cfg.mutation_rounds = 1;
  cfg.seed = 1;
  rft::CorpusRunner runner(cfg);
  const auto result = runner.RunDirectory(target, CorpusDir(target));

  // >= 100 checked-in inputs per decoder, plus the mutation round.
  EXPECT_GE(result.inputs_run, 200u) << "corpus missing or truncated at "
                                     << CorpusDir(target);
  EXPECT_TRUE(result.ok()) << result.Summary(target);
  // The corpus is not all chaff: the structurally valid seeds decode.
  EXPECT_GT(result.decodes, 0u) << result.Summary(target);
}

TEST(FuzzCorpus, Phy80211Plcp) { RunTarget(rft::FuzzTarget::kPhy80211Plcp); }

TEST(FuzzCorpus, PhyBtPacket) { RunTarget(rft::FuzzTarget::kPhyBtPacket); }

TEST(FuzzCorpus, PhyZigbee) { RunTarget(rft::FuzzTarget::kPhyZigbee); }

TEST(FuzzCorpus, NetFrame) { RunTarget(rft::FuzzTarget::kNetFrame); }

TEST(FuzzCorpus, RegistryTargetsReplay) {
  // Registry-enumerated targets beyond the four legacy enum values above
  // (today: the BLE advertising bundle; tomorrow: any new bundle with fuzz
  // hooks). Covered here with zero per-protocol edits — registering the
  // bundle is enough to put its corpus under this suite.
  const char* const legacy[] = {"phy80211_plcp", "phybt_packet", "phyzigbee",
                                "net_frame"};
  std::size_t registry_only = 0;
  for (const auto& target : rft::EnumerateFuzzTargets()) {
    bool is_legacy = false;
    for (const char* dir : legacy) is_legacy |= target.corpus_dir == dir;
    if (is_legacy) continue;  // already replayed by the pinned tests above
    ++registry_only;

    rft::CorpusRunner::Config cfg;
    cfg.repro_dir =
        (fs::path(::testing::TempDir()) / "rfdump_fuzz_repro").string();
    cfg.mutation_rounds = 1;
    cfg.seed = 1;
    rft::CorpusRunner runner(cfg);
    const std::string dir = std::string(RFDUMP_SOURCE_DIR) +
                            "/tests/corpus/" + target.corpus_dir;
    const auto result = runner.RunDirectory(target, dir);
    EXPECT_GE(result.inputs_run, 200u)
        << "corpus missing or truncated at " << dir;
    EXPECT_TRUE(result.ok()) << result.Summary(target.name);
    EXPECT_GT(result.decodes, 0u) << result.Summary(target.name);
  }
  // The BLE advertising bundle must be enumerated.
  EXPECT_GE(registry_only, 1u);
}

TEST(FuzzCorpus, MutatorIsDeterministicAndTotal) {
  // Same RNG state => same mutant; mutation never produces an empty input
  // (RunFuzzInput treats empty as a no-op and the corpus would rot).
  rfdump::util::Xoshiro256 a(123), b(123);
  std::vector<std::uint8_t> x{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::uint8_t> y = x;
  for (int i = 0; i < 200; ++i) {
    rft::MutateInput(x, a);
    rft::MutateInput(y, b);
    ASSERT_EQ(x, y) << "mutation diverged at round " << i;
    ASSERT_FALSE(x.empty());
  }
}

TEST(FuzzCorpus, RunnerRecordsCrashFindings) {
  // The runner must convert a decoder exception into a finding (with a repro
  // file) rather than letting it escape. No in-tree decoder throws on
  // arbitrary bytes — that is the whole point of the suite — so use the
  // runner's own RunOne with a poisoned input by feeding a corpus dir that
  // doesn't exist (no findings, zero inputs) and then checking the Finding
  // plumbing via Summary on a synthetic result.
  rft::CorpusRunner::Config cfg;
  rft::CorpusRunner runner(cfg);
  const auto empty = runner.RunDirectory(rft::FuzzTarget::kPhyZigbee,
                                         "/nonexistent/corpus/dir");
  EXPECT_EQ(empty.inputs_run, 0u);
  EXPECT_TRUE(empty.ok());

  rft::CorpusRunner::Result synthetic;
  synthetic.findings.push_back({rft::FuzzTarget::kPhyZigbee, "crash",
                                "input-7", "std::bad_alloc", ""});
  EXPECT_FALSE(synthetic.ok());
  const auto summary = synthetic.Summary(rft::FuzzTarget::kPhyZigbee);
  EXPECT_NE(summary.find("crash"), std::string::npos);
  EXPECT_NE(summary.find("input-7"), std::string::npos);
}

}  // namespace
