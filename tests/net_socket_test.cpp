// Socket-level edge cases for the TCP transport (DESIGN.md §14): the
// boundary conditions a byte-stream transport must survive without help
// from the reliability layer above it — EOF landing exactly on a frame
// boundary, every write cut mid-header, every read trimmed to a few bytes,
// and a reconnect storm racing a monitor thread's queued publishes (the
// TSan job runs this suite; the session mutex is the contract under test).
// Plus the FaultySyscalls shim's own determinism contract: identical
// (config, seed, call sequence) must yield identical fault logs, or no
// chaos run is reproducible.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "rfdump/net/endpoint.hpp"
#include "rfdump/net/faulty_syscalls.hpp"
#include "rfdump/net/tcp.hpp"
#include "rfdump/net/wire.hpp"

namespace core = rfdump::core;
namespace net = rfdump::net;

namespace {

std::vector<std::uint8_t> TestFrame(std::uint16_t sensor_id,
                                    std::uint32_t seq, std::size_t bytes) {
  net::FrameHeader h;
  h.type = net::FrameType::kEventBatch;
  h.sensor_id = sensor_id;
  h.seq = seq;
  std::vector<std::uint8_t> payload(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    payload[i] = static_cast<std::uint8_t>(seq + i);
  }
  return net::EncodeFrame(h, payload);
}

/// Loopback client/server transport pair, pumped in lockstep ticks.
struct LoopbackPair {
  explicit LoopbackPair(net::Syscalls& client_sys,
                        net::Syscalls& server_sys,
                        net::TcpTransport::Config config = {})
      : listener(server_sys) {
    if (!listener.Listen("127.0.0.1", 0)) return;
    client = net::TcpTransport::Dial("127.0.0.1", listener.port(), config,
                                     client_sys, 0);
  }

  /// One tick: poll client, accept if pending, poll server. Returns bytes
  /// the server received this tick.
  std::vector<std::uint8_t> Tick(net::TcpTransport::Config config = {}) {
    ++now;
    std::vector<std::uint8_t> rx;
    if (client) client->Poll(now, rx);  // client rx (acks) discarded here
    rx.clear();
    if (!server) server = listener.Accept(config, now);
    if (server) server->Poll(now, rx);
    return rx;
  }

  bool WaitConnected(int max_ticks = 50) {
    for (int i = 0; i < max_ticks; ++i) {
      Tick();
      if (client && server &&
          client->state() == net::Transport::State::kConnected) {
        return true;
      }
    }
    return false;
  }

  net::TcpListener listener;
  std::unique_ptr<net::TcpTransport> client;
  std::unique_ptr<net::TcpTransport> server;
  std::int64_t now = 0;
};

TEST(NetSocket, EofAtFrameBoundaryDeliversEverythingThenClosesClean) {
  auto& sys = net::Syscalls::Real();
  LoopbackPair pair(sys, sys);
  ASSERT_TRUE(pair.WaitConnected());

  constexpr int kFrames = 5;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(pair.client->Send(TestFrame(7, static_cast<std::uint32_t>(
                                                   i + 1), 64 + 16 * i)));
  }
  // Flush fully, then half-close: the server's stream ends exactly on a
  // frame boundary, so the final read returns 0 with nothing pending.
  net::FrameParser parser;
  int got = 0;
  {
    std::vector<std::uint8_t> none;
    pair.client->Poll(++pair.now, none);  // flush the queued frames
  }
  ASSERT_EQ(pair.client->send_buffered(), 0u);
  pair.client->Close();

  for (int t = 0; t < 50; ++t) {
    const auto rx = pair.Tick();
    parser.Feed(rx, [&](net::Frame&& f) {
      EXPECT_EQ(f.header.sensor_id, 7);
      ++got;
    });
    if (pair.server->state() == net::Transport::State::kClosed) break;
  }
  EXPECT_EQ(got, kFrames);
  EXPECT_EQ(parser.pending_bytes(), 0u);
  EXPECT_EQ(parser.stats().frames_ok, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(parser.stats().bad_magic_bytes, 0u);
  // Orderly EOF is a clean close, not a reset.
  EXPECT_EQ(pair.server->state(), net::Transport::State::kClosed);
  EXPECT_EQ(pair.server->stats().resets, 0u);
}

TEST(NetSocket, EveryWriteCutMidHeaderStillReassembles) {
  // short_write_max = 5 < the 16-byte header: every frame crosses at least
  // four write() calls and every header lands in pieces.
  net::FaultySyscalls::Config cfg;
  cfg.short_write_rate = 1.0;
  cfg.short_write_max = 5;
  net::FaultySyscalls client_sys(cfg, 42);
  LoopbackPair pair(client_sys, net::Syscalls::Real());
  ASSERT_TRUE(pair.WaitConnected());

  constexpr int kFrames = 20;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(pair.client->Send(TestFrame(3, static_cast<std::uint32_t>(
                                                   i + 1), 40 + i)));
  }
  net::FrameParser parser;
  std::uint64_t got = 0;
  for (int t = 0; t < 2000 && got < kFrames; ++t) {
    const auto rx = pair.Tick();
    parser.Feed(rx, [&](net::Frame&&) { ++got; });
  }
  EXPECT_EQ(got, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(parser.stats().bad_magic_bytes, 0u);
  EXPECT_EQ(parser.stats().bad_crc, 0u);
  EXPECT_GT(pair.client->stats().partial_writes, 0u);
  bool saw_short_write = false;
  for (const auto& f : client_sys.faults()) {
    saw_short_write |= f.kind == net::SyscallFaultKind::kShortWrite;
  }
  EXPECT_TRUE(saw_short_write);
}

TEST(NetSocket, EveryReadTrimmedToBytesStillReassembles) {
  net::FaultySyscalls::Config cfg;
  cfg.short_read_rate = 1.0;
  cfg.short_read_max = 3;  // at most 3 bytes per read(2)
  net::FaultySyscalls server_sys(cfg, 43);
  LoopbackPair pair(net::Syscalls::Real(), server_sys);
  ASSERT_TRUE(pair.WaitConnected());

  constexpr int kFrames = 8;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(pair.client->Send(TestFrame(9, static_cast<std::uint32_t>(
                                                   i + 1), 32)));
  }
  net::FrameParser parser;
  std::uint64_t got = 0;
  for (int t = 0; t < 5000 && got < kFrames; ++t) {
    const auto rx = pair.Tick();
    parser.Feed(rx, [&](net::Frame&&) { ++got; });
  }
  EXPECT_EQ(got, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(parser.stats().bad_magic_bytes, 0u);
  EXPECT_GT(pair.server->stats().partial_reads, 0u);
}

TEST(NetSocket, ReconnectRacesQueuedPublishes) {
  // A monitor thread publishes into the session while the pump thread
  // rides out injected resets and redials — the exact interleaving TSan
  // must prove race-free, and the ledger must still balance after a drain.
  net::FaultySyscalls::Config ccfg;
  ccfg.write_reset_rate = 0.02;
  net::FaultySyscalls client_sys(ccfg, 77);
  net::TcpListener listener(net::Syscalls::Real());
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0));
  net::AggregatorServer::Config scfg;
  scfg.aggregator.trust_floor = 0.0;
  net::AggregatorServer server(scfg);
  server.set_listener(&listener);

  net::SensorSession::Config cfg;
  cfg.sensor_id = 5;
  cfg.retransmit_ring = 32;
  cfg.ack_timeout_ticks = 8;
  cfg.backoff_max_ticks = 8;
  net::SensorSession session(cfg, 7);
  const std::uint16_t port = listener.port();
  net::SensorEndpoint endpoint(
      session, [&client_sys, port](std::int64_t tick) {
        net::TcpTransport::Config tcfg;
        tcfg.connect_timeout_ticks = 4;
        return net::TcpTransport::Dial("127.0.0.1", port, tcfg, client_sys,
                                       tick);
      });

  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> published{0};
  std::thread monitor([&] {
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      net::EventBatchMsg batch;
      net::EventRecord e;
      e.protocol = core::Protocol::kWifi80211b;
      e.start_sample = 1'000'000 + static_cast<std::int64_t>(i) * 10'000;
      e.end_sample = e.start_sample + 500;
      e.payload_digest = 0xA000000 + i;
      e.crc_ok = true;
      batch.block_start = e.start_sample;
      batch.events = {e};
      session.PublishEvents(batch);
      published.fetch_add(1, std::memory_order_relaxed);
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  std::int64_t now = 0;
  for (int t = 0; t < 400; ++t) {
    ++now;
    endpoint.Pump(now, now * 8000);
    server.Pump(now);
    // Pace the pump so it genuinely overlaps the monitor thread; an
    // unpaced loop finishes its 400 ticks before the thread first runs.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  stop.store(true, std::memory_order_relaxed);
  monitor.join();

  // Drain without further injection until the ledger settles.
  client_sys.set_passthrough(true);
  for (int t = 0; t < 3000; ++t) {
    ++now;
    endpoint.Pump(now, now * 8000);
    server.Pump(now);
    if (session.unacked() == 0 &&
        session.state() == net::SensorSession::State::kConnected) {
      break;
    }
  }
  EXPECT_EQ(session.unacked(), 0u);

  auto& agg = server.aggregator();
  ASSERT_TRUE(agg.Known(5));
  const auto& st = agg.status(5);
  std::uint64_t lost_frames = 0;
  for (const auto& r : st.lost_applied) lost_frames += r.last - r.first + 1;
  EXPECT_EQ(st.frames_delivered + lost_frames, st.cum_seq);
  EXPECT_GT(published.load(), 0u);
  // The reset injection actually fired and forced at least one redial.
  EXPECT_GT(endpoint.stats().transport_down + session.stats().reconnects, 0u);
}

// ---------------------------------------------------- shim determinism

/// Scripted base: no kernel, fixed results, so two shims over it see the
/// identical call sequence.
class StubSyscalls final : public net::Syscalls {
 public:
  int Socket() override { return next_fd_++; }
  int Connect(int, const sockaddr*, unsigned) override { return 0; }
  int Accept(int) override { return next_fd_++; }
  ssize_t Read(int, void* buf, std::size_t len) override {
    auto* p = static_cast<std::uint8_t*>(buf);
    for (std::size_t i = 0; i < len; ++i) p[i] = 0xAB;
    return static_cast<ssize_t>(len);
  }
  ssize_t Write(int, const void*, std::size_t len) override {
    return static_cast<ssize_t>(len);
  }
  int Close(int) override { return 0; }
  int PollOne(int, short, int) override { return 1; }
  int SockError(int) override { return 0; }

 private:
  int next_fd_ = 100;
};

TEST(NetSocket, FaultySyscallsIsDeterministicFromSeed) {
  net::FaultySyscalls::Config cfg;
  cfg.short_read_rate = 0.3;
  cfg.short_write_rate = 0.3;
  cfg.eintr_rate = 0.2;
  cfg.eagain_rate = 0.2;
  cfg.read_reset_rate = 0.05;
  cfg.write_reset_rate = 0.05;
  cfg.connect_refuse_rate = 0.3;
  cfg.accept_fail_rate = 0.3;

  const auto run = [&cfg](std::uint64_t seed) {
    StubSyscalls base;
    net::FaultySyscalls sys(cfg, seed, base);
    std::uint8_t buf[64];
    for (int i = 0; i < 200; ++i) {
      const int fd = sys.Socket();
      (void)sys.Connect(fd, nullptr, 0);
      (void)sys.Accept(1);
      (void)sys.Read(fd, buf, sizeof(buf));
      (void)sys.Write(fd, buf, sizeof(buf));
      (void)sys.Close(fd);
    }
    return sys.FaultLogJson();
  };

  const auto a = run(1234);
  const auto b = run(1234);
  const auto c = run(5678);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // a different seed draws a different schedule
  EXPECT_FALSE(a.empty());
}

}  // namespace
