// core::Executor edge cases (DESIGN.md §10): the contract corners the
// pipelines rely on but the mainline parallel tests never hit — empty
// batches, repeated Wait(), submission from inside a running task, and the
// exception-in-last-task ordering.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "rfdump/core/executor.hpp"

namespace core = rfdump::core;

namespace {

// Both the serial-inline and pooled implementations must honor every edge.
constexpr int kWidths[] = {1, 4};

TEST(ExecutorEdge, ZeroTaskBatchWaitReturnsImmediately) {
  for (const int width : kWidths) {
    core::Executor ex(width);
    core::Executor::Batch batch(&ex);
    EXPECT_NO_THROW(batch.Wait());
  }
}

TEST(ExecutorEdge, NullExecutorBatchIsInline) {
  core::Executor::Batch batch(nullptr);
  int ran = 0;
  batch.Run([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // inline batches execute at the Run() call
  EXPECT_NO_THROW(batch.Wait());
}

TEST(ExecutorEdge, WaitTwiceIsSafe) {
  for (const int width : kWidths) {
    core::Executor ex(width);
    core::Executor::Batch batch(&ex);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) batch.Run([&] { ++ran; });
    batch.Wait();
    EXPECT_EQ(ran.load(), 8);
    EXPECT_NO_THROW(batch.Wait());  // second Wait is a no-op, not a hang
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(ExecutorEdge, SecondWaitAfterErrorDoesNotRethrow) {
  // The first Wait() surfaces the stored exception; a destructor-driven or
  // defensive second Wait() must not throw again (it would terminate during
  // unwinding).
  for (const int width : kWidths) {
    core::Executor ex(width);
    core::Executor::Batch batch(&ex);
    batch.Run([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(batch.Wait(), std::runtime_error);
    EXPECT_NO_THROW(batch.Wait());
  }
}

TEST(ExecutorEdge, TaskSubmittedFromInsideATask) {
  // The pipelines only submit leaf units, but nothing in the contract
  // forbids a task enqueueing follow-on work into the same batch before it
  // returns; Wait() must cover the late submission too.
  for (const int width : kWidths) {
    core::Executor ex(width);
    core::Executor::Batch batch(&ex);
    std::atomic<int> ran{0};
    batch.Run([&] {
      ++ran;
      batch.Run([&] { ++ran; });
    });
    batch.Wait();
    EXPECT_EQ(ran.load(), 2);
  }
}

TEST(ExecutorEdge, ExceptionInLastTaskIsRethrownAfterAllTasksRan) {
  // A failing task never cancels its siblings: every earlier task completes,
  // and the error still surfaces even when it is the final submission.
  for (const int width : kWidths) {
    core::Executor ex(width);
    core::Executor::Batch batch(&ex);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) batch.Run([&] { ++ran; });
    batch.Run([] { throw std::runtime_error("last task failed"); });
    try {
      batch.Wait();
      FAIL() << "Wait() must rethrow the last task's exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "last task failed");
    }
    EXPECT_EQ(ran.load(), 16);
  }
}

TEST(ExecutorEdge, FirstOfSeveralExceptionsWins) {
  // Inline mode is strictly ordered, so "first" is deterministic there; in
  // pooled mode some task's exception (not none, not several) must surface.
  core::Executor ex(1);
  core::Executor::Batch batch(&ex);
  batch.Run([] { throw std::runtime_error("first"); });
  batch.Run([] { throw std::runtime_error("second"); });
  try {
    batch.Wait();
    FAIL() << "Wait() must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

}  // namespace
