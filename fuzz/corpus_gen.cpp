// Regenerates the deterministic seed corpus under tests/corpus/.
//
// Usage: corpus_gen OUT_ROOT [COUNT] [SEED]
//
// Writes COUNT (default 100) inputs per fuzz target into
// OUT_ROOT/<corpus_dir>/ for every target testing::EnumerateFuzzTargets()
// reports — each registered protocol bundle with fuzz hooks, plus net-frame.
// Same COUNT + SEED => bit-identical files, so the checked-in corpus is
// always reconstructible (README "Self-test & fuzzing").

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rfdump/testing/fuzz.hpp"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 4) {
    std::fprintf(stderr, "usage: %s OUT_ROOT [COUNT] [SEED]\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  const std::size_t count =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 100;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

  for (const auto& target : rfdump::testing::EnumerateFuzzTargets()) {
    const std::string dir = root + "/" + target.corpus_dir;
    const std::size_t n =
        rfdump::testing::WriteSeedCorpus(target, dir, count, seed);
    std::printf("%-14s %4zu inputs -> %s\n", target.name.c_str(), n,
                dir.c_str());
  }
  return 0;
}
