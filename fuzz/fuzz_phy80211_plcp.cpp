// libFuzzer entry point for the 802.11b PLCP parser + DSSS demodulator
// (clang only; see fuzz/CMakeLists.txt). The input mapping is shared with
// the in-tree corpus runner: testing::RunFuzzInput.

#include <cstddef>
#include <cstdint>

#include "rfdump/testing/fuzz.hpp"
#include "rfdump/util/work_budget.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Arm a cooperative budget so slow-but-terminating inputs don't trip
  // libFuzzer's timeout; true hangs (budget ignored) still will.
  rfdump::util::WorkBudget budget;
  budget.Arm({.max_samples = 64u << 20, .max_cpu_seconds = 2.0});
  (void)rfdump::testing::RunFuzzInput(
      rfdump::testing::FuzzTarget::kPhy80211Plcp, {data, size}, &budget);
  return 0;
}
