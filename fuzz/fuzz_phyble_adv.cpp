// libFuzzer entry point for the BLE advertising decoder (clang only; see
// fuzz/CMakeLists.txt). BLE has no legacy FuzzTarget enum value — the target
// comes straight from its registry bundle's fuzz hooks, shared with the
// in-tree corpus runner.

#include <cstddef>
#include <cstdint>

#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/testing/fuzz.hpp"
#include "rfdump/util/work_budget.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto* bundle = rfdump::core::ProtocolRegistry::Instance().Find(
      rfdump::core::Protocol::kBleAdv);
  if (bundle == nullptr || !bundle->fuzz_run) return 0;
  rfdump::util::WorkBudget budget;
  budget.Arm({.max_samples = 64u << 20, .max_cpu_seconds = 2.0});
  (void)bundle->fuzz_run({data, size}, &budget);
  return 0;
}
