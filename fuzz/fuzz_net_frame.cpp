// libFuzzer entry point for the net frame parser + message codecs (clang
// only; see fuzz/CMakeLists.txt). The input mapping is shared with the
// in-tree corpus runner: testing::RunFuzzInput. Covers FrameParser resync
// (with a chunked-feed differential) and every message Decode, kMetrics
// included.

#include <cstddef>
#include <cstdint>

#include "rfdump/testing/fuzz.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)rfdump::testing::RunFuzzInput(rfdump::testing::FuzzTarget::kNetFrame,
                                      {data, size});
  return 0;
}
