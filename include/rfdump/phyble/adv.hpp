#pragma once
// BLE advertising PHY: 1 Mbps GFSK on the three advertising channels.
//
// Link layer per Bluetooth Core Vol 6 Part B, scoped to legacy advertising
// PDUs: 8-bit preamble, the fixed 32-bit advertising access address
// 0x8E89BED6, a 2-byte PDU header (4-bit type + 6-bit length <= 37), the
// payload, and CRC-24 (poly 0x00065B, init 0x555555) — header, payload and
// CRC whitened with the x^7 + x^4 + 1 LFSR seeded from the channel index.
// The whitening LFSR is byte-for-byte the Bluetooth BR one, so this reuses
// phybt::WhiteningSequence; modulation reuses the phybt GFSK chain.
//
// Substitution notes (DESIGN.md): (1) the real advertising channels sit at
// 2402/2426/2480 MHz — three widely separated 2 MHz channels no single 8 MHz
// capture can see. They are folded into the monitored band at -3/0/+3 MHz,
// preserving the three-channel structure on one front-end, exactly as the
// Bluetooth hop set is folded to 8 visible channels. (2) BLE 1M specifies a
// GFSK modulation index of ~0.5; the shared phybt modulator's h = 0.32 is
// used instead so the discriminator chain needs no second parameter set —
// the sign-sliced symbols are identical either way.

#include <cstdint>
#include <optional>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/util/bits.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::phyble {

/// Fixed access address of all advertising-channel PDUs.
inline constexpr std::uint32_t kAdvAccessAddress = 0x8E89BED6u;
/// CRC-24 generator polynomial (x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1).
inline constexpr std::uint32_t kCrcPoly = 0x00065Bu;
/// CRC-24 preset for advertising PDUs.
inline constexpr std::uint32_t kCrcInit = 0x555555u;
/// Advertising channel indices (spec numbering).
inline constexpr int kAdvChannels[3] = {37, 38, 39};
inline constexpr std::size_t kPreambleBits = 8;
inline constexpr std::size_t kAccessBits = 32;
inline constexpr std::size_t kHeaderBytes = 2;
inline constexpr std::size_t kCrcBytes = 3;
/// Legacy advertising payload cap (6-bit length field, spec max 37).
inline constexpr std::size_t kMaxAdvPayloadBytes = 37;

/// Advertising PDU types we model (4-bit TYPE field).
enum class AdvPduType : std::uint8_t {
  kAdvInd = 0x0,
  kAdvNonconnInd = 0x2,
  kAdvScanInd = 0x6,
};

[[nodiscard]] const char* AdvPduTypeName(AdvPduType t);

/// Baseband offset of an advertising channel inside the monitored band
/// (folded: 37/38/39 -> -3/0/+3 MHz), or nullopt for a non-adv channel.
[[nodiscard]] std::optional<double> AdvChannelOffsetHz(int channel);

/// CRC-24 over PDU bytes (header + payload), bits processed LSB-first.
/// Returns the 24-bit remainder in transmission order (bit 0 sent first).
[[nodiscard]] std::uint32_t Crc24(std::span<const std::uint8_t> bytes);

/// Over-the-air bits of one advertising PDU on `channel`: preamble, access
/// address, then whitened header + payload + CRC-24. `payload` is clamped
/// contractually to kMaxAdvPayloadBytes (asserted via the length field).
[[nodiscard]] util::BitVec BuildAdvBits(int channel, AdvPduType type,
                                        std::span<const std::uint8_t> payload);

/// Air bits of a PDU carrying `payload_bytes`
/// (preamble + access address + 8 * (header + payload + CRC)).
[[nodiscard]] std::size_t AdvAirBits(std::size_t payload_bytes);

/// Airtime in microseconds (1 us per bit at 1 Mbps).
[[nodiscard]] double AdvAirtimeUs(std::size_t payload_bytes);

/// Parsed advertising PDU (demodulator output).
struct ParsedAdv {
  AdvPduType type = AdvPduType::kAdvInd;
  std::vector<std::uint8_t> payload;
  bool crc_ok = false;
};

/// Parses the dewhitened-PDU section that follows the access address.
/// `bits` are raw received bits (still whitened); `channel` seeds the
/// dewhitening. Returns nullopt when the header is implausible (length
/// beyond the legacy cap) or the stream is too short for the claimed length;
/// otherwise the PDU with its CRC verdict.
[[nodiscard]] std::optional<ParsedAdv> ParseAdvBits(
    std::span<const std::uint8_t> bits, int channel);

/// A modulated advertising burst ready for the ether.
struct AdvBurst {
  dsp::SampleVec samples;  // 8 Msps, mixed to the folded channel offset
  int channel = 37;
  std::size_t air_bits = 0;
};

/// Builds and modulates one advertising PDU on `channel`.
[[nodiscard]] AdvBurst ModulateAdv(int channel, AdvPduType type,
                                   std::span<const std::uint8_t> payload);

/// A demodulated advertising PDU.
struct DecodedAdv {
  int channel = 37;               // advertising channel (spec numbering)
  ParsedAdv pdu;
  std::int64_t start_sample = 0;  // preamble start in the scanned span
  std::int64_t end_sample = 0;
};

/// Advertising-channel scanner, mirroring the phybt demodulator's shape:
/// each channel is mixed to DC, channel-filtered, FM-discriminated, energy-
/// gated, preamble-screened, then matched against the fixed advertising
/// access address (exact 32-bit correlation — no error tolerance needed,
/// the address is known a priori).
class AdvDemodulator {
 public:
  struct Config {
    /// If an advertising channel number (37..39), scan only it; otherwise
    /// scan all three.
    int channel = -1;
    /// Same contract as phybt::Demodulator::Config::noise_floor_power.
    double noise_floor_power = 0.0;
    /// Same contract as phybt::Demodulator::Config::budget.
    util::WorkBudget* budget = nullptr;
  };

  AdvDemodulator();
  explicit AdvDemodulator(Config config);

  /// Scans the band and returns every decodable advertising PDU.
  [[nodiscard]] std::vector<DecodedAdv> DecodeAll(dsp::const_sample_span x);

 private:
  void ScanChannel(dsp::const_sample_span x, int channel,
                   std::vector<DecodedAdv>& out);

  Config config_;
};

}  // namespace rfdump::phyble
