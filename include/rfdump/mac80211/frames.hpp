#pragma once
// Minimal 802.11 MAC framing: enough structure (frame control, addressing,
// sequence numbers, FCS) that the emulated traffic carries realistic,
// parseable MPDUs and the monitoring examples can print tcpdump-like output.
// Payload bodies for data frames embed an LLC/SNAP + IPv4/ICMP skeleton so
// ping workloads are identifiable end-to-end.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rfdump::mac80211 {

using MacAddress = std::array<std::uint8_t, 6>;

/// Broadcast destination address (all FF).
inline constexpr MacAddress kBroadcast = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};

/// Renders "aa:bb:cc:dd:ee:ff".
[[nodiscard]] std::string ToString(const MacAddress& addr);

/// Frame type/subtype combinations we generate and parse.
enum class FrameKind : std::uint8_t {
  kData,       // type 2 subtype 0
  kAck,        // type 1 subtype 13
  kBeacon,     // type 0 subtype 8
  kOther,
};

[[nodiscard]] const char* FrameKindName(FrameKind kind);

/// A parsed MAC frame.
struct Frame {
  FrameKind kind = FrameKind::kOther;
  std::uint16_t duration = 0;
  MacAddress addr1{};  // receiver
  MacAddress addr2{};  // transmitter (absent in ACK)
  MacAddress addr3{};  // BSSID (absent in ACK)
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> body;  // frame body, FCS excluded
};

/// Serializes a data frame (header + body + FCS).
[[nodiscard]] std::vector<std::uint8_t> BuildDataFrame(
    const MacAddress& dest, const MacAddress& src, const MacAddress& bssid,
    std::uint16_t sequence, std::span<const std::uint8_t> body,
    std::uint16_t duration_us = 0);

/// Serializes a 14-byte ACK control frame.
[[nodiscard]] std::vector<std::uint8_t> BuildAckFrame(const MacAddress& dest);

/// Serializes a beacon frame with an SSID element.
[[nodiscard]] std::vector<std::uint8_t> BuildBeaconFrame(
    const MacAddress& src, const MacAddress& bssid, std::uint16_t sequence,
    const std::string& ssid, std::uint64_t timestamp_us);

/// Builds an LLC/SNAP + IPv4 + ICMP echo body. `icmp_seq` is recoverable by
/// ParseIcmpEchoSeq, which is how the experiments match sent and sniffed
/// packets. `payload_bytes` is the ICMP data length.
[[nodiscard]] std::vector<std::uint8_t> BuildIcmpEchoBody(
    bool is_reply, std::uint16_t ident, std::uint16_t icmp_seq,
    std::size_t payload_bytes);

/// Parses a serialized frame (FCS included); verifies the FCS.
[[nodiscard]] std::optional<Frame> ParseFrame(
    std::span<const std::uint8_t> bytes);

/// Extracts the ICMP echo sequence number from a data frame body built by
/// BuildIcmpEchoBody; nullopt if the body is not such a frame.
[[nodiscard]] std::optional<std::uint16_t> ParseIcmpEchoSeq(
    std::span<const std::uint8_t> body);

/// MPDU size (bytes incl. FCS) of a data frame with `body_bytes` of payload.
[[nodiscard]] constexpr std::size_t DataFrameBytes(std::size_t body_bytes) {
  return 24 + body_bytes + 4;
}

/// Bytes of the ICMP echo frame body for a given ICMP data length
/// (LLC/SNAP 8 + IPv4 20 + ICMP 8 + data).
[[nodiscard]] constexpr std::size_t IcmpEchoBodyBytes(
    std::size_t payload_bytes) {
  return 8 + 20 + 8 + payload_bytes;
}

inline constexpr std::size_t kAckFrameBytes = 14;  // incl. FCS

}  // namespace rfdump::mac80211
