#pragma once
// 802.11 DCF timing constants (DSSS PHY, Clause 17) — the values the paper's
// timing detectors key on (Table 2): SIFS between a data frame and its ACK,
// DIFS + k x SlotTime between contending transmissions.

#include <cstdint>

namespace rfdump::mac80211 {

inline constexpr double kSlotTimeUs = 20.0;
inline constexpr double kSifsUs = 10.0;
/// DIFS = SIFS + 2 x SlotTime.
inline constexpr double kDifsUs = kSifsUs + 2.0 * kSlotTimeUs;  // 50 us
/// Contention-window bound used by the paper's DIFS detector (k in [0, CW]).
inline constexpr int kContentionWindow = 64;
/// Beacon interval: 100 TU = 102.4 ms.
inline constexpr double kBeaconIntervalUs = 102400.0;

}  // namespace rfdump::mac80211
