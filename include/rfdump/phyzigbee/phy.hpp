#pragma once
// IEEE 802.15.4 (ZigBee) 2.4 GHz O-QPSK PHY.
//
// 250 kbit/s: each 4-bit symbol maps to one of 16 quasi-orthogonal 32-chip PN
// sequences at 2 Mchip/s; even-index chips modulate I, odd-index chips Q,
// offset by half a chip (O-QPSK), with half-sine pulse shaping. At the 8 Msps
// front-end rate there are exactly 4 samples per chip.
//
// The paper lists ZigBee in its feature table as a protocol the architecture
// scales to; we implement the modulator (for emulated traffic), the timing
// constants the detectors use, and a correlation-based frame detector/decoder.

#include <cstdint>
#include <optional>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/util/bits.hpp"

namespace rfdump::phyzigbee {

inline constexpr double kChipRateHz = 2e6;
inline constexpr std::size_t kSamplesPerChip = 4;   // at 8 Msps
inline constexpr std::size_t kChipsPerSymbol = 32;
inline constexpr double kSymbolRateHz = 62.5e3;
inline constexpr double kBitRateBps = 250e3;

// MAC timing (Table 2 of the paper): backoff slot 320 us, LIFS 640 us,
// SIFS 192 us, tACK 192..832 us.
inline constexpr double kSlotUs = 320.0;
inline constexpr double kSifsUs = 192.0;
inline constexpr double kLifsUs = 640.0;
inline constexpr double kAckTurnaroundUs = 192.0;

/// The 16 32-chip PN sequences (802.15.4-2006 Table 24), symbol -> chips,
/// chip 0 first.
[[nodiscard]] const std::array<std::uint32_t, 16>& ChipTable();

/// Expands data bytes (low nibble first) into the chip sequence.
[[nodiscard]] util::BitVec BytesToChips(std::span<const std::uint8_t> bytes);

/// Modulates a PHY frame: preamble (4 zero bytes) + SFD (0xA7) + PHR (length)
/// + PSDU. Returns 8 Msps baseband samples (O-QPSK half-sine).
[[nodiscard]] dsp::SampleVec ModulateFrame(std::span<const std::uint8_t> psdu);

/// Airtime of a frame in microseconds ((6 + psdu) bytes * 32 us/byte).
[[nodiscard]] double FrameAirtimeUs(std::size_t psdu_bytes);

/// Decoded ZigBee frame.
struct DecodedZbFrame {
  std::vector<std::uint8_t> psdu;
  bool crc_ok = false;           // FCS over the PSDU (last 2 bytes)
  std::int64_t start_sample = 0;
  std::int64_t end_sample = 0;
};

/// Correlation demodulator: searches for the preamble+SFD chip pattern and
/// decodes symbols by maximum-correlation despreading.
[[nodiscard]] std::optional<DecodedZbFrame> DecodeFrame(
    dsp::const_sample_span x);

}  // namespace rfdump::phyzigbee
